// Command characterize prints the characterization of one datacenter's
// primary tenants (the §3 analysis): the class mix, utilization statistics,
// and reimaging behaviour.
package main

import (
	"flag"
	"fmt"
	"time"

	"harvest/internal/obs"
	"harvest/internal/signalproc"
	"harvest/internal/stats"
	"harvest/internal/trace"
)

var logger = obs.NewLogger("characterize")

func main() {
	dc := flag.String("dc", "DC-9", "datacenter profile name (DC-0 ... DC-9)")
	scale := flag.Float64("scale", 0.1, "tenant-count scale relative to the full profile")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	profile, ok := trace.ProfileByName(*dc)
	if !ok {
		obs.Fatal(logger, "unknown datacenter", "dc", *dc)
	}
	gen := trace.NewGenerator(profile.Scaled(*scale), *seed)
	pop, err := gen.Generate()
	if err != nil {
		obs.Fatal(logger, "generating telemetry failed", "dc", *dc, "err", err)
	}

	tenantShare, serverShare := pop.PatternShares()
	fmt.Printf("datacenter %s: %d tenants, %d servers\n\n", pop.Datacenter, len(pop.Tenants), pop.NumServers())
	fmt.Println("class mix (Figures 2 and 3):")
	for _, p := range []signalproc.Pattern{
		signalproc.PatternPeriodic, signalproc.PatternConstant, signalproc.PatternUnpredictable,
	} {
		fmt.Printf("  %-13s tenants %5.1f%%   servers %5.1f%%\n", p, 100*tenantShare[p], 100*serverShare[p])
	}

	var avgUtils, peakUtils, reimageRates []float64
	for _, t := range pop.Tenants {
		avgUtils = append(avgUtils, t.AverageUtilization())
		peakUtils = append(peakUtils, t.PeakUtilization())
		reimageRates = append(reimageRates, t.ReimagesPerServerMonth)
	}
	fmt.Printf("\nutilization: mean of averages %.2f, mean of peaks %.2f\n",
		stats.Mean(avgUtils), stats.Mean(peakUtils))

	horizon := 36 * 30 * 24 * time.Hour
	events := gen.GenerateReimageEvents(pop, horizon)
	perServer := trace.PerServerReimageRates(pop, events, 36)
	var serverRates []float64
	for _, r := range perServer {
		serverRates = append(serverRates, r)
	}
	fmt.Printf("\nreimaging over three years (Figures 4 and 5):\n")
	fmt.Printf("  servers with <= 1 reimage/month: %.1f%%\n", 100*stats.CDFAt(serverRates, 1))
	fmt.Printf("  tenants with <= 1 reimage/server/month: %.1f%%\n", 100*stats.CDFAt(reimageRates, 1))

	groups, err := trace.MonthlyGroups(pop)
	if err != nil {
		obs.Fatal(logger, "grouping failed", "dc", *dc, "err", err)
	}
	changes := trace.GroupChanges(groups)
	var changeCounts []float64
	for _, c := range changes {
		changeCounts = append(changeCounts, float64(c))
	}
	fmt.Printf("\nreimage-group stability (Figure 6):\n")
	fmt.Printf("  tenants with <= 8 group changes out of 35: %.1f%%\n", 100*stats.CDFAt(changeCounts, 8))
}
