// Command harvestd runs the cluster characterization service as a daemon: it
// bootstraps the configured datacenters, seeds each tenant's telemetry ring
// from the generated trace, then serves the utilization classes plus the
// class-selection (Alg. 1) and replica-placement (Alg. 2) algorithms over an
// HTTP JSON API while live telemetry arrives via POST /v1/{dc}/telemetry.
// Each refresh re-clusters from ring contents, warm-starting from the
// previous generation's centroids (every -full-every-th refresh rebuilds
// from scratch as the correctness backstop).
//
// Satisfiable selects reserve their cores in the live allocation ledger and
// return a lease; POST /v1/{dc}/release returns the cores, and a background
// sweep reclaims leases whose holder died (-lease-ttl).
//
// Usage:
//
//	harvestd [-listen :7077] [-binary-addr :7078] [-dcs DC-9,DC-3 | -dcs all]
//	         [-scale 0.05] [-refresh 30s] [-ring-slots 21600] [-full-every 24]
//	         [-persist DIR] [-seed 1]
//	         [-lease-ttl 2m] [-tenant-stale-after 0]
//	         [-ingest-token TOKEN] [-ingest-rate 0]
//	         [-announce http://router:7070] [-announce-interval 2s]
//	         [-advertise http://host:7077] [-node-id NAME]
//	         [-announce-token TOKEN] [-debug-addr 127.0.0.1:7177]
//	         [-replicate-addr :7079] [-follow primary:7079] [-repl-interval 250ms]
//
// With -announce, the daemon heartbeats its datacenter set and per-DC
// snapshot generations to a harvestrouter front end (cmd/harvestrouter), so
// one trace can be split across nodes (-dcs picks this node's subset) behind
// one routing surface.
//
// With -replicate-addr, the daemon is a replication primary: it streams
// (snapshot, ledger-occupancy, block-book) generations to every follower that
// connects. With -follow, it runs as a read-only follower of that primary
// instead — it serves class queries, placement, and advisory dry-run selects
// from the replicated state (writes get a retryable 503) until POST
// /v1/promote flips it to primary. A follower may carry -replicate-addr too:
// the listener stays armed but idle, and promotion starts serving replication
// on it, so the promoted node can feed the remaining followers (which learn
// the new address from the router's register acknowledgements). Both modes
// require an explicit -node-id: the follower announces its primary's identity
// to the router, and the names must match the primary's own registration for
// read spreading and failover to engage.
//
// With -binary-addr, a second listener speaks the binary frame protocol
// (internal/wire) for the select/release/place/classes hot path — same
// semantics as the JSON API at a fraction of the per-request cost. The
// address is advertised on /v1/datacenters (and, with -announce, to the
// router) so clients and routers discover it instead of configuring it.
//
// See README.md for the API routes; `cmd/loadgen` drives it (and its
// -telemetry mode feeds it live samples).
package main

import (
	"flag"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"harvest/internal/experiments"
	"harvest/internal/obs"
	"harvest/internal/service"
)

// logger is the daemon's structured logger (component=harvestd).
var logger = obs.NewLogger("harvestd")

// splitNonEmpty splits a comma-separated flag value, dropping empty entries
// (so an unset flag yields nil, not [""]).
func splitNonEmpty(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// advertisedURL derives a router-reachable base URL from the bound listener
// address: a wildcard host becomes the loopback address (the single-machine
// default; multi-host deployments pass -advertise explicitly).
func advertisedURL(addr net.Addr) string {
	host, port, err := net.SplitHostPort(addr.String())
	if err != nil {
		return "http://" + addr.String()
	}
	switch host {
	case "", "::", "0.0.0.0":
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}

// advertisedHostPort derives an externally reachable host:port for a bound
// auxiliary listener: the host comes from -advertise when set (the node
// already knows its public name), otherwise from the listener with wildcard
// hosts mapped to loopback; the port is always the bound one.
func advertisedHostPort(bound net.Addr, advertise string) string {
	_, port, err := net.SplitHostPort(bound.String())
	if err != nil {
		return bound.String()
	}
	host := ""
	if advertise != "" {
		if u, err := url.Parse(advertise); err == nil {
			host = u.Hostname()
		}
	}
	if host == "" {
		if h, _, err := net.SplitHostPort(bound.String()); err == nil {
			host = h
		}
	}
	switch host {
	case "", "::", "0.0.0.0":
		host = "127.0.0.1"
	}
	return net.JoinHostPort(host, port)
}

func main() {
	listen := flag.String("listen", ":7077", "address to serve the HTTP API on")
	binaryAddr := flag.String("binary-addr", "", "address to serve the binary frame protocol on (empty disables)")
	dcs := flag.String("dcs", "all", "comma-separated datacenters to serve, or \"all\"")
	scaleFactor := flag.Float64("scale", 0.05, "datacenter scale relative to the paper's setup")
	refresh := flag.Duration("refresh", 30*time.Second, "wall-clock period between snapshot rebuilds (0 disables)")
	ringSlots := flag.Int("ring-slots", 0, "per-tenant telemetry ring capacity in 2-minute samples (0 = one month)")
	fullEvery := flag.Int("full-every", 24, "re-cluster from scratch every Nth refresh (negative = always warm-start)")
	persist := flag.String("persist", "", "directory to persist snapshots and the allocation ledger to (and restore from at boot)")
	seed := flag.Int64("seed", 1, "random seed")
	leaseTTL := flag.Duration("lease-ttl", 2*time.Minute, "default select-reservation lifetime before the expiry sweep reclaims it (negative disables expiry)")
	staleAfter := flag.Duration("tenant-stale-after", 0, "evict telemetry rings of tenants silent for this long (0 disables)")
	ingestToken := flag.String("ingest-token", "", "require this bearer token on POST /v1/{dc}/telemetry")
	ingestRate := flag.Float64("ingest-rate", 0, "per-source telemetry POSTs per second (0 = unlimited)")
	announce := flag.String("announce", "", "comma-separated harvestrouter base URLs to register this node's datacenters with (one heartbeat loop each — list every router replica)")
	announceEvery := flag.Duration("announce-interval", 2*time.Second, "registration heartbeat cadence when -announce is set")
	advertise := flag.String("advertise", "", "externally reachable base URL of this node (default: derived from -listen)")
	nodeID := flag.String("node-id", "", "stable backend identity for router registration (default: the advertised URL)")
	announceToken := flag.String("announce-token", "", "bearer token for router registration (must match the router's -register-token)")
	trustedProxies := flag.String("trusted-proxies", "", "comma-separated router IPs/CIDRs whose X-Forwarded-For keys the per-source ingest rate limit (the header is ignored from all other peers)")
	debugAddr := flag.String("debug-addr", "", "address for the operator debug listener (pprof, expvar, /debug/traces); empty disables. Keep it off the data-plane address.")
	replicateAddr := flag.String("replicate-addr", "", "address to stream replication frames to followers on (live on a primary, armed for promotion on a follower; empty disables)")
	follow := flag.String("follow", "", "primary's replication address (host:port) to follow as a read-only replica")
	replInterval := flag.Duration("repl-interval", 0, "replication ship cadence on the primary (0 = 250ms)")
	flag.Parse()

	cfg := service.DefaultConfig()
	cfg.Scale = experiments.Scale{Datacenter: *scaleFactor, Seed: *seed}
	cfg.RefreshPeriod = *refresh
	cfg.RingSlots = *ringSlots
	cfg.FullRebuildEvery = *fullEvery
	cfg.PersistDir = *persist
	cfg.Seed = *seed
	cfg.LeaseTTL = *leaseTTL
	cfg.TenantStaleAfter = *staleAfter
	if (*follow != "" || *replicateAddr != "") && *nodeID == "" {
		// Replication identity rides the router's registration: the follower
		// announces primary_id=<primary's -node-id>, and the router only
		// spreads reads to (and promotes) followers whose primary id matches
		// the primary's registration id. Without explicit names the two
		// default to different strings and the mesh silently never engages.
		obs.Fatal(logger, "-node-id is required with -follow or -replicate-addr")
	}
	if *nodeID != "" {
		cfg.NodeID = *nodeID
	}
	cfg.FollowAddr = *follow
	if *replInterval > 0 {
		cfg.ReplInterval = *replInterval
	} else {
		cfg.ReplInterval = 250 * time.Millisecond
	}
	if *dcs != "" && *dcs != "all" {
		cfg.Datacenters = splitNonEmpty(*dcs)
		if len(cfg.Datacenters) == 0 {
			// An empty cfg.Datacenters means "serve everything" — a typo'd
			// -dcs must not silently boot (and announce) every datacenter.
			obs.Fatal(logger, "-dcs selects no datacenters", "dcs", *dcs)
		}
	}

	start := time.Now()
	svc, err := service.New(cfg)
	if err != nil {
		obs.Fatal(logger, "boot failed", "err", err)
	}
	for _, dc := range svc.Datacenters() {
		st, _ := svc.Stats(dc)
		logger.Info("datacenter ready", "dc", dc, "classes", st.Classes, "servers", st.Servers,
			"tenants", st.Tenants, "generation", st.Generation, "build", st.BuildDuration.Round(time.Millisecond))
	}
	svc.Start()
	defer svc.Close()
	logger.Info("bootstrapped", "datacenters", len(svc.Datacenters()),
		"took", time.Since(start).Round(time.Millisecond), "refresh", *refresh, "full_every", *fullEvery)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		obs.Fatal(logger, "listen failed", "addr", *listen, "err", err)
	}
	api := service.NewAPIWith(svc, service.APIOptions{
		IngestToken:         *ingestToken,
		IngestRatePerSource: *ingestRate,
		TrustedProxies:      splitNonEmpty(*trustedProxies),
	})
	var binAdvertise string
	if *binaryAddr != "" {
		bs := service.NewBinaryServer(svc)
		bound, _, err := bs.ListenAndServe(*binaryAddr)
		if err != nil {
			obs.Fatal(logger, "binary listener failed", "addr", *binaryAddr, "err", err)
		}
		defer bs.Close()
		binAdvertise = advertisedHostPort(bound, *advertise)
		api.AttachBinary(bs, binAdvertise)
		logger.Info("binary protocol listening", "addr", bound.String(), "advertised", binAdvertise)
	}
	var replAdvertise string
	if *replicateAddr != "" {
		rln, err := net.Listen("tcp", *replicateAddr)
		if err != nil {
			obs.Fatal(logger, "replication listener failed", "addr", *replicateAddr, "err", err)
		}
		// The service owns the listener from here; svc.Close shuts it down.
		// On a primary it serves immediately; on a follower it stays armed
		// until promotion.
		svc.ArmReplicationListener(rln)
		replAdvertise = advertisedHostPort(rln.Addr(), *advertise)
		if *follow != "" {
			logger.Info("replication listener armed for promotion", "addr", rln.Addr().String())
		} else {
			logger.Info("replicating to followers", "addr", rln.Addr().String(), "interval", cfg.ReplInterval)
		}
	}
	if *follow != "" {
		logger.Info("following primary", "addr", *follow, "node", cfg.NodeID)
	}
	if *debugAddr != "" {
		// The debug surface (pprof, expvar, build info, the trace viewer)
		// lives on its own listener so it is never reachable through the
		// data-plane address a router or client is pointed at.
		bound, err := obs.ServeDebug(*debugAddr, "harvestd", api.Recorder())
		if err != nil {
			obs.Fatal(logger, "debug listener failed", "addr", *debugAddr, "err", err)
		}
		logger.Info("debug listener on", "addr", bound)
	}
	var announcers []*service.Announcer
	if *announce != "" {
		selfURL := *advertise
		if selfURL == "" {
			selfURL = advertisedURL(ln.Addr())
		}
		routers := splitNonEmpty(*announce)
		if len(routers) == 0 {
			obs.Fatal(logger, "-announce selects no routers", "announce", *announce)
		}
		for _, routerURL := range routers {
			ann, err := service.StartAnnouncer(svc, service.AnnouncerConfig{
				RouterURL:     strings.TrimRight(routerURL, "/"),
				SelfURL:       selfURL,
				BinaryAddr:    binAdvertise,
				ReplicateAddr: replAdvertise,
				ID:            *nodeID,
				Interval:      *announceEvery,
				Token:         *announceToken,
			})
			if err != nil {
				obs.Fatal(logger, "announcer failed", "router", routerURL, "err", err)
			}
			announcers = append(announcers, ann)
			defer ann.Close()
		}
		logger.Info("announcing", "datacenters", strings.Join(svc.Datacenters(), ","),
			"self", selfURL, "routers", *announce, "interval", *announceEvery)
	}
	// BatchListener coalesces pipelined responses into one write syscall per
	// batch; see internal/service/batchconn.go. The timeouts reclaim
	// goroutines from clients that stall mid-header or idle forever.
	server := &http.Server{
		Handler:           api,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errs := make(chan error, 1)
	go func() { errs <- server.Serve(service.BatchListener{Listener: ln}) }()
	logger.Info("serving", "addr", *listen)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigs:
		logger.Info("shutting down", "signal", sig.String())
		// Drain first, close second: the final heartbeat tells every router
		// to take this node out of rotation *before* the listeners go away,
		// so a planned restart never bounces a request off a closed socket.
		for _, ann := range announcers {
			ann.Deregister()
		}
		server.Close()
	case err := <-errs:
		obs.Fatal(logger, "server failed", "err", err)
	}
}
