// Command loadgen is a load generator for harvestd: N workers each drive a
// private keep-alive connection, drawing operations from a configurable mix
// of select / release / renew / place / classes / server-class queries, and
// report throughput and latency percentiles at the end.
//
// Selects reserve cores server-side and return a lease; each worker holds
// its leases in a pool the release operation drains (oldest first), so the
// default mix exercises the allocation ledger's full select → hold → release
// cycle and the books balance at the end of a run (leases the run leaves
// behind are released in a post-measurement drain, or age out via the
// server's lease TTL).
//
// Two pacing modes:
//
//   - Closed loop (default): each worker keeps a window of -pipeline requests
//     outstanding; this measures capacity.
//   - Open loop (-rate N): requests are scheduled at fixed instants (N per
//     second spread across workers) regardless of how fast the server
//     responds, and each latency is measured from the request's *scheduled*
//     time, not its send time — the coordinated-omission-safe way to measure
//     latency under a target load. A server that falls behind sees queueing
//     delay show up in the percentiles instead of silently stretching the
//     schedule.
//
// Usage:
//
//	loadgen [-target http://127.0.0.1:7077] [-workers 2] [-pipeline 64]
//	        [-duration 5s] [-rate 0] [-wait 0] [-proto json|binary]
//	        [-mix select=30,release=25,renew=5,place=30,classes=5,server=5]
//	        [-json] [-out report.json]
//
// -proto binary drives the same mix over the length-prefixed binary frame
// dialect (internal/wire) instead of HTTP/JSON. Discovery stays on the JSON
// control plane: the target's /v1/datacenters must advertise binary_addr (a
// harvestd started with -binary-addr, or a harvestrouter with
// -binary-listen), and the query connections dial that address. Both pacing
// modes work over either protocol.
//
// The target can equally be a harvestrouter front end: leases round-trip
// through the router unchanged (the select response names the owning
// datacenter, and the release posts back to it), so the full select → hold →
// release cycle lands on the owning shard. -wait covers fleet startup, when
// the router lists no datacenters until its backends register.
//
// With -telemetry it instead becomes a live-telemetry emitter: it
// regenerates the server's tenant populations locally (same -scale/-seed as
// the harvestd it targets — population generation is deterministic) and
// replays each tenant's trace, one 2-minute slot per -emit-interval, as
// POST /v1/{dc}/telemetry batches. This closes the loop on the daemon's
// live ingestion path: the snapshots harvestd serves are then built from
// samples that travelled through the ingest API, not from the bootstrap
// window.
//
//	loadgen -telemetry [-target ...] [-duration 10s] [-emit-interval 200ms]
//	        [-scale 0.05] [-seed 1] [-json]
//
// With -storage it becomes a reimaging-wave driver for the block-placement
// ledger: it places -blocks R-replicated blocks per datacenter through
// POST /v1/{dc}/blocks, regenerates the tenant population locally (same
// -scale/-seed as the target) to learn each server's tenant reimage rate,
// reimages -reimage-fraction of each datacenter's servers (rate-weighted
// sampling without replacement, biased to include replica holders so the
// repair path always runs — placement avoids reimage-heavy servers, so a
// pure rate-weighted wave could land entirely on empty ones and prove
// nothing), then polls /metrics until the books quiesce: every lost replica
// re-placed, nothing pending. The exit report carries the server's ledger
// books verbatim, so CI asserts exact conservation — placed + pending ==
// replica slots, lost == replaced + pending — with jq, no tolerance. Target
// a harvestd directly: the quiesce poll reads the node's own /metrics books.
//
//	loadgen -storage [-target ...] [-blocks 200] [-replication 3]
//	        [-reimage-fraction 0.1] [-quiesce-timeout 60s]
//	        [-ingest-token secret] [-scale 0.05] [-seed 1] [-json]
//
// The client deliberately bypasses net/http: requests are preserialized byte
// slices written through a raw TCP connection and responses are parsed with a
// minimal HTTP/1.1 reader, so a single core can drive the server well past
// the throughput a stock client reaches. Latency is measured per request
// from the moment it is enqueued into the pipeline window, so pipelining
// shows up in the percentiles rather than hiding in them. Server IDs for
// server-class queries are seeded from each class's example server and
// replenished from the replicas returned by place responses, keeping the loop
// closed end-to-end.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"harvest/internal/blockledger"
	"harvest/internal/experiments"
	"harvest/internal/obs"
	"harvest/internal/service"
	"harvest/internal/tenant"
	"harvest/internal/timeseries"
	"harvest/internal/wire"
)

type op int

const (
	opSelect op = iota
	opDrySelect
	opRelease
	opRenew
	opPlace
	opClasses
	opServer
	numOps
)

var opNames = [numOps]string{"select", "dryselect", "release", "renew", "place", "classes", "server"}

// logger covers the pre-run setup path (flag validation, discovery); the
// measured loop itself never logs.
var logger = obs.NewLogger("loadgen")

func main() {
	target := flag.String("target", "http://127.0.0.1:7077", "harvestd base URL or host:port")
	workers := flag.Int("workers", 2, "concurrent connections")
	pipeline := flag.Int("pipeline", 64, "requests kept in flight per connection")
	duration := flag.Duration("duration", 5*time.Second, "measurement duration")
	rate := flag.Float64("rate", 0, "open-loop mode: scheduled requests/second across all workers (0 = closed loop)")
	mix := flag.String("mix", "select=30,release=25,renew=5,place=30,classes=5,server=5", "operation mix (weights; dryselect issues advisory dry-run selects that reserve nothing — the read-heavy op a replicated fleet spreads across followers)")
	proto := flag.String("proto", "json", "query protocol: json (HTTP/1.1) or binary (length-prefixed frames; the target must advertise binary_addr)")
	seed := flag.Int64("seed", 1, "random seed")
	jsonOut := flag.Bool("json", false, "print the report as JSON")
	telemetry := flag.Bool("telemetry", false, "run as a telemetry emitter instead of a query load generator")
	storage := flag.Bool("storage", false, "run as a reimaging-wave driver for the block ledger instead of a query load generator")
	wait := flag.Duration("wait", 0, "keep retrying the initial datacenter discovery for this long (a router front end lists no datacenters until its backends register)")
	emitInterval := flag.Duration("emit-interval", 200*time.Millisecond, "telemetry mode: wall-clock pause between slot batches")
	scale := flag.Float64("scale", 0.05, "telemetry/storage mode: datacenter scale (must match the harvestd flags)")
	blocks := flag.Int("blocks", 200, "storage mode: blocks to place per datacenter")
	replication := flag.Int("replication", 3, "storage mode: replicas per block")
	reimageFraction := flag.Float64("reimage-fraction", 0.1, "storage mode: fraction of each datacenter's servers the reimaging wave hits")
	quiesceTimeout := flag.Duration("quiesce-timeout", 60*time.Second, "storage mode: how long to wait for re-replication to drain the pending books")
	ingestToken := flag.String("ingest-token", "", "storage mode: bearer token for POST /v1/{dc}/reimage (the target's -ingest-token)")
	out := flag.String("out", "", "also write the JSON report, with the full latency bucket vector and run config, to this file")
	flag.Parse()

	baseURL, addr, err := parseTarget(*target)
	if err != nil {
		obs.Fatal(logger, "bad target", "target", *target, "err", err)
	}
	if *telemetry && *storage {
		obs.Fatal(logger, "-telemetry and -storage are mutually exclusive")
	}
	if *telemetry {
		runTelemetryEmitter(baseURL, *scale, *seed, *duration, *emitInterval, *wait, *jsonOut)
		return
	}
	if *storage {
		runStorageWave(baseURL, storageCfg{
			blocks:      *blocks,
			replication: *replication,
			fraction:    *reimageFraction,
			ingestToken: *ingestToken,
			scale:       *scale,
			seed:        *seed,
			wait:        *wait,
			quiesce:     *quiesceTimeout,
			out:         *out,
		}, *jsonOut)
		return
	}

	weights, err := parseMix(*mix)
	if err != nil {
		obs.Fatal(logger, "bad -mix", "mix", *mix, "err", err)
	}
	if *proto != "json" && *proto != "binary" {
		obs.Fatal(logger, "-proto must be json or binary", "proto", *proto)
	}
	dcs, err := fetchSetupWait(baseURL, *wait)
	if err != nil {
		obs.Fatal(logger, "discovery failed", "target", baseURL, "err", err)
	}
	if *proto == "binary" {
		// Capability discovery rides the JSON control plane; only the query
		// connections switch dialects.
		binAddr, err := retryUntil(*wait, func() (string, error) { return discoverBinaryAddr(baseURL) })
		if err != nil {
			obs.Fatal(logger, "binary discovery failed", "target", baseURL, "err", err)
		}
		addr = binAddr
	}
	if *pipeline < 1 {
		*pipeline = 1
	}

	results := make([]*workerStats, *workers)
	// Two barriers: runWG closes the measured clock the moment every worker's
	// schedule (and its in-flight window) finishes; drainWG additionally
	// covers the post-run lease drain. The drain is bookkeeping — releasing
	// leases so the server's ledger balances — and must not stretch the wall
	// time QPS divides by.
	var runWG, drainWG sync.WaitGroup
	start := time.Now()
	deadline := start.Add(*duration)
	for i := 0; i < *workers; i++ {
		// Frame id i+1: nonzero and unique per worker, so binary-dialect
		// traces in the server's /debug/traces ring correlate back to the
		// worker that sent them (the JSON dialect gets the same linkage from
		// the X-Harvest-Trace response header).
		w := newWorker(addr, *proto == "binary", dcs, weights, *pipeline, uint64(i+1),
			rand.New(rand.NewSource(*seed+int64(i))))
		results[i] = &w.stats
		runWG.Add(1)
		drainWG.Add(1)
		go func(i int) {
			defer drainWG.Done()
			if *rate > 0 {
				// Worker i owns schedule ticks i, i+W, i+2W, … of the global
				// 1/rate grid, so the union is exactly -rate requests/second.
				interval := time.Duration(float64(*workers) / *rate * float64(time.Second))
				w.runOpen(start.Add(time.Duration(float64(i)/(*rate)*float64(time.Second))), deadline, interval)
			} else {
				w.run(deadline)
			}
			runWG.Done()
			w.drainLeases()
		}(i)
	}
	runWG.Wait()
	// Workers drain their in-flight window past the deadline, so throughput
	// divides by the measured wall time — captured here, before the lease
	// drain starts its own (unmeasured) connections.
	elapsed := time.Since(start)
	drainWG.Wait()
	report(results, runConfig{
		target:   baseURL,
		proto:    *proto,
		workers:  *workers,
		pipeline: *pipeline,
		rate:     *rate,
		mix:      *mix,
		seed:     *seed,
		out:      *out,
	}, elapsed, *jsonOut)
}

// parseMix turns "select=40,place=40,..." into per-op weights. A repeated
// name overrides its earlier entry, so the total is validated over the final
// weights, not the entries.
func parseMix(s string) ([numOps]int, error) {
	var weights [numOps]int
	for _, part := range strings.Split(s, ",") {
		if part == "" {
			continue
		}
		name, value, ok := strings.Cut(part, "=")
		if !ok {
			return weights, fmt.Errorf("bad mix entry %q (want name=weight)", part)
		}
		w, err := strconv.Atoi(value)
		if err != nil || w < 0 {
			return weights, fmt.Errorf("bad mix weight %q", part)
		}
		found := false
		for i, n := range opNames {
			if n == name {
				weights[i] = w
				found = true
			}
		}
		if !found {
			return weights, fmt.Errorf("unknown mix operation %q (want select, release, renew, place, classes, server)", name)
		}
	}
	total := 0
	for _, w := range weights {
		total += w
	}
	if total == 0 {
		return weights, fmt.Errorf("mix selects no operations")
	}
	return weights, nil
}

func parseTarget(s string) (baseURL, addr string, err error) {
	if !strings.Contains(s, "://") {
		s = "http://" + s
	}
	u, err := url.Parse(s)
	if err != nil {
		return "", "", fmt.Errorf("bad target %q: %v", s, err)
	}
	host := u.Host
	if u.Port() == "" {
		host += ":80"
	}
	return strings.TrimSuffix(u.String(), "/"), host, nil
}

// retryUntil retries fn every half second until it succeeds or the wait
// budget runs out, returning the last result — the one retry policy behind
// every discovery path. Against a harvestrouter front end the datacenter
// list is empty (and the per-DC probes 503) until its backends have
// registered, so a loadgen launched alongside the fleet needs a grace
// window, not a crash.
func retryUntil[T any](wait time.Duration, fn func() (T, error)) (T, error) {
	deadline := time.Now().Add(wait)
	for {
		v, err := fn()
		if err == nil || time.Now().After(deadline) {
			return v, err
		}
		time.Sleep(500 * time.Millisecond)
	}
}

// fetchSetupWait runs the initial discovery under the -wait grace window.
// "Ready" means the target lists at least one datacenter and its probes
// answer — loadgen cannot know a fleet's intended size, so orchestration
// that needs every backend registered before the run should gate on
// /v1/datacenters itself (the CI router-smoke job does exactly that).
func fetchSetupWait(baseURL string, wait time.Duration) ([]dcSetup, error) {
	return retryUntil(wait, func() ([]dcSetup, error) { return fetchSetup(baseURL) })
}

// discoverDatacenters is the shared single-shot discovery step: the served
// datacenter list, with an empty list reported as an error so retry loops
// treat "router up, no backends yet" as not-ready.
func discoverDatacenters(baseURL string) ([]string, error) {
	var dcl struct {
		Datacenters []string `json:"datacenters"`
	}
	if err := getJSON(baseURL+"/v1/datacenters", &dcl); err != nil {
		return nil, err
	}
	if len(dcl.Datacenters) == 0 {
		return nil, fmt.Errorf("server lists no datacenters")
	}
	return dcl.Datacenters, nil
}

// discoverBinaryAddr reads the target's advertised binary frame listener
// from the JSON control plane. Its absence is an error in -proto binary:
// the operator asked for a dialect the target does not serve.
func discoverBinaryAddr(baseURL string) (string, error) {
	var dcl struct {
		BinaryAddr string `json:"binary_addr"`
	}
	if err := getJSON(baseURL+"/v1/datacenters", &dcl); err != nil {
		return "", err
	}
	if dcl.BinaryAddr == "" {
		return "", fmt.Errorf("target does not advertise a binary listener (start harvestd with -binary-addr or harvestrouter with -binary-listen)")
	}
	return dcl.BinaryAddr, nil
}

// dcSetup is what the generator learns about one datacenter up front.
type dcSetup struct {
	name    string
	servers []int64 // seed pool for server-class queries
}

// fetchSetup discovers the served datacenters and each class's example
// server with a plain net/http client (off the measured path).
func fetchSetup(baseURL string) ([]dcSetup, error) {
	names, err := discoverDatacenters(baseURL)
	if err != nil {
		return nil, err
	}
	var dcs []dcSetup
	for _, dc := range names {
		var classes struct {
			Classes []struct {
				ExampleServer int64 `json:"example_server"`
			} `json:"classes"`
		}
		if err := getJSON(baseURL+"/v1/"+dc+"/classes", &classes); err != nil {
			return nil, err
		}
		setup := dcSetup{name: dc}
		for _, c := range classes.Classes {
			if c.ExampleServer >= 0 {
				setup.servers = append(setup.servers, c.ExampleServer)
			}
		}
		dcs = append(dcs, setup)
	}
	return dcs, nil
}

// httpClient bounds every off-measured-path HTTP call (setup fetches,
// telemetry POSTs): a hung server must fail the run, not stall it past
// -duration — the same property the query path gets from its raw-conn
// deadlines.
var httpClient = &http.Client{Timeout: 10 * time.Second}

func getJSON(url string, v any) error {
	resp, err := httpClient.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// workerStats accumulates one worker's results; merged after the run.
// requests/errors are only ever touched by the goroutine that reads
// responses, but transport is bumped by both the open-loop scheduler (write
// failures) and its reader (read failures), so it is atomic.
type workerStats struct {
	requests  [numOps]uint64
	errors    [numOps]uint64
	transport atomic.Uint64 // connection-level failures (reconnects)
	latency   service.Histogram

	// trace is the 16-hex-digit trace id of the worker's most recent traced
	// request — the X-Harvest-Trace header of the last parsed JSON response,
	// or (binary dialect) the worker's fixed frame id, set once at
	// construction. A zero first byte means no trace was ever seen. Only the
	// response-reading goroutine writes it; the report reads it after the
	// run barrier.
	trace [16]byte

	// backends counts responses per serving replica, from the router's
	// X-Harvest-Backend response header (JSON dialect; a direct harvestd
	// target never sets it, and the binary relay has no header to carry it).
	// Only the response-reading goroutine writes it; the report reads it
	// after the run barrier.
	backends backendTally
}

// backendTally counts responses by the backend id that served them. A run
// sees a handful of replicas at most, so a linear scan over byte-compared
// names beats a map: the hot path allocates only on a backend's first
// response.
type backendTally struct {
	names  []string
	counts []uint64
}

func (t *backendTally) bump(name []byte) {
	if len(name) == 0 {
		return
	}
	for i, n := range t.names {
		if string(name) == n { // comparison only; no allocation
			t.counts[i]++
			return
		}
	}
	t.names = append(t.names, string(name))
	t.counts = append(t.counts, 1)
}

// inflight is one pipelined request awaiting its response. dc is the index
// into worker.dcs the request targeted — the binary dialect's responses do
// not name their datacenter (the JSON ones do), so lease and server
// harvesting resolves the DC through the window entry instead.
type inflight struct {
	op     op
	dc     int
	sentAt time.Time
}

type worker struct {
	addr       string
	bin        bool // drive the binary frame dialect instead of HTTP/JSON
	dcs        []dcSetup
	rng        *rand.Rand
	depth      int
	opTable    []op // weighted op lookup table
	stats      workerStats
	selects    map[string][][]byte // preserialized select requests per DC
	dryselects map[string][][]byte // preserialized dry-run (advisory) selects per DC
	places     map[string][]byte   // preserialized place request per DC
	classes    map[string][]byte   // preserialized classes request per DC

	// mu guards pool and held: in open-loop mode the response reader
	// (harvest) and the scheduler (pick) are different goroutines. The
	// closed loop is single-goroutine, so the mutex is uncontended there.
	mu   sync.Mutex
	pool map[string][]int64  // live server-id pool per DC
	held map[string][]uint64 // outstanding lease ids per DC (select → hold → release)

	frameID uint64 // binary dialect: this worker's frame id (nonzero, unique per worker)

	conn        net.Conn
	br          *bufio.Reader
	bw          *bufio.Writer
	reqBuf      []byte
	bodyScratch []byte
	bodyBuf     []byte
	window      []inflight
	deadline    time.Time

	// Binary-dialect decode scratch: the typed decoders reuse their slices,
	// so steady-state response parsing allocates nothing.
	selResp   wire.SelectResp
	placeResp wire.PlaceResp
}

func newWorker(addr string, bin bool, dcs []dcSetup, weights [numOps]int, depth int, frameID uint64, rng *rand.Rand) *worker {
	w := &worker{
		addr:       addr,
		bin:        bin,
		dcs:        dcs,
		rng:        rng,
		depth:      depth,
		frameID:    frameID,
		selects:    make(map[string][][]byte, len(dcs)),
		dryselects: make(map[string][][]byte, len(dcs)),
		places:     make(map[string][]byte, len(dcs)),
		classes:    make(map[string][]byte, len(dcs)),
		pool:       make(map[string][]int64, len(dcs)),
		held:       make(map[string][]uint64, len(dcs)),
		bodyBuf:    make([]byte, 0, 1<<16),
	}
	for i := op(0); i < numOps; i++ {
		for j := 0; j < weights[i]; j++ {
			w.opTable = append(w.opTable, i)
		}
	}
	if bin {
		// Every one of this worker's frames carries its fixed id: pipelined
		// responses return in order, so the id disambiguates nothing on the
		// wire — but the servers adopt it as the trace id, which is what
		// makes a worker's requests findable in /debug/traces.
		copy(w.stats.trace[:], obs.FormatTraceID(frameID))
	}
	coreSizes := []int{2, 8, 32, 128}
	for _, dc := range dcs {
		// A spread of select shapes: every job type at several demand sizes.
		if bin {
			for _, job := range []uint8{wire.JobShort, wire.JobMedium, wire.JobLong} {
				for _, cores := range coreSizes {
					w.selects[dc.name] = append(w.selects[dc.name],
						wire.AppendSelectReq(nil, frameID, dc.name, wire.SelectReq{Job: job, MaxCores: float64(cores)}))
					w.dryselects[dc.name] = append(w.dryselects[dc.name],
						wire.AppendSelectReq(nil, frameID, dc.name, wire.SelectReq{Job: job, MaxCores: float64(cores), Flags: wire.SelectFlagDryRun}))
				}
			}
			w.places[dc.name] = wire.AppendPlaceReq(nil, frameID, dc.name, wire.PlaceReq{Replication: 3, Writer: -1})
			w.classes[dc.name] = wire.AppendClassesReq(nil, frameID, dc.name)
		} else {
			for _, jt := range []string{"short", "medium", "long"} {
				for _, cores := range coreSizes {
					body := fmt.Sprintf(`{"job_type":%q,"max_concurrent_cores":%d}`, jt, cores)
					w.selects[dc.name] = append(w.selects[dc.name],
						buildRequest("POST", "/v1/"+dc.name+"/select", body))
					dry := fmt.Sprintf(`{"job_type":%q,"max_concurrent_cores":%d,"dry_run":true}`, jt, cores)
					w.dryselects[dc.name] = append(w.dryselects[dc.name],
						buildRequest("POST", "/v1/"+dc.name+"/select", dry))
				}
			}
			w.places[dc.name] = buildRequest("POST", "/v1/"+dc.name+"/place", `{"replication":3}`)
			w.classes[dc.name] = buildRequest("GET", "/v1/"+dc.name+"/classes", "")
		}
		w.pool[dc.name] = append([]int64(nil), dc.servers...)
	}
	return w
}

func buildRequest(method, path, body string) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s %s HTTP/1.1\r\nHost: harvestd\r\n", method, path)
	if body != "" {
		fmt.Fprintf(&b, "Content-Type: application/json\r\nContent-Length: %d\r\n\r\n%s", len(body), body)
	} else {
		b.WriteString("\r\n")
	}
	return b.Bytes()
}

func (w *worker) connect() error {
	conn, err := net.Dial("tcp", w.addr)
	if err != nil {
		return err
	}
	// A hard deadline a little past the run end: a stalled server fails the
	// run instead of hanging it (and the CI smoke job) forever.
	conn.SetDeadline(w.deadline.Add(10 * time.Second))
	w.conn = conn
	w.br = bufio.NewReaderSize(conn, 1<<16)
	w.bw = bufio.NewWriterSize(conn, 1<<16)
	w.window = w.window[:0]
	return nil
}

func (w *worker) run(deadline time.Time) {
	w.deadline = deadline
	if err := w.connect(); err != nil {
		w.stats.transport.Add(1)
		return
	}
	defer w.conn.Close()
	for time.Now().Before(deadline) {
		// Fill the window, flush the batch, then drain it. One syscall pair
		// per batch instead of per request is what buys the throughput.
		for len(w.window) < w.depth {
			if err := w.enqueue(); err != nil {
				w.reconnect()
				break
			}
		}
		if err := w.bw.Flush(); err != nil {
			w.reconnect()
			continue
		}
		for len(w.window) > 0 {
			if err := w.readOne(); err != nil {
				w.reconnect()
				break
			}
		}
	}
}

func (w *worker) reconnect() {
	w.stats.transport.Add(1)
	w.conn.Close()
	if err := w.connect(); err != nil {
		// Give the server a beat before the run loop retries.
		time.Sleep(10 * time.Millisecond)
	}
}

// pickRequest draws the next operation from the mix and serializes it into
// the worker's request buffer (or returns a preserialized one). A release
// with no lease to release, or a server-class query with an empty server
// pool, degrades to a classes query so the schedule never stalls. The
// returned index names the targeted datacenter in w.dcs.
func (w *worker) pickRequest() (op, int, []byte) {
	o := w.opTable[w.rng.Intn(len(w.opTable))]
	dci := w.rng.Intn(len(w.dcs))
	dc := w.dcs[dci]
	switch o {
	case opSelect:
		variants := w.selects[dc.name]
		return o, dci, variants[w.rng.Intn(len(variants))]
	case opDrySelect:
		// Advisory: the server characterizes without reserving, so the
		// response never feeds the lease pool and the request is safe on a
		// read replica.
		variants := w.dryselects[dc.name]
		return o, dci, variants[w.rng.Intn(len(variants))]
	case opRelease:
		id, ok := w.popLease(dc.name)
		if !ok {
			return opClasses, dci, w.classes[dc.name]
		}
		return o, dci, w.buildReleaseRequest(dc.name, id)
	case opRenew:
		id, ok := w.peekLease(dc.name)
		if !ok {
			return opClasses, dci, w.classes[dc.name]
		}
		return o, dci, w.buildRenewRequest(dc.name, id)
	case opPlace:
		return o, dci, w.places[dc.name]
	case opServer:
		w.mu.Lock()
		pool := w.pool[dc.name]
		if len(pool) == 0 {
			w.mu.Unlock()
			return opClasses, dci, w.classes[dc.name]
		}
		id := pool[w.rng.Intn(len(pool))]
		w.mu.Unlock()
		if w.bin {
			w.reqBuf = wire.AppendServerClassReq(w.reqBuf[:0], w.frameID, dc.name, id)
			return o, dci, w.reqBuf
		}
		w.reqBuf = w.reqBuf[:0]
		w.reqBuf = append(w.reqBuf, "GET /v1/"...)
		w.reqBuf = append(w.reqBuf, dc.name...)
		w.reqBuf = append(w.reqBuf, "/servers/"...)
		w.reqBuf = strconv.AppendInt(w.reqBuf, id, 10)
		w.reqBuf = append(w.reqBuf, "/class HTTP/1.1\r\nHost: harvestd\r\n\r\n"...)
		return o, dci, w.reqBuf
	}
	return opClasses, dci, w.classes[dc.name]
}

// popLease takes the oldest held lease for a datacenter (FIFO, so holds have
// a roughly uniform duration at a steady mix).
func (w *worker) popLease(dc string) (uint64, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	held := w.held[dc]
	if len(held) == 0 {
		return 0, false
	}
	id := held[0]
	copy(held, held[1:])
	w.held[dc] = held[:len(held)-1]
	return id, true
}

// peekLease reads the newest held lease for a datacenter without taking it —
// a renew keeps the lease outstanding, so the later release still happens.
// Newest first: releases drain oldest first, so the newest lease is the one
// least likely to already have a release racing it through the pipeline.
func (w *worker) peekLease(dc string) (uint64, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	held := w.held[dc]
	if len(held) == 0 {
		return 0, false
	}
	return held[len(held)-1], true
}

// maxHeldLeases caps the per-DC lease pool; a lease arriving at the cap is
// simply forgotten and left to the server's TTL sweep (which the /metrics
// books count as expired, keeping the invariant intact).
const maxHeldLeases = 1 << 16

// buildReleaseRequest serializes a release request into the worker's request
// buffer — shared by the in-mix release op and the end-of-run drain.
func (w *worker) buildReleaseRequest(dc string, id uint64) []byte {
	if w.bin {
		w.reqBuf = wire.AppendReleaseReq(w.reqBuf[:0], w.frameID, dc, id)
		return w.reqBuf
	}
	w.bodyScratch = append(w.bodyScratch[:0], `{"lease":`...)
	w.bodyScratch = strconv.AppendUint(w.bodyScratch, id, 10)
	w.bodyScratch = append(w.bodyScratch, '}')
	w.reqBuf = w.reqBuf[:0]
	w.reqBuf = append(w.reqBuf, "POST /v1/"...)
	w.reqBuf = append(w.reqBuf, dc...)
	w.reqBuf = append(w.reqBuf, "/release HTTP/1.1\r\nHost: harvestd\r\nContent-Type: application/json\r\nContent-Length: "...)
	w.reqBuf = strconv.AppendInt(w.reqBuf, int64(len(w.bodyScratch)), 10)
	w.reqBuf = append(w.reqBuf, "\r\n\r\n"...)
	w.reqBuf = append(w.reqBuf, w.bodyScratch...)
	return w.reqBuf
}

// buildRenewRequest serializes a renew request into the worker's request
// buffer. The 30-second hold is long enough that a renewed lease never
// expires mid-run but short enough that leaked leases age out quickly after.
func (w *worker) buildRenewRequest(dc string, id uint64) []byte {
	if w.bin {
		w.reqBuf = wire.AppendRenewReq(w.reqBuf[:0], w.frameID, dc,
			wire.RenewReq{Lease: id, HoldMillis: 30_000})
		return w.reqBuf
	}
	w.bodyScratch = append(w.bodyScratch[:0], `{"lease":`...)
	w.bodyScratch = strconv.AppendUint(w.bodyScratch, id, 10)
	w.bodyScratch = append(w.bodyScratch, `,"hold_seconds":30}`...)
	w.reqBuf = w.reqBuf[:0]
	w.reqBuf = append(w.reqBuf, "POST /v1/"...)
	w.reqBuf = append(w.reqBuf, dc...)
	w.reqBuf = append(w.reqBuf, "/renew HTTP/1.1\r\nHost: harvestd\r\nContent-Type: application/json\r\nContent-Length: "...)
	w.reqBuf = strconv.AppendInt(w.reqBuf, int64(len(w.bodyScratch)), 10)
	w.reqBuf = append(w.reqBuf, "\r\n\r\n"...)
	w.reqBuf = append(w.reqBuf, w.bodyScratch...)
	return w.reqBuf
}

// harvestLease pulls the lease id out of a select response and adds it to
// the held pool for a later release.
func (w *worker) harvestLease(body []byte) {
	i := bytes.Index(body, []byte(`"lease":`))
	if i < 0 {
		return // dry-run or unsatisfiable select: nothing reserved
	}
	i += len(`"lease":`)
	var id uint64
	start := i
	for i < len(body) && body[i] >= '0' && body[i] <= '9' {
		id = id*10 + uint64(body[i]-'0')
		i++
	}
	if i == start || id == 0 {
		return
	}
	// Resolve the DC by comparing against the known names — no allocation.
	dcStart := bytes.Index(body, []byte(`"datacenter":"`))
	if dcStart < 0 {
		return
	}
	dcStart += len(`"datacenter":"`)
	dcEnd := bytes.IndexByte(body[dcStart:], '"')
	if dcEnd < 0 {
		return
	}
	raw := body[dcStart : dcStart+dcEnd]
	for _, dc := range w.dcs {
		if string(raw) == dc.name { // comparison only; no allocation
			w.mu.Lock()
			if len(w.held[dc.name]) < maxHeldLeases {
				w.held[dc.name] = append(w.held[dc.name], id)
			}
			w.mu.Unlock()
			return
		}
	}
}

// enqueue writes one request into the batch buffer and records it in the
// window.
func (w *worker) enqueue() error {
	o, dci, req := w.pickRequest()
	if _, err := w.bw.Write(req); err != nil {
		return err
	}
	w.window = append(w.window, inflight{op: o, dc: dci, sentAt: time.Now()})
	return nil
}

// readOne parses the next pipelined response, accounts it against the oldest
// window entry, and feeds the server pool from place responses.
func (w *worker) readOne() error {
	entry := w.window[0]
	var err error
	if w.bin {
		err = w.readOneBinary(entry)
	} else {
		err = w.readOneJSON(entry)
	}
	if err != nil {
		return err
	}
	copy(w.window, w.window[1:])
	w.window = w.window[:len(w.window)-1]
	w.stats.latency.Observe(time.Since(entry.sentAt))
	return nil
}

func (w *worker) readOneJSON(entry inflight) error {
	status, body, err := readResponse(w.br, w.bodyBuf[:0], &w.stats.trace, &w.stats.backends)
	if err != nil {
		return err
	}
	w.bodyBuf = body[:0]
	w.stats.requests[entry.op]++
	if status >= 400 {
		w.stats.errors[entry.op]++
	} else if entry.op == opPlace {
		w.harvestServers(body)
	} else if entry.op == opSelect {
		w.harvestLease(body)
	}
	return nil
}

// readOneBinary consumes one response frame. An error frame counts as an
// error against the entry's op, mirroring the JSON path's status>=400.
func (w *worker) readOneBinary(entry inflight) error {
	h, payload, err := wire.ReadFrame(w.br, &w.bodyBuf)
	if err != nil {
		return err
	}
	w.stats.requests[entry.op]++
	if h.Op == wire.OpError {
		w.stats.errors[entry.op]++
		return nil
	}
	switch entry.op {
	case opSelect:
		if w.selResp.Decode(payload) == nil && w.selResp.Lease != 0 {
			w.holdLease(w.dcs[entry.dc].name, w.selResp.Lease)
		}
	case opPlace:
		if w.placeResp.Decode(payload) == nil {
			w.addServers(w.dcs[entry.dc].name, w.placeResp.Replicas)
		}
	}
	return nil
}

// holdLease adds a reserved lease to the held pool for a later release.
func (w *worker) holdLease(dc string, id uint64) {
	w.mu.Lock()
	if len(w.held[dc]) < maxHeldLeases {
		w.held[dc] = append(w.held[dc], id)
	}
	w.mu.Unlock()
}

// addServers tops up the server pool the server-class queries draw from.
func (w *worker) addServers(dc string, ids []int64) {
	w.mu.Lock()
	pool := w.pool[dc]
	if len(pool) < 1024 {
		pool = append(pool, ids...)
		w.pool[dc] = pool
	}
	w.mu.Unlock()
}

// runOpen is the open-loop mode: requests fire at fixed scheduled instants
// (first, first+interval, …) and each latency is measured from the
// *scheduled* time, so a lagging server accumulates visible queueing delay
// instead of silently slowing the schedule (coordinated omission). A reader
// goroutine consumes responses; the scheduler never waits for them. Unlike
// the closed loop, a broken connection fails the rest of the worker's
// schedule loudly (counted as transport errors) rather than reconnecting —
// a latency measurement with a hole in it should look like one.
func (w *worker) runOpen(first, deadline time.Time, interval time.Duration) {
	w.deadline = deadline
	if err := w.connect(); err != nil {
		w.stats.transport.Add(1)
		return
	}
	defer w.conn.Close()
	sched := make(chan inflight, 1<<16)
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		bodyBuf := make([]byte, 0, 1<<16)
		dead := false
		for entry := range sched {
			if dead {
				w.stats.transport.Add(1)
				continue
			}
			if w.bin {
				h, payload, err := wire.ReadFrame(w.br, &bodyBuf)
				if err != nil {
					w.stats.transport.Add(1)
					dead = true
					continue
				}
				w.stats.requests[entry.op]++
				if h.Op == wire.OpError {
					w.stats.errors[entry.op]++
				} else if entry.op == opSelect {
					if w.selResp.Decode(payload) == nil && w.selResp.Lease != 0 {
						w.holdLease(w.dcs[entry.dc].name, w.selResp.Lease)
					}
				} else if entry.op == opPlace {
					if w.placeResp.Decode(payload) == nil {
						w.addServers(w.dcs[entry.dc].name, w.placeResp.Replicas)
					}
				}
				w.stats.latency.Observe(time.Since(entry.sentAt))
				continue
			}
			status, body, err := readResponse(w.br, bodyBuf[:0], &w.stats.trace, &w.stats.backends)
			if err != nil {
				w.stats.transport.Add(1)
				dead = true
				continue
			}
			bodyBuf = body[:0]
			w.stats.requests[entry.op]++
			if status >= 400 {
				w.stats.errors[entry.op]++
			} else if entry.op == opPlace {
				w.harvestServers(body)
			} else if entry.op == opSelect {
				w.harvestLease(body)
			}
			w.stats.latency.Observe(time.Since(entry.sentAt))
		}
	}()
	for next := first; next.Before(deadline); next = next.Add(interval) {
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		o, dci, req := w.pickRequest()
		if _, err := w.bw.Write(req); err != nil {
			w.stats.transport.Add(1)
			break
		}
		if err := w.bw.Flush(); err != nil {
			w.stats.transport.Add(1)
			break
		}
		// Latency clock starts at the scheduled instant, not the send.
		sched <- inflight{op: o, dc: dci, sentAt: next}
	}
	close(sched)
	<-readerDone
}

// drainLeases releases every lease the run still holds, off the measured
// path, over a fresh pipelined connection. Leases it cannot release (e.g.
// the server is gone) age out via the server-side TTL, so the ledger books
// still balance.
func (w *worker) drainLeases() {
	total := 0
	w.mu.Lock()
	for _, ids := range w.held {
		total += len(ids)
	}
	w.mu.Unlock()
	if total == 0 {
		return
	}
	w.deadline = time.Now().Add(20 * time.Second)
	if err := w.connect(); err != nil {
		w.stats.transport.Add(1)
		return
	}
	defer w.conn.Close()
	inFlight := 0
	readAll := func() bool {
		if err := w.bw.Flush(); err != nil {
			w.stats.transport.Add(1)
			return false
		}
		for ; inFlight > 0; inFlight-- {
			if w.bin {
				if _, _, err := wire.ReadFrame(w.br, &w.bodyBuf); err != nil {
					w.stats.transport.Add(1)
					return false
				}
				continue
			}
			if _, body, err := readResponse(w.br, w.bodyBuf[:0], nil, nil); err != nil {
				w.stats.transport.Add(1)
				return false
			} else {
				w.bodyBuf = body[:0]
			}
		}
		return true
	}
	for _, dc := range w.dcs {
		for {
			id, ok := w.popLease(dc.name)
			if !ok {
				break
			}
			if _, err := w.bw.Write(w.buildReleaseRequest(dc.name, id)); err != nil {
				w.stats.transport.Add(1)
				return
			}
			if inFlight++; inFlight >= w.depth {
				if !readAll() {
					return
				}
			}
		}
	}
	readAll()
}

// harvestServers pulls replica IDs out of a place response body (a
// hand-rolled scan — the hot loop never touches encoding/json) and tops up
// the server pool the server-class queries draw from.
func (w *worker) harvestServers(body []byte) {
	i := bytes.Index(body, []byte(`"replicas":[`))
	if i < 0 {
		return
	}
	dcStart := bytes.Index(body, []byte(`"datacenter":"`))
	if dcStart < 0 {
		return
	}
	dcStart += len(`"datacenter":"`)
	dcEnd := bytes.IndexByte(body[dcStart:], '"')
	if dcEnd < 0 {
		return
	}
	dc := string(body[dcStart : dcStart+dcEnd])
	w.mu.Lock()
	defer w.mu.Unlock()
	pool := w.pool[dc]
	if len(pool) >= 1024 {
		return
	}
	i += len(`"replicas":[`)
	for i < len(body) && body[i] != ']' {
		var id int64
		start := i
		for i < len(body) && body[i] >= '0' && body[i] <= '9' {
			id = id*10 + int64(body[i]-'0')
			i++
		}
		if i > start {
			pool = append(pool, id)
		} else {
			// Anything but a bare non-negative integer: give up on this body
			// rather than spinning on a byte the scanner doesn't consume.
			break
		}
		if i < len(body) && body[i] == ',' {
			i++
		}
	}
	w.pool[dc] = pool
}

var (
	statusPrefix  = []byte("HTTP/1.1 ")
	contentLenHdr = []byte("Content-Length: ")
	traceHdr      = []byte(obs.TraceHeader + ": ")
	backendHdr    = []byte("X-Harvest-Backend: ")
)

// readResponse parses one HTTP/1.1 response with an explicit Content-Length
// (which harvestd guarantees) and returns the status code and body. It reads
// header lines with ReadSlice, so the per-response hot path allocates nothing
// once the body buffer has grown to its steady-state size. When trace is
// non-nil and the response carries an X-Harvest-Trace header of the expected
// width, its value is copied in — each response overwrites the last, so the
// caller ends the run holding its most recent trace id. When backends is
// non-nil, an X-Harvest-Backend header (the router naming the replica that
// served the request) bumps that backend's tally.
func readResponse(br *bufio.Reader, bodyBuf []byte, trace *[16]byte, backends *backendTally) (int, []byte, error) {
	line, err := br.ReadSlice('\n')
	if err != nil {
		return 0, nil, err
	}
	if len(line) < 12 || !bytes.HasPrefix(line, statusPrefix) {
		return 0, nil, fmt.Errorf("malformed status line %q", line)
	}
	status := 0
	for _, c := range line[9:12] {
		if c < '0' || c > '9' {
			return 0, nil, fmt.Errorf("malformed status in %q", line)
		}
		status = status*10 + int(c-'0')
	}
	contentLength := -1
	for {
		line, err = br.ReadSlice('\n')
		if err != nil {
			return 0, nil, err
		}
		if len(line) == 2 && line[0] == '\r' {
			break
		}
		if bytes.HasPrefix(line, contentLenHdr) {
			contentLength = 0
			for _, c := range bytes.TrimSpace(line[len(contentLenHdr):]) {
				if c < '0' || c > '9' {
					return 0, nil, fmt.Errorf("malformed Content-Length %q", line)
				}
				contentLength = contentLength*10 + int(c-'0')
			}
		} else if trace != nil && bytes.HasPrefix(line, traceHdr) {
			if v := bytes.TrimSpace(line[len(traceHdr):]); len(v) == len(trace) {
				copy(trace[:], v)
			}
		} else if backends != nil && bytes.HasPrefix(line, backendHdr) {
			backends.bump(bytes.TrimSpace(line[len(backendHdr):]))
		}
	}
	if contentLength < 0 {
		return 0, nil, fmt.Errorf("response without Content-Length")
	}
	if cap(bodyBuf) < contentLength {
		bodyBuf = make([]byte, contentLength)
	}
	bodyBuf = bodyBuf[:contentLength]
	if _, err := io.ReadFull(br, bodyBuf); err != nil {
		return 0, nil, err
	}
	return status, bodyBuf, nil
}

// dcReplay is the emitter's state for one datacenter: the locally
// regenerated population and the replay position on the telemetry clock.
type dcReplay struct {
	name   string
	pop    *tenant.Population
	offset time.Duration // next slot's telemetry offset
}

// runTelemetryEmitter replays each tenant's trace into harvestd's ingestion
// endpoint, one 2-minute slot per emit interval across all datacenters, and
// reports how many samples landed. The population is regenerated locally
// from the same (scale, seed) the daemon booted with, so the emitted values
// are exactly the continuation of the trace the daemon's rings were
// bootstrapped from; offsets past the one-month trace wrap around, matching
// the cyclic-replay convention everywhere else in the repo.
func runTelemetryEmitter(baseURL string, scale float64, seed int64, duration, interval, wait time.Duration, jsonOut bool) {
	// Discovery honors the same -wait grace window (and readiness bar) as
	// the query path: a router front end lists no datacenters until its
	// backends register.
	names, err := retryUntil(wait, func() ([]string, error) { return discoverDatacenters(baseURL) })
	if err != nil {
		obs.Fatal(logger, "discovery failed", "target", baseURL, "err", err)
	}
	replays := make([]*dcReplay, 0, len(names))
	for _, dc := range names {
		pop, _, err := experiments.BuildPopulation(dc, experiments.Scale{Datacenter: scale, Seed: seed})
		if err != nil {
			obs.Fatal(logger, "regenerating population failed", "dc", dc, "err", err)
		}
		// Resume the replay where the daemon's bootstrap window ends.
		var classes struct {
			AsOfSeconds float64 `json:"as_of_seconds"`
		}
		if err := getJSON(baseURL+"/v1/"+dc+"/classes", &classes); err != nil {
			obs.Fatal(logger, "reading classes failed", "dc", dc, "err", err)
		}
		replays = append(replays, &dcReplay{
			name:   dc,
			pop:    pop,
			offset: time.Duration(classes.AsOfSeconds*float64(time.Second)) + timeseries.SlotDuration,
		})
	}

	type emitReport struct {
		Mode            string  `json:"mode"`
		DurationSeconds float64 `json:"duration_seconds"`
		Datacenters     int     `json:"datacenters"`
		Batches         uint64  `json:"batches"`
		Samples         uint64  `json:"samples"`
		Rejected        uint64  `json:"rejected"`
		Errors          uint64  `json:"errors"`
	}
	var rep emitReport
	rep.Mode = "telemetry"
	rep.Datacenters = len(replays)

	var body bytes.Buffer
	start := time.Now()
	deadline := start.Add(duration)
	for time.Now().Before(deadline) {
		for _, r := range replays {
			body.Reset()
			body.WriteString(`{"samples":[`)
			for i, t := range r.pop.Tenants {
				if i > 0 {
					body.WriteByte(',')
				}
				fmt.Fprintf(&body, `{"tenant":%d,"at_seconds":%d,"utilization":%.4f}`,
					t.ID, int64(r.offset.Seconds()), t.UtilizationAt(r.offset))
			}
			body.WriteString(`]}`)
			r.offset += timeseries.SlotDuration

			resp, err := httpClient.Post(baseURL+"/v1/"+r.name+"/telemetry", "application/json",
				bytes.NewReader(body.Bytes()))
			if err != nil {
				rep.Errors++
				continue
			}
			var tr struct {
				Accepted uint64 `json:"accepted"`
				Rejected uint64 `json:"rejected"`
			}
			err = json.NewDecoder(resp.Body).Decode(&tr)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK {
				rep.Errors++
				continue
			}
			rep.Batches++
			rep.Samples += tr.Accepted
			rep.Rejected += tr.Rejected
		}
		time.Sleep(interval)
	}
	rep.DurationSeconds = time.Since(start).Seconds()

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
		return
	}
	fmt.Printf("loadgen: telemetry emitter, %d datacenters for %.1fs\n", rep.Datacenters, rep.DurationSeconds)
	fmt.Printf("  %d batches, %d samples accepted, %d rejected, %d transport/HTTP errors\n",
		rep.Batches, rep.Samples, rep.Rejected, rep.Errors)
}

// storageCfg carries the reimaging-wave driver's knobs.
type storageCfg struct {
	blocks      int
	replication int
	fraction    float64
	ingestToken string
	scale       float64
	seed        int64
	wait        time.Duration
	quiesce     time.Duration
	out         string
}

// storageDCReport is one datacenter's slice of the storage report. Ledger is
// the target's block books verbatim at the end of the run, so consumers can
// assert the conservation invariants exactly rather than trusting the
// precomputed booleans.
type storageDCReport struct {
	Datacenter      string `json:"datacenter"`
	Servers         int    `json:"servers"`
	BlocksPlaced    int    `json:"blocks_placed"`
	PlaceErrors     int    `json:"place_errors"`
	ServersReimaged int    `json:"servers_reimaged"`
	// HoldersReimaged is how many wave targets actually held replicas — the
	// number of reimages that exercised the repair path rather than wiping an
	// empty server.
	HoldersReimaged       int               `json:"holders_reimaged"`
	ReimageErrors         int               `json:"reimage_errors"`
	Ledger                blockledger.Stats `json:"ledger"`
	PlacementRelaxedTotal uint64            `json:"placement_relaxed_total"`
	RepairFailures        uint64            `json:"repair_failures"`
	// Conserved: placed + pending == replica_slots and lost == replaced +
	// pending — the ledger's books balance exactly.
	Conserved bool `json:"conserved"`
	// Quiesced: nothing pending and the repair queue is empty — every block
	// is back at full replication.
	Quiesced bool `json:"quiesced"`
}

type storageReport struct {
	Mode            string            `json:"mode"`
	DurationSeconds float64           `json:"duration_seconds"`
	Replication     int               `json:"replication"`
	BlocksPlaced    int               `json:"blocks_placed"`
	ServersReimaged int               `json:"servers_reimaged"`
	LostReplicas    int64             `json:"lost_replicas"`
	Errors          int               `json:"errors"`
	Conserved       bool              `json:"conserved"`
	Quiesced        bool              `json:"quiesced"`
	Datacenters     []storageDCReport `json:"datacenters"`
}

// storageMetricsView is the slice of the target's /metrics JSON the quiesce
// poll reads — the per-DC block books plus the placement/repair counters.
type storageMetricsView struct {
	Datacenters map[string]struct {
		Blocks                blockledger.Stats `json:"blocks"`
		PlacementRelaxedTotal uint64            `json:"placement_relaxed_total"`
		RepairFailures        uint64            `json:"repair_failures"`
	} `json:"datacenters"`
}

// postJSON posts a JSON body off the measured path, optionally with a bearer
// token, decoding a 200's response into v. Non-2xx statuses are returned to
// the caller, not treated as transport errors.
func postJSON(url, token string, body []byte, v any) (int, error) {
	req, err := http.NewRequest("POST", url, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := httpClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			return resp.StatusCode, err
		}
	}
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// waveServer is one candidate for the reimaging wave: the server, its owning
// tenant's reimage rate, and its Efraimidis–Spirakis sampling key.
type waveServer struct {
	id   int64
	rate float64
	key  float64
}

// pickWave draws a rate-weighted sample of waveSize servers without
// replacement (Efraimidis–Spirakis: key = u^(1/w), take the largest keys),
// then biases it toward replica holders: placement actively avoids
// reimage-heavy servers, so an unbiased wave can land entirely on servers
// holding nothing and the run would never exercise re-replication. The
// lowest-key non-holder picks are swapped for the highest-rate holders until
// the wave includes min(#holders, max(1, waveSize/5)) of them.
func pickWave(rates map[int64]float64, holders map[int64]bool, waveSize int, rng *rand.Rand) []waveServer {
	cands := make([]waveServer, 0, len(rates))
	for id, rate := range rates {
		// The epsilon keeps zero-rate servers reimagable: a tenant with no
		// recorded history still gets wiped occasionally in production.
		w := rate + 0.01
		cands = append(cands, waveServer{id: id, rate: rate, key: math.Pow(rng.Float64(), 1/w)})
	}
	// Deterministic for a fixed seed: map iteration order must not leak into
	// the sample, so order by key with the id as tiebreak.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].key != cands[j].key {
			return cands[i].key > cands[j].key
		}
		return cands[i].id < cands[j].id
	})
	if waveSize > len(cands) {
		waveSize = len(cands)
	}
	wave := cands[:waveSize]

	selected := make(map[int64]bool, len(wave))
	have := 0
	for _, s := range wave {
		selected[s.id] = true
		if holders[s.id] {
			have++
		}
	}
	want := len(holders)
	if ceil := max(1, waveSize/5); want > ceil {
		want = ceil
	}
	if have >= want {
		return wave
	}
	holdersByRate := make([]waveServer, 0, len(holders))
	for id := range holders {
		holdersByRate = append(holdersByRate, waveServer{id: id, rate: rates[id]})
	}
	sort.Slice(holdersByRate, func(i, j int) bool {
		if holdersByRate[i].rate != holdersByRate[j].rate {
			return holdersByRate[i].rate > holdersByRate[j].rate
		}
		return holdersByRate[i].id < holdersByRate[j].id
	})
	idx := len(wave) - 1
	for _, h := range holdersByRate {
		if have >= want {
			break
		}
		if selected[h.id] {
			continue
		}
		for idx >= 0 && holders[wave[idx].id] {
			idx--
		}
		if idx < 0 {
			break
		}
		delete(selected, wave[idx].id)
		selected[h.id] = true
		wave[idx] = h
		have++
		idx--
	}
	return wave
}

// runStorageWave drives the block ledger end to end: place blocks, reimage a
// rate-weighted wave of servers, wait for the re-replicator to restore full
// replication, and report the final books.
func runStorageWave(baseURL string, cfg storageCfg, jsonOut bool) {
	names, err := retryUntil(cfg.wait, func() ([]string, error) { return discoverDatacenters(baseURL) })
	if err != nil {
		obs.Fatal(logger, "discovery failed", "target", baseURL, "err", err)
	}

	rep := storageReport{Mode: "storage", Replication: cfg.replication}
	start := time.Now()
	placeBody := []byte(fmt.Sprintf(`{"replication":%d}`, cfg.replication))
	for dci, dc := range names {
		dcRep := storageDCReport{Datacenter: dc}

		// Phase 1: place the blocks. Replica IDs come back in the response,
		// so the wave below knows which servers actually hold data.
		holders := make(map[int64]bool)
		for i := 0; i < cfg.blocks; i++ {
			var br struct {
				Replicas []int64 `json:"replicas"`
			}
			status, err := postJSON(baseURL+"/v1/"+dc+"/blocks", "", placeBody, &br)
			if err != nil || status != http.StatusOK {
				dcRep.PlaceErrors++
				continue
			}
			dcRep.BlocksPlaced++
			for _, s := range br.Replicas {
				holders[s] = true
			}
		}

		// Phase 2: the reimaging wave. The population is regenerated locally
		// from the target's (scale, seed) — generation is deterministic — so
		// each server's weight is its owning tenant's historical reimage rate,
		// the same distribution the paper's Alg. 2 clusters on.
		pop, _, err := experiments.BuildPopulation(dc, experiments.Scale{Datacenter: cfg.scale, Seed: cfg.seed})
		if err != nil {
			obs.Fatal(logger, "regenerating population failed", "dc", dc, "err", err)
		}
		rates := make(map[int64]float64)
		for _, t := range pop.Tenants {
			for _, s := range t.Servers {
				rates[int64(s)] = t.ReimagesPerServerMonth
			}
		}
		dcRep.Servers = len(rates)
		waveSize := max(1, int(math.Ceil(cfg.fraction*float64(len(rates)))))
		rng := rand.New(rand.NewSource(cfg.seed + int64(dci)))
		for _, s := range pickWave(rates, holders, waveSize, rng) {
			var rr struct {
				Lost int `json:"lost"`
			}
			body := []byte(fmt.Sprintf(`{"server":%d}`, s.id))
			status, err := postJSON(baseURL+"/v1/"+dc+"/reimage", cfg.ingestToken, body, &rr)
			if err != nil || status != http.StatusOK {
				dcRep.ReimageErrors++
				continue
			}
			dcRep.ServersReimaged++
			if rr.Lost > 0 {
				dcRep.HoldersReimaged++
			}
		}
		rep.Datacenters = append(rep.Datacenters, dcRep)
	}

	// Phase 3: poll the books until every datacenter quiesces — nothing
	// pending, repair queue empty — or the timeout fires (reported as
	// quiesced:false, which is how CI fails a stuck re-replicator).
	deadline := time.Now().Add(cfg.quiesce)
	var view storageMetricsView
	for {
		view = storageMetricsView{}
		if err := getJSON(baseURL+"/metrics", &view); err != nil {
			obs.Fatal(logger, "reading metrics failed", "target", baseURL, "err", err)
		}
		settled := true
		for _, dc := range names {
			st := view.Datacenters[dc].Blocks
			if st.Pending != 0 || st.RepairQueue != 0 {
				settled = false
				break
			}
		}
		if settled || time.Now().After(deadline) {
			break
		}
		time.Sleep(250 * time.Millisecond)
	}
	rep.DurationSeconds = time.Since(start).Seconds()

	rep.Conserved, rep.Quiesced = true, true
	for i := range rep.Datacenters {
		d := &rep.Datacenters[i]
		row := view.Datacenters[d.Datacenter]
		d.Ledger = row.Blocks
		d.PlacementRelaxedTotal = row.PlacementRelaxedTotal
		d.RepairFailures = row.RepairFailures
		st := row.Blocks
		d.Conserved = st.Placed+st.Pending == st.ReplicaSlots && st.Lost == st.Replaced+st.Pending
		d.Quiesced = st.Pending == 0 && st.RepairQueue == 0
		rep.Conserved = rep.Conserved && d.Conserved
		rep.Quiesced = rep.Quiesced && d.Quiesced
		rep.BlocksPlaced += d.BlocksPlaced
		rep.ServersReimaged += d.ServersReimaged
		rep.LostReplicas += st.Lost
		rep.Errors += d.PlaceErrors + d.ReimageErrors
	}

	if cfg.out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = os.WriteFile(cfg.out, append(data, '\n'), 0o644)
		}
		if err != nil {
			obs.Fatal(logger, "writing report failed", "path", cfg.out, "err", err)
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
		return
	}
	fmt.Printf("loadgen: storage wave, %d datacenters for %.1fs\n", len(rep.Datacenters), rep.DurationSeconds)
	fmt.Printf("  %d blocks placed (R=%d), %d servers reimaged, %d replicas lost, %d errors\n",
		rep.BlocksPlaced, rep.Replication, rep.ServersReimaged, rep.LostReplicas, rep.Errors)
	for _, d := range rep.Datacenters {
		fmt.Printf("  %-8s %d/%d slots placed, %d pending, lost %d = replaced %d, conserved=%v quiesced=%v\n",
			d.Datacenter, d.Ledger.Placed, d.Ledger.ReplicaSlots, d.Ledger.Pending,
			d.Ledger.Lost, d.Ledger.Replaced, d.Conserved, d.Quiesced)
	}
}

// jsonReport is the machine-readable run summary (-json and -out);
// BENCH_PR2.json and the CI smoke step consume it. trace_sample is the trace
// id of the newest traced response any worker saw — recent enough to still be
// resolvable in the target's /debug/traces ring right after the run, which is
// exactly how the CI smoke job reconstructs a request across tiers.
type jsonReport struct {
	Mode            string            `json:"mode"`
	Proto           string            `json:"proto"`
	Target          string            `json:"target"`
	Mix             string            `json:"mix"`
	Seed            int64             `json:"seed"`
	DurationSeconds float64           `json:"duration_seconds"`
	Workers         int               `json:"workers"`
	Pipeline        int               `json:"pipeline"`
	TargetRate      float64           `json:"target_rate,omitempty"`
	Requests        uint64            `json:"requests"`
	Errors          uint64            `json:"errors"`
	Reconnects      uint64            `json:"reconnects"`
	QPS             float64           `json:"qps"`
	TraceSample     string            `json:"trace_sample,omitempty"`
	LatencyUs       latencyReport     `json:"latency_us"`
	Buckets         []bucketRow       `json:"latency_buckets_us"`
	Ops             map[string]opStat `json:"ops"`

	// Backends counts responses per serving replica, attributed from the
	// router's X-Harvest-Backend response header. Present only when the
	// target is a router (JSON dialect) — it is how the replica-smoke CI job
	// asserts followers actually absorbed read traffic.
	Backends map[string]uint64 `json:"backends,omitempty"`
}

type latencyReport struct {
	Mean float64 `json:"mean"`
	P50  uint64  `json:"p50"`
	P90  uint64  `json:"p90"`
	P99  uint64  `json:"p99"`
	Max  uint64  `json:"max"`
}

// bucketRow is one merged-histogram bucket: count observations at ≤ le_us
// microseconds and above the previous row's bound (non-cumulative, unlike the
// Prometheus exposition of the same histogram).
type bucketRow struct {
	LeUs  uint64 `json:"le_us"`
	Count uint64 `json:"count"`
}

type opStat struct {
	Requests uint64 `json:"requests"`
	Errors   uint64 `json:"errors"`
}

// runConfig carries the run's identifying flags into the report.
type runConfig struct {
	target   string
	proto    string
	workers  int
	pipeline int
	rate     float64
	mix      string
	seed     int64
	out      string // write the report here too ("" disables)
}

func report(results []*workerStats, cfg runConfig, duration time.Duration, jsonOut bool) {
	// Merge worker histograms into one for the global percentiles.
	var merged service.Histogram
	rep := jsonReport{
		Mode:            "closed-loop",
		Proto:           cfg.proto,
		Target:          cfg.target,
		Mix:             cfg.mix,
		Seed:            cfg.seed,
		DurationSeconds: duration.Seconds(),
		Workers:         cfg.workers,
		Pipeline:        cfg.pipeline,
		Ops:             make(map[string]opStat, numOps),
	}
	if cfg.rate > 0 {
		rep.Mode = "open-loop"
		rep.TargetRate = cfg.rate
	}
	for i := op(0); i < numOps; i++ {
		var s opStat
		for _, ws := range results {
			s.Requests += ws.requests[i]
			s.Errors += ws.errors[i]
		}
		rep.Ops[opNames[i]] = s
		rep.Requests += s.Requests
		rep.Errors += s.Errors
	}
	for _, ws := range results {
		rep.Reconnects += ws.transport.Load()
		merged.Merge(&ws.latency)
		if ws.trace[0] != 0 {
			rep.TraceSample = string(ws.trace[:])
		}
		for i, name := range ws.backends.names {
			if rep.Backends == nil {
				rep.Backends = make(map[string]uint64)
			}
			rep.Backends[name] += ws.backends.counts[i]
		}
	}
	rep.QPS = float64(rep.Requests) / duration.Seconds()
	rep.LatencyUs = latencyReport{
		Mean: merged.MeanMicros(),
		P50:  merged.QuantileMicros(0.50),
		P90:  merged.QuantileMicros(0.90),
		P99:  merged.QuantileMicros(0.99),
		Max:  merged.MaxMicros(),
	}
	counts := merged.BucketCounts(nil)
	rep.Buckets = make([]bucketRow, len(counts))
	for i, c := range counts {
		rep.Buckets[i] = bucketRow{LeUs: obs.BucketUpperMicros(i), Count: c}
	}

	if cfg.out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = os.WriteFile(cfg.out, append(data, '\n'), 0o644)
		}
		if err != nil {
			obs.Fatal(logger, "writing report failed", "path", cfg.out, "err", err)
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
		return
	}
	if cfg.rate > 0 {
		fmt.Printf("loadgen: open loop at %.0f req/s across %d workers for %v (%s)\n", cfg.rate, cfg.workers, duration, cfg.proto)
	} else {
		fmt.Printf("loadgen: %d workers x pipeline %d for %v (%s)\n", cfg.workers, cfg.pipeline, duration, cfg.proto)
	}
	fmt.Printf("  %d requests, %d errors, %d reconnects\n", rep.Requests, rep.Errors, rep.Reconnects)
	fmt.Printf("  throughput: %.0f queries/sec\n", rep.QPS)
	fmt.Printf("  latency: mean %.0fµs  p50 %dµs  p90 %dµs  p99 %dµs  max %dµs\n",
		rep.LatencyUs.Mean, rep.LatencyUs.P50, rep.LatencyUs.P90, rep.LatencyUs.P99, rep.LatencyUs.Max)
	for i := op(0); i < numOps; i++ {
		s := rep.Ops[opNames[i]]
		fmt.Printf("  %-9s %9d requests, %d errors\n", opNames[i], s.Requests, s.Errors)
	}
	if len(rep.Backends) > 0 {
		total := uint64(0)
		for _, c := range rep.Backends {
			total += c
		}
		names := make([]string, 0, len(rep.Backends))
		for name := range rep.Backends {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Printf("  served by:")
		for _, name := range names {
			fmt.Printf("  %s %.1f%%", name, 100*float64(rep.Backends[name])/float64(total))
		}
		fmt.Println()
	}
}
