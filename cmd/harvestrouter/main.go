// Command harvestrouter fronts a fleet of harvestd shards: each harvestd
// serves a subset of datacenters (-dcs) and announces itself here
// (-announce), and the router proxies /v1/{dc}/... to the owning node with
// keep-alive connection reuse and per-backend circuit breaking. The union
// surface — /v1/datacenters, /healthz, /metrics — aggregates across live
// backends, so clients (cmd/loadgen included) talk to the router exactly as
// they would to a single harvestd.
//
// Usage:
//
//	harvestrouter [-listen :7070] [-binary-listen :7071]
//	              [-stale-after 10s] [-retry-after 2s]
//	              [-breaker-fails 3] [-breaker-cooldown 2s]
//	              [-register-token TOKEN] [-debug-addr 127.0.0.1:7170]
//	              [-max-gen-lag 2] [-promote-token TOKEN] [-promote-cooldown 5s]
//
// Pair it with backends like:
//
//	harvestd -listen :7081 -binary-addr :7091 -dcs DC-9 -announce http://127.0.0.1:7070
//	harvestd -listen :7082 -dcs DC-8 -announce http://127.0.0.1:7070
//
// Backends that announce role=follower (harvestd -follow) never own routes;
// the router spreads read-only requests — GETs, placement, dry-run selects —
// across the primary and its generation-fresh followers (-max-gen-lag bounds
// how far a follower may trail; negative pins all reads to the primary) and
// pins every state-moving request to the primary. When a primary misses its
// heartbeats, the router promotes the freshest follower via POST /v1/promote
// authenticated with -promote-token (the backends' -ingest-token).
//
// -binary-listen adds a second listener speaking the length-prefixed binary
// frame dialect (internal/wire) for the data-plane endpoints; it is
// advertised as binary_addr on /v1/datacenters. Frames for backends that
// announced their own binary listener are relayed natively over pooled
// connections; frames for JSON-only backends are translated onto their HTTP
// API, so a mixed fleet keeps working mid-rollout.
package main

import (
	"flag"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"harvest/internal/obs"
	"harvest/internal/router"
	"harvest/internal/service"
)

// logger is the daemon's structured logger (component=harvestrouter).
var logger = obs.NewLogger("harvestrouter")

func main() {
	listen := flag.String("listen", ":7070", "address to serve on")
	binaryListen := flag.String("binary-listen", "", "also serve the binary frame dialect on this address (empty disables)")
	binaryAdvertise := flag.String("binary-advertise", "", "host:port to advertise as binary_addr on /v1/datacenters (default: derived from -binary-listen)")
	staleAfter := flag.Duration("stale-after", 10*time.Second, "mark a backend stale (503 its datacenters) after this long without a heartbeat")
	retryAfter := flag.Duration("retry-after", 2*time.Second, "Retry-After hint on stale-backend 503s")
	breakerFails := flag.Int("breaker-fails", 3, "consecutive transport failures that open a backend's circuit (negative disables)")
	breakerCooldown := flag.Duration("breaker-cooldown", 2*time.Second, "how long an open circuit rejects requests before a probe")
	registerToken := flag.String("register-token", "", "require this bearer token on POST /v1/register (registration moves routing — protect it on shared networks)")
	debugAddr := flag.String("debug-addr", "", "address for the operator debug listener (pprof, expvar, /debug/traces); empty disables. Keep it off the data-plane address.")
	maxGenLag := flag.Int("max-gen-lag", 2, "skip followers trailing the primary by more than this many generations for reads (negative pins all reads to the primary)")
	promoteToken := flag.String("promote-token", "", "bearer token for POST /v1/promote on failover (the backends' -ingest-token)")
	promoteCooldown := flag.Duration("promote-cooldown", 5*time.Second, "minimum interval between promotion attempts per datacenter")
	flag.Parse()

	rt := router.New(router.Config{
		StaleAfter:       *staleAfter,
		RetryAfter:       *retryAfter,
		BreakerThreshold: *breakerFails,
		BreakerCooldown:  *breakerCooldown,
		RegisterToken:    *registerToken,
		MaxGenLag:        *maxGenLag,
		PromoteToken:     *promoteToken,
		PromoteCooldown:  *promoteCooldown,
	})

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		obs.Fatal(logger, "listen failed", "addr", *listen, "err", err)
	}
	if *debugAddr != "" {
		// The debug surface stays off the data-plane listener: routing and
		// registration share -listen, operators get their own port.
		bound, err := obs.ServeDebug(*debugAddr, "harvestrouter", rt.Recorder())
		if err != nil {
			obs.Fatal(logger, "debug listener failed", "addr", *debugAddr, "err", err)
		}
		logger.Info("debug listener on", "addr", bound)
	}

	var binErrs <-chan error
	if *binaryListen != "" {
		binAddr, errc, err := rt.ListenAndServeBinary(*binaryListen)
		if err != nil {
			obs.Fatal(logger, "binary listener failed", "addr", *binaryListen, "err", err)
		}
		defer rt.CloseBinary()
		binErrs = errc
		advertise := *binaryAdvertise
		if advertise == "" {
			advertise = localHostPort(binAddr)
		}
		rt.SetBinaryAdvertise(advertise)
		logger.Info("binary dialect listening", "addr", binAddr.String(), "advertised", advertise)
	}
	server := &http.Server{
		Handler:           rt,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errs := make(chan error, 1)
	go func() { errs <- server.Serve(service.BatchListener{Listener: ln}) }()
	logger.Info("serving", "addr", *listen, "stale_after", *staleAfter)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigs:
		logger.Info("shutting down", "signal", sig.String())
		server.Close()
	case err := <-errs:
		obs.Fatal(logger, "server failed", "err", err)
	case err := <-binErrs:
		obs.Fatal(logger, "binary listener failed", "err", err)
	}
}

// localHostPort renders a bound address as something dialable: a wildcard
// host (":7071", "0.0.0.0", "::") becomes 127.0.0.1 — right for local
// deployments; use -binary-advertise when clients connect from elsewhere.
func localHostPort(bound net.Addr) string {
	host, port, err := net.SplitHostPort(bound.String())
	if err != nil {
		return bound.String()
	}
	if host == "" || host == "::" || host == "0.0.0.0" {
		host = "127.0.0.1"
	}
	return net.JoinHostPort(host, port)
}
