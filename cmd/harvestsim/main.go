// Command harvestsim runs any of the paper's experiments by name and prints
// the series or rows it produces.
//
// Usage:
//
//	harvestsim -experiment fig13 [-scale 0.05] [-seed 1]
//	harvestsim -experiment list
//
// Experiments: fig1, fig2-3, fig4, fig5, fig6, fig7, fig8, fig10-11, fig12,
// fig13, fig14, fig15, fig16, microbench.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"harvest/internal/experiments"
	"harvest/internal/obs"
)

var logger = obs.NewLogger("harvestsim")

// experimentIndex maps each runnable experiment name to the paper artifact it
// reproduces; `-experiment list` prints it and unknown names suggest from it.
var experimentIndex = []struct{ name, figure string }{
	{"fig1", "Fig. 1 — utilization patterns and dominant frequencies"},
	{"fig2-3", "Figs. 2–3 — tenant/server shares per pattern and datacenter"},
	{"fig4", "Fig. 4 — server reimage-rate CDF"},
	{"fig5", "Fig. 5 — tenant reimage-rate CDF"},
	{"fig6", "Fig. 6 — reimage group-change CDF"},
	{"fig7", "Fig. 7 — DAG max-concurrency estimate"},
	{"fig8", "Fig. 8 — 3x3 placement clustering and example selection"},
	{"fig10-11", "Figs. 10–11 — testbed scheduling (tail latency, runtime, kills)"},
	{"fig12", "Fig. 12 — storage testbed (tail latency, failed accesses)"},
	{"fig13", "Fig. 13 — utilization sweep, YARN-PT vs YARN-H"},
	{"fig14", "Fig. 14 — per-datacenter runtime improvement"},
	{"fig15", "Fig. 15 — block durability over one year of reimages"},
	{"fig16", "Fig. 16 — block availability across target utilizations"},
	{"microbench", "§6.2 — clustering/selection/placement operation costs"},
}

func experimentNames() []string {
	names := make([]string, len(experimentIndex))
	for i, e := range experimentIndex {
		names[i] = e.name
	}
	return names
}

func main() {
	experiment := flag.String("experiment", "", "experiment to run (fig1 ... fig16, microbench), or \"list\"")
	scaleFactor := flag.Float64("scale", 0.05, "datacenter scale relative to the paper's setup")
	blockScale := flag.Float64("blocks", 0.005, "block-count scale for storage experiments")
	workloadScale := flag.Float64("workload", 0.15, "workload-horizon scale for testbed experiments")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	scale := experiments.Scale{
		Datacenter: *scaleFactor,
		Blocks:     *blockScale,
		Workload:   *workloadScale,
		Seed:       *seed,
	}

	if *experiment == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*experiment, scale); err != nil {
		obs.Fatal(logger, "experiment failed", "experiment", *experiment, "err", err)
	}
}

func run(name string, scale experiments.Scale) error {
	switch name {
	case "list":
		for _, e := range experimentIndex {
			fmt.Printf("%-10s %s\n", e.name, e.figure)
		}
	case "fig1":
		results, err := experiments.Figure1(scale)
		if err != nil {
			return err
		}
		for _, r := range results {
			fmt.Printf("%s: %d samples, dominant frequency %d cycles/month\n",
				r.Pattern, len(r.TimeSeries), r.DominantFrequency)
		}
	case "fig2-3", "fig2", "fig3":
		rows, err := experiments.Figure2And3(scale)
		if err != nil {
			return err
		}
		for _, row := range rows {
			fmt.Printf("%s tenants=%d servers=%d tenantShare=%v serverShare=%v\n",
				row.Datacenter, row.TotalTenants, row.TotalServers, row.TenantShare, row.ServerShare)
		}
	case "fig4":
		return printCDF(experiments.Figure4, scale, 1.0)
	case "fig5":
		return printCDF(experiments.Figure5, scale, 1.0)
	case "fig6":
		return printCDF(experiments.Figure6, scale, 8)
	case "fig7":
		res := experiments.Figure7()
		fmt.Printf("%+v\n", res)
	case "fig8":
		res, err := experiments.Figure8(scale)
		if err != nil {
			return err
		}
		fmt.Printf("space imbalance %.2f, example selection %v\n", res.SpaceImbalance, res.ExampleSelection)
		for col := 0; col < 3; col++ {
			for row := 0; row < 3; row++ {
				fmt.Printf("cell[col=%d][row=%d]: %d tenants, %d bytes\n",
					col, row, res.CellTenants[col][row], res.CellBytes[col][row])
			}
		}
	case "fig10-11", "fig10", "fig11":
		results, err := experiments.Figure10And11(scale)
		if err != nil {
			return err
		}
		for _, r := range results {
			fmt.Printf("%-22s avgTail=%v maxTail=%v jobs=%d avgRuntime=%v kills=%d util=%.2f\n",
				r.System, r.AvgTailLatency, r.MaxTailLatency, r.CompletedJobs, r.AvgJobRuntime,
				r.TasksKilled, r.AvgClusterUtilization)
		}
	case "fig12":
		results, err := experiments.Figure12(scale)
		if err != nil {
			return err
		}
		for _, r := range results {
			fmt.Printf("%-12s avgTail=%v maxTail=%v failedAccesses=%d\n",
				r.System, r.AvgTailLatency, r.MaxTailLatency, r.FailedAccesses)
		}
	case "fig13":
		points, err := experiments.Figure13(scale, experiments.DefaultFigure13Config())
		if err != nil {
			return err
		}
		for _, p := range points {
			fmt.Printf("util=%.2f scaling=%v PT=%v H=%v improvement=%.1f%% kills PT=%d H=%d\n",
				p.TargetUtilization, p.Scaling, p.PTAvgRuntime, p.HistoryAvgRuntime,
				100*p.Improvement, p.PTKills, p.HistoryKills)
		}
	case "fig14":
		rows, err := experiments.Figure14(scale, experiments.DefaultFigure13Config(), nil)
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Printf("%s %v min=%.1f%% avg=%.1f%% max=%.1f%%\n",
				r.Datacenter, r.Scaling, 100*r.MinImprovement, 100*r.AvgImprovement, 100*r.MaxImprovement)
		}
	case "fig15":
		rows, err := experiments.Figure15(scale, experiments.DefaultFigure15Config())
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Printf("%s %v R=%d blocks=%d lost=%d (%.6f%%)\n",
				r.Datacenter, r.Policy, r.Replication, r.Blocks, r.LostBlocks, 100*r.LostFraction)
		}
	case "fig16":
		rows, err := experiments.Figure16(scale, experiments.DefaultFigure16Config())
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Printf("util=%.2f %v R=%d failed=%.5f\n",
				r.TargetUtilization, r.Policy, r.Replication, r.FailedFraction)
		}
	case "microbench":
		res, err := experiments.Microbench(scale)
		if err != nil {
			return err
		}
		fmt.Printf("clustering=%v classes=%d classSelection=%v placement=%v\n",
			res.ClusteringDuration, res.Classes, res.ClassSelectionDuration, res.PlacementDuration)
	default:
		return fmt.Errorf("unknown experiment %q; valid experiments: %s, list",
			name, strings.Join(experimentNames(), ", "))
	}
	return nil
}

func printCDF(fn func(experiments.Scale) ([]experiments.CDFRow, error), scale experiments.Scale, threshold float64) error {
	rows, err := fn(scale)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatCDFSummary(rows, threshold))
	return nil
}
