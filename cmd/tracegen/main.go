// Command tracegen generates synthetic AutoPilot-like telemetry for one of
// the built-in datacenter profiles and writes it as JSON: one record per
// primary tenant with its classification, utilization summary, and reimaging
// history. The output feeds external analysis or serves as a fixture for
// other tools.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"harvest/internal/obs"
	"harvest/internal/trace"
)

var logger = obs.NewLogger("tracegen")

// tenantRecord is the exported per-tenant JSON shape.
type tenantRecord struct {
	ID                     int       `json:"id"`
	Environment            string    `json:"environment"`
	MachineFunction        string    `json:"machineFunction"`
	Servers                int       `json:"servers"`
	Pattern                string    `json:"pattern"`
	AvgUtilization         float64   `json:"avgUtilization"`
	PeakUtilization        float64   `json:"peakUtilization"`
	ReimagesPerServerMonth float64   `json:"reimagesPerServerMonth"`
	MonthlyReimageRates    []float64 `json:"monthlyReimageRates"`
}

func main() {
	dc := flag.String("dc", "DC-9", "datacenter profile name (DC-0 ... DC-9)")
	scale := flag.Float64("scale", 0.1, "tenant-count scale relative to the full profile")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	profile, ok := trace.ProfileByName(*dc)
	if !ok {
		obs.Fatal(logger, "unknown datacenter", "dc", *dc)
	}
	pop, err := trace.NewGenerator(profile.Scaled(*scale), *seed).Generate()
	if err != nil {
		obs.Fatal(logger, "generating telemetry failed", "dc", *dc, "err", err)
	}

	records := make([]tenantRecord, 0, len(pop.Tenants))
	for _, t := range pop.Tenants {
		records = append(records, tenantRecord{
			ID:                     int(t.ID),
			Environment:            t.Environment,
			MachineFunction:        t.MachineFunction,
			Servers:                t.NumServers(),
			Pattern:                t.Pattern().String(),
			AvgUtilization:         t.AverageUtilization(),
			PeakUtilization:        t.PeakUtilization(),
			ReimagesPerServerMonth: t.ReimagesPerServerMonth,
			MonthlyReimageRates:    t.MonthlyReimageRates,
		})
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			obs.Fatal(logger, "creating output file failed", "path", *out, "err", err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(records); err != nil {
		obs.Fatal(logger, "encoding failed", "err", err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d tenants (%d servers) for %s\n",
		len(records), pop.NumServers(), pop.Datacenter)
}
