package blockledger_test

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"harvest/internal/blockledger"
	"harvest/internal/tenant"
)

func TestBlockLedgerLifecycle(t *testing.T) {
	led := blockledger.New(7)
	if got := led.Generation(); got != 7 {
		t.Fatalf("Generation() = %d, want 7", got)
	}

	id, err := led.Create(7, []tenant.ServerID{10, 20, 30}, true)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := led.Create(6, []tenant.ServerID{11}, false); !errors.Is(err, blockledger.ErrStaleGeneration) {
		t.Fatalf("stale Create err = %v, want ErrStaleGeneration", err)
	}
	if _, err := led.Create(7, []tenant.ServerID{10, 10}, false); err == nil {
		t.Fatal("duplicate-server Create succeeded")
	}

	placed, pending, ok := led.Servers(id)
	if !ok || len(placed) != 3 || pending != 0 {
		t.Fatalf("Servers(%d) = %v, %d, %v", id, placed, pending, ok)
	}

	if lost := led.Reimage(20); lost != 1 {
		t.Fatalf("Reimage(20) = %d, want 1", lost)
	}
	if lost := led.Reimage(999); lost != 0 {
		t.Fatalf("Reimage(999) = %d, want 0", lost)
	}
	st := led.Snapshot()
	if st.Placed != 2 || st.Pending != 1 || st.Lost != 1 || st.RepairQueue != 1 {
		t.Fatalf("post-reimage stats %+v", st)
	}

	refs := led.TakeRepairs(10)
	if len(refs) != 1 || refs[0].Block != id {
		t.Fatalf("TakeRepairs = %v", refs)
	}
	// A repair on a server already holding a replica must be rejected.
	if err := led.Replace(7, refs[0], 10); err == nil {
		t.Fatal("Replace onto an existing holder succeeded")
	}
	if err := led.Replace(6, refs[0], 40); !errors.Is(err, blockledger.ErrStaleGeneration) {
		t.Fatalf("stale Replace err = %v, want ErrStaleGeneration", err)
	}
	if err := led.Replace(7, refs[0], 40); err != nil {
		t.Fatalf("Replace: %v", err)
	}
	if err := led.Replace(7, refs[0], 41); !errors.Is(err, blockledger.ErrReplicaPlaced) {
		t.Fatalf("double Replace err = %v, want ErrReplicaPlaced", err)
	}
	st = led.Snapshot()
	if st.Placed != 3 || st.Pending != 0 || st.Lost != 1 || st.Replaced != 1 || st.RepairQueue != 0 {
		t.Fatalf("post-repair stats %+v", st)
	}
}

func TestBlockLedgerRekeyDisplaces(t *testing.T) {
	led := blockledger.New(1)
	// Servers 0,1,2 sit in distinct columns/rows/environments initially.
	site := func(s tenant.ServerID) (int, int, string, bool) {
		return int(s), int(s), string(rune('a' + s)), true
	}
	id, err := led.Create(1, []tenant.ServerID{0, 1, 2}, true)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if displaced := led.Rekey(2, site); displaced != 0 {
		t.Fatalf("no-op Rekey displaced %d", displaced)
	}

	// New clustering: servers 1 and 2 collapse into server 0's cell and
	// environment — both now violate and must be displaced; slot 0 survives.
	collapsed := func(s tenant.ServerID) (int, int, string, bool) {
		return 0, 0, "a", true
	}
	if displaced := led.Rekey(3, collapsed); displaced != 2 {
		t.Fatalf("collapsing Rekey displaced %d, want 2", displaced)
	}
	placed, pending, _ := led.Servers(id)
	if len(placed) != 1 || placed[0] != 0 || pending != 2 {
		t.Fatalf("post-rekey Servers = %v, %d", placed, pending)
	}
	st := led.Snapshot()
	if st.Placed+st.Pending != st.ReplicaSlots || st.Lost != st.Replaced+st.Pending {
		t.Fatalf("rekey broke conservation: %+v", st)
	}

	// An unknown server (tenant left the population) is displaced too.
	gone := func(s tenant.ServerID) (int, int, string, bool) {
		return int(s), int(s), string(rune('a' + s)), s != 0
	}
	if displaced := led.Rekey(4, gone); displaced != 1 {
		t.Fatalf("unknown-server Rekey displaced %d, want 1", displaced)
	}
}

// TestBlockLedgerConcurrentConservation hammers every mutating entry point
// from racing goroutines and asserts the books balance afterwards — the
// -race half of the conservation story.
func TestBlockLedgerConcurrentConservation(t *testing.T) {
	const population = 64
	led := blockledger.New(1)
	site := func(s tenant.ServerID) (int, int, string, bool) {
		if s < 0 || s >= population {
			return 0, 0, "", false
		}
		return int(s) % 3, (int(s) / 3) % 3, string(rune('a' + int(s)%4)), true
	}

	var wg sync.WaitGroup
	var gen sync.Map // single writer below; readers race deliberately
	gen.Store("g", uint64(1))
	curGen := func() uint64 { v, _ := gen.Load("g"); return v.(uint64) }

	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 400; i++ {
				switch rng.Intn(4) {
				case 0:
					r := rng.Intn(3) + 1
					servers := make([]tenant.ServerID, 0, r)
					for _, s := range rng.Perm(population)[:r] {
						servers = append(servers, tenant.ServerID(s))
					}
					// Stale generations are an expected outcome here; real
					// callers re-place and retry.
					led.Create(curGen(), servers, rng.Intn(2) == 0)
				case 1:
					led.Reimage(tenant.ServerID(rng.Intn(population)))
				case 2:
					for _, ref := range led.TakeRepairs(4) {
						placed, _, ok := led.Servers(ref.Block)
						if !ok {
							continue
						}
						server := tenant.ServerID(-1)
						for _, cand := range rng.Perm(population) {
							used := false
							for _, p := range placed {
								if p == tenant.ServerID(cand) {
									used = true
									break
								}
							}
							if !used {
								server = tenant.ServerID(cand)
								break
							}
						}
						if server < 0 || led.Replace(curGen(), ref, server) != nil {
							led.Requeue(ref)
						}
					}
				case 3:
					led.Snapshot()
				}
			}
		}(w)
	}
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			g := curGen() + 1
			led.Rekey(g, site)
			gen.Store("g", g)
		}
		close(done)
	}()
	wg.Wait()
	<-done

	st := led.Snapshot()
	if st.Placed+st.Pending != st.ReplicaSlots {
		t.Fatalf("conservation violated after concurrency: %+v", st)
	}
	if st.Lost != st.Replaced+st.Pending {
		t.Fatalf("loss books violated after concurrency: %+v", st)
	}
	// Drain: with no racing writers every queued ref must land or requeue
	// deterministically until pending hits zero or no eligible server exists.
	rng := rand.New(rand.NewSource(99))
	for tries := 0; tries < 10_000; tries++ {
		refs := led.TakeRepairs(16)
		if len(refs) == 0 {
			break
		}
		for _, ref := range refs {
			placed, _, ok := led.Servers(ref.Block)
			if !ok {
				continue
			}
			server := tenant.ServerID(-1)
			for _, cand := range rng.Perm(population) {
				used := false
				for _, p := range placed {
					if p == tenant.ServerID(cand) {
						used = true
						break
					}
				}
				if !used {
					server = tenant.ServerID(cand)
					break
				}
			}
			if server < 0 {
				continue
			}
			if err := led.Replace(led.Generation(), ref, server); err != nil {
				t.Fatalf("drain Replace(%v): %v", ref, err)
			}
		}
	}
	st = led.Snapshot()
	if st.Pending != 0 {
		t.Fatalf("drain left %d pending (queue %d)", st.Pending, st.RepairQueue)
	}
	if st.Lost != st.Replaced {
		t.Fatalf("drained books don't close: lost %d != replaced %d", st.Lost, st.Replaced)
	}
}
