package blockledger_test

import (
	"math/rand"
	"testing"

	"harvest/internal/blockledger"
	"harvest/internal/tenant"
)

// fuzzSite is a synthetic grid resolver: server s sits at cell
// (s mod 3, (s/3) mod 3) in environment "env-{s mod envs}", and servers past
// the population edge are unknown (their tenant left). It stands in for a
// re-clustered PlacementScheme so the fuzz can shrink and reshape the grid
// without building real populations.
func fuzzSite(population int, envs int) blockledger.SiteOf {
	return func(s tenant.ServerID) (int, int, string, bool) {
		if s < 0 || int(s) >= population {
			return 0, 0, "", false
		}
		env := byte('a' + int(s)%envs)
		return int(s) % 3, (int(s) / 3) % 3, string(env), true
	}
}

// checkBlockBooks asserts both conservation equations on a consistent
// snapshot of the books:
//
//	placed + pending == replica slots
//	lost == replaced + pending
//
// plus non-negativity and queue-vs-pending sanity (the queue never exceeds
// the pending gauge; taken-but-unfinished refs account for the difference).
func checkBlockBooks(t *testing.T, led *blockledger.Ledger, when string, inflight int) {
	t.Helper()
	st := led.Snapshot()
	if st.Placed+st.Pending != st.ReplicaSlots {
		t.Fatalf("%s: conservation violated: placed %d + pending %d != slots %d (stats %+v)",
			when, st.Placed, st.Pending, st.ReplicaSlots, st)
	}
	if st.Lost != st.Replaced+st.Pending {
		t.Fatalf("%s: loss books violated: lost %d != replaced %d + pending %d (stats %+v)",
			when, st.Lost, st.Replaced, st.Pending, st)
	}
	if st.Placed < 0 || st.Pending < 0 || st.Lost < 0 || st.Replaced < 0 || st.Blocks < 0 || st.ReplicaSlots < 0 {
		t.Fatalf("%s: negative books: %+v", when, st)
	}
	if int64(st.RepairQueue) > st.Pending {
		t.Fatalf("%s: repair queue %d exceeds pending %d", when, st.RepairQueue, st.Pending)
	}
	if int64(st.RepairQueue+inflight) < st.Pending {
		t.Fatalf("%s: queue %d + in-flight %d < pending %d: a repair was dropped",
			when, st.RepairQueue, inflight, st.Pending)
	}
}

// FuzzBlockLedgerConservation mirrors FuzzLedgerRekeyConservation for the
// block books: however places, reimaging events, repairs (landed, failed and
// requeued, or deliberately abandoned in flight), and grid-reshaping rekeys
// interleave, every block holds exactly R placed-or-pending replicas and
// every loss is either repaired or still pending — exactly, in whole
// replicas. The fuzz inputs drive a deterministic PRNG, so every failure
// reproduces from its corpus entry.
func FuzzBlockLedgerConservation(f *testing.F) {
	f.Add(int64(1), uint8(40), uint8(3), uint8(20), uint8(2))
	f.Add(int64(42), uint8(9), uint8(1), uint8(1), uint8(1))
	f.Add(int64(-7), uint8(200), uint8(5), uint8(60), uint8(4)) // big population, heavy churn
	f.Add(int64(99), uint8(4), uint8(2), uint8(30), uint8(3))   // tiny grid: repairs often can't land
	f.Fuzz(func(t *testing.T, seed int64, pop8, envs8, blocks8, rounds8 uint8) {
		rng := rand.New(rand.NewSource(seed))
		population := int(pop8%250) + 3
		envs := int(envs8%6) + 1
		numBlocks := int(blocks8 % 64)
		rounds := int(rounds8%5) + 1
		site := fuzzSite(population, envs)

		led := blockledger.New(1)
		gen := uint64(1)
		var blockIDs []uint64
		inflight := 0

		place := func(n int, when string) {
			for i := 0; i < n; i++ {
				r := rng.Intn(3) + 1
				if r > population {
					r = population
				}
				servers := make([]tenant.ServerID, 0, r)
				for _, s := range rng.Perm(population)[:r] {
					servers = append(servers, tenant.ServerID(s))
				}
				id, err := led.Create(gen, servers, rng.Intn(2) == 0)
				if err != nil {
					t.Fatalf("%s: Create(%v): %v", when, servers, err)
				}
				blockIDs = append(blockIDs, id)
			}
		}
		reimage := func(when string) {
			// Reimage a random slice of servers, including some that hold
			// nothing — a no-op event must move no books.
			for i, n := 0, rng.Intn(population/2+1); i < n; i++ {
				led.Reimage(tenant.ServerID(rng.Intn(population + 5)))
			}
			checkBlockBooks(t, led, when+" after reimage", inflight)
		}
		repair := func(when string) {
			refs := led.TakeRepairs(rng.Intn(8) + 1)
			for _, ref := range refs {
				switch rng.Intn(5) {
				case 0:
					// Placement failed: hand the ref back.
					led.Requeue(ref)
				case 1:
					// The repairer died with the ref in flight; Restore/ApplyState
					// is what recovers these, exercised below.
					inflight++
				default:
					placed, pending, ok := led.Servers(ref.Block)
					if !ok {
						t.Fatalf("%s: repair ref for unknown block %d", when, ref.Block)
					}
					if pending == 0 {
						t.Fatalf("%s: repair ref %v but block has no pending slots", when, ref)
					}
					// Pick any server not already holding a replica; when the
					// population is exhausted, requeue like a real repairer would.
					server := tenant.ServerID(-1)
					for _, cand := range rng.Perm(population) {
						used := false
						for _, p := range placed {
							if p == tenant.ServerID(cand) {
								used = true
								break
							}
						}
						if !used {
							server = tenant.ServerID(cand)
							break
						}
					}
					if server < 0 {
						led.Requeue(ref)
						continue
					}
					if err := led.Replace(gen, ref, server); err != nil {
						t.Fatalf("%s: Replace(%v, %d): %v", when, ref, server, err)
					}
				}
			}
			checkBlockBooks(t, led, when+" after repairs", inflight)
		}

		place(numBlocks, "seed")
		checkBlockBooks(t, led, "after seed places", inflight)

		for round := 0; round < rounds; round++ {
			reimage("round")
			repair("round")
			// Reshape the grid: shrink or grow the known population and the
			// environment count, then rekey. Displacements must keep the books
			// balanced; a rekey under the same resolver displaces nothing new
			// for blocks it already validated, but that's not asserted — only
			// conservation is.
			population2 := rng.Intn(population+10) + 1
			envs2 := rng.Intn(6) + 1
			site = fuzzSite(population2, envs2)
			gen++
			led.Rekey(gen, site)
			// Rekey rebuilds nothing queue-side for in-flight refs, but a
			// displaced slot enqueues anew; stale in-flight refs now target
			// still-pending slots and Requeue/Replace must handle them.
			checkBlockBooks(t, led, "after rekey", inflight)
			population = population2
			envs = envs2
			place(rng.Intn(4), "post-rekey")
			repair("post-rekey")
		}

		// Export → Restore must preserve the books exactly and rebuild the
		// repair queue to cover every pending slot (recovering the abandoned
		// in-flight refs).
		before := led.Snapshot()
		restored, err := blockledger.Restore(led.Export(), gen)
		if err != nil {
			t.Fatalf("Restore: %v", err)
		}
		after := restored.Snapshot()
		if after.Placed != before.Placed || after.Pending != before.Pending ||
			after.ReplicaSlots != before.ReplicaSlots || after.Lost != before.Lost ||
			after.Replaced != before.Replaced || after.Blocks != before.Blocks {
			t.Fatalf("restore moved the books: before %+v after %+v", before, after)
		}
		if int64(after.RepairQueue) != after.Pending {
			t.Fatalf("restore rebuilt queue %d != pending %d", after.RepairQueue, after.Pending)
		}
		checkBlockBooks(t, restored, "after restore", 0)
	})
}
