// Package blockledger tracks one datacenter's HDFS-H block placements as a
// live, conservation-checked ledger — the storage twin of internal/ledger's
// allocation books. A block is created with exactly R replicas placed by
// Algorithm 2 (internal/core.PlacementScheme); a reimaging event marks every
// replica on the reimaged server lost and enqueues its repair; re-clustering
// re-keys the ledger to the new generation and displaces replicas that
// violate the new grid. Through all of it the books balance exactly:
//
//	placed + pending == replica slots (R summed over live blocks)
//	lost == replaced + pending
//
// in whole replicas, where pending is the gauge of slots awaiting repair.
// The invariant is asserted the same way the allocation ledger's is — fuzzed
// locally, jq'd in CI — so a dropped repair or a double-counted loss is an
// arithmetic error, not a trend on a dashboard.
package blockledger

import (
	crand "crypto/rand"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"

	"harvest/internal/core"
	"harvest/internal/tenant"
)

// ErrStaleGeneration is returned when a caller's snapshot generation does not
// match the ledger's: the placement it computed is against a grid that no
// longer exists, so it must re-place against the current snapshot and retry.
var ErrStaleGeneration = errors.New("blockledger: stale snapshot generation")

// ErrUnknownBlock is returned for operations on a block id never issued (or
// already deleted).
var ErrUnknownBlock = errors.New("blockledger: unknown block")

// ErrReplicaPlaced is returned when a repair lands on a replica slot that is
// no longer pending — a duplicate delivery of the same repair ref.
var ErrReplicaPlaced = errors.New("blockledger: replica already placed")

// replica is one of a block's R slots: the server holding it when placed, or
// the slot awaiting re-replication when not.
type replica struct {
	server tenant.ServerID
	placed bool
}

// block is one tracked block. The replica slice never changes length after
// creation — a slot's index is its stable identity in repair refs.
type block struct {
	id        uint64
	envStrict bool
	replicas  []replica
}

// Repair references one pending replica slot awaiting re-replication.
type Repair struct {
	Block   uint64
	Replica int
}

const (
	numShards = 16
	shardMask = numShards - 1
)

func shardOf(id uint64) int { return int(id & shardMask) }

// maxJSONSafeID mirrors internal/ledger: block ids ride JSON as numbers, so
// they stay under 2^53 to survive float64-backed consumers exactly.
const maxJSONSafeID = 1<<53 - 1

// blockShard is one lock-striped slice of the block map. byServer indexes
// each server's placed replicas (block id → slot) so a reimaging event finds
// its casualties without scanning; a server holds at most one replica of any
// block, so the inner map is exact.
type blockShard struct {
	mu       sync.Mutex
	blocks   map[uint64]*block
	byServer map[tenant.ServerID]map[uint64]int
	idrng    *rand.ChaCha8
}

func (sh *blockShard) newBlockID(shardIdx int) uint64 {
	for {
		id := sh.idrng.Uint64()&maxJSONSafeID&^uint64(shardMask) | uint64(shardIdx)
		if id == 0 {
			continue
		}
		if _, taken := sh.blocks[id]; !taken {
			return id
		}
	}
}

// indexPlaced records server → (block, slot) in the shard's reverse index.
func (sh *blockShard) indexPlaced(server tenant.ServerID, blockID uint64, slot int) {
	m := sh.byServer[server]
	if m == nil {
		m = make(map[uint64]int)
		sh.byServer[server] = m
	}
	m[blockID] = slot
}

func (sh *blockShard) unindexPlaced(server tenant.ServerID, blockID uint64) {
	if m := sh.byServer[server]; m != nil {
		delete(m, blockID)
		if len(m) == 0 {
			delete(sh.byServer, server)
		}
	}
}

// Ledger tracks one datacenter's block placements. Lock order matches
// internal/ledger: single-block operations take exactly one shard lock;
// global operations (Rekey, Export, ApplyState) take all shard locks in
// ascending order, then the queue lock if needed.
type Ledger struct {
	generation atomic.Uint64

	shards [numShards]blockShard

	// queueMu guards the FIFO of repair refs. Queue membership is the
	// "awaiting repair, not yet in flight" subset of pending slots; the
	// pending gauge itself moves only under the owning shard's lock.
	queueMu sync.Mutex
	queue   []Repair

	// Books. Gauges and cumulative counters move while the owning shard's
	// lock is held, so a lock-all reader sees arithmetic that balances.
	blocks   atomic.Int64 // live blocks
	slots    atomic.Int64 // replica slots across live blocks (R summed)
	placed   atomic.Int64 // gauge: slots holding a live replica
	pending  atomic.Int64 // gauge: slots awaiting re-replication
	lost     atomic.Int64 // cumulative: replicas lost to reimaging or displaced by re-key
	replaced atomic.Int64 // cumulative: repairs that landed
	creates  atomic.Uint64
	reimages atomic.Uint64 // reimaging events that hit at least one replica
	stales   atomic.Uint64 // creates/replaces rejected for generation mismatch
}

// New creates an empty block ledger keyed to the given snapshot generation.
func New(generation uint64) *Ledger {
	l := &Ledger{}
	for i := range l.shards {
		var seed [32]byte
		if _, err := crand.Read(seed[:]); err != nil {
			panic("blockledger: reading CSPRNG seed: " + err.Error())
		}
		l.shards[i].blocks = make(map[uint64]*block)
		l.shards[i].byServer = make(map[tenant.ServerID]map[uint64]int)
		l.shards[i].idrng = rand.NewChaCha8(seed)
	}
	l.generation.Store(generation)
	return l
}

func (l *Ledger) lockAll() {
	for i := range l.shards {
		l.shards[i].mu.Lock()
	}
}

func (l *Ledger) unlockAll() {
	for i := range l.shards {
		l.shards[i].mu.Unlock()
	}
}

// Generation returns the snapshot generation the ledger is keyed to.
func (l *Ledger) Generation() uint64 { return l.generation.Load() }

// Create records a new block whose replicas were just placed on the given
// servers against the given snapshot generation. All replicas start placed —
// the caller runs Algorithm 2 first and only creates on success. envStrict
// records whether the environment constraint was enforced, so a later re-key
// knows which diversity rules this block's placement promised.
func (l *Ledger) Create(generation uint64, servers []tenant.ServerID, envStrict bool) (uint64, error) {
	if len(servers) == 0 {
		return 0, fmt.Errorf("blockledger: a block needs at least one replica")
	}
	for i, s := range servers {
		for _, prev := range servers[:i] {
			if s == prev {
				return 0, fmt.Errorf("blockledger: duplicate replica server %d", s)
			}
		}
	}
	// Pick the shard from the first server — any stable spread works; the
	// block id minted below carries the shard in its low bits from then on.
	shardIdx := int(uint64(servers[0]) & shardMask)
	sh := &l.shards[shardIdx]
	sh.mu.Lock()
	if l.generation.Load() != generation {
		sh.mu.Unlock()
		l.stales.Add(1)
		return 0, ErrStaleGeneration
	}
	b := &block{id: sh.newBlockID(shardIdx), envStrict: envStrict, replicas: make([]replica, len(servers))}
	for i, s := range servers {
		b.replicas[i] = replica{server: s, placed: true}
		sh.indexPlaced(s, b.id, i)
	}
	sh.blocks[b.id] = b
	l.blocks.Add(1)
	l.slots.Add(int64(len(servers)))
	l.placed.Add(int64(len(servers)))
	l.creates.Add(1)
	sh.mu.Unlock()
	return b.id, nil
}

// Reimage marks every replica on the server lost and enqueues its repair,
// returning how many replicas the event hit. A reimaged server that held
// nothing returns 0 and moves no books.
func (l *Ledger) Reimage(server tenant.ServerID) int {
	total := 0
	var refs []Repair
	for i := range l.shards {
		sh := &l.shards[i]
		sh.mu.Lock()
		hits := sh.byServer[server]
		if len(hits) == 0 {
			sh.mu.Unlock()
			continue
		}
		for blockID, slot := range hits {
			b := sh.blocks[blockID]
			b.replicas[slot].placed = false
			refs = append(refs, Repair{Block: blockID, Replica: slot})
		}
		n := int64(len(hits))
		delete(sh.byServer, server)
		l.placed.Add(-n)
		l.pending.Add(n)
		l.lost.Add(n)
		total += int(n)
		sh.mu.Unlock()
	}
	if total > 0 {
		l.reimages.Add(1)
		l.queueMu.Lock()
		l.queue = append(l.queue, refs...)
		l.queueMu.Unlock()
	}
	return total
}

// TakeRepairs pops up to max repair refs off the queue. A taken ref is "in
// flight": the slot stays pending until Replace lands it or Requeue hands it
// back, and a crash in between is recovered by Restore rebuilding the queue
// from the pending slots themselves.
func (l *Ledger) TakeRepairs(max int) []Repair {
	l.queueMu.Lock()
	defer l.queueMu.Unlock()
	if max <= 0 || len(l.queue) == 0 {
		return nil
	}
	if max > len(l.queue) {
		max = len(l.queue)
	}
	taken := make([]Repair, max)
	copy(taken, l.queue[:max])
	n := copy(l.queue, l.queue[max:])
	l.queue = l.queue[:n]
	return taken
}

// Requeue hands an in-flight repair ref back (placement failed or was
// interrupted). A ref whose slot meanwhile landed is dropped.
func (l *Ledger) Requeue(r Repair) {
	sh := &l.shards[shardOf(r.Block)]
	sh.mu.Lock()
	b := sh.blocks[r.Block]
	stillPending := b != nil && r.Replica >= 0 && r.Replica < len(b.replicas) && !b.replicas[r.Replica].placed
	sh.mu.Unlock()
	if !stillPending {
		return
	}
	l.queueMu.Lock()
	l.queue = append(l.queue, r)
	l.queueMu.Unlock()
}

// Replace lands a repair: the pending slot is re-placed on the given server,
// which must have been picked against the given snapshot generation. On
// ErrStaleGeneration the caller re-places against the current snapshot and
// retries with the same ref.
func (l *Ledger) Replace(generation uint64, r Repair, server tenant.ServerID) error {
	sh := &l.shards[shardOf(r.Block)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if l.generation.Load() != generation {
		l.stales.Add(1)
		return ErrStaleGeneration
	}
	b := sh.blocks[r.Block]
	if b == nil || r.Replica < 0 || r.Replica >= len(b.replicas) {
		return ErrUnknownBlock
	}
	if b.replicas[r.Replica].placed {
		return ErrReplicaPlaced
	}
	for i := range b.replicas {
		if b.replicas[i].placed && b.replicas[i].server == server {
			return fmt.Errorf("blockledger: server %d already holds a replica of block %d", server, r.Block)
		}
	}
	b.replicas[r.Replica] = replica{server: server, placed: true}
	sh.indexPlaced(server, b.id, r.Replica)
	l.pending.Add(-1)
	l.placed.Add(1)
	l.replaced.Add(1)
	return nil
}

// Servers returns the block's currently placed replica servers (the
// exclusion/seed set for repair placement) and how many of its slots are
// pending. ok is false for an unknown block.
func (l *Ledger) Servers(blockID uint64) (placedServers []tenant.ServerID, pendingSlots int, ok bool) {
	sh := &l.shards[shardOf(blockID)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	b := sh.blocks[blockID]
	if b == nil {
		return nil, 0, false
	}
	for _, r := range b.replicas {
		if r.placed {
			placedServers = append(placedServers, r.server)
		} else {
			pendingSlots++
		}
	}
	return placedServers, pendingSlots, true
}

// EnvStrict reports whether the block's placement promised environment
// diversity — what a repair must re-enforce. ok is false for an unknown
// block.
func (l *Ledger) EnvStrict(blockID uint64) (envStrict, ok bool) {
	sh := &l.shards[shardOf(blockID)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	b := sh.blocks[blockID]
	if b == nil {
		return false, false
	}
	return b.envStrict, true
}

// SiteOf resolves a server's grid cell and environment under a placement
// scheme — the resolver shape Rekey takes, so the service passes the new
// snapshot's scheme directly.
type SiteOf func(tenant.ServerID) (col, row int, env string, ok bool)

// Rekey moves the ledger to a new snapshot generation and re-validates every
// block's placement against the re-clustered grid via the resolver: replicas
// on servers the new scheme no longer knows are displaced, as are replicas
// that now violate the block's diversity promises — a duplicate environment
// (env-strict blocks only) or a shared row/column within a round of three.
// Displaced replicas move placed → pending, count as lost, and enqueue
// repairs, so the conservation equations keep balancing across the re-key
// exactly as allocation leases do across theirs. Returns the displaced count.
//
// Rekey with the ledger's current generation is a no-op revalidation bump;
// passing the same resolver the blocks were placed under displaces nothing.
func (l *Ledger) Rekey(newGeneration uint64, site SiteOf) int {
	l.lockAll()
	displacedTotal := 0
	var refs []Repair
	for i := range l.shards {
		sh := &l.shards[i]
		for _, b := range sh.blocks {
			displacedTotal += l.rekeyBlock(sh, b, site, &refs)
		}
	}
	l.generation.Store(newGeneration)
	l.unlockAll()
	if len(refs) > 0 {
		l.queueMu.Lock()
		l.queue = append(l.queue, refs...)
		l.queueMu.Unlock()
	}
	return displacedTotal
}

// rekeyBlock re-validates one block under the new scheme with its shard lock
// held, displacing violating replicas. Constraint state is rebuilt in slot
// order, mirroring Algorithm 2's placement walk: environments accumulate for
// the whole block, row/column history resets every PlacementGridSize slots.
// Pending slots keep their position in the round but contribute no
// constraints — their site is decided at repair time.
func (l *Ledger) rekeyBlock(sh *blockShard, b *block, site SiteOf, refs *[]Repair) int {
	displaced := 0
	var usedCols, usedRows uint32
	var usedEnvs []string
	for slot := range b.replicas {
		if slot%core.PlacementGridSize == 0 {
			usedCols, usedRows = 0, 0
		}
		r := &b.replicas[slot]
		if !r.placed {
			continue
		}
		col, row, env, ok := site(r.server)
		violates := !ok
		if !violates && b.envStrict {
			for _, e := range usedEnvs {
				if e == env {
					violates = true
					break
				}
			}
		}
		if !violates && (usedCols&(1<<uint(col)) != 0 || usedRows&(1<<uint(row)) != 0) {
			violates = true
		}
		if violates {
			sh.unindexPlaced(r.server, b.id)
			r.placed = false
			*refs = append(*refs, Repair{Block: b.id, Replica: slot})
			l.placed.Add(-1)
			l.pending.Add(1)
			l.lost.Add(1)
			displaced++
			continue
		}
		usedEnvs = append(usedEnvs, env)
		usedCols |= 1 << uint(col)
		usedRows |= 1 << uint(row)
	}
	return displaced
}

// Stats is the ledger's section of /metrics. All counts are whole replicas;
// the conservation checks are Placed+Pending == ReplicaSlots and
// Lost == Replaced+Pending, exactly.
type Stats struct {
	Generation   uint64 `json:"generation"`
	Blocks       int64  `json:"blocks"`
	ReplicaSlots int64  `json:"replica_slots"`
	Placed       int64  `json:"placed"`
	Pending      int64  `json:"pending"`
	Lost         int64  `json:"lost"`
	Replaced     int64  `json:"replaced"`
	Creates      uint64 `json:"creates"`
	Reimages     uint64 `json:"reimages"`
	StaleRetries uint64 `json:"stale_retries"`
	RepairQueue  int    `json:"repair_queue"`
}

// Snapshot returns a consistent reading of the books: taken under all shard
// locks so the gauges balance against the cumulative counters exactly.
func (l *Ledger) Snapshot() Stats {
	l.lockAll()
	st := Stats{
		Generation:   l.generation.Load(),
		Blocks:       l.blocks.Load(),
		ReplicaSlots: l.slots.Load(),
		Placed:       l.placed.Load(),
		Pending:      l.pending.Load(),
		Lost:         l.lost.Load(),
		Replaced:     l.replaced.Load(),
		Creates:      l.creates.Load(),
		Reimages:     l.reimages.Load(),
		StaleRetries: l.stales.Load(),
	}
	l.unlockAll()
	l.queueMu.Lock()
	st.RepairQueue = len(l.queue)
	l.queueMu.Unlock()
	return st
}

// PersistedReplica is one replica slot in the exported state. Server is
// meaningless when Placed is false.
type PersistedReplica struct {
	Server tenant.ServerID `json:"server"`
	Placed bool            `json:"placed"`
}

// PersistedBlock is one block in the exported state.
type PersistedBlock struct {
	ID        uint64             `json:"id"`
	EnvStrict bool               `json:"env_strict,omitempty"`
	Replicas  []PersistedReplica `json:"replicas"`
}

// State is the full exported ledger: every block plus the cumulative books,
// shippable over the replication stream and to disk. The repair queue is not
// exported — it is exactly the pending slots, rebuilt on restore/apply.
type State struct {
	Generation uint64           `json:"generation"`
	Lost       int64            `json:"lost"`
	Replaced   int64            `json:"replaced"`
	Creates    uint64           `json:"creates"`
	Reimages   uint64           `json:"reimages"`
	Blocks     []PersistedBlock `json:"blocks"`
}

// Export returns a consistent copy of the full ledger state.
func (l *Ledger) Export() State {
	l.lockAll()
	st := State{
		Generation: l.generation.Load(),
		Lost:       l.lost.Load(),
		Replaced:   l.replaced.Load(),
		Creates:    l.creates.Load(),
		Reimages:   l.reimages.Load(),
	}
	n := 0
	for i := range l.shards {
		n += len(l.shards[i].blocks)
	}
	st.Blocks = make([]PersistedBlock, 0, n)
	for i := range l.shards {
		for _, b := range l.shards[i].blocks {
			pb := PersistedBlock{ID: b.id, EnvStrict: b.envStrict, Replicas: make([]PersistedReplica, len(b.replicas))}
			for j, r := range b.replicas {
				pb.Replicas[j] = PersistedReplica{Server: r.server, Placed: r.placed}
			}
			st.Blocks = append(st.Blocks, pb)
		}
	}
	l.unlockAll()
	return st
}

// ApplyState replaces the ledger's contents with an exported state — the
// follower's apply path, run on every replication frame. Blocks with a
// malformed shape (empty, or id routed to the wrong shard) are skipped
// rather than trusted; the books are recomputed from what was actually
// applied so the invariant holds even against a lying peer.
func (l *Ledger) ApplyState(st State) {
	l.lockAll()
	for i := range l.shards {
		sh := &l.shards[i]
		clear(sh.blocks)
		clear(sh.byServer)
	}
	var slots, placed, pending int64
	var blocks int64
	for _, pb := range st.Blocks {
		if pb.ID == 0 || len(pb.Replicas) == 0 {
			continue
		}
		sh := &l.shards[shardOf(pb.ID)]
		if _, dup := sh.blocks[pb.ID]; dup {
			continue
		}
		b := &block{id: pb.ID, envStrict: pb.EnvStrict, replicas: make([]replica, len(pb.Replicas))}
		for j, pr := range pb.Replicas {
			b.replicas[j] = replica{server: pr.Server, placed: pr.Placed}
			if pr.Placed {
				sh.indexPlaced(pr.Server, b.id, j)
				placed++
			} else {
				pending++
			}
		}
		sh.blocks[b.id] = b
		blocks++
		slots += int64(len(pb.Replicas))
	}
	l.blocks.Store(blocks)
	l.slots.Store(slots)
	l.placed.Store(placed)
	l.pending.Store(pending)
	l.lost.Store(st.Lost)
	l.replaced.Store(st.Replaced)
	l.creates.Store(st.Creates)
	l.reimages.Store(st.Reimages)
	l.generation.Store(st.Generation)
	l.unlockAll()
	l.rebuildQueue()
}

// rebuildQueue re-derives the repair queue from the pending slots — the
// restore/apply path, and the promoted follower's recovery of repairs that
// were in flight on the old primary when it died.
func (l *Ledger) rebuildQueue() {
	var refs []Repair
	l.lockAll()
	for i := range l.shards {
		for _, b := range l.shards[i].blocks {
			for slot := range b.replicas {
				if !b.replicas[slot].placed {
					refs = append(refs, Repair{Block: b.id, Replica: slot})
				}
			}
		}
	}
	l.unlockAll()
	l.queueMu.Lock()
	l.queue = refs
	l.queueMu.Unlock()
}

// Restore builds a ledger from persisted state, re-keyed to the current
// snapshot generation (the caller re-validates placements via Rekey if the
// generation moved). An error is returned only for irrecoverably malformed
// state; individual bad blocks are dropped by ApplyState's validation.
func Restore(st State, generation uint64) (*Ledger, error) {
	l := New(generation)
	l.ApplyState(st)
	l.generation.Store(generation)
	return l, nil
}
