package service

import (
	"errors"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"harvest/internal/core"
	"harvest/internal/ledger"
	"harvest/internal/obs"
	"harvest/internal/tenant"
	"harvest/internal/wire"
)

// Binary server tuning. The idle timeout matches the JSON server's; the
// write timeout bounds how long a flush may block on a stalled client before
// the connection is abandoned.
const (
	binaryIdleTimeout  = 2 * time.Minute
	binaryWriteTimeout = 30 * time.Second
	// binaryFlushLimit mirrors batchFlushLimit: responses park in the output
	// buffer until the connection turns to read, but a burst of large
	// responses flushes eagerly so the buffer cannot grow without bound.
	binaryFlushLimit = 64 << 10
	// binaryReadBuffer sizes the per-connection read buffer: big enough that
	// a full pipeline window of requests (~64 × ~50 bytes) arrives in one
	// read syscall.
	binaryReadBuffer = 64 << 10
)

// binaryOps maps an opcode to its dense metrics index; see opIndex.
var binaryOps = []wire.Op{wire.OpSelect, wire.OpRelease, wire.OpPlace, wire.OpClasses, wire.OpServerClass, wire.OpRenew, wire.OpPlaceBlock, wire.OpReimage}

func opIndex(op wire.Op) int {
	i := int(op) - 1
	if i < 0 || i >= len(binaryOps) {
		return -1
	}
	return i
}

// BinaryServer serves the wire package's binary frame dialect of the query
// API: the same select/release/place/classes/server-class semantics as the
// JSON handlers in http.go, minus net/http and encoding/json. Each accepted
// connection gets one goroutine running a read–dispatch–append loop straight
// against the service's snapshot/ledger fast paths; responses accumulate in
// a per-connection buffer and flush when the connection turns to read (the
// BatchListener write-behind discipline, here without the net/http
// indirection), so a pipelining client costs roughly one syscall pair per
// batch rather than per request.
//
// The dispatch loop distinguishes two failure classes: a well-framed request
// the service rejects (unknown datacenter, bad parameters) answers with an
// OpError frame carrying the JSON API's status code for the same failure and
// the connection lives on; a framing violation (bad magic, absurd length)
// means the peer is desynced or not speaking the protocol, and the
// connection closes immediately.
type BinaryServer struct {
	svc *Service

	// metrics is indexed by opIndex; same counters as the JSON endpoints so
	// /metrics reports both dialects side by side.
	metrics [8]EndpointMetrics

	// rec, when set (AttachBinary shares the API's), records one trace per
	// dispatched frame; nil keeps the dispatch path trace-free.
	rec *obs.Recorder

	accepted      atomic.Uint64
	open          atomic.Int64
	framingErrors atomic.Uint64

	mu     sync.Mutex
	ln     net.Listener
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// NewBinaryServer returns a binary frame server over svc. Call Serve with a
// listener to start accepting.
func NewBinaryServer(svc *Service) *BinaryServer {
	return &BinaryServer{svc: svc, conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections on ln until Close, blocking like http.Serve.
func (b *BinaryServer) Serve(ln net.Listener) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		ln.Close()
		return errors.New("binary server closed")
	}
	b.ln = ln
	b.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			b.mu.Lock()
			closed := b.closed
			b.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		b.mu.Lock()
		if b.closed {
			b.mu.Unlock()
			c.Close()
			return nil
		}
		b.conns[c] = struct{}{}
		b.mu.Unlock()
		b.accepted.Add(1)
		b.open.Add(1)
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			b.handleConn(c)
		}()
	}
}

// Close stops accepting, closes every open connection, and waits for the
// per-connection goroutines to drain.
func (b *BinaryServer) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		b.wg.Wait()
		return
	}
	b.closed = true
	if b.ln != nil {
		b.ln.Close()
	}
	for c := range b.conns {
		c.Close()
	}
	b.mu.Unlock()
	b.wg.Wait()
}

func (b *BinaryServer) dropConn(c net.Conn) {
	c.Close()
	b.mu.Lock()
	delete(b.conns, c)
	b.mu.Unlock()
	b.open.Add(-1)
}

// connReader is the minimal buffered reader the frame loop needs: unlike
// bufio.Reader it exposes its buffer fill directly, and ReadFull-style frame
// reads come straight off the buffer without interface indirection.
type connReader struct {
	c   net.Conn
	buf []byte
	r   int // next unread byte
	w   int // buffer fill
}

// buffered reports bytes already read from the socket but not yet consumed —
// the "more requests in this pipeline turn?" signal the flush discipline
// keys on.
func (cr *connReader) buffered() int { return cr.w - cr.r }

// fill reads at least n unconsumed bytes into the buffer, compacting first.
// Returns false on EOF/error.
func (cr *connReader) fill(n int, deadline time.Time) bool {
	if cr.buffered() >= n {
		return true
	}
	if cr.r > 0 {
		copy(cr.buf, cr.buf[cr.r:cr.w])
		cr.w -= cr.r
		cr.r = 0
	}
	if n > len(cr.buf) {
		grown := make([]byte, n)
		copy(grown, cr.buf[:cr.w])
		cr.buf = grown
	}
	for cr.w < n {
		cr.c.SetReadDeadline(deadline)
		m, err := cr.c.Read(cr.buf[cr.w:])
		cr.w += m
		if err != nil {
			return cr.w >= n
		}
	}
	return true
}

// take consumes n buffered bytes. Caller must have ensured them via fill.
func (cr *connReader) take(n int) []byte {
	p := cr.buf[cr.r : cr.r+n]
	cr.r += n
	return p
}

func (b *BinaryServer) handleConn(c net.Conn) {
	defer b.dropConn(c)
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	cr := &connReader{c: c, buf: make([]byte, binaryReadBuffer)}
	out := make([]byte, 0, binaryFlushLimit)
	// dcNames interns datacenter names so steady-state dispatch makes no
	// string allocations: a connection talks to a handful of datacenters,
	// each paying one allocation on first sight.
	dcNames := make(map[string]string, 4)

	flush := func() bool {
		if len(out) == 0 {
			return true
		}
		c.SetWriteDeadline(time.Now().Add(binaryWriteTimeout))
		_, err := c.Write(out)
		out = out[:0]
		return err == nil
	}

	for {
		// The write-behind turn: responses drain only once the input buffer
		// is empty (the client is done with this pipeline burst), or above
		// the flush limit below.
		if cr.buffered() < wire.HeaderSize {
			if !flush() {
				return
			}
			if !cr.fill(wire.HeaderSize, time.Now().Add(binaryIdleTimeout)) {
				return
			}
		}
		h, err := wire.ParseHeader(cr.buf[cr.r : cr.r+wire.HeaderSize])
		if err != nil {
			// Desynced or not our protocol: nothing sane can follow.
			b.framingErrors.Add(1)
			flush()
			return
		}
		if h.Op.IsRepl() {
			// Replication frames belong on the dedicated replication listener.
			// Rejected before the payload fill: repl opcodes carry the 64 MiB
			// replication cap through ParseHeader, and honoring one here would
			// let any public client balloon the connection buffer.
			b.framingErrors.Add(1)
			flush()
			return
		}
		if !cr.fill(wire.HeaderSize+int(h.Len), time.Now().Add(binaryIdleTimeout)) {
			b.framingErrors.Add(1)
			flush()
			return
		}
		cr.take(wire.HeaderSize)
		payload := cr.take(int(h.Len))
		out = b.dispatch(out, h, payload, dcNames)
		if len(out) >= binaryFlushLimit {
			if !flush() {
				return
			}
		}
	}
}

// internDC maps the payload's datacenter bytes to a stable string without
// allocating on the hit path (the map index with an inline []byte→string
// conversion compiles to an allocation-free lookup).
func internDC(names map[string]string, b []byte) string {
	if s, ok := names[string(b)]; ok {
		return s
	}
	s := string(b)
	names[s] = s
	return s
}

// dispatch decodes one request frame, executes it, and appends the response
// frame to out. Semantic failures append an OpError frame with the status
// code the JSON API would have used.
func (b *BinaryServer) dispatch(out []byte, h wire.Header, payload []byte, dcNames map[string]string) []byte {
	start := time.Now()
	status := 200
	// The trace id joins the two tiers on /debug/traces: for a direct client
	// it is the echoed frame id; a pipelining router rewrites the frame id
	// for its own completion keying and carries the client's original id in
	// a FlagTrace payload prefix instead (id 0 gets a server-assigned one).
	traceID, payload, ok := wire.SplitTrace(h, payload)
	if !ok {
		return wire.AppendErrorResp(out, h.ID, 400, "bad trace prefix")
	}
	var tr *obs.Trace
	if h.Op.IsRequest() {
		tr = b.rec.Begin(traceID, obs.DialectBinary, h.Op.String(), "")
	}
	switch h.Op {
	case wire.OpSelect:
		out, status = b.doSelect(out, h.ID, payload, dcNames, tr)
	case wire.OpRelease:
		out, status = b.doRelease(out, h.ID, payload, dcNames)
	case wire.OpRenew:
		out, status = b.doRenew(out, h.ID, payload, dcNames)
	case wire.OpPlace:
		out, status = b.doPlace(out, h.ID, payload)
	case wire.OpClasses:
		out, status = b.doClasses(out, h.ID, payload)
	case wire.OpServerClass:
		out, status = b.doServerClass(out, h.ID, payload)
	case wire.OpPlaceBlock:
		out, status = b.doPlaceBlock(out, h.ID, payload, dcNames)
	case wire.OpReimage:
		out, status = b.doReimage(out, h.ID, payload, dcNames)
	default:
		return wire.AppendErrorResp(out, h.ID, 400, "unknown opcode")
	}
	if i := opIndex(h.Op); i >= 0 {
		b.metrics[i].Observe(time.Since(start), status)
	}
	tr.Finish(status)
	return out
}

// fail appends an error frame and returns the status for metrics.
func fail(out []byte, id uint64, code uint16, msg string) ([]byte, int) {
	return wire.AppendErrorResp(out, id, code, msg), int(code)
}

func (b *BinaryServer) snapshotFor(dc []byte) (*Snapshot, bool) {
	sh, ok := b.svc.shards[string(dc)]
	if !ok {
		return nil, false
	}
	return sh.snap.Load(), true
}

func (b *BinaryServer) doSelect(out []byte, id uint64, payload []byte, dcNames map[string]string, tr *obs.Trace) ([]byte, int) {
	var m wire.SelectReq
	if err := m.Decode(payload); err != nil {
		return fail(out, id, 400, "bad select payload")
	}
	snap, ok := b.snapshotFor(m.DC)
	if !ok {
		return fail(out, id, 404, "unknown datacenter")
	}
	tr.SetDC(snap.Datacenter)
	if !(m.MaxCores > 0) || math.IsInf(m.MaxCores, 1) {
		return fail(out, id, 400, "max cores must be positive and finite")
	}
	if m.HoldMillis > maxHoldSeconds*1000 {
		return fail(out, id, 400, "hold exceeds the one-hour cap")
	}
	var jobType core.JobType
	switch m.Job {
	case wire.JobShort:
		jobType = core.JobShort
	case wire.JobMedium:
		jobType = core.JobMedium
	case wire.JobLong:
		jobType = core.JobLong
	case wire.JobFromLastRun:
		if !(m.LastRunSeconds >= 0 && m.LastRunSeconds <= maxTelemetryOffsetSeconds) {
			return fail(out, id, 400, "bad last-run duration")
		}
		jobType = core.ClassifyLength(time.Duration(m.LastRunSeconds*float64(time.Second)), snap.Thresholds)
	default:
		return fail(out, id, 400, "bad job type")
	}
	job := core.JobRequest{Type: jobType, MaxConcurrentCores: m.MaxCores}

	mark := len(out)
	out = wire.BeginFrame(out, wire.OpSelectResp, id)
	if m.Flags&wire.SelectFlagDryRun != 0 {
		sel := b.svc.SelectOn(snap, job)
		out = wire.AppendU64(out, snap.Generation)
		out = wire.AppendU64(out, 0) // no lease
		out = wire.AppendF64(out, 0)
		out = wire.AppendU8(out, uint8(jobType))
		out = wire.AppendU8(out, boolByte(!sel.Empty()))
		out = wire.AppendU16(out, uint16(len(sel.Classes)))
		for i, cls := range sel.Classes {
			out = wire.AppendU32(out, uint32(cls))
			out = wire.AppendF64(out, sel.Headrooms[i])
			out = wire.AppendF64(out, 0)
		}
		return wire.EndFrame(out, mark), 200
	}
	grant, at, err := b.svc.SelectReserveTraced(internDC(dcNames, m.DC), job,
		time.Duration(m.HoldMillis)*time.Millisecond, ledger.Meta{}, tr)
	if err != nil {
		out = out[:mark] // drop the half-built frame
		if errors.Is(err, ErrFollower) {
			return fail(out, id, 503, err.Error())
		}
		return fail(out, id, 500, err.Error())
	}
	var expiresIn float64
	if !grant.ExpiresAt.IsZero() {
		expiresIn = time.Until(grant.ExpiresAt).Seconds()
	}
	out = wire.AppendU64(out, at.Generation)
	out = wire.AppendU64(out, grant.Lease)
	out = wire.AppendF64(out, expiresIn)
	out = wire.AppendU8(out, uint8(jobType))
	out = wire.AppendU8(out, boolByte(grant.Reserved()))
	out = wire.AppendU16(out, uint16(len(grant.Selection.Classes)))
	for i, cls := range grant.Selection.Classes {
		out = wire.AppendU32(out, uint32(cls))
		out = wire.AppendF64(out, grant.Selection.Headrooms[i])
		if i < len(grant.Granted) {
			out = wire.AppendF64(out, grant.Granted[i])
		} else {
			out = wire.AppendF64(out, 0)
		}
	}
	return wire.EndFrame(out, mark), 200
}

func (b *BinaryServer) doRelease(out []byte, id uint64, payload []byte, dcNames map[string]string) ([]byte, int) {
	var m wire.ReleaseReq
	if err := m.Decode(payload); err != nil {
		return fail(out, id, 400, "bad release payload")
	}
	if _, ok := b.svc.shards[string(m.DC)]; !ok {
		return fail(out, id, 404, "unknown datacenter")
	}
	if m.Lease == 0 {
		return fail(out, id, 400, "lease must be a nonzero id")
	}
	lease, err := b.svc.Release(internDC(dcNames, m.DC), m.Lease)
	if err != nil {
		if errors.Is(err, ledger.ErrUnknownLease) {
			return fail(out, id, 404, "unknown lease")
		}
		if errors.Is(err, ErrFollower) {
			return fail(out, id, 503, err.Error())
		}
		return fail(out, id, 500, err.Error())
	}
	mark := len(out)
	out = wire.BeginFrame(out, wire.OpReleaseResp, id)
	out = wire.AppendU64(out, lease.ID)
	out = wire.AppendI64(out, lease.TotalMillis())
	out = wire.AppendU16(out, uint16(len(lease.Grants)))
	for _, g := range lease.Grants {
		out = wire.AppendU32(out, uint32(g.Class))
		out = wire.AppendI64(out, g.Millis)
	}
	return wire.EndFrame(out, mark), 200
}

func (b *BinaryServer) doRenew(out []byte, id uint64, payload []byte, dcNames map[string]string) ([]byte, int) {
	var m wire.RenewReq
	if err := m.Decode(payload); err != nil {
		return fail(out, id, 400, "bad renew payload")
	}
	if _, ok := b.svc.shards[string(m.DC)]; !ok {
		return fail(out, id, 404, "unknown datacenter")
	}
	if m.Lease == 0 {
		return fail(out, id, 400, "lease must be a nonzero id")
	}
	if m.HoldMillis > maxHoldSeconds*1000 {
		return fail(out, id, 400, "hold exceeds the one-hour cap")
	}
	lease, err := b.svc.Renew(internDC(dcNames, m.DC), m.Lease,
		time.Duration(m.HoldMillis)*time.Millisecond)
	if err != nil {
		if errors.Is(err, ledger.ErrUnknownLease) {
			return fail(out, id, 404, "unknown lease")
		}
		if errors.Is(err, ErrFollower) {
			return fail(out, id, 503, err.Error())
		}
		return fail(out, id, 500, err.Error())
	}
	resp := wire.RenewResp{Lease: lease.ID, TotalMillis: lease.TotalMillis()}
	if !lease.ExpiresAt.IsZero() {
		resp.ExpiresIn = time.Until(lease.ExpiresAt).Seconds()
	}
	return wire.AppendRenewResp(out, id, &resp), 200
}

func (b *BinaryServer) doPlace(out []byte, id uint64, payload []byte) ([]byte, int) {
	var m wire.PlaceReq
	if err := m.Decode(payload); err != nil {
		return fail(out, id, 400, "bad place payload")
	}
	snap, ok := b.snapshotFor(m.DC)
	if !ok {
		return fail(out, id, 404, "unknown datacenter")
	}
	if m.Replication == 0 || int(m.Replication) > maxReplication {
		return fail(out, id, 400, "bad replication factor")
	}
	replicas, err := b.svc.PlaceOn(snap, core.PlacementConstraints{
		Replication:        int(m.Replication),
		Writer:             tenant.ServerID(m.Writer),
		EnforceEnvironment: m.Flags&wire.PlaceFlagRelaxed == 0,
	})
	if err != nil {
		return fail(out, id, 409, err.Error())
	}
	mark := len(out)
	out = wire.BeginFrame(out, wire.OpPlaceResp, id)
	out = wire.AppendU64(out, snap.Generation)
	out = wire.AppendU16(out, uint16(len(replicas)))
	for _, s := range replicas {
		out = wire.AppendI64(out, int64(s))
	}
	return wire.EndFrame(out, mark), 200
}

func (b *BinaryServer) doPlaceBlock(out []byte, id uint64, payload []byte, dcNames map[string]string) ([]byte, int) {
	var m wire.PlaceBlockReq
	if err := m.Decode(payload); err != nil {
		return fail(out, id, 400, "bad place-block payload")
	}
	if _, ok := b.svc.shards[string(m.DC)]; !ok {
		return fail(out, id, 404, "unknown datacenter")
	}
	if m.Replication == 0 || int(m.Replication) > maxReplication {
		return fail(out, id, 400, "bad replication factor")
	}
	placed, err := b.svc.CreateBlock(internDC(dcNames, m.DC), core.PlacementConstraints{
		Replication:        int(m.Replication),
		Writer:             tenant.ServerID(m.Writer),
		EnforceEnvironment: m.Flags&wire.PlaceFlagRelaxed == 0,
	})
	if err != nil {
		if errors.Is(err, ErrFollower) {
			return fail(out, id, 503, err.Error())
		}
		return fail(out, id, 409, err.Error())
	}
	mark := len(out)
	out = wire.BeginFrame(out, wire.OpPlaceBlockResp, id)
	out = wire.AppendU64(out, placed.Generation)
	out = wire.AppendU64(out, placed.Block)
	out = wire.AppendU16(out, uint16(len(placed.Replicas)))
	for _, s := range placed.Replicas {
		out = wire.AppendI64(out, int64(s))
	}
	return wire.EndFrame(out, mark), 200
}

func (b *BinaryServer) doReimage(out []byte, id uint64, payload []byte, dcNames map[string]string) ([]byte, int) {
	var m wire.ReimageReq
	if err := m.Decode(payload); err != nil {
		return fail(out, id, 400, "bad reimage payload")
	}
	if _, ok := b.svc.shards[string(m.DC)]; !ok {
		return fail(out, id, 404, "unknown datacenter")
	}
	dc := internDC(dcNames, m.DC)
	lost, err := b.svc.ReimageServer(dc, tenant.ServerID(m.Server))
	if err != nil {
		if errors.Is(err, ErrFollower) {
			return fail(out, id, 503, err.Error())
		}
		return fail(out, id, 500, err.Error())
	}
	var pending uint32
	if st, ok := b.svc.BlockStats(dc); ok {
		pending = uint32(st.Pending)
	}
	resp := wire.ReimageResp{Server: m.Server, Lost: uint32(lost), Pending: pending}
	return wire.AppendReimageResp(out, id, &resp), 200
}

// appendClassRec encodes one class against the live usage view and ledger
// occupancy — the binary twin of classInfoOf.
func appendClassRec(out []byte, cls *core.UtilizationClass, usage map[core.ClassID]core.ClassUsage, allocMillis []int64) []byte {
	out = wire.AppendU32(out, uint32(cls.ID))
	out = wire.AppendU8(out, uint8(cls.Pattern))
	out = wire.AppendU32(out, uint32(len(cls.Tenants)))
	out = wire.AppendU32(out, uint32(cls.NumServers()))
	out = wire.AppendF64(out, cls.AvgUtilization)
	out = wire.AppendF64(out, cls.PeakUtilization)
	out = wire.AppendF64(out, usage[cls.ID].CurrentUtilization)
	var millis int64
	if i := int(cls.ID); i >= 0 && i < len(allocMillis) {
		millis = allocMillis[i]
	}
	out = wire.AppendI64(out, millis)
	example := int64(-1)
	if len(cls.Servers) > 0 {
		example = int64(cls.Servers[0])
	}
	return wire.AppendI64(out, example)
}

// ledgerAllocFor is the binary twin of API.ledgerAllocFor: per-class
// occupancy aligned to the snapshot, nil around a re-key.
func (b *BinaryServer) ledgerAllocFor(snap *Snapshot) []int64 {
	gen, alloc, ok := b.svc.LedgerOccupancy(snap.Datacenter)
	if !ok || gen != snap.Generation {
		return nil
	}
	return alloc
}

func (b *BinaryServer) doClasses(out []byte, id uint64, payload []byte) ([]byte, int) {
	var m wire.ClassesReq
	if err := m.Decode(payload); err != nil {
		return fail(out, id, 400, "bad classes payload")
	}
	snap, ok := b.snapshotFor(m.DC)
	if !ok {
		return fail(out, id, 404, "unknown datacenter")
	}
	usage := b.svc.UsageFor(snap)
	alloc := b.ledgerAllocFor(snap)
	mark := len(out)
	out = wire.BeginFrame(out, wire.OpClassesResp, id)
	out = wire.AppendU64(out, snap.Generation)
	out = wire.AppendF64(out, snap.AsOf.Seconds())
	out = wire.AppendU16(out, uint16(len(snap.Clustering.Classes)))
	for _, cls := range snap.Clustering.Classes {
		out = appendClassRec(out, cls, usage, alloc)
	}
	return wire.EndFrame(out, mark), 200
}

func (b *BinaryServer) doServerClass(out []byte, id uint64, payload []byte) ([]byte, int) {
	var m wire.ServerClassReq
	if err := m.Decode(payload); err != nil {
		return fail(out, id, 400, "bad server-class payload")
	}
	snap, ok := b.snapshotFor(m.DC)
	if !ok {
		return fail(out, id, 404, "unknown datacenter")
	}
	cls, ok := snap.ClassOfServer(tenant.ServerID(m.Server))
	if !ok {
		return fail(out, id, 404, "unknown server")
	}
	mark := len(out)
	out = wire.BeginFrame(out, wire.OpServerClassResp, id)
	out = wire.AppendU64(out, snap.Generation)
	out = wire.AppendI64(out, m.Server)
	out = appendClassRec(out, cls, b.svc.UsageFor(snap), b.ledgerAllocFor(snap))
	return wire.EndFrame(out, mark), 200
}

func boolByte(v bool) uint8 {
	if v {
		return 1
	}
	return 0
}

// BinaryStats is the /metrics view of the binary listener.
type BinaryStats struct {
	Accepted      uint64
	Open          int64
	FramingErrors uint64
}

// Stats returns connection counters for /metrics.
func (b *BinaryServer) Stats() BinaryStats {
	return BinaryStats{
		Accepted:      b.accepted.Load(),
		Open:          b.open.Load(),
		FramingErrors: b.framingErrors.Load(),
	}
}

// endpointMetric exposes one opcode's counters for /metrics; nil for
// non-request opcodes.
func (b *BinaryServer) endpointMetric(op wire.Op) *EndpointMetrics {
	i := opIndex(op)
	if i < 0 {
		return nil
	}
	return &b.metrics[i]
}

// ListenAndServe binds addr and serves until Close — the cmd/harvestd entry
// point. The returned channel yields the terminal Serve error (nil on a
// clean Close).
func (b *BinaryServer) ListenAndServe(addr string) (net.Addr, <-chan error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	errc := make(chan error, 1)
	go func() {
		if err := b.Serve(ln); err != nil {
			slogger.Warn("binary server accept failed", "err", err)
			errc <- err
		}
		close(errc)
	}()
	return ln.Addr(), errc, nil
}
