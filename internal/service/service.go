package service

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"harvest/internal/blockledger"
	"harvest/internal/core"
	"harvest/internal/experiments"
	"harvest/internal/ledger"
	"harvest/internal/obs"
	"harvest/internal/signalproc"
	"harvest/internal/telemetry"
	"harvest/internal/tenant"
	"harvest/internal/timeseries"
	"harvest/internal/trace"
)

// slogger is the serving layer's structured logger: every line carries
// component=service plus dc/err fields per call site.
var slogger = obs.NewLogger("service")

// Config parameterizes the characterization service.
type Config struct {
	// Datacenters lists the profiles to serve. Empty means every built-in
	// profile (DC-0 … DC-9).
	Datacenters []string
	// Scale sizes the generated populations, exactly as in the experiment
	// harnesses. The zero value normalizes to quick scale.
	Scale experiments.Scale
	// RefreshPeriod is the wall-clock interval between snapshot rebuilds
	// (hours in the paper's deployment; seconds in tests). Zero disables the
	// background refresher — snapshots then only change via Refresh.
	RefreshPeriod time.Duration
	// RingSlots is the per-tenant telemetry ring capacity in samples (one
	// sample per 2-minute slot). Zero means one month — the paper's full
	// characterization window.
	RingSlots int
	// FullRebuildEvery forces every Nth refresh to re-cluster from scratch
	// instead of warm-starting from the previous generation — the
	// correctness backstop for incremental drift. Zero means 24; negative
	// disables full rebuilds (warm-start always).
	FullRebuildEvery int
	// PersistDir, when non-empty, persists each published snapshot to
	// <dir>/<dc>.snapshot.json (atomic rename) and restores the last good
	// one at construction instead of paying the boot re-clustering. The
	// allocation ledger rides along in <dir>/<dc>.ledger.json, so leases
	// survive a restart.
	PersistDir string
	// LeaseTTL is the default lifetime of a select reservation before the
	// expiry sweep reclaims it from a client that never released. Zero means
	// 2 minutes; negative disables expiry (leases live until released).
	LeaseTTL time.Duration
	// SweepPeriod is how often the background sweeper scans for expired
	// leases once Start is called. Zero derives it from LeaseTTL (a quarter,
	// clamped to [100ms, 10s]).
	SweepPeriod time.Duration
	// TenantStaleAfter, when positive, evicts the telemetry ring of any
	// tenant whose last sample (bootstrap included) is older than this at
	// refresh time: the tenant stops pinning a full history window in memory
	// and drops out of the next re-clustering until it reports again.
	TenantStaleAfter time.Duration
	// Clustering and Selector configure the core algorithms.
	Clustering core.ClusteringConfig
	Selector   core.SelectorConfig
	// Seed drives population generation and the per-request RNG pool.
	Seed int64
	// NodeID names this node in replication handshakes and registration
	// beats. Empty defaults to "harvestd".
	NodeID string
	// FollowAddr, when non-empty, runs the service as a read-only follower:
	// instead of refreshing snapshots from its own rings, it dials the
	// primary's replication listener at this address and applies shipped
	// (snapshot, ledger-occupancy) generations. Writes (reserving select,
	// release, renew, telemetry ingest) are rejected with ErrFollower until
	// Promote. The follower must be configured with the same datacenters,
	// scale and seed as its primary — the clustering it applies only makes
	// sense over the identical population.
	FollowAddr string
	// ReplInterval is the cadence the primary ships replication frames at
	// (and the follower's liveness expectation). Zero means 250ms.
	ReplInterval time.Duration
	// RepairInterval is how often the background re-replicator drains the
	// block ledger's repair queue (a compressed stand-in for the paper's
	// 10-minute repair detection delay). Zero means 250ms; negative disables
	// the loop — repairs then only happen via RepairBlocks.
	RepairInterval time.Duration
	// RepairBatch bounds how many repairs one re-replicator tick attempts per
	// datacenter. Zero means 64.
	RepairBatch int
}

// DefaultConfig serves every datacenter at quick scale, refreshing every
// 30 seconds (a compressed stand-in for the paper's every-few-hours cadence).
func DefaultConfig() Config {
	return Config{
		Scale:         experiments.QuickScale(),
		RefreshPeriod: 30 * time.Second,
		Clustering:    core.DefaultClusteringConfig(),
		Selector:      core.DefaultSelectorConfig(),
		Seed:          1,
	}
}

// usageView is one computation of a shard's live per-class usage, cached
// behind an atomic pointer and invalidated by generation or ingest progress.
// src overlays the cached utilization with the ledger's live allocation
// counters, so selections read current AllocatedCores without a rebuild.
// idx is the headroom index built over the same view: per-class capacity
// bounds are fixed for the view's lifetime, so every select against the view
// shares one index and only reads live occupancy through src.
type usageView struct {
	generation uint64
	samples    uint64 // rings.TotalSamples() at build time
	usage      map[core.ClassID]core.ClassUsage
	src        *ledgerUsage
	idx        *core.SelectIndex
}

// ledgerUsage is the core.UsageSource the query path runs against:
// CurrentUtilization from the cached view (recomputed on ingest progress),
// AllocatedCores loaded live from the ledger's atomic counters. Immutable
// after construction; reads are two pointer loads and an atomic load.
type ledgerUsage struct {
	generation uint64
	base       map[core.ClassID]core.ClassUsage
	led        *ledger.Ledger
}

// UsageOf implements core.UsageSource.
func (u *ledgerUsage) UsageOf(id core.ClassID) core.ClassUsage {
	cu := u.base[id]
	if a, ok := u.led.AllocatedCores(u.generation, id); ok {
		cu.AllocatedCores = a
	}
	return cu
}

// AllocatedCoresOf implements core.AllocSource for the indexed select path:
// one atomic load per class, no base-map composition. A generation mismatch
// (re-key racing the read) reads as zero, same as UsageOf's fallback.
func (u *ledgerUsage) AllocatedCoresOf(id core.ClassID) float64 {
	if a, ok := u.led.AllocatedCores(u.generation, id); ok {
		return a
	}
	return u.base[id].AllocatedCores
}

// shard is one datacenter's slot: the published snapshot, the telemetry
// rings, and the private rebuild state. Only the shard's refresher goroutine
// (or Refresh callers serialized by mu) touches pop and sinceFull; readers
// only ever Load pointers.
type shard struct {
	dc     string
	snap   atomic.Pointer[Snapshot]
	rings  *telemetry.Store
	led    *ledger.Ledger
	blocks *blockledger.Ledger

	liveUsage atomic.Pointer[usageView]

	mu        sync.Mutex // serializes rebuilds; never held on the query path
	pop       *tenant.Population
	sinceFull int // warm refreshes since the last full rebuild (guarded by mu)

	refreshes     atomic.Uint64
	refreshErrors atomic.Uint64
	warmRefreshes atomic.Uint64
	fullRebuilds  atomic.Uint64
	ingested      atomic.Uint64 // live samples accepted via Ingest
	persistErrors atomic.Uint64
	staleRetries  atomic.Uint64 // SelectReserve retries due to a re-key in flight

	// repairFailures counts re-replicator attempts that could not land (no
	// eligible server, or the placement kept racing) and went back on the
	// queue — the signal that a datacenter is too depleted to restore R.
	repairFailures atomic.Uint64

	// driftThr is the auto-tuned warm-recluster drift threshold (float64
	// bits): every full rebuild measures how often the incremental path's
	// assignments agreed with the from-scratch oracle and feeds the result
	// back — high agreement relaxes the threshold (fewer reclassifications),
	// disagreement tightens it. Bounded to [base/4, base*8].
	driftThr atomic.Uint64

	// replGen and replAppliedAt record the last replication frame applied to
	// this shard (follower role): the generation and the wall-clock nanos of
	// the apply, for lag exposition and router staleness gating.
	replGen       atomic.Uint64
	replAppliedAt atomic.Int64

	// refreshLatency observes every successful refreshShard's end-to-end
	// duration (recluster + assemble + rekey + publish) — the scale metric
	// the incremental snapshot path exists to hold down.
	refreshLatency Histogram
	// lastRecluster is the most recent warm refresh's stats: how much of the
	// pipeline the incremental path skipped (drift, splice, reuse counters).
	lastRecluster atomic.Pointer[core.ReclusterStats]
}

// Service is the characterization service: per-datacenter snapshot shards
// fed by live telemetry rings, a background refresher per shard, and a pool
// of per-request RNGs.
type Service struct {
	cfg    Config
	order  []string
	shards map[string]*shard

	rngs    sync.Pool
	rngSeed atomic.Int64

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
	started  atomic.Bool

	// follower is the node's role: true while the service applies replicated
	// generations instead of building its own. Promote flips it exactly once.
	follower atomic.Bool
	repl     replState
}

// ErrFollower rejects write-path calls (reserving select, release, renew,
// ingest) on a follower: only the primary may move the books, or a promoted
// follower's ledger would diverge from the replicated stream.
var ErrFollower = errors.New("service: node is a follower; writes go to the primary")

// New builds every datacenter's boot state synchronously, so a service that
// returns without error is immediately queryable: the tenant population is
// generated, its telemetry rings are bootstrapped from the trace (the
// trailing ring-capacity window, so a full analysis window exists before the
// first live sample arrives), and the boot snapshot is either restored from
// PersistDir or clustered from the rings. Call Start to launch the
// background refreshers and Close to stop them.
func New(cfg Config) (*Service, error) {
	if len(cfg.Datacenters) == 0 {
		for _, p := range trace.BuiltinProfiles() {
			cfg.Datacenters = append(cfg.Datacenters, p.Name)
		}
	}
	if cfg.RingSlots <= 0 {
		cfg.RingSlots = timeseries.SlotsPerMonth
	}
	if cfg.FullRebuildEvery == 0 {
		cfg.FullRebuildEvery = 24
	}
	if cfg.LeaseTTL == 0 {
		cfg.LeaseTTL = 2 * time.Minute
	}
	if cfg.SweepPeriod <= 0 {
		cfg.SweepPeriod = cfg.LeaseTTL / 4
		if cfg.SweepPeriod < 100*time.Millisecond {
			cfg.SweepPeriod = 100 * time.Millisecond
		}
		if cfg.SweepPeriod > 10*time.Second {
			cfg.SweepPeriod = 10 * time.Second
		}
	}
	// Fill unset fields individually so a caller customizing one knob (say,
	// Thresholds) keeps it; only the genuinely zero pieces take defaults.
	// ReserveFraction is left alone — zero is a legitimate "no reserve".
	defSel := core.DefaultSelectorConfig()
	if cfg.Selector.CoresPerServer <= 0 {
		cfg.Selector.CoresPerServer = defSel.CoresPerServer
	}
	if cfg.Selector.Weights == nil {
		cfg.Selector.Weights = defSel.Weights
	}
	if cfg.Selector.Thresholds == (core.LengthThresholds{}) {
		cfg.Selector.Thresholds = defSel.Thresholds
	}
	if cfg.Clustering.Classifier == (signalproc.ClassifierConfig{}) {
		cfg.Clustering.Classifier = signalproc.DefaultClassifierConfig()
	}
	if cfg.NodeID == "" {
		cfg.NodeID = "harvestd"
	}
	if cfg.ReplInterval <= 0 {
		cfg.ReplInterval = 250 * time.Millisecond
	}
	if cfg.RepairInterval == 0 {
		cfg.RepairInterval = 250 * time.Millisecond
	}
	if cfg.RepairBatch <= 0 {
		cfg.RepairBatch = 64
	}

	s := &Service{
		cfg:    cfg,
		shards: make(map[string]*shard, len(cfg.Datacenters)),
		stop:   make(chan struct{}),
	}
	s.follower.Store(cfg.FollowAddr != "")
	s.repl.stopFollow = make(chan struct{})
	s.rngSeed.Store(cfg.Seed)
	s.rngs.New = func() any {
		return rand.New(rand.NewSource(s.rngSeed.Add(1)))
	}

	for _, dc := range cfg.Datacenters {
		if _, dup := s.shards[dc]; dup {
			return nil, fmt.Errorf("service: duplicate datacenter %q", dc)
		}
		pop, _, err := experiments.BuildPopulation(dc, cfg.Scale)
		if err != nil {
			return nil, err
		}
		sh := &shard{dc: dc, pop: pop}
		sh.driftThr.Store(math.Float64bits(baseDriftThreshold(cfg.Clustering)))
		if err := s.bootstrapRings(sh); err != nil {
			return nil, err
		}
		snap, restored := s.restoreSnapshot(sh)
		if snap == nil {
			snap, err = buildSnapshot(dc, pop, sh.rings, cfg, 1)
			if err != nil {
				return nil, err
			}
			s.persistSnapshot(sh, snap)
		}
		if restored {
			slogger.Info("restored persisted snapshot", "dc", dc, "generation", snap.Generation)
		}
		// The ledger starts empty at the boot generation unless a persisted
		// one matches the restored snapshot — then outstanding leases (minus
		// the ones that expired while the daemon was down) carry over.
		sh.led = s.restoreLedger(sh, snap)
		if sh.led == nil {
			sh.led = ledger.New(snap.Generation, len(snap.Clustering.Classes))
		}
		// The block ledger rides the same persistence lifecycle: restored
		// blocks (and their pending repairs, rebuilt from the pending slots)
		// survive a restart; otherwise the books start empty at the boot
		// generation.
		sh.blocks = s.restoreBlocks(sh, snap)
		if sh.blocks == nil {
			sh.blocks = blockledger.New(snap.Generation)
		}
		sh.snap.Store(snap)
		s.order = append(s.order, dc)
		s.shards[dc] = sh
	}
	return s, nil
}

// bootstrapRings seeds the shard's telemetry rings from the generated trace:
// the trailing window of each tenant's one-month series, ending at the trace
// horizon, so the first characterization analyses the same data the old
// trace-backed path would have.
func (s *Service) bootstrapRings(sh *shard) error {
	ids := make([]tenant.ID, len(sh.pop.Tenants))
	for i, t := range sh.pop.Tenants {
		ids[i] = t.ID
	}
	sh.rings = telemetry.NewStore(ids, timeseries.SlotDuration, s.cfg.RingSlots)
	for _, t := range sh.pop.Tenants {
		if t.Utilization == nil || t.Utilization.Len() == 0 {
			return fmt.Errorf("service: %s: tenant %v has no trace to bootstrap from", sh.dc, t.ID)
		}
		if err := sh.rings.Bootstrap(t.ID, t.Utilization, t.Utilization.Duration()); err != nil {
			return fmt.Errorf("service: %s: %w", sh.dc, err)
		}
	}
	return nil
}

// Start launches one refresher goroutine per shard (when RefreshPeriod is
// positive) and the lease-expiry sweeper (when LeaseTTL is positive). It is
// a no-op when the service is already started.
func (s *Service) Start() {
	if !s.started.CompareAndSwap(false, true) {
		return
	}
	if s.follower.Load() {
		// A follower neither refreshes nor sweeps: both would move the books
		// independently of the primary's stream. Promote starts them.
		s.wg.Add(1)
		go s.followLoop()
		return
	}
	s.startPrimaryLoops()
}

// startPrimaryLoops launches the primary-role background work: one refresher
// per shard and the lease-expiry sweeper. Called by Start on a primary and by
// Promote on a follower taking over.
func (s *Service) startPrimaryLoops() {
	if s.cfg.RefreshPeriod > 0 {
		for _, dc := range s.order {
			sh := s.shards[dc]
			s.wg.Add(1)
			go s.refreshLoop(sh)
		}
	}
	// The sweeper always runs: even with the server-side default TTL
	// disabled (negative LeaseTTL), clients can arm per-lease deadlines via
	// hold_seconds, and those must still be reclaimed.
	s.wg.Add(1)
	go s.sweepLoop()
	if s.cfg.RepairInterval > 0 {
		s.wg.Add(1)
		go s.repairLoop()
	}
}

// IsFollower reports whether the node currently rejects writes.
func (s *Service) IsFollower() bool { return s.follower.Load() }

// Role is the node's current role string for registration beats and metrics.
func (s *Service) Role() string {
	if s.follower.Load() {
		return "follower"
	}
	return "primary"
}

// PrimaryID identifies the primary this node believes in: its own NodeID when
// it is the primary, the ID learned from the replication handshake when it is
// a follower (empty before the first successful handshake).
func (s *Service) PrimaryID() string {
	if !s.follower.Load() {
		return s.cfg.NodeID
	}
	if p := s.repl.primaryID.Load(); p != nil {
		return *p
	}
	return ""
}

// NodeID returns the configured node identity.
func (s *Service) NodeID() string { return s.cfg.NodeID }

// Promote flips a follower into the primary role exactly once: the
// replication apply loop is stopped (and any in-flight apply waited out, so a
// late frame can never clobber post-promotion reservations), then the refresh
// and sweep loops start over the books as last replicated. Lease conservation
// survives the handoff because the applied ledger state carries the full
// conservation counters, not just live leases. Returns false when the node is
// already a primary.
func (s *Service) Promote() bool {
	if !s.follower.CompareAndSwap(true, false) {
		return false
	}
	s.repl.promoteOnce.Do(func() { close(s.repl.stopFollow) })
	if c := s.repl.conn.Load(); c != nil {
		(*c).Close()
	}
	// Barrier: an apply that loaded follower=true before the CAS may still be
	// holding applyMu; taking it here guarantees no apply mutates the books
	// after Promote returns.
	s.repl.applyMu.Lock()
	s.repl.applyMu.Unlock() //nolint:staticcheck // empty critical section is the barrier
	s.repl.promotions.Add(1)
	if s.started.Load() {
		s.startPrimaryLoops()
	}
	// Begin serving replication on the reserve listener (when the follower
	// was armed with one), so the surviving followers can re-dial the new
	// primary and a second failover has somewhere to promote from.
	s.serveArmedListener()
	slogger.Info("promoted to primary", "node", s.cfg.NodeID)
	return true
}

// sweepLoop periodically reclaims expired leases across every shard — the
// safety net for clients that died holding a reservation.
func (s *Service) sweepLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.SweepPeriod)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			s.SweepLeases(time.Now())
		}
	}
}

// SweepLeases reclaims every lease expired as of now, across all shards, and
// returns how many leases and cores were reclaimed. The background sweeper
// calls this on its ticker; tests and operational tooling may call it
// directly.
func (s *Service) SweepLeases(now time.Time) (leases int, cores float64) {
	var millis int64
	for _, dc := range s.order {
		n, m := s.shards[dc].led.ExpireBefore(now)
		leases += n
		millis += m
	}
	return leases, ledger.CoresOf(millis)
}

// Close stops the refreshers and waits for them to exit, then persists each
// shard's allocation ledger (when persistence is configured) so leases taken
// since the last refresh survive the restart. Queries remain valid after
// Close; they simply stop seeing new generations.
func (s *Service) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.repl.shutdown()
	s.wg.Wait()
	for _, dc := range s.order {
		s.persistLedger(s.shards[dc])
		s.persistBlocks(s.shards[dc])
	}
}

func (s *Service) refreshLoop(sh *shard) {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.RefreshPeriod)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			// On failure the previous snapshot keeps serving; refreshShard
			// counts the error, and the log line makes the staleness visible
			// without watching /metrics.
			if err := s.refreshShard(sh); err != nil {
				slogger.Warn("refresh failed, serving previous snapshot", "dc", sh.dc, "err", err)
			}
		}
	}
}

// refreshShard builds the shard's next snapshot from the telemetry rings off
// to the side and publishes it with one atomic swap. Readers racing with the
// swap see either the old or the new snapshot, both fully built. The
// clustering warm-starts from the previous generation (core.Recluster);
// every FullRebuildEvery-th refresh re-clusters from scratch as the
// correctness backstop.
func (s *Service) refreshShard(sh *shard) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	start := time.Now()
	prev := sh.snap.Load()
	// Evict rings of tenants that stopped reporting before re-clustering
	// reads them, so a stale window neither skews a class nor keeps the
	// tenant's servers in the serving set.
	if s.cfg.TenantStaleAfter > 0 {
		if n := sh.rings.EvictStale(s.cfg.TenantStaleAfter, start); n > 0 {
			slogger.Info("evicted stale tenant rings", "dc", sh.dc, "rings", n)
		}
	}
	full := s.cfg.FullRebuildEvery > 0 && sh.sinceFull >= s.cfg.FullRebuildEvery-1

	// Warm rounds run with the shard's auto-tuned drift threshold; the base
	// configuration is never mutated, only overridden per refresh.
	ccfg := s.cfg.Clustering
	ccfg.DriftThreshold = sh.driftThreshold()
	clusterer := core.NewClusteringService(ccfg)
	var clustering *core.Clustering
	var rst core.ReclusterStats
	var err error
	if full {
		clustering, err = clusterer.ClusterFrom(sh.pop, sh.rings)
		rst.FullRebuild = true
		rst.Tenants = len(sh.pop.Tenants)
		rst.FullAgreement = -1
		rst.DriftThreshold = ccfg.DriftThreshold
		if err == nil && prev != nil {
			// The full rebuild is the incremental path's oracle: measure how
			// often the warm generations' pattern assignments agreed with a
			// from-scratch run, and feed the disagreement back into the drift
			// threshold. Consistently high agreement means the threshold can
			// relax (fewer expensive reclassifications); disagreement means
			// drift is slipping past it and it must tighten.
			rst.FullAgreement = clusteringAgreement(prev.Clustering, clustering)
			sh.tuneDriftThreshold(baseDriftThreshold(s.cfg.Clustering), rst.FullAgreement)
			rst.DriftThreshold = sh.driftThreshold()
		}
	} else {
		clustering, rst, err = clusterer.Recluster(prev.Clustering, sh.pop, sh.rings)
	}
	if err == nil {
		var next *Snapshot
		next, err = assembleSnapshot(sh.dc, sh.pop, sh.rings, s.cfg, prev.Generation+1, clustering, start, prev)
		if err == nil {
			// Carry the allocation ledger into the new generation before the
			// snapshot is visible: re-key each lease's grants to where its old
			// class's servers landed (conserving totals), so reservations made
			// against the previous clustering keep holding real cores in the
			// new one. A reservation racing the swap detects the generation
			// change and retries (SelectReserve).
			rekeyLedger(sh.led, sh.pop, prev.Clustering, next.Clustering, next.Generation)
			// The block ledger re-keys the same way: every placement is
			// re-validated against the new generation's grid, and replicas
			// that now violate their block's diversity promises are displaced
			// into the repair queue (counted as lost, so the conservation
			// books keep balancing). A block create racing the swap detects
			// the generation change and re-places (CreateBlock).
			if displaced := sh.blocks.Rekey(next.Generation, next.Scheme().ReplicaSite); displaced > 0 {
				slogger.Info("re-key displaced block replicas", "dc", sh.dc, "replicas", displaced)
			}
			sh.snap.Store(next)
			sh.refreshes.Add(1)
			if rst.FullRebuild {
				sh.fullRebuilds.Add(1)
				sh.sinceFull = 0
			} else {
				sh.warmRefreshes.Add(1)
				sh.sinceFull++
			}
			sh.lastRecluster.Store(&rst)
			sh.refreshLatency.Observe(time.Since(start))
			s.persistSnapshot(sh, next)
			return nil
		}
	}
	sh.refreshErrors.Add(1)
	return err
}

// Drift auto-tuning bounds: the feedback loop nudges the threshold by small
// multiplicative steps and clamps it to a window around the configured base,
// so a pathological run can neither freeze reclassification entirely nor thrash
// every tenant every round.
const (
	driftAgreeRelax   = 0.99 // agreement at or above this relaxes the threshold
	driftAgreeTighten = 0.95 // agreement below this tightens it
	driftRelaxFactor  = 1.25
	driftTightenFact  = 0.8
	driftClampLow     = 0.25 // base/4
	driftClampHigh    = 8.0  // base*8
)

// baseDriftThreshold resolves the configured drift threshold with the same
// fallback core.Recluster applies.
func baseDriftThreshold(cfg core.ClusteringConfig) float64 {
	if cfg.DriftThreshold > 0 {
		return cfg.DriftThreshold
	}
	return core.DefaultDriftThreshold
}

// driftThreshold is the shard's current (auto-tuned) warm drift threshold.
func (sh *shard) driftThreshold() float64 {
	return math.Float64frombits(sh.driftThr.Load())
}

// tuneDriftThreshold applies one feedback step from a full rebuild's measured
// agreement. Negative agreement (not measured) is a no-op.
func (sh *shard) tuneDriftThreshold(base, agreement float64) {
	if agreement < 0 {
		return
	}
	thr := sh.driftThreshold()
	switch {
	case agreement >= driftAgreeRelax:
		thr *= driftRelaxFactor
	case agreement < driftAgreeTighten:
		thr *= driftTightenFact
	default:
		return
	}
	thr = math.Min(math.Max(thr, base*driftClampLow), base*driftClampHigh)
	sh.driftThr.Store(math.Float64bits(thr))
}

// clusteringAgreement measures, over the tenants present in both generations,
// the fraction whose pattern assignment the full rebuild kept. Pattern (not
// class id) is compared because K-Means is free to renumber classes between
// runs; a pattern flip is the signal that warm drift checks missed real
// change. Returns -1 when nothing is comparable.
func clusteringAgreement(prev, next *core.Clustering) float64 {
	if prev == nil || next == nil {
		return -1
	}
	compared, agreed := 0, 0
	for _, cls := range next.Classes {
		for _, tid := range cls.Tenants {
			pid, ok := prev.ClassOfTenant(tid)
			if !ok {
				continue
			}
			pc := prev.Class(pid)
			if pc == nil {
				continue
			}
			compared++
			if pc.Pattern == cls.Pattern {
				agreed++
			}
		}
	}
	if compared == 0 {
		return -1
	}
	return float64(agreed) / float64(compared)
}

// rekeyLedger carries the allocation ledger from one clustering generation
// to the next: each old class's allocation follows its servers — the shares
// are how many of the class's servers landed in each new class. A tenant's
// servers always move together (class membership is per tenant), so the
// shares are accumulated per member tenant — O(tenants), not O(servers) —
// weighting each destination by the tenant's server count. Tenants that left
// the serving set entirely (e.g. an evicted telemetry ring) contribute no
// share; an old class whose servers all left forfeits its grants, which the
// ledger counts rather than hides.
func rekeyLedger(led *ledger.Ledger, pop *tenant.Population, prev, next *core.Clustering, nextGeneration uint64) {
	remap := make(map[core.ClassID][]ledger.Share, len(prev.Classes))
	for _, cls := range prev.Classes {
		counts := make(map[core.ClassID]int)
		for _, tid := range cls.Tenants {
			nid, ok := next.ClassOfTenant(tid)
			if !ok {
				continue
			}
			if t := pop.ByID(tid); t != nil {
				counts[nid] += t.NumServers()
			}
		}
		shares := make([]ledger.Share, 0, len(counts))
		for nid, n := range counts {
			shares = append(shares, ledger.Share{Class: nid, Weight: float64(n)})
		}
		remap[cls.ID] = shares
	}
	led.Rekey(nextGeneration, len(next.Classes), remap)
}

// Refresh synchronously rebuilds one datacenter's snapshot (tests and
// operational tooling; the background refresher normally does this).
func (s *Service) Refresh(dc string) error {
	sh, ok := s.shards[dc]
	if !ok {
		return fmt.Errorf("service: unknown datacenter %q", dc)
	}
	if s.follower.Load() {
		return ErrFollower
	}
	return s.refreshShard(sh)
}

// Datacenters returns the served datacenter names in configuration order.
func (s *Service) Datacenters() []string { return s.order }

// Generations reports each datacenter's current snapshot generation — what a
// registration beat announces to the router, so operators can spot a shard
// whose characterization stopped advancing from the router's /metrics alone.
func (s *Service) Generations() map[string]uint64 {
	out := make(map[string]uint64, len(s.order))
	for _, dc := range s.order {
		out[dc] = s.shards[dc].snap.Load().Generation
	}
	return out
}

// Snapshot returns the current snapshot for a datacenter. The result is
// immutable and remains valid (if stale) indefinitely.
func (s *Service) Snapshot(dc string) (*Snapshot, bool) {
	sh, ok := s.shards[dc]
	if !ok {
		return nil, false
	}
	return sh.snap.Load(), true
}

// IngestSample is one utilization observation handed to Ingest. Exactly one
// of Tenant or Server identifies the subject (set the other to a negative
// value) — samples naming both, or neither, are rejected; a sample
// addressed by server is credited to the owning tenant's "average server"
// history. A non-positive At means one slot after the tenant's latest
// sample.
type IngestSample struct {
	Tenant tenant.ID
	Server tenant.ServerID
	At     time.Duration
	Value  float64
}

// IngestResult summarizes one Ingest call.
type IngestResult struct {
	Accepted int
	Rejected int
	// Horizon is the store's telemetry clock after the call — what the next
	// snapshot's AsOf will be.
	Horizon time.Duration
}

// Ingest appends live telemetry samples to a datacenter's rings. Samples
// naming an unknown tenant/server (or carrying a NaN value) are counted as
// rejected; the rest are appended. Never blocks queries or snapshot builds.
func (s *Service) Ingest(dc string, samples []IngestSample) (IngestResult, error) {
	sh, ok := s.shards[dc]
	if !ok {
		return IngestResult{}, fmt.Errorf("service: unknown datacenter %q", dc)
	}
	if s.follower.Load() {
		// A follower's rings are frozen at bootstrap: its usage view comes
		// from the primary's stream, and local samples would silently diverge
		// the two. Clients must post telemetry to the primary.
		return IngestResult{}, ErrFollower
	}
	var res IngestResult
	for _, sample := range samples {
		if sample.Tenant >= 0 && sample.Server >= 0 {
			// Ambiguous subject: silently picking one would hide a client
			// bug (the server may belong to a different tenant).
			res.Rejected++
			continue
		}
		id := sample.Tenant
		if id < 0 {
			if sample.Server < 0 {
				res.Rejected++
				continue
			}
			owner := sh.pop.OwnerOf(sample.Server)
			if owner == nil {
				res.Rejected++
				continue
			}
			id = owner.ID
		}
		if _, err := sh.rings.Ingest(id, sample.At, sample.Value); err != nil {
			res.Rejected++
			continue
		}
		res.Accepted++
	}
	sh.ingested.Add(uint64(res.Accepted))
	res.Horizon = sh.rings.Horizon()
	return res, nil
}

// usageViewFor returns the shard's cached live usage view for a snapshot,
// recomputing it when the snapshot generation or ingest progress moved: the
// base map carries CurrentUtilization from each tenant's most recent ring
// sample, and the src overlay adds the ledger's live AllocatedCores on every
// read. Nil for snapshots of an unknown shard (e.g. a superseded service's).
func (s *Service) usageViewFor(snap *Snapshot) *usageView {
	sh, ok := s.shards[snap.Datacenter]
	if !ok || sh.rings == nil {
		return nil
	}
	total := sh.rings.TotalSamples()
	if v := sh.liveUsage.Load(); v != nil && v.generation == snap.Generation && v.samples == total {
		return v
	}
	if s.follower.Load() {
		// A follower's live usage is whatever the primary shipped — its own
		// rings are frozen at bootstrap. The apply loop publishes the view;
		// a cache miss here is a reader racing an apply, so rebuild from the
		// snapshot's shipped usage rather than the stale rings.
		return s.buildUsageView(sh, snap, snap.Usage, total)
	}
	usage := weightedClassUsage(snap.Clustering.Classes, sh.pop, func(cls *core.UtilizationClass, tid tenant.ID) float64 {
		return sh.rings.LastValue(tid, snap.Usage[cls.ID].CurrentUtilization)
	})
	// Concurrent recomputes race benignly: both views are equally current,
	// the last store wins.
	return s.buildUsageView(sh, snap, usage, total)
}

// buildUsageView assembles and publishes the shard's live usage view, and
// refreshes the ledger's admission floors from it: for every class whose live
// utilization rose above the snapshot's build-time view, the lost capacity
// becomes a reserve floor the ledger subtracts from the admission bound — so
// a utilization spike tightens admitted capacity immediately, between
// refreshes, instead of waiting for the next snapshot. The follower apply
// path shares this so replicated usage carries the same protection.
func (s *Service) buildUsageView(sh *shard, snap *Snapshot, usage map[core.ClassID]core.ClassUsage, samples uint64) *usageView {
	v := &usageView{
		generation: snap.Generation,
		samples:    samples,
		usage:      usage,
		src:        &ledgerUsage{generation: snap.Generation, base: usage, led: sh.led},
		idx:        snap.BuildSelectIndex(usage),
	}
	floors := make([]int64, len(snap.Clustering.Classes))
	for _, cls := range snap.Clustering.Classes {
		buildCap := snap.CapacityCores(core.JobMedium, cls.ID, snap.Usage[cls.ID])
		liveCap := snap.CapacityCores(core.JobMedium, cls.ID, usage[cls.ID])
		if d := buildCap - liveCap; d > 0 {
			floors[cls.ID] = int64(math.Floor(d * ledger.MillisPerCore))
		}
	}
	sh.led.SetFloors(snap.Generation, floors)
	sh.liveUsage.Store(v)
	return v
}

// UsageFor returns the per-class usage view queries should run against:
// CurrentUtilization recomputed from each tenant's most recent ring sample,
// so posted telemetry moves select decisions between refreshes instead of
// being frozen at the snapshot's AsOf. AllocatedCores in the returned map is
// the build-time value; the query path overlays the live ledger counters via
// usageViewFor's src. Snapshots from an unknown shard fall back to their
// build-time view.
func (s *Service) UsageFor(snap *Snapshot) map[core.ClassID]core.ClassUsage {
	if v := s.usageViewFor(snap); v != nil {
		return v.usage
	}
	return snap.Usage
}

// ShardStats reports one shard's refresh and ingest counters for /metrics.
type ShardStats struct {
	Generation    uint64
	Age           time.Duration
	AsOf          time.Duration
	BuildDuration time.Duration
	Refreshes     uint64
	RefreshErrors uint64
	WarmRefreshes uint64
	FullRebuilds  uint64
	Classes       int
	Servers       int
	Tenants       int
	// IngestedSamples counts live samples accepted since boot (bootstrap
	// fills excluded); LastIngest is the wall-clock time of the newest one
	// (zero when live telemetry has never arrived — the staleness signal).
	IngestedSamples uint64
	LastIngest      time.Time
	PersistErrors   uint64
	// EvictedTenants counts telemetry rings reclaimed by the staleness
	// eviction since boot; StaleRetries counts SelectReserve attempts that
	// raced a ledger re-key and re-ran.
	EvictedTenants uint64
	StaleRetries   uint64
	// RefreshMeanUs, RefreshP99Us and RefreshMaxUs summarize successful
	// refresh durations since boot (microseconds) — the latency the
	// incremental snapshot path is sized by.
	RefreshMeanUs float64
	RefreshP99Us  uint64
	RefreshMaxUs  uint64
	// Recluster is the most recent warm refresh's incremental stats (zero
	// value until the first warm refresh): how many tenants drifted, how
	// many were provably quiet, and how much membership was spliced rather
	// than rebuilt.
	Recluster core.ReclusterStats
	// Ledger is the allocation ledger's point-in-time summary.
	Ledger ledger.Stats
	// Blocks is the block-placement ledger's point-in-time summary
	// (conservation: placed+pending == replica_slots, lost == replaced+pending).
	Blocks blockledger.Stats
	// PlacementRelaxed counts replica picks (initial and repair) that fell
	// back to ignoring row/column diversity because the constraint could not
	// be met — the previously-silent degradation of §7, now on the books.
	PlacementRelaxed uint64
	// RepairFailures counts re-replicator attempts that went back on the
	// queue without landing.
	RepairFailures uint64
}

// Stats returns the refresh counters for a datacenter.
func (s *Service) Stats(dc string) (ShardStats, bool) {
	sh, ok := s.shards[dc]
	if !ok {
		return ShardStats{}, false
	}
	snap := sh.snap.Load()
	servers := 0
	for _, cls := range snap.Clustering.Classes {
		servers += cls.NumServers()
	}
	st := ShardStats{
		Generation:      snap.Generation,
		Age:             snap.Age(),
		AsOf:            snap.AsOf,
		BuildDuration:   snap.BuildDuration,
		Refreshes:       sh.refreshes.Load(),
		RefreshErrors:   sh.refreshErrors.Load(),
		WarmRefreshes:   sh.warmRefreshes.Load(),
		FullRebuilds:    sh.fullRebuilds.Load(),
		Classes:         len(snap.Clustering.Classes),
		Servers:         servers,
		Tenants:         len(sh.pop.Tenants),
		IngestedSamples: sh.ingested.Load(),
		PersistErrors:   sh.persistErrors.Load(),
		EvictedTenants:  sh.rings.Evictions(),
		StaleRetries:    sh.staleRetries.Load(),
		RefreshMeanUs:   sh.refreshLatency.MeanMicros(),
		RefreshP99Us:    sh.refreshLatency.QuantileMicros(0.99),
		RefreshMaxUs:    sh.refreshLatency.MaxMicros(),
		Ledger:          sh.led.Snapshot(),
		Blocks:          sh.blocks.Snapshot(),
		// The scheme is shared across generations (it is a pure function of
		// the population), so the relaxed counter accumulates per shard.
		PlacementRelaxed: snap.Scheme().RelaxedCount(),
		RepairFailures:   sh.repairFailures.Load(),
	}
	if rst := sh.lastRecluster.Load(); rst != nil {
		st.Recluster = *rst
	}
	if at, ok := sh.rings.LastIngestAt(); ok {
		st.LastIngest = at
	}
	return st, true
}

// RefreshLatency returns the shard's refresh-duration histogram for metric
// exposition, or nil for an unknown datacenter.
func (s *Service) RefreshLatency(dc string) *Histogram {
	sh, ok := s.shards[dc]
	if !ok {
		return nil
	}
	return &sh.refreshLatency
}

// SelectOn runs class selection (Alg. 1) against a snapshot the caller
// already holds, with a pooled RNG and the live usage view — utilization
// from recent ring samples, AllocatedCores from the ledger's atomic
// counters. This is the advisory (non-reserving) path: it sees live
// allocations but does not create one. The HTTP handlers use this so a
// request resolves its snapshot exactly once.
func (s *Service) SelectOn(snap *Snapshot, job core.JobRequest) core.Selection {
	rng := s.rngs.Get().(*rand.Rand)
	var sel core.Selection
	if v := s.usageViewFor(snap); v != nil {
		sel = snap.SelectIndexed(rng, job, v.idx, v.src)
	} else {
		sel = snap.SelectUsage(rng, job, snap.Usage)
	}
	s.rngs.Put(rng)
	return sel
}

// Grant is the outcome of a reserving select: the selection plus, when it was
// satisfiable, the lease holding the reserved cores.
type Grant struct {
	Selection core.Selection
	// Lease identifies the reservation for Release; zero when the selection
	// was unsatisfiable (nothing was reserved).
	Lease     uint64
	ExpiresAt time.Time // zero when the lease never expires
	// Granted is the cores actually reserved per Selection.Classes entry; it
	// sums to (at most a rounding millicore under) the job's demand.
	Granted []float64
}

// Reserved reports whether the select actually reserved cores.
func (g Grant) Reserved() bool { return g.Lease != 0 }

// selectReserveAttempts bounds the re-select loop: each retry means the
// class's headroom was concurrently claimed (or a re-key landed) between
// selection and CAS admission, so a fresh selection against the now-current
// counters is the correct response. Past the bound the datacenter is
// genuinely contended and "unsatisfiable right now" is the honest answer.
const selectReserveAttempts = 8

// SelectReserve runs class selection and atomically reserves the selected
// cores in the allocation ledger, returning a lease the caller must release
// (or let expire after ttl). ttl zero means the configured LeaseTTL;
// negative means no expiry. Concurrent SelectReserve calls can never jointly
// over-promise a class: admission is a CAS bounded by the class's capacity
// at the same usage view the selection ran against. An unsatisfiable job
// returns an empty selection and no lease, not an error.
func (s *Service) SelectReserve(dc string, job core.JobRequest, ttl time.Duration) (Grant, *Snapshot, error) {
	return s.SelectReserveTraced(dc, job, ttl, ledger.Meta{}, nil)
}

// SelectReserveTraced is SelectReserve with operator metadata on the
// resulting lease and optional span recording into tr (nil skips all trace
// bookkeeping — the untraced path pays only nil checks).
func (s *Service) SelectReserveTraced(dc string, job core.JobRequest, ttl time.Duration, meta ledger.Meta, tr *obs.Trace) (Grant, *Snapshot, error) {
	sh, ok := s.shards[dc]
	if !ok {
		return Grant{}, nil, fmt.Errorf("service: unknown datacenter %q", dc)
	}
	if s.follower.Load() {
		return Grant{}, nil, ErrFollower
	}
	if ttl == 0 {
		ttl = s.cfg.LeaseTTL
	}
	if ttl < 0 {
		ttl = 0 // ledger: no expiry
	}
	var snap *Snapshot
	for attempt := 0; attempt < selectReserveAttempts; attempt++ {
		var spanStart time.Time
		if tr != nil {
			spanStart = time.Now()
		}
		snap = sh.snap.Load()
		v := s.usageViewFor(snap)
		rng := s.rngs.Get().(*rand.Rand)
		sel := snap.SelectIndexed(rng, job, v.idx, v.src)
		s.rngs.Put(rng)
		if tr != nil {
			tr.Span("snapshot_read", spanStart)
		}
		if sel.Empty() {
			return Grant{Selection: sel}, snap, nil
		}
		reqs := make([]ledger.Request, 0, len(sel.Classes))
		granted := make([]float64, len(sel.Classes))
		remaining := job.MaxConcurrentCores
		for i, id := range sel.Classes {
			want := sel.Headrooms[i]
			if want > remaining {
				want = remaining
			}
			// Floor to the ledger's fixed point so a demand equal to the full
			// headroom cannot round up past the capacity bound. A
			// sub-millicore demand rounds *up* to one millicore instead —
			// flooring everything to zero would leave nothing to reserve and
			// turn a well-formed request into an error.
			want = math.Floor(want*ledger.MillisPerCore) / ledger.MillisPerCore
			if want <= 0 {
				if len(reqs) == 0 && remaining > 0 {
					want = 1.0 / ledger.MillisPerCore
				} else {
					continue
				}
			}
			reqs = append(reqs, ledger.Request{
				Class:    id,
				Cores:    want,
				Capacity: snap.CapacityCores(job.Type, id, v.src.UsageOf(id)),
			})
			granted[i] = want
			remaining -= want
		}
		var reserveStart time.Time
		if tr != nil {
			reserveStart = time.Now()
		}
		lease, err := sh.led.ReserveMeta(snap.Generation, reqs, ttl, time.Now(), meta)
		if tr != nil {
			tr.Span("ledger_reserve", reserveStart)
		}
		if err == nil {
			return Grant{Selection: sel, Lease: lease.ID, ExpiresAt: lease.ExpiresAt, Granted: granted}, snap, nil
		}
		if errors.Is(err, ledger.ErrStaleGeneration) {
			// A refresh re-keyed the ledger between selection and admission:
			// reload the (about-to-be or just-)published snapshot and re-run.
			sh.staleRetries.Add(1)
			runtime.Gosched()
			continue
		}
		var ie *ledger.InsufficientError
		if !errors.As(err, &ie) {
			return Grant{}, snap, err
		}
		// Concurrent reservations claimed the headroom first; re-select
		// against the now-current counters.
	}
	return Grant{}, snap, nil
}

// Release returns a lease's cores to their classes. The returned lease
// reports what was actually released (grants may have been re-keyed across
// snapshot generations since the reservation).
func (s *Service) Release(dc string, id uint64) (ledger.Lease, error) {
	sh, ok := s.shards[dc]
	if !ok {
		return ledger.Lease{}, fmt.Errorf("service: unknown datacenter %q", dc)
	}
	if s.follower.Load() {
		return ledger.Lease{}, ErrFollower
	}
	return sh.led.Release(id)
}

// Renew extends a live lease's expiry deadline without moving any cores:
// the grants and the conservation books are untouched, only the deadline the
// sweeper enforces is rescheduled. ttl zero means the configured LeaseTTL;
// negative means the lease never expires. Unknown (or already released or
// expired) leases return ledger.ErrUnknownLease.
func (s *Service) Renew(dc string, id uint64, ttl time.Duration) (ledger.Lease, error) {
	sh, ok := s.shards[dc]
	if !ok {
		return ledger.Lease{}, fmt.Errorf("service: unknown datacenter %q", dc)
	}
	if s.follower.Load() {
		return ledger.Lease{}, ErrFollower
	}
	if ttl == 0 {
		ttl = s.cfg.LeaseTTL
	}
	if ttl < 0 {
		ttl = 0 // ledger: no expiry
	}
	return sh.led.Renew(id, ttl, time.Now())
}

// Leases returns one page of dc's live leases (ordered by id) plus the total
// live count; ok is false for an unknown datacenter.
func (s *Service) Leases(dc string, offset, limit int) (page []ledger.Lease, total int, ok bool) {
	sh, found := s.shards[dc]
	if !found {
		return nil, 0, false
	}
	page, total = sh.led.List(offset, limit)
	return page, total, true
}

// LedgerStats returns the allocation ledger's counters for a datacenter.
func (s *Service) LedgerStats(dc string) (ledger.Stats, bool) {
	sh, ok := s.shards[dc]
	if !ok {
		return ledger.Stats{}, false
	}
	return sh.led.Snapshot(), true
}

// LedgerOccupancy returns the ledger's generation and per-class occupancy
// without touching the lease mutex — what the hot /classes and
// /servers/{id}/class paths read, so they never serialize against
// reservation bookkeeping.
func (s *Service) LedgerOccupancy(dc string) (generation uint64, allocMillisByClass []int64, ok bool) {
	sh, found := s.shards[dc]
	if !found {
		return 0, nil, false
	}
	generation, allocMillisByClass = sh.led.Occupancy()
	return generation, allocMillisByClass, true
}

// PlaceOn runs replica placement (Alg. 2) against a snapshot the caller
// already holds, with a pooled RNG.
func (s *Service) PlaceOn(snap *Snapshot, c core.PlacementConstraints) ([]tenant.ServerID, error) {
	rng := s.rngs.Get().(*rand.Rand)
	replicas, err := snap.Place(rng, c)
	s.rngs.Put(rng)
	return replicas, err
}

// Select answers a class-selection query (Alg. 1) against the datacenter's
// current snapshot, and returns that snapshot so the caller can report the
// generation it was answered at.
func (s *Service) Select(dc string, job core.JobRequest) (core.Selection, *Snapshot, error) {
	snap, ok := s.Snapshot(dc)
	if !ok {
		return core.Selection{}, nil, fmt.Errorf("service: unknown datacenter %q", dc)
	}
	return s.SelectOn(snap, job), snap, nil
}

// Place answers a replica-placement query (Alg. 2) against the datacenter's
// current snapshot.
func (s *Service) Place(dc string, c core.PlacementConstraints) ([]tenant.ServerID, *Snapshot, error) {
	snap, ok := s.Snapshot(dc)
	if !ok {
		return nil, nil, fmt.Errorf("service: unknown datacenter %q", dc)
	}
	replicas, err := s.PlaceOn(snap, c)
	return replicas, snap, err
}

// BlockPlacement is the outcome of CreateBlock: the issued block id, the
// servers holding its replicas, and the snapshot generation the placement was
// validated against.
type BlockPlacement struct {
	Block      uint64
	Generation uint64
	Replicas   []tenant.ServerID
}

// CreateBlock places a block's replicas via Alg. 2 against the current
// snapshot and records them in the block ledger — the durable twin of Place,
// which only advises. A placement racing a snapshot refresh detects the
// generation change at the ledger (blockledger.ErrStaleGeneration) and
// re-places against the published snapshot, exactly like SelectReserve's
// re-select loop. c.Replication is the block's R; c.EnforceEnvironment
// becomes the block's recorded diversity promise for later re-keys.
func (s *Service) CreateBlock(dc string, c core.PlacementConstraints) (BlockPlacement, error) {
	sh, ok := s.shards[dc]
	if !ok {
		return BlockPlacement{}, fmt.Errorf("service: unknown datacenter %q", dc)
	}
	if s.follower.Load() {
		return BlockPlacement{}, ErrFollower
	}
	for attempt := 0; attempt < selectReserveAttempts; attempt++ {
		snap := sh.snap.Load()
		replicas, err := s.PlaceOn(snap, c)
		if err != nil {
			return BlockPlacement{}, err
		}
		id, err := sh.blocks.Create(snap.Generation, replicas, c.EnforceEnvironment)
		if err == nil {
			return BlockPlacement{Block: id, Generation: snap.Generation, Replicas: replicas}, nil
		}
		if errors.Is(err, blockledger.ErrStaleGeneration) {
			// A refresh re-keyed the block ledger between placement and
			// recording: the replicas were picked against a grid that no
			// longer exists, so re-place against the new snapshot.
			runtime.Gosched()
			continue
		}
		return BlockPlacement{}, err
	}
	return BlockPlacement{}, fmt.Errorf("service: %s: block create kept racing snapshot refreshes", dc)
}

// ReimageServer ingests one reimaging event: every block replica on the
// server is marked lost and its repair enqueued for the background
// re-replicator. Returns how many replicas the event hit (zero when the
// server held nothing — still a valid event).
func (s *Service) ReimageServer(dc string, server tenant.ServerID) (lost int, err error) {
	sh, ok := s.shards[dc]
	if !ok {
		return 0, fmt.Errorf("service: unknown datacenter %q", dc)
	}
	if s.follower.Load() {
		return 0, ErrFollower
	}
	return sh.blocks.Reimage(server), nil
}

// BlockStats returns the block ledger's counters for a datacenter.
func (s *Service) BlockStats(dc string) (blockledger.Stats, bool) {
	sh, ok := s.shards[dc]
	if !ok {
		return blockledger.Stats{}, false
	}
	return sh.blocks.Snapshot(), true
}

// repairLoop is the background re-replicator (primary role only): each tick
// it drains one batch of repair refs per datacenter and re-places them via
// Alg. 2 with the surviving replicas' constraints carried over.
func (s *Service) repairLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.RepairInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			for _, dc := range s.order {
				s.RepairBlocks(dc, s.cfg.RepairBatch)
			}
		}
	}
}

// RepairBlocks attempts up to max queued repairs for one datacenter and
// returns how many landed. The background re-replicator calls this on its
// ticker; tests and operational tooling may call it directly to drain
// synchronously. Repairs that cannot land (no eligible server under the
// current grid) go back on the queue and count as repair failures.
func (s *Service) RepairBlocks(dc string, max int) int {
	sh, ok := s.shards[dc]
	if !ok || s.follower.Load() {
		return 0
	}
	landed := 0
	for _, ref := range sh.blocks.TakeRepairs(max) {
		if s.repairOne(sh, ref) {
			landed++
		} else {
			sh.blocks.Requeue(ref)
			sh.repairFailures.Add(1)
		}
	}
	return landed
}

// repairOne re-places a single pending replica slot. True means the ref is
// settled — the repair landed, or the slot no longer needs one (duplicate
// delivery, deleted block); false means the caller should requeue it.
func (s *Service) repairOne(sh *shard, ref blockledger.Repair) bool {
	for attempt := 0; attempt < selectReserveAttempts; attempt++ {
		snap := sh.snap.Load()
		placed, pending, ok := sh.blocks.Servers(ref.Block)
		if !ok || pending == 0 {
			return true
		}
		envStrict, _ := sh.blocks.EnvStrict(ref.Block)
		rng := s.rngs.Get().(*rand.Rand)
		replicas, err := snap.PlaceAdditional(rng, placed, 1, core.PlacementConstraints{EnforceEnvironment: envStrict})
		s.rngs.Put(rng)
		if err != nil || len(replicas) == 0 {
			return false
		}
		switch err := sh.blocks.Replace(snap.Generation, ref, replicas[0]); {
		case err == nil:
			return true
		case errors.Is(err, blockledger.ErrStaleGeneration):
			// A refresh re-keyed mid-repair; re-place against the new grid.
			runtime.Gosched()
			continue
		case errors.Is(err, blockledger.ErrReplicaPlaced), errors.Is(err, blockledger.ErrUnknownBlock):
			return true
		default:
			// The picked server raced into holding another replica of this
			// block (a concurrent repair); pick again.
			continue
		}
	}
	return false
}
