package service

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"harvest/internal/core"
	"harvest/internal/experiments"
	"harvest/internal/signalproc"
	"harvest/internal/tenant"
	"harvest/internal/trace"
)

// Config parameterizes the characterization service.
type Config struct {
	// Datacenters lists the profiles to serve. Empty means every built-in
	// profile (DC-0 … DC-9).
	Datacenters []string
	// Scale sizes the generated populations, exactly as in the experiment
	// harnesses. The zero value normalizes to quick scale.
	Scale experiments.Scale
	// RefreshPeriod is the wall-clock interval between snapshot rebuilds
	// (hours in the paper's deployment; seconds in tests). Zero disables the
	// background refresher — snapshots then only change via Refresh.
	RefreshPeriod time.Duration
	// SimStep is how far each refresh advances the telemetry position (AsOf)
	// in the cyclic one-month trace. Zero means 4h, the paper's "every few
	// hours" re-characterization cadence.
	SimStep time.Duration
	// Clustering and Selector configure the core algorithms.
	Clustering core.ClusteringConfig
	Selector   core.SelectorConfig
	// Seed drives population generation and the per-request RNG pool.
	Seed int64
}

// DefaultConfig serves every datacenter at quick scale, refreshing every
// 30 seconds (a compressed stand-in for the paper's every-few-hours cadence).
func DefaultConfig() Config {
	return Config{
		Scale:         experiments.QuickScale(),
		RefreshPeriod: 30 * time.Second,
		SimStep:       4 * time.Hour,
		Clustering:    core.DefaultClusteringConfig(),
		Selector:      core.DefaultSelectorConfig(),
		Seed:          1,
	}
}

// shard is one datacenter's slot: the published snapshot plus the private
// rebuild state. Only the shard's refresher goroutine (or Refresh callers
// serialized by mu) touches pop; readers only ever Load the pointer.
type shard struct {
	dc   string
	snap atomic.Pointer[Snapshot]

	mu  sync.Mutex // serializes rebuilds; never held on the query path
	pop *tenant.Population

	refreshes     atomic.Uint64
	refreshErrors atomic.Uint64
}

// Service is the characterization service: per-datacenter snapshot shards, a
// background refresher per shard, and a pool of per-request RNGs.
type Service struct {
	cfg    Config
	order  []string
	shards map[string]*shard

	rngs    sync.Pool
	rngSeed atomic.Int64

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
	started  atomic.Bool
}

// New builds the boot snapshot for every datacenter synchronously, so a
// service that returns without error is immediately queryable. Call Start to
// launch the background refreshers and Close to stop them.
func New(cfg Config) (*Service, error) {
	if len(cfg.Datacenters) == 0 {
		for _, p := range trace.BuiltinProfiles() {
			cfg.Datacenters = append(cfg.Datacenters, p.Name)
		}
	}
	if cfg.SimStep <= 0 {
		cfg.SimStep = 4 * time.Hour
	}
	// Fill unset fields individually so a caller customizing one knob (say,
	// Thresholds) keeps it; only the genuinely zero pieces take defaults.
	// ReserveFraction is left alone — zero is a legitimate "no reserve".
	defSel := core.DefaultSelectorConfig()
	if cfg.Selector.CoresPerServer <= 0 {
		cfg.Selector.CoresPerServer = defSel.CoresPerServer
	}
	if cfg.Selector.Weights == nil {
		cfg.Selector.Weights = defSel.Weights
	}
	if cfg.Selector.Thresholds == (core.LengthThresholds{}) {
		cfg.Selector.Thresholds = defSel.Thresholds
	}
	if cfg.Clustering.Classifier == (signalproc.ClassifierConfig{}) {
		cfg.Clustering.Classifier = signalproc.DefaultClassifierConfig()
	}

	s := &Service{
		cfg:    cfg,
		shards: make(map[string]*shard, len(cfg.Datacenters)),
		stop:   make(chan struct{}),
	}
	s.rngSeed.Store(cfg.Seed)
	s.rngs.New = func() any {
		return rand.New(rand.NewSource(s.rngSeed.Add(1)))
	}

	for _, dc := range cfg.Datacenters {
		if _, dup := s.shards[dc]; dup {
			return nil, fmt.Errorf("service: duplicate datacenter %q", dc)
		}
		pop, _, err := experiments.BuildPopulation(dc, cfg.Scale)
		if err != nil {
			return nil, err
		}
		sh := &shard{dc: dc, pop: pop}
		snap, err := buildSnapshot(dc, pop, cfg, 1, 0)
		if err != nil {
			return nil, err
		}
		sh.snap.Store(snap)
		s.order = append(s.order, dc)
		s.shards[dc] = sh
	}
	return s, nil
}

// Start launches one refresher goroutine per shard. It is a no-op when the
// refresh period is zero or the service is already started.
func (s *Service) Start() {
	if s.cfg.RefreshPeriod <= 0 || !s.started.CompareAndSwap(false, true) {
		return
	}
	for _, dc := range s.order {
		sh := s.shards[dc]
		s.wg.Add(1)
		go s.refreshLoop(sh)
	}
}

// Close stops the refreshers and waits for them to exit. Queries remain
// valid after Close; they simply stop seeing new generations.
func (s *Service) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
}

func (s *Service) refreshLoop(sh *shard) {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.RefreshPeriod)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			// On failure the previous snapshot keeps serving; refreshShard
			// counts the error, and the log line makes the staleness visible
			// without watching /metrics.
			if err := s.refreshShard(sh); err != nil {
				log.Printf("service: %s: refresh failed, serving previous snapshot: %v", sh.dc, err)
			}
		}
	}
}

// refreshShard builds the shard's next snapshot off to the side and publishes
// it with one atomic swap. Readers racing with the swap see either the old or
// the new snapshot, both fully built.
func (s *Service) refreshShard(sh *shard) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	prev := sh.snap.Load()
	next, err := buildSnapshot(sh.dc, sh.pop, s.cfg, prev.Generation+1, prev.AsOf+s.cfg.SimStep)
	if err != nil {
		sh.refreshErrors.Add(1)
		return err
	}
	sh.snap.Store(next)
	sh.refreshes.Add(1)
	return nil
}

// Refresh synchronously rebuilds one datacenter's snapshot (tests and
// operational tooling; the background refresher normally does this).
func (s *Service) Refresh(dc string) error {
	sh, ok := s.shards[dc]
	if !ok {
		return fmt.Errorf("service: unknown datacenter %q", dc)
	}
	return s.refreshShard(sh)
}

// Datacenters returns the served datacenter names in configuration order.
func (s *Service) Datacenters() []string { return s.order }

// Snapshot returns the current snapshot for a datacenter. The result is
// immutable and remains valid (if stale) indefinitely.
func (s *Service) Snapshot(dc string) (*Snapshot, bool) {
	sh, ok := s.shards[dc]
	if !ok {
		return nil, false
	}
	return sh.snap.Load(), true
}

// ShardStats reports one shard's refresh counters for /metrics.
type ShardStats struct {
	Generation    uint64
	Age           time.Duration
	AsOf          time.Duration
	BuildDuration time.Duration
	Refreshes     uint64
	RefreshErrors uint64
	Classes       int
	Servers       int
}

// Stats returns the refresh counters for a datacenter.
func (s *Service) Stats(dc string) (ShardStats, bool) {
	sh, ok := s.shards[dc]
	if !ok {
		return ShardStats{}, false
	}
	snap := sh.snap.Load()
	servers := 0
	for _, cls := range snap.Clustering.Classes {
		servers += cls.NumServers()
	}
	return ShardStats{
		Generation:    snap.Generation,
		Age:           snap.Age(),
		AsOf:          snap.AsOf,
		BuildDuration: snap.BuildDuration,
		Refreshes:     sh.refreshes.Load(),
		RefreshErrors: sh.refreshErrors.Load(),
		Classes:       len(snap.Clustering.Classes),
		Servers:       servers,
	}, true
}

// SelectOn runs class selection (Alg. 1) against a snapshot the caller
// already holds, with a pooled RNG. The HTTP handlers use this so a request
// resolves its snapshot exactly once.
func (s *Service) SelectOn(snap *Snapshot, job core.JobRequest) core.Selection {
	rng := s.rngs.Get().(*rand.Rand)
	sel := snap.Select(rng, job)
	s.rngs.Put(rng)
	return sel
}

// PlaceOn runs replica placement (Alg. 2) against a snapshot the caller
// already holds, with a pooled RNG.
func (s *Service) PlaceOn(snap *Snapshot, c core.PlacementConstraints) ([]tenant.ServerID, error) {
	rng := s.rngs.Get().(*rand.Rand)
	replicas, err := snap.Place(rng, c)
	s.rngs.Put(rng)
	return replicas, err
}

// Select answers a class-selection query (Alg. 1) against the datacenter's
// current snapshot, and returns that snapshot so the caller can report the
// generation it was answered at.
func (s *Service) Select(dc string, job core.JobRequest) (core.Selection, *Snapshot, error) {
	snap, ok := s.Snapshot(dc)
	if !ok {
		return core.Selection{}, nil, fmt.Errorf("service: unknown datacenter %q", dc)
	}
	return s.SelectOn(snap, job), snap, nil
}

// Place answers a replica-placement query (Alg. 2) against the datacenter's
// current snapshot.
func (s *Service) Place(dc string, c core.PlacementConstraints) ([]tenant.ServerID, *Snapshot, error) {
	snap, ok := s.Snapshot(dc)
	if !ok {
		return nil, nil, fmt.Errorf("service: unknown datacenter %q", dc)
	}
	replicas, err := s.PlaceOn(snap, c)
	return replicas, snap, err
}
