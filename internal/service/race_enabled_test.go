//go:build race

package service_test

// raceEnabled reports whether this binary was built with -race.
const raceEnabled = true
