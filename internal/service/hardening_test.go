package service_test

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"harvest/internal/core"
	"harvest/internal/service"
)

// TestTenantStaleEviction pins the ring-eviction policy end to end: tenants
// that stop reporting past the staleness window drop out of the next
// re-clustering (their servers leave the serving set), tenants that keep
// reporting stay, and the daemon keeps serving.
func TestTenantStaleEviction(t *testing.T) {
	cfg := testConfig()
	cfg.TenantStaleAfter = 50 * time.Millisecond
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	before, _ := svc.Snapshot("DC-9")
	target := before.Clustering.Classes[0]
	serversBefore := 0
	for _, cls := range before.Clustering.Classes {
		serversBefore += cls.NumServers()
	}

	// Everyone's bootstrap fill ages past the window; only the target
	// class's tenants report again.
	time.Sleep(60 * time.Millisecond)
	samples := make([]service.IngestSample, 0, len(target.Tenants))
	for _, tid := range target.Tenants {
		samples = append(samples, service.IngestSample{Tenant: tid, Server: -1, Value: 0.5})
	}
	if res, err := svc.Ingest("DC-9", samples); err != nil || res.Accepted != len(samples) {
		t.Fatalf("Ingest: %+v, %v", res, err)
	}
	if err := svc.Refresh("DC-9"); err != nil {
		t.Fatalf("Refresh: %v", err)
	}

	st, _ := svc.Stats("DC-9")
	if st.EvictedTenants == 0 {
		t.Fatal("no rings were evicted")
	}
	after, _ := svc.Snapshot("DC-9")
	serversAfter := 0
	tenantsAfter := 0
	for _, cls := range after.Clustering.Classes {
		serversAfter += cls.NumServers()
		tenantsAfter += len(cls.Tenants)
	}
	if serversAfter >= serversBefore {
		t.Errorf("servers did not shrink: %d -> %d", serversBefore, serversAfter)
	}
	if tenantsAfter != len(target.Tenants) {
		t.Errorf("clustering holds %d tenants, want the %d that kept reporting", tenantsAfter, len(target.Tenants))
	}
	// The surviving tenants keep their class membership.
	for _, tid := range target.Tenants {
		if _, ok := after.Clustering.ClassOfTenant(tid); !ok {
			t.Errorf("reporting tenant %v lost its class", tid)
		}
	}
	// Queries still work against the shrunken serving set.
	if sel, _, err := svc.Select("DC-9", core.JobRequest{Type: core.JobMedium, MaxConcurrentCores: 2}); err != nil || sel.Empty() {
		t.Errorf("select after eviction failed: %v %+v", err, sel)
	}
	checkBooks(t, svc, "DC-9")
}

func postWithToken(t *testing.T, url, token, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

func TestIngestTokenAuth(t *testing.T) {
	svc := newTestService(t)
	srv := httptest.NewServer(service.NewAPIWith(svc, service.APIOptions{IngestToken: "s3kr1t"}))
	defer srv.Close()

	snap, _ := svc.Snapshot("DC-9")
	body := fmt.Sprintf(`{"samples":[{"tenant":%d,"utilization":0.5}]}`, snap.Clustering.Classes[0].Tenants[0])
	url := srv.URL + "/v1/DC-9/telemetry"

	if resp := postWithToken(t, url, "", body); resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("no-token status = %d, want 401", resp.StatusCode)
	}
	if resp := postWithToken(t, url, "wrong", body); resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("wrong-token status = %d, want 401", resp.StatusCode)
	}
	if resp := postWithToken(t, url, "s3kr1t", body); resp.StatusCode != http.StatusOK {
		t.Errorf("good-token status = %d, want 200", resp.StatusCode)
	}
	// The query surface stays open: no token needed to select.
	if resp, _ := postJSON(t, srv.URL+"/v1/DC-9/select", `{"job_type":"short","max_concurrent_cores":1}`); resp.StatusCode != http.StatusOK {
		t.Errorf("tokenless select status = %d, want 200", resp.StatusCode)
	}
}

func TestIngestRateLimit(t *testing.T) {
	svc := newTestService(t)
	// 1 req/s with a burst of 2: the first two POSTs pass, the third is
	// throttled (the test finishes long before a refill token accrues).
	srv := httptest.NewServer(service.NewAPIWith(svc, service.APIOptions{IngestRatePerSource: 1, IngestBurst: 2}))
	defer srv.Close()

	snap, _ := svc.Snapshot("DC-9")
	tid := snap.Clustering.Classes[0].Tenants[0]
	url := srv.URL + "/v1/DC-9/telemetry"
	for i := 0; i < 2; i++ {
		body := fmt.Sprintf(`{"samples":[{"tenant":%d,"utilization":0.5}]}`, tid)
		if resp := postWithToken(t, url, "", body); resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %d status = %d, want 200", i, resp.StatusCode)
		}
	}
	resp := postWithToken(t, url, "", fmt.Sprintf(`{"samples":[{"tenant":%d,"utilization":0.5}]}`, tid))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("burst-exceeding POST status = %d, want 429", resp.StatusCode)
	}
	// Throttling is per source and per the telemetry endpoint only.
	if resp, _ := postJSON(t, srv.URL+"/v1/DC-9/select", `{"job_type":"short","max_concurrent_cores":1}`); resp.StatusCode != http.StatusOK {
		t.Errorf("select throttled alongside telemetry: %d", resp.StatusCode)
	}
}
