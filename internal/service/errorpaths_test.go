package service_test

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"harvest/internal/service"
)

// doRaw issues one request with an arbitrary method, returning the response
// with its body drained and closed.
func doRaw(t *testing.T, method, url, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	resp.Body.Close()
	return resp
}

// TestEndpointErrorPaths pins every endpoint's error status codes so they
// are contracts, not accidents: wrong method → 405, unknown datacenter /
// lease / server → 404, malformed or invalid JSON → 400. The ingest
// hardening codes (401/429) get their own table below — they need a
// differently configured API.
func TestEndpointErrorPaths(t *testing.T) {
	svc := newTestService(t)
	srv := httptest.NewServer(service.NewAPI(svc))
	defer srv.Close()

	cases := []struct {
		name   string
		method string
		path   string
		body   string
		want   int
	}{
		// GET /v1/datacenters
		{"datacenters wrong method", "POST", "/v1/datacenters", "", http.StatusMethodNotAllowed},

		// GET /v1/{dc}/classes
		{"classes wrong method", "POST", "/v1/DC-9/classes", "", http.StatusMethodNotAllowed},
		{"classes unknown dc", "GET", "/v1/DC-X/classes", "", http.StatusNotFound},

		// GET /v1/{dc}/servers/{id}/class
		{"server class wrong method", "POST", "/v1/DC-9/servers/1/class", "", http.StatusMethodNotAllowed},
		{"server class unknown dc", "GET", "/v1/DC-X/servers/1/class", "", http.StatusNotFound},
		{"server class non-integer id", "GET", "/v1/DC-9/servers/abc/class", "", http.StatusBadRequest},
		{"server class unknown server", "GET", "/v1/DC-9/servers/99999999/class", "", http.StatusNotFound},

		// POST /v1/{dc}/select
		{"select wrong method", "GET", "/v1/DC-9/select", "", http.StatusMethodNotAllowed},
		{"select unknown dc", "POST", "/v1/DC-X/select", `{"max_concurrent_cores":1}`, http.StatusNotFound},
		{"select malformed json", "POST", "/v1/DC-9/select", `{"max_concurrent`, http.StatusBadRequest},
		{"select zero cores", "POST", "/v1/DC-9/select", `{"max_concurrent_cores":0}`, http.StatusBadRequest},
		{"select negative cores", "POST", "/v1/DC-9/select", `{"max_concurrent_cores":-3}`, http.StatusBadRequest},
		{"select bad job type", "POST", "/v1/DC-9/select", `{"job_type":"eternal","max_concurrent_cores":1}`, http.StatusBadRequest},
		{"select negative hold", "POST", "/v1/DC-9/select", `{"max_concurrent_cores":1,"hold_seconds":-1}`, http.StatusBadRequest},
		{"select over-cap hold", "POST", "/v1/DC-9/select", `{"max_concurrent_cores":1,"hold_seconds":3601}`, http.StatusBadRequest},

		// POST /v1/{dc}/release
		{"release wrong method", "GET", "/v1/DC-9/release", "", http.StatusMethodNotAllowed},
		{"release unknown dc", "POST", "/v1/DC-X/release", `{"lease":1}`, http.StatusNotFound},
		{"release malformed json", "POST", "/v1/DC-9/release", `{"lease":`, http.StatusBadRequest},
		{"release zero lease", "POST", "/v1/DC-9/release", `{"lease":0}`, http.StatusBadRequest},
		{"release unknown lease", "POST", "/v1/DC-9/release", `{"lease":424242}`, http.StatusNotFound},

		// POST /v1/{dc}/place
		{"place wrong method", "GET", "/v1/DC-9/place", "", http.StatusMethodNotAllowed},
		{"place unknown dc", "POST", "/v1/DC-X/place", `{"replication":3}`, http.StatusNotFound},
		{"place malformed json", "POST", "/v1/DC-9/place", `replication=3`, http.StatusBadRequest},
		{"place zero replication", "POST", "/v1/DC-9/place", `{"replication":0}`, http.StatusBadRequest},
		{"place excessive replication", "POST", "/v1/DC-9/place", `{"replication":65}`, http.StatusBadRequest},

		// POST /v1/{dc}/telemetry (open config; 401/429 in the table below)
		{"telemetry wrong method", "GET", "/v1/DC-9/telemetry", "", http.StatusMethodNotAllowed},
		{"telemetry unknown dc", "POST", "/v1/DC-X/telemetry", `{"samples":[{"tenant":0,"utilization":0.5}]}`, http.StatusNotFound},
		{"telemetry malformed json", "POST", "/v1/DC-9/telemetry", `{"samples":[`, http.StatusBadRequest},
		{"telemetry no samples", "POST", "/v1/DC-9/telemetry", `{"samples":[]}`, http.StatusBadRequest},

		// GET /healthz, GET /metrics
		{"healthz wrong method", "POST", "/healthz", "", http.StatusMethodNotAllowed},
		{"metrics wrong method", "POST", "/metrics", "", http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if resp := doRaw(t, tc.method, srv.URL+tc.path, tc.body); resp.StatusCode != tc.want {
				t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
			}
		})
	}
}

// postTelemetryXFF posts one ingest sample carrying an X-Forwarded-For
// header and returns the status.
func postTelemetryXFF(t *testing.T, baseURL, forwardedFor string) int {
	t.Helper()
	req, err := http.NewRequest("POST", baseURL+"/v1/DC-9/telemetry",
		strings.NewReader(`{"samples":[{"tenant":0,"utilization":0.5}]}`))
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Forwarded-For", forwardedFor)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestIngestRateLimitTrustedProxy pins the per-source isolation of the rate
// limit behind a router: for connections from a configured trusted proxy
// the bucket key is the X-Forwarded-For client (port stripped) — distinct
// emitters get distinct buckets, the same emitter shares one across
// reconnects.
func TestIngestRateLimitTrustedProxy(t *testing.T) {
	svc := newTestService(t)
	srv := httptest.NewServer(service.NewAPIWith(svc, service.APIOptions{
		IngestRatePerSource: 0.0001, // effectively no refill within the test
		IngestBurst:         1,
		TrustedProxies:      []string{"127.0.0.1", "::1"}, // httptest connects over loopback
	}))
	defer srv.Close()

	if got := postTelemetryXFF(t, srv.URL, "10.0.0.1:1234"); got != http.StatusOK {
		t.Errorf("first client: status %d, want 200", got)
	}
	if got := postTelemetryXFF(t, srv.URL, "10.0.0.2:4321"); got != http.StatusOK {
		t.Errorf("second client sharing the proxy conn: status %d, want 200 (own bucket)", got)
	}
	if got := postTelemetryXFF(t, srv.URL, "10.0.0.1:9999"); got != http.StatusTooManyRequests {
		t.Errorf("first client reconnected: status %d, want 429 (same bucket, port stripped)", got)
	}
}

// TestIngestRateLimitIgnoresUntrustedForwardedFor pins the failure-closed
// side: when the connection does not come from a configured trusted proxy,
// X-Forwarded-For is attacker-controlled noise and must not mint fresh
// buckets.
func TestIngestRateLimitIgnoresUntrustedForwardedFor(t *testing.T) {
	svc := newTestService(t)
	srv := httptest.NewServer(service.NewAPIWith(svc, service.APIOptions{
		IngestRatePerSource: 0.0001,
		IngestBurst:         1,
		TrustedProxies:      []string{"192.0.2.77"}, // not the test's loopback peer
	}))
	defer srv.Close()

	if got := postTelemetryXFF(t, srv.URL, "10.0.0.1:1234"); got != http.StatusOK {
		t.Errorf("first request: status %d, want 200", got)
	}
	// A fresh spoofed header must not escape the RemoteAddr bucket.
	if got := postTelemetryXFF(t, srv.URL, "10.99.99.99:1"); got != http.StatusTooManyRequests {
		t.Errorf("spoofed X-Forwarded-For escaped the rate limit: status %d, want 429", got)
	}
}

// TestIngestHardeningErrorPaths pins the 401/429 contract of the telemetry
// endpoint under a hardened configuration. Rows run in order: the auth
// rejections must not consume rate-limit tokens, the one authorized POST
// drains the single-token bucket, and the next authorized POST trips 429.
func TestIngestHardeningErrorPaths(t *testing.T) {
	svc := newTestService(t)
	srv := httptest.NewServer(service.NewAPIWith(svc, service.APIOptions{
		IngestToken:         "sekrit",
		IngestRatePerSource: 0.0001, // effectively no refill within the test
		IngestBurst:         1,
	}))
	defer srv.Close()

	sample := `{"samples":[{"tenant":0,"utilization":0.5}]}`
	cases := []struct {
		name  string
		token string
		want  int
	}{
		{"missing token", "", http.StatusUnauthorized},
		{"wrong token", "Bearer wrong", http.StatusUnauthorized},
		{"wrong scheme", "Basic sekrit", http.StatusUnauthorized},
		{"authorized", "Bearer sekrit", http.StatusOK},
		{"rate limited", "Bearer sekrit", http.StatusTooManyRequests},
		{"still rate limited", "Bearer sekrit", http.StatusTooManyRequests},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest("POST", srv.URL+"/v1/DC-9/telemetry", strings.NewReader(sample))
			if err != nil {
				t.Fatalf("new request: %v", err)
			}
			req.Header.Set("Content-Type", "application/json")
			if tc.token != "" {
				req.Header.Set("Authorization", tc.token)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatalf("POST: %v", err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Errorf("token %q: status %d, want %d", tc.token, resp.StatusCode, tc.want)
			}
		})
	}
}
