package service

import "harvest/internal/obs"

// Histogram and EndpointMetrics moved to internal/obs when the
// observability plane landed, so the router's binary front end and the
// Prometheus renderer can share them without importing the serving layer.
// The aliases keep the service API (and loadgen's per-worker histograms)
// source-compatible.
type Histogram = obs.Histogram

// EndpointMetrics counts one endpoint's traffic. See obs.EndpointMetrics.
type EndpointMetrics = obs.EndpointMetrics
