package service_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"net/http/httptest"
	"reflect"
	"runtime"
	"runtime/debug"
	"testing"
	"time"

	"harvest/internal/core"
	"harvest/internal/ledger"
	"harvest/internal/service"
	"harvest/internal/signalproc"
	"harvest/internal/wire"
)

// binClient is a minimal sequential binary-dialect client for tests: one
// frame out, one frame in.
type binClient struct {
	t       *testing.T
	conn    net.Conn
	br      *bufio.Reader
	scratch []byte
	nextID  uint64
}

func dialBinary(t *testing.T, addr string) *binClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial binary %s: %v", addr, err)
	}
	t.Cleanup(func() { conn.Close() })
	return &binClient{t: t, conn: conn, br: bufio.NewReader(conn)}
}

// roundTrip sends one pre-built frame and reads one response frame.
func (c *binClient) roundTrip(frame []byte) (wire.Header, []byte) {
	c.t.Helper()
	if _, err := c.conn.Write(frame); err != nil {
		c.t.Fatalf("write frame: %v", err)
	}
	h, payload, err := wire.ReadFrame(c.br, &c.scratch)
	if err != nil {
		c.t.Fatalf("read frame: %v", err)
	}
	return h, payload
}

func (c *binClient) id() uint64 {
	c.nextID++
	return c.nextID
}

func startBinaryServer(t *testing.T, svc *service.Service) string {
	t.Helper()
	bs := service.NewBinaryServer(svc)
	addr, _, err := bs.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatalf("binary listen: %v", err)
	}
	t.Cleanup(bs.Close)
	return addr.String()
}

func TestBinaryServerBasics(t *testing.T) {
	svc := newTestService(t)
	defer svc.Close()
	addr := startBinaryServer(t, svc)
	c := dialBinary(t, addr)

	// Request id echo + classes round trip.
	h, payload := c.roundTrip(wire.AppendClassesReq(nil, 42, "DC-9"))
	if h.Op != wire.OpClassesResp || h.ID != 42 {
		t.Fatalf("classes response header %+v", h)
	}
	var classes wire.ClassesResp
	if err := classes.Decode(payload); err != nil {
		t.Fatalf("decode classes: %v", err)
	}
	if len(classes.Classes) == 0 || classes.Generation == 0 {
		t.Fatalf("empty classes response %+v", classes)
	}

	// Unknown datacenter answers an error frame, connection stays usable.
	h, payload = c.roundTrip(wire.AppendClassesReq(nil, c.id(), "DC-404"))
	var e wire.ErrorResp
	if h.Op != wire.OpError || e.Decode(payload) != nil || e.Code != 404 {
		t.Fatalf("unknown dc: op %v payload %x", h.Op, payload)
	}

	// Select reserves a lease; release over the same dialect returns it with
	// exact-millicore conservation.
	h, payload = c.roundTrip(wire.AppendSelectReq(nil, c.id(), "DC-9",
		wire.SelectReq{Job: wire.JobShort, MaxCores: 2}))
	if h.Op != wire.OpSelectResp {
		t.Fatalf("select: op %v", h.Op)
	}
	var sel wire.SelectResp
	if err := sel.Decode(payload); err != nil {
		t.Fatalf("decode select: %v", err)
	}
	if !sel.Satisfiable || sel.Lease == 0 || len(sel.Classes) == 0 {
		t.Fatalf("select not satisfied: %+v", sel)
	}
	h, payload = c.roundTrip(wire.AppendReleaseReq(nil, c.id(), "DC-9", sel.Lease))
	if h.Op != wire.OpReleaseResp {
		t.Fatalf("release: op %v payload %x", h.Op, payload)
	}
	var rel wire.ReleaseResp
	if err := rel.Decode(payload); err != nil {
		t.Fatalf("decode release: %v", err)
	}
	var granted float64
	for _, g := range sel.Classes {
		granted += g.Granted
	}
	if rel.TotalMillis != ledger.ToMillis(granted) {
		t.Fatalf("released %d millis, granted %v cores", rel.TotalMillis, granted)
	}

	// Double release of the same lease is 404, like the JSON API.
	h, payload = c.roundTrip(wire.AppendReleaseReq(nil, c.id(), "DC-9", sel.Lease))
	if h.Op != wire.OpError || e.Decode(payload) != nil || e.Code != 404 {
		t.Fatalf("double release: op %v code %d", h.Op, e.Code)
	}

	// Place.
	h, payload = c.roundTrip(wire.AppendPlaceReq(nil, c.id(), "DC-9",
		wire.PlaceReq{Replication: 3, Writer: -1}))
	if h.Op != wire.OpPlaceResp {
		t.Fatalf("place: op %v payload %x", h.Op, payload)
	}
	var place wire.PlaceResp
	if err := place.Decode(payload); err != nil || len(place.Replicas) != 3 {
		t.Fatalf("place response %+v err %v", place, err)
	}

	// Server class on a class's example server.
	h, payload = c.roundTrip(wire.AppendServerClassReq(nil, c.id(), "DC-9", classes.Classes[0].ExampleServer))
	if h.Op != wire.OpServerClassResp {
		t.Fatalf("server class: op %v", h.Op)
	}
	var sc wire.ServerClassResp
	if err := sc.Decode(payload); err != nil || sc.Class.ID != classes.Classes[0].ID {
		t.Fatalf("server class response %+v err %v", sc, err)
	}
}

func TestBinaryServerPipelining(t *testing.T) {
	svc := newTestService(t)
	defer svc.Close()
	addr := startBinaryServer(t, svc)
	c := dialBinary(t, addr)

	// A pipelined burst: many frames in one write, responses read back in
	// order with matching ids.
	const n = 32
	var batch []byte
	for i := uint64(1); i <= n; i++ {
		batch = wire.AppendClassesReq(batch, i, "DC-9")
	}
	if _, err := c.conn.Write(batch); err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= n; i++ {
		h, _, err := wire.ReadFrame(c.br, &c.scratch)
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if h.ID != i || h.Op != wire.OpClassesResp {
			t.Fatalf("response %d: header %+v", i, h)
		}
	}
}

func TestBinaryServerClosesOnGarbage(t *testing.T) {
	svc := newTestService(t)
	defer svc.Close()
	addr := startBinaryServer(t, svc)
	c := dialBinary(t, addr)

	// An accidental HTTP request fails the magic byte: the server must close
	// without writing anything.
	if _, err := c.conn.Write([]byte("POST /v1/DC-9/select HTTP/1.1\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	c.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if b, err := c.br.ReadByte(); err == nil {
		t.Fatalf("server responded %#x to garbage instead of closing", b)
	}
}

// jsonDialect / binDialect execute the same logical requests over the two
// protocols, normalizing responses into comparable shapes.
type dialectClass struct {
	ID      int
	Pattern string
	Tenants int
	Servers int
	Avg     float64
	Peak    float64
	Current float64
	Alloc   float64
	Example int64
}

type dialectSelect struct {
	Generation  uint64
	JobType     string
	Satisfiable bool
	Classes     []int
	Headrooms   []float64
	Granted     []float64
	Lease       uint64 // compared only for zero/nonzero — ids are random
}

type dialectRelease struct {
	TotalCores float64
	Classes    []int
	Cores      []float64
}

// TestCrossProtocolEquivalence drives the same request sequence over the
// JSON API and the binary dialect against two identically seeded services
// and asserts the responses and final ledger books are identical.
//
// Selection and placement consume pooled per-request RNGs, so equivalence
// of outcomes needs both services to draw identical RNG sequences: with
// GOMAXPROCS=1 and GC disabled, each service's pool degenerates to a single
// deterministic RNG reused by its strictly sequential requests.
func TestCrossProtocolEquivalence(t *testing.T) {
	if raceEnabled {
		// sync.Pool deliberately randomizes reuse under the race detector,
		// so the two services' RNG draws cannot be aligned there.
		t.Skip("pooled-RNG determinism is unavailable under -race")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	svcJSON := newTestService(t)
	defer svcJSON.Close()
	srv := httptest.NewServer(service.NewAPI(svcJSON))
	defer srv.Close()

	svcBin := newTestService(t)
	defer svcBin.Close()
	bin := dialBinary(t, startBinaryServer(t, svcBin))

	// --- classes ---
	jc := jsonClasses(t, srv.URL, "DC-9")
	bc := binClasses(t, bin, "DC-9")
	if !reflect.DeepEqual(jc, bc) {
		t.Fatalf("classes diverge:\njson %+v\nbin  %+v", jc, bc)
	}

	// --- a deterministic select sequence, half released ---
	selects := []wire.SelectReq{
		{Job: wire.JobShort, MaxCores: 2},
		{Job: wire.JobFromLastRun, LastRunSeconds: 45, MaxCores: 1.5},
		{Job: wire.JobLong, MaxCores: 4, HoldMillis: 30_000},
		{Job: wire.JobMedium, MaxCores: 0.5},
		{Job: wire.JobMedium, MaxCores: 2, Flags: wire.SelectFlagDryRun},
		{Job: wire.JobShort, MaxCores: 3},
	}
	var jsonLeases, binLeases []uint64
	for i, req := range selects {
		js := jsonSelect(t, srv.URL, "DC-9", req)
		bs := binSelect(t, bin, "DC-9", req)
		if (js.Lease == 0) != (bs.Lease == 0) {
			t.Fatalf("select %d: lease presence diverges (%d vs %d)", i, js.Lease, bs.Lease)
		}
		jsonLeases, binLeases = append(jsonLeases, js.Lease), append(binLeases, bs.Lease)
		js.Lease, bs.Lease = 0, 0 // ids are random by design; compared above
		if !reflect.DeepEqual(js, bs) {
			t.Fatalf("select %d diverges:\njson %+v\nbin  %+v", i, js, bs)
		}
	}
	for i := 0; i < len(selects); i += 2 {
		if jsonLeases[i] == 0 {
			continue
		}
		jr := jsonRelease(t, srv.URL, "DC-9", jsonLeases[i])
		br := binRelease(t, bin, "DC-9", binLeases[i])
		if !reflect.DeepEqual(jr, br) {
			t.Fatalf("release %d diverges:\njson %+v\nbin  %+v", i, jr, br)
		}
	}

	// --- placement (same RNG discipline ⇒ identical replicas) ---
	for _, rep := range []int{3, 4} {
		jp := jsonPlace(t, srv.URL, "DC-9", rep)
		bp := binPlace(t, bin, "DC-9", rep)
		if !reflect.DeepEqual(jp, bp) {
			t.Fatalf("place r=%d diverges: json %v bin %v", rep, jp, bp)
		}
	}

	// --- server class ---
	jsc := jsonServerClass(t, srv.URL, "DC-9", jc[0].Example)
	bsc := binServerClass(t, bin, "DC-9", bc[0].Example)
	if !reflect.DeepEqual(jsc, bsc) {
		t.Fatalf("server class diverges:\njson %+v\nbin  %+v", jsc, bsc)
	}

	// --- final books: the sequences must have written identical ledgers ---
	jb, ok1 := svcJSON.LedgerStats("DC-9")
	bb, ok2 := svcBin.LedgerStats("DC-9")
	if !ok1 || !ok2 {
		t.Fatal("missing ledger stats")
	}
	if !reflect.DeepEqual(jb, bb) {
		t.Fatalf("ledger books diverge:\njson %+v\nbin  %+v", jb, bb)
	}
	if jb.ReservedMillis != jb.ReleasedMillis+jb.ExpiredMillis+jb.ForfeitedMillis+jb.OutstandingMillis {
		t.Fatalf("conservation violated: %+v", jb)
	}
	jg, ja, _ := svcJSON.LedgerOccupancy("DC-9")
	bg, ba, _ := svcBin.LedgerOccupancy("DC-9")
	if jg != bg || !reflect.DeepEqual(ja, ba) {
		t.Fatalf("occupancy diverges: gen %d/%d %v vs %v", jg, bg, ja, ba)
	}
}

// --- JSON dialect executors ---

func jsonClasses(t *testing.T, base, dc string) []dialectClass {
	t.Helper()
	resp, body := get(t, base+"/v1/"+dc+"/classes")
	if resp.StatusCode != 200 {
		t.Fatalf("classes: %d %s", resp.StatusCode, body)
	}
	var r struct {
		Classes []struct {
			ID                 int     `json:"id"`
			Pattern            string  `json:"pattern"`
			NumTenants         int     `json:"num_tenants"`
			NumServers         int     `json:"num_servers"`
			AvgUtilization     float64 `json:"avg_utilization"`
			PeakUtilization    float64 `json:"peak_utilization"`
			CurrentUtilization float64 `json:"current_utilization"`
			AllocatedCores     float64 `json:"allocated_cores"`
			ExampleServer      int64   `json:"example_server"`
		} `json:"classes"`
	}
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatal(err)
	}
	out := make([]dialectClass, len(r.Classes))
	for i, c := range r.Classes {
		out[i] = dialectClass{c.ID, c.Pattern, c.NumTenants, c.NumServers,
			c.AvgUtilization, c.PeakUtilization, c.CurrentUtilization, c.AllocatedCores, c.ExampleServer}
	}
	return out
}

func recToDialect(c wire.ClassRec) dialectClass {
	return dialectClass{int(c.ID), signalproc.Pattern(c.Pattern).String(), int(c.NumTenants), int(c.NumServers),
		c.Avg, c.Peak, c.Current, ledger.CoresOf(c.AllocMillis), c.ExampleServer}
}

func binClasses(t *testing.T, c *binClient, dc string) []dialectClass {
	t.Helper()
	h, payload := c.roundTrip(wire.AppendClassesReq(nil, c.id(), dc))
	if h.Op != wire.OpClassesResp {
		t.Fatalf("classes: op %v", h.Op)
	}
	var m wire.ClassesResp
	if err := m.Decode(payload); err != nil {
		t.Fatal(err)
	}
	out := make([]dialectClass, len(m.Classes))
	for i, cl := range m.Classes {
		out[i] = recToDialect(cl)
	}
	return out
}

func jsonSelect(t *testing.T, base, dc string, req wire.SelectReq) dialectSelect {
	t.Helper()
	jobNames := map[uint8]string{wire.JobShort: "short", wire.JobMedium: "medium", wire.JobLong: "long", wire.JobFromLastRun: ""}
	body := fmt.Sprintf(`{"job_type":%q,"last_run_seconds":%v,"max_concurrent_cores":%v,"hold_seconds":%v,"dry_run":%v}`,
		jobNames[req.Job], req.LastRunSeconds, req.MaxCores, float64(req.HoldMillis)/1000, req.Flags&wire.SelectFlagDryRun != 0)
	resp, b := postJSON(t, base+"/v1/"+dc+"/select", body)
	if resp.StatusCode != 200 {
		t.Fatalf("select: %d %s", resp.StatusCode, b)
	}
	var r struct {
		Generation  uint64    `json:"generation"`
		JobType     string    `json:"job_type"`
		Satisfiable bool      `json:"satisfiable"`
		Classes     []int     `json:"classes"`
		Headrooms   []float64 `json:"headrooms"`
		Lease       uint64    `json:"lease"`
		Granted     []float64 `json:"granted"`
	}
	if err := json.Unmarshal(b, &r); err != nil {
		t.Fatal(err)
	}
	return dialectSelect{r.Generation, r.JobType, r.Satisfiable, r.Classes, r.Headrooms, r.Granted, r.Lease}
}

func binSelect(t *testing.T, c *binClient, dc string, req wire.SelectReq) dialectSelect {
	t.Helper()
	h, payload := c.roundTrip(wire.AppendSelectReq(nil, c.id(), dc, req))
	if h.Op != wire.OpSelectResp {
		t.Fatalf("select: op %v payload %x", h.Op, payload)
	}
	var m wire.SelectResp
	if err := m.Decode(payload); err != nil {
		t.Fatal(err)
	}
	out := dialectSelect{
		Generation:  m.Generation,
		JobType:     core.JobType(m.Job).String(),
		Satisfiable: m.Satisfiable,
		Lease:       m.Lease,
	}
	for _, g := range m.Classes {
		out.Classes = append(out.Classes, int(g.Class))
		out.Headrooms = append(out.Headrooms, g.Headroom)
	}
	// The JSON dialect omits granted on dry-run/unsatisfiable; the binary
	// dialect always carries a granted column. Normalize: keep it only when
	// a lease exists.
	if m.Lease != 0 {
		for _, g := range m.Classes {
			out.Granted = append(out.Granted, g.Granted)
		}
	}
	// The JSON dialect always materializes classes/headrooms as [] arrays.
	if out.Classes == nil {
		out.Classes = []int{}
	}
	if out.Headrooms == nil {
		out.Headrooms = []float64{}
	}
	return out
}

func jsonRelease(t *testing.T, base, dc string, lease uint64) dialectRelease {
	t.Helper()
	resp, b := postJSON(t, base+"/v1/"+dc+"/release", fmt.Sprintf(`{"lease":%d}`, lease))
	if resp.StatusCode != 200 {
		t.Fatalf("release: %d %s", resp.StatusCode, b)
	}
	var r struct {
		ReleasedCores float64   `json:"released_cores"`
		Classes       []int     `json:"classes"`
		Cores         []float64 `json:"cores"`
	}
	if err := json.Unmarshal(b, &r); err != nil {
		t.Fatal(err)
	}
	return dialectRelease{r.ReleasedCores, r.Classes, r.Cores}
}

func binRelease(t *testing.T, c *binClient, dc string, lease uint64) dialectRelease {
	t.Helper()
	h, payload := c.roundTrip(wire.AppendReleaseReq(nil, c.id(), dc, lease))
	if h.Op != wire.OpReleaseResp {
		t.Fatalf("release: op %v payload %x", h.Op, payload)
	}
	var m wire.ReleaseResp
	if err := m.Decode(payload); err != nil {
		t.Fatal(err)
	}
	out := dialectRelease{TotalCores: ledger.CoresOf(m.TotalMillis)}
	for _, g := range m.Grants {
		out.Classes = append(out.Classes, int(g.Class))
		out.Cores = append(out.Cores, ledger.CoresOf(g.Millis))
	}
	return out
}

func jsonPlace(t *testing.T, base, dc string, replication int) []int64 {
	t.Helper()
	resp, b := postJSON(t, base+"/v1/"+dc+"/place", fmt.Sprintf(`{"replication":%d,"writer":-1}`, replication))
	if resp.StatusCode != 200 {
		t.Fatalf("place: %d %s", resp.StatusCode, b)
	}
	var r struct {
		Replicas []int64 `json:"replicas"`
	}
	if err := json.Unmarshal(b, &r); err != nil {
		t.Fatal(err)
	}
	return r.Replicas
}

func binPlace(t *testing.T, c *binClient, dc string, replication int) []int64 {
	t.Helper()
	h, payload := c.roundTrip(wire.AppendPlaceReq(nil, c.id(), dc,
		wire.PlaceReq{Replication: uint8(replication), Writer: -1}))
	if h.Op != wire.OpPlaceResp {
		t.Fatalf("place: op %v payload %x", h.Op, payload)
	}
	var m wire.PlaceResp
	if err := m.Decode(payload); err != nil {
		t.Fatal(err)
	}
	return m.Replicas
}

func jsonServerClass(t *testing.T, base, dc string, server int64) dialectClass {
	t.Helper()
	resp, b := get(t, fmt.Sprintf("%s/v1/%s/servers/%d/class", base, dc, server))
	if resp.StatusCode != 200 {
		t.Fatalf("server class: %d %s", resp.StatusCode, b)
	}
	var r struct {
		Class struct {
			ID                 int     `json:"id"`
			Pattern            string  `json:"pattern"`
			NumTenants         int     `json:"num_tenants"`
			NumServers         int     `json:"num_servers"`
			AvgUtilization     float64 `json:"avg_utilization"`
			PeakUtilization    float64 `json:"peak_utilization"`
			CurrentUtilization float64 `json:"current_utilization"`
			AllocatedCores     float64 `json:"allocated_cores"`
			ExampleServer      int64   `json:"example_server"`
		} `json:"class"`
	}
	if err := json.Unmarshal(b, &r); err != nil {
		t.Fatal(err)
	}
	c := r.Class
	return dialectClass{c.ID, c.Pattern, c.NumTenants, c.NumServers,
		c.AvgUtilization, c.PeakUtilization, c.CurrentUtilization, c.AllocatedCores, c.ExampleServer}
}

func binServerClass(t *testing.T, c *binClient, dc string, server int64) dialectClass {
	t.Helper()
	h, payload := c.roundTrip(wire.AppendServerClassReq(nil, c.id(), dc, server))
	if h.Op != wire.OpServerClassResp {
		t.Fatalf("server class: op %v payload %x", h.Op, payload)
	}
	var m wire.ServerClassResp
	if err := m.Decode(payload); err != nil {
		t.Fatal(err)
	}
	return recToDialect(m.Class)
}
