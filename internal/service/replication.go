package service

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"harvest/internal/blockledger"
	"harvest/internal/core"
	"harvest/internal/ledger"
	"harvest/internal/signalproc"
	"harvest/internal/tenant"
	"harvest/internal/wire"
)

// Replica read fan-out: a primary harvestd streams (snapshot, ledger-occupancy)
// generations to read-only followers over the binary wire's replication
// opcodes, so a router can spread the read path (classes, server-class,
// dry-run select, place) across machines while writes stay pinned to the
// primary.
//
// The stream is a one-way push per follower connection:
//
//	follower           primary
//	   | --- OpReplHello --->|   follower id + held generations
//	   | <- OpReplHelloResp -|   primary id
//	   | <---- OpReplSnap ---|   full snapshot (join / fall-behind)
//	   | <---- OpReplDelta --|   next generation; unchanged classes by reference
//	   | <---- OpReplBeat ---|   same generation: refreshed usage + ledger books
//
// Deltas reuse the warm-recluster structural sharing: a class whose Servers
// slice is pointer-shared with the previous generation (spliceMembership's
// reuse) has provably identical membership, so the frame carries only its id,
// summary stats and centroid — steady-state shipping is O(drifted tenants),
// not O(fleet). A delta whose PrevGeneration does not match the follower
// exactly drops the connection; the rejoin handshake then gets a full
// snapshot. The ledger rides along in full on every frame (bounded by live
// leases), which is what makes promotion safe: the follower's books are a
// prefix of the primary's, and conservation holds on whatever frame applied
// last.
type replState struct {
	// Follower side.
	primaryID   atomic.Pointer[string]
	stopFollow  chan struct{}
	promoteOnce sync.Once
	conn        atomic.Pointer[net.Conn]
	// followAddr overrides cfg.FollowAddr when the primary moves: the router
	// learns the promoted primary's replication address from registration
	// beats and the announcer retargets orphaned followers here (nil until
	// the first retarget).
	followAddr atomic.Pointer[string]
	// applyMu serializes frame application and is the promotion barrier:
	// Promote flips the role and then takes the mutex, so no frame mutates
	// the books after Promote returns.
	applyMu       sync.Mutex
	applyLag      Histogram
	connected     atomic.Bool
	snapsApplied  atomic.Uint64
	deltasApplied atomic.Uint64
	beatsApplied  atomic.Uint64
	reconnects    atomic.Uint64
	promotions    atomic.Uint64

	// Primary side.
	mu sync.Mutex
	ln net.Listener
	// pendingLn is a replication listener a follower holds in reserve:
	// Promote begins ServeReplication on it, so a promoted primary can feed
	// the surviving followers without a restart.
	pendingLn     net.Listener
	conns         map[net.Conn]struct{}
	followers     atomic.Int64
	framesShipped atomic.Uint64
	shipErrors    atomic.Uint64
}

// shutdown closes the replication listener and every live connection so the
// accept/send/apply goroutines unblock; Close's wg.Wait then reaps them.
func (r *replState) shutdown() {
	r.mu.Lock()
	if r.ln != nil {
		r.ln.Close()
	}
	if r.pendingLn != nil {
		r.pendingLn.Close()
	}
	for nc := range r.conns {
		nc.Close()
	}
	r.mu.Unlock()
	if c := r.conn.Load(); c != nil {
		(*c).Close()
	}
}

// replHandshakeTimeout bounds the hello exchange on both ends;
// replWriteTimeout bounds each shipped frame so one stuck follower cannot
// wedge its sender goroutine.
const (
	replHandshakeTimeout = 5 * time.Second
	replWriteTimeout     = 5 * time.Second
)

// readLiveness is how long a follower waits for the next frame before
// declaring the stream dead: generous against one missed tick, far under a
// refresh interval.
func (s *Service) readLiveness() time.Duration {
	d := 10 * s.cfg.ReplInterval
	if d < 5*time.Second {
		d = 5 * time.Second
	}
	return d
}

// ArmReplicationListener hands a follower a replication listener to hold in
// reserve: it accepts nothing until Promote, which starts ServeReplication on
// it — the headline failover fix, letting a promoted primary feed the
// surviving followers (and survive a second failover) without a restart. On a
// node that is already the primary it starts serving immediately.
func (s *Service) ArmReplicationListener(ln net.Listener) {
	if !s.follower.Load() {
		s.ServeReplication(ln)
		return
	}
	s.repl.mu.Lock()
	s.repl.pendingLn = ln
	s.repl.mu.Unlock()
	// Promote may have raced the flag check above; re-check and serve so the
	// listener can never be stranded un-served on a primary.
	if !s.follower.Load() {
		s.serveArmedListener()
	}
}

// serveArmedListener starts replication on the reserve listener, exactly once.
func (s *Service) serveArmedListener() {
	s.repl.mu.Lock()
	ln := s.repl.pendingLn
	s.repl.pendingLn = nil
	s.repl.mu.Unlock()
	if ln != nil {
		s.ServeReplication(ln)
		slogger.Info("replication listener live after promotion", "node", s.cfg.NodeID, "addr", ln.Addr())
	}
}

// SetFollowAddr retargets a follower's replication stream at a new primary
// address — what the announcer calls when the router reports a promoted
// primary. The live connection (if any) is closed so the follow loop re-dials
// immediately. No-op on a primary, on an empty address, or when the address
// is unchanged.
func (s *Service) SetFollowAddr(addr string) {
	if addr == "" || !s.follower.Load() || addr == s.followAddr() {
		return
	}
	s.repl.followAddr.Store(&addr)
	slogger.Info("retargeting replication stream", "node", s.cfg.NodeID, "primary_addr", addr)
	if c := s.repl.conn.Load(); c != nil {
		(*c).Close()
	}
}

// followAddr is the address the follow loop dials: the retargeted primary
// when the router has reported one, the configured address otherwise.
func (s *Service) followAddr() string {
	if p := s.repl.followAddr.Load(); p != nil {
		return *p
	}
	return s.cfg.FollowAddr
}

// ServeReplication starts streaming replication frames to every follower
// that connects on ln. The listener is owned by the service from here on:
// Close shuts it down. Call on a primary only; a follower serving replication
// would re-ship second-hand state (followers use ArmReplicationListener).
func (s *Service) ServeReplication(ln net.Listener) {
	s.repl.mu.Lock()
	s.repl.ln = ln
	if s.repl.conns == nil {
		s.repl.conns = make(map[net.Conn]struct{})
	}
	s.repl.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			s.repl.mu.Lock()
			s.repl.conns[nc] = struct{}{}
			s.repl.mu.Unlock()
			s.wg.Add(1)
			go s.serveReplConn(nc)
		}
	}()
}

// serveReplConn handles one follower: handshake, then an unacknowledged push
// of every shard's state each ReplInterval. Any error drops the connection;
// the follower reconnects and re-handshakes.
func (s *Service) serveReplConn(nc net.Conn) {
	defer s.wg.Done()
	defer func() {
		nc.Close()
		s.repl.mu.Lock()
		delete(s.repl.conns, nc)
		s.repl.mu.Unlock()
	}()

	var scratch []byte
	br := bufio.NewReaderSize(nc, 16<<10)
	nc.SetReadDeadline(time.Now().Add(replHandshakeTimeout))
	h, payload, err := wire.ReadFrame(br, &scratch)
	if err != nil || h.Op != wire.OpReplHello {
		return
	}
	var hello wire.ReplHello
	if err := hello.Decode(payload); err != nil {
		return
	}
	nc.SetWriteDeadline(time.Now().Add(replHandshakeTimeout))
	if _, err := nc.Write(wire.AppendReplHelloResp(nil, h.ID, &wire.ReplHelloResp{PrimaryID: s.cfg.NodeID})); err != nil {
		return
	}

	// A follower already holding a shard's current generation (reconnect
	// without a refresh in between) starts on beats instead of a full resend:
	// generations are immutable, so holding the number means holding the state.
	shipped := make(map[string]*Snapshot, len(s.order))
	for _, d := range hello.DCs {
		if sh, ok := s.shards[d.DC]; ok {
			if snap := sh.snap.Load(); snap.Generation == d.Generation {
				shipped[d.DC] = snap
			}
		}
	}
	slogger.Info("replication follower connected", "follower", hello.FollowerID)
	s.repl.followers.Add(1)
	defer s.repl.followers.Add(-1)

	ticker := time.NewTicker(s.cfg.ReplInterval)
	defer ticker.Stop()
	var buf []byte
	for {
		for _, dc := range s.order {
			frame, next := s.buildReplFrame(buf[:0], s.shards[dc], shipped[dc])
			nc.SetWriteDeadline(time.Now().Add(replWriteTimeout))
			if _, err := nc.Write(frame); err != nil {
				s.repl.shipErrors.Add(1)
				slogger.Warn("replication ship failed, dropping follower", "follower", hello.FollowerID, "err", err)
				return
			}
			s.repl.framesShipped.Add(1)
			shipped[dc] = next
			buf = frame
		}
		select {
		case <-s.stop:
			return
		case <-ticker.C:
		}
	}
}

// buildReplFrame encodes the next frame for one shard given the snapshot the
// follower last received: a beat when the generation is unchanged, a delta
// when the follower is exactly one generation behind, a full snapshot
// otherwise. Returns the frame and the snapshot it brings the follower to.
func (s *Service) buildReplFrame(dst []byte, sh *shard, prev *Snapshot) ([]byte, *Snapshot) {
	snap := sh.snap.Load()
	now := time.Now().UnixNano()
	led := replLedgerOf(sh.led.Export())
	blocks := replBlocksOf(sh.blocks.Export())
	usage := s.UsageFor(snap)

	if prev == snap {
		m := wire.ReplBeat{
			DC:           sh.dc,
			Generation:   snap.Generation,
			SentUnixNano: now,
			AsOfSeconds:  sh.rings.Horizon().Seconds(),
			Usage:        make([]wire.ReplClassUsage, 0, len(snap.Clustering.Classes)),
			Ledger:       led,
			Blocks:       blocks,
		}
		for _, cls := range snap.Clustering.Classes {
			m.Usage = append(m.Usage, wire.ReplClassUsage{ID: uint32(cls.ID), Current: usage[cls.ID].CurrentUtilization})
		}
		return wire.AppendReplBeat(dst, 0, &m), snap
	}

	op := wire.OpReplSnap
	m := wire.ReplSnapshot{
		DC:              sh.dc,
		Generation:      snap.Generation,
		SentUnixNano:    now,
		AsOfSeconds:     snap.AsOf.Seconds(),
		BuiltAtUnixNano: snap.BuiltAt.UnixNano(),
		Classes:         make([]wire.ReplClass, 0, len(snap.Clustering.Classes)),
		Ledger:          led,
		Blocks:          blocks,
	}
	if prev != nil && snap.Generation == prev.Generation+1 {
		op = wire.OpReplDelta
		m.PrevGeneration = prev.Generation
	}
	for _, cls := range snap.Clustering.Classes {
		rc := wire.ReplClass{
			ID:       uint32(cls.ID),
			Pattern:  uint8(cls.Pattern),
			Avg:      cls.AvgUtilization,
			Peak:     cls.PeakUtilization,
			Current:  usage[cls.ID].CurrentUtilization,
			Centroid: cls.Centroid,
		}
		if op == wire.OpReplDelta {
			if pc := sharedPrevClass(prev.Clustering, cls); pc != nil {
				rc.Ref = true
				rc.PrevID = uint32(pc.ID)
				m.Classes = append(m.Classes, rc)
				continue
			}
		}
		rc.Tenants = make([]int64, len(cls.Tenants))
		for i, tid := range cls.Tenants {
			rc.Tenants[i] = int64(tid)
		}
		rc.Servers = make([]int64, len(cls.Servers))
		for i, srv := range cls.Servers {
			rc.Servers[i] = int64(srv)
		}
		m.Classes = append(m.Classes, rc)
	}
	return wire.AppendReplSnapshot(dst, op, 0, &m), snap
}

// sharedPrevClass returns the previous generation's class whose Servers slice
// is pointer-shared with cls — spliceMembership's reuse, which guarantees the
// tenant and server membership is identical — or nil.
func sharedPrevClass(prev *core.Clustering, cls *core.UtilizationClass) *core.UtilizationClass {
	if len(cls.Servers) == 0 || len(cls.Tenants) == 0 {
		return nil
	}
	pid, ok := prev.ClassOfTenant(cls.Tenants[0])
	if !ok {
		return nil
	}
	pc := prev.Class(pid)
	if pc == nil || len(pc.Servers) != len(cls.Servers) || &pc.Servers[0] != &cls.Servers[0] {
		return nil
	}
	return pc
}

// followLoop is the follower's outer loop: dial the primary, run the stream,
// reconnect with backoff until promoted or closed.
func (s *Service) followLoop() {
	defer s.wg.Done()
	backoff := 200 * time.Millisecond
	for {
		select {
		case <-s.stop:
			return
		case <-s.repl.stopFollow:
			return
		default:
		}
		addr := s.followAddr()
		nc, err := net.DialTimeout("tcp", addr, replHandshakeTimeout)
		if err == nil {
			s.repl.conn.Store(&nc)
			s.repl.connected.Store(true)
			err = s.runFollower(nc, addr)
			s.repl.connected.Store(false)
			nc.Close()
		}
		if err != nil && !s.stopping() {
			slogger.Warn("replication stream lost; reconnecting", "primary", addr, "err", err)
		}
		if s.followAddr() != addr {
			// Retargeted mid-backoff: dial the new primary without waiting.
			backoff = 200 * time.Millisecond
		}
		s.repl.reconnects.Add(1)
		select {
		case <-s.stop:
			return
		case <-s.repl.stopFollow:
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}

func (s *Service) stopping() bool {
	select {
	case <-s.stop:
		return true
	case <-s.repl.stopFollow:
		return true
	default:
		return false
	}
}

// runFollower performs the handshake and applies frames until the stream
// breaks, the liveness deadline passes, or the node is promoted.
func (s *Service) runFollower(nc net.Conn, addr string) error {
	hello := wire.ReplHello{FollowerID: s.cfg.NodeID, DCs: make([]wire.ReplDCGen, 0, len(s.order))}
	for _, dc := range s.order {
		// Announce only generations actually applied from a primary (zero on
		// first join): the boot snapshot is self-built and claiming its
		// generation number could suppress the full resend that replaces it.
		hello.DCs = append(hello.DCs, wire.ReplDCGen{DC: dc, Generation: s.shards[dc].replGen.Load()})
	}
	nc.SetWriteDeadline(time.Now().Add(replHandshakeTimeout))
	if _, err := nc.Write(wire.AppendReplHello(nil, 1, &hello)); err != nil {
		return err
	}

	var scratch []byte
	br := bufio.NewReaderSize(nc, 64<<10)
	nc.SetReadDeadline(time.Now().Add(replHandshakeTimeout))
	h, payload, err := wire.ReadFrame(br, &scratch)
	if err != nil {
		return err
	}
	if h.Op != wire.OpReplHelloResp {
		return fmt.Errorf("service: replication handshake got %v, want %v", h.Op, wire.OpReplHelloResp)
	}
	var resp wire.ReplHelloResp
	if err := resp.Decode(payload); err != nil {
		return err
	}
	pid := resp.PrimaryID
	s.repl.primaryID.Store(&pid)
	slogger.Info("following primary", "primary", pid, "addr", addr)

	for {
		nc.SetReadDeadline(time.Now().Add(s.readLiveness()))
		h, payload, err := wire.ReadFrame(br, &scratch)
		if err != nil {
			return err
		}
		if err := s.applyReplFrame(h.Op, payload); err != nil {
			return err
		}
	}
}

// applyReplFrame decodes and applies one pushed frame, observing the
// end-to-end ship+apply lag against the sender's timestamp (the intended
// deployment shape is scale-out on one machine, so the clocks agree).
func (s *Service) applyReplFrame(op wire.Op, payload []byte) error {
	var sent int64
	switch op {
	case wire.OpReplSnap, wire.OpReplDelta:
		var m wire.ReplSnapshot
		if err := m.Decode(payload); err != nil {
			return err
		}
		sent = m.SentUnixNano
		if err := s.applyReplSnapshot(op == wire.OpReplDelta, &m); err != nil {
			return err
		}
		if op == wire.OpReplSnap {
			s.repl.snapsApplied.Add(1)
		} else {
			s.repl.deltasApplied.Add(1)
		}
	case wire.OpReplBeat:
		var m wire.ReplBeat
		if err := m.Decode(payload); err != nil {
			return err
		}
		sent = m.SentUnixNano
		if err := s.applyReplBeat(&m); err != nil {
			return err
		}
		s.repl.beatsApplied.Add(1)
	default:
		return fmt.Errorf("service: unexpected replication opcode %v", op)
	}
	if sent > 0 {
		if lag := time.Since(time.Unix(0, sent)); lag > 0 {
			s.repl.applyLag.Observe(lag)
		}
	}
	return nil
}

// applyReplSnapshot rebuilds a shard's snapshot from a full or delta frame —
// the same reassembly path persistence restore uses — and applies the shipped
// ledger state in place. Ref classes resolve against the follower's current
// snapshot, which a delta's PrevGeneration must match exactly.
func (s *Service) applyReplSnapshot(delta bool, m *wire.ReplSnapshot) error {
	sh, ok := s.shards[m.DC]
	if !ok {
		return fmt.Errorf("service: replicated snapshot for unknown datacenter %q", m.DC)
	}
	s.repl.applyMu.Lock()
	defer s.repl.applyMu.Unlock()
	if !s.follower.Load() {
		return ErrFollower // promoted mid-frame: drop the stream
	}
	prev := sh.snap.Load()
	if delta && prev.Generation != m.PrevGeneration {
		return fmt.Errorf("service: %s: delta against generation %d, have %d", m.DC, m.PrevGeneration, prev.Generation)
	}
	if len(m.Classes) == 0 {
		return fmt.Errorf("service: %s: replicated snapshot has no classes", m.DC)
	}

	classes := make([]*core.UtilizationClass, 0, len(m.Classes))
	usage := make(map[core.ClassID]core.ClassUsage, len(m.Classes))
	for i := range m.Classes {
		rc := &m.Classes[i]
		if int(rc.Pattern) >= signalproc.NumPatterns {
			return fmt.Errorf("service: %s: class %d: bad pattern %d", m.DC, rc.ID, rc.Pattern)
		}
		cls := &core.UtilizationClass{
			ID:              core.ClassID(rc.ID),
			Pattern:         signalproc.Pattern(rc.Pattern),
			AvgUtilization:  rc.Avg,
			PeakUtilization: rc.Peak,
			Centroid:        rc.Centroid,
		}
		if rc.Ref {
			if !delta {
				return fmt.Errorf("service: %s: ref class %d in a full snapshot", m.DC, rc.ID)
			}
			pc := prev.Clustering.Class(core.ClassID(rc.PrevID))
			if pc == nil {
				return fmt.Errorf("service: %s: ref class %d names unknown previous class %d", m.DC, rc.ID, rc.PrevID)
			}
			cls.Tenants, cls.Servers = pc.Tenants, pc.Servers
		} else {
			cls.Tenants = make([]tenant.ID, len(rc.Tenants))
			for j, tid := range rc.Tenants {
				id := tenant.ID(tid)
				if sh.pop.ByID(id) == nil {
					return fmt.Errorf("service: %s: class %d names unknown tenant %d (population mismatch — same -dcs/-scale/-seed as the primary?)", m.DC, rc.ID, tid)
				}
				cls.Tenants[j] = id
			}
			cls.Servers = make([]tenant.ServerID, len(rc.Servers))
			for j, srv := range rc.Servers {
				cls.Servers[j] = tenant.ServerID(srv)
			}
		}
		classes = append(classes, cls)
		usage[cls.ID] = core.ClassUsage{CurrentUtilization: rc.Current}
	}
	clustering, err := core.NewClusteringFromClasses(classes)
	if err != nil {
		return fmt.Errorf("service: %s: replicated clustering: %w", m.DC, err)
	}
	start := time.Now()
	var schemePrev *Snapshot
	if delta {
		schemePrev = prev
	}
	snap, err := assembleSnapshot(sh.dc, sh.pop, sh.rings, s.cfg, m.Generation, clustering, start, schemePrev)
	if err != nil {
		return fmt.Errorf("service: %s: assembling replicated snapshot: %w", m.DC, err)
	}
	snap.Usage = usage
	snap.AsOf = time.Duration(m.AsOfSeconds * float64(time.Second))
	snap.BuiltAt = time.Unix(0, m.BuiltAtUnixNano)
	sh.rings.AdvanceClock(snap.AsOf)

	sh.led.ApplyState(ledgerStateOf(&m.Ledger), len(classes))
	sh.blocks.ApplyState(blocksStateOf(&m.Blocks))
	sh.snap.Store(snap)
	s.buildUsageView(sh, snap, usage, sh.rings.TotalSamples())
	sh.replGen.Store(m.Generation)
	sh.replAppliedAt.Store(time.Now().UnixNano())
	return nil
}

// applyReplBeat refreshes a shard's usage view and ledger books without
// touching the clustering: same generation, new numbers.
func (s *Service) applyReplBeat(m *wire.ReplBeat) error {
	sh, ok := s.shards[m.DC]
	if !ok {
		return fmt.Errorf("service: replicated beat for unknown datacenter %q", m.DC)
	}
	s.repl.applyMu.Lock()
	defer s.repl.applyMu.Unlock()
	if !s.follower.Load() {
		return ErrFollower
	}
	snap := sh.snap.Load()
	if snap.Generation != m.Generation {
		return fmt.Errorf("service: %s: beat for generation %d, have %d", m.DC, m.Generation, snap.Generation)
	}
	usage := make(map[core.ClassID]core.ClassUsage, len(snap.Clustering.Classes))
	for _, u := range m.Usage {
		usage[core.ClassID(u.ID)] = core.ClassUsage{CurrentUtilization: u.Current}
	}
	for _, cls := range snap.Clustering.Classes {
		if _, ok := usage[cls.ID]; !ok {
			usage[cls.ID] = snap.Usage[cls.ID]
		}
	}
	sh.rings.AdvanceClock(time.Duration(m.AsOfSeconds * float64(time.Second)))
	sh.led.ApplyState(ledgerStateOf(&m.Ledger), len(snap.Clustering.Classes))
	sh.blocks.ApplyState(blocksStateOf(&m.Blocks))
	s.buildUsageView(sh, snap, usage, sh.rings.TotalSamples())
	sh.replAppliedAt.Store(time.Now().UnixNano())
	return nil
}

// replLedgerOf converts an exported ledger state to its wire form.
func replLedgerOf(st ledger.State) wire.ReplLedger {
	rl := wire.ReplLedger{
		Generation:      st.Generation,
		ReservedMillis:  st.ReservedMillis,
		ReleasedMillis:  st.ReleasedMillis,
		ExpiredMillis:   st.ExpiredMillis,
		ForfeitedMillis: st.ForfeitedMillis,
		Reserves:        st.Reserves,
		Releases:        st.Releases,
		Renews:          st.Renews,
		Expiries:        st.Expiries,
		Conflicts:       st.Conflicts,
		Leases:          make([]wire.ReplLease, 0, len(st.Leases)),
	}
	for _, ls := range st.Leases {
		wl := wire.ReplLease{ID: ls.ID, JobID: ls.JobID, Owner: ls.Owner, Grants: make([]wire.ReplGrant, len(ls.Grants))}
		if !ls.ExpiresAt.IsZero() {
			wl.ExpiresUnixNano = ls.ExpiresAt.UnixNano()
		}
		for i, g := range ls.Grants {
			wl.Grants[i] = wire.ReplGrant{Class: uint32(g.Class), Millis: g.Millis}
		}
		rl.Leases = append(rl.Leases, wl)
	}
	return rl
}

// ledgerStateOf converts a wire ledger back to the state ApplyState consumes.
func ledgerStateOf(m *wire.ReplLedger) ledger.State {
	st := ledger.State{
		Generation:      m.Generation,
		ReservedMillis:  m.ReservedMillis,
		ReleasedMillis:  m.ReleasedMillis,
		ExpiredMillis:   m.ExpiredMillis,
		ForfeitedMillis: m.ForfeitedMillis,
		Reserves:        m.Reserves,
		Releases:        m.Releases,
		Renews:          m.Renews,
		Expiries:        m.Expiries,
		Conflicts:       m.Conflicts,
		Leases:          make([]ledger.PersistedLease, 0, len(m.Leases)),
	}
	for _, wl := range m.Leases {
		pl := ledger.PersistedLease{ID: wl.ID, JobID: wl.JobID, Owner: wl.Owner, Grants: make([]ledger.Grant, len(wl.Grants))}
		if wl.ExpiresUnixNano != 0 {
			pl.ExpiresAt = time.Unix(0, wl.ExpiresUnixNano)
		}
		for i, g := range wl.Grants {
			pl.Grants[i] = ledger.Grant{Class: core.ClassID(g.Class), Millis: g.Millis}
		}
		st.Leases = append(st.Leases, pl)
	}
	return st
}

// replBlocksOf converts an exported block-ledger state to its wire form.
func replBlocksOf(st blockledger.State) wire.ReplBlocks {
	rb := wire.ReplBlocks{
		Generation: st.Generation,
		Lost:       st.Lost,
		Replaced:   st.Replaced,
		Creates:    st.Creates,
		Reimages:   st.Reimages,
		Blocks:     make([]wire.ReplBlock, 0, len(st.Blocks)),
	}
	for _, pb := range st.Blocks {
		wb := wire.ReplBlock{ID: pb.ID, EnvStrict: pb.EnvStrict, Replicas: make([]wire.ReplBlockReplica, len(pb.Replicas))}
		for i, r := range pb.Replicas {
			wb.Replicas[i] = wire.ReplBlockReplica{Server: int64(r.Server), Placed: r.Placed}
		}
		rb.Blocks = append(rb.Blocks, wb)
	}
	return rb
}

// blocksStateOf converts a wire block section back to the state ApplyState
// consumes.
func blocksStateOf(m *wire.ReplBlocks) blockledger.State {
	st := blockledger.State{
		Generation: m.Generation,
		Lost:       m.Lost,
		Replaced:   m.Replaced,
		Creates:    m.Creates,
		Reimages:   m.Reimages,
		Blocks:     make([]blockledger.PersistedBlock, 0, len(m.Blocks)),
	}
	for _, wb := range m.Blocks {
		pb := blockledger.PersistedBlock{ID: wb.ID, EnvStrict: wb.EnvStrict, Replicas: make([]blockledger.PersistedReplica, len(wb.Replicas))}
		for i, r := range wb.Replicas {
			pb.Replicas[i] = blockledger.PersistedReplica{Server: tenant.ServerID(r.Server), Placed: r.Placed}
		}
		st.Blocks = append(st.Blocks, pb)
	}
	return st
}

// ReplicationStats summarizes the node's replication role for /metrics.
type ReplicationStats struct {
	Role      string
	NodeID    string
	PrimaryID string
	// Follower side: stream liveness, applied-frame counters, and the
	// end-to-end ship+apply lag distribution (the gate: p99 under one
	// refresh interval means reads are never more than a beat stale).
	Connected        bool
	Reconnects       uint64
	Promotions       uint64
	SnapshotsApplied uint64
	DeltasApplied    uint64
	BeatsApplied     uint64
	ApplyLagMeanUs   float64
	ApplyLagP99Us    uint64
	ApplyLagMaxUs    uint64
	// AppliedGenerations is each shard's last replicated generation (follower
	// role; nil on a never-followed primary).
	AppliedGenerations map[string]uint64
	// LastApplyAge is the time since any frame applied (zero before the first).
	LastApplyAge time.Duration
	// Primary side: connected followers and cumulative ship counters.
	Followers     int
	FramesShipped uint64
	ShipErrors    uint64
}

// ReplicationStats reports the node's replication state.
func (s *Service) ReplicationStats() ReplicationStats {
	st := ReplicationStats{
		Role:             s.Role(),
		NodeID:           s.cfg.NodeID,
		PrimaryID:        s.PrimaryID(),
		Connected:        s.repl.connected.Load(),
		Reconnects:       s.repl.reconnects.Load(),
		Promotions:       s.repl.promotions.Load(),
		SnapshotsApplied: s.repl.snapsApplied.Load(),
		DeltasApplied:    s.repl.deltasApplied.Load(),
		BeatsApplied:     s.repl.beatsApplied.Load(),
		ApplyLagMeanUs:   s.repl.applyLag.MeanMicros(),
		ApplyLagP99Us:    s.repl.applyLag.QuantileMicros(0.99),
		ApplyLagMaxUs:    s.repl.applyLag.MaxMicros(),
		Followers:        int(s.repl.followers.Load()),
		FramesShipped:    s.repl.framesShipped.Load(),
		ShipErrors:       s.repl.shipErrors.Load(),
	}
	var latest int64
	for _, dc := range s.order {
		sh := s.shards[dc]
		if gen := sh.replGen.Load(); gen > 0 {
			if st.AppliedGenerations == nil {
				st.AppliedGenerations = make(map[string]uint64, len(s.order))
			}
			st.AppliedGenerations[dc] = gen
		}
		if at := sh.replAppliedAt.Load(); at > latest {
			latest = at
		}
	}
	if latest > 0 {
		st.LastApplyAge = time.Since(time.Unix(0, latest))
	}
	return st
}

// ReplicationLagHistogram exposes the follower's ship+apply lag histogram for
// Prometheus exposition.
func (s *Service) ReplicationLagHistogram() *Histogram { return &s.repl.applyLag }
