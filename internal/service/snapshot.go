// Package service is the serving layer of the reproduction: the paper's
// cluster characterization service (§4.1, §6.2) as a long-running component
// rather than a batch harness. It periodically re-derives each datacenter's
// utilization classes and placement scheme from the latest telemetry and
// exposes them — plus the two online algorithms, class selection (Alg. 1) and
// replica placement (Alg. 2) — to schedulers and file systems over an HTTP
// JSON API (http.go).
//
// Concurrency model: each datacenter is a shard holding an immutable
// *Snapshot behind an atomic.Pointer. Readers load the pointer and work on a
// self-contained, never-mutated object; a per-shard refresher goroutine
// builds the next snapshot off to the side and publishes it with a single
// atomic swap, so queries never block on a rebuild and never see a
// half-updated clustering. The mutable scratch state the core algorithms
// need (placement scratch buffers, RNGs) comes from sync.Pools, keeping the
// steady-state query path allocation-light in the spirit of PR 1.
package service

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"harvest/internal/core"
	"harvest/internal/experiments"
	"harvest/internal/tenant"
)

// Snapshot is one datacenter's immutable characterization state: the
// clustering, the per-class usage view, and the placement scheme, all derived
// from the same telemetry instant. Every exported field is read-only after
// build; sharing a snapshot between any number of goroutines is safe.
type Snapshot struct {
	// Datacenter is the profile name, e.g. "DC-9".
	Datacenter string
	// Generation counts rebuilds, starting at 1 for the boot snapshot. A
	// daemon restored from a persisted snapshot resumes at the persisted
	// generation.
	Generation uint64
	// AsOf is the position on the telemetry clock the snapshot was built at:
	// the history source's horizon (the offset of the freshest sample in the
	// ingestion rings) at build time. It advances when ingested telemetry
	// does, not per refresh.
	AsOf time.Duration
	// BuiltAt and BuildDuration record when and how expensively the snapshot
	// was produced (exported on /metrics as snapshot age).
	BuiltAt       time.Time
	BuildDuration time.Duration

	// Clustering is the utilization-class structure (§4.1).
	Clustering *core.Clustering
	// Usage holds each class's current utilization at AsOf. Treated as
	// read-only by every query. Between refreshes the service overlays this
	// with a live view recomputed from recent ring samples (Service.UsageFor);
	// this field is the view frozen at build time.
	Usage map[core.ClassID]core.ClassUsage
	// Thresholds are the job-length cut-offs select requests are classified
	// with when they carry a last-run duration instead of an explicit type.
	Thresholds core.LengthThresholds

	selector *core.Selector
	scheme   *core.PlacementScheme

	// placers pools PlacementScheme clones: Alg. 2 needs mutable scratch
	// buffers, so concurrent place queries each borrow a clone sharing this
	// snapshot's immutable indexes. The pool dies with the snapshot.
	placers sync.Pool
}

// buildSnapshot derives a snapshot from a population and a history source,
// clustering from scratch. The refresher's warm path builds the clustering
// with core.Recluster instead and assembles with assembleSnapshot directly.
func buildSnapshot(dc string, pop *tenant.Population, src tenant.HistorySource, cfg Config, generation uint64) (*Snapshot, error) {
	start := time.Now()
	clusterer := core.NewClusteringService(cfg.Clustering)
	clustering, err := clusterer.ClusterFrom(pop, src)
	if err != nil {
		return nil, fmt.Errorf("service: %s: %w", dc, err)
	}
	return assembleSnapshot(dc, pop, src, cfg, generation, clustering, start, nil)
}

// assembleSnapshot wraps a ready clustering in a queryable snapshot: the
// selector, the placement scheme, and the usage view at the source's
// horizon. The caller (one refresher goroutine per shard, serialized by the
// shard mutex) is the only writer of pop; the returned snapshot copies or
// shares only state that is never written afterwards.
//
// When prev is non-nil its placement scheme is shared instead of rebuilt:
// the scheme is a pure function of the population (replica cells are formed
// from tenant reimaging and peak behaviour, not from the clustering), the
// population is fixed for the life of the shard, and published schemes are
// immutable — queries run on pooled clones. This removes the one remaining
// O(servers) stage from the warm refresh path.
func assembleSnapshot(dc string, pop *tenant.Population, src tenant.HistorySource, cfg Config,
	generation uint64, clustering *core.Clustering, start time.Time, prev *Snapshot) (*Snapshot, error) {
	selector, err := core.NewSelector(cfg.Selector, clustering, nil)
	if err != nil {
		return nil, fmt.Errorf("service: %s: %w", dc, err)
	}
	var scheme *core.PlacementScheme
	if prev != nil && prev.scheme != nil {
		scheme = prev.scheme
	} else {
		scheme, err = core.BuildPlacementScheme(experiments.PlacementInfos(pop))
		if err != nil {
			return nil, fmt.Errorf("service: %s: %w", dc, err)
		}
	}

	// The usage view: each class's server-weighted utilization at the
	// source's horizon, the quantity NM heartbeats would report live (§4.1).
	asOf := src.Horizon()
	usage := weightedClassUsage(clustering.Classes, pop, func(_ *core.UtilizationClass, tid tenant.ID) float64 {
		return src.UtilizationAt(tid, asOf)
	})

	snap := &Snapshot{
		Datacenter:    dc,
		Generation:    generation,
		AsOf:          asOf,
		BuiltAt:       start,
		BuildDuration: time.Since(start),
		Clustering:    clustering,
		Usage:         usage,
		Thresholds:    cfg.Selector.Thresholds,
		selector:      selector,
		scheme:        scheme,
	}
	snap.placers.New = func() any { return scheme.CloneForConcurrentUse() }
	return snap, nil
}

// weightedClassUsage computes the per-class usage view: each class's
// server-count-weighted average of a per-tenant utilization reading. Both
// the build-time view (history source at the horizon) and the live view
// (latest ring samples, Service.UsageFor) are this aggregation with a
// different value lookup.
func weightedClassUsage(classes []*core.UtilizationClass, pop *tenant.Population,
	value func(cls *core.UtilizationClass, tid tenant.ID) float64) map[core.ClassID]core.ClassUsage {
	usage := make(map[core.ClassID]core.ClassUsage, len(classes))
	for _, cls := range classes {
		var sum, weight float64
		for _, tid := range cls.Tenants {
			t := pop.ByID(tid)
			if t == nil {
				continue
			}
			w := float64(t.NumServers())
			sum += value(cls, tid) * w
			weight += w
		}
		if weight > 0 {
			sum /= weight
		}
		usage[cls.ID] = core.ClassUsage{CurrentUtilization: sum}
	}
	return usage
}

// Select runs class selection (Alg. 1) against the snapshot's build-time
// usage view. Safe for any number of concurrent callers; each must bring its
// own RNG. The service's query path uses SelectUsage with the live view.
func (s *Snapshot) Select(rng *rand.Rand, job core.JobRequest) core.Selection {
	return s.selector.SelectWith(rng, job, s.Usage)
}

// SelectUsage runs class selection against a caller-supplied usage view —
// the hook the service uses to select on utilization recomputed from recent
// ring samples between refreshes.
func (s *Snapshot) SelectUsage(rng *rand.Rand, job core.JobRequest, usage map[core.ClassID]core.ClassUsage) core.Selection {
	return s.selector.SelectWith(rng, job, usage)
}

// SelectSource runs class selection against a live usage source — the
// service's ledger overlay, so headrooms subtract the cores concurrent
// selects have already reserved.
func (s *Snapshot) SelectSource(rng *rand.Rand, job core.JobRequest, usage core.UsageSource) core.Selection {
	return s.selector.SelectFrom(rng, job, usage)
}

// BuildSelectIndex precomputes the headroom index for a utilization view —
// one build per (snapshot generation, ingest progress) pair, shared by every
// query until the view moves.
func (s *Snapshot) BuildSelectIndex(usage map[core.ClassID]core.ClassUsage) *core.SelectIndex {
	return s.selector.BuildIndex(usage)
}

// SelectIndexed runs class selection through a precomputed index, with live
// per-class allocation from alloc. Picks are draw-for-draw identical to
// SelectSource over the view the index was built from.
func (s *Snapshot) SelectIndexed(rng *rand.Rand, job core.JobRequest, idx *core.SelectIndex, alloc core.AllocSource) core.Selection {
	return s.selector.SelectIndexed(rng, job, idx, alloc)
}

// CapacityCores returns a class's gross spare-core bound for a job type at
// the given usage — the admission ceiling the allocation ledger enforces
// (headroom before subtracting allocations). Zero for unknown classes.
func (s *Snapshot) CapacityCores(jobType core.JobType, id core.ClassID, usage core.ClassUsage) float64 {
	cls := s.Clustering.Class(id)
	if cls == nil {
		return 0
	}
	return s.selector.Capacity(jobType, cls, usage)
}

// Headroom reports a class's available cores for a job type at the
// snapshot's usage view.
func (s *Snapshot) Headroom(jobType core.JobType, cls *core.UtilizationClass) float64 {
	return s.selector.Headroom(jobType, cls, s.Usage[cls.ID])
}

// Place runs replica placement (Alg. 2) on a pooled clone of the snapshot's
// placement scheme. Safe for any number of concurrent callers.
func (s *Snapshot) Place(rng *rand.Rand, c core.PlacementConstraints) ([]tenant.ServerID, error) {
	placer := s.placers.Get().(*core.PlacementScheme)
	replicas, err := placer.PlaceReplicas(rng, c)
	s.placers.Put(placer)
	return replicas, err
}

// PlaceAdditional runs the re-replication variant of Alg. 2 on a pooled
// clone: count more replicas for a block that already holds existing ones,
// with the survivors' diversity constraints carried over. Safe for any number
// of concurrent callers.
func (s *Snapshot) PlaceAdditional(rng *rand.Rand, existing []tenant.ServerID, count int, c core.PlacementConstraints) ([]tenant.ServerID, error) {
	placer := s.placers.Get().(*core.PlacementScheme)
	replicas, err := placer.PlaceAdditional(rng, existing, count, c)
	s.placers.Put(placer)
	return replicas, err
}

// ClassOfServer resolves a server to its utilization class.
func (s *Snapshot) ClassOfServer(id tenant.ServerID) (*core.UtilizationClass, bool) {
	cid, ok := s.Clustering.ClassOfServer(id)
	if !ok {
		return nil, false
	}
	return s.Clustering.Class(cid), true
}

// Scheme exposes the snapshot's placement scheme for read-only inspection
// (cell populations, space imbalance). Callers must not run PlaceReplicas on
// it directly — that is what Place is for.
func (s *Snapshot) Scheme() *core.PlacementScheme { return s.scheme }

// Age returns how long ago the snapshot was built.
func (s *Snapshot) Age() time.Duration { return time.Since(s.BuiltAt) }
