package service_test

// Tests for the observability plane as seen from the service tier: the
// token-gated lease listing, the Prometheus exposition of /metrics, and the
// trace lifecycle from X-Harvest-Trace ingress to the /debug/traces viewer.

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"harvest/internal/obs"
	"harvest/internal/service"
)

// reserveLease posts one reserving select and returns the lease id.
func reserveLease(t *testing.T, base, dc, body string) uint64 {
	t.Helper()
	resp, data := postJSON(t, base+"/v1/"+dc+"/select", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("select: status %d (%s)", resp.StatusCode, data)
	}
	var sel struct {
		Satisfiable bool   `json:"satisfiable"`
		Lease       uint64 `json:"lease"`
	}
	decode(t, data, &sel)
	if !sel.Satisfiable || sel.Lease == 0 {
		t.Fatalf("select did not reserve: %s", data)
	}
	return sel.Lease
}

func authedGet(t *testing.T, url, token string) (*http.Response, []byte) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, url, nil)
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp, body
}

func TestLeasesEndpoint(t *testing.T) {
	svc := newTestService(t)
	defer svc.Close()
	srv := httptest.NewServer(service.NewAPIWith(svc, service.APIOptions{IngestToken: "s3kr1t"}))
	defer srv.Close()

	// Three live leases with distinct metadata; hold_seconds keeps them from
	// expiring mid-test.
	ids := make([]uint64, 3)
	for i := range ids {
		ids[i] = reserveLease(t, srv.URL, "DC-9",
			`{"job_type":"short","max_concurrent_cores":2,"hold_seconds":120,`+
				`"job_id":"job-`+strconv.Itoa(i)+`","owner":"owner-`+strconv.Itoa(i)+`"}`)
	}

	// The listing shares the ingest bearer token.
	if resp, _ := authedGet(t, srv.URL+"/v1/DC-9/leases", ""); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated leases: status %d, want 401", resp.StatusCode)
	}

	resp, body := authedGet(t, srv.URL+"/v1/DC-9/leases", "s3kr1t")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("leases: status %d (%s)", resp.StatusCode, body)
	}
	var page struct {
		Datacenter string `json:"datacenter"`
		Total      int    `json:"total"`
		Offset     int    `json:"offset"`
		Leases     []struct {
			Lease            uint64    `json:"lease"`
			JobID            string    `json:"job_id"`
			Owner            string    `json:"owner"`
			ExpiresInSeconds float64   `json:"expires_in_seconds"`
			TotalCores       float64   `json:"total_cores"`
			Cores            []float64 `json:"cores"`
		} `json:"leases"`
	}
	decode(t, body, &page)
	if page.Total != 3 || len(page.Leases) != 3 || page.Datacenter != "DC-9" {
		t.Fatalf("leases page = %+v", page)
	}
	byID := map[uint64]string{}
	for _, l := range page.Leases {
		byID[l.Lease] = l.JobID
		if l.TotalCores <= 0 || l.ExpiresInSeconds <= 0 {
			t.Fatalf("lease %d missing cores/expiry: %+v", l.Lease, l)
		}
	}
	for i, id := range ids {
		if byID[id] != "job-"+strconv.Itoa(i) {
			t.Fatalf("lease %d job_id = %q, want job-%d (page %s)", id, byID[id], i, body)
		}
	}

	// Pagination: pages are disjoint and cover the total.
	resp, body = authedGet(t, srv.URL+"/v1/DC-9/leases?limit=2", "s3kr1t")
	decode(t, body, &page)
	if resp.StatusCode != http.StatusOK || page.Total != 3 || len(page.Leases) != 2 {
		t.Fatalf("limit=2 page: status %d %+v", resp.StatusCode, page)
	}
	first := page.Leases[0].Lease
	resp, body = authedGet(t, srv.URL+"/v1/DC-9/leases?limit=2&offset=2", "s3kr1t")
	decode(t, body, &page)
	if resp.StatusCode != http.StatusOK || page.Offset != 2 || len(page.Leases) != 1 {
		t.Fatalf("offset=2 page: status %d %+v", resp.StatusCode, page)
	}
	if page.Leases[0].Lease == first {
		t.Fatalf("offset page repeated lease %d", first)
	}

	// Parameter validation and routing errors.
	for _, q := range []string{"?offset=-1", "?limit=0", "?limit=1001", "?offset=x"} {
		if resp, _ := authedGet(t, srv.URL+"/v1/DC-9/leases"+q, "s3kr1t"); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("leases%s: status %d, want 400", q, resp.StatusCode)
		}
	}
	if resp, _ := authedGet(t, srv.URL+"/v1/DC-0/leases", "s3kr1t"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown DC leases: status %d, want 404", resp.StatusCode)
	}
}

func TestSelectLeaseMetaValidation(t *testing.T) {
	svc := newTestService(t)
	defer svc.Close()
	srv := httptest.NewServer(service.NewAPI(svc))
	defer srv.Close()

	long := strings.Repeat("x", 129)
	for _, body := range []string{
		`{"job_type":"short","max_concurrent_cores":2,"job_id":"` + long + `"}`,
		`{"job_type":"short","max_concurrent_cores":2,"owner":"` + long + `"}`,
	} {
		if resp, data := postJSON(t, srv.URL+"/v1/DC-9/select", body); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("oversized meta: status %d (%s)", resp.StatusCode, data)
		}
	}
}

func TestPrometheusExposition(t *testing.T) {
	svc := newTestService(t)
	defer svc.Close()
	srv := httptest.NewServer(service.NewAPI(svc))
	defer srv.Close()

	// Generate some traffic so the counters are nonzero.
	reserveLease(t, srv.URL, "DC-9", `{"job_type":"short","max_concurrent_cores":2,"hold_seconds":60}`)
	get(t, srv.URL+"/v1/DC-9/classes")

	// The default shape stays JSON — scrapers must opt in.
	resp, body := get(t, srv.URL+"/metrics")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/metrics Content-Type = %q, want JSON", ct)
	}
	var js map[string]any
	decode(t, body, &js)

	resp, body = get(t, srv.URL+"/metrics?format=prometheus")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prometheus metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("prometheus Content-Type = %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE harvestd_requests_total counter",
		`harvestd_requests_total{endpoint="select",dialect="json"}`,
		"# TYPE harvestd_request_latency_microseconds histogram",
		`harvestd_request_latency_microseconds_bucket{endpoint="select",dialect="json",le="+Inf"}`,
		`harvestd_ledger_active_leases{dc="DC-9"} 1`,
		`harvestd_snapshot_generation{dc="DC-9"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus exposition missing %q:\n%s", want, text[:min(2000, len(text))])
		}
	}
	// Every series line must parse as `name{labels} value` with a numeric
	// value, and every HELP has a TYPE.
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed series line %q", line)
		}
		if v := line[i+1:]; v != "+Inf" {
			if _, err := strconv.ParseFloat(v, 64); err != nil {
				t.Fatalf("non-numeric value in %q", line)
			}
		}
	}
}

func TestTraceLifecycleJSON(t *testing.T) {
	svc := newTestService(t)
	defer svc.Close()
	api := service.NewAPI(svc)
	srv := httptest.NewServer(api)
	defer srv.Close()

	// A client-supplied trace id is adopted and echoed.
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/DC-9/select",
		strings.NewReader(`{"job_type":"short","max_concurrent_cores":2,"hold_seconds":60,"job_id":"etl","owner":"alice"}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, "00000000000000aa")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("select: %v", err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(obs.TraceHeader); got != "00000000000000aa" {
		t.Fatalf("trace echo = %q, want the id sent", got)
	}

	traces := api.Recorder().Query(obs.TraceFilter{ID: 0xaa})
	if len(traces) != 1 {
		t.Fatalf("recorder has %d traces for the id, want 1", len(traces))
	}
	tr := traces[0]
	if tr.Op != "select" || tr.DC != "DC-9" || tr.Status != http.StatusOK {
		t.Fatalf("trace = %+v", tr)
	}
	if tr.JobID != "etl" || tr.Owner != "alice" {
		t.Fatalf("trace meta = %q/%q, want etl/alice", tr.JobID, tr.Owner)
	}
	spanNames := map[string]bool{}
	for _, s := range tr.Spans() {
		spanNames[s.Name] = true
	}
	if !spanNames["snapshot_read"] || !spanNames["ledger_reserve"] {
		t.Fatalf("reserving select spans = %v, want snapshot_read and ledger_reserve", spanNames)
	}

	// A request without the header gets a fresh id echoed back.
	resp2, _ := get(t, srv.URL+"/v1/DC-9/classes")
	if _, ok := obs.ParseTraceID(resp2.Header.Get(obs.TraceHeader)); !ok {
		t.Fatalf("ingress-assigned trace id %q unparsable", resp2.Header.Get(obs.TraceHeader))
	}

	// Health and metrics polls must not churn the ring.
	before := len(api.Recorder().Query(obs.TraceFilter{Limit: 10000}))
	get(t, srv.URL+"/healthz")
	get(t, srv.URL+"/metrics")
	if after := len(api.Recorder().Query(obs.TraceFilter{Limit: 10000})); after != before {
		t.Fatalf("healthz/metrics polls recorded traces: %d -> %d", before, after)
	}

	// The debug viewer resolves the trace by hex id.
	dbg := httptest.NewServer(obs.DebugMux("harvestd", api.Recorder()))
	defer dbg.Close()
	resp3, body := get(t, dbg.URL+"/debug/traces?trace=00000000000000aa")
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces: status %d", resp3.StatusCode)
	}
	var view struct {
		Traces []struct {
			ID    string `json:"id"`
			DC    string `json:"dc"`
			JobID string `json:"job_id"`
			Spans []struct {
				Name string `json:"name"`
			} `json:"spans"`
		} `json:"traces"`
	}
	decode(t, body, &view)
	if len(view.Traces) != 1 || view.Traces[0].ID != "00000000000000aa" ||
		view.Traces[0].DC != "DC-9" || view.Traces[0].JobID != "etl" {
		t.Fatalf("/debug/traces view = %s", body)
	}
	if len(view.Traces[0].Spans) < 2 {
		t.Fatalf("/debug/traces spans = %s", body)
	}
}
