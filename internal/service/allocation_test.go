package service_test

import (
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"harvest/internal/core"
	"harvest/internal/ledger"
	"harvest/internal/service"
)

// checkBooks asserts the exact conservation invariant over a shard's ledger:
// reserved == released + expired + forfeited + outstanding, in millicores.
func checkBooks(t *testing.T, svc *service.Service, dc string) ledger.Stats {
	t.Helper()
	st, ok := svc.LedgerStats(dc)
	if !ok {
		t.Fatalf("no ledger stats for %s", dc)
	}
	if st.ReservedMillis != st.ReleasedMillis+st.ExpiredMillis+st.ForfeitedMillis+st.OutstandingMillis {
		t.Fatalf("books out of balance: reserved %d != released %d + expired %d + forfeited %d + outstanding %d",
			st.ReservedMillis, st.ReleasedMillis, st.ExpiredMillis, st.ForfeitedMillis, st.OutstandingMillis)
	}
	return st
}

func TestSelectReserveAndRelease(t *testing.T) {
	svc := newTestService(t)

	job := core.JobRequest{Type: core.JobMedium, MaxConcurrentCores: 8}
	grant, snap, err := svc.SelectReserve("DC-9", job, -1) // no expiry
	if err != nil {
		t.Fatalf("SelectReserve: %v", err)
	}
	if !grant.Reserved() || grant.Selection.Empty() {
		t.Fatalf("grant = %+v, want a reserved lease", grant)
	}
	var granted float64
	for _, g := range grant.Granted {
		granted += g
	}
	if math.Abs(granted-8) > 0.001 {
		t.Fatalf("granted %v cores, want ~8", granted)
	}
	st := checkBooks(t, svc, "DC-9")
	if st.OutstandingMillis != 8000 {
		t.Fatalf("outstanding = %d millis, want 8000", st.OutstandingMillis)
	}

	// The reservation is visible to the advisory path: the same class's
	// headroom shrank by the grant.
	usage := svc.UsageFor(snap)
	cls := snap.Clustering.Class(grant.Selection.Classes[0])
	u := usage[cls.ID]
	u.AllocatedCores = 0
	if a, _ := svc.LedgerStats("DC-9"); true {
		got := ledger.CoresOf(a.AllocatedMillisByClass[int(cls.ID)])
		if math.Abs(got-grant.Granted[0]) > 0.001 {
			t.Errorf("class %d ledger occupancy = %v, want %v", cls.ID, got, grant.Granted[0])
		}
	}

	rel, err := svc.Release("DC-9", grant.Lease)
	if err != nil {
		t.Fatalf("Release: %v", err)
	}
	if rel.TotalMillis() != 8000 {
		t.Errorf("released %d millis, want 8000", rel.TotalMillis())
	}
	if _, err := svc.Release("DC-9", grant.Lease); err == nil {
		t.Error("double release succeeded")
	}
	st = checkBooks(t, svc, "DC-9")
	if st.OutstandingMillis != 0 {
		t.Errorf("outstanding after release = %d, want 0", st.OutstandingMillis)
	}
}

// TestRepeatedSelectsStopOverPromising is the regression the tentpole
// exists for: before the ledger, every select re-promised the same spare
// capacity; now repeated selects deplete it and eventually report
// unsatisfiable until releases return the cores.
func TestRepeatedSelectsStopOverPromising(t *testing.T) {
	svc := newTestService(t)
	snap, _ := svc.Snapshot("DC-9")

	// The total medium-job capacity of the datacenter at the current view.
	usage := svc.UsageFor(snap)
	var totalCap float64
	for _, cls := range snap.Clustering.Classes {
		totalCap += snap.CapacityCores(core.JobMedium, cls.ID, usage[cls.ID])
	}

	job := core.JobRequest{Type: core.JobMedium, MaxConcurrentCores: 64}
	var leases []uint64
	var reserved float64
	for i := 0; ; i++ {
		grant, _, err := svc.SelectReserve("DC-9", job, -1)
		if err != nil {
			t.Fatalf("SelectReserve %d: %v", i, err)
		}
		if !grant.Reserved() {
			break // depleted — exactly what must happen
		}
		leases = append(leases, grant.Lease)
		for _, g := range grant.Granted {
			reserved += g
		}
		if reserved > totalCap+0.001 {
			t.Fatalf("reserved %v cores past the %v capacity bound", reserved, totalCap)
		}
		if i > 100000 {
			t.Fatal("selects never became unsatisfiable")
		}
	}
	if len(leases) == 0 {
		t.Fatal("no select ever succeeded")
	}
	// Headroom must be essentially gone: less than one more 64-core job.
	if totalCap-reserved >= 64 {
		t.Fatalf("selects stopped with %v of %v cores still free", totalCap-reserved, reserved)
	}
	st := checkBooks(t, svc, "DC-9")
	if got := ledger.CoresOf(st.OutstandingMillis); math.Abs(got-reserved) > 0.001 {
		t.Fatalf("outstanding %v != granted %v", got, reserved)
	}
	// Releasing everything restores the headroom.
	for _, id := range leases {
		if _, err := svc.Release("DC-9", id); err != nil {
			t.Fatalf("Release: %v", err)
		}
	}
	st = checkBooks(t, svc, "DC-9")
	if st.OutstandingMillis != 0 {
		t.Fatalf("outstanding after full release = %d", st.OutstandingMillis)
	}
	if grant, _, err := svc.SelectReserve("DC-9", job, -1); err != nil || !grant.Reserved() {
		t.Fatalf("select after release unsatisfiable: %+v, %v", grant, err)
	}
}

// TestConcurrentSelectReserveNeverOverPromises is the PR's acceptance test:
// N goroutines hammer reserving selects against classes with bounded
// headroom — first against a fixed snapshot (the per-class bound must hold
// exactly), then with snapshot refreshes re-keying the ledger mid-flight
// (totals must be conserved and the books must balance).
func TestConcurrentSelectReserveNeverOverPromises(t *testing.T) {
	svc := newTestService(t)
	snap, _ := svc.Snapshot("DC-9")
	usage := svc.UsageFor(snap)

	capacity := make(map[core.ClassID]float64, len(snap.Clustering.Classes))
	var totalCap float64
	for _, cls := range snap.Clustering.Classes {
		capacity[cls.ID] = snap.CapacityCores(core.JobMedium, cls.ID, usage[cls.ID])
		totalCap += capacity[cls.ID]
	}

	// Phase 1: fixed snapshot, 8 goroutines grabbing 16-core mediums until
	// the datacenter is dry.
	const workers = 8
	job := core.JobRequest{Type: core.JobMedium, MaxConcurrentCores: 16}
	var wg sync.WaitGroup
	var granted atomic.Int64 // millicores
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				grant, _, err := svc.SelectReserve("DC-9", job, -1)
				if err != nil {
					t.Errorf("SelectReserve: %v", err)
					return
				}
				if !grant.Reserved() {
					return
				}
				for _, g := range grant.Granted {
					granted.Add(ledger.ToMillis(g))
				}
			}
		}()
	}
	wg.Wait()
	st := checkBooks(t, svc, "DC-9")
	if st.OutstandingMillis != granted.Load() {
		t.Fatalf("outstanding %d != granted %d", st.OutstandingMillis, granted.Load())
	}
	// The hard bound: no class may hold more than its capacity — jointly,
	// across every concurrent select.
	for _, cls := range snap.Clustering.Classes {
		got := ledger.CoresOf(st.AllocatedMillisByClass[int(cls.ID)])
		if got > capacity[cls.ID]+1e-9 {
			t.Errorf("class %d jointly over-promised: %v reserved > %v capacity", cls.ID, got, capacity[cls.ID])
		}
	}
	if remaining := totalCap - ledger.CoresOf(st.OutstandingMillis); remaining >= 16*float64(len(snap.Clustering.Classes)) {
		t.Errorf("workers stopped with %v cores still free", remaining)
	}

	// Phase 2: keep hammering selects and releases while refreshes re-key
	// the ledger underneath. Totals are conserved across every re-key and
	// the books balance at the end.
	outstandingBefore := st.OutstandingMillis
	var stop atomic.Bool
	var refreshErr error
	refreshDone := make(chan struct{})
	go func() {
		defer close(refreshDone)
		defer stop.Store(true)
		for i := 0; i < 3; i++ {
			if refreshErr = svc.Refresh("DC-9"); refreshErr != nil {
				return
			}
		}
	}()
	smallJob := core.JobRequest{Type: core.JobShort, MaxConcurrentCores: 1}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var mine []uint64
			for !stop.Load() {
				grant, _, err := svc.SelectReserve("DC-9", smallJob, -1)
				if err != nil {
					t.Errorf("phase-2 SelectReserve: %v", err)
					return
				}
				if grant.Reserved() {
					mine = append(mine, grant.Lease)
				}
				if len(mine) > 4 {
					if _, err := svc.Release("DC-9", mine[0]); err != nil {
						t.Errorf("phase-2 Release: %v", err)
						return
					}
					mine = mine[1:]
				}
			}
			for _, id := range mine {
				if _, err := svc.Release("DC-9", id); err != nil {
					t.Errorf("phase-2 drain Release: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	<-refreshDone
	if refreshErr != nil {
		t.Fatalf("refresh: %v", refreshErr)
	}
	st = checkBooks(t, svc, "DC-9")
	// Phase 1's leases were never released: their total must have survived
	// all three re-keys exactly (same tenants, nothing evicted, so no
	// forfeits either).
	if st.ForfeitedMillis != 0 {
		t.Errorf("forfeited %d millis with no eviction", st.ForfeitedMillis)
	}
	if st.OutstandingMillis != outstandingBefore {
		t.Errorf("outstanding changed across re-keys: %d -> %d", outstandingBefore, st.OutstandingMillis)
	}
	final, _ := svc.Snapshot("DC-9")
	ls, _ := svc.LedgerStats("DC-9")
	if ls.Generation != final.Generation {
		t.Errorf("ledger generation %d != snapshot generation %d", ls.Generation, final.Generation)
	}
}

// TestSelectReserveSubMillicoreDemand pins the rounding edge: a demand
// below the ledger's fixed point must round up to one millicore, not floor
// to an empty reservation (which would surface as a server error).
func TestSelectReserveSubMillicoreDemand(t *testing.T) {
	svc := newTestService(t)
	grant, _, err := svc.SelectReserve("DC-9", core.JobRequest{Type: core.JobLong, MaxConcurrentCores: 0.0004}, -1)
	if err != nil {
		t.Fatalf("SelectReserve: %v", err)
	}
	if !grant.Reserved() {
		t.Fatalf("sub-millicore select unsatisfiable: %+v", grant)
	}
	st := checkBooks(t, svc, "DC-9")
	if st.OutstandingMillis != 1 {
		t.Errorf("outstanding = %d millis, want 1", st.OutstandingMillis)
	}
	if _, err := svc.Release("DC-9", grant.Lease); err != nil {
		t.Fatal(err)
	}
}

func TestLeaseExpirySweep(t *testing.T) {
	svc := newTestService(t)
	job := core.JobRequest{Type: core.JobMedium, MaxConcurrentCores: 4}
	grant, _, err := svc.SelectReserve("DC-9", job, 10*time.Millisecond)
	if err != nil || !grant.Reserved() {
		t.Fatalf("SelectReserve: %+v, %v", grant, err)
	}
	if grant.ExpiresAt.IsZero() {
		t.Fatal("TTL'd lease has no deadline")
	}
	// Not expired yet.
	if n, _ := svc.SweepLeases(grant.ExpiresAt.Add(-time.Millisecond)); n != 0 {
		t.Fatalf("swept %d leases before the deadline", n)
	}
	n, cores := svc.SweepLeases(grant.ExpiresAt.Add(time.Millisecond))
	if n != 1 || math.Abs(cores-4) > 0.001 {
		t.Fatalf("sweep = %d leases, %v cores; want 1, ~4", n, cores)
	}
	if _, err := svc.Release("DC-9", grant.Lease); err == nil {
		t.Error("released an expired lease")
	}
	st := checkBooks(t, svc, "DC-9")
	if st.ExpiredMillis != 4000 || st.OutstandingMillis != 0 {
		t.Errorf("expired/outstanding = %d/%d, want 4000/0", st.ExpiredMillis, st.OutstandingMillis)
	}
}

// TestSelectReserveHTTP exercises the full HTTP loop: select reserves and
// returns a lease, classes shows the occupancy, release returns the cores,
// and a second release 404s.
func TestSelectReserveHTTP(t *testing.T) {
	svc := newTestService(t)
	srv := httptest.NewServer(service.NewAPI(svc))
	defer srv.Close()

	resp, body := postJSON(t, srv.URL+"/v1/DC-9/select", `{"job_type":"medium","max_concurrent_cores":6,"hold_seconds":300}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("select status = %d, body %s", resp.StatusCode, body)
	}
	var sel struct {
		Satisfiable      bool      `json:"satisfiable"`
		Classes          []int     `json:"classes"`
		Lease            uint64    `json:"lease"`
		Granted          []float64 `json:"granted"`
		ExpiresInSeconds float64   `json:"expires_in_seconds"`
	}
	decode(t, body, &sel)
	if !sel.Satisfiable || sel.Lease == 0 || len(sel.Granted) != len(sel.Classes) {
		t.Fatalf("select response = %+v, want a lease", sel)
	}
	if sel.ExpiresInSeconds <= 0 || sel.ExpiresInSeconds > 300 {
		t.Errorf("expires_in_seconds = %v, want (0, 300]", sel.ExpiresInSeconds)
	}
	var granted float64
	for _, g := range sel.Granted {
		granted += g
	}
	if math.Abs(granted-6) > 0.001 {
		t.Errorf("granted %v, want ~6", granted)
	}

	// The classes endpoint reports the occupancy.
	_, body = get(t, srv.URL+"/v1/DC-9/classes")
	var classes struct {
		Classes []struct {
			ID             int     `json:"id"`
			AllocatedCores float64 `json:"allocated_cores"`
		} `json:"classes"`
	}
	decode(t, body, &classes)
	var shown float64
	for _, c := range classes.Classes {
		shown += c.AllocatedCores
	}
	if math.Abs(shown-6) > 0.001 {
		t.Errorf("classes endpoint shows %v allocated cores, want ~6", shown)
	}

	// A dry-run select sees the shrunken headroom but reserves nothing.
	resp, body = postJSON(t, srv.URL+"/v1/DC-9/select", `{"job_type":"medium","max_concurrent_cores":6,"dry_run":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dry-run status = %d", resp.StatusCode)
	}
	var dry struct {
		Lease uint64 `json:"lease"`
	}
	decode(t, body, &dry)
	if dry.Lease != 0 {
		t.Errorf("dry-run returned lease %d", dry.Lease)
	}

	// Release.
	resp, body = postJSON(t, srv.URL+"/v1/DC-9/release", fmt.Sprintf(`{"lease":%d}`, sel.Lease))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("release status = %d, body %s", resp.StatusCode, body)
	}
	var rel struct {
		ReleasedCores float64   `json:"released_cores"`
		Classes       []int     `json:"classes"`
		Cores         []float64 `json:"cores"`
	}
	decode(t, body, &rel)
	if math.Abs(rel.ReleasedCores-6) > 0.001 || len(rel.Classes) == 0 || len(rel.Classes) != len(rel.Cores) {
		t.Errorf("release response = %+v, want ~6 cores", rel)
	}
	if resp, _ := postJSON(t, srv.URL+"/v1/DC-9/release", fmt.Sprintf(`{"lease":%d}`, sel.Lease)); resp.StatusCode != http.StatusNotFound {
		t.Errorf("double release status = %d, want 404", resp.StatusCode)
	}
	if resp, _ := postJSON(t, srv.URL+"/v1/DC-9/release", `{"lease":0}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("lease=0 release status = %d, want 400", resp.StatusCode)
	}
	if resp, _ := postJSON(t, srv.URL+"/v1/DC-99/release", `{"lease":1}`); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown DC release status = %d, want 404", resp.StatusCode)
	}
	if resp, _ := postJSON(t, srv.URL+"/v1/DC-9/select", `{"job_type":"short","max_concurrent_cores":1,"hold_seconds":1e9}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("absurd hold_seconds status = %d, want 400", resp.StatusCode)
	}
	checkBooks(t, svc, "DC-9")

	// The metrics endpoint carries the books, in exact millis.
	_, body = get(t, srv.URL+"/metrics")
	var m struct {
		Datacenters map[string]struct {
			Ledger struct {
				ReservedMillis    int64  `json:"reserved_millis"`
				ReleasedMillis    int64  `json:"released_millis"`
				ExpiredMillis     int64  `json:"expired_millis"`
				ForfeitedMillis   int64  `json:"forfeited_millis"`
				OutstandingMillis int64  `json:"outstanding_millis"`
				Reserves          uint64 `json:"reserves"`
			} `json:"ledger"`
		} `json:"datacenters"`
	}
	decode(t, body, &m)
	led := m.Datacenters["DC-9"].Ledger
	if led.Reserves == 0 {
		t.Error("metrics report no reserves")
	}
	if led.ReservedMillis != led.ReleasedMillis+led.ExpiredMillis+led.ForfeitedMillis+led.OutstandingMillis {
		t.Errorf("metrics books out of balance: %+v", led)
	}
}

// TestLedgerPersistence pins the restart story: leases persisted at Close
// are restored with the snapshot, survive with their grants, and expired
// ones are reclaimed on the way in.
func TestLedgerPersistence(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.PersistDir = dir

	svc, err := service.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	keep, _, err := svc.SelectReserve("DC-9", core.JobRequest{Type: core.JobMedium, MaxConcurrentCores: 5}, -1)
	if err != nil || !keep.Reserved() {
		t.Fatalf("SelectReserve: %+v, %v", keep, err)
	}
	doomed, _, err := svc.SelectReserve("DC-9", core.JobRequest{Type: core.JobShort, MaxConcurrentCores: 2}, time.Millisecond)
	if err != nil || !doomed.Reserved() {
		t.Fatalf("SelectReserve: %+v, %v", doomed, err)
	}
	before := checkBooks(t, svc, "DC-9")
	svc.Close() // persists the ledger next to the snapshot

	time.Sleep(5 * time.Millisecond) // let the doomed lease pass its deadline

	svc2, err := service.New(cfg)
	if err != nil {
		t.Fatalf("restart New: %v", err)
	}
	st := checkBooks(t, svc2, "DC-9")
	if st.ReservedMillis != before.ReservedMillis {
		t.Errorf("reserved counter lost across restart: %d -> %d", before.ReservedMillis, st.ReservedMillis)
	}
	if st.OutstandingMillis != 5000 {
		t.Errorf("outstanding after restart = %d, want 5000 (doomed lease must have expired)", st.OutstandingMillis)
	}
	if st.ExpiredMillis != 2000 {
		t.Errorf("expired after restart = %d, want 2000", st.ExpiredMillis)
	}
	// The surviving lease is releasable, and refreshes keep re-keying it.
	if err := svc2.Refresh("DC-9"); err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	rel, err := svc2.Release("DC-9", keep.Lease)
	if err != nil || rel.TotalMillis() != 5000 {
		t.Fatalf("post-restart release: %+v, %v", rel, err)
	}
	checkBooks(t, svc2, "DC-9")

	// A restart with a different population fingerprint starts an empty
	// ledger (the snapshot is discarded too, so leases would be meaningless).
	svc2.Close()
	cfg3 := cfg
	cfg3.Scale.Seed = 99
	svc3, err := service.New(cfg3)
	if err != nil {
		t.Fatalf("mismatched New: %v", err)
	}
	if st, _ := svc3.LedgerStats("DC-9"); st.ReservedMillis != 0 || st.ActiveLeases != 0 {
		t.Errorf("mismatched-seed restart inherited ledger state: %+v", st)
	}
}

// TestReserveBenchmarkPathAllocFree guards the advisory hot path: reading
// ledger-adjusted usage must not add allocations to Select.
func TestReserveBenchmarkPathAllocFree(t *testing.T) {
	svc := newTestService(t)
	// Hold some cores so the ledger overlay is actually exercised.
	if grant, _, err := svc.SelectReserve("DC-9", core.JobRequest{Type: core.JobMedium, MaxConcurrentCores: 8}, -1); err != nil || !grant.Reserved() {
		t.Fatalf("SelectReserve: %+v, %v", grant, err)
	}
	job := core.JobRequest{Type: core.JobMedium, MaxConcurrentCores: 4}
	svc.Select("DC-9", job) // warm the usage view cache
	allocs := testing.AllocsPerRun(200, func() {
		if _, _, err := svc.Select("DC-9", job); err != nil {
			t.Fatal(err)
		}
	})
	// The selection itself allocates its result slices (5 allocs at the
	// seed); the ledger overlay must add zero on top.
	if allocs > 5 {
		t.Errorf("Select allocates %v/op, want <= 5 (ledger overlay must be allocation-free)", allocs)
	}
}
