package service_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"harvest/internal/core"
	"harvest/internal/experiments"
	"harvest/internal/service"
	"harvest/internal/tenant"
)

func testConfig() service.Config {
	cfg := service.DefaultConfig()
	cfg.Datacenters = []string{"DC-9"}
	cfg.Scale = experiments.Scale{Datacenter: 0.05, Seed: 1}
	cfg.RefreshPeriod = 0 // tests refresh explicitly
	return cfg
}

func newTestService(t testing.TB) *service.Service {
	t.Helper()
	svc, err := service.New(testConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return svc
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func decode(t *testing.T, data []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatalf("unmarshal %q: %v", data, err)
	}
}

func TestDatacentersEndpoint(t *testing.T) {
	svc := newTestService(t)
	srv := httptest.NewServer(service.NewAPI(svc))
	defer srv.Close()

	resp, body := get(t, srv.URL+"/v1/datacenters")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if resp.Header.Get("Content-Type") != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", resp.Header.Get("Content-Type"))
	}
	var dcl struct {
		Datacenters []string `json:"datacenters"`
	}
	decode(t, body, &dcl)
	if len(dcl.Datacenters) != 1 || dcl.Datacenters[0] != "DC-9" {
		t.Errorf("datacenters = %v, want [DC-9]", dcl.Datacenters)
	}
}

func TestClassesEndpoint(t *testing.T) {
	svc := newTestService(t)
	srv := httptest.NewServer(service.NewAPI(svc))
	defer srv.Close()

	resp, body := get(t, srv.URL+"/v1/DC-9/classes")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200; body %s", resp.StatusCode, body)
	}
	var classes struct {
		Datacenter string `json:"datacenter"`
		Generation uint64 `json:"generation"`
		Classes    []struct {
			ID              int     `json:"id"`
			Pattern         string  `json:"pattern"`
			NumServers      int     `json:"num_servers"`
			PeakUtilization float64 `json:"peak_utilization"`
			ExampleServer   int64   `json:"example_server"`
		} `json:"classes"`
	}
	decode(t, body, &classes)
	if classes.Datacenter != "DC-9" || classes.Generation != 1 {
		t.Errorf("datacenter/generation = %s/%d, want DC-9/1", classes.Datacenter, classes.Generation)
	}
	if len(classes.Classes) == 0 {
		t.Fatal("no classes returned")
	}
	for _, c := range classes.Classes {
		if c.Pattern != "constant" && c.Pattern != "periodic" && c.Pattern != "unpredictable" {
			t.Errorf("class %d: bad pattern %q", c.ID, c.Pattern)
		}
		if c.NumServers <= 0 || c.ExampleServer < 0 {
			t.Errorf("class %d: servers=%d example=%d", c.ID, c.NumServers, c.ExampleServer)
		}
	}

	// Unknown datacenter: 404 with a JSON error body.
	resp, body = get(t, srv.URL+"/v1/DC-99/classes")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown DC status = %d, want 404", resp.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
	}
	decode(t, body, &e)
	if e.Error == "" {
		t.Error("404 body carries no error message")
	}
}

func TestServerClassEndpoint(t *testing.T) {
	svc := newTestService(t)
	srv := httptest.NewServer(service.NewAPI(svc))
	defer srv.Close()

	snap, _ := svc.Snapshot("DC-9")
	known := snap.Clustering.Classes[0].Servers[0]

	resp, body := get(t, fmt.Sprintf("%s/v1/DC-9/servers/%d/class", srv.URL, known))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200; body %s", resp.StatusCode, body)
	}
	var sc struct {
		Server int64 `json:"server"`
		Class  struct {
			ID int `json:"id"`
		} `json:"class"`
	}
	decode(t, body, &sc)
	if sc.Server != int64(known) {
		t.Errorf("server = %d, want %d", sc.Server, known)
	}
	if got, _ := snap.Clustering.ClassOfServer(known); int(got) != sc.Class.ID {
		t.Errorf("class = %d, want %d", sc.Class.ID, got)
	}

	if resp, _ := get(t, srv.URL+"/v1/DC-9/servers/99999999/class"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown server status = %d, want 404", resp.StatusCode)
	}
	if resp, _ := get(t, srv.URL+"/v1/DC-9/servers/notanumber/class"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("non-numeric server status = %d, want 400", resp.StatusCode)
	}
}

func TestSelectEndpoint(t *testing.T) {
	svc := newTestService(t)
	srv := httptest.NewServer(service.NewAPI(svc))
	defer srv.Close()

	resp, body := postJSON(t, srv.URL+"/v1/DC-9/select", `{"job_type":"medium","max_concurrent_cores":4}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200; body %s", resp.StatusCode, body)
	}
	var sel struct {
		JobType     string    `json:"job_type"`
		Satisfiable bool      `json:"satisfiable"`
		Classes     []int     `json:"classes"`
		Headrooms   []float64 `json:"headrooms"`
	}
	decode(t, body, &sel)
	if sel.JobType != "medium" {
		t.Errorf("job_type = %q, want medium", sel.JobType)
	}
	if !sel.Satisfiable || len(sel.Classes) == 0 || len(sel.Classes) != len(sel.Headrooms) {
		t.Errorf("small job unsatisfiable: %+v", sel)
	}

	// A last-run duration instead of an explicit type: 60s is short.
	resp, body = postJSON(t, srv.URL+"/v1/DC-9/select", `{"last_run_seconds":60,"max_concurrent_cores":4}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	decode(t, body, &sel)
	if sel.JobType != "short" {
		t.Errorf("job_type = %q, want short (60s last run)", sel.JobType)
	}

	// An impossible demand still returns 200, marked unsatisfiable.
	resp, body = postJSON(t, srv.URL+"/v1/DC-9/select", `{"job_type":"long","max_concurrent_cores":1e12}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	decode(t, body, &sel)
	if sel.Satisfiable {
		t.Error("1e12-core job reported satisfiable")
	}

	for body, want := range map[string]int{
		`{"job_type":"weird","max_concurrent_cores":4}`: http.StatusBadRequest,
		`{"job_type":"medium"}`:                         http.StatusBadRequest,
		`not json`:                                      http.StatusBadRequest,
	} {
		if resp, _ := postJSON(t, srv.URL+"/v1/DC-9/select", body); resp.StatusCode != want {
			t.Errorf("select %s: status = %d, want %d", body, resp.StatusCode, want)
		}
	}
	if resp, _ := postJSON(t, srv.URL+"/v1/DC-99/select", `{"job_type":"medium","max_concurrent_cores":4}`); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown DC select status = %d, want 404", resp.StatusCode)
	}
}

func TestPlaceEndpoint(t *testing.T) {
	svc := newTestService(t)
	srv := httptest.NewServer(service.NewAPI(svc))
	defer srv.Close()

	resp, body := postJSON(t, srv.URL+"/v1/DC-9/place", `{"replication":3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200; body %s", resp.StatusCode, body)
	}
	var pl struct {
		Replicas []int64 `json:"replicas"`
	}
	decode(t, body, &pl)
	if len(pl.Replicas) != 3 {
		t.Fatalf("replicas = %v, want 3", pl.Replicas)
	}
	seen := map[int64]bool{}
	for _, r := range pl.Replicas {
		if seen[r] {
			t.Errorf("duplicate replica %d in %v", r, pl.Replicas)
		}
		seen[r] = true
	}

	// A known writer gets the first replica (locality).
	snap, _ := svc.Snapshot("DC-9")
	writer := snap.Clustering.Classes[0].Servers[0]
	resp, body = postJSON(t, srv.URL+"/v1/DC-9/place", fmt.Sprintf(`{"replication":3,"writer":%d}`, writer))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	decode(t, body, &pl)
	if len(pl.Replicas) != 3 || pl.Replicas[0] != int64(writer) {
		t.Errorf("replicas = %v, want writer %d first", pl.Replicas, writer)
	}

	if resp, _ := postJSON(t, srv.URL+"/v1/DC-9/place", `{"replication":0}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("replication=0 status = %d, want 400", resp.StatusCode)
	}
	if resp, _ := postJSON(t, srv.URL+"/v1/DC-9/place", `{"replication":200000000}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("huge replication status = %d, want 400", resp.StatusCode)
	}
	if resp, _ := postJSON(t, srv.URL+"/v1/DC-99/place", `{"replication":3}`); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown DC place status = %d, want 404", resp.StatusCode)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	svc := newTestService(t)
	srv := httptest.NewServer(service.NewAPI(svc))
	defer srv.Close()

	resp, body := get(t, srv.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d, want 200", resp.StatusCode)
	}
	var hz struct {
		Status      string `json:"status"`
		Datacenters int    `json:"datacenters"`
	}
	decode(t, body, &hz)
	if hz.Status != "ok" || hz.Datacenters != 1 {
		t.Errorf("healthz = %+v", hz)
	}

	// Drive a little traffic so /metrics has something to report.
	for i := 0; i < 5; i++ {
		postJSON(t, srv.URL+"/v1/DC-9/select", `{"job_type":"short","max_concurrent_cores":2}`)
	}
	get(t, srv.URL+"/v1/DC-99/classes") // one error

	resp, body = get(t, srv.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d, want 200", resp.StatusCode)
	}
	var m struct {
		TotalRequests uint64 `json:"total_requests"`
		Endpoints     map[string]struct {
			Requests uint64 `json:"requests"`
			Errors   uint64 `json:"errors"`
			P99Us    uint64 `json:"p99_us"`
		} `json:"endpoints"`
		Datacenters map[string]struct {
			Generation uint64 `json:"generation"`
			Classes    int    `json:"classes"`
		} `json:"datacenters"`
	}
	decode(t, body, &m)
	if m.Endpoints["select"].Requests != 5 {
		t.Errorf("select requests = %d, want 5", m.Endpoints["select"].Requests)
	}
	if m.Endpoints["select"].P99Us == 0 {
		t.Error("select p99 latency missing")
	}
	if m.Endpoints["classes"].Errors != 1 {
		t.Errorf("classes errors = %d, want 1", m.Endpoints["classes"].Errors)
	}
	if m.Datacenters["DC-9"].Generation != 1 || m.Datacenters["DC-9"].Classes == 0 {
		t.Errorf("DC-9 shard stats = %+v", m.Datacenters["DC-9"])
	}
	if m.TotalRequests == 0 {
		t.Error("total_requests = 0")
	}
}

func TestRefreshAdvancesSnapshot(t *testing.T) {
	svc := newTestService(t)
	before, _ := svc.Snapshot("DC-9")
	if err := svc.Refresh("DC-9"); err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	after, _ := svc.Snapshot("DC-9")
	if after == before {
		t.Fatal("Refresh did not publish a new snapshot")
	}
	if after.Generation != before.Generation+1 {
		t.Errorf("generation = %d, want %d", after.Generation, before.Generation+1)
	}
	if after.AsOf <= before.AsOf {
		t.Errorf("AsOf did not advance: %v -> %v", before.AsOf, after.AsOf)
	}
	// The old snapshot stays fully usable after being superseded.
	if got, _ := before.ClassOfServer(before.Clustering.Classes[0].Servers[0]); got == nil {
		t.Error("superseded snapshot no longer answers queries")
	}
	if err := svc.Refresh("DC-99"); err == nil {
		t.Error("Refresh of unknown DC did not fail")
	}
}

// TestConcurrentReadersAndRefresher is the -race exercise: readers hammer
// every query path (directly and through HTTP) while snapshots are rebuilt
// and swapped underneath them. The refreshes are driven explicitly from a
// goroutine (rather than a short RefreshPeriod) so the test exercises a
// guaranteed number of swaps regardless of how much the race detector slows
// the rebuild down; the ticker-driven path is the same refreshShard call and
// runs in TestBackgroundRefresher.
func TestConcurrentReadersAndRefresher(t *testing.T) {
	cfg := testConfig()
	cfg.SimStep = time.Hour
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	srv := httptest.NewServer(service.NewAPI(svc))
	defer srv.Close()

	snap, _ := svc.Snapshot("DC-9")
	probe := snap.Clustering.Classes[0].Servers[0]

	var refresherDone atomic.Bool
	var refreshErr error
	go func() {
		defer refresherDone.Store(true)
		for i := 0; i < 3; i++ {
			if refreshErr = svc.Refresh("DC-9"); refreshErr != nil {
				return
			}
		}
	}()

	const readers = 4
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client := &http.Client{}
			for n := 0; !refresherDone.Load(); n++ {
				switch n % 4 {
				case 0:
					sel, _, err := svc.Select("DC-9", core.JobRequest{Type: core.JobMedium, MaxConcurrentCores: 4})
					if err != nil {
						errs <- err
						return
					}
					if sel.Empty() {
						errs <- fmt.Errorf("reader %d: select unsatisfiable", i)
						return
					}
				case 1:
					replicas, _, err := svc.Place("DC-9", core.PlacementConstraints{Replication: 3, Writer: -1, EnforceEnvironment: true})
					if err != nil {
						errs <- err
						return
					}
					if len(replicas) != 3 {
						errs <- fmt.Errorf("reader %d: got %d replicas", i, len(replicas))
						return
					}
				case 2:
					s, _ := svc.Snapshot("DC-9")
					if _, ok := s.ClassOfServer(probe); !ok {
						errs <- fmt.Errorf("reader %d: probe server lost its class", i)
						return
					}
				case 3:
					resp, err := client.Post(srv.URL+"/v1/DC-9/select", "application/json",
						bytes.NewReader([]byte(`{"job_type":"short","max_concurrent_cores":2}`)))
					if err != nil {
						errs <- err
						return
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("reader %d: HTTP select status %d", i, resp.StatusCode)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if refreshErr != nil {
		t.Fatalf("refresh: %v", refreshErr)
	}

	st, _ := svc.Stats("DC-9")
	if st.Refreshes != 3 {
		t.Errorf("refreshes = %d, want 3", st.Refreshes)
	}
	if final, _ := svc.Snapshot("DC-9"); final.Generation != 4 {
		t.Errorf("final generation = %d, want 4", final.Generation)
	}
}

// TestBackgroundRefresher checks the ticker-driven path end to end: with a
// short period, Start's goroutine must publish new generations on its own.
func TestBackgroundRefresher(t *testing.T) {
	cfg := testConfig()
	cfg.RefreshPeriod = 2 * time.Millisecond
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	svc.Start()
	defer svc.Close()

	deadline := time.Now().Add(30 * time.Second)
	for {
		st, _ := svc.Stats("DC-9")
		if st.Refreshes > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background refresher published nothing in 30s")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSnapshotPlaceMatchesSchemeSemantics(t *testing.T) {
	svc := newTestService(t)
	snap, _ := svc.Snapshot("DC-9")
	// Many placements through the pooled placers: all replicas must be
	// distinct, known servers.
	for i := 0; i < 200; i++ {
		replicas, _, err := svc.Place("DC-9", core.PlacementConstraints{Replication: 3, Writer: -1, EnforceEnvironment: true})
		if err != nil {
			t.Fatalf("Place: %v", err)
		}
		seen := map[tenant.ServerID]bool{}
		for _, r := range replicas {
			if seen[r] {
				t.Fatalf("duplicate replica %d in %v", r, replicas)
			}
			seen[r] = true
			if _, ok := snap.Scheme().TenantOfServer(r); !ok {
				t.Fatalf("replica %d not a known server", r)
			}
		}
	}
}

func TestHistogram(t *testing.T) {
	var h service.Histogram
	for i := 0; i < 1000; i++ {
		h.Observe(10 * time.Microsecond)
	}
	h.Observe(5 * time.Millisecond)
	if got := h.Count(); got != 1001 {
		t.Errorf("count = %d, want 1001", got)
	}
	if p50 := h.QuantileMicros(0.50); p50 > 16 {
		t.Errorf("p50 = %dµs, want <= 16µs bucket", p50)
	}
	if p100 := h.QuantileMicros(1); p100 < 4096 {
		t.Errorf("p100 = %dµs, want the 5ms outlier's bucket", p100)
	}
	if max := h.MaxMicros(); max != 5000 {
		t.Errorf("max = %dµs, want 5000", max)
	}

	var other service.Histogram
	other.Observe(20 * time.Millisecond)
	h.Merge(&other)
	if got := h.Count(); got != 1002 {
		t.Errorf("merged count = %d, want 1002", got)
	}
	if max := h.MaxMicros(); max != 20000 {
		t.Errorf("merged max = %dµs, want 20000", max)
	}
}
