package service_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"harvest/internal/core"
	"harvest/internal/experiments"
	"harvest/internal/service"
	"harvest/internal/tenant"
)

func testConfig() service.Config {
	cfg := service.DefaultConfig()
	cfg.Datacenters = []string{"DC-9"}
	cfg.Scale = experiments.Scale{Datacenter: 0.05, Seed: 1}
	cfg.RefreshPeriod = 0 // tests refresh explicitly
	return cfg
}

func newTestService(t testing.TB) *service.Service {
	t.Helper()
	svc, err := service.New(testConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return svc
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func decode(t *testing.T, data []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatalf("unmarshal %q: %v", data, err)
	}
}

func TestDatacentersEndpoint(t *testing.T) {
	svc := newTestService(t)
	srv := httptest.NewServer(service.NewAPI(svc))
	defer srv.Close()

	resp, body := get(t, srv.URL+"/v1/datacenters")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if resp.Header.Get("Content-Type") != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", resp.Header.Get("Content-Type"))
	}
	var dcl struct {
		Datacenters []string `json:"datacenters"`
	}
	decode(t, body, &dcl)
	if len(dcl.Datacenters) != 1 || dcl.Datacenters[0] != "DC-9" {
		t.Errorf("datacenters = %v, want [DC-9]", dcl.Datacenters)
	}
}

func TestClassesEndpoint(t *testing.T) {
	svc := newTestService(t)
	srv := httptest.NewServer(service.NewAPI(svc))
	defer srv.Close()

	resp, body := get(t, srv.URL+"/v1/DC-9/classes")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200; body %s", resp.StatusCode, body)
	}
	var classes struct {
		Datacenter string `json:"datacenter"`
		Generation uint64 `json:"generation"`
		Classes    []struct {
			ID              int     `json:"id"`
			Pattern         string  `json:"pattern"`
			NumServers      int     `json:"num_servers"`
			PeakUtilization float64 `json:"peak_utilization"`
			ExampleServer   int64   `json:"example_server"`
		} `json:"classes"`
	}
	decode(t, body, &classes)
	if classes.Datacenter != "DC-9" || classes.Generation != 1 {
		t.Errorf("datacenter/generation = %s/%d, want DC-9/1", classes.Datacenter, classes.Generation)
	}
	if len(classes.Classes) == 0 {
		t.Fatal("no classes returned")
	}
	for _, c := range classes.Classes {
		if c.Pattern != "constant" && c.Pattern != "periodic" && c.Pattern != "unpredictable" {
			t.Errorf("class %d: bad pattern %q", c.ID, c.Pattern)
		}
		if c.NumServers <= 0 || c.ExampleServer < 0 {
			t.Errorf("class %d: servers=%d example=%d", c.ID, c.NumServers, c.ExampleServer)
		}
	}

	// Unknown datacenter: 404 with a JSON error body.
	resp, body = get(t, srv.URL+"/v1/DC-99/classes")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown DC status = %d, want 404", resp.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
	}
	decode(t, body, &e)
	if e.Error == "" {
		t.Error("404 body carries no error message")
	}
}

func TestServerClassEndpoint(t *testing.T) {
	svc := newTestService(t)
	srv := httptest.NewServer(service.NewAPI(svc))
	defer srv.Close()

	snap, _ := svc.Snapshot("DC-9")
	known := snap.Clustering.Classes[0].Servers[0]

	resp, body := get(t, fmt.Sprintf("%s/v1/DC-9/servers/%d/class", srv.URL, known))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200; body %s", resp.StatusCode, body)
	}
	var sc struct {
		Server int64 `json:"server"`
		Class  struct {
			ID int `json:"id"`
		} `json:"class"`
	}
	decode(t, body, &sc)
	if sc.Server != int64(known) {
		t.Errorf("server = %d, want %d", sc.Server, known)
	}
	if got, _ := snap.Clustering.ClassOfServer(known); int(got) != sc.Class.ID {
		t.Errorf("class = %d, want %d", sc.Class.ID, got)
	}

	if resp, _ := get(t, srv.URL+"/v1/DC-9/servers/99999999/class"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown server status = %d, want 404", resp.StatusCode)
	}
	if resp, _ := get(t, srv.URL+"/v1/DC-9/servers/notanumber/class"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("non-numeric server status = %d, want 400", resp.StatusCode)
	}
}

func TestSelectEndpoint(t *testing.T) {
	svc := newTestService(t)
	srv := httptest.NewServer(service.NewAPI(svc))
	defer srv.Close()

	resp, body := postJSON(t, srv.URL+"/v1/DC-9/select", `{"job_type":"medium","max_concurrent_cores":4}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200; body %s", resp.StatusCode, body)
	}
	var sel struct {
		JobType     string    `json:"job_type"`
		Satisfiable bool      `json:"satisfiable"`
		Classes     []int     `json:"classes"`
		Headrooms   []float64 `json:"headrooms"`
	}
	decode(t, body, &sel)
	if sel.JobType != "medium" {
		t.Errorf("job_type = %q, want medium", sel.JobType)
	}
	if !sel.Satisfiable || len(sel.Classes) == 0 || len(sel.Classes) != len(sel.Headrooms) {
		t.Errorf("small job unsatisfiable: %+v", sel)
	}

	// A last-run duration instead of an explicit type: 60s is short.
	resp, body = postJSON(t, srv.URL+"/v1/DC-9/select", `{"last_run_seconds":60,"max_concurrent_cores":4}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	decode(t, body, &sel)
	if sel.JobType != "short" {
		t.Errorf("job_type = %q, want short (60s last run)", sel.JobType)
	}

	// An impossible demand still returns 200, marked unsatisfiable.
	resp, body = postJSON(t, srv.URL+"/v1/DC-9/select", `{"job_type":"long","max_concurrent_cores":1e12}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	decode(t, body, &sel)
	if sel.Satisfiable {
		t.Error("1e12-core job reported satisfiable")
	}

	for body, want := range map[string]int{
		`{"job_type":"weird","max_concurrent_cores":4}`: http.StatusBadRequest,
		`{"job_type":"medium"}`:                         http.StatusBadRequest,
		`not json`:                                      http.StatusBadRequest,
	} {
		if resp, _ := postJSON(t, srv.URL+"/v1/DC-9/select", body); resp.StatusCode != want {
			t.Errorf("select %s: status = %d, want %d", body, resp.StatusCode, want)
		}
	}
	if resp, _ := postJSON(t, srv.URL+"/v1/DC-99/select", `{"job_type":"medium","max_concurrent_cores":4}`); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown DC select status = %d, want 404", resp.StatusCode)
	}
}

func TestPlaceEndpoint(t *testing.T) {
	svc := newTestService(t)
	srv := httptest.NewServer(service.NewAPI(svc))
	defer srv.Close()

	resp, body := postJSON(t, srv.URL+"/v1/DC-9/place", `{"replication":3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200; body %s", resp.StatusCode, body)
	}
	var pl struct {
		Replicas []int64 `json:"replicas"`
	}
	decode(t, body, &pl)
	if len(pl.Replicas) != 3 {
		t.Fatalf("replicas = %v, want 3", pl.Replicas)
	}
	seen := map[int64]bool{}
	for _, r := range pl.Replicas {
		if seen[r] {
			t.Errorf("duplicate replica %d in %v", r, pl.Replicas)
		}
		seen[r] = true
	}

	// A known writer gets the first replica (locality).
	snap, _ := svc.Snapshot("DC-9")
	writer := snap.Clustering.Classes[0].Servers[0]
	resp, body = postJSON(t, srv.URL+"/v1/DC-9/place", fmt.Sprintf(`{"replication":3,"writer":%d}`, writer))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	decode(t, body, &pl)
	if len(pl.Replicas) != 3 || pl.Replicas[0] != int64(writer) {
		t.Errorf("replicas = %v, want writer %d first", pl.Replicas, writer)
	}

	if resp, _ := postJSON(t, srv.URL+"/v1/DC-9/place", `{"replication":0}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("replication=0 status = %d, want 400", resp.StatusCode)
	}
	if resp, _ := postJSON(t, srv.URL+"/v1/DC-9/place", `{"replication":200000000}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("huge replication status = %d, want 400", resp.StatusCode)
	}
	if resp, _ := postJSON(t, srv.URL+"/v1/DC-99/place", `{"replication":3}`); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown DC place status = %d, want 404", resp.StatusCode)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	svc := newTestService(t)
	srv := httptest.NewServer(service.NewAPI(svc))
	defer srv.Close()

	resp, body := get(t, srv.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d, want 200", resp.StatusCode)
	}
	var hz struct {
		Status      string `json:"status"`
		Datacenters int    `json:"datacenters"`
	}
	decode(t, body, &hz)
	if hz.Status != "ok" || hz.Datacenters != 1 {
		t.Errorf("healthz = %+v", hz)
	}

	// Drive a little traffic so /metrics has something to report.
	for i := 0; i < 5; i++ {
		postJSON(t, srv.URL+"/v1/DC-9/select", `{"job_type":"short","max_concurrent_cores":2}`)
	}
	get(t, srv.URL+"/v1/DC-99/classes") // one error

	resp, body = get(t, srv.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d, want 200", resp.StatusCode)
	}
	var m struct {
		TotalRequests uint64 `json:"total_requests"`
		Endpoints     map[string]struct {
			Requests uint64 `json:"requests"`
			Errors   uint64 `json:"errors"`
			P99Us    uint64 `json:"p99_us"`
		} `json:"endpoints"`
		Datacenters map[string]struct {
			Generation uint64 `json:"generation"`
			Classes    int    `json:"classes"`
		} `json:"datacenters"`
	}
	decode(t, body, &m)
	if m.Endpoints["select"].Requests != 5 {
		t.Errorf("select requests = %d, want 5", m.Endpoints["select"].Requests)
	}
	if m.Endpoints["select"].P99Us == 0 {
		t.Error("select p99 latency missing")
	}
	if m.Endpoints["classes"].Errors != 1 {
		t.Errorf("classes errors = %d, want 1", m.Endpoints["classes"].Errors)
	}
	if m.Datacenters["DC-9"].Generation != 1 || m.Datacenters["DC-9"].Classes == 0 {
		t.Errorf("DC-9 shard stats = %+v", m.Datacenters["DC-9"])
	}
	if m.TotalRequests == 0 {
		t.Error("total_requests = 0")
	}
}

func TestRefreshAdvancesSnapshot(t *testing.T) {
	svc := newTestService(t)
	before, _ := svc.Snapshot("DC-9")
	if err := svc.Refresh("DC-9"); err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	after, _ := svc.Snapshot("DC-9")
	if after == before {
		t.Fatal("Refresh did not publish a new snapshot")
	}
	if after.Generation != before.Generation+1 {
		t.Errorf("generation = %d, want %d", after.Generation, before.Generation+1)
	}
	// Without new telemetry the snapshot's AsOf stays at the ring horizon.
	if after.AsOf != before.AsOf {
		t.Errorf("AsOf moved without ingest: %v -> %v", before.AsOf, after.AsOf)
	}
	// New telemetry advances the horizon, and the next refresh picks it up.
	res, err := svc.Ingest("DC-9", []service.IngestSample{
		{Tenant: before.Clustering.Classes[0].Tenants[0], Server: -1, Value: 0.5},
	})
	if err != nil || res.Accepted != 1 {
		t.Fatalf("Ingest: %+v, %v", res, err)
	}
	if err := svc.Refresh("DC-9"); err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	final, _ := svc.Snapshot("DC-9")
	if final.AsOf <= after.AsOf {
		t.Errorf("AsOf did not advance after ingest: %v -> %v", after.AsOf, final.AsOf)
	}
	// The old snapshot stays fully usable after being superseded.
	if got, _ := before.ClassOfServer(before.Clustering.Classes[0].Servers[0]); got == nil {
		t.Error("superseded snapshot no longer answers queries")
	}
	if err := svc.Refresh("DC-99"); err == nil {
		t.Error("Refresh of unknown DC did not fail")
	}
}

// TestConcurrentReadersAndRefresher is the -race exercise: readers hammer
// every query path (directly and through HTTP) while snapshots are rebuilt
// and swapped underneath them. The refreshes are driven explicitly from a
// goroutine (rather than a short RefreshPeriod) so the test exercises a
// guaranteed number of swaps regardless of how much the race detector slows
// the rebuild down; the ticker-driven path is the same refreshShard call and
// runs in TestBackgroundRefresher.
func TestConcurrentReadersAndRefresher(t *testing.T) {
	cfg := testConfig()
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	srv := httptest.NewServer(service.NewAPI(svc))
	defer srv.Close()

	snap, _ := svc.Snapshot("DC-9")
	probe := snap.Clustering.Classes[0].Servers[0]

	const readers = 4
	errs := make(chan error, readers+1)

	var refresherDone atomic.Bool
	var refreshErr error
	ingestTenant := snap.Clustering.Classes[0].Tenants[0]
	go func() {
		defer refresherDone.Store(true)
		for i := 0; i < 3; i++ {
			if refreshErr = svc.Refresh("DC-9"); refreshErr != nil {
				return
			}
		}
	}()
	// A concurrent ingester hammers the rings while snapshots rebuild from
	// them and readers consume the live usage view — the single-writer /
	// lock-free-reader contract under -race.
	ingesterDone := make(chan struct{})
	go func() {
		defer close(ingesterDone)
		for i := 0; !refresherDone.Load(); i++ {
			_, err := svc.Ingest("DC-9", []service.IngestSample{
				{Tenant: ingestTenant, Server: -1, Value: float64(i%100) / 100},
			})
			if err != nil {
				errs <- err
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client := &http.Client{}
			for n := 0; !refresherDone.Load(); n++ {
				switch n % 4 {
				case 0:
					sel, _, err := svc.Select("DC-9", core.JobRequest{Type: core.JobMedium, MaxConcurrentCores: 4})
					if err != nil {
						errs <- err
						return
					}
					if sel.Empty() {
						errs <- fmt.Errorf("reader %d: select unsatisfiable", i)
						return
					}
				case 1:
					replicas, _, err := svc.Place("DC-9", core.PlacementConstraints{Replication: 3, Writer: -1, EnforceEnvironment: true})
					if err != nil {
						errs <- err
						return
					}
					if len(replicas) != 3 {
						errs <- fmt.Errorf("reader %d: got %d replicas", i, len(replicas))
						return
					}
				case 2:
					s, _ := svc.Snapshot("DC-9")
					if _, ok := s.ClassOfServer(probe); !ok {
						errs <- fmt.Errorf("reader %d: probe server lost its class", i)
						return
					}
				case 3:
					resp, err := client.Post(srv.URL+"/v1/DC-9/select", "application/json",
						bytes.NewReader([]byte(`{"job_type":"short","max_concurrent_cores":2}`)))
					if err != nil {
						errs <- err
						return
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("reader %d: HTTP select status %d", i, resp.StatusCode)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	<-ingesterDone
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if refreshErr != nil {
		t.Fatalf("refresh: %v", refreshErr)
	}

	st, _ := svc.Stats("DC-9")
	if st.Refreshes != 3 {
		t.Errorf("refreshes = %d, want 3", st.Refreshes)
	}
	if final, _ := svc.Snapshot("DC-9"); final.Generation != 4 {
		t.Errorf("final generation = %d, want 4", final.Generation)
	}
}

// TestBackgroundRefresher checks the ticker-driven path end to end: with a
// short period, Start's goroutine must publish new generations on its own.
func TestBackgroundRefresher(t *testing.T) {
	cfg := testConfig()
	cfg.RefreshPeriod = 2 * time.Millisecond
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	svc.Start()
	defer svc.Close()

	deadline := time.Now().Add(30 * time.Second)
	for {
		st, _ := svc.Stats("DC-9")
		if st.Refreshes > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background refresher published nothing in 30s")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSnapshotPlaceMatchesSchemeSemantics(t *testing.T) {
	svc := newTestService(t)
	snap, _ := svc.Snapshot("DC-9")
	// Many placements through the pooled placers: all replicas must be
	// distinct, known servers.
	for i := 0; i < 200; i++ {
		replicas, _, err := svc.Place("DC-9", core.PlacementConstraints{Replication: 3, Writer: -1, EnforceEnvironment: true})
		if err != nil {
			t.Fatalf("Place: %v", err)
		}
		seen := map[tenant.ServerID]bool{}
		for _, r := range replicas {
			if seen[r] {
				t.Fatalf("duplicate replica %d in %v", r, replicas)
			}
			seen[r] = true
			if _, ok := snap.Scheme().TenantOfServer(r); !ok {
				t.Fatalf("replica %d not a known server", r)
			}
		}
	}
}

// TestTelemetryIngestChangesSnapshot is the end-to-end exercise of the live
// data path: telemetry POSTed to the API lands in the rings, and the next
// snapshot's usage view observably reflects it.
func TestTelemetryIngestChangesSnapshot(t *testing.T) {
	svc := newTestService(t)
	srv := httptest.NewServer(service.NewAPI(svc))
	defer srv.Close()

	snap, _ := svc.Snapshot("DC-9")
	target := snap.Clustering.Classes[0]
	before := snap.Usage[target.ID].CurrentUtilization

	// Drive every tenant of the target class to (nearly) full utilization
	// for a few slots via the HTTP endpoint.
	var body bytes.Buffer
	body.WriteString(`{"samples":[`)
	n := 0
	for slot := 0; slot < 3; slot++ {
		for _, tid := range target.Tenants {
			if n > 0 {
				body.WriteString(",")
			}
			fmt.Fprintf(&body, `{"tenant":%d,"utilization":0.97}`, tid)
			n++
		}
	}
	body.WriteString(`]}`)
	resp, respBody := postJSON(t, srv.URL+"/v1/DC-9/telemetry", body.String())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("telemetry status = %d, body %s", resp.StatusCode, respBody)
	}
	var tr struct {
		Accepted       int     `json:"accepted"`
		Rejected       int     `json:"rejected"`
		HorizonSeconds float64 `json:"horizon_seconds"`
	}
	decode(t, respBody, &tr)
	if tr.Accepted != n || tr.Rejected != 0 {
		t.Fatalf("accepted/rejected = %d/%d, want %d/0", tr.Accepted, tr.Rejected, n)
	}
	if tr.HorizonSeconds <= snap.AsOf.Seconds() {
		t.Errorf("horizon %.0fs did not advance past AsOf %.0fs", tr.HorizonSeconds, snap.AsOf.Seconds())
	}

	if err := svc.Refresh("DC-9"); err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	after, _ := svc.Snapshot("DC-9")
	// The target tenants may have been re-classed by the refresh; check the
	// class now holding the first target tenant.
	cid, ok := after.Clustering.ClassOfTenant(target.Tenants[0])
	if !ok {
		t.Fatal("target tenant lost its class")
	}
	got := after.Usage[cid].CurrentUtilization
	if got <= before || got < 0.9 {
		t.Errorf("posted telemetry did not move the usage view: before %.3f, after %.3f (want >= 0.9)", before, got)
	}
	if after.AsOf.Seconds() != tr.HorizonSeconds {
		t.Errorf("snapshot AsOf = %.0fs, want ingest horizon %.0fs", after.AsOf.Seconds(), tr.HorizonSeconds)
	}

	// Validation paths.
	if resp, _ := postJSON(t, srv.URL+"/v1/DC-99/telemetry", `{"samples":[{"tenant":0,"utilization":0.5}]}`); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown DC telemetry status = %d, want 404", resp.StatusCode)
	}
	if resp, _ := postJSON(t, srv.URL+"/v1/DC-9/telemetry", `{"samples":[]}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty telemetry status = %d, want 400", resp.StatusCode)
	}
	if resp, _ := postJSON(t, srv.URL+"/v1/DC-9/telemetry", `not json`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad telemetry body status = %d, want 400", resp.StatusCode)
	}
	// Unknown tenants, absent or ambiguous subjects, absurd offsets, and
	// backdated offsets are rejected per sample, not per call.
	srvOfOther := after.Clustering.Classes[0].Servers[0]
	resp, respBody = postJSON(t, srv.URL+"/v1/DC-9/telemetry", fmt.Sprintf(
		`{"samples":[{"tenant":999999,"utilization":0.5},{"utilization":0.5},{"tenant":0,"at_seconds":1e300,"utilization":0.5},{"tenant":0,"server":%d,"utilization":0.5},{"tenant":0,"at_seconds":1,"utilization":0.5},{"tenant":0,"utilization":0.5}]}`,
		srvOfOther))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mixed telemetry status = %d", resp.StatusCode)
	}
	decode(t, respBody, &tr)
	if tr.Accepted != 1 || tr.Rejected != 5 {
		t.Errorf("mixed accepted/rejected = %d/%d, want 1/5", tr.Accepted, tr.Rejected)
	}
}

// TestLiveUsageBetweenRefreshes pins the CurrentUtilization contract: the
// usage view queries run against updates from ring samples without waiting
// for a refresh, while the snapshot's frozen view stays put.
func TestLiveUsageBetweenRefreshes(t *testing.T) {
	svc := newTestService(t)
	srv := httptest.NewServer(service.NewAPI(svc))
	defer srv.Close()

	snap, _ := svc.Snapshot("DC-9")
	target := snap.Clustering.Classes[0]
	before := snap.Usage[target.ID].CurrentUtilization

	samples := make([]service.IngestSample, 0, len(target.Tenants))
	for _, tid := range target.Tenants {
		samples = append(samples, service.IngestSample{Tenant: tid, Server: -1, Value: 0.99})
	}
	if res, err := svc.Ingest("DC-9", samples); err != nil || res.Accepted != len(samples) {
		t.Fatalf("Ingest: %+v, %v", res, err)
	}

	// Same snapshot generation, no refresh — but the live view moved.
	live := svc.UsageFor(snap)
	if got := live[target.ID].CurrentUtilization; got < 0.98 {
		t.Errorf("live usage = %.3f, want ~0.99", got)
	}
	if snap.Usage[target.ID].CurrentUtilization != before {
		t.Error("snapshot's frozen usage view mutated")
	}

	// The classes endpoint serves the live view.
	_, body := get(t, srv.URL+"/v1/DC-9/classes")
	var classes struct {
		Generation uint64 `json:"generation"`
		Classes    []struct {
			ID                 int     `json:"id"`
			CurrentUtilization float64 `json:"current_utilization"`
		} `json:"classes"`
	}
	decode(t, body, &classes)
	if classes.Generation != snap.Generation {
		t.Fatalf("generation = %d, want %d (no refresh happened)", classes.Generation, snap.Generation)
	}
	found := false
	for _, c := range classes.Classes {
		if c.ID == int(target.ID) {
			found = true
			if c.CurrentUtilization < 0.98 {
				t.Errorf("classes endpoint current_utilization = %.3f, want ~0.99", c.CurrentUtilization)
			}
		}
	}
	if !found {
		t.Fatalf("class %d missing from classes response", target.ID)
	}

	// A server-addressed sample reaches the owning tenant's ring and
	// invalidates the cached live view.
	srvID := target.Servers[0]
	if res, err := svc.Ingest("DC-9", []service.IngestSample{{Tenant: -1, Server: srvID, Value: 0.01}}); err != nil || res.Accepted != 1 {
		t.Fatalf("server-addressed ingest: %+v, %v", res, err)
	}
	moved := svc.UsageFor(snap)[target.ID].CurrentUtilization
	if moved >= 0.99 {
		t.Errorf("server-addressed sample did not move the live view (still %.3f)", moved)
	}
}

// TestWarmAndFullRefreshCounters pins the refresh cadence contract: warm
// refreshes by default, a from-scratch rebuild every FullRebuildEvery-th.
func TestWarmAndFullRefreshCounters(t *testing.T) {
	cfg := testConfig()
	cfg.FullRebuildEvery = 3
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := svc.Refresh("DC-9"); err != nil {
			t.Fatalf("Refresh %d: %v", i, err)
		}
	}
	st, _ := svc.Stats("DC-9")
	if st.Refreshes != 3 {
		t.Fatalf("refreshes = %d, want 3", st.Refreshes)
	}
	if st.WarmRefreshes != 2 || st.FullRebuilds != 1 {
		t.Errorf("warm/full = %d/%d, want 2/1", st.WarmRefreshes, st.FullRebuilds)
	}
}

// TestSnapshotPersistence exercises the restore path: a service built over
// the same PersistDir resumes from the persisted generation with the same
// classes instead of re-clustering from scratch.
func TestSnapshotPersistence(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.PersistDir = dir

	svc, err := service.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Ingest past the bootstrap horizon so the persisted AsOf is ahead of
	// what a restarted daemon's re-seeded rings hold.
	boot, _ := svc.Snapshot("DC-9")
	if res, err := svc.Ingest("DC-9", []service.IngestSample{
		{Tenant: boot.Clustering.Classes[0].Tenants[0], Server: -1, Value: 0.5},
	}); err != nil || res.Accepted != 1 {
		t.Fatalf("Ingest: %+v, %v", res, err)
	}
	if err := svc.Refresh("DC-9"); err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	first, _ := svc.Snapshot("DC-9")
	if first.Generation != 2 {
		t.Fatalf("generation = %d, want 2", first.Generation)
	}
	if first.AsOf <= boot.AsOf {
		t.Fatalf("AsOf did not advance past the bootstrap horizon")
	}

	// "Restart": a new service over the same directory.
	svc2, err := service.New(cfg)
	if err != nil {
		t.Fatalf("restart New: %v", err)
	}
	restored, _ := svc2.Snapshot("DC-9")
	if restored.Generation != first.Generation {
		t.Errorf("restored generation = %d, want %d", restored.Generation, first.Generation)
	}
	if len(restored.Clustering.Classes) != len(first.Clustering.Classes) {
		t.Fatalf("restored %d classes, want %d", len(restored.Clustering.Classes), len(first.Clustering.Classes))
	}
	for i, cls := range first.Clustering.Classes {
		rc := restored.Clustering.Classes[i]
		if rc.ID != cls.ID || rc.Pattern != cls.Pattern || len(rc.Tenants) != len(cls.Tenants) || len(rc.Servers) != len(cls.Servers) {
			t.Errorf("class %d mismatch after restore", cls.ID)
		}
	}
	// The restored snapshot answers queries and keeps refreshing.
	if sel, _, err := svc2.Select("DC-9", core.JobRequest{Type: core.JobMedium, MaxConcurrentCores: 4}); err != nil || sel.Empty() {
		t.Errorf("restored service select failed: %v %+v", err, sel)
	}
	if err := svc2.Refresh("DC-9"); err != nil {
		t.Fatalf("restored Refresh: %v", err)
	}
	next, _ := svc2.Snapshot("DC-9")
	if next.Generation != first.Generation+1 {
		t.Errorf("post-restore generation = %d, want %d", next.Generation, first.Generation+1)
	}
	// AsOf stays monotonic across the restart even though the re-seeded
	// rings only hold the bootstrap window: the restore pulls the telemetry
	// clock up to the persisted AsOf.
	if next.AsOf < first.AsOf {
		t.Errorf("AsOf regressed across restart: %v -> %v", first.AsOf, next.AsOf)
	}

	// A fingerprint mismatch (different seed) discards the file and boots
	// from scratch at generation 1.
	cfg3 := cfg
	cfg3.Scale.Seed = 99
	svc3, err := service.New(cfg3)
	if err != nil {
		t.Fatalf("mismatched New: %v", err)
	}
	fresh, _ := svc3.Snapshot("DC-9")
	if fresh.Generation != 1 {
		t.Errorf("mismatched-seed generation = %d, want 1 (file must be discarded)", fresh.Generation)
	}

	// A corrupt file is ignored, not fatal.
	path := dir + "/DC-9.snapshot.json"
	if err := os.WriteFile(path, []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	svc4, err := service.New(cfg)
	if err != nil {
		t.Fatalf("corrupt-file New: %v", err)
	}
	if snap, _ := svc4.Snapshot("DC-9"); snap.Generation != 1 {
		t.Errorf("corrupt-file generation = %d, want 1", snap.Generation)
	}
}

func TestHistogram(t *testing.T) {
	var h service.Histogram
	for i := 0; i < 1000; i++ {
		h.Observe(10 * time.Microsecond)
	}
	h.Observe(5 * time.Millisecond)
	if got := h.Count(); got != 1001 {
		t.Errorf("count = %d, want 1001", got)
	}
	if p50 := h.QuantileMicros(0.50); p50 > 16 {
		t.Errorf("p50 = %dµs, want <= 16µs bucket", p50)
	}
	if p100 := h.QuantileMicros(1); p100 < 4096 {
		t.Errorf("p100 = %dµs, want the 5ms outlier's bucket", p100)
	}
	if max := h.MaxMicros(); max != 5000 {
		t.Errorf("max = %dµs, want 5000", max)
	}

	var other service.Histogram
	other.Observe(20 * time.Millisecond)
	h.Merge(&other)
	if got := h.Count(); got != 1002 {
		t.Errorf("merged count = %d, want 1002", got)
	}
	if max := h.MaxMicros(); max != 20000 {
		t.Errorf("merged max = %dµs, want 20000", max)
	}
}
