package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/netip"
	"strconv"
	"strings"
	"sync"
	"time"

	"harvest/internal/blockledger"
	"harvest/internal/core"
	"harvest/internal/httpjson"
	"harvest/internal/ledger"
	"harvest/internal/obs"
	"harvest/internal/tenant"
)

// API is the HTTP front end of the characterization service: the REST
// surface YARN-H and HDFS-H poll in the paper's deployment (§6.2), stdlib
// only. Routes:
//
//	GET  /v1/datacenters               — served datacenters
//	GET  /v1/{dc}/classes              — the DC's utilization classes
//	GET  /v1/{dc}/servers/{id}/class   — a server's class
//	POST /v1/{dc}/select               — class selection (Alg. 1); reserves cores, returns a lease
//	POST /v1/{dc}/release              — return a lease's cores
//	POST /v1/{dc}/place                — replica placement (Alg. 2), advisory
//	POST /v1/{dc}/blocks               — create a block: place R replicas and record them in the block ledger
//	POST /v1/{dc}/reimage              — ingest a reimaging event: replicas on the server are lost, repairs enqueue
//	POST /v1/{dc}/telemetry            — live utilization ingestion (feeds the rings)
//	GET  /healthz                      — liveness
//	GET  /metrics                      — counters, latency quantiles, snapshot ages/staleness, ledger books
type API struct {
	svc   *Service
	mux   *http.ServeMux
	start time.Time
	opts  APIOptions

	ingestLimiter  *rateLimiter
	trustedProxies []netip.Prefix
	endpoints      map[string]*EndpointMetrics

	// binary, when attached, is the sibling binary-dialect listener: its
	// advertised address rides on /v1/datacenters (how clients discover the
	// fast path) and its per-opcode counters ride on /metrics.
	binary     *BinaryServer
	binaryAddr string

	// rec holds the daemon's request traces (JSON dialect; the attached
	// binary server shares it so both dialects land in one ring).
	rec *obs.Recorder
}

// AttachBinary advertises a binary frame server alongside the JSON API:
// addr (host:port) is published on /v1/datacenters as binary_addr, and the
// server's per-opcode metrics appear on /metrics. Call before serving. The
// binary server inherits the API's trace recorder unless it already has one,
// so /debug/traces shows both dialects.
func (a *API) AttachBinary(b *BinaryServer, addr string) {
	a.binary = b
	a.binaryAddr = addr
	if b.rec == nil {
		b.rec = a.rec
	}
}

// Recorder exposes the API's trace recorder for the -debug-addr listener.
func (a *API) Recorder() *obs.Recorder { return a.rec }

// APIOptions hardens the ingest surface. The query endpoints stay open —
// they are read-mostly and cheap; telemetry ingestion mutates history that
// re-clustering trusts, so it gets the auth and the throttle.
type APIOptions struct {
	// IngestToken, when non-empty, requires POST /v1/{dc}/telemetry callers
	// to present "Authorization: Bearer <token>"; everything else is 401.
	IngestToken string
	// IngestRatePerSource, when positive, caps telemetry POSTs per source IP
	// (token bucket, requests/second); excess requests get 429.
	IngestRatePerSource float64
	// IngestBurst is the token bucket depth. Zero means 2 seconds' worth
	// (minimum 1).
	IngestBurst int
	// TrustedProxies lists addresses (IPs or CIDRs) of harvestrouter
	// instances fronting this daemon. For connections from one of them, the
	// per-source rate limit keys on X-Forwarded-For (the original client)
	// instead of the connection's remote address — otherwise every emitter
	// proxied through the router would share the router's one bucket. The
	// header is only honored from these addresses: X-Forwarded-For is
	// client-controlled, so trusting it from arbitrary peers would let a
	// directly connected abuser mint a fresh bucket per request.
	TrustedProxies []string
}

// apiEndpoints names the instrumented endpoints, in /metrics display order.
var apiEndpoints = []string{"datacenters", "classes", "server_class", "select", "renew", "release", "place", "blocks", "reimage", "telemetry", "leases", "promote", "healthz", "metrics"}

// NewAPI wraps a service in its HTTP handler with default (open) options.
func NewAPI(svc *Service) *API { return NewAPIWith(svc, APIOptions{}) }

// NewAPIWith wraps a service in its HTTP handler with ingest hardening.
func NewAPIWith(svc *Service, opts APIOptions) *API {
	a := &API{
		svc:       svc,
		mux:       http.NewServeMux(),
		start:     time.Now(),
		opts:      opts,
		endpoints: make(map[string]*EndpointMetrics, len(apiEndpoints)),
		rec:       obs.NewRecorder(obs.DefaultRingTraces),
	}
	if opts.IngestRatePerSource > 0 {
		burst := opts.IngestBurst
		if burst <= 0 {
			burst = int(2 * opts.IngestRatePerSource)
			if burst < 1 {
				burst = 1
			}
		}
		a.ingestLimiter = newRateLimiter(opts.IngestRatePerSource, float64(burst))
	}
	for _, s := range opts.TrustedProxies {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		if p, err := netip.ParsePrefix(s); err == nil {
			a.trustedProxies = append(a.trustedProxies, p.Masked())
			continue
		}
		if ip, err := netip.ParseAddr(s); err == nil {
			ip = ip.Unmap()
			a.trustedProxies = append(a.trustedProxies, netip.PrefixFrom(ip, ip.BitLen()))
			continue
		}
		// Skipping fails closed — the header just is not honored from here.
		slogger.Warn("ignoring invalid trusted proxy", "proxy", s)
	}
	for _, name := range apiEndpoints {
		a.endpoints[name] = &EndpointMetrics{}
	}
	a.mux.HandleFunc("GET /v1/datacenters", a.instrument("datacenters", a.handleDatacenters))
	a.mux.HandleFunc("GET /v1/{dc}/classes", a.instrument("classes", a.handleClasses))
	a.mux.HandleFunc("GET /v1/{dc}/servers/{id}/class", a.instrument("server_class", a.handleServerClass))
	a.mux.HandleFunc("POST /v1/{dc}/select", a.instrument("select", a.handleSelect))
	a.mux.HandleFunc("POST /v1/{dc}/renew", a.instrument("renew", a.handleRenew))
	a.mux.HandleFunc("POST /v1/{dc}/release", a.instrument("release", a.handleRelease))
	a.mux.HandleFunc("POST /v1/{dc}/place", a.instrument("place", a.handlePlace))
	a.mux.HandleFunc("POST /v1/{dc}/blocks", a.instrument("blocks", a.handleBlocks))
	a.mux.HandleFunc("POST /v1/{dc}/reimage", a.instrument("reimage", a.handleReimage))
	a.mux.HandleFunc("POST /v1/{dc}/telemetry", a.instrument("telemetry", a.handleTelemetry))
	a.mux.HandleFunc("GET /v1/{dc}/leases", a.instrument("leases", a.handleLeases))
	a.mux.HandleFunc("POST /v1/promote", a.instrument("promote", a.handlePromote))
	a.mux.HandleFunc("GET /healthz", a.instrument("healthz", a.handleHealthz))
	a.mux.HandleFunc("GET /metrics", a.instrument("metrics", a.handleMetrics))
	return a
}

// ServeHTTP implements http.Handler.
func (a *API) ServeHTTP(w http.ResponseWriter, r *http.Request) { a.mux.ServeHTTP(w, r) }

// statusWriter captures the response status for instrumentation.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

var statusWriters = sync.Pool{New: func() any { return &statusWriter{} }}

// traceKey carries the request's *obs.Trace through the context; handlers
// that record extra spans or metadata fetch it with traceFrom.
type traceKey struct{}

func traceFrom(ctx context.Context) *obs.Trace {
	tr, _ := ctx.Value(traceKey{}).(*obs.Trace)
	return tr
}

func (a *API) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	m := a.endpoints[name]
	// The data-plane endpoints get request traces; the scrape endpoints stay
	// out of the ring so a tight Prometheus or health poll cannot churn real
	// request traces out of it.
	traced := name != "healthz" && name != "metrics"
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := statusWriters.Get().(*statusWriter)
		sw.ResponseWriter, sw.status = w, http.StatusOK
		var tr *obs.Trace
		if traced {
			// Adopt the caller's trace id (the router's, or a client's own) or
			// assign one, and echo it so the chain is followable end to end.
			id, _ := obs.ParseTraceID(r.Header.Get(obs.TraceHeader))
			if tr = a.rec.Begin(id, obs.DialectJSON, name, r.PathValue("dc")); tr != nil {
				w.Header().Set(obs.TraceHeader, obs.FormatTraceID(tr.ID))
				r = r.WithContext(context.WithValue(r.Context(), traceKey{}, tr))
			}
		}
		h(sw, r)
		status := sw.status
		m.Observe(time.Since(start), status)
		sw.ResponseWriter = nil
		statusWriters.Put(sw)
		tr.Finish(status)
	}
}

// rateLimiter is a per-source token bucket. Telemetry ingestion is far off
// the hot query path (batched POSTs at emitter cadence), so one small mutex
// over a keyed map is plenty.
type rateLimiter struct {
	mu      sync.Mutex
	rate    float64 // tokens per second
	burst   float64
	buckets map[string]*tokenBucket
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

// maxRateLimiterSources caps the keyed map so a source-spoofing client
// cannot grow it without bound; at the cap the map resets, which at worst
// briefly re-admits throttled sources.
const maxRateLimiterSources = 1 << 16

func newRateLimiter(rate, burst float64) *rateLimiter {
	return &rateLimiter{rate: rate, burst: burst, buckets: make(map[string]*tokenBucket)}
}

func (rl *rateLimiter) allow(source string, now time.Time) bool {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	b := rl.buckets[source]
	if b == nil {
		if len(rl.buckets) >= maxRateLimiterSources {
			rl.buckets = make(map[string]*tokenBucket)
		}
		b = &tokenBucket{tokens: rl.burst, last: now}
		rl.buckets[source] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * rl.rate
		if b.tokens > rl.burst {
			b.tokens = rl.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// sourceKey extracts the per-source rate-limit key: the client IP without
// the ephemeral port, so reconnects share one bucket.
func sourceKey(remoteAddr string) string {
	if host, _, err := net.SplitHostPort(remoteAddr); err == nil {
		return host
	}
	return remoteAddr
}

// sourceKeyFor resolves the rate-limit key for a request: the X-Forwarded-For
// client (first hop — what harvestrouter sets) when the connection comes from
// a configured trusted proxy, the connection's remote address otherwise.
func (a *API) sourceKeyFor(r *http.Request) string {
	if len(a.trustedProxies) > 0 && a.fromTrustedProxy(r.RemoteAddr) {
		if fwd := r.Header.Get("X-Forwarded-For"); fwd != "" {
			if first, _, ok := strings.Cut(fwd, ","); ok {
				fwd = first
			}
			return sourceKey(strings.TrimSpace(fwd))
		}
	}
	return sourceKey(r.RemoteAddr)
}

// fromTrustedProxy reports whether the connection's peer is one of the
// configured router addresses.
func (a *API) fromTrustedProxy(remoteAddr string) bool {
	addr, err := netip.ParseAddr(sourceKey(remoteAddr))
	if err != nil {
		return false
	}
	for _, p := range a.trustedProxies {
		if p.Contains(addr.Unmap()) {
			return true
		}
	}
	return false
}

var bodyBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// maxBodyBytes caps POST bodies: the select/place requests are tens of
// bytes, so 1 MiB is generous while keeping an abusive client from growing
// the pooled buffers without bound.
const maxBodyBytes = 1 << 20

// decodeBody reads and unmarshals a request body through a pooled buffer.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	buf := bodyBufs.Get().(*bytes.Buffer)
	buf.Reset()
	_, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err == nil {
		err = json.Unmarshal(buf.Bytes(), v)
	}
	// Never park an abnormally grown buffer in the pool.
	if buf.Cap() <= 64<<10 {
		bodyBufs.Put(buf)
	}
	return err
}

// writeJSON and writeError are the serving tier's shared response
// convention — pre-serialized, explicit Content-Length, never chunked, so
// pipelined clients (cmd/loadgen) parse harvestd and harvestrouter
// responses identically. The one implementation lives in internal/httpjson.
func writeJSON(w http.ResponseWriter, status int, v any) { httpjson.Write(w, status, v) }

func writeError(w http.ResponseWriter, status int, msg string) {
	httpjson.WriteError(w, status, msg)
}

// snapshotFor resolves the {dc} path segment, writing the 404 itself when the
// datacenter is unknown.
func (a *API) snapshotFor(w http.ResponseWriter, r *http.Request) (*Snapshot, bool) {
	dc := r.PathValue("dc")
	snap, ok := a.svc.Snapshot(dc)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown datacenter "+strconv.Quote(dc))
		return nil, false
	}
	return snap, true
}

type datacentersResponse struct {
	Datacenters []string `json:"datacenters"`
	// BinaryAddr, when present, is the host:port of this node's binary
	// frame listener (internal/wire) — the discovery hook -proto binary
	// clients use. Absent means the node speaks JSON only.
	BinaryAddr string `json:"binary_addr,omitempty"`
}

func (a *API) handleDatacenters(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, datacentersResponse{
		Datacenters: a.svc.Datacenters(),
		BinaryAddr:  a.binaryAddr,
	})
}

// classInfo is the wire form of one utilization class plus its live usage.
type classInfo struct {
	ID                 int     `json:"id"`
	Pattern            string  `json:"pattern"`
	NumTenants         int     `json:"num_tenants"`
	NumServers         int     `json:"num_servers"`
	AvgUtilization     float64 `json:"avg_utilization"`
	PeakUtilization    float64 `json:"peak_utilization"`
	CurrentUtilization float64 `json:"current_utilization"`
	// AllocatedCores is the class's live allocation-ledger occupancy: cores
	// currently promised to selects that have not released (or expired).
	AllocatedCores float64 `json:"allocated_cores"`
	// ExampleServer is one member server, a convenient probe target for
	// /servers/{id}/class clients (the load generator uses it to seed its
	// server pool).
	ExampleServer int64 `json:"example_server"`
}

type classesResponse struct {
	Datacenter  string      `json:"datacenter"`
	Generation  uint64      `json:"generation"`
	AsOfSeconds float64     `json:"as_of_seconds"`
	Classes     []classInfo `json:"classes"`
}

// classInfoOf renders one class against a usage view — the live one on the
// query path (Service.UsageFor), so CurrentUtilization tracks ingested
// telemetry between refreshes. allocMillis is the ledger's per-class
// occupancy when its generation matches the snapshot's (nil otherwise).
func classInfoOf(cls *core.UtilizationClass, usage map[core.ClassID]core.ClassUsage, allocMillis []int64) classInfo {
	info := classInfo{
		ID:                 int(cls.ID),
		Pattern:            cls.Pattern.String(),
		NumTenants:         len(cls.Tenants),
		NumServers:         cls.NumServers(),
		AvgUtilization:     cls.AvgUtilization,
		PeakUtilization:    cls.PeakUtilization,
		CurrentUtilization: usage[cls.ID].CurrentUtilization,
		ExampleServer:      -1,
	}
	if i := int(cls.ID); i >= 0 && i < len(allocMillis) {
		info.AllocatedCores = ledger.CoresOf(allocMillis[i])
	}
	if len(cls.Servers) > 0 {
		info.ExampleServer = int64(cls.Servers[0])
	}
	return info
}

// ledgerAllocFor fetches the per-class occupancy aligned to a snapshot's
// class ids, or nil while a re-key is in flight. Lock-free: this runs on the
// hot query paths, which must not serialize against lease bookkeeping.
func (a *API) ledgerAllocFor(snap *Snapshot) []int64 {
	gen, alloc, ok := a.svc.LedgerOccupancy(snap.Datacenter)
	if !ok || gen != snap.Generation {
		return nil
	}
	return alloc
}

func (a *API) handleClasses(w http.ResponseWriter, r *http.Request) {
	snap, ok := a.snapshotFor(w, r)
	if !ok {
		return
	}
	usage := a.svc.UsageFor(snap)
	alloc := a.ledgerAllocFor(snap)
	resp := classesResponse{
		Datacenter:  snap.Datacenter,
		Generation:  snap.Generation,
		AsOfSeconds: snap.AsOf.Seconds(),
		Classes:     make([]classInfo, 0, len(snap.Clustering.Classes)),
	}
	for _, cls := range snap.Clustering.Classes {
		resp.Classes = append(resp.Classes, classInfoOf(cls, usage, alloc))
	}
	writeJSON(w, http.StatusOK, resp)
}

type serverClassResponse struct {
	Datacenter string    `json:"datacenter"`
	Generation uint64    `json:"generation"`
	Server     int64     `json:"server"`
	Class      classInfo `json:"class"`
}

func (a *API) handleServerClass(w http.ResponseWriter, r *http.Request) {
	snap, ok := a.snapshotFor(w, r)
	if !ok {
		return
	}
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "server id must be an integer")
		return
	}
	cls, ok := snap.ClassOfServer(tenant.ServerID(id))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown server "+strconv.FormatInt(id, 10)+" in "+snap.Datacenter)
		return
	}
	writeJSON(w, http.StatusOK, serverClassResponse{
		Datacenter: snap.Datacenter,
		Generation: snap.Generation,
		Server:     id,
		Class:      classInfoOf(cls, a.svc.UsageFor(snap), a.ledgerAllocFor(snap)),
	})
}

// telemetrySample is the wire form of one ingested observation. Exactly one
// of tenant / server must be present (pointers distinguish "absent" from the
// valid id 0); at_seconds is an offset on the telemetry clock and defaults
// to one slot after the subject's latest sample.
type telemetrySample struct {
	Tenant      *int64  `json:"tenant"`
	Server      *int64  `json:"server"`
	AtSeconds   float64 `json:"at_seconds"`
	Utilization float64 `json:"utilization"`
}

type telemetryRequest struct {
	Samples []telemetrySample `json:"samples"`
}

// maxTelemetryOffsetSeconds bounds a sample's telemetry-clock offset (~31
// years — far beyond any replay). It must stay well below the ~292-year
// time.Duration ceiling: the float64→int64 nanosecond conversion on an
// out-of-range value is implementation-defined and would corrupt the
// store's monotonic clock. Anything larger is a client bug, rejected per
// sample.
const maxTelemetryOffsetSeconds = 1e9

type telemetryResponse struct {
	Datacenter     string  `json:"datacenter"`
	Accepted       int     `json:"accepted"`
	Rejected       int     `json:"rejected"`
	HorizonSeconds float64 `json:"horizon_seconds"`
}

func (a *API) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	if !httpjson.BearerAuthorized(r, a.opts.IngestToken) {
		writeError(w, http.StatusUnauthorized, "missing or invalid ingest token")
		return
	}
	if a.ingestLimiter != nil && !a.ingestLimiter.allow(a.sourceKeyFor(r), time.Now()) {
		writeError(w, http.StatusTooManyRequests, "ingest rate limit exceeded for this source")
		return
	}
	dc := r.PathValue("dc")
	if _, ok := a.svc.Snapshot(dc); !ok {
		writeError(w, http.StatusNotFound, "unknown datacenter "+strconv.Quote(dc))
		return
	}
	var req telemetryRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if len(req.Samples) == 0 {
		writeError(w, http.StatusBadRequest, "no samples")
		return
	}
	samples := make([]IngestSample, len(req.Samples))
	for i, s := range req.Samples {
		// Written so NaN fails too: both comparisons are false for NaN, so
		// only finite offsets inside the bound proceed to the conversion.
		if !(s.AtSeconds >= 0 && s.AtSeconds <= maxTelemetryOffsetSeconds) {
			// An absurd offset would corrupt the store's telemetry clock;
			// poison the sample (no subject) so Ingest counts it rejected.
			samples[i] = IngestSample{Tenant: -1, Server: -1}
			continue
		}
		samples[i] = IngestSample{
			Tenant: -1,
			Server: -1,
			At:     time.Duration(s.AtSeconds * float64(time.Second)),
			Value:  s.Utilization,
		}
		if s.Tenant != nil {
			samples[i].Tenant = tenant.ID(*s.Tenant)
		}
		if s.Server != nil {
			samples[i].Server = tenant.ServerID(*s.Server)
		}
	}
	res, err := a.svc.Ingest(dc, samples)
	if err != nil {
		if errors.Is(err, ErrFollower) {
			writeError(w, http.StatusServiceUnavailable, err.Error())
			return
		}
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, telemetryResponse{
		Datacenter:     dc,
		Accepted:       res.Accepted,
		Rejected:       res.Rejected,
		HorizonSeconds: res.Horizon.Seconds(),
	})
}

// selectRequest asks for classes to host a job. The job's length category
// comes either from an explicit type ("short"/"medium"/"long") or, as in the
// paper, from its previous run time classified against the thresholds; an
// absent type and absent last run means medium (the first-guess rule). A
// satisfiable select reserves its cores in the allocation ledger and returns
// a lease: the headroom is gone for everyone else until the caller POSTs
// /release (or the lease expires after hold_seconds / the server default).
// dry_run asks the old advisory behaviour — look, don't hold.
type selectRequest struct {
	JobType            string  `json:"job_type"`
	LastRunSeconds     float64 `json:"last_run_seconds"`
	MaxConcurrentCores float64 `json:"max_concurrent_cores"`
	HoldSeconds        float64 `json:"hold_seconds"`
	DryRun             bool    `json:"dry_run"`
	// JobID and Owner are optional operator-facing metadata: they ride on the
	// lease through the ledger and surface on GET /v1/{dc}/leases and
	// /debug/traces, answering "whose lease is this" without a side channel.
	// They never influence selection.
	JobID string `json:"job_id,omitempty"`
	Owner string `json:"owner,omitempty"`
}

// maxLeaseMetaLen caps job_id/owner: identification tags, not a document
// store riding on the ledger.
const maxLeaseMetaLen = 128

type selectResponse struct {
	Datacenter  string    `json:"datacenter"`
	Generation  uint64    `json:"generation"`
	JobType     string    `json:"job_type"`
	Satisfiable bool      `json:"satisfiable"`
	Classes     []int     `json:"classes"`
	Headrooms   []float64 `json:"headrooms"`
	// Lease identifies the reservation (0 on dry-run or unsatisfiable
	// selects); Granted is the cores reserved per entry of Classes.
	Lease            uint64    `json:"lease,omitempty"`
	Granted          []float64 `json:"granted,omitempty"`
	ExpiresInSeconds float64   `json:"expires_in_seconds,omitempty"`
}

// maxHoldSeconds caps a client-requested lease TTL at one hour: a "forever"
// hold must be an operator decision (server-side LeaseTTL), not a request
// parameter.
const maxHoldSeconds = 3600

func (a *API) handleSelect(w http.ResponseWriter, r *http.Request) {
	snap, ok := a.snapshotFor(w, r)
	if !ok {
		return
	}
	var req selectRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if req.MaxConcurrentCores <= 0 {
		writeError(w, http.StatusBadRequest, "max_concurrent_cores must be positive")
		return
	}
	// NaN/negative/over-cap holds are client bugs, rejected explicitly.
	if !(req.HoldSeconds >= 0 && req.HoldSeconds <= maxHoldSeconds) {
		writeError(w, http.StatusBadRequest,
			"hold_seconds must be in [0, "+strconv.Itoa(maxHoldSeconds)+"]")
		return
	}
	if len(req.JobID) > maxLeaseMetaLen || len(req.Owner) > maxLeaseMetaLen {
		writeError(w, http.StatusBadRequest,
			"job_id and owner must be at most "+strconv.Itoa(maxLeaseMetaLen)+" bytes")
		return
	}
	var jobType core.JobType
	switch req.JobType {
	case "short":
		jobType = core.JobShort
	case "medium":
		jobType = core.JobMedium
	case "long":
		jobType = core.JobLong
	case "":
		jobType = core.ClassifyLength(time.Duration(req.LastRunSeconds*float64(time.Second)), snap.Thresholds)
	default:
		writeError(w, http.StatusBadRequest, "job_type must be short, medium or long")
		return
	}
	job := core.JobRequest{Type: jobType, MaxConcurrentCores: req.MaxConcurrentCores}

	resp := selectResponse{JobType: jobType.String()}
	if req.DryRun {
		sel := a.svc.SelectOn(snap, job)
		resp.Datacenter = snap.Datacenter
		resp.Generation = snap.Generation
		resp.Satisfiable = !sel.Empty()
		resp.Classes = classIDsOf(sel.Classes)
		resp.Headrooms = sel.Headrooms
	} else {
		tr := traceFrom(r.Context())
		tr.SetMeta(req.JobID, req.Owner)
		grant, at, err := a.svc.SelectReserveTraced(snap.Datacenter, job,
			time.Duration(req.HoldSeconds*float64(time.Second)),
			ledger.Meta{JobID: req.JobID, Owner: req.Owner}, tr)
		if err != nil {
			if errors.Is(err, ErrFollower) {
				// Reserving selects are writes; the router pins them to the
				// primary, so landing here means a client went direct. 503 is
				// retryable against the right node.
				writeError(w, http.StatusServiceUnavailable, err.Error())
				return
			}
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		// The reservation may have re-run against a newer snapshot than the
		// one the route resolved; report the generation it actually landed on.
		resp.Datacenter = at.Datacenter
		resp.Generation = at.Generation
		resp.Satisfiable = grant.Reserved()
		resp.Classes = classIDsOf(grant.Selection.Classes)
		resp.Headrooms = grant.Selection.Headrooms
		resp.Lease = grant.Lease
		resp.Granted = grant.Granted
		if !grant.ExpiresAt.IsZero() {
			resp.ExpiresInSeconds = time.Until(grant.ExpiresAt).Seconds()
		}
	}
	if resp.Headrooms == nil {
		resp.Headrooms = []float64{}
	}
	writeJSON(w, http.StatusOK, resp)
}

func classIDsOf(ids []core.ClassID) []int {
	out := make([]int, len(ids))
	for i, id := range ids {
		out[i] = int(id)
	}
	return out
}

// leaseInfo is one live lease on GET /v1/{dc}/leases.
type leaseInfo struct {
	Lease            uint64    `json:"lease"`
	JobID            string    `json:"job_id,omitempty"`
	Owner            string    `json:"owner,omitempty"`
	ExpiresInSeconds float64   `json:"expires_in_seconds,omitempty"`
	TotalCores       float64   `json:"total_cores"`
	Classes          []int     `json:"classes"`
	Cores            []float64 `json:"cores"`
}

type leasesResponse struct {
	Datacenter string      `json:"datacenter"`
	Total      int         `json:"total"`
	Offset     int         `json:"offset"`
	Leases     []leaseInfo `json:"leases"`
}

// maxLeasePage caps one page of GET /v1/{dc}/leases.
const maxLeasePage = 1000

// handleLeases pages through the DC's live leases — the operator's answer to
// "who is holding the harvested cores right now". It shares the ingest bearer
// token: lease metadata names jobs and owners, which is more than the open
// query surface should reveal.
func (a *API) handleLeases(w http.ResponseWriter, r *http.Request) {
	if !httpjson.BearerAuthorized(r, a.opts.IngestToken) {
		writeError(w, http.StatusUnauthorized, "missing or invalid bearer token")
		return
	}
	dc := r.PathValue("dc")
	offset, limit := 0, 100
	if s := r.URL.Query().Get("offset"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, "offset must be a non-negative integer")
			return
		}
		offset = v
	}
	if s := r.URL.Query().Get("limit"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 || v > maxLeasePage {
			writeError(w, http.StatusBadRequest,
				"limit must be in [1, "+strconv.Itoa(maxLeasePage)+"]")
			return
		}
		limit = v
	}
	page, total, ok := a.svc.Leases(dc, offset, limit)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown datacenter "+strconv.Quote(dc))
		return
	}
	resp := leasesResponse{Datacenter: dc, Total: total, Offset: offset, Leases: make([]leaseInfo, len(page))}
	for i, ls := range page {
		li := leaseInfo{
			Lease:      ls.ID,
			JobID:      ls.Meta.JobID,
			Owner:      ls.Meta.Owner,
			TotalCores: ledger.CoresOf(ls.TotalMillis()),
			Classes:    make([]int, len(ls.Grants)),
			Cores:      make([]float64, len(ls.Grants)),
		}
		if !ls.ExpiresAt.IsZero() {
			li.ExpiresInSeconds = time.Until(ls.ExpiresAt).Seconds()
		}
		for j, g := range ls.Grants {
			li.Classes[j] = int(g.Class)
			li.Cores[j] = ledger.CoresOf(g.Millis)
		}
		resp.Leases[i] = li
	}
	writeJSON(w, http.StatusOK, resp)
}

// renewRequest extends a live lease's expiry deadline. No cores move: the
// grants and the conservation books are untouched, only the deadline the
// sweeper enforces is rescheduled. hold_seconds follows select's convention —
// 0 (or absent) means the server-side default TTL.
type renewRequest struct {
	Lease       uint64  `json:"lease"`
	HoldSeconds float64 `json:"hold_seconds"`
}

type renewResponse struct {
	Datacenter       string  `json:"datacenter"`
	Lease            uint64  `json:"lease"`
	TotalCores       float64 `json:"total_cores"`
	ExpiresInSeconds float64 `json:"expires_in_seconds,omitempty"`
}

func (a *API) handleRenew(w http.ResponseWriter, r *http.Request) {
	dc := r.PathValue("dc")
	if _, ok := a.svc.Snapshot(dc); !ok {
		writeError(w, http.StatusNotFound, "unknown datacenter "+strconv.Quote(dc))
		return
	}
	var req renewRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if req.Lease == 0 {
		writeError(w, http.StatusBadRequest, "lease must be a nonzero id")
		return
	}
	if !(req.HoldSeconds >= 0 && req.HoldSeconds <= maxHoldSeconds) {
		writeError(w, http.StatusBadRequest,
			"hold_seconds must be in [0, "+strconv.Itoa(maxHoldSeconds)+"]")
		return
	}
	lease, err := a.svc.Renew(dc, req.Lease, time.Duration(req.HoldSeconds*float64(time.Second)))
	if err != nil {
		if errors.Is(err, ErrFollower) {
			writeError(w, http.StatusServiceUnavailable, err.Error())
			return
		}
		if errors.Is(err, ledger.ErrUnknownLease) {
			// Never issued, already released, or reclaimed by the expiry
			// sweep — a renew cannot resurrect a lease, it can only extend
			// a live one.
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	resp := renewResponse{
		Datacenter: dc,
		Lease:      lease.ID,
		TotalCores: ledger.CoresOf(lease.TotalMillis()),
	}
	if !lease.ExpiresAt.IsZero() {
		resp.ExpiresInSeconds = time.Until(lease.ExpiresAt).Seconds()
	}
	writeJSON(w, http.StatusOK, resp)
}

// releaseRequest returns a lease's cores to their classes.
type releaseRequest struct {
	Lease uint64 `json:"lease"`
}

type releaseResponse struct {
	Datacenter    string    `json:"datacenter"`
	Lease         uint64    `json:"lease"`
	ReleasedCores float64   `json:"released_cores"`
	Classes       []int     `json:"classes"`
	Cores         []float64 `json:"cores"`
}

func (a *API) handleRelease(w http.ResponseWriter, r *http.Request) {
	dc := r.PathValue("dc")
	if _, ok := a.svc.Snapshot(dc); !ok {
		writeError(w, http.StatusNotFound, "unknown datacenter "+strconv.Quote(dc))
		return
	}
	var req releaseRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if req.Lease == 0 {
		writeError(w, http.StatusBadRequest, "lease must be a nonzero id")
		return
	}
	lease, err := a.svc.Release(dc, req.Lease)
	if err != nil {
		if errors.Is(err, ErrFollower) {
			writeError(w, http.StatusServiceUnavailable, err.Error())
			return
		}
		if errors.Is(err, ledger.ErrUnknownLease) {
			// Never issued, already released, or reclaimed by the expiry
			// sweep — idempotent releases by retrying clients land here.
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	resp := releaseResponse{
		Datacenter:    dc,
		Lease:         lease.ID,
		ReleasedCores: ledger.CoresOf(lease.TotalMillis()),
		Classes:       make([]int, len(lease.Grants)),
		Cores:         make([]float64, len(lease.Grants)),
	}
	for i, g := range lease.Grants {
		resp.Classes[i] = int(g.Class)
		resp.Cores[i] = ledger.CoresOf(g.Millis)
	}
	writeJSON(w, http.StatusOK, resp)
}

// maxReplication bounds a place request. The paper evaluates R=3 and R=4;
// 64 leaves room for exotic experiments while keeping a client from forcing
// huge allocations and O(R·servers) placement scans per request.
const maxReplication = 64

// placeRequest asks for replica targets for a new block. Writer is the
// creating server (optional; -1 or absent means an external writer).
type placeRequest struct {
	Replication        int   `json:"replication"`
	Writer             int64 `json:"writer"`
	RelaxedEnvironment bool  `json:"relaxed_environment"`
}

type placeResponse struct {
	Datacenter string  `json:"datacenter"`
	Generation uint64  `json:"generation"`
	Replicas   []int64 `json:"replicas"`
}

func (a *API) handlePlace(w http.ResponseWriter, r *http.Request) {
	snap, ok := a.snapshotFor(w, r)
	if !ok {
		return
	}
	req := placeRequest{Writer: -1}
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if req.Replication <= 0 || req.Replication > maxReplication {
		writeError(w, http.StatusBadRequest,
			"replication must be in [1, "+strconv.Itoa(maxReplication)+"]")
		return
	}
	replicas, err := a.svc.PlaceOn(snap, core.PlacementConstraints{
		Replication:        req.Replication,
		Writer:             tenant.ServerID(req.Writer),
		EnforceEnvironment: !req.RelaxedEnvironment,
	})
	if err != nil {
		// Placement exhausted the diversity space: a conflict with current
		// cluster state, not a malformed request.
		writeError(w, http.StatusConflict, err.Error())
		return
	}
	resp := placeResponse{
		Datacenter: snap.Datacenter,
		Generation: snap.Generation,
		Replicas:   make([]int64, len(replicas)),
	}
	for i, s := range replicas {
		resp.Replicas[i] = int64(s)
	}
	writeJSON(w, http.StatusOK, resp)
}

// blocksRequest creates a block: replication replicas placed via Alg. 2
// against the current snapshot and recorded in the block ledger, which will
// keep the block at R live replicas through reimaging events and re-keys.
type blocksRequest struct {
	Replication        int   `json:"replication"`
	Writer             int64 `json:"writer"`
	RelaxedEnvironment bool  `json:"relaxed_environment"`
}

type blocksResponse struct {
	Datacenter string  `json:"datacenter"`
	Generation uint64  `json:"generation"`
	Block      uint64  `json:"block"`
	Replicas   []int64 `json:"replicas"`
}

func (a *API) handleBlocks(w http.ResponseWriter, r *http.Request) {
	dc := r.PathValue("dc")
	if _, ok := a.svc.Snapshot(dc); !ok {
		writeError(w, http.StatusNotFound, "unknown datacenter "+strconv.Quote(dc))
		return
	}
	req := blocksRequest{Writer: -1}
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if req.Replication <= 0 || req.Replication > maxReplication {
		writeError(w, http.StatusBadRequest,
			"replication must be in [1, "+strconv.Itoa(maxReplication)+"]")
		return
	}
	bp, err := a.svc.CreateBlock(dc, core.PlacementConstraints{
		Replication:        req.Replication,
		Writer:             tenant.ServerID(req.Writer),
		EnforceEnvironment: !req.RelaxedEnvironment,
	})
	if err != nil {
		if errors.Is(err, ErrFollower) {
			// Block creation moves the durability books; the router pins it to
			// the primary, so landing here means a client went direct.
			writeError(w, http.StatusServiceUnavailable, err.Error())
			return
		}
		// Placement exhausted the diversity space (or kept racing refreshes):
		// a conflict with current cluster state, not a malformed request.
		writeError(w, http.StatusConflict, err.Error())
		return
	}
	resp := blocksResponse{
		Datacenter: dc,
		Generation: bp.Generation,
		Block:      bp.Block,
		Replicas:   make([]int64, len(bp.Replicas)),
	}
	for i, s := range bp.Replicas {
		resp.Replicas[i] = int64(s)
	}
	writeJSON(w, http.StatusOK, resp)
}

// reimageRequest ingests one reimaging event: the server's harvested storage
// is wiped (the tenant re-deployed, per the paper's reimaging distributions),
// so every block replica it held is lost and must be re-replicated. The
// pointer distinguishes an absent server from the valid id 0.
type reimageRequest struct {
	Server *int64 `json:"server"`
}

type reimageResponse struct {
	Datacenter string `json:"datacenter"`
	Server     int64  `json:"server"`
	// Lost is how many replicas this event hit; Pending is the DC's total
	// replica slots currently awaiting re-replication.
	Lost    int   `json:"lost"`
	Pending int64 `json:"pending"`
}

// handleReimage shares the ingest bearer token: reimaging events mutate the
// durability books the same way telemetry mutates the history, so the event
// stream gets the same auth.
func (a *API) handleReimage(w http.ResponseWriter, r *http.Request) {
	if !httpjson.BearerAuthorized(r, a.opts.IngestToken) {
		writeError(w, http.StatusUnauthorized, "missing or invalid ingest token")
		return
	}
	dc := r.PathValue("dc")
	if _, ok := a.svc.Snapshot(dc); !ok {
		writeError(w, http.StatusNotFound, "unknown datacenter "+strconv.Quote(dc))
		return
	}
	var req reimageRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if req.Server == nil {
		writeError(w, http.StatusBadRequest, "server is required")
		return
	}
	lost, err := a.svc.ReimageServer(dc, tenant.ServerID(*req.Server))
	if err != nil {
		if errors.Is(err, ErrFollower) {
			writeError(w, http.StatusServiceUnavailable, err.Error())
			return
		}
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	resp := reimageResponse{Datacenter: dc, Server: *req.Server, Lost: lost}
	if st, ok := a.svc.BlockStats(dc); ok {
		resp.Pending = st.Pending
	}
	writeJSON(w, http.StatusOK, resp)
}

// promoteResponse reports a promotion attempt. Promoted is false when the
// node already is (or just became) primary — the call is idempotent, so a
// router retrying against a winner it already promoted gets a clean 200.
type promoteResponse struct {
	Promoted bool   `json:"promoted"`
	Role     string `json:"role"`
	NodeID   string `json:"node_id"`
}

// handlePromote turns a follower into a primary: it detaches from the
// replication stream, keeps the replicated ledger (lease conservation
// survives the handoff), and starts the refresh and sweep loops. The router
// POSTs this when a primary stops beating; it shares the ingest bearer token
// because an open promotion endpoint would let anyone split the brain.
func (a *API) handlePromote(w http.ResponseWriter, r *http.Request) {
	if !httpjson.BearerAuthorized(r, a.opts.IngestToken) {
		writeError(w, http.StatusUnauthorized, "missing or invalid bearer token")
		return
	}
	promoted := a.svc.Promote()
	writeJSON(w, http.StatusOK, promoteResponse{
		Promoted: promoted,
		Role:     a.svc.Role(),
		NodeID:   a.svc.NodeID(),
	})
}

type healthzResponse struct {
	Status      string `json:"status"`
	Datacenters int    `json:"datacenters"`
}

func (a *API) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthzResponse{Status: "ok", Datacenters: len(a.svc.Datacenters())})
}

// endpointStats is the wire form of one endpoint's counters.
type endpointStats struct {
	Requests uint64  `json:"requests"`
	Errors   uint64  `json:"errors"`
	MeanUs   float64 `json:"mean_us"`
	P50Us    uint64  `json:"p50_us"`
	P99Us    uint64  `json:"p99_us"`
	MaxUs    uint64  `json:"max_us"`
}

// shardStatsJSON is the wire form of one shard's snapshot state. Staleness
// of the live path is readable directly: generation + snapshot age say how
// old the characterization is, last_ingest_age_seconds says how long ago
// live telemetry last arrived (-1 = never, i.e. still serving the bootstrap
// window).
type shardStatsJSON struct {
	Generation           uint64  `json:"generation"`
	AgeSeconds           float64 `json:"age_seconds"`
	AsOfSeconds          float64 `json:"as_of_seconds"`
	BuildMs              float64 `json:"build_ms"`
	Refreshes            uint64  `json:"refreshes"`
	RefreshErrors        uint64  `json:"refresh_errors"`
	WarmRefreshes        uint64  `json:"warm_refreshes"`
	FullRebuilds         uint64  `json:"full_rebuilds"`
	Classes              int     `json:"classes"`
	Servers              int     `json:"servers"`
	Tenants              int     `json:"tenants"`
	IngestedSamples      uint64  `json:"ingested_samples"`
	LastIngestAgeSeconds float64 `json:"last_ingest_age_seconds"`
	PersistErrors        uint64  `json:"persist_errors"`
	EvictedTenants       uint64  `json:"evicted_tenants"`

	// Refresh latency over successful snapshot refreshes (recluster + rekey +
	// publish, excluding persistence I/O), and the most recent warm refresh's
	// incremental-work breakdown — how much of the DC the engine actually
	// touched.
	RefreshMeanUs float64            `json:"refresh_mean_us"`
	RefreshP99Us  uint64             `json:"refresh_p99_us"`
	RefreshMaxUs  uint64             `json:"refresh_max_us"`
	Recluster     reclusterStatsJSON `json:"recluster"`

	Ledger ledgerStatsJSON `json:"ledger"`
	// Blocks is the block-placement ledger's books. All counts are exact
	// whole replicas so the durability invariants
	//
	//	placed + pending == replica_slots
	//	lost == replaced + pending
	//
	// can be asserted without tolerance (the CI storage-smoke job does);
	// blockledger.Stats carries its own JSON tags.
	Blocks blockledger.Stats `json:"blocks"`
	// PlacementRelaxedTotal counts replica picks that fell back to ignoring
	// row/column diversity (the previously-silent §7 degradation);
	// RepairFailures counts re-replicator attempts that went back on the
	// queue without landing.
	PlacementRelaxedTotal uint64 `json:"placement_relaxed_total"`
	RepairFailures        uint64 `json:"repair_failures"`
}

// reclusterStatsJSON summarizes the last warm refresh's incremental work.
// All zeros until the first warm refresh (boot is a full build).
type reclusterStatsJSON struct {
	Tenants        int  `json:"tenants"`
	Quiet          int  `json:"quiet"`
	Drifted        int  `json:"drifted"`
	Reclassified   int  `json:"reclassified"`
	PatternChanged int  `json:"pattern_changed"`
	MovedTenants   int  `json:"moved_tenants"`
	ReusedClasses  int  `json:"reused_classes"`
	SplicedServers int  `json:"spliced_servers"`
	FullRebuild    bool `json:"full_rebuild"`
	// DriftThreshold is the warm path's current (auto-tuned) drift gate;
	// FullAgreement is the last full rebuild's warm-vs-oracle clustering
	// agreement in [0,1], or -1 while unmeasured.
	DriftThreshold float64 `json:"drift_threshold"`
	FullAgreement  float64 `json:"full_agreement"`
}

// ledgerStatsJSON is the allocation ledger's books on /metrics. The *_millis
// fields are exact integers so the conservation invariant
//
//	reserved_millis == released_millis + expired_millis + forfeited_millis + outstanding_millis
//
// can be asserted without a float tolerance (the CI smoke job does); the
// *_cores fields are the same numbers for humans. allocated_cores_by_class
// is the current occupancy, indexed by dense class id.
type ledgerStatsJSON struct {
	ActiveLeases          int       `json:"active_leases"`
	OutstandingCores      float64   `json:"outstanding_cores"`
	ReservedCores         float64   `json:"reserved_cores"`
	ReleasedCores         float64   `json:"released_cores"`
	ExpiredCores          float64   `json:"expired_cores"`
	ForfeitedCores        float64   `json:"forfeited_cores"`
	OutstandingMillis     int64     `json:"outstanding_millis"`
	ReservedMillis        int64     `json:"reserved_millis"`
	ReleasedMillis        int64     `json:"released_millis"`
	ExpiredMillis         int64     `json:"expired_millis"`
	ForfeitedMillis       int64     `json:"forfeited_millis"`
	Reserves              uint64    `json:"reserves"`
	Releases              uint64    `json:"releases"`
	Renews                uint64    `json:"renews"`
	Expiries              uint64    `json:"expiries"`
	Conflicts             uint64    `json:"conflicts"`
	StaleRetries          uint64    `json:"stale_retries"`
	AllocatedCoresByClass []float64 `json:"allocated_cores_by_class"`
	// ReserveFloorMillisByClass is the admission floor withheld from each
	// class between refreshes — the live-utilization correction the ledger
	// subtracts from build-time capacity before admitting a reserve.
	ReserveFloorMillisByClass []int64 `json:"reserve_floor_millis_by_class"`
}

// binaryStatsJSON is the binary listener's /metrics section: the same
// per-endpoint counters as the JSON dialect, keyed by opcode name, plus
// connection accounting.
type binaryStatsJSON struct {
	Addr          string                   `json:"addr"`
	Accepted      uint64                   `json:"accepted_conns"`
	Open          int64                    `json:"open_conns"`
	FramingErrors uint64                   `json:"framing_errors"`
	Endpoints     map[string]endpointStats `json:"endpoints"`
}

// replicationStatsJSON is the node's replication role and stream health on
// /metrics. Follower fields (primary_id, apply lag, applied counters) are
// meaningful when role is "follower"; followers/frames_shipped when it is a
// primary shipping to someone.
type replicationStatsJSON struct {
	Role               string            `json:"role"`
	NodeID             string            `json:"node_id"`
	PrimaryID          string            `json:"primary_id,omitempty"`
	Connected          bool              `json:"connected"`
	Reconnects         uint64            `json:"reconnects"`
	Promotions         uint64            `json:"promotions"`
	SnapshotsApplied   uint64            `json:"snapshots_applied"`
	DeltasApplied      uint64            `json:"deltas_applied"`
	BeatsApplied       uint64            `json:"beats_applied"`
	ApplyLagMeanUs     float64           `json:"apply_lag_mean_us"`
	ApplyLagP99Us      uint64            `json:"apply_lag_p99_us"`
	ApplyLagMaxUs      uint64            `json:"apply_lag_max_us"`
	AppliedGenerations map[string]uint64 `json:"applied_generations,omitempty"`
	LastApplySeconds   float64           `json:"last_apply_seconds"`
	Followers          int               `json:"followers"`
	FramesShipped      uint64            `json:"frames_shipped"`
	ShipErrors         uint64            `json:"ship_errors"`
}

type metricsResponse struct {
	UptimeSeconds float64                   `json:"uptime_seconds"`
	TotalRequests uint64                    `json:"total_requests"`
	QPS           float64                   `json:"qps"`
	Endpoints     map[string]endpointStats  `json:"endpoints"`
	Binary        *binaryStatsJSON          `json:"binary,omitempty"`
	Replication   replicationStatsJSON      `json:"replication"`
	Datacenters   map[string]shardStatsJSON `json:"datacenters"`
}

func (a *API) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prometheus" {
		// Same numbers, scraper rendering; the JSON shape stays the source of
		// truth and is untouched.
		a.writeProm(w)
		return
	}
	uptime := time.Since(a.start).Seconds()
	resp := metricsResponse{
		UptimeSeconds: uptime,
		Endpoints:     make(map[string]endpointStats, len(a.endpoints)),
		Datacenters:   make(map[string]shardStatsJSON, len(a.svc.Datacenters())),
	}
	for _, name := range apiEndpoints {
		m := a.endpoints[name]
		resp.TotalRequests += m.Requests.Load()
		resp.Endpoints[name] = endpointStats{
			Requests: m.Requests.Load(),
			Errors:   m.Errors.Load(),
			MeanUs:   m.Latency.MeanMicros(),
			P50Us:    m.Latency.QuantileMicros(0.50),
			P99Us:    m.Latency.QuantileMicros(0.99),
			MaxUs:    m.Latency.MaxMicros(),
		}
	}
	if a.binary != nil {
		st := a.binary.Stats()
		bin := &binaryStatsJSON{
			Addr:          a.binaryAddr,
			Accepted:      st.Accepted,
			Open:          st.Open,
			FramingErrors: st.FramingErrors,
			Endpoints:     make(map[string]endpointStats, len(binaryOps)),
		}
		for _, op := range binaryOps {
			m := a.binary.endpointMetric(op)
			resp.TotalRequests += m.Requests.Load()
			bin.Endpoints[op.String()] = endpointStats{
				Requests: m.Requests.Load(),
				Errors:   m.Errors.Load(),
				MeanUs:   m.Latency.MeanMicros(),
				P50Us:    m.Latency.QuantileMicros(0.50),
				P99Us:    m.Latency.QuantileMicros(0.99),
				MaxUs:    m.Latency.MaxMicros(),
			}
		}
		resp.Binary = bin
	}
	if uptime > 0 {
		resp.QPS = float64(resp.TotalRequests) / uptime
	}
	rst := a.svc.ReplicationStats()
	resp.Replication = replicationStatsJSON{
		Role:               rst.Role,
		NodeID:             rst.NodeID,
		PrimaryID:          rst.PrimaryID,
		Connected:          rst.Connected,
		Reconnects:         rst.Reconnects,
		Promotions:         rst.Promotions,
		SnapshotsApplied:   rst.SnapshotsApplied,
		DeltasApplied:      rst.DeltasApplied,
		BeatsApplied:       rst.BeatsApplied,
		ApplyLagMeanUs:     rst.ApplyLagMeanUs,
		ApplyLagP99Us:      rst.ApplyLagP99Us,
		ApplyLagMaxUs:      rst.ApplyLagMaxUs,
		AppliedGenerations: rst.AppliedGenerations,
		LastApplySeconds:   rst.LastApplyAge.Seconds(),
		Followers:          rst.Followers,
		FramesShipped:      rst.FramesShipped,
		ShipErrors:         rst.ShipErrors,
	}
	for _, dc := range a.svc.Datacenters() {
		st, ok := a.svc.Stats(dc)
		if !ok {
			continue
		}
		ingestAge := -1.0
		if !st.LastIngest.IsZero() {
			ingestAge = time.Since(st.LastIngest).Seconds()
		}
		alloc := make([]float64, len(st.Ledger.AllocatedMillisByClass))
		for i, m := range st.Ledger.AllocatedMillisByClass {
			alloc[i] = ledger.CoresOf(m)
		}
		resp.Datacenters[dc] = shardStatsJSON{
			Generation:           st.Generation,
			AgeSeconds:           st.Age.Seconds(),
			AsOfSeconds:          st.AsOf.Seconds(),
			BuildMs:              float64(st.BuildDuration.Microseconds()) / 1000,
			Refreshes:            st.Refreshes,
			RefreshErrors:        st.RefreshErrors,
			WarmRefreshes:        st.WarmRefreshes,
			FullRebuilds:         st.FullRebuilds,
			Classes:              st.Classes,
			Servers:              st.Servers,
			Tenants:              st.Tenants,
			IngestedSamples:      st.IngestedSamples,
			LastIngestAgeSeconds: ingestAge,
			PersistErrors:        st.PersistErrors,
			EvictedTenants:       st.EvictedTenants,
			RefreshMeanUs:        st.RefreshMeanUs,
			RefreshP99Us:         st.RefreshP99Us,
			RefreshMaxUs:         st.RefreshMaxUs,
			Recluster: reclusterStatsJSON{
				Tenants:        st.Recluster.Tenants,
				Quiet:          st.Recluster.Quiet,
				Drifted:        len(st.Recluster.Drifted),
				Reclassified:   st.Recluster.Reclassified,
				PatternChanged: st.Recluster.PatternChanged,
				MovedTenants:   st.Recluster.MovedTenants,
				ReusedClasses:  st.Recluster.ReusedClasses,
				SplicedServers: st.Recluster.SplicedServers,
				FullRebuild:    st.Recluster.FullRebuild,
				DriftThreshold: st.Recluster.DriftThreshold,
				FullAgreement:  st.Recluster.FullAgreement,
			},
			Ledger: ledgerStatsJSON{
				ActiveLeases:              st.Ledger.ActiveLeases,
				OutstandingCores:          ledger.CoresOf(st.Ledger.OutstandingMillis),
				ReservedCores:             ledger.CoresOf(st.Ledger.ReservedMillis),
				ReleasedCores:             ledger.CoresOf(st.Ledger.ReleasedMillis),
				ExpiredCores:              ledger.CoresOf(st.Ledger.ExpiredMillis),
				ForfeitedCores:            ledger.CoresOf(st.Ledger.ForfeitedMillis),
				OutstandingMillis:         st.Ledger.OutstandingMillis,
				ReservedMillis:            st.Ledger.ReservedMillis,
				ReleasedMillis:            st.Ledger.ReleasedMillis,
				ExpiredMillis:             st.Ledger.ExpiredMillis,
				ForfeitedMillis:           st.Ledger.ForfeitedMillis,
				Reserves:                  st.Ledger.Reserves,
				Releases:                  st.Ledger.Releases,
				Renews:                    st.Ledger.Renews,
				Expiries:                  st.Ledger.Expiries,
				Conflicts:                 st.Ledger.Conflicts,
				StaleRetries:              st.StaleRetries,
				AllocatedCoresByClass:     alloc,
				ReserveFloorMillisByClass: st.Ledger.ReserveFloorMillisByClass,
			},
			Blocks:                st.Blocks,
			PlacementRelaxedTotal: st.PlacementRelaxed,
			RepairFailures:        st.RepairFailures,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
