package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"time"

	"harvest/internal/core"
	"harvest/internal/tenant"
)

// API is the HTTP front end of the characterization service: the REST
// surface YARN-H and HDFS-H poll in the paper's deployment (§6.2), stdlib
// only. Routes:
//
//	GET  /v1/datacenters               — served datacenters
//	GET  /v1/{dc}/classes              — the DC's utilization classes
//	GET  /v1/{dc}/servers/{id}/class   — a server's class
//	POST /v1/{dc}/select               — class selection (Alg. 1)
//	POST /v1/{dc}/place                — replica placement (Alg. 2)
//	POST /v1/{dc}/telemetry            — live utilization ingestion (feeds the rings)
//	GET  /healthz                      — liveness
//	GET  /metrics                      — counters, latency quantiles, snapshot ages/staleness
type API struct {
	svc   *Service
	mux   *http.ServeMux
	start time.Time

	endpoints map[string]*EndpointMetrics
}

// apiEndpoints names the instrumented endpoints, in /metrics display order.
var apiEndpoints = []string{"datacenters", "classes", "server_class", "select", "place", "telemetry", "healthz", "metrics"}

// NewAPI wraps a service in its HTTP handler.
func NewAPI(svc *Service) *API {
	a := &API{
		svc:       svc,
		mux:       http.NewServeMux(),
		start:     time.Now(),
		endpoints: make(map[string]*EndpointMetrics, len(apiEndpoints)),
	}
	for _, name := range apiEndpoints {
		a.endpoints[name] = &EndpointMetrics{}
	}
	a.mux.HandleFunc("GET /v1/datacenters", a.instrument("datacenters", a.handleDatacenters))
	a.mux.HandleFunc("GET /v1/{dc}/classes", a.instrument("classes", a.handleClasses))
	a.mux.HandleFunc("GET /v1/{dc}/servers/{id}/class", a.instrument("server_class", a.handleServerClass))
	a.mux.HandleFunc("POST /v1/{dc}/select", a.instrument("select", a.handleSelect))
	a.mux.HandleFunc("POST /v1/{dc}/place", a.instrument("place", a.handlePlace))
	a.mux.HandleFunc("POST /v1/{dc}/telemetry", a.instrument("telemetry", a.handleTelemetry))
	a.mux.HandleFunc("GET /healthz", a.instrument("healthz", a.handleHealthz))
	a.mux.HandleFunc("GET /metrics", a.instrument("metrics", a.handleMetrics))
	return a
}

// ServeHTTP implements http.Handler.
func (a *API) ServeHTTP(w http.ResponseWriter, r *http.Request) { a.mux.ServeHTTP(w, r) }

// statusWriter captures the response status for instrumentation.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

var statusWriters = sync.Pool{New: func() any { return &statusWriter{} }}

func (a *API) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	m := a.endpoints[name]
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := statusWriters.Get().(*statusWriter)
		sw.ResponseWriter, sw.status = w, http.StatusOK
		h(sw, r)
		m.observe(time.Since(start), sw.status)
		sw.ResponseWriter = nil
		statusWriters.Put(sw)
	}
}

type errorResponse struct {
	Error string `json:"error"`
}

var bodyBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// maxBodyBytes caps POST bodies: the select/place requests are tens of
// bytes, so 1 MiB is generous while keeping an abusive client from growing
// the pooled buffers without bound.
const maxBodyBytes = 1 << 20

// decodeBody reads and unmarshals a request body through a pooled buffer.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	buf := bodyBufs.Get().(*bytes.Buffer)
	buf.Reset()
	_, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err == nil {
		err = json.Unmarshal(buf.Bytes(), v)
	}
	// Never park an abnormally grown buffer in the pool.
	if buf.Cap() <= 64<<10 {
		bodyBufs.Put(buf)
	}
	return err
}

// jsonScratch pools the encoder and its backing buffer so the hot query
// endpoints serialize without a per-response allocation of either.
type jsonScratch struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var jsonScratches = sync.Pool{New: func() any {
	s := &jsonScratch{}
	s.enc = json.NewEncoder(&s.buf)
	return s
}}

// writeJSON serializes v up front so every response carries an explicit
// Content-Length and goes out in one write — never chunked, which keeps
// pipelined clients (cmd/loadgen) trivial to parse against.
func writeJSON(w http.ResponseWriter, status int, v any) {
	s := jsonScratches.Get().(*jsonScratch)
	s.buf.Reset()
	if err := s.enc.Encode(v); err != nil {
		jsonScratches.Put(s)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(s.buf.Len()))
	w.WriteHeader(status)
	w.Write(s.buf.Bytes())
	jsonScratches.Put(s)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}

// snapshotFor resolves the {dc} path segment, writing the 404 itself when the
// datacenter is unknown.
func (a *API) snapshotFor(w http.ResponseWriter, r *http.Request) (*Snapshot, bool) {
	dc := r.PathValue("dc")
	snap, ok := a.svc.Snapshot(dc)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown datacenter "+strconv.Quote(dc))
		return nil, false
	}
	return snap, true
}

type datacentersResponse struct {
	Datacenters []string `json:"datacenters"`
}

func (a *API) handleDatacenters(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, datacentersResponse{Datacenters: a.svc.Datacenters()})
}

// classInfo is the wire form of one utilization class plus its live usage.
type classInfo struct {
	ID                 int     `json:"id"`
	Pattern            string  `json:"pattern"`
	NumTenants         int     `json:"num_tenants"`
	NumServers         int     `json:"num_servers"`
	AvgUtilization     float64 `json:"avg_utilization"`
	PeakUtilization    float64 `json:"peak_utilization"`
	CurrentUtilization float64 `json:"current_utilization"`
	// ExampleServer is one member server, a convenient probe target for
	// /servers/{id}/class clients (the load generator uses it to seed its
	// server pool).
	ExampleServer int64 `json:"example_server"`
}

type classesResponse struct {
	Datacenter  string      `json:"datacenter"`
	Generation  uint64      `json:"generation"`
	AsOfSeconds float64     `json:"as_of_seconds"`
	Classes     []classInfo `json:"classes"`
}

// classInfoOf renders one class against a usage view — the live one on the
// query path (Service.UsageFor), so CurrentUtilization tracks ingested
// telemetry between refreshes.
func classInfoOf(cls *core.UtilizationClass, usage map[core.ClassID]core.ClassUsage) classInfo {
	info := classInfo{
		ID:                 int(cls.ID),
		Pattern:            cls.Pattern.String(),
		NumTenants:         len(cls.Tenants),
		NumServers:         cls.NumServers(),
		AvgUtilization:     cls.AvgUtilization,
		PeakUtilization:    cls.PeakUtilization,
		CurrentUtilization: usage[cls.ID].CurrentUtilization,
		ExampleServer:      -1,
	}
	if len(cls.Servers) > 0 {
		info.ExampleServer = int64(cls.Servers[0])
	}
	return info
}

func (a *API) handleClasses(w http.ResponseWriter, r *http.Request) {
	snap, ok := a.snapshotFor(w, r)
	if !ok {
		return
	}
	usage := a.svc.UsageFor(snap)
	resp := classesResponse{
		Datacenter:  snap.Datacenter,
		Generation:  snap.Generation,
		AsOfSeconds: snap.AsOf.Seconds(),
		Classes:     make([]classInfo, 0, len(snap.Clustering.Classes)),
	}
	for _, cls := range snap.Clustering.Classes {
		resp.Classes = append(resp.Classes, classInfoOf(cls, usage))
	}
	writeJSON(w, http.StatusOK, resp)
}

type serverClassResponse struct {
	Datacenter string    `json:"datacenter"`
	Generation uint64    `json:"generation"`
	Server     int64     `json:"server"`
	Class      classInfo `json:"class"`
}

func (a *API) handleServerClass(w http.ResponseWriter, r *http.Request) {
	snap, ok := a.snapshotFor(w, r)
	if !ok {
		return
	}
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "server id must be an integer")
		return
	}
	cls, ok := snap.ClassOfServer(tenant.ServerID(id))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown server "+strconv.FormatInt(id, 10)+" in "+snap.Datacenter)
		return
	}
	writeJSON(w, http.StatusOK, serverClassResponse{
		Datacenter: snap.Datacenter,
		Generation: snap.Generation,
		Server:     id,
		Class:      classInfoOf(cls, a.svc.UsageFor(snap)),
	})
}

// telemetrySample is the wire form of one ingested observation. Exactly one
// of tenant / server must be present (pointers distinguish "absent" from the
// valid id 0); at_seconds is an offset on the telemetry clock and defaults
// to one slot after the subject's latest sample.
type telemetrySample struct {
	Tenant      *int64  `json:"tenant"`
	Server      *int64  `json:"server"`
	AtSeconds   float64 `json:"at_seconds"`
	Utilization float64 `json:"utilization"`
}

type telemetryRequest struct {
	Samples []telemetrySample `json:"samples"`
}

// maxTelemetryOffsetSeconds bounds a sample's telemetry-clock offset (~31
// years — far beyond any replay). It must stay well below the ~292-year
// time.Duration ceiling: the float64→int64 nanosecond conversion on an
// out-of-range value is implementation-defined and would corrupt the
// store's monotonic clock. Anything larger is a client bug, rejected per
// sample.
const maxTelemetryOffsetSeconds = 1e9

type telemetryResponse struct {
	Datacenter     string  `json:"datacenter"`
	Accepted       int     `json:"accepted"`
	Rejected       int     `json:"rejected"`
	HorizonSeconds float64 `json:"horizon_seconds"`
}

func (a *API) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	dc := r.PathValue("dc")
	if _, ok := a.svc.Snapshot(dc); !ok {
		writeError(w, http.StatusNotFound, "unknown datacenter "+strconv.Quote(dc))
		return
	}
	var req telemetryRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if len(req.Samples) == 0 {
		writeError(w, http.StatusBadRequest, "no samples")
		return
	}
	samples := make([]IngestSample, len(req.Samples))
	for i, s := range req.Samples {
		// Written so NaN fails too: both comparisons are false for NaN, so
		// only finite offsets inside the bound proceed to the conversion.
		if !(s.AtSeconds >= 0 && s.AtSeconds <= maxTelemetryOffsetSeconds) {
			// An absurd offset would corrupt the store's telemetry clock;
			// poison the sample (no subject) so Ingest counts it rejected.
			samples[i] = IngestSample{Tenant: -1, Server: -1}
			continue
		}
		samples[i] = IngestSample{
			Tenant: -1,
			Server: -1,
			At:     time.Duration(s.AtSeconds * float64(time.Second)),
			Value:  s.Utilization,
		}
		if s.Tenant != nil {
			samples[i].Tenant = tenant.ID(*s.Tenant)
		}
		if s.Server != nil {
			samples[i].Server = tenant.ServerID(*s.Server)
		}
	}
	res, err := a.svc.Ingest(dc, samples)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, telemetryResponse{
		Datacenter:     dc,
		Accepted:       res.Accepted,
		Rejected:       res.Rejected,
		HorizonSeconds: res.Horizon.Seconds(),
	})
}

// selectRequest asks for classes to host a job. The job's length category
// comes either from an explicit type ("short"/"medium"/"long") or, as in the
// paper, from its previous run time classified against the thresholds; an
// absent type and absent last run means medium (the first-guess rule).
type selectRequest struct {
	JobType            string  `json:"job_type"`
	LastRunSeconds     float64 `json:"last_run_seconds"`
	MaxConcurrentCores float64 `json:"max_concurrent_cores"`
}

type selectResponse struct {
	Datacenter  string    `json:"datacenter"`
	Generation  uint64    `json:"generation"`
	JobType     string    `json:"job_type"`
	Satisfiable bool      `json:"satisfiable"`
	Classes     []int     `json:"classes"`
	Headrooms   []float64 `json:"headrooms"`
}

func (a *API) handleSelect(w http.ResponseWriter, r *http.Request) {
	snap, ok := a.snapshotFor(w, r)
	if !ok {
		return
	}
	var req selectRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if req.MaxConcurrentCores <= 0 {
		writeError(w, http.StatusBadRequest, "max_concurrent_cores must be positive")
		return
	}
	var jobType core.JobType
	switch req.JobType {
	case "short":
		jobType = core.JobShort
	case "medium":
		jobType = core.JobMedium
	case "long":
		jobType = core.JobLong
	case "":
		jobType = core.ClassifyLength(time.Duration(req.LastRunSeconds*float64(time.Second)), snap.Thresholds)
	default:
		writeError(w, http.StatusBadRequest, "job_type must be short, medium or long")
		return
	}

	sel := a.svc.SelectOn(snap, core.JobRequest{
		Type:               jobType,
		MaxConcurrentCores: req.MaxConcurrentCores,
	})
	resp := selectResponse{
		Datacenter:  snap.Datacenter,
		Generation:  snap.Generation,
		JobType:     jobType.String(),
		Satisfiable: !sel.Empty(),
		Classes:     make([]int, len(sel.Classes)),
		Headrooms:   sel.Headrooms,
	}
	for i, id := range sel.Classes {
		resp.Classes[i] = int(id)
	}
	if resp.Headrooms == nil {
		resp.Headrooms = []float64{}
	}
	writeJSON(w, http.StatusOK, resp)
}

// maxReplication bounds a place request. The paper evaluates R=3 and R=4;
// 64 leaves room for exotic experiments while keeping a client from forcing
// huge allocations and O(R·servers) placement scans per request.
const maxReplication = 64

// placeRequest asks for replica targets for a new block. Writer is the
// creating server (optional; -1 or absent means an external writer).
type placeRequest struct {
	Replication        int   `json:"replication"`
	Writer             int64 `json:"writer"`
	RelaxedEnvironment bool  `json:"relaxed_environment"`
}

type placeResponse struct {
	Datacenter string  `json:"datacenter"`
	Generation uint64  `json:"generation"`
	Replicas   []int64 `json:"replicas"`
}

func (a *API) handlePlace(w http.ResponseWriter, r *http.Request) {
	snap, ok := a.snapshotFor(w, r)
	if !ok {
		return
	}
	req := placeRequest{Writer: -1}
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if req.Replication <= 0 || req.Replication > maxReplication {
		writeError(w, http.StatusBadRequest,
			"replication must be in [1, "+strconv.Itoa(maxReplication)+"]")
		return
	}
	replicas, err := a.svc.PlaceOn(snap, core.PlacementConstraints{
		Replication:        req.Replication,
		Writer:             tenant.ServerID(req.Writer),
		EnforceEnvironment: !req.RelaxedEnvironment,
	})
	if err != nil {
		// Placement exhausted the diversity space: a conflict with current
		// cluster state, not a malformed request.
		writeError(w, http.StatusConflict, err.Error())
		return
	}
	resp := placeResponse{
		Datacenter: snap.Datacenter,
		Generation: snap.Generation,
		Replicas:   make([]int64, len(replicas)),
	}
	for i, s := range replicas {
		resp.Replicas[i] = int64(s)
	}
	writeJSON(w, http.StatusOK, resp)
}

type healthzResponse struct {
	Status      string `json:"status"`
	Datacenters int    `json:"datacenters"`
}

func (a *API) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthzResponse{Status: "ok", Datacenters: len(a.svc.Datacenters())})
}

// endpointStats is the wire form of one endpoint's counters.
type endpointStats struct {
	Requests uint64  `json:"requests"`
	Errors   uint64  `json:"errors"`
	MeanUs   float64 `json:"mean_us"`
	P50Us    uint64  `json:"p50_us"`
	P99Us    uint64  `json:"p99_us"`
	MaxUs    uint64  `json:"max_us"`
}

// shardStatsJSON is the wire form of one shard's snapshot state. Staleness
// of the live path is readable directly: generation + snapshot age say how
// old the characterization is, last_ingest_age_seconds says how long ago
// live telemetry last arrived (-1 = never, i.e. still serving the bootstrap
// window).
type shardStatsJSON struct {
	Generation           uint64  `json:"generation"`
	AgeSeconds           float64 `json:"age_seconds"`
	AsOfSeconds          float64 `json:"as_of_seconds"`
	BuildMs              float64 `json:"build_ms"`
	Refreshes            uint64  `json:"refreshes"`
	RefreshErrors        uint64  `json:"refresh_errors"`
	WarmRefreshes        uint64  `json:"warm_refreshes"`
	FullRebuilds         uint64  `json:"full_rebuilds"`
	Classes              int     `json:"classes"`
	Servers              int     `json:"servers"`
	Tenants              int     `json:"tenants"`
	IngestedSamples      uint64  `json:"ingested_samples"`
	LastIngestAgeSeconds float64 `json:"last_ingest_age_seconds"`
	PersistErrors        uint64  `json:"persist_errors"`
}

type metricsResponse struct {
	UptimeSeconds float64                   `json:"uptime_seconds"`
	TotalRequests uint64                    `json:"total_requests"`
	QPS           float64                   `json:"qps"`
	Endpoints     map[string]endpointStats  `json:"endpoints"`
	Datacenters   map[string]shardStatsJSON `json:"datacenters"`
}

func (a *API) handleMetrics(w http.ResponseWriter, r *http.Request) {
	uptime := time.Since(a.start).Seconds()
	resp := metricsResponse{
		UptimeSeconds: uptime,
		Endpoints:     make(map[string]endpointStats, len(a.endpoints)),
		Datacenters:   make(map[string]shardStatsJSON, len(a.svc.Datacenters())),
	}
	for _, name := range apiEndpoints {
		m := a.endpoints[name]
		resp.TotalRequests += m.Requests.Load()
		resp.Endpoints[name] = endpointStats{
			Requests: m.Requests.Load(),
			Errors:   m.Errors.Load(),
			MeanUs:   m.Latency.MeanMicros(),
			P50Us:    m.Latency.QuantileMicros(0.50),
			P99Us:    m.Latency.QuantileMicros(0.99),
			MaxUs:    m.Latency.MaxMicros(),
		}
	}
	if uptime > 0 {
		resp.QPS = float64(resp.TotalRequests) / uptime
	}
	for _, dc := range a.svc.Datacenters() {
		st, ok := a.svc.Stats(dc)
		if !ok {
			continue
		}
		ingestAge := -1.0
		if !st.LastIngest.IsZero() {
			ingestAge = time.Since(st.LastIngest).Seconds()
		}
		resp.Datacenters[dc] = shardStatsJSON{
			Generation:           st.Generation,
			AgeSeconds:           st.Age.Seconds(),
			AsOfSeconds:          st.AsOf.Seconds(),
			BuildMs:              float64(st.BuildDuration.Microseconds()) / 1000,
			Refreshes:            st.Refreshes,
			RefreshErrors:        st.RefreshErrors,
			WarmRefreshes:        st.WarmRefreshes,
			FullRebuilds:         st.FullRebuilds,
			Classes:              st.Classes,
			Servers:              st.Servers,
			Tenants:              st.Tenants,
			IngestedSamples:      st.IngestedSamples,
			LastIngestAgeSeconds: ingestAge,
			PersistErrors:        st.PersistErrors,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
