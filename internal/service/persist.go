package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"harvest/internal/blockledger"
	"harvest/internal/core"
	"harvest/internal/ledger"
	"harvest/internal/signalproc"
	"harvest/internal/tenant"
)

// Snapshot persistence: every published snapshot's clustering + usage view
// is serialized to <PersistDir>/<dc>.snapshot.json via a temp file and an
// atomic rename, and the last good file is restored at construction so a
// restarted daemon serves its previous characterization immediately instead
// of paying the boot re-clustering. The placement scheme, selector, and
// rings are rebuilt from the (deterministically regenerated) population; the
// file carries a population fingerprint so a daemon restarted with different
// scale/seed flags discards the stale file and re-clusters.

// persistVersion guards the file format; bump on incompatible changes.
// v2: lease ids became random values — the ledger state lost its
// next_id counter, and sequential ids from v1 files must not survive onto
// the binary wire, so v1 files are discarded wholesale.
const persistVersion = 2

type persistedClass struct {
	ID                 int       `json:"id"`
	Pattern            int       `json:"pattern"`
	AvgUtilization     float64   `json:"avg_utilization"`
	PeakUtilization    float64   `json:"peak_utilization"`
	CurrentUtilization float64   `json:"current_utilization"`
	Centroid           []float64 `json:"centroid"`
	Tenants            []int64   `json:"tenants"`
	Servers            []int64   `json:"servers"`
}

type persistedSnapshot struct {
	Version     int       `json:"version"`
	Datacenter  string    `json:"datacenter"`
	Generation  uint64    `json:"generation"`
	AsOfSeconds float64   `json:"as_of_seconds"`
	BuiltAt     time.Time `json:"built_at"`

	// Population fingerprint: a restored clustering only makes sense over
	// the exact population it was built from.
	Seed            int64   `json:"seed"`
	ScaleDatacenter float64 `json:"scale_datacenter"`
	NumTenants      int     `json:"num_tenants"`
	NumServers      int     `json:"num_servers"`

	Classes []persistedClass `json:"classes"`
}

func persistPath(dir, dc string) string {
	return filepath.Join(dir, dc+".snapshot.json")
}

func ledgerPath(dir, dc string) string {
	return filepath.Join(dir, dc+".ledger.json")
}

func blocksPath(dir, dc string) string {
	return filepath.Join(dir, dc+".blocks.json")
}

// persistedLedger wraps the ledger state with the same population
// fingerprint as the snapshot file: leases only make sense over the exact
// clustering they were reserved against.
type persistedLedger struct {
	Version         int          `json:"version"`
	Datacenter      string       `json:"datacenter"`
	Seed            int64        `json:"seed"`
	ScaleDatacenter float64      `json:"scale_datacenter"`
	State           ledger.State `json:"state"`
}

// persistSnapshot writes the snapshot (and the allocation ledger riding
// alongside it) to disk, best-effort: a failure is counted and logged but
// never fails the publish (the in-memory snapshot is already serving).
func (s *Service) persistSnapshot(sh *shard, snap *Snapshot) {
	if s.cfg.PersistDir == "" {
		return
	}
	if err := s.writeSnapshotFile(sh, snap); err != nil {
		sh.persistErrors.Add(1)
		slogger.Warn("snapshot persist failed", "dc", sh.dc, "err", err)
	}
	s.persistLedger(sh)
	s.persistBlocks(sh)
}

// persistLedger writes the shard's allocation ledger next to its snapshot
// file, so outstanding leases survive a restart. Best-effort, like the
// snapshot itself. The boot path persists a snapshot before the shard's
// ledger exists; that write is skipped (the ledger is empty then anyway).
func (s *Service) persistLedger(sh *shard) {
	if s.cfg.PersistDir == "" || sh.led == nil {
		return
	}
	p := persistedLedger{
		Version:         persistVersion,
		Datacenter:      sh.dc,
		Seed:            s.cfg.Scale.Seed,
		ScaleDatacenter: s.cfg.Scale.Datacenter,
		State:           sh.led.Export(),
	}
	err := os.MkdirAll(s.cfg.PersistDir, 0o755)
	if err == nil {
		var data []byte
		if data, err = json.Marshal(p); err == nil {
			tmp := ledgerPath(s.cfg.PersistDir, sh.dc) + ".tmp"
			if err = os.WriteFile(tmp, data, 0o644); err == nil {
				err = os.Rename(tmp, ledgerPath(s.cfg.PersistDir, sh.dc))
			}
		}
	}
	if err != nil {
		sh.persistErrors.Add(1)
		slogger.Warn("ledger persist failed", "dc", sh.dc, "err", err)
	}
}

// restoreLedger loads the shard's persisted allocation ledger, valid only
// against the snapshot that was actually restored (generation must match —
// a from-scratch boot or a discarded snapshot file always starts an empty
// ledger). Leases that expired while the daemon was down are reclaimed
// immediately. Any problem logs and returns nil, which means "start empty":
// a lost ledger file can only cost leases, never correctness of the books
// going forward.
func (s *Service) restoreLedger(sh *shard, snap *Snapshot) *ledger.Ledger {
	if s.cfg.PersistDir == "" {
		return nil
	}
	data, err := os.ReadFile(ledgerPath(s.cfg.PersistDir, sh.dc))
	if err != nil {
		return nil
	}
	var p persistedLedger
	if err := json.Unmarshal(data, &p); err != nil {
		slogger.Warn("ignoring persisted ledger: corrupt file", "dc", sh.dc, "err", err)
		return nil
	}
	if p.Version != persistVersion || p.Datacenter != sh.dc ||
		p.Seed != s.cfg.Scale.Seed || p.ScaleDatacenter != s.cfg.Scale.Datacenter {
		slogger.Warn("ignoring persisted ledger: fingerprint mismatch", "dc", sh.dc)
		return nil
	}
	led, err := ledger.Restore(p.State, snap.Generation, len(snap.Clustering.Classes))
	if err != nil {
		slogger.Warn("ignoring persisted ledger", "dc", sh.dc, "err", err)
		return nil
	}
	if n, millis := led.ExpireBefore(time.Now()); n > 0 {
		slogger.Info("restored ledger, expired stale leases from downtime", "dc", sh.dc, "leases", n, "cores", ledger.CoresOf(millis))
	}
	return led
}

// persistedBlocks wraps the block ledger state with the same population
// fingerprint as the snapshot file: block placements only make sense over the
// exact population (and thus placement grid) they were placed against.
type persistedBlocks struct {
	Version         int               `json:"version"`
	Datacenter      string            `json:"datacenter"`
	Seed            int64             `json:"seed"`
	ScaleDatacenter float64           `json:"scale_datacenter"`
	State           blockledger.State `json:"state"`
}

// persistBlocks writes the shard's block ledger next to its snapshot file,
// best-effort like the rest of the persistence. Skipped before the shard's
// block ledger exists (boot-path snapshot persist).
func (s *Service) persistBlocks(sh *shard) {
	if s.cfg.PersistDir == "" || sh.blocks == nil {
		return
	}
	p := persistedBlocks{
		Version:         persistVersion,
		Datacenter:      sh.dc,
		Seed:            s.cfg.Scale.Seed,
		ScaleDatacenter: s.cfg.Scale.Datacenter,
		State:           sh.blocks.Export(),
	}
	err := os.MkdirAll(s.cfg.PersistDir, 0o755)
	if err == nil {
		var data []byte
		if data, err = json.Marshal(p); err == nil {
			tmp := blocksPath(s.cfg.PersistDir, sh.dc) + ".tmp"
			if err = os.WriteFile(tmp, data, 0o644); err == nil {
				err = os.Rename(tmp, blocksPath(s.cfg.PersistDir, sh.dc))
			}
		}
	}
	if err != nil {
		sh.persistErrors.Add(1)
		slogger.Warn("block ledger persist failed", "dc", sh.dc, "err", err)
	}
}

// restoreBlocks loads the shard's persisted block ledger. The repair queue is
// rebuilt from the pending slots, so repairs in flight at shutdown are
// recovered, not dropped. The placement grid is a pure function of the
// (fingerprint-checked, deterministically regenerated) population, so
// restored placements are still valid under the restored snapshot's scheme.
// Any problem logs and returns nil, which means "start empty".
func (s *Service) restoreBlocks(sh *shard, snap *Snapshot) *blockledger.Ledger {
	if s.cfg.PersistDir == "" {
		return nil
	}
	data, err := os.ReadFile(blocksPath(s.cfg.PersistDir, sh.dc))
	if err != nil {
		return nil
	}
	var p persistedBlocks
	if err := json.Unmarshal(data, &p); err != nil {
		slogger.Warn("ignoring persisted block ledger: corrupt file", "dc", sh.dc, "err", err)
		return nil
	}
	if p.Version != persistVersion || p.Datacenter != sh.dc ||
		p.Seed != s.cfg.Scale.Seed || p.ScaleDatacenter != s.cfg.Scale.Datacenter {
		slogger.Warn("ignoring persisted block ledger: fingerprint mismatch", "dc", sh.dc)
		return nil
	}
	led, err := blockledger.Restore(p.State, snap.Generation)
	if err != nil {
		slogger.Warn("ignoring persisted block ledger", "dc", sh.dc, "err", err)
		return nil
	}
	if st := led.Snapshot(); st.Blocks > 0 {
		slogger.Info("restored block ledger", "dc", sh.dc, "blocks", st.Blocks, "pending", st.Pending)
	}
	return led
}

func (s *Service) writeSnapshotFile(sh *shard, snap *Snapshot) error {
	if err := os.MkdirAll(s.cfg.PersistDir, 0o755); err != nil {
		return err
	}
	p := persistedSnapshot{
		Version:         persistVersion,
		Datacenter:      snap.Datacenter,
		Generation:      snap.Generation,
		AsOfSeconds:     snap.AsOf.Seconds(),
		BuiltAt:         snap.BuiltAt,
		Seed:            s.cfg.Scale.Seed,
		ScaleDatacenter: s.cfg.Scale.Datacenter,
		NumTenants:      len(sh.pop.Tenants),
		NumServers:      sh.pop.NumServers(),
		Classes:         make([]persistedClass, 0, len(snap.Clustering.Classes)),
	}
	for _, cls := range snap.Clustering.Classes {
		pc := persistedClass{
			ID:                 int(cls.ID),
			Pattern:            int(cls.Pattern),
			AvgUtilization:     cls.AvgUtilization,
			PeakUtilization:    cls.PeakUtilization,
			CurrentUtilization: snap.Usage[cls.ID].CurrentUtilization,
			Centroid:           cls.Centroid,
			Tenants:            make([]int64, len(cls.Tenants)),
			Servers:            make([]int64, len(cls.Servers)),
		}
		for i, tid := range cls.Tenants {
			pc.Tenants[i] = int64(tid)
		}
		for i, srv := range cls.Servers {
			pc.Servers[i] = int64(srv)
		}
		p.Classes = append(p.Classes, pc)
	}
	data, err := json.Marshal(p)
	if err != nil {
		return err
	}
	final := persistPath(s.cfg.PersistDir, snap.Datacenter)
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	// Atomic rename: a crash mid-write leaves the previous good file intact.
	return os.Rename(tmp, final)
}

// restoreSnapshot loads the shard's persisted snapshot, validates it against
// the regenerated population, and reassembles it into a queryable snapshot.
// Any problem (no file, version or fingerprint mismatch, corrupt JSON,
// inconsistent membership) logs and returns nil — the caller then clusters
// from scratch, so a bad file can only cost time, never correctness.
func (s *Service) restoreSnapshot(sh *shard) (*Snapshot, bool) {
	if s.cfg.PersistDir == "" {
		return nil, false
	}
	snap, err := s.loadSnapshotFile(sh)
	if err != nil {
		if !os.IsNotExist(err) {
			slogger.Warn("ignoring persisted snapshot", "dc", sh.dc, "err", err)
		}
		return nil, false
	}
	return snap, true
}

func (s *Service) loadSnapshotFile(sh *shard) (*Snapshot, error) {
	data, err := os.ReadFile(persistPath(s.cfg.PersistDir, sh.dc))
	if err != nil {
		return nil, err
	}
	var p persistedSnapshot
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("corrupt file: %w", err)
	}
	if p.Version != persistVersion {
		return nil, fmt.Errorf("version %d, want %d", p.Version, persistVersion)
	}
	if p.Datacenter != sh.dc {
		return nil, fmt.Errorf("file is for %q", p.Datacenter)
	}
	if p.Seed != s.cfg.Scale.Seed || p.ScaleDatacenter != s.cfg.Scale.Datacenter ||
		p.NumTenants != len(sh.pop.Tenants) || p.NumServers != sh.pop.NumServers() {
		return nil, fmt.Errorf("population fingerprint mismatch (seed/scale changed?)")
	}
	if len(p.Classes) == 0 {
		return nil, fmt.Errorf("no classes")
	}

	classes := make([]*core.UtilizationClass, 0, len(p.Classes))
	usage := make(map[core.ClassID]core.ClassUsage, len(p.Classes))
	for _, pc := range p.Classes {
		if pc.Pattern < 0 || pc.Pattern >= signalproc.NumPatterns {
			return nil, fmt.Errorf("class %d: bad pattern %d", pc.ID, pc.Pattern)
		}
		cls := &core.UtilizationClass{
			ID:              core.ClassID(pc.ID),
			Pattern:         signalproc.Pattern(pc.Pattern),
			AvgUtilization:  pc.AvgUtilization,
			PeakUtilization: pc.PeakUtilization,
			Centroid:        pc.Centroid,
			Tenants:         make([]tenant.ID, len(pc.Tenants)),
			Servers:         make([]tenant.ServerID, len(pc.Servers)),
		}
		for i, tid := range pc.Tenants {
			id := tenant.ID(tid)
			if sh.pop.ByID(id) == nil {
				return nil, fmt.Errorf("class %d: unknown tenant %d", pc.ID, tid)
			}
			cls.Tenants[i] = id
		}
		for i, srv := range pc.Servers {
			cls.Servers[i] = tenant.ServerID(srv)
		}
		classes = append(classes, cls)
		usage[cls.ID] = core.ClassUsage{CurrentUtilization: pc.CurrentUtilization}
	}
	clustering, err := core.NewClusteringFromClasses(classes)
	if err != nil {
		return nil, err
	}

	start := time.Now()
	snap, err := assembleSnapshot(sh.dc, sh.pop, sh.rings, s.cfg, p.Generation, clustering, start, nil)
	if err != nil {
		return nil, err
	}
	// Restore the persisted view verbatim: the snapshot represents the state
	// as of its original build, and its age stays honest about that. The
	// live usage overlay refreshes CurrentUtilization on the first query.
	snap.Usage = usage
	snap.AsOf = time.Duration(p.AsOfSeconds * float64(time.Second))
	snap.BuiltAt = p.BuiltAt
	snap.BuildDuration = time.Since(start)
	// The previous process may have ingested live samples past the bootstrap
	// window the rings were just re-seeded from; pull the telemetry clock up
	// to the persisted AsOf so the next refresh cannot move AsOf backwards.
	sh.rings.AdvanceClock(snap.AsOf)
	return snap, nil
}
