package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"harvest/internal/regproto"
)

// AnnouncerConfig wires a service into a harvestrouter front end.
type AnnouncerConfig struct {
	// RouterURL is the router's base URL (POST {RouterURL}/v1/register).
	RouterURL string
	// SelfURL is this node's externally reachable base URL — what the router
	// proxies to.
	SelfURL string
	// BinaryAddr is this node's binary frame listener (host:port), when one
	// is serving. The router negotiates per-backend from this: beats carrying
	// it get data-plane frames forwarded natively, beats without it fall back
	// to JSON translation.
	BinaryAddr string
	// ID is the stable backend identity; re-registrations under the same ID
	// update the existing entry. Empty means SelfURL.
	ID string
	// Interval is the heartbeat cadence. Zero means 2 seconds (a fifth of the
	// router's default staleness window).
	Interval time.Duration
	// Token is the router's shared register token (sent as a bearer token),
	// when the router requires one.
	Token string
	// ReplicateAddr is this node's replication listener (host:port) — live on
	// a primary, armed for promotion on a follower. Announced so the router
	// can point orphaned followers at whichever node currently owns the
	// primary role.
	ReplicateAddr string
}

// Announcer is the registration client: a background loop that heartbeats
// this node's datacenter set and per-DC snapshot generations to a
// harvestrouter, so the router's routing table (and its staleness marking)
// tracks this node's liveness. Registration is idempotent — every beat
// carries the full state — so the router needs no catch-up protocol after
// either side restarts.
type Announcer struct {
	svc    *Service
	cfg    AnnouncerConfig
	client *http.Client

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	beats     atomic.Uint64
	beatFails atomic.Uint64
	lastErr   atomic.Pointer[string]
	draining  atomic.Bool
}

// StartAnnouncer validates the config and starts the heartbeat loop, which
// registers immediately and then beats every Interval. The first beat runs
// on the loop goroutine — an unreachable router must not delay the caller's
// serving path by a client timeout. Call Close to stop announcing.
func StartAnnouncer(svc *Service, cfg AnnouncerConfig) (*Announcer, error) {
	if cfg.RouterURL == "" {
		return nil, fmt.Errorf("announcer: RouterURL is required")
	}
	if cfg.SelfURL == "" {
		return nil, fmt.Errorf("announcer: SelfURL is required")
	}
	if cfg.ID == "" {
		cfg.ID = cfg.SelfURL
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	a := &Announcer{
		svc:    svc,
		cfg:    cfg,
		client: &http.Client{Timeout: 5 * time.Second},
		stop:   make(chan struct{}),
	}
	a.wg.Add(1)
	go a.loop()
	return a, nil
}

func (a *Announcer) loop() {
	defer a.wg.Done()
	if err := a.announce(); err != nil {
		slogger.Warn("initial registration failed, will retry",
			"router", a.cfg.RouterURL, "interval", a.cfg.Interval, "err", err)
	}
	ticker := time.NewTicker(a.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-ticker.C:
			// Capture the previous state before announce overwrites it: log
			// on state changes only, not every missed beat — a router restart
			// would otherwise flood the log at heartbeat cadence.
			wasFailing := a.lastErr.Load() != nil
			if err := a.announce(); err != nil {
				if !wasFailing {
					slogger.Warn("registration failing", "router", a.cfg.RouterURL, "err", err)
				}
			} else if wasFailing {
				slogger.Info("registration recovered", "router", a.cfg.RouterURL)
			}
		}
	}
}

// announce sends one registration beat carrying the current per-DC snapshot
// generations.
func (a *Announcer) announce() error {
	gens := a.svc.Generations()
	req := regproto.RegisterRequest{
		ID:            a.cfg.ID,
		URL:           a.cfg.SelfURL,
		BinaryAddr:    a.cfg.BinaryAddr,
		Role:          a.svc.Role(),
		ReplicateAddr: a.cfg.ReplicateAddr,
		Draining:      a.draining.Load(),
		Datacenters:   make([]regproto.RegisterDatacenter, 0, len(gens)),
	}
	follower := a.svc.IsFollower()
	if follower {
		// The role is read per beat, not captured at start: a promotion flips
		// the very next heartbeat to "primary" and the router hands ownership
		// over without either process restarting.
		req.PrimaryID = a.svc.PrimaryID()
	}
	for _, dc := range a.svc.Datacenters() {
		req.Datacenters = append(req.Datacenters, regproto.RegisterDatacenter{Name: dc, Generation: gens[dc]})
	}
	body, err := json.Marshal(req)
	if err == nil {
		var hreq *http.Request
		hreq, err = http.NewRequest("POST", a.cfg.RouterURL+"/v1/register", bytes.NewReader(body))
		if err == nil {
			hreq.Header.Set("Content-Type", "application/json")
			if a.cfg.Token != "" {
				hreq.Header.Set("Authorization", "Bearer "+a.cfg.Token)
			}
			var resp *http.Response
			resp, err = a.client.Do(hreq)
			if err == nil {
				var ack regproto.RegisterResponse
				decErr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&ack)
				// Drain before closing so the keep-alive connection goes
				// back to the pool — beats must not cost a TCP handshake
				// each.
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					err = fmt.Errorf("router returned %s", resp.Status)
				} else if decErr == nil && follower && ack.PrimaryReplicateAddr != "" {
					// The router's view of who owns our datacenters — if the
					// primary died and a sibling follower was promoted, this is
					// the promoted node's replication listener and the follow
					// loop re-dials it.
					a.svc.SetFollowAddr(ack.PrimaryReplicateAddr)
				}
			}
		}
	}
	if err != nil {
		a.beatFails.Add(1)
		msg := err.Error()
		a.lastErr.Store(&msg)
		return err
	}
	a.beats.Add(1)
	a.lastErr.Store(nil)
	return nil
}

// Beats reports successful and failed registration beats since start.
func (a *Announcer) Beats() (ok, failed uint64) {
	return a.beats.Load(), a.beatFails.Load()
}

// Deregister sends one final heartbeat marked draining, telling the router to
// stop routing to this node right now rather than waiting out the staleness
// window. Called on SIGTERM before the listeners close, so planned restarts
// never serve a 503 out of the router. Best-effort: an unreachable router
// just falls back to staleness marking. Safe to call once, before Close.
func (a *Announcer) Deregister() {
	a.draining.Store(true)
	if err := a.announce(); err != nil {
		slogger.Warn("drain beat failed; router will age this node out", "router", a.cfg.RouterURL, "err", err)
	} else {
		slogger.Info("deregistered from router", "router", a.cfg.RouterURL)
	}
}

// Close stops the heartbeat loop. The router will mark this node stale one
// staleness window after the last beat.
func (a *Announcer) Close() {
	a.stopOnce.Do(func() { close(a.stop) })
	a.wg.Wait()
}
