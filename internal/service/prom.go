package service

import (
	"net/http"
	"time"

	"harvest/internal/ledger"
	"harvest/internal/obs"
)

// writeProm renders the daemon's /metrics numbers in Prometheus text
// exposition: per-endpoint counters and latency histograms for both dialects,
// plus each datacenter's snapshot staleness and ledger books. Latency metrics
// are in microseconds — the histograms' native power-of-two resolution —
// rather than the conventional seconds, so the `le` bounds stay exact
// integers (see obs.BucketUpperMicros).
func (a *API) writeProm(w http.ResponseWriter) {
	var p obs.Prom

	p.Metric("harvestd_uptime_seconds", "gauge", "Seconds since the daemon started.")
	p.Float("harvestd_uptime_seconds", "", time.Since(a.start).Seconds())

	p.Metric("harvestd_requests_total", "counter", "Requests served, by endpoint and dialect.")
	p.Metric("harvestd_request_errors_total", "counter", "4xx/5xx responses, by endpoint and dialect.")
	for _, name := range apiEndpoints {
		m := a.endpoints[name]
		ls := obs.Labels("endpoint", name, "dialect", obs.DialectJSON)
		p.Uint("harvestd_requests_total", ls, m.Requests.Load())
		p.Uint("harvestd_request_errors_total", ls, m.Errors.Load())
	}
	if a.binary != nil {
		for _, op := range binaryOps {
			m := a.binary.endpointMetric(op)
			ls := obs.Labels("endpoint", op.String(), "dialect", obs.DialectBinary)
			p.Uint("harvestd_requests_total", ls, m.Requests.Load())
			p.Uint("harvestd_request_errors_total", ls, m.Errors.Load())
		}
	}
	p.Metric("harvestd_request_latency_microseconds", "histogram", "Request latency by endpoint and dialect, in microseconds.")
	for _, name := range apiEndpoints {
		p.Histogram("harvestd_request_latency_microseconds",
			obs.Labels("endpoint", name, "dialect", obs.DialectJSON), &a.endpoints[name].Latency)
	}
	if a.binary != nil {
		st := a.binary.Stats()
		for _, op := range binaryOps {
			p.Histogram("harvestd_request_latency_microseconds",
				obs.Labels("endpoint", op.String(), "dialect", obs.DialectBinary),
				&a.binary.endpointMetric(op).Latency)
		}
		p.Metric("harvestd_binary_accepted_conns_total", "counter", "Binary client connections accepted.")
		p.Uint("harvestd_binary_accepted_conns_total", "", st.Accepted)
		p.Metric("harvestd_binary_open_conns", "gauge", "Binary client connections currently open.")
		p.Int("harvestd_binary_open_conns", "", st.Open)
		p.Metric("harvestd_binary_framing_errors_total", "counter", "Connections dropped for bad framing.")
		p.Uint("harvestd_binary_framing_errors_total", "", st.FramingErrors)
	}

	dcs := a.svc.Datacenters()
	type dcStats struct {
		dc string
		st ShardStats
	}
	rows := make([]dcStats, 0, len(dcs))
	for _, dc := range dcs {
		if st, ok := a.svc.Stats(dc); ok {
			rows = append(rows, dcStats{dc, st})
		}
	}

	p.Metric("harvestd_snapshot_generation", "gauge", "Current snapshot generation.")
	p.Metric("harvestd_snapshot_age_seconds", "gauge", "Age of the serving snapshot.")
	p.Metric("harvestd_snapshot_refreshes_total", "counter", "Snapshot refreshes.")
	p.Metric("harvestd_snapshot_refresh_errors_total", "counter", "Snapshot refresh failures.")
	p.Metric("harvestd_classes", "gauge", "Utilization classes in the serving snapshot.")
	p.Metric("harvestd_servers", "gauge", "Servers in the serving snapshot.")
	p.Metric("harvestd_tenants", "gauge", "Tenants in the serving snapshot.")
	p.Metric("harvestd_ingested_samples_total", "counter", "Telemetry samples accepted.")
	for _, row := range rows {
		ls := obs.Labels("dc", row.dc)
		p.Uint("harvestd_snapshot_generation", ls, row.st.Generation)
		p.Float("harvestd_snapshot_age_seconds", ls, row.st.Age.Seconds())
		p.Uint("harvestd_snapshot_refreshes_total", ls, row.st.Refreshes)
		p.Uint("harvestd_snapshot_refresh_errors_total", ls, row.st.RefreshErrors)
		p.Int("harvestd_classes", ls, int64(row.st.Classes))
		p.Int("harvestd_servers", ls, int64(row.st.Servers))
		p.Int("harvestd_tenants", ls, int64(row.st.Tenants))
		p.Uint("harvestd_ingested_samples_total", ls, row.st.IngestedSamples)
	}

	// Refresh latency as a full histogram (same microsecond convention as the
	// request latencies) — the scale acceptance gate: steady-state warm
	// refreshes must hold their p99 under the refresh interval at scale 1.0.
	p.Metric("harvestd_snapshot_refresh_microseconds", "histogram", "Successful snapshot refresh latency (recluster + rekey + publish), in microseconds.")
	for _, row := range rows {
		if h := a.svc.RefreshLatency(row.dc); h != nil {
			p.Histogram("harvestd_snapshot_refresh_microseconds", obs.Labels("dc", row.dc), h)
		}
	}

	// The ledger books: exact milli-core integers, same conservation invariant
	// as the JSON shape (reserved == released + expired + forfeited + outstanding).
	p.Metric("harvestd_ledger_active_leases", "gauge", "Live leases.")
	p.Metric("harvestd_ledger_outstanding_cores", "gauge", "Cores currently reserved.")
	p.Metric("harvestd_ledger_reserved_millis_total", "counter", "Milli-cores ever reserved.")
	p.Metric("harvestd_ledger_released_millis_total", "counter", "Milli-cores returned by release.")
	p.Metric("harvestd_ledger_expired_millis_total", "counter", "Milli-cores reclaimed by expiry.")
	p.Metric("harvestd_ledger_forfeited_millis_total", "counter", "Milli-cores forfeited on snapshot change.")
	p.Metric("harvestd_ledger_reserves_total", "counter", "Successful reservations.")
	p.Metric("harvestd_ledger_releases_total", "counter", "Successful releases.")
	p.Metric("harvestd_ledger_renews_total", "counter", "Successful lease renewals.")
	p.Metric("harvestd_ledger_expiries_total", "counter", "Lease expiries.")
	p.Metric("harvestd_ledger_conflicts_total", "counter", "Reservations lost to capacity conflicts.")
	for _, row := range rows {
		ls := obs.Labels("dc", row.dc)
		led := row.st.Ledger
		p.Int("harvestd_ledger_active_leases", ls, int64(led.ActiveLeases))
		p.Float("harvestd_ledger_outstanding_cores", ls, ledger.CoresOf(led.OutstandingMillis))
		p.Int("harvestd_ledger_reserved_millis_total", ls, led.ReservedMillis)
		p.Int("harvestd_ledger_released_millis_total", ls, led.ReleasedMillis)
		p.Int("harvestd_ledger_expired_millis_total", ls, led.ExpiredMillis)
		p.Int("harvestd_ledger_forfeited_millis_total", ls, led.ForfeitedMillis)
		p.Uint("harvestd_ledger_reserves_total", ls, led.Reserves)
		p.Uint("harvestd_ledger_releases_total", ls, led.Releases)
		p.Uint("harvestd_ledger_renews_total", ls, led.Renews)
		p.Uint("harvestd_ledger_expiries_total", ls, led.Expiries)
		p.Uint("harvestd_ledger_conflicts_total", ls, led.Conflicts)
	}

	w.Header().Set("Content-Type", obs.PromContentType)
	w.Write(p.Bytes())
}
