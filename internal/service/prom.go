package service

import (
	"net/http"
	"strconv"
	"time"

	"harvest/internal/ledger"
	"harvest/internal/obs"
)

// writeProm renders the daemon's /metrics numbers in Prometheus text
// exposition: per-endpoint counters and latency histograms for both dialects,
// plus each datacenter's snapshot staleness and ledger books. Latency metrics
// are in microseconds — the histograms' native power-of-two resolution —
// rather than the conventional seconds, so the `le` bounds stay exact
// integers (see obs.BucketUpperMicros).
func (a *API) writeProm(w http.ResponseWriter) {
	var p obs.Prom

	p.Metric("harvestd_uptime_seconds", "gauge", "Seconds since the daemon started.")
	p.Float("harvestd_uptime_seconds", "", time.Since(a.start).Seconds())

	p.Metric("harvestd_requests_total", "counter", "Requests served, by endpoint and dialect.")
	p.Metric("harvestd_request_errors_total", "counter", "4xx/5xx responses, by endpoint and dialect.")
	for _, name := range apiEndpoints {
		m := a.endpoints[name]
		ls := obs.Labels("endpoint", name, "dialect", obs.DialectJSON)
		p.Uint("harvestd_requests_total", ls, m.Requests.Load())
		p.Uint("harvestd_request_errors_total", ls, m.Errors.Load())
	}
	if a.binary != nil {
		for _, op := range binaryOps {
			m := a.binary.endpointMetric(op)
			ls := obs.Labels("endpoint", op.String(), "dialect", obs.DialectBinary)
			p.Uint("harvestd_requests_total", ls, m.Requests.Load())
			p.Uint("harvestd_request_errors_total", ls, m.Errors.Load())
		}
	}
	p.Metric("harvestd_request_latency_microseconds", "histogram", "Request latency by endpoint and dialect, in microseconds.")
	for _, name := range apiEndpoints {
		p.Histogram("harvestd_request_latency_microseconds",
			obs.Labels("endpoint", name, "dialect", obs.DialectJSON), &a.endpoints[name].Latency)
	}
	if a.binary != nil {
		st := a.binary.Stats()
		for _, op := range binaryOps {
			p.Histogram("harvestd_request_latency_microseconds",
				obs.Labels("endpoint", op.String(), "dialect", obs.DialectBinary),
				&a.binary.endpointMetric(op).Latency)
		}
		p.Metric("harvestd_binary_accepted_conns_total", "counter", "Binary client connections accepted.")
		p.Uint("harvestd_binary_accepted_conns_total", "", st.Accepted)
		p.Metric("harvestd_binary_open_conns", "gauge", "Binary client connections currently open.")
		p.Int("harvestd_binary_open_conns", "", st.Open)
		p.Metric("harvestd_binary_framing_errors_total", "counter", "Connections dropped for bad framing.")
		p.Uint("harvestd_binary_framing_errors_total", "", st.FramingErrors)
	}

	dcs := a.svc.Datacenters()
	type dcStats struct {
		dc string
		st ShardStats
	}
	rows := make([]dcStats, 0, len(dcs))
	for _, dc := range dcs {
		if st, ok := a.svc.Stats(dc); ok {
			rows = append(rows, dcStats{dc, st})
		}
	}

	p.Metric("harvestd_snapshot_generation", "gauge", "Current snapshot generation.")
	p.Metric("harvestd_snapshot_age_seconds", "gauge", "Age of the serving snapshot.")
	p.Metric("harvestd_snapshot_refreshes_total", "counter", "Snapshot refreshes.")
	p.Metric("harvestd_snapshot_refresh_errors_total", "counter", "Snapshot refresh failures.")
	p.Metric("harvestd_classes", "gauge", "Utilization classes in the serving snapshot.")
	p.Metric("harvestd_servers", "gauge", "Servers in the serving snapshot.")
	p.Metric("harvestd_tenants", "gauge", "Tenants in the serving snapshot.")
	p.Metric("harvestd_ingested_samples_total", "counter", "Telemetry samples accepted.")
	for _, row := range rows {
		ls := obs.Labels("dc", row.dc)
		p.Uint("harvestd_snapshot_generation", ls, row.st.Generation)
		p.Float("harvestd_snapshot_age_seconds", ls, row.st.Age.Seconds())
		p.Uint("harvestd_snapshot_refreshes_total", ls, row.st.Refreshes)
		p.Uint("harvestd_snapshot_refresh_errors_total", ls, row.st.RefreshErrors)
		p.Int("harvestd_classes", ls, int64(row.st.Classes))
		p.Int("harvestd_servers", ls, int64(row.st.Servers))
		p.Int("harvestd_tenants", ls, int64(row.st.Tenants))
		p.Uint("harvestd_ingested_samples_total", ls, row.st.IngestedSamples)
	}

	// Refresh latency as a full histogram (same microsecond convention as the
	// request latencies) — the scale acceptance gate: steady-state warm
	// refreshes must hold their p99 under the refresh interval at scale 1.0.
	p.Metric("harvestd_snapshot_refresh_microseconds", "histogram", "Successful snapshot refresh latency (recluster + rekey + publish), in microseconds.")
	for _, row := range rows {
		if h := a.svc.RefreshLatency(row.dc); h != nil {
			p.Histogram("harvestd_snapshot_refresh_microseconds", obs.Labels("dc", row.dc), h)
		}
	}

	// The ledger books: exact milli-core integers, same conservation invariant
	// as the JSON shape (reserved == released + expired + forfeited + outstanding).
	p.Metric("harvestd_ledger_active_leases", "gauge", "Live leases.")
	p.Metric("harvestd_ledger_outstanding_cores", "gauge", "Cores currently reserved.")
	p.Metric("harvestd_ledger_reserved_millis_total", "counter", "Milli-cores ever reserved.")
	p.Metric("harvestd_ledger_released_millis_total", "counter", "Milli-cores returned by release.")
	p.Metric("harvestd_ledger_expired_millis_total", "counter", "Milli-cores reclaimed by expiry.")
	p.Metric("harvestd_ledger_forfeited_millis_total", "counter", "Milli-cores forfeited on snapshot change.")
	p.Metric("harvestd_ledger_reserves_total", "counter", "Successful reservations.")
	p.Metric("harvestd_ledger_releases_total", "counter", "Successful releases.")
	p.Metric("harvestd_ledger_renews_total", "counter", "Successful lease renewals.")
	p.Metric("harvestd_ledger_expiries_total", "counter", "Lease expiries.")
	p.Metric("harvestd_ledger_conflicts_total", "counter", "Reservations lost to capacity conflicts.")
	for _, row := range rows {
		ls := obs.Labels("dc", row.dc)
		led := row.st.Ledger
		p.Int("harvestd_ledger_active_leases", ls, int64(led.ActiveLeases))
		p.Float("harvestd_ledger_outstanding_cores", ls, ledger.CoresOf(led.OutstandingMillis))
		p.Int("harvestd_ledger_reserved_millis_total", ls, led.ReservedMillis)
		p.Int("harvestd_ledger_released_millis_total", ls, led.ReleasedMillis)
		p.Int("harvestd_ledger_expired_millis_total", ls, led.ExpiredMillis)
		p.Int("harvestd_ledger_forfeited_millis_total", ls, led.ForfeitedMillis)
		p.Uint("harvestd_ledger_reserves_total", ls, led.Reserves)
		p.Uint("harvestd_ledger_releases_total", ls, led.Releases)
		p.Uint("harvestd_ledger_renews_total", ls, led.Renews)
		p.Uint("harvestd_ledger_expiries_total", ls, led.Expiries)
		p.Uint("harvestd_ledger_conflicts_total", ls, led.Conflicts)
	}

	// Admission floors: the milli-cores withheld from each class between
	// refreshes because live utilization ran ahead of the snapshot's view.
	p.Metric("harvestd_reserve_floor_millis", "gauge", "Milli-cores withheld from admission per class by the live-utilization floor.")
	for _, row := range rows {
		for i, m := range row.st.Ledger.ReserveFloorMillisByClass {
			if m != 0 {
				p.Int("harvestd_reserve_floor_millis", obs.Labels("dc", row.dc, "class", strconv.Itoa(i)), m)
			}
		}
	}

	// The block-placement ledger's durability books: exact whole-replica
	// integers with the same conservation invariants as the JSON shape
	// (placed + pending == replica_slots, lost == replaced + pending).
	p.Metric("harvestd_blocks", "gauge", "Blocks tracked by the block-placement ledger.")
	p.Metric("harvestd_block_replica_slots", "gauge", "Replica slots across all tracked blocks.")
	p.Metric("harvestd_block_replicas_placed", "gauge", "Replica slots currently holding a live replica.")
	p.Metric("harvestd_block_replicas_pending", "gauge", "Replica slots awaiting re-replication.")
	p.Metric("harvestd_block_replicas_lost_total", "counter", "Replicas ever lost to reimaging.")
	p.Metric("harvestd_block_replicas_replaced_total", "counter", "Lost replicas re-placed by the repair loop.")
	p.Metric("harvestd_block_creates_total", "counter", "Blocks created.")
	p.Metric("harvestd_block_reimages_total", "counter", "Reimaging events ingested.")
	p.Metric("harvestd_block_stale_retries_total", "counter", "Block operations retried across snapshot generation changes.")
	p.Metric("harvestd_block_repair_queue", "gauge", "Replica slots queued for the re-replicator.")
	p.Metric("harvestd_block_repair_failures_total", "counter", "Repair attempts that requeued without placing a replica.")
	p.Metric("harvestd_placement_relaxed_total", "counter", "Replica picks that fell back to relaxed (non-diverse) placement.")
	for _, row := range rows {
		ls := obs.Labels("dc", row.dc)
		b := row.st.Blocks
		p.Int("harvestd_blocks", ls, b.Blocks)
		p.Int("harvestd_block_replica_slots", ls, b.ReplicaSlots)
		p.Int("harvestd_block_replicas_placed", ls, b.Placed)
		p.Int("harvestd_block_replicas_pending", ls, b.Pending)
		p.Int("harvestd_block_replicas_lost_total", ls, b.Lost)
		p.Int("harvestd_block_replicas_replaced_total", ls, b.Replaced)
		p.Uint("harvestd_block_creates_total", ls, b.Creates)
		p.Uint("harvestd_block_reimages_total", ls, b.Reimages)
		p.Uint("harvestd_block_stale_retries_total", ls, b.StaleRetries)
		p.Int("harvestd_block_repair_queue", ls, int64(b.RepairQueue))
		p.Uint("harvestd_block_repair_failures_total", ls, row.st.RepairFailures)
		p.Uint("harvestd_placement_relaxed_total", ls, row.st.PlacementRelaxed)
	}

	// Drift-threshold feedback loop: the warm path's current gate and the
	// last full rebuild's warm-vs-oracle agreement (-1 until measured).
	p.Metric("harvestd_drift_threshold", "gauge", "Auto-tuned warm-recluster drift threshold.")
	p.Metric("harvestd_full_rebuild_agreement", "gauge", "Clustering agreement between warm path and last full rebuild (-1 until measured).")
	for _, row := range rows {
		ls := obs.Labels("dc", row.dc)
		if row.st.Recluster.DriftThreshold > 0 {
			p.Float("harvestd_drift_threshold", ls, row.st.Recluster.DriftThreshold)
		}
		p.Float("harvestd_full_rebuild_agreement", ls, row.st.Recluster.FullAgreement)
	}

	// Replication: role, stream health, and ship→apply lag (follower side).
	rst := a.svc.ReplicationStats()
	p.Metric("harvestd_replication_role", "gauge", "1 when this node is the primary, 0 when a follower.")
	p.Float("harvestd_replication_role", obs.Labels("node", rst.NodeID), boolFloat(rst.Role == "primary"))
	p.Metric("harvestd_replication_followers", "gauge", "Follower connections currently attached (primary side).")
	p.Int("harvestd_replication_followers", "", int64(rst.Followers))
	p.Metric("harvestd_replication_frames_shipped_total", "counter", "Replication frames shipped to followers.")
	p.Uint("harvestd_replication_frames_shipped_total", "", rst.FramesShipped)
	p.Metric("harvestd_replication_ship_errors_total", "counter", "Replication frame ship failures.")
	p.Uint("harvestd_replication_ship_errors_total", "", rst.ShipErrors)
	p.Metric("harvestd_replication_connected", "gauge", "1 when the follower's stream to its primary is up.")
	p.Float("harvestd_replication_connected", "", boolFloat(rst.Connected))
	p.Metric("harvestd_replication_snapshots_applied_total", "counter", "Full replication snapshots applied.")
	p.Uint("harvestd_replication_snapshots_applied_total", "", rst.SnapshotsApplied)
	p.Metric("harvestd_replication_deltas_applied_total", "counter", "Incremental replication deltas applied.")
	p.Uint("harvestd_replication_deltas_applied_total", "", rst.DeltasApplied)
	p.Metric("harvestd_replication_beats_applied_total", "counter", "Replication ledger beats applied.")
	p.Uint("harvestd_replication_beats_applied_total", "", rst.BeatsApplied)
	p.Metric("harvestd_replication_promotions_total", "counter", "Follower-to-primary promotions on this node.")
	p.Uint("harvestd_replication_promotions_total", "", rst.Promotions)
	p.Metric("harvestd_replication_apply_lag_microseconds", "histogram", "Primary-send to follower-applied lag per replication frame, in microseconds.")
	if h := a.svc.ReplicationLagHistogram(); h != nil {
		p.Histogram("harvestd_replication_apply_lag_microseconds", "", h)
	}
	p.Metric("harvestd_replication_generation", "gauge", "Last replication generation applied, by datacenter (follower side).")
	for dc, gen := range rst.AppliedGenerations {
		p.Uint("harvestd_replication_generation", obs.Labels("dc", dc), gen)
	}

	w.Header().Set("Content-Type", obs.PromContentType)
	w.Write(p.Bytes())
}

func boolFloat(v bool) float64 {
	if v {
		return 1
	}
	return 0
}
