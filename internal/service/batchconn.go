package service

import (
	"net"
	"sync"
)

// BatchListener wraps an accepted connection in a write-behind buffer that
// flushes when the serving goroutine next reads. net/http flushes its own
// buffer — one write syscall — at the end of every response, which caps a
// pipelining client at roughly one syscall pair per request. With this
// wrapper the responses to a pipelined batch accumulate in memory and go out
// in a single write when the server turns around to read the next batch, the
// same trick memcached and Redis use. Flushing on read keeps it
// deadlock-free: a response can only be parked while the connection's server
// goroutine is still producing it; the moment the server would block waiting
// for the client, the buffer drains first.
type BatchListener struct {
	net.Listener
}

// Accept wraps the next connection.
func (l BatchListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &batchConn{Conn: c}, nil
}

// batchFlushLimit flushes eagerly once this much response data is parked, so
// a burst of large responses cannot grow the buffer without bound.
const batchFlushLimit = 64 << 10

// batchConn buffers writes until the next Read (or Close). The mutex makes
// Write/Read safe for net/http's background connection reader, which can run
// concurrently with the handler's writes.
type batchConn struct {
	net.Conn
	mu  sync.Mutex
	buf []byte
}

func (c *batchConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	c.buf = append(c.buf, p...)
	var err error
	if len(c.buf) >= batchFlushLimit {
		err = c.flushLocked()
	}
	c.mu.Unlock()
	if err != nil {
		return 0, err
	}
	return len(p), nil
}

func (c *batchConn) flushLocked() error {
	if len(c.buf) == 0 {
		return nil
	}
	_, err := c.Conn.Write(c.buf)
	c.buf = c.buf[:0]
	return err
}

func (c *batchConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	err := c.flushLocked()
	c.mu.Unlock()
	if err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}

func (c *batchConn) Close() error {
	c.mu.Lock()
	c.flushLocked()
	c.mu.Unlock()
	return c.Conn.Close()
}
