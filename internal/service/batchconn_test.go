package service

import (
	"bytes"
	"errors"
	"net"
	"strings"
	"testing"
	"time"
)

// fakeConn is a scriptable net.Conn for batchConn tests: it records every
// underlying Write call (so flush coalescing and ordering are observable),
// serves reads from a buffer, and can inject write errors.
type fakeConn struct {
	writes   [][]byte // one entry per underlying Write call
	readData bytes.Buffer
	writeErr error
	closed   bool
}

func (c *fakeConn) Write(p []byte) (int, error) {
	if c.writeErr != nil {
		return 0, c.writeErr
	}
	c.writes = append(c.writes, append([]byte(nil), p...))
	return len(p), nil
}

func (c *fakeConn) Read(p []byte) (int, error)         { return c.readData.Read(p) }
func (c *fakeConn) Close() error                       { c.closed = true; return nil }
func (c *fakeConn) LocalAddr() net.Addr                { return nil }
func (c *fakeConn) RemoteAddr() net.Addr               { return nil }
func (c *fakeConn) SetDeadline(t time.Time) error      { return nil }
func (c *fakeConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *fakeConn) SetWriteDeadline(t time.Time) error { return nil }

func (c *fakeConn) written() string {
	var b strings.Builder
	for _, w := range c.writes {
		b.Write(w)
	}
	return b.String()
}

func TestBatchConnParksWritesUntilRead(t *testing.T) {
	fc := &fakeConn{}
	fc.readData.WriteString("request")
	bc := &batchConn{Conn: fc}

	for _, chunk := range []string{"response-1 ", "response-2 ", "response-3"} {
		n, err := bc.Write([]byte(chunk))
		if err != nil || n != len(chunk) {
			t.Fatalf("Write(%q) = %d, %v", chunk, n, err)
		}
	}
	if len(fc.writes) != 0 {
		t.Fatalf("writes reached the conn before a Read: %q", fc.written())
	}

	// The next Read drains the parked responses first — in one syscall, in
	// write order — then reads from the connection.
	buf := make([]byte, 16)
	n, err := bc.Read(buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got := string(buf[:n]); got != "request" {
		t.Errorf("Read returned %q, want the inbound bytes", got)
	}
	if len(fc.writes) != 1 {
		t.Fatalf("flush used %d underlying writes, want 1 (coalesced)", len(fc.writes))
	}
	if got, want := fc.written(), "response-1 response-2 response-3"; got != want {
		t.Errorf("flushed %q, want %q (ordering preserved)", got, want)
	}

	// A Read with nothing parked does not issue an empty write.
	fc.readData.WriteString("more")
	if _, err := bc.Read(buf); err != nil {
		t.Fatal(err)
	}
	if len(fc.writes) != 1 {
		t.Errorf("empty flush issued an underlying write")
	}
}

func TestBatchConnEagerFlushAtLimit(t *testing.T) {
	fc := &fakeConn{}
	bc := &batchConn{Conn: fc}

	// Just under the limit: still parked.
	almost := bytes.Repeat([]byte("x"), batchFlushLimit-1)
	if _, err := bc.Write(almost); err != nil {
		t.Fatal(err)
	}
	if len(fc.writes) != 0 {
		t.Fatal("flushed below the limit")
	}
	// One more byte crosses the limit: the whole buffer goes out at once.
	if _, err := bc.Write([]byte("y")); err != nil {
		t.Fatal(err)
	}
	if len(fc.writes) != 1 || len(fc.writes[0]) != batchFlushLimit {
		t.Fatalf("eager flush wrote %d chunks, want one %d-byte write", len(fc.writes), batchFlushLimit)
	}
}

func TestBatchConnWriteErrorPaths(t *testing.T) {
	// An error during the eager flush surfaces on Write.
	fc := &fakeConn{writeErr: errors.New("peer vanished")}
	bc := &batchConn{Conn: fc}
	big := bytes.Repeat([]byte("x"), batchFlushLimit)
	if _, err := bc.Write(big); err == nil {
		t.Fatal("eager-flush error not surfaced by Write")
	}

	// A parked response whose flush fails surfaces on the next Read, before
	// any bytes are read.
	fc2 := &fakeConn{}
	fc2.readData.WriteString("request")
	bc2 := &batchConn{Conn: fc2}
	if _, err := bc2.Write([]byte("response")); err != nil {
		t.Fatal(err)
	}
	fc2.writeErr = errors.New("partial write")
	if _, err := bc2.Read(make([]byte, 4)); err == nil {
		t.Fatal("flush error not surfaced by Read")
	}
}

func TestBatchConnCloseFlushes(t *testing.T) {
	fc := &fakeConn{}
	bc := &batchConn{Conn: fc}
	if _, err := bc.Write([]byte("last response")); err != nil {
		t.Fatal(err)
	}
	if err := bc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if !fc.closed {
		t.Error("underlying conn not closed")
	}
	if got := fc.written(); got != "last response" {
		t.Errorf("Close flushed %q, want %q", got, "last response")
	}

	// Close with a failing flush still closes the connection; the parked
	// bytes are lost but the fd is not leaked.
	fc2 := &fakeConn{}
	bc2 := &batchConn{Conn: fc2}
	bc2.Write([]byte("doomed"))
	fc2.writeErr = errors.New("broken pipe")
	if err := bc2.Close(); err != nil {
		t.Fatalf("Close after flush error: %v", err)
	}
	if !fc2.closed {
		t.Error("conn left open after failed final flush")
	}
}

// TestBatchListenerWrapsAcceptedConns covers the Accept path over a real TCP
// pair: bytes written by the server side stay parked until it reads.
func TestBatchListenerWrapsAcceptedConns(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	bl := BatchListener{Listener: ln}
	defer bl.Close()

	type acceptResult struct {
		conn net.Conn
		err  error
	}
	accepted := make(chan acceptResult, 1)
	go func() {
		c, err := bl.Accept()
		accepted <- acceptResult{c, err}
	}()

	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	res := <-accepted
	if res.err != nil {
		t.Fatal(res.err)
	}
	server := res.conn
	defer server.Close()
	if _, ok := server.(*batchConn); !ok {
		t.Fatalf("Accept returned %T, want *batchConn", server)
	}

	// Parked on the server: the client must not see it yet.
	if _, err := server.Write([]byte("parked")); err != nil {
		t.Fatal(err)
	}
	client.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	if n, err := client.Read(make([]byte, 16)); err == nil {
		t.Fatalf("client read %d parked bytes before the server turned around", n)
	}

	// The server turning around to read releases the batch.
	client.SetWriteDeadline(time.Now().Add(time.Second))
	if _, err := client.Write([]byte("next request")); err != nil {
		t.Fatal(err)
	}
	if _, err := server.Read(make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	client.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 16)
	n, err := client.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(buf[:n]); got != "parked" {
		t.Errorf("client received %q, want %q", got, "parked")
	}
}
