// Serving-side microbenchmarks: the in-process cost of the three snapshot
// operations the HTTP API fans into. BENCH_PR2.json records the numbers
// together with the end-to-end loadgen results (which add the HTTP layer on
// top of these).
package service_test

import (
	"sync/atomic"
	"testing"

	"harvest/internal/core"
	"harvest/internal/service"
)

// BenchmarkServiceSelect measures concurrent class selection through the
// snapshot layer (pooled RNGs, shared immutable usage view).
func BenchmarkServiceSelect(b *testing.B) {
	svc := newTestService(b)
	job := core.JobRequest{Type: core.JobMedium, MaxConcurrentCores: 8}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, _, err := svc.Select("DC-9", job); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkServiceSelectReserveRelease measures the reserving query path:
// each iteration runs class selection, CASes a reservation into the
// allocation ledger, and releases it — the full select → hold → release
// cycle minus the hold.
func BenchmarkServiceSelectReserveRelease(b *testing.B) {
	svc := newTestService(b)
	job := core.JobRequest{Type: core.JobMedium, MaxConcurrentCores: 8}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			grant, _, err := svc.SelectReserve("DC-9", job, -1)
			if err != nil {
				b.Fatal(err)
			}
			if grant.Reserved() {
				if _, err := svc.Release("DC-9", grant.Lease); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkServicePlace measures concurrent replica placement through the
// snapshot layer (pooled placement-scheme clones).
func BenchmarkServicePlace(b *testing.B) {
	svc := newTestService(b)
	c := core.PlacementConstraints{Replication: 3, Writer: -1, EnforceEnvironment: true}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, _, err := svc.Place("DC-9", c); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSnapshotSwap measures what a reader pays while snapshots are being
// published underneath it: parallel readers run class selection in a loop
// while the benchmark goroutine keeps republishing snapshots via Refresh.
// The interesting result is that the reader path costs the same as in
// BenchmarkServiceSelect — the swap is invisible to readers.
func BenchmarkSnapshotSwap(b *testing.B) {
	svc := newTestService(b)
	job := core.JobRequest{Type: core.JobShort, MaxConcurrentCores: 4}
	var stop atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		for !stop.Load() {
			if err := svc.Refresh("DC-9"); err != nil {
				b.Error(err)
				return
			}
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, _, err := svc.Select("DC-9", job); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	stop.Store(true)
	<-done
	snap, _ := svc.Snapshot("DC-9")
	b.ReportMetric(float64(snap.Generation), "generations")
}

// BenchmarkSnapshotBuild measures one full from-scratch snapshot rebuild
// (FFT classification of every tenant, K-Means, placement clustering) — the
// cost warm-started refreshes exist to avoid, forced here by a
// FullRebuildEvery of 1.
func BenchmarkSnapshotBuild(b *testing.B) {
	cfg := testConfig()
	cfg.FullRebuildEvery = 1
	svc, err := service.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := svc.Refresh("DC-9"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotRefreshWarm measures the steady-state refresh: a
// warm-started re-clustering (drift check + K-Means from previous centroids,
// no FFT for undrifted tenants) plus snapshot assembly. The ratio to
// BenchmarkSnapshotBuild is the PR's headline number (BENCH_PR3.json).
func BenchmarkSnapshotRefreshWarm(b *testing.B) {
	cfg := testConfig()
	cfg.FullRebuildEvery = -1 // measure the pure warm path; the backstop is benched above
	svc, err := service.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := svc.Refresh("DC-9"); err != nil {
			b.Fatal(err)
		}
	}
}

var sinkHistogram service.Histogram

// BenchmarkHistogramObserve measures the per-request metrics cost.
func BenchmarkHistogramObserve(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkHistogram.Observe(12345)
	}
}
