package service_test

import (
	"errors"
	"net"
	"testing"
	"time"

	"harvest/internal/core"
	"harvest/internal/ledger"
	"harvest/internal/service"
)

func replTestConfig(nodeID string) service.Config {
	cfg := testConfig()
	cfg.NodeID = nodeID
	cfg.ReplInterval = 25 * time.Millisecond
	return cfg
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func checkLedgerConservation(t *testing.T, st ledger.Stats, who string) {
	t.Helper()
	if st.ReservedMillis != st.ReleasedMillis+st.ExpiredMillis+st.ForfeitedMillis+st.OutstandingMillis {
		t.Fatalf("%s books do not conserve: reserved %d != released %d + expired %d + forfeited %d + outstanding %d",
			who, st.ReservedMillis, st.ReleasedMillis, st.ExpiredMillis, st.ForfeitedMillis, st.OutstandingMillis)
	}
}

// TestReplicationAndPromotion drives the full replica lifecycle end to end:
// a follower joins and receives a full snapshot, tracks the primary through a
// delta generation and ledger beats, rejects writes while following, and —
// after the primary dies with leases outstanding — promotes with exactly
// conserved books, no double-grants, and a working write path.
func TestReplicationAndPromotion(t *testing.T) {
	const dc = "DC-9"
	primary, err := service.New(replTestConfig("p1"))
	if err != nil {
		t.Fatalf("New primary: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	primary.ServeReplication(ln)
	primary.Start()

	// Move the primary past its boot generation so the follower's join is a
	// genuine full-snapshot ship, then put leases on the books: one released
	// (history the follower must carry), one outstanding (the promotion
	// cargo).
	if err := primary.Refresh(dc); err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	job := core.JobRequest{Type: core.JobMedium, MaxConcurrentCores: 2}
	released, _, err := primary.SelectReserve(dc, job, 0)
	if err != nil || !released.Reserved() {
		t.Fatalf("SelectReserve (to release): %+v, %v", released, err)
	}
	if _, err := primary.Release(dc, released.Lease); err != nil {
		t.Fatalf("Release: %v", err)
	}
	outstanding, _, err := primary.SelectReserve(dc, job, -1)
	if err != nil || !outstanding.Reserved() {
		t.Fatalf("SelectReserve (outstanding): %+v, %v", outstanding, err)
	}

	fcfg := replTestConfig("f1")
	fcfg.FollowAddr = ln.Addr().String()
	follower, err := service.New(fcfg)
	if err != nil {
		t.Fatalf("New follower: %v", err)
	}
	follower.Start()
	defer follower.Close()

	if !follower.IsFollower() || follower.Role() != "follower" {
		t.Fatalf("follower role = %q", follower.Role())
	}

	primarySnap, _ := primary.Snapshot(dc)
	waitFor(t, "follower to apply the primary's generation", func() bool {
		snap, _ := follower.Snapshot(dc)
		fst, _ := follower.LedgerStats(dc)
		pst, _ := primary.LedgerStats(dc)
		return snap.Generation == primarySnap.Generation &&
			fst.ReservedMillis == pst.ReservedMillis && fst.ActiveLeases == pst.ActiveLeases
	})
	if rst := follower.ReplicationStats(); rst.SnapshotsApplied == 0 {
		t.Fatalf("follower joined without a full snapshot: %+v", rst)
	}
	if got := follower.PrimaryID(); got != "p1" {
		t.Fatalf("follower PrimaryID = %q, want p1", got)
	}

	// Reads serve on the follower; writes must not.
	sel, _, err := follower.Select(dc, job)
	if err != nil || sel.Empty() {
		t.Fatalf("follower read path: selection %+v, err %v", sel, err)
	}
	if _, _, err := follower.SelectReserve(dc, job, 0); !errors.Is(err, service.ErrFollower) {
		t.Fatalf("follower reserving select: err = %v, want ErrFollower", err)
	}
	if _, err := follower.Release(dc, outstanding.Lease); !errors.Is(err, service.ErrFollower) {
		t.Fatalf("follower release: err = %v, want ErrFollower", err)
	}
	if _, err := follower.Ingest(dc, []service.IngestSample{{Tenant: 0, Server: -1, Value: 0.5}}); !errors.Is(err, service.ErrFollower) {
		t.Fatalf("follower ingest: err = %v, want ErrFollower", err)
	}

	// A refresh on the primary must reach the follower as an incremental
	// delta (one generation ahead), not a full resend.
	if err := primary.Refresh(dc); err != nil {
		t.Fatalf("Refresh 2: %v", err)
	}
	waitFor(t, "follower to apply the delta generation", func() bool {
		snap, _ := follower.Snapshot(dc)
		return snap.Generation == primarySnap.Generation+1
	})
	if rst := follower.ReplicationStats(); rst.DeltasApplied == 0 {
		t.Fatalf("generation advanced without a delta: %+v", rst)
	}

	// New books after the delta propagate via beats.
	post, _, err := primary.SelectReserve(dc, job, -1)
	if err != nil || !post.Reserved() {
		t.Fatalf("SelectReserve (post-delta): %+v, %v", post, err)
	}
	waitFor(t, "beat to carry the new lease", func() bool {
		fst, _ := follower.LedgerStats(dc)
		pst, _ := primary.LedgerStats(dc)
		return fst.ReservedMillis == pst.ReservedMillis && fst.ActiveLeases == pst.ActiveLeases
	})

	// Primary dies with leases outstanding; the follower takes over.
	pst, _ := primary.LedgerStats(dc)
	primary.Close()
	if !follower.Promote() {
		t.Fatal("Promote returned false on a follower")
	}
	if follower.Promote() {
		t.Fatal("second Promote returned true")
	}
	if follower.IsFollower() || follower.Role() != "primary" {
		t.Fatalf("promoted role = %q", follower.Role())
	}

	// Lease conservation survives the handoff exactly.
	fst, _ := follower.LedgerStats(dc)
	checkLedgerConservation(t, fst, "promoted follower")
	if fst.ReservedMillis != pst.ReservedMillis || fst.OutstandingMillis != pst.OutstandingMillis {
		t.Fatalf("promoted books diverge: follower %+v primary %+v", fst, pst)
	}

	// The replicated leases release exactly once under their original ids —
	// a second release is unknown, so nothing can be double-returned.
	rel, err := follower.Release(dc, outstanding.Lease)
	if err != nil {
		t.Fatalf("release replicated lease after promotion: %v", err)
	}
	if rel.TotalMillis() == 0 {
		t.Fatal("replicated lease released zero cores")
	}
	if _, err := follower.Release(dc, outstanding.Lease); !errors.Is(err, ledger.ErrUnknownLease) {
		t.Fatalf("double release: err = %v, want ErrUnknownLease", err)
	}

	// And the promoted node grants fresh leases.
	fresh, _, err := follower.SelectReserve(dc, job, 0)
	if err != nil || !fresh.Reserved() {
		t.Fatalf("post-promotion reserve: %+v, %v", fresh, err)
	}
	fst, _ = follower.LedgerStats(dc)
	checkLedgerConservation(t, fst, "promoted follower after new writes")
}

// TestDriftThresholdAutoTune pins the feedback loop: with full rebuilds every
// refresh and undrifted data, the oracle agrees with the warm path, so the
// drift threshold relaxes upward from its base — and the measurement shows up
// in ReclusterStats.
func TestDriftThresholdAutoTune(t *testing.T) {
	cfg := testConfig()
	cfg.FullRebuildEvery = 1 // every refresh is a full rebuild with an oracle measurement
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()
	const dc = "DC-9"
	if err := svc.Refresh(dc); err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	st, _ := svc.Stats(dc)
	if !st.Recluster.FullRebuild {
		t.Fatalf("expected a full rebuild, got %+v", st.Recluster)
	}
	if st.Recluster.FullAgreement < 0.99 {
		t.Fatalf("undrifted full rebuild agreement = %v, want >= 0.99", st.Recluster.FullAgreement)
	}
	base := core.DefaultDriftThreshold
	if cfg.Clustering.DriftThreshold > 0 {
		base = cfg.Clustering.DriftThreshold
	}
	if st.Recluster.DriftThreshold <= base {
		t.Fatalf("threshold after high agreement = %v, want relaxed above base %v", st.Recluster.DriftThreshold, base)
	}
	// Repeated agreement keeps relaxing but never past the clamp.
	for i := 0; i < 20; i++ {
		if err := svc.Refresh(dc); err != nil {
			t.Fatalf("Refresh %d: %v", i, err)
		}
	}
	st, _ = svc.Stats(dc)
	if max := base * 8; st.Recluster.DriftThreshold > max+1e-12 {
		t.Fatalf("threshold %v exceeded clamp %v", st.Recluster.DriftThreshold, max)
	}
}
