package service_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"harvest/internal/core"
	"harvest/internal/service"
)

// newPersistedService builds a service over dir and returns it after one
// refresh, so dir holds a generation-2 snapshot (and ledger) file.
func newPersistedService(t *testing.T, dir string) (*service.Service, service.Config) {
	t.Helper()
	cfg := testConfig()
	cfg.PersistDir = dir
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := svc.Refresh("DC-9"); err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	return svc, cfg
}

// bootGeneration builds a fresh service over cfg and reports DC-9's boot
// generation plus whether it still answers queries — the "clean full build"
// contract every restore failure must fall back to.
func bootGeneration(t *testing.T, cfg service.Config) uint64 {
	t.Helper()
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatalf("New after restore problem: %v", err)
	}
	snap, ok := svc.Snapshot("DC-9")
	if !ok {
		t.Fatal("no snapshot after restore problem")
	}
	if sel, _, err := svc.Select("DC-9", core.JobRequest{Type: core.JobMedium, MaxConcurrentCores: 2}); err != nil || sel.Empty() {
		t.Fatalf("service not queryable after restore problem: %v %+v", err, sel)
	}
	return snap.Generation
}

func TestRestoreTruncatedSnapshotFile(t *testing.T) {
	dir := t.TempDir()
	svc, cfg := newPersistedService(t, dir)
	svc.Close()
	path := filepath.Join(dir, "DC-9.snapshot.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop the file mid-JSON — the torn-write case the atomic rename is
	// supposed to prevent, simulated anyway (e.g. a truncating copy tool).
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if gen := bootGeneration(t, cfg); gen != 1 {
		t.Errorf("generation after truncated file = %d, want 1 (clean full build)", gen)
	}
}

func TestRestoreCorruptLedgerFile(t *testing.T) {
	dir := t.TempDir()
	svc, cfg := newPersistedService(t, dir)
	if grant, _, err := svc.SelectReserve("DC-9", core.JobRequest{Type: core.JobMedium, MaxConcurrentCores: 4}, -1); err != nil || !grant.Reserved() {
		t.Fatalf("SelectReserve: %+v, %v", grant, err)
	}
	svc.Close()
	// Corrupt only the ledger: the snapshot must still restore, with an
	// empty ledger.
	if err := os.WriteFile(filepath.Join(dir, "DC-9.ledger.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	svc2, err := service.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	snap, _ := svc2.Snapshot("DC-9")
	if snap.Generation != 2 {
		t.Errorf("snapshot generation = %d, want 2 (snapshot restore unaffected)", snap.Generation)
	}
	if st, _ := svc2.LedgerStats("DC-9"); st.ActiveLeases != 0 || st.ReservedMillis != 0 {
		t.Errorf("corrupt ledger file was trusted: %+v", st)
	}
}

func TestRestoreFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	svc, cfg := newPersistedService(t, dir)
	svc.Close()
	// A different datacenter scale regenerates a different population: the
	// persisted clustering is meaningless over it and must be discarded.
	cfg2 := cfg
	cfg2.Scale.Datacenter = cfg.Scale.Datacenter * 2
	if gen := bootGeneration(t, cfg2); gen != 1 {
		t.Errorf("generation after scale change = %d, want 1", gen)
	}
}

func TestRestoreMissingDirectory(t *testing.T) {
	cfg := testConfig()
	cfg.PersistDir = filepath.Join(t.TempDir(), "never", "created")
	if gen := bootGeneration(t, cfg); gen != 1 {
		t.Errorf("generation with missing persist dir = %d, want 1", gen)
	}
	// And persisting into it creates the directory on the fly.
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Refresh("DC-9"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(cfg.PersistDir, "DC-9.snapshot.json")); err != nil {
		t.Errorf("refresh did not create the persist dir: %v", err)
	}
	st, _ := svc.Stats("DC-9")
	if st.PersistErrors != 0 {
		t.Errorf("persist errors = %d, want 0", st.PersistErrors)
	}
}

// mutatePersisted rewrites one field of the persisted snapshot JSON.
func mutatePersisted(t *testing.T, dir string, mutate func(m map[string]any)) {
	t.Helper()
	path := filepath.Join(dir, "DC-9.snapshot.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	mutate(m)
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreRejectsBadContents(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(m map[string]any)
	}{
		{"future version", func(m map[string]any) { m["version"] = 999 }},
		{"wrong datacenter", func(m map[string]any) { m["datacenter"] = "DC-3" }},
		{"no classes", func(m map[string]any) { m["classes"] = []any{} }},
		{"tenant count mismatch", func(m map[string]any) { m["num_tenants"] = 1 }},
		{"unknown tenant", func(m map[string]any) {
			cls := m["classes"].([]any)[0].(map[string]any)
			cls["tenants"] = append(cls["tenants"].([]any), float64(99999999))
		}},
		{"bad pattern", func(m map[string]any) {
			cls := m["classes"].([]any)[0].(map[string]any)
			cls["pattern"] = 17
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			svc, cfg := newPersistedService(t, dir)
			svc.Close()
			mutatePersisted(t, dir, tc.mutate)
			if gen := bootGeneration(t, cfg); gen != 1 {
				t.Errorf("generation = %d, want 1 (file must be rejected)", gen)
			}
		})
	}
}
