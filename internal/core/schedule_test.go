package core

import (
	"math/rand"
	"testing"
	"time"

	"harvest/internal/signalproc"
	"harvest/internal/tenant"
)

// manualClustering builds a clustering with explicitly controlled classes so
// the selection behaviour can be asserted precisely.
func manualClustering(classes []*UtilizationClass) *Clustering {
	c := &Clustering{
		Classes:     classes,
		tenantClass: make(map[tenant.ID]ClassID),
		serverClass: make(map[tenant.ServerID]ClassID),
	}
	for _, cls := range classes {
		for _, tid := range cls.Tenants {
			c.tenantClass[tid] = cls.ID
		}
		for _, sid := range cls.Servers {
			c.serverClass[sid] = cls.ID
		}
	}
	return c
}

func serverRange(lo, n int) []tenant.ServerID {
	out := make([]tenant.ServerID, n)
	for i := range out {
		out[i] = tenant.ServerID(lo + i)
	}
	return out
}

func threeClassClustering() *Clustering {
	return manualClustering([]*UtilizationClass{
		{
			ID: 0, Pattern: signalproc.PatternConstant,
			AvgUtilization: 0.30, PeakUtilization: 0.35,
			Tenants: []tenant.ID{0}, Servers: serverRange(0, 20),
		},
		{
			ID: 1, Pattern: signalproc.PatternPeriodic,
			AvgUtilization: 0.40, PeakUtilization: 0.80,
			Tenants: []tenant.ID{1}, Servers: serverRange(20, 20),
		},
		{
			ID: 2, Pattern: signalproc.PatternUnpredictable,
			AvgUtilization: 0.20, PeakUtilization: 0.90,
			Tenants: []tenant.ID{2}, Servers: serverRange(40, 20),
		},
	})
}

func TestClassifyLength(t *testing.T) {
	th := DefaultLengthThresholds()
	cases := []struct {
		dur  time.Duration
		want JobType
	}{
		{0, JobMedium}, // never ran before
		{-time.Second, JobMedium},
		{100 * time.Second, JobShort},
		{172 * time.Second, JobShort},
		{173 * time.Second, JobMedium},
		{300 * time.Second, JobMedium},
		{433 * time.Second, JobMedium},
		{434 * time.Second, JobLong},
		{2 * time.Hour, JobLong},
	}
	for _, c := range cases {
		if got := ClassifyLength(c.dur, th); got != c.want {
			t.Errorf("ClassifyLength(%v) = %v, want %v", c.dur, got, c.want)
		}
	}
}

func TestJobTypeString(t *testing.T) {
	if JobShort.String() != "short" || JobMedium.String() != "medium" || JobLong.String() != "long" {
		t.Errorf("unexpected job type strings")
	}
	if JobType(9).String() == "" {
		t.Errorf("unknown job type should produce a non-empty string")
	}
}

func TestDefaultRankingWeights(t *testing.T) {
	w := DefaultRankingWeights()
	if !(w[JobLong][signalproc.PatternConstant] > w[JobLong][signalproc.PatternPeriodic] &&
		w[JobLong][signalproc.PatternPeriodic] > w[JobLong][signalproc.PatternUnpredictable]) {
		t.Errorf("long jobs should prefer constant > periodic > unpredictable")
	}
	if !(w[JobShort][signalproc.PatternUnpredictable] > w[JobShort][signalproc.PatternPeriodic] &&
		w[JobShort][signalproc.PatternPeriodic] > w[JobShort][signalproc.PatternConstant]) {
		t.Errorf("short jobs should prefer unpredictable > periodic > constant")
	}
	if !(w[JobMedium][signalproc.PatternPeriodic] > w[JobMedium][signalproc.PatternConstant]) {
		t.Errorf("medium jobs should prefer periodic first")
	}
}

func TestNewSelectorValidation(t *testing.T) {
	clustering := threeClassClustering()
	rng := rand.New(rand.NewSource(1))
	if _, err := NewSelector(DefaultSelectorConfig(), nil, rng); err == nil {
		t.Errorf("nil clustering should error")
	}
	cfg := DefaultSelectorConfig()
	cfg.CoresPerServer = 0
	if _, err := NewSelector(cfg, clustering, rng); err == nil {
		t.Errorf("zero cores should error")
	}
	cfg = DefaultSelectorConfig()
	cfg.ReserveFraction = 1.5
	if _, err := NewSelector(cfg, clustering, rng); err == nil {
		t.Errorf("invalid reserve should error")
	}
	cfg = DefaultSelectorConfig()
	cfg.Weights = nil
	if _, err := NewSelector(cfg, clustering, nil); err != nil {
		t.Errorf("nil weights and rng should fall back to defaults: %v", err)
	}
}

func TestHeadroomDefinitionsPerJobType(t *testing.T) {
	clustering := threeClassClustering()
	sel, err := NewSelector(DefaultSelectorConfig(), clustering, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	periodic := clustering.Class(1) // avg 0.40, peak 0.80, 20 servers * 12 cores
	usage := ClassUsage{CurrentUtilization: 0.20}

	// Short: 1 - current - reserve = 1 - 0.2 - 1/3 = 0.4667 -> 112 cores.
	short := sel.Headroom(JobShort, periodic, usage)
	// Medium: 1 - max(avg, current) - reserve = 1 - 0.4 - 1/3 = 0.2667 -> 64.
	medium := sel.Headroom(JobMedium, periodic, usage)
	// Long: 1 - max(peak, current) - reserve = 1 - 0.8 - 1/3 < 0 -> 0.
	long := sel.Headroom(JobLong, periodic, usage)

	if !(short > medium && medium > long) {
		t.Fatalf("headrooms should shrink with job length: short=%v medium=%v long=%v", short, medium, long)
	}
	if long != 0 {
		t.Errorf("long-job headroom should clamp at 0, got %v", long)
	}
	const eps = 1e-9
	if diff := short - (1-0.2-1.0/3.0)*20*12; diff > eps || diff < -eps {
		t.Errorf("short headroom = %v", short)
	}
	if diff := medium - (1-0.4-1.0/3.0)*20*12; diff > eps || diff < -eps {
		t.Errorf("medium headroom = %v", medium)
	}
}

func TestHeadroomSubtractsAllocations(t *testing.T) {
	clustering := threeClassClustering()
	sel, err := NewSelector(DefaultSelectorConfig(), clustering, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	constant := clustering.Class(0)
	free := sel.Headroom(JobShort, constant, ClassUsage{CurrentUtilization: 0.3})
	less := sel.Headroom(JobShort, constant, ClassUsage{CurrentUtilization: 0.3, AllocatedCores: 50})
	if less >= free {
		t.Fatalf("allocated cores should reduce headroom: %v vs %v", less, free)
	}
	none := sel.Headroom(JobShort, constant, ClassUsage{CurrentUtilization: 0.3, AllocatedCores: 1e6})
	if none != 0 {
		t.Fatalf("headroom should clamp at zero, got %v", none)
	}
}

func TestSelectPrefersConstantForLongJobs(t *testing.T) {
	clustering := threeClassClustering()
	sel, err := NewSelector(DefaultSelectorConfig(), clustering, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	usage := map[ClassID]ClassUsage{
		0: {CurrentUtilization: 0.30},
		1: {CurrentUtilization: 0.40},
		2: {CurrentUtilization: 0.20},
	}
	counts := map[ClassID]int{}
	for i := 0; i < 500; i++ {
		s := sel.Select(JobRequest{Type: JobLong, MaxConcurrentCores: 10}, usage)
		if s.Empty() {
			t.Fatalf("long job should fit somewhere")
		}
		counts[s.Classes[0]]++
	}
	// The constant class (0) is the only one with long-job headroom here
	// (peaks of the others are too high), so it must dominate.
	if counts[0] < 450 {
		t.Fatalf("constant class selected %d/500 times for long jobs, want vast majority (counts=%v)", counts[0], counts)
	}
}

func TestSelectPrefersUnpredictableForShortJobs(t *testing.T) {
	clustering := threeClassClustering()
	sel, err := NewSelector(DefaultSelectorConfig(), clustering, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	// Same current utilization everywhere so only the ranking weights differ.
	usage := map[ClassID]ClassUsage{
		0: {CurrentUtilization: 0.30},
		1: {CurrentUtilization: 0.30},
		2: {CurrentUtilization: 0.30},
	}
	counts := map[ClassID]int{}
	for i := 0; i < 3000; i++ {
		s := sel.Select(JobRequest{Type: JobShort, MaxConcurrentCores: 10}, usage)
		if s.Empty() {
			t.Fatalf("short job should fit")
		}
		counts[s.Classes[0]]++
	}
	if !(counts[2] > counts[1] && counts[1] > counts[0]) {
		t.Fatalf("short jobs should favour unpredictable > periodic > constant, got %v", counts)
	}
}

func TestSelectSpansMultipleClassesWhenNeeded(t *testing.T) {
	clustering := threeClassClustering()
	sel, err := NewSelector(DefaultSelectorConfig(), clustering, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	usage := map[ClassID]ClassUsage{
		0: {CurrentUtilization: 0.30},
		1: {CurrentUtilization: 0.30},
		2: {CurrentUtilization: 0.30},
	}
	// Each class has (1-0.3-1/3)*20*12 ≈ 88 cores for a short job; ask for 200.
	s := sel.Select(JobRequest{Type: JobShort, MaxConcurrentCores: 200}, usage)
	if s.Empty() {
		t.Fatalf("job should fit across classes")
	}
	if len(s.Classes) < 2 {
		t.Fatalf("expected a multi-class selection, got %v", s.Classes)
	}
	seen := map[ClassID]bool{}
	for _, id := range s.Classes {
		if seen[id] {
			t.Fatalf("class %v selected twice", id)
		}
		seen[id] = true
	}
}

func TestSelectReturnsEmptyWhenNothingFits(t *testing.T) {
	clustering := threeClassClustering()
	sel, err := NewSelector(DefaultSelectorConfig(), clustering, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}
	usage := map[ClassID]ClassUsage{
		0: {CurrentUtilization: 0.95},
		1: {CurrentUtilization: 0.95},
		2: {CurrentUtilization: 0.95},
	}
	s := sel.Select(JobRequest{Type: JobShort, MaxConcurrentCores: 10}, usage)
	if !s.Empty() {
		t.Fatalf("selection should be empty when all classes are saturated, got %v", s.Classes)
	}
}

func TestSelectMissingUsageTreatedAsIdle(t *testing.T) {
	clustering := threeClassClustering()
	sel, err := NewSelector(DefaultSelectorConfig(), clustering, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	s := sel.Select(JobRequest{Type: JobMedium, MaxConcurrentCores: 10}, nil)
	if s.Empty() {
		t.Fatalf("with no usage reports, classes should appear idle and accept the job")
	}
}

func TestSelectionHeadroomsAlignWithClasses(t *testing.T) {
	clustering := threeClassClustering()
	sel, err := NewSelector(DefaultSelectorConfig(), clustering, rand.New(rand.NewSource(12)))
	if err != nil {
		t.Fatal(err)
	}
	s := sel.Select(JobRequest{Type: JobShort, MaxConcurrentCores: 10}, nil)
	if len(s.Classes) != len(s.Headrooms) {
		t.Fatalf("classes and headrooms must align: %d vs %d", len(s.Classes), len(s.Headrooms))
	}
	for _, h := range s.Headrooms {
		if h <= 0 {
			t.Fatalf("selected class headroom should be positive, got %v", h)
		}
	}
}
