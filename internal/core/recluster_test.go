package core

import (
	"math"
	"testing"
	"time"

	"harvest/internal/signalproc"
	"harvest/internal/tenant"
	"harvest/internal/timeseries"
)

// mapSource is a mutable HistorySource for tests: per-tenant series that can
// be swapped out to simulate drift between refreshes.
type mapSource struct {
	series  map[tenant.ID]*timeseries.Series
	horizon time.Duration
}

func newMapSource(pop *tenant.Population) *mapSource {
	src := &mapSource{series: make(map[tenant.ID]*timeseries.Series, len(pop.Tenants))}
	for _, t := range pop.Tenants {
		src.series[t.ID] = t.Utilization
		if d := t.Utilization.Duration(); d > src.horizon {
			src.horizon = d
		}
	}
	return src
}

func (m *mapSource) SeriesFor(id tenant.ID) *timeseries.Series { return m.series[id] }
func (m *mapSource) UtilizationAt(id tenant.ID, at time.Duration) float64 {
	s := m.series[id]
	if s == nil {
		return 0
	}
	return s.At(at)
}
func (m *mapSource) Horizon() time.Duration { return m.horizon }

// bestMatchAgreement maps each class of `got` to the class of `want` sharing
// the most tenants, then returns how many of the given tenants land in
// matching classes under that mapping. Class IDs are arbitrary labels, so
// agreement must be measured up to this correspondence.
func bestMatchAgreement(got, want *Clustering, ids []tenant.ID) int {
	match := make(map[ClassID]ClassID, len(got.Classes))
	for _, g := range got.Classes {
		overlap := make(map[ClassID]int)
		for _, tid := range g.Tenants {
			if w, ok := want.ClassOfTenant(tid); ok {
				overlap[w]++
			}
		}
		best, bestN := ClassID(-1), -1
		for w, n := range overlap {
			if n > bestN {
				best, bestN = w, n
			}
		}
		match[g.ID] = best
	}
	agree := 0
	for _, tid := range ids {
		g, okG := got.ClassOfTenant(tid)
		w, okW := want.ClassOfTenant(tid)
		if okG && okW && match[g] == w {
			agree++
		}
	}
	return agree
}

// TestReclusterNoDriftMatchesPrev pins the steady-state contract: with
// unchanged data, the warm path reclassifies nobody and reproduces the
// previous generation's assignment exactly.
func TestReclusterNoDriftMatchesPrev(t *testing.T) {
	pop := testPopulation(t, 1, 0.1)
	src := newMapSource(pop)
	svc := NewClusteringService(DefaultClusteringConfig())
	prev, err := svc.ClusterFrom(pop, src)
	if err != nil {
		t.Fatal(err)
	}
	next, st, err := svc.Recluster(prev, pop, src)
	if err != nil {
		t.Fatal(err)
	}
	if st.FullRebuild {
		t.Error("undrifted Recluster fell back to a full rebuild")
	}
	if st.Reclassified != 0 {
		t.Errorf("reclassified = %d, want 0 on unchanged data", st.Reclassified)
	}
	if st.WarmPatterns == 0 {
		t.Error("no pattern group was warm-started")
	}
	if len(next.Classes) != len(prev.Classes) {
		t.Fatalf("class count changed: %d -> %d", len(prev.Classes), len(next.Classes))
	}
	for _, tn := range pop.Tenants {
		p, _ := prev.ClassOfTenant(tn.ID)
		n, ok := next.ClassOfTenant(tn.ID)
		if !ok || p != n {
			t.Fatalf("tenant %v moved from class %v to %v with no drift", tn.ID, p, n)
		}
	}
}

// TestReclusterWarmStartSpeedAndAgreement is the PR's acceptance test: with
// ~5%% of tenants drifted, the warm-started Recluster must be at least 3x
// faster than a from-scratch rebuild on the same data, reclassify exactly
// the drifted tenants, and agree with the from-scratch oracle on >= 95%% of
// the non-drifted tenants (up to class-label correspondence).
func TestReclusterWarmStartSpeedAndAgreement(t *testing.T) {
	pop := testPopulation(t, 1, 0.1) // ~40 tenants at 0.1 scale
	src := newMapSource(pop)
	svc := NewClusteringService(DefaultClusteringConfig())

	prev, err := svc.ClusterFrom(pop, src)
	if err != nil {
		t.Fatal(err)
	}

	// Drift ~5% of tenants: shift their utilization clearly past the
	// threshold (a +0.15 mean move on a [0,1] scale).
	drifted := make(map[tenant.ID]bool)
	nDrift := (len(pop.Tenants) + 19) / 20
	for i := 0; i < nDrift; i++ {
		tn := pop.Tenants[i*len(pop.Tenants)/nDrift]
		s := tn.Utilization.Clone()
		for j := range s.Values {
			s.Values[j] = math.Min(s.Values[j]+0.15, 1)
		}
		src.series[tn.ID] = s
		drifted[tn.ID] = true
	}

	warmStart := time.Now()
	warm, st, err := svc.Recluster(prev, pop, src)
	warmTime := time.Since(warmStart)
	if err != nil {
		t.Fatal(err)
	}
	if st.Reclassified != nDrift {
		t.Errorf("reclassified = %d, want exactly the %d drifted tenants", st.Reclassified, nDrift)
	}

	// The from-scratch oracle over the same drifted data.
	fullStart := time.Now()
	oracle, err := svc.ClusterFrom(pop, src)
	fullTime := time.Since(fullStart)
	if err != nil {
		t.Fatal(err)
	}

	if fullTime < 3*warmTime {
		t.Errorf("warm recluster %v vs full rebuild %v: speedup %.1fx, want >= 3x",
			warmTime, fullTime, float64(fullTime)/float64(warmTime))
	}
	t.Logf("warm %v, full %v (%.1fx), reclassified %d/%d, warm/cold patterns %d/%d, iterations %d",
		warmTime, fullTime, float64(fullTime)/float64(warmTime),
		st.Reclassified, st.Tenants, st.WarmPatterns, st.ColdPatterns, st.Iterations)

	var nonDrifted []tenant.ID
	for _, tn := range pop.Tenants {
		if !drifted[tn.ID] {
			nonDrifted = append(nonDrifted, tn.ID)
		}
	}
	agree := bestMatchAgreement(warm, oracle, nonDrifted)
	if frac := float64(agree) / float64(len(nonDrifted)); frac < 0.95 {
		t.Errorf("warm/full assignment agreement on non-drifted tenants = %d/%d (%.1f%%), want >= 95%%",
			agree, len(nonDrifted), 100*frac)
	}
}

// TestReclusterCumulativeDriftNotRebaselined guards the drift baseline: a
// tenant drifting in sub-threshold steps must still be reclassified once the
// cumulative move since its last FFT classification crosses the threshold —
// the baseline may not be refreshed on undrifted rounds.
func TestReclusterCumulativeDriftNotRebaselined(t *testing.T) {
	pop := testPopulation(t, 5, 0.1)
	src := newMapSource(pop)
	cfg := DefaultClusteringConfig()
	svc := NewClusteringService(cfg)
	prev, err := svc.ClusterFrom(pop, src)
	if err != nil {
		t.Fatal(err)
	}
	// A constant-pattern tenant with mean well below the clamp: a uniform
	// +delta shift moves the mean by exactly delta, the peak by delta, and
	// the (tiny) CV by far less than the threshold — so each step drifts
	// only the mean, by a deliberately sub-threshold amount.
	var victim *tenant.Tenant
	for _, tn := range pop.Tenants {
		if tn.Pattern() == signalproc.PatternConstant && tn.Utilization.Peak() < 0.9 {
			victim = tn
			break
		}
	}
	if victim == nil {
		t.Skip("no headroomy constant tenant in this population")
	}
	base := victim.Utilization
	const step = 0.012 // < DefaultDriftThreshold (0.02); two steps cross it
	reclassifiedAt := -1
	for round := 1; round <= 4; round++ {
		s := base.Clone()
		for j := range s.Values {
			s.Values[j] = math.Min(s.Values[j]+step*float64(round), 1)
		}
		src.series[victim.ID] = s
		next, st, err := svc.Recluster(prev, pop, src)
		if err != nil {
			t.Fatal(err)
		}
		if st.Reclassified > 0 && reclassifiedAt < 0 {
			reclassifiedAt = round
		}
		prev = next
	}
	if reclassifiedAt < 0 {
		t.Fatal("cumulative drift never triggered reclassification: baseline is being refreshed away")
	}
	if reclassifiedAt == 1 {
		t.Fatal("first sub-threshold step already reclassified: the test premise broke")
	}
	t.Logf("cumulative drift reclassified at round %d", reclassifiedAt)
}

// TestReclusterNilPrevFallsBack pins the fallback: no previous generation
// degrades to a full from-scratch build.
func TestReclusterNilPrevFallsBack(t *testing.T) {
	pop := testPopulation(t, 2, 0.05)
	src := newMapSource(pop)
	svc := NewClusteringService(DefaultClusteringConfig())
	c, st, err := svc.Recluster(nil, pop, src)
	if err != nil {
		t.Fatal(err)
	}
	if !st.FullRebuild {
		t.Error("nil prev did not report a full rebuild")
	}
	if st.Reclassified != len(pop.Tenants) {
		t.Errorf("full rebuild reclassified %d, want all %d", st.Reclassified, len(pop.Tenants))
	}
	if len(c.Classes) == 0 {
		t.Fatal("fallback produced no classes")
	}
}

// TestReclusterPatternChange drives one tenant across a pattern boundary and
// checks it is re-routed to a class of its new pattern.
func TestReclusterPatternChange(t *testing.T) {
	pop := testPopulation(t, 3, 0.1)
	src := newMapSource(pop)
	svc := NewClusteringService(DefaultClusteringConfig())
	prev, err := svc.ClusterFrom(pop, src)
	if err != nil {
		t.Fatal(err)
	}

	// Find a constant tenant and replace its history with a strong diurnal
	// cycle — unambiguously periodic.
	var victim *tenant.Tenant
	for _, tn := range pop.Tenants {
		if tn.Pattern() == signalproc.PatternConstant {
			victim = tn
			break
		}
	}
	if victim == nil {
		t.Skip("no constant tenant in this population")
	}
	n := victim.Utilization.Len()
	values := make([]float64, n)
	for i := range values {
		day := float64(i) / float64(timeseries.SlotsPerDay)
		values[i] = 0.5 + 0.4*math.Sin(2*math.Pi*day)
	}
	src.series[victim.ID] = timeseries.New(timeseries.SlotDuration, values)

	next, st, err := svc.Recluster(prev, pop, src)
	if err != nil {
		t.Fatal(err)
	}
	if st.PatternChanged < 1 {
		t.Errorf("pattern changes = %d, want >= 1", st.PatternChanged)
	}
	cid, ok := next.ClassOfTenant(victim.ID)
	if !ok {
		t.Fatal("victim lost its class")
	}
	if got := next.Class(cid).Pattern; got != signalproc.PatternPeriodic {
		t.Errorf("victim's class pattern = %v, want periodic", got)
	}
}

// TestNewClusteringFromClasses covers the persistence restore constructor.
func TestNewClusteringFromClasses(t *testing.T) {
	pop := testPopulation(t, 4, 0.05)
	svc := NewClusteringService(DefaultClusteringConfig())
	orig, err := svc.Cluster(pop)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := NewClusteringFromClasses(orig.Classes)
	if err != nil {
		t.Fatal(err)
	}
	for _, tn := range pop.Tenants {
		a, _ := orig.ClassOfTenant(tn.ID)
		b, ok := rebuilt.ClassOfTenant(tn.ID)
		if !ok || a != b {
			t.Fatalf("tenant %v: rebuilt class %v, want %v", tn.ID, b, a)
		}
	}
	for _, sid := range pop.ServerIDs() {
		a, _ := orig.ClassOfServer(sid)
		b, ok := rebuilt.ClassOfServer(sid)
		if !ok || a != b {
			t.Fatalf("server %v: rebuilt class %v, want %v", sid, b, a)
		}
	}
	// Duplicate membership is rejected.
	dup := []*UtilizationClass{
		{ID: 0, Tenants: []tenant.ID{1}},
		{ID: 1, Tenants: []tenant.ID{1}},
	}
	if _, err := NewClusteringFromClasses(dup); err == nil {
		t.Error("duplicate tenant membership not rejected")
	}
}
