package core

import (
	"testing"
	"time"

	"harvest/internal/signalproc"
)

func TestCapacityByPattern(t *testing.T) {
	clustering := threeClassClustering() // 20 servers per class, 12 cores each
	cfg := DefaultSelectorConfig()
	capacity := CapacityByPattern(clustering, cfg)
	// Constant class: avg 0.30 -> (1 - 0.30 - 0.333) * 20 * 12 ≈ 88 cores.
	if capacity[signalproc.PatternConstant] < 80 || capacity[signalproc.PatternConstant] > 96 {
		t.Errorf("constant capacity = %v", capacity[signalproc.PatternConstant])
	}
	// Unpredictable class: avg 0.20 -> ≈ 112 cores.
	if capacity[signalproc.PatternUnpredictable] <= capacity[signalproc.PatternConstant] {
		t.Errorf("lower-average pattern should have more capacity")
	}
	if CapacityByPattern(nil, cfg) == nil {
		t.Errorf("nil clustering should return an empty (non-nil) map")
	}
}

func TestCalibrateThresholdsDegenerate(t *testing.T) {
	def := DefaultLengthThresholds()
	if got := CalibrateThresholds(nil, map[signalproc.Pattern]float64{signalproc.PatternConstant: 1}); got != def {
		t.Errorf("no jobs should return defaults")
	}
	if got := CalibrateThresholds([]time.Duration{time.Minute}, map[signalproc.Pattern]float64{}); got != def {
		t.Errorf("no capacity should return defaults")
	}
	if got := CalibrateThresholds([]time.Duration{0, -time.Second}, map[signalproc.Pattern]float64{signalproc.PatternConstant: 1}); got != def {
		t.Errorf("only non-positive durations should return defaults")
	}
}

func TestCalibrateThresholdsSplitsWorkByCapacity(t *testing.T) {
	// 100 jobs with durations 1..100 minutes; equal capacity per pattern means
	// each type should get about a third of the total work.
	var runs []time.Duration
	for i := 1; i <= 100; i++ {
		runs = append(runs, time.Duration(i)*time.Minute)
	}
	capacity := map[signalproc.Pattern]float64{
		signalproc.PatternUnpredictable: 1,
		signalproc.PatternPeriodic:      1,
		signalproc.PatternConstant:      1,
	}
	th := CalibrateThresholds(runs, capacity)
	if th.ShortMax <= 0 || th.LongMin <= th.ShortMax {
		t.Fatalf("thresholds not ordered: %+v", th)
	}
	// Total work = sum 1..100 = 5050 min. A third is ~1683, reached around
	// duration 58 (sum 1..58=1711); two thirds around 82.
	if th.ShortMax < 50*time.Minute || th.ShortMax > 65*time.Minute {
		t.Errorf("ShortMax = %v, want around 58m", th.ShortMax)
	}
	if th.LongMin < 75*time.Minute || th.LongMin > 90*time.Minute {
		t.Errorf("LongMin = %v, want around 82m", th.LongMin)
	}
}

func TestCalibrateThresholdsSkewedCapacity(t *testing.T) {
	var runs []time.Duration
	for i := 1; i <= 100; i++ {
		runs = append(runs, time.Duration(i)*time.Minute)
	}
	// Almost all capacity is constant: nearly everything should be "long".
	capacity := map[signalproc.Pattern]float64{
		signalproc.PatternUnpredictable: 0.05,
		signalproc.PatternPeriodic:      0.05,
		signalproc.PatternConstant:      0.9,
	}
	th := CalibrateThresholds(runs, capacity)
	// Low thresholds: most jobs classified long.
	long := 0
	for _, d := range runs {
		if ClassifyLength(d, th) == JobLong {
			long++
		}
	}
	if long < 60 {
		t.Fatalf("with constant-dominated capacity, most jobs should be long, got %d/100", long)
	}
}

func TestCalibrateThresholdsMatchesClassifyConsistency(t *testing.T) {
	runs := []time.Duration{time.Minute, 2 * time.Minute, 30 * time.Minute, time.Hour}
	capacity := map[signalproc.Pattern]float64{
		signalproc.PatternUnpredictable: 1,
		signalproc.PatternPeriodic:      1,
		signalproc.PatternConstant:      1,
	}
	th := CalibrateThresholds(runs, capacity)
	// Every job must fall into exactly one valid type.
	for _, d := range runs {
		jt := ClassifyLength(d, th)
		if jt != JobShort && jt != JobMedium && jt != JobLong {
			t.Fatalf("invalid job type %v", jt)
		}
	}
}
