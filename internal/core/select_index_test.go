package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"harvest/internal/signalproc"
	"harvest/internal/tenant"
)

// allocOverlay is the test double for the serving layer's ledger overlay: a
// base usage view plus a mutable per-class allocation, exposed both ways —
// as the UsageSource the naive scan reads and as the AllocSource the indexed
// path reads.
type allocOverlay struct {
	base  map[ClassID]ClassUsage
	alloc map[ClassID]float64
}

func (o *allocOverlay) UsageOf(id ClassID) ClassUsage {
	cu := o.base[id]
	cu.AllocatedCores = o.alloc[id]
	return cu
}

func (o *allocOverlay) AllocatedCoresOf(id ClassID) float64 { return o.alloc[id] }

// randomClustering builds a clustering with nClasses classes of randomized
// size and utilization shape, including degenerate ones: empty classes
// (zero servers → zero capacity) and saturated classes (capacity pinned at
// zero by utilization), both of which the index drops and the naive scan
// carries with zero weight.
func randomClustering(rng *rand.Rand, nClasses int) *Clustering {
	classes := make([]*UtilizationClass, nClasses)
	server := 0
	for i := range classes {
		n := rng.Intn(30)
		if rng.Intn(8) == 0 {
			n = 0
		}
		avg := rng.Float64()
		peak := avg + (1-avg)*rng.Float64()
		classes[i] = &UtilizationClass{
			ID:              ClassID(i),
			Pattern:         signalproc.Pattern(rng.Intn(signalproc.NumPatterns)),
			AvgUtilization:  avg,
			PeakUtilization: peak,
			Tenants:         []tenant.ID{tenant.ID(i)},
			Servers:         serverRange(server, n),
		}
		server += n
	}
	return manualClustering(classes)
}

// TestSelectIndexedMatchesNaive is the property SelectIndexed is built on:
// over randomized reserve/release/rekey sequences, the indexed path and the
// naive O(classes) SelectFrom scan make draw-for-draw identical picks AND
// consume their RNGs identically. The two RNGs are seeded together once and
// never resynchronized, so a single divergent draw anywhere in a sequence
// poisons every later comparison — the strongest form of the equivalence.
func TestSelectIndexedMatchesNaive(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			clustering := randomClustering(rng, 48)
			sel, err := NewSelector(DefaultSelectorConfig(), clustering, nil)
			if err != nil {
				t.Fatal(err)
			}

			overlay := &allocOverlay{
				base:  make(map[ClassID]ClassUsage, len(clustering.Classes)),
				alloc: make(map[ClassID]float64, len(clustering.Classes)),
			}
			reusage := func() {
				for _, cls := range clustering.Classes {
					overlay.base[cls.ID] = ClassUsage{CurrentUtilization: rng.Float64()}
				}
			}
			reusage()
			idx := sel.BuildIndex(overlay.base)

			rngNaive := rand.New(rand.NewSource(seed + 1000))
			rngIdx := rand.New(rand.NewSource(seed + 1000))

			for op := 0; op < 400; op++ {
				switch rng.Intn(10) {
				case 0, 1:
					// Release: return some allocation to a random class.
					id := ClassID(rng.Intn(len(clustering.Classes)))
					overlay.alloc[id] *= rng.Float64()
				case 2:
					// Rekey/refresh: the usage view moves, allocations are
					// partially forfeited, and the index is rebuilt — exactly
					// what a snapshot refresh does.
					reusage()
					for id := range overlay.alloc {
						if rng.Intn(2) == 0 {
							overlay.alloc[id] = 0
						}
					}
					idx = sel.BuildIndex(overlay.base)
				default:
					// Reserve: select through both paths and book the grant.
					job := JobRequest{
						Type:               JobType(rng.Intn(int(NumJobTypes))),
						MaxConcurrentCores: 0.5 + rng.Float64()*float64(rng.Intn(40)+1),
					}
					naive := sel.SelectFrom(rngNaive, job, overlay)
					indexed := sel.SelectIndexed(rngIdx, job, idx, overlay)
					if !reflect.DeepEqual(naive, indexed) {
						t.Fatalf("op %d: job %+v\nnaive   %+v\nindexed %+v", op, job, naive, indexed)
					}
					// Allocate a random share of each granted class's
					// headroom so later selects run against drifted books.
					for i, id := range indexed.Classes {
						overlay.alloc[id] += indexed.Headrooms[i] * rng.Float64()
					}
				}
			}
		})
	}
}
