package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"harvest/internal/tenant"
)

// gridInfos builds a synthetic tenant set spanning a wide range of reimage
// rates and peak utilizations, each with the given space and server count.
func gridInfos(numTenants, serversPerTenant int, bytesPerTenant int64) []TenantPlacementInfo {
	infos := make([]TenantPlacementInfo, numTenants)
	server := 0
	for i := range infos {
		servers := make([]tenant.ServerID, serversPerTenant)
		for s := range servers {
			servers[s] = tenant.ServerID(server)
			server++
		}
		infos[i] = TenantPlacementInfo{
			ID:             tenant.ID(i),
			Environment:    fmt.Sprintf("env-%d", i),
			ReimageRate:    float64(i%9) * 0.25,
			PeakCPU:        float64((i*7)%10) / 10,
			AvailableBytes: bytesPerTenant,
			Servers:        servers,
		}
	}
	return infos
}

func TestBuildPlacementSchemeErrors(t *testing.T) {
	if _, err := BuildPlacementScheme(nil); err == nil {
		t.Errorf("empty input should error")
	}
	infos := gridInfos(4, 1, 100)
	infos[1].ID = infos[0].ID
	if _, err := BuildPlacementScheme(infos); err == nil {
		t.Errorf("duplicate tenant should error")
	}
}

func TestBuildPlacementSchemeBalancesSpace(t *testing.T) {
	infos := gridInfos(90, 2, 1000)
	scheme, err := BuildPlacementScheme(infos)
	if err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	populated := 0
	for col := 0; col < PlacementGridSize; col++ {
		for row := 0; row < PlacementGridSize; row++ {
			cell := scheme.Cells[col][row]
			total += cell.AvailableBytes
			if len(cell.Tenants) > 0 {
				populated++
			}
		}
	}
	if total != 90*1000 {
		t.Fatalf("cells hold %d bytes, want %d", total, 90*1000)
	}
	if populated < 7 {
		t.Fatalf("expected most cells populated, got %d", populated)
	}
	if imb := scheme.SpaceImbalance(); imb > 3 {
		t.Fatalf("space imbalance %v too high for uniform tenants", imb)
	}
}

func TestBuildPlacementSchemeTenantMappedOnce(t *testing.T) {
	infos := gridInfos(50, 3, 500)
	scheme, err := BuildPlacementScheme(infos)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[tenant.ID]bool{}
	for col := 0; col < PlacementGridSize; col++ {
		for row := 0; row < PlacementGridSize; row++ {
			for _, tid := range scheme.Cells[col][row].Tenants {
				if seen[tid] {
					t.Fatalf("tenant %v appears in more than one cell", tid)
				}
				seen[tid] = true
				c, r, ok := scheme.CellOfTenant(tid)
				if !ok || c != col || r != row {
					t.Fatalf("CellOfTenant(%v) = (%d,%d,%v), want (%d,%d,true)", tid, c, r, ok, col, row)
				}
			}
		}
	}
	if len(seen) != 50 {
		t.Fatalf("cells cover %d tenants, want 50", len(seen))
	}
	// Server lookup.
	if tid, ok := scheme.TenantOfServer(infos[3].Servers[0]); !ok || tid != infos[3].ID {
		t.Fatalf("TenantOfServer mismatch")
	}
	if _, ok := scheme.TenantOfServer(tenant.ServerID(1 << 30)); ok {
		t.Fatalf("unknown server should not resolve")
	}
}

func TestPlaceReplicasBasicProperties(t *testing.T) {
	infos := gridInfos(60, 3, 1000)
	scheme, err := BuildPlacementScheme(infos)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	writer := infos[10].Servers[0]
	for trial := 0; trial < 200; trial++ {
		replicas, err := scheme.PlaceReplicas(rng, PlacementConstraints{
			Replication:        3,
			Writer:             writer,
			EnforceEnvironment: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(replicas) != 3 {
			t.Fatalf("placed %d replicas, want 3", len(replicas))
		}
		if replicas[0] != writer {
			t.Fatalf("first replica should be the writer's server")
		}
		// All replicas on distinct servers, tenants, environments, rows, cols.
		servers := map[tenant.ServerID]bool{}
		envs := map[string]bool{}
		rows := map[int]bool{}
		cols := map[int]bool{}
		for _, srv := range replicas {
			if servers[srv] {
				t.Fatalf("server %v received two replicas", srv)
			}
			servers[srv] = true
			tid, ok := scheme.TenantOfServer(srv)
			if !ok {
				t.Fatalf("replica on unknown server %v", srv)
			}
			env := infos[int(tid)].Environment
			if envs[env] {
				t.Fatalf("environment %q received two replicas", env)
			}
			envs[env] = true
			col, row, _ := scheme.CellOfTenant(tid)
			if rows[row] {
				t.Fatalf("row %d used twice within a round", row)
			}
			if cols[col] {
				t.Fatalf("column %d used twice within a round", col)
			}
			rows[row] = true
			cols[col] = true
		}
	}
}

func TestPlaceReplicasFourWayReplication(t *testing.T) {
	infos := gridInfos(60, 3, 1000)
	scheme, err := BuildPlacementScheme(infos)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	replicas, err := scheme.PlaceReplicas(rng, PlacementConstraints{
		Replication:        4,
		Writer:             infos[0].Servers[0],
		EnforceEnvironment: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(replicas) != 4 {
		t.Fatalf("placed %d replicas, want 4", len(replicas))
	}
	// Environments must still be unique even across rounds.
	envs := map[string]bool{}
	for _, srv := range replicas {
		tid, _ := scheme.TenantOfServer(srv)
		env := infos[int(tid)].Environment
		if envs[env] {
			t.Fatalf("environment %q received two replicas", env)
		}
		envs[env] = true
	}
}

func TestPlaceReplicasUnknownWriter(t *testing.T) {
	infos := gridInfos(30, 2, 1000)
	scheme, err := BuildPlacementScheme(infos)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	replicas, err := scheme.PlaceReplicas(rng, PlacementConstraints{
		Replication:        3,
		Writer:             -1,
		EnforceEnvironment: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(replicas) != 3 {
		t.Fatalf("placed %d replicas, want 3", len(replicas))
	}
}

func TestPlaceReplicasRespectsEligibility(t *testing.T) {
	infos := gridInfos(40, 2, 1000)
	scheme, err := BuildPlacementScheme(infos)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	// Exclude every even server; all replicas must land on odd servers.
	eligible := func(s tenant.ServerID) bool { return int(s)%2 == 1 }
	replicas, err := scheme.PlaceReplicas(rng, PlacementConstraints{
		Replication:        3,
		Writer:             infos[0].Servers[0], // even, hence ineligible
		ServerEligible:     eligible,
		EnforceEnvironment: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, srv := range replicas {
		if !eligible(srv) {
			t.Fatalf("replica placed on ineligible server %v", srv)
		}
	}
}

func TestPlaceReplicasErrorsWhenImpossible(t *testing.T) {
	infos := gridInfos(6, 1, 1000)
	scheme, err := BuildPlacementScheme(infos)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	if _, err := scheme.PlaceReplicas(rng, PlacementConstraints{Replication: 0}); err == nil {
		t.Errorf("zero replication should error")
	}
	// No eligible servers at all.
	_, err = scheme.PlaceReplicas(rng, PlacementConstraints{
		Replication:        2,
		Writer:             -1,
		ServerEligible:     func(tenant.ServerID) bool { return false },
		EnforceEnvironment: true,
	})
	if err == nil {
		t.Errorf("expected an error when no server is eligible")
	}
}

func TestPlaceReplicasSoftEnvironmentConstraint(t *testing.T) {
	// Two tenants sharing one environment, each its own server: with the
	// environment constraint enforced only 2 of 3 replicas can be placed
	// (2 tenants in one env + nothing else); relaxed, all 3 fit on distinct
	// servers if rows/columns allow.
	infos := []TenantPlacementInfo{
		{ID: 0, Environment: "shared", ReimageRate: 0.1, PeakCPU: 0.2, AvailableBytes: 100, Servers: []tenant.ServerID{0}},
		{ID: 1, Environment: "shared", ReimageRate: 0.9, PeakCPU: 0.8, AvailableBytes: 100, Servers: []tenant.ServerID{1}},
		{ID: 2, Environment: "other", ReimageRate: 0.5, PeakCPU: 0.5, AvailableBytes: 100, Servers: []tenant.ServerID{2}},
	}
	scheme, err := BuildPlacementScheme(infos)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	strict, errStrict := scheme.PlaceReplicas(rng, PlacementConstraints{
		Replication: 3, Writer: 0, EnforceEnvironment: true,
	})
	if errStrict == nil && len(strict) == 3 {
		// If it succeeded, environments must be distinct — impossible here.
		t.Fatalf("strict placement should not be able to place 3 replicas: %v", strict)
	}
	relaxed, errRelaxed := scheme.PlaceReplicas(rng, PlacementConstraints{
		Replication: 3, Writer: 0, EnforceEnvironment: false,
	})
	if errRelaxed != nil {
		t.Fatalf("relaxed placement should succeed: %v", errRelaxed)
	}
	if len(relaxed) != 3 {
		t.Fatalf("relaxed placement placed %d replicas, want 3", len(relaxed))
	}
}

func TestPlaceReplicasNeverDuplicatesServerProperty(t *testing.T) {
	infos := gridInfos(45, 2, 1000)
	scheme, err := BuildPlacementScheme(infos)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64, repRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		replication := int(repRaw)%5 + 1
		replicas, err := scheme.PlaceReplicas(rng, PlacementConstraints{
			Replication:        replication,
			Writer:             infos[int(seed%45+44)%45].Servers[0],
			EnforceEnvironment: true,
		})
		if err != nil {
			// Running out of eligible tenants for very high replication with
			// strict constraints is acceptable; duplicates are not.
			return true
		}
		seen := map[tenant.ServerID]bool{}
		for _, srv := range replicas {
			if seen[srv] {
				return false
			}
			seen[srv] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSpaceImbalanceEmptyCells(t *testing.T) {
	// With only two tenants, most cells are empty, so imbalance reports 0
	// (no meaningful min).
	infos := gridInfos(2, 1, 100)
	scheme, err := BuildPlacementScheme(infos)
	if err != nil {
		t.Fatal(err)
	}
	if imb := scheme.SpaceImbalance(); imb != 0 {
		t.Fatalf("imbalance with empty cells should be 0, got %v", imb)
	}
}
