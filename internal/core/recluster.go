package core

import (
	"fmt"
	"math"
	"math/rand"

	"harvest/internal/kmeans"
	"harvest/internal/signalproc"
	"harvest/internal/stats"
	"harvest/internal/tenant"
)

// ReclusterStats reports what an incremental re-clustering actually did —
// how much of the full pipeline it was able to skip, and why.
type ReclusterStats struct {
	// Tenants is the number of tenants examined.
	Tenants int
	// Skipped counts tenants the history source held no series for (evicted
	// telemetry rings); they are left out of every class.
	Skipped int
	// Reclassified counts tenants that drifted past the threshold and were
	// re-run through the full FFT classification — the expensive step the
	// warm start exists to avoid.
	Reclassified int
	// PatternChanged counts reclassified tenants whose pattern flipped
	// (e.g. periodic -> unpredictable), forcing them into another group.
	PatternChanged int
	// Drifted lists the tenants that drifted past the threshold this round
	// (the reclassified set), in population order. Nil on a full rebuild,
	// where every tenant is re-run by definition.
	Drifted []tenant.ID
	// Quiet counts tenants whose history window was provably unchanged since
	// their last drift evaluation (tenant.HistoryStats change mark), letting
	// the drift check skip the window copy and summary entirely.
	Quiet int
	// MovedTenants counts tenants whose class assignment changed from the
	// previous generation (drifted movers, K-Means reshuffles, and drop-outs).
	MovedTenants int
	// ReusedClasses counts classes whose tenant membership is unchanged and
	// which therefore share the previous generation's server list instead of
	// rebuilding it.
	ReusedClasses int
	// SplicedServers is the size of the server→class delta this generation
	// layers over the previous generation's shared assignment map — zero
	// when the map is shared outright (steady state) or was flattened fresh.
	SplicedServers int
	// WarmPatterns and ColdPatterns count pattern groups whose K-Means was
	// seeded from the previous generation's centroids vs. re-seeded from
	// scratch (class count changed, or the group is new).
	WarmPatterns int
	ColdPatterns int
	// Iterations is the total number of Lloyd iterations across groups.
	Iterations int
	// FullRebuild is true when Recluster fell back to a from-scratch
	// ClusterFrom (no usable previous generation).
	FullRebuild bool
	// DriftThreshold is the threshold this round's drift checks ran with —
	// the configured value, or the auto-tuned override the serving layer
	// feeds back from full-rebuild agreement (service.refreshShard).
	DriftThreshold float64
	// FullAgreement is the fraction of tenants whose pattern assignment a
	// periodic full rebuild agreed with the previous warm generation on —
	// the disagreement signal the drift-threshold auto-tuner consumes.
	// Negative when not measured (warm rounds, boot).
	FullAgreement float64
}

// Recluster derives the next clustering generation incrementally from the
// previous one. Instead of re-running the full §4.1 pipeline, it
//
//  1. re-runs the FFT classification only for tenants whose history window
//     drifted past the configured threshold (a cheap one-pass time-domain
//     check against the tenant's cached profile decides), and
//  2. warm-starts each pattern group's K-Means from the previous
//     generation's centroids, so Lloyd resumes at (or next to) the old fixed
//     point and converges in a handful of iterations.
//
// A full rebuild remains the fallback — prev == nil (or an empty previous
// clustering) degrades to ClusterFrom — and the correctness oracle: on
// undrifted data Recluster converges to the same fixed point a from-scratch
// run finds, which TestReclusterAgreesWithFullRebuild pins.
//
// The caller must pass the same population the previous clustering was built
// over (tenant profiles cache the previous window's summary statistics; the
// drift check depends on them).
func (s *ClusteringService) Recluster(prev *Clustering, pop *tenant.Population, src tenant.HistorySource) (*Clustering, ReclusterStats, error) {
	var st ReclusterStats
	st.Tenants = len(pop.Tenants)
	st.FullAgreement = -1
	if prev == nil || len(prev.Classes) == 0 {
		st.FullRebuild = true
		st.Reclassified = st.Tenants
		c, err := s.ClusterFrom(pop, src)
		return c, st, err
	}
	if len(pop.Tenants) == 0 {
		return nil, st, fmt.Errorf("core: cannot recluster an empty population")
	}

	thr := s.cfg.DriftThreshold
	if thr <= 0 {
		thr = DefaultDriftThreshold
	}
	st.DriftThreshold = thr
	hist, _ := src.(tenant.HistoryStats)
	active := make([]*tenant.Tenant, 0, len(pop.Tenants))
	for _, t := range pop.Tenants {
		_, hadClass := prev.ClassOfTenant(t.ID)
		var mark uint64
		haveMark := false
		if hist != nil {
			n, m, ok := hist.HistoryStats(t.ID)
			if !ok || n < signalproc.MinClassifySamples {
				st.Skipped++
				continue
			}
			if hadClass && m == t.HistoryMark {
				// The window is bit-identical to the tenant's last drift
				// evaluation, so the verdict is too — and an evaluation
				// always ends "not drifted" (one that drifted reclassified,
				// rebasing the profile on this very window). Skip the O(window)
				// copy and summary. The mark is read before the copy below, so
				// a racing ingest at worst forces a redundant check next round.
				st.Quiet++
				active = append(active, t)
				continue
			}
			mark, haveMark = m, true
		}
		series := src.SeriesFor(t.ID)
		if series == nil || series.Len() < signalproc.MinClassifySamples {
			// Same contract as ClusterFrom: a tenant the source holds too
			// little history for (evicted or refilling ring) drops out of
			// every class this generation.
			st.Skipped++
			continue
		}
		active = append(active, t)
		if haveMark {
			t.HistoryMark = mark
		}
		mean, peak, cv := stats.Summary(series.Values)
		// The baseline is the summary captured at the tenant's last FFT
		// classification — it is deliberately NOT refreshed on undrifted
		// rounds, so slow cumulative drift accumulates against the last
		// classification and eventually crosses the threshold instead of
		// being rebaselined away one sub-threshold step at a time.
		drifted := !hadClass ||
			math.Abs(mean-t.Profile.Mean) > thr ||
			math.Abs(peak-t.Profile.Peak) > 2*thr ||
			math.Abs(cv-t.Profile.CV) > thr
		if drifted {
			oldPattern := t.Profile.Pattern
			if err := s.classifySeries(t, series); err != nil {
				return nil, st, err
			}
			st.Reclassified++
			st.Drifted = append(st.Drifted, t.ID)
			if hadClass && t.Profile.Pattern != oldPattern {
				st.PatternChanged++
			}
		}
	}
	if len(active) == 0 {
		return nil, st, fmt.Errorf("core: history source holds no series for any tenant")
	}

	prevCentroids := make(map[signalproc.Pattern][][]float64, signalproc.NumPatterns)
	for _, cls := range prev.Classes {
		prevCentroids[cls.Pattern] = append(prevCentroids[cls.Pattern], cls.Centroid)
	}

	// Server membership is spliced from the previous generation after the
	// K-Means passes, so the clustering is built without the per-server map
	// prealloc a from-scratch build pays.
	clustering := &Clustering{tenantClass: make(map[tenant.ID]ClassID, len(pop.Tenants))}
	rng := rand.New(rand.NewSource(s.cfg.Seed))
	byPattern := groupByPattern(active)
	for _, pattern := range patternOrder {
		tenants := byPattern[pattern]
		if len(tenants) == 0 {
			continue
		}
		k := s.classCount(pattern, len(tenants))
		points := featureVectors(tenants)
		var result *kmeans.Result
		var err error
		if seeds := prevCentroids[pattern]; len(seeds) == k {
			result, err = kmeans.ClusterFrom(points, seeds, kmeans.Config{})
			st.WarmPatterns++
		} else {
			// The target class count changed (tenants moved between patterns)
			// or the previous generation had no classes for this pattern:
			// re-seed this group from scratch.
			result, err = kmeans.Cluster(rng, points, kmeans.Config{K: k})
			st.ColdPatterns++
		}
		if err != nil {
			return nil, st, fmt.Errorf("core: reclustering %v tenants: %w", pattern, err)
		}
		st.Iterations += result.Iterations
		s.appendClassesLite(clustering, pop, pattern, tenants, result)
	}
	s.spliceMembership(clustering, prev, pop, &st)
	sortClasses(clustering)
	return clustering, st, nil
}

// spliceMembership fills the incremental generation's server membership from
// the previous one instead of rebuilding it per server:
//
//   - a class whose tenant membership is unchanged shares the previous
//     generation's Servers slice (immutable once published), and
//   - the server→class map is the previous generation's map shared outright,
//     shadowed by a delta holding only the servers of tenants whose
//     assignment changed (classNone tombstones for drop-outs).
//
// The delta accumulates across warm generations and is flattened into a
// fresh full map once it outgrows a quarter of the fleet — and on every full
// rebuild, which takes the from-scratch path entirely. In the steady state
// (no drift, stable K-Means fixed point) nothing moved: every class reuses
// its server list and the map is shared with zero delta, making the whole
// refresh independent of server count.
func (s *ClusteringService) spliceMembership(clustering, prev *Clustering, pop *tenant.Population, st *ReclusterStats) {
	for _, cls := range clustering.Classes {
		if p := prevClassMatching(prev, cls); p != nil {
			cls.Servers = p.Servers
			st.ReusedClasses++
			continue
		}
		for _, tid := range cls.Tenants {
			if t := pop.ByID(tid); t != nil {
				cls.Servers = append(cls.Servers, t.Servers...)
			}
		}
	}

	delta := make(map[tenant.ServerID]ClassID, len(prev.serverDelta))
	for srv, cid := range prev.serverDelta {
		delta[srv] = cid
	}
	for _, t := range pop.Tenants {
		newCID, inNew := clustering.tenantClass[t.ID]
		prevCID, inPrev := prev.ClassOfTenant(t.ID)
		if inNew == inPrev && (!inNew || newCID == prevCID) {
			continue // any inherited delta entries for this tenant still hold
		}
		st.MovedTenants++
		target := classNone
		if inNew {
			target = newCID
		}
		for _, srv := range t.Servers {
			delta[srv] = target
		}
	}

	switch total := pop.NumServers(); {
	case len(prev.serverClass) == 0 || len(delta)*4 > total:
		// No base to share, or the splice stopped paying for itself:
		// flatten into a fresh full map and drop the chain.
		flat := make(map[tenant.ServerID]ClassID, total)
		for _, cls := range clustering.Classes {
			for _, srv := range cls.Servers {
				flat[srv] = cls.ID
			}
		}
		clustering.serverClass = flat
	case len(delta) == 0:
		clustering.serverClass = prev.serverClass
	default:
		clustering.serverClass = prev.serverClass
		clustering.serverDelta = delta
	}
	st.SplicedServers = len(clustering.serverDelta)
}

// prevClassMatching returns the previous generation's class with the exact
// same tenant membership (same tenants, same order) as cls, or nil. The
// candidate is found through the first member's previous assignment, so the
// check is O(members).
func prevClassMatching(prev *Clustering, cls *UtilizationClass) *UtilizationClass {
	if len(cls.Tenants) == 0 {
		return nil
	}
	pid, ok := prev.ClassOfTenant(cls.Tenants[0])
	if !ok {
		return nil
	}
	p := prev.Class(pid)
	if p == nil || len(p.Tenants) != len(cls.Tenants) {
		return nil
	}
	for i, tid := range cls.Tenants {
		if p.Tenants[i] != tid {
			return nil
		}
	}
	return p
}
