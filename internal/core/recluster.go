package core

import (
	"fmt"
	"math"
	"math/rand"

	"harvest/internal/kmeans"
	"harvest/internal/signalproc"
	"harvest/internal/stats"
	"harvest/internal/tenant"
)

// ReclusterStats reports what an incremental re-clustering actually did —
// how much of the full pipeline it was able to skip, and why.
type ReclusterStats struct {
	// Tenants is the number of tenants examined.
	Tenants int
	// Skipped counts tenants the history source held no series for (evicted
	// telemetry rings); they are left out of every class.
	Skipped int
	// Reclassified counts tenants that drifted past the threshold and were
	// re-run through the full FFT classification — the expensive step the
	// warm start exists to avoid.
	Reclassified int
	// PatternChanged counts reclassified tenants whose pattern flipped
	// (e.g. periodic -> unpredictable), forcing them into another group.
	PatternChanged int
	// WarmPatterns and ColdPatterns count pattern groups whose K-Means was
	// seeded from the previous generation's centroids vs. re-seeded from
	// scratch (class count changed, or the group is new).
	WarmPatterns int
	ColdPatterns int
	// Iterations is the total number of Lloyd iterations across groups.
	Iterations int
	// FullRebuild is true when Recluster fell back to a from-scratch
	// ClusterFrom (no usable previous generation).
	FullRebuild bool
}

// Recluster derives the next clustering generation incrementally from the
// previous one. Instead of re-running the full §4.1 pipeline, it
//
//  1. re-runs the FFT classification only for tenants whose history window
//     drifted past the configured threshold (a cheap one-pass time-domain
//     check against the tenant's cached profile decides), and
//  2. warm-starts each pattern group's K-Means from the previous
//     generation's centroids, so Lloyd resumes at (or next to) the old fixed
//     point and converges in a handful of iterations.
//
// A full rebuild remains the fallback — prev == nil (or an empty previous
// clustering) degrades to ClusterFrom — and the correctness oracle: on
// undrifted data Recluster converges to the same fixed point a from-scratch
// run finds, which TestReclusterAgreesWithFullRebuild pins.
//
// The caller must pass the same population the previous clustering was built
// over (tenant profiles cache the previous window's summary statistics; the
// drift check depends on them).
func (s *ClusteringService) Recluster(prev *Clustering, pop *tenant.Population, src tenant.HistorySource) (*Clustering, ReclusterStats, error) {
	var st ReclusterStats
	st.Tenants = len(pop.Tenants)
	if prev == nil || len(prev.Classes) == 0 {
		st.FullRebuild = true
		st.Reclassified = st.Tenants
		c, err := s.ClusterFrom(pop, src)
		return c, st, err
	}
	if len(pop.Tenants) == 0 {
		return nil, st, fmt.Errorf("core: cannot recluster an empty population")
	}

	thr := s.cfg.DriftThreshold
	if thr <= 0 {
		thr = DefaultDriftThreshold
	}
	active := make([]*tenant.Tenant, 0, len(pop.Tenants))
	for _, t := range pop.Tenants {
		series := src.SeriesFor(t.ID)
		if series == nil || series.Len() < signalproc.MinClassifySamples {
			// Same contract as ClusterFrom: a tenant the source holds too
			// little history for (evicted or refilling ring) drops out of
			// every class this generation.
			st.Skipped++
			continue
		}
		active = append(active, t)
		mean, peak, cv := stats.Summary(series.Values)
		_, hadClass := prev.ClassOfTenant(t.ID)
		// The baseline is the summary captured at the tenant's last FFT
		// classification — it is deliberately NOT refreshed on undrifted
		// rounds, so slow cumulative drift accumulates against the last
		// classification and eventually crosses the threshold instead of
		// being rebaselined away one sub-threshold step at a time.
		drifted := !hadClass ||
			math.Abs(mean-t.Profile.Mean) > thr ||
			math.Abs(peak-t.Profile.Peak) > 2*thr ||
			math.Abs(cv-t.Profile.CV) > thr
		if drifted {
			oldPattern := t.Profile.Pattern
			if err := s.classifySeries(t, series); err != nil {
				return nil, st, err
			}
			st.Reclassified++
			if hadClass && t.Profile.Pattern != oldPattern {
				st.PatternChanged++
			}
		}
	}
	if len(active) == 0 {
		return nil, st, fmt.Errorf("core: history source holds no series for any tenant")
	}

	prevCentroids := make(map[signalproc.Pattern][][]float64, signalproc.NumPatterns)
	for _, cls := range prev.Classes {
		prevCentroids[cls.Pattern] = append(prevCentroids[cls.Pattern], cls.Centroid)
	}

	clustering := newClustering(pop)
	rng := rand.New(rand.NewSource(s.cfg.Seed))
	byPattern := groupByPattern(active)
	for _, pattern := range patternOrder {
		tenants := byPattern[pattern]
		if len(tenants) == 0 {
			continue
		}
		k := s.classCount(pattern, len(tenants))
		points := featureVectors(tenants)
		var result *kmeans.Result
		var err error
		if seeds := prevCentroids[pattern]; len(seeds) == k {
			result, err = kmeans.ClusterFrom(points, seeds, kmeans.Config{})
			st.WarmPatterns++
		} else {
			// The target class count changed (tenants moved between patterns)
			// or the previous generation had no classes for this pattern:
			// re-seed this group from scratch.
			result, err = kmeans.Cluster(rng, points, kmeans.Config{K: k})
			st.ColdPatterns++
		}
		if err != nil {
			return nil, st, fmt.Errorf("core: reclustering %v tenants: %w", pattern, err)
		}
		st.Iterations += result.Iterations
		s.appendClasses(clustering, pop, pattern, tenants, result)
	}
	sortClasses(clustering)
	return clustering, st, nil
}
