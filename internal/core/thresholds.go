package core

import (
	"sort"
	"time"

	"harvest/internal/signalproc"
)

// CapacityByPattern estimates, per utilization pattern, the expected number
// of harvestable cores across the clustering's classes: servers × cores ×
// (1 - average utilization - reserve). It is the capacity signal used to
// calibrate the job-length thresholds (§6.1: "the total computation required
// by long jobs should be proportional to the computational capacity of
// constant primary tenants").
func CapacityByPattern(clustering *Clustering, cfg SelectorConfig) map[signalproc.Pattern]float64 {
	out := make(map[signalproc.Pattern]float64, signalproc.NumPatterns)
	if clustering == nil {
		return out
	}
	for _, cls := range clustering.Classes {
		frac := 1 - cls.AvgUtilization - cfg.ReserveFraction
		if frac < 0 {
			frac = 0
		}
		out[cls.Pattern] += frac * float64(cls.NumServers()) * float64(cfg.CoresPerServer)
	}
	return out
}

// CalibrateThresholds picks the short/medium/long duration cut-offs so that
// the total work of each job type (approximated by the distribution of
// previous run times) is proportional to the harvestable capacity of the
// type's preferred pattern: unpredictable for short jobs, periodic for medium
// jobs, constant for long jobs. This mirrors how the paper set its 173 s and
// 433 s thresholds for the testbed workload.
//
// When the inputs are degenerate (no jobs, or no capacity anywhere) the
// default thresholds are returned.
func CalibrateThresholds(lastRuns []time.Duration, capacity map[signalproc.Pattern]float64) LengthThresholds {
	def := DefaultLengthThresholds()
	if len(lastRuns) == 0 {
		return def
	}
	capShort := capacity[signalproc.PatternUnpredictable]
	capMedium := capacity[signalproc.PatternPeriodic]
	capLong := capacity[signalproc.PatternConstant]
	total := capShort + capMedium + capLong
	if total <= 0 {
		return def
	}
	shortShare := capShort / total
	mediumShare := capMedium / total

	durations := make([]time.Duration, 0, len(lastRuns))
	for _, d := range lastRuns {
		if d > 0 {
			durations = append(durations, d)
		}
	}
	if len(durations) == 0 {
		return def
	}
	sort.Slice(durations, func(i, j int) bool { return durations[i] < durations[j] })
	var totalWork time.Duration
	for _, d := range durations {
		totalWork += d
	}

	shortBudget := time.Duration(float64(totalWork) * shortShare)
	mediumBudget := time.Duration(float64(totalWork) * (shortShare + mediumShare))

	th := LengthThresholds{}
	var acc time.Duration
	for _, d := range durations {
		acc += d
		if th.ShortMax == 0 && acc >= shortBudget {
			th.ShortMax = d
		}
		if th.LongMin == 0 && acc >= mediumBudget {
			th.LongMin = d
		}
	}
	if th.ShortMax == 0 {
		th.ShortMax = durations[len(durations)-1]
	}
	if th.LongMin < th.ShortMax {
		th.LongMin = th.ShortMax
	}
	return th
}
