package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"

	"harvest/internal/kmeans"
	"harvest/internal/stats"
	"harvest/internal/tenant"
)

// PlacementGridSize is the number of cells per dimension of the
// two-dimensional placement clustering (3x3 in the paper, Algorithm 2).
const PlacementGridSize = 3

// TenantPlacementInfo is the per-tenant input to the placement scheme: the
// historical reimage rate (durability dimension), the historical peak CPU
// utilization (availability dimension), the harvestable space, and the
// tenant's servers and environment.
type TenantPlacementInfo struct {
	ID          tenant.ID
	Environment string
	// ReimageRate is reimages per server per month.
	ReimageRate float64
	// PeakCPU is the tenant's historical peak CPU utilization fraction.
	PeakCPU float64
	// AvailableBytes is the tenant's total harvestable space.
	AvailableBytes int64
	// Servers lists the tenant's servers.
	Servers []tenant.ServerID
}

// PlacementCell is one cell of the two-dimensional clustering: a reimage
// column and a peak-utilization row, holding roughly 1/9 of the harvestable
// space.
type PlacementCell struct {
	// Col indexes the reimage-frequency dimension (0 = infrequent).
	Col int
	// Row indexes the peak-utilization dimension (0 = low peak).
	Row int
	// Tenants are the members of the cell.
	Tenants []tenant.ID
	// AvailableBytes is the cell's total harvestable space.
	AvailableBytes int64
}

// PlacementScheme is the output of the two-dimensional clustering plus the
// indexes the placement algorithm needs.
//
// The scheme owns reusable scratch buffers for the sampling inner loops, so
// a single scheme must not run PlaceReplicas concurrently from multiple
// goroutines — the same contract as the *rand.Rand each call already takes.
type PlacementScheme struct {
	Cells [PlacementGridSize][PlacementGridSize]*PlacementCell

	infos        map[tenant.ID]*TenantPlacementInfo
	tenantCell   map[tenant.ID][2]int // (col, row)
	serverTenant map[tenant.ServerID]tenant.ID

	// Scratch state reused across PlaceReplicas calls so the steady-state
	// placement path allocates nothing but the returned replica slice.
	scratchCells   [PlacementGridSize * PlacementGridSize]*PlacementCell
	scratchTenants []int32
	scratchServers []int32
	usedEnvs       []string
	usedServers    []tenant.ServerID
	usedCols       uint32 // bitset over columns, bit c = column c used
	usedRows       uint32 // bitset over rows

	// relaxed counts placements that fell back to ignoring row/column
	// diversity (the §7 "space over diversity" degradation). The counter is
	// shared across CloneForConcurrentUse copies so one scheme exposes one
	// total regardless of how many pooled placers serve it.
	relaxed *atomic.Uint64
}

// ErrNoEligibleServer is returned when the placement algorithm cannot find a
// server satisfying all constraints for a replica.
var ErrNoEligibleServer = errors.New("core: no eligible server for replica")

// BuildPlacementScheme clusters the tenants into the 3x3 grid (Algorithm 2
// lines 4-5): first into three reimage-frequency columns of equal harvestable
// space, then, within each column, into three peak-utilization rows of equal
// space. A tenant belongs to exactly one cell (§4.2: tenants are never split,
// which trades perfect balance for diversity).
func BuildPlacementScheme(infos []TenantPlacementInfo) (*PlacementScheme, error) {
	if len(infos) == 0 {
		return nil, fmt.Errorf("core: cannot build a placement scheme without tenants")
	}
	scheme := &PlacementScheme{
		infos:        make(map[tenant.ID]*TenantPlacementInfo, len(infos)),
		tenantCell:   make(map[tenant.ID][2]int, len(infos)),
		serverTenant: make(map[tenant.ServerID]tenant.ID),
		relaxed:      new(atomic.Uint64),
	}
	for col := 0; col < PlacementGridSize; col++ {
		for row := 0; row < PlacementGridSize; row++ {
			scheme.Cells[col][row] = &PlacementCell{Col: col, Row: row}
		}
	}
	for i := range infos {
		info := infos[i]
		if _, dup := scheme.infos[info.ID]; dup {
			return nil, fmt.Errorf("core: duplicate tenant %v in placement input", info.ID)
		}
		scheme.infos[info.ID] = &infos[i]
		for _, s := range info.Servers {
			scheme.serverTenant[s] = info.ID
		}
	}

	// Column split: reimage rate, weighted by available space.
	rates := make([]float64, len(infos))
	weights := make([]float64, len(infos))
	for i, info := range infos {
		rates[i] = info.ReimageRate
		weights[i] = float64(info.AvailableBytes)
	}
	cols, err := kmeans.WeightedQuantileBuckets(rates, weights, PlacementGridSize)
	if err != nil {
		return nil, fmt.Errorf("core: reimage-column split: %w", err)
	}

	// Row split: peak CPU, weighted by space, independently within each column
	// (this is why the row boundaries do not align across columns in Fig 8).
	for col := 0; col < PlacementGridSize; col++ {
		var idxs []int
		var peaks, colWeights []float64
		for i := range infos {
			if cols[i] != col {
				continue
			}
			idxs = append(idxs, i)
			peaks = append(peaks, infos[i].PeakCPU)
			colWeights = append(colWeights, float64(infos[i].AvailableBytes))
		}
		if len(idxs) == 0 {
			continue
		}
		rows, err := kmeans.WeightedQuantileBuckets(peaks, colWeights, PlacementGridSize)
		if err != nil {
			return nil, fmt.Errorf("core: peak-utilization row split: %w", err)
		}
		for j, i := range idxs {
			info := &infos[i]
			cell := scheme.Cells[col][rows[j]]
			cell.Tenants = append(cell.Tenants, info.ID)
			cell.AvailableBytes += info.AvailableBytes
			scheme.tenantCell[info.ID] = [2]int{col, rows[j]}
		}
	}
	return scheme, nil
}

// CloneForConcurrentUse returns a scheme that shares s's immutable clustering
// state — the cells, tenant infos, and tenant/server indexes, which are never
// written after BuildPlacementScheme returns — but owns fresh scratch buffers.
// PlaceReplicas mutates only the scratch state, so each clone may place
// concurrently with the original and with other clones. This is the hook the
// snapshot serving layer uses to keep a pool of placers per immutable
// snapshot instead of serializing placements behind a lock.
func (s *PlacementScheme) CloneForConcurrentUse() *PlacementScheme {
	return &PlacementScheme{
		Cells:        s.Cells,
		infos:        s.infos,
		tenantCell:   s.tenantCell,
		serverTenant: s.serverTenant,
		relaxed:      s.relaxed,
	}
}

// RelaxedCount reports how many replica picks fell back to ignoring
// row/column diversity since the scheme was built, totalled across every
// clone. Operators watch this to see when the grid is too small for R.
func (s *PlacementScheme) RelaxedCount() uint64 {
	if s.relaxed == nil {
		return 0
	}
	return s.relaxed.Load()
}

// CellOfTenant returns the (col, row) cell of a tenant.
func (s *PlacementScheme) CellOfTenant(id tenant.ID) (col, row int, ok bool) {
	cell, ok := s.tenantCell[id]
	return cell[0], cell[1], ok
}

// TenantOfServer returns the tenant owning a server, if known to the scheme.
func (s *PlacementScheme) TenantOfServer(id tenant.ServerID) (tenant.ID, bool) {
	t, ok := s.serverTenant[id]
	return t, ok
}

// SpaceImbalance returns the ratio between the largest and smallest cell
// space (1 means perfectly balanced). It is the quantity the production
// deployment monitors to decide when diversity is getting scarce (§7).
func (s *PlacementScheme) SpaceImbalance() float64 {
	minSpace := int64(-1)
	maxSpace := int64(0)
	for col := 0; col < PlacementGridSize; col++ {
		for row := 0; row < PlacementGridSize; row++ {
			b := s.Cells[col][row].AvailableBytes
			if minSpace < 0 || b < minSpace {
				minSpace = b
			}
			if b > maxSpace {
				maxSpace = b
			}
		}
	}
	if minSpace <= 0 {
		return 0
	}
	return float64(maxSpace) / float64(minSpace)
}

// PlacementConstraints tune a single placement request.
type PlacementConstraints struct {
	// Replication is the number of replicas to place (including the writer's).
	Replication int
	// Writer is the server creating the block; the first replica lands there
	// for locality when the server is known to the scheme. Use -1 when the
	// writer is not a harvested server (e.g. an external client).
	Writer tenant.ServerID
	// ServerEligible, if non-nil, filters out servers that are full, busy, or
	// decommissioned. Returning false excludes the server.
	ServerEligible func(tenant.ServerID) bool
	// EnforceEnvironment keeps the "one replica per environment" constraint.
	// The production deployment initially relaxed it ("soft" constraints) to
	// favour space over diversity (§7); setting this to false reproduces that
	// behaviour for the ablation experiments.
	EnforceEnvironment bool
}

// allServersEligible is the default filter; a package-level value so the
// common no-filter path costs no closure allocation.
var allServersEligible = func(tenant.ServerID) bool { return true }

// PlaceReplicas implements Algorithm 2: it returns the servers that should
// hold the block's replicas. The first replica goes to the writer's server
// (when known and eligible); each subsequent replica goes to a random tenant
// of a random cell such that, within a round of three picks, no two cells
// share a row or a column, and no environment receives two replicas.
func (s *PlacementScheme) PlaceReplicas(rng *rand.Rand, c PlacementConstraints) ([]tenant.ServerID, error) {
	if c.Replication <= 0 {
		return nil, fmt.Errorf("core: replication must be positive, got %d", c.Replication)
	}
	eligible := c.ServerEligible
	if eligible == nil {
		eligible = allServersEligible
	}

	replicas := make([]tenant.ServerID, 0, c.Replication)
	s.usedEnvs = s.usedEnvs[:0]
	s.usedServers = s.usedServers[:0]
	s.usedCols = 0
	s.usedRows = 0

	// First replica: the writer's server, for locality (lines 6-7).
	if tid, ok := s.serverTenant[c.Writer]; ok && eligible(c.Writer) {
		replicas = s.place(replicas, c.Writer, tid)
	} else {
		// The writer is unknown or ineligible: pick the first replica like any
		// other, from a random cell.
		server, tid, err := s.pickReplica(rng, true, eligible, c.EnforceEnvironment)
		if err != nil {
			return nil, err
		}
		replicas = s.place(replicas, server, tid)
	}

	for len(replicas) < c.Replication {
		// Line 15-17: after every three replicas, forget row/column history.
		if len(replicas)%PlacementGridSize == 0 {
			s.usedCols = 0
			s.usedRows = 0
		}
		server, tid, err := s.pickReplica(rng, true, eligible, c.EnforceEnvironment)
		if errors.Is(err, ErrNoEligibleServer) {
			// The row/column diversity constraint cannot be met (e.g. very few
			// tenants, or entire rows excluded as busy/full). Fall back to a
			// best-effort pick that keeps the environment and server
			// constraints but ignores row/column history, matching the
			// production behaviour of degrading diversity before failing the
			// block creation (§7).
			server, tid, err = s.pickReplica(rng, false, eligible, c.EnforceEnvironment)
			if err == nil && s.relaxed != nil {
				s.relaxed.Add(1)
			}
		}
		if err != nil {
			return replicas, err
		}
		replicas = s.place(replicas, server, tid)
	}
	return replicas, nil
}

// PlaceAdditional places count more replicas for a block that already holds
// existing ones — the re-replication path after a replica is lost. The
// constraint state is seeded from the survivors: their servers and
// environments stay excluded for the whole block, and the row/column history
// of the block's current (possibly partial) round of three carries over, so
// a repair lands where a fresh PlaceReplicas call would have put the replica.
// c.Replication and c.Writer are ignored; the same relaxed fallback applies.
func (s *PlacementScheme) PlaceAdditional(rng *rand.Rand, existing []tenant.ServerID, count int, c PlacementConstraints) ([]tenant.ServerID, error) {
	if count <= 0 {
		return nil, fmt.Errorf("core: additional replica count must be positive, got %d", count)
	}
	eligible := c.ServerEligible
	if eligible == nil {
		eligible = allServersEligible
	}

	s.usedEnvs = s.usedEnvs[:0]
	s.usedServers = s.usedServers[:0]
	s.usedCols = 0
	s.usedRows = 0
	roundStart := len(existing) - len(existing)%PlacementGridSize
	for i, server := range existing {
		s.usedServers = append(s.usedServers, server)
		tid, ok := s.serverTenant[server]
		if !ok {
			continue
		}
		if info := s.infos[tid]; info != nil {
			s.usedEnvs = append(s.usedEnvs, info.Environment)
		}
		if cell, ok := s.tenantCell[tid]; ok && i >= roundStart {
			s.usedCols |= 1 << uint(cell[0])
			s.usedRows |= 1 << uint(cell[1])
		}
	}

	replicas := make([]tenant.ServerID, 0, count)
	for placed := 0; placed < count; placed++ {
		if (len(existing)+placed)%PlacementGridSize == 0 {
			s.usedCols = 0
			s.usedRows = 0
		}
		server, tid, err := s.pickReplica(rng, true, eligible, c.EnforceEnvironment)
		if errors.Is(err, ErrNoEligibleServer) {
			server, tid, err = s.pickReplica(rng, false, eligible, c.EnforceEnvironment)
			if err == nil && s.relaxed != nil {
				s.relaxed.Add(1)
			}
		}
		if err != nil {
			return replicas, err
		}
		replicas = s.place(replicas, server, tid)
	}
	return replicas, nil
}

// ReplicaSite resolves the grid coordinates and environment of the tenant
// owning a server — the placement-constraint view a block ledger needs when
// re-validating replicas against a re-clustered scheme. ok is false when the
// server is unknown to this scheme (its tenant left the population).
func (s *PlacementScheme) ReplicaSite(server tenant.ServerID) (col, row int, env string, ok bool) {
	tid, ok := s.serverTenant[server]
	if !ok {
		return 0, 0, "", false
	}
	if info := s.infos[tid]; info != nil {
		env = info.Environment
	}
	cell, ok := s.tenantCell[tid]
	if !ok {
		return 0, 0, "", false
	}
	return cell[0], cell[1], env, true
}

// place records a chosen replica in the round's constraint state.
func (s *PlacementScheme) place(replicas []tenant.ServerID, server tenant.ServerID, tid tenant.ID) []tenant.ServerID {
	replicas = append(replicas, server)
	s.usedServers = append(s.usedServers, server)
	if info := s.infos[tid]; info != nil {
		s.usedEnvs = append(s.usedEnvs, info.Environment)
	}
	if cell, ok := s.tenantCell[tid]; ok {
		s.usedCols |= 1 << uint(cell[0])
		s.usedRows |= 1 << uint(cell[1])
	}
	return replicas
}

func (s *PlacementScheme) serverUsed(id tenant.ServerID) bool {
	for _, u := range s.usedServers {
		if u == id {
			return true
		}
	}
	return false
}

func (s *PlacementScheme) envUsed(env string) bool {
	for _, e := range s.usedEnvs {
		if e == env {
			return true
		}
	}
	return false
}

// pickReplica selects one (server, tenant) pair honouring the row/column and
// environment constraints. When useRowCol is false the row/column history is
// ignored (the caller's best-effort fallback); if no candidate satisfies the
// constraints it returns ErrNoEligibleServer and the caller decides whether
// to relax (the production "space over diversity" mode is modelled by
// EnforceEnvironment=false).
//
// Cells, tenants, and servers are each visited in a uniformly random order
// produced by a partial Fisher–Yates shuffle over the scheme's scratch
// buffers: the shuffle advances only as far as the search does, and no
// per-call permutation is allocated (the rng.Perm the seed implementation
// used allocated all three levels in full on every pick).
func (s *PlacementScheme) pickReplica(
	rng *rand.Rand,
	useRowCol bool,
	eligible func(tenant.ServerID) bool,
	enforceEnvironment bool,
) (tenant.ServerID, tenant.ID, error) {
	// Candidate cells: not in a used row or column, with members.
	// Algorithm 2 picks cells uniformly at random.
	usedCols, usedRows := s.usedCols, s.usedRows
	if !useRowCol {
		usedCols, usedRows = 0, 0
	}
	numCells := 0
	for col := 0; col < PlacementGridSize; col++ {
		if usedCols&(1<<uint(col)) != 0 {
			continue
		}
		for row := 0; row < PlacementGridSize; row++ {
			if usedRows&(1<<uint(row)) != 0 {
				continue
			}
			cell := s.Cells[col][row]
			if len(cell.Tenants) == 0 {
				continue
			}
			s.scratchCells[numCells] = cell
			numCells++
		}
	}
	for ci := 0; ci < numCells; ci++ {
		cj := ci + rng.Intn(numCells-ci)
		s.scratchCells[ci], s.scratchCells[cj] = s.scratchCells[cj], s.scratchCells[ci]
		cell := s.scratchCells[ci]
		// Try the cell's tenants in random order.
		s.scratchTenants = stats.IdentityPerm(s.scratchTenants, len(cell.Tenants))
		for ti := range s.scratchTenants {
			tid := cell.Tenants[stats.PermNext(rng, s.scratchTenants, ti)]
			info := s.infos[tid]
			if info == nil || len(info.Servers) == 0 {
				continue
			}
			if enforceEnvironment && s.envUsed(info.Environment) {
				continue
			}
			// Try the tenant's servers in random order.
			s.scratchServers = stats.IdentityPerm(s.scratchServers, len(info.Servers))
			for si := range s.scratchServers {
				server := info.Servers[stats.PermNext(rng, s.scratchServers, si)]
				if s.serverUsed(server) || !eligible(server) {
					continue
				}
				return server, tid, nil
			}
		}
	}
	return 0, 0, ErrNoEligibleServer
}
