// Package core implements the paper's primary contribution: history-based
// smart task scheduling and smart replica placement (§4).
//
// The clustering service groups primary tenants with similar utilization
// patterns into utilization classes (this file). The class selection algorithm
// (schedule.go, Algorithm 1 in the paper) picks the class(es) that should host
// a batch job's tasks based on the job's expected length and each class's
// weighted headroom. The replica placement algorithm (placement.go, Algorithm
// 2) spreads a block's replicas across primary tenants with diverse reimaging
// and peak-utilization behaviour.
package core

import (
	"fmt"
	"math/rand"
	"sort"

	"harvest/internal/kmeans"
	"harvest/internal/signalproc"
	"harvest/internal/stats"
	"harvest/internal/tenant"
)

// ClassID identifies a utilization class produced by the clustering service.
type ClassID int

// UtilizationClass is a group of primary tenants with similar utilization
// patterns. The clustering service tags each class with its pattern, average
// utilization, and peak utilization (§4.1).
type UtilizationClass struct {
	ID      ClassID
	Pattern signalproc.Pattern

	// AvgUtilization and PeakUtilization summarize the class's historical
	// behaviour; they feed the headroom definitions for medium and long jobs.
	AvgUtilization  float64
	PeakUtilization float64

	// Tenants and Servers list the class members.
	Tenants []tenant.ID
	Servers []tenant.ServerID

	// Centroid is the K-Means centroid in profile-feature space.
	Centroid []float64
}

// NumServers returns how many servers belong to the class.
func (c *UtilizationClass) NumServers() int { return len(c.Servers) }

// Clustering is the output of the clustering service: the utilization classes
// and the tenant/server membership maps the scheduler consults.
type Clustering struct {
	Classes []*UtilizationClass

	tenantClass map[tenant.ID]ClassID
	serverClass map[tenant.ServerID]ClassID
}

// ClassOfTenant returns the class a tenant belongs to.
func (c *Clustering) ClassOfTenant(id tenant.ID) (ClassID, bool) {
	cid, ok := c.tenantClass[id]
	return cid, ok
}

// ClassOfServer returns the class a server belongs to.
func (c *Clustering) ClassOfServer(id tenant.ServerID) (ClassID, bool) {
	cid, ok := c.serverClass[id]
	return cid, ok
}

// Class returns the class with the given id, or nil.
func (c *Clustering) Class(id ClassID) *UtilizationClass {
	if int(id) < 0 || int(id) >= len(c.Classes) {
		return nil
	}
	return c.Classes[id]
}

// PatternCounts returns how many classes exist per pattern (the paper reports
// 23 classes for DC-9: 13 periodic, 5 constant, 5 unpredictable).
func (c *Clustering) PatternCounts() map[signalproc.Pattern]int {
	out := make(map[signalproc.Pattern]int, signalproc.NumPatterns)
	for _, cls := range c.Classes {
		out[cls.Pattern]++
	}
	return out
}

// ClusteringConfig tunes the clustering service.
type ClusteringConfig struct {
	// ClassesPerPattern fixes the number of K-Means classes for a pattern.
	// Patterns not present in the map use a heuristic of one class per
	// TenantsPerClass tenants (at least one, at most MaxClassesPerPattern).
	ClassesPerPattern map[signalproc.Pattern]int
	// TenantsPerClass is the target number of tenants per class when
	// ClassesPerPattern does not specify a pattern. Zero means 30.
	TenantsPerClass int
	// MaxClassesPerPattern caps the per-pattern class count. Zero means 16.
	MaxClassesPerPattern int
	// Classifier configures the FFT-based pattern classification.
	Classifier signalproc.ClassifierConfig
	// Seed drives the K-Means seeding, keeping runs reproducible.
	Seed int64
}

// DefaultClusteringConfig returns the configuration used by the experiments.
func DefaultClusteringConfig() ClusteringConfig {
	return ClusteringConfig{
		TenantsPerClass:      30,
		MaxClassesPerPattern: 16,
		Classifier:           signalproc.DefaultClassifierConfig(),
		Seed:                 1,
	}
}

// ClusteringService periodically (e.g. once per day, §4.1) re-derives the
// utilization classes from the most recent telemetry.
type ClusteringService struct {
	cfg ClusteringConfig
}

// NewClusteringService creates a clustering service.
func NewClusteringService(cfg ClusteringConfig) *ClusteringService {
	if cfg.TenantsPerClass <= 0 {
		cfg.TenantsPerClass = 30
	}
	if cfg.MaxClassesPerPattern <= 0 {
		cfg.MaxClassesPerPattern = 16
	}
	return &ClusteringService{cfg: cfg}
}

// Cluster runs the full pipeline of §4.1: classify each tenant's most recent
// utilization series with the FFT, group tenants by pattern, and run K-Means
// within each pattern to form utilization classes.
func (s *ClusteringService) Cluster(pop *tenant.Population) (*Clustering, error) {
	if len(pop.Tenants) == 0 {
		return nil, fmt.Errorf("core: cannot cluster an empty population")
	}
	// (Re)classify tenants so the clustering reflects the latest telemetry.
	for _, t := range pop.Tenants {
		if err := t.Classify(s.cfg.Classifier); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	byPattern := make(map[signalproc.Pattern][]*tenant.Tenant, signalproc.NumPatterns)
	for _, t := range pop.Tenants {
		byPattern[t.Pattern()] = append(byPattern[t.Pattern()], t)
	}

	clustering := &Clustering{
		tenantClass: make(map[tenant.ID]ClassID, len(pop.Tenants)),
		serverClass: make(map[tenant.ServerID]ClassID, pop.NumServers()),
	}
	rng := rand.New(rand.NewSource(s.cfg.Seed))

	// Deterministic pattern order.
	patterns := []signalproc.Pattern{
		signalproc.PatternConstant, signalproc.PatternPeriodic, signalproc.PatternUnpredictable,
	}
	for _, pattern := range patterns {
		tenants := byPattern[pattern]
		if len(tenants) == 0 {
			continue
		}
		k := s.classCount(pattern, len(tenants))
		points := make([][]float64, len(tenants))
		for i, t := range tenants {
			points[i] = t.Profile.FeatureVector()
		}
		result, err := kmeans.Cluster(rng, points, kmeans.Config{K: k})
		if err != nil {
			return nil, fmt.Errorf("core: clustering %v tenants: %w", pattern, err)
		}
		// Build classes; drop empty clusters (possible when K exceeds the
		// number of distinct profiles).
		classIndex := make(map[int]*UtilizationClass, len(result.Centroids))
		for i, t := range tenants {
			ci := result.Assignments[i]
			cls, ok := classIndex[ci]
			if !ok {
				cls = &UtilizationClass{
					ID:       ClassID(len(clustering.Classes)),
					Pattern:  pattern,
					Centroid: result.Centroids[ci],
				}
				classIndex[ci] = cls
				clustering.Classes = append(clustering.Classes, cls)
			}
			cls.Tenants = append(cls.Tenants, t.ID)
			cls.Servers = append(cls.Servers, t.Servers...)
			clustering.tenantClass[t.ID] = cls.ID
			for _, srv := range t.Servers {
				clustering.serverClass[srv] = cls.ID
			}
		}
		// Tag classes with utilization statistics weighted by server count.
		// The peak is the server-weighted average of the members' peaks: the
		// class summarizes how high its typical server goes, without letting a
		// single outlier tenant make the whole class unusable for long jobs.
		for _, cls := range classIndex {
			totalServers := 0.0
			avg := 0.0
			peak := 0.0
			for _, tid := range cls.Tenants {
				t := pop.ByID(tid)
				w := float64(t.NumServers())
				totalServers += w
				avg += t.AverageUtilization() * w
				peak += t.PeakUtilization() * w
			}
			if totalServers > 0 {
				avg /= totalServers
				peak /= totalServers
			}
			if peak < avg {
				peak = avg
			}
			cls.AvgUtilization = avg
			cls.PeakUtilization = peak
		}
	}
	// Keep class ordering stable by ID.
	sort.Slice(clustering.Classes, func(i, j int) bool {
		return clustering.Classes[i].ID < clustering.Classes[j].ID
	})
	return clustering, nil
}

func (s *ClusteringService) classCount(pattern signalproc.Pattern, numTenants int) int {
	if k, ok := s.cfg.ClassesPerPattern[pattern]; ok && k > 0 {
		return k
	}
	k := numTenants / s.cfg.TenantsPerClass
	k = int(stats.Clamp(float64(k), 1, float64(s.cfg.MaxClassesPerPattern)))
	return k
}
