// Package core implements the paper's primary contribution: history-based
// smart task scheduling and smart replica placement (§4).
//
// The clustering service groups primary tenants with similar utilization
// patterns into utilization classes (this file). The class selection algorithm
// (schedule.go, Algorithm 1 in the paper) picks the class(es) that should host
// a batch job's tasks based on the job's expected length and each class's
// weighted headroom. The replica placement algorithm (placement.go, Algorithm
// 2) spreads a block's replicas across primary tenants with diverse reimaging
// and peak-utilization behaviour.
package core

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"harvest/internal/kmeans"
	"harvest/internal/signalproc"
	"harvest/internal/stats"
	"harvest/internal/tenant"
	"harvest/internal/timeseries"
)

// ClassID identifies a utilization class produced by the clustering service.
type ClassID int

// UtilizationClass is a group of primary tenants with similar utilization
// patterns. The clustering service tags each class with its pattern, average
// utilization, and peak utilization (§4.1).
type UtilizationClass struct {
	ID      ClassID
	Pattern signalproc.Pattern

	// AvgUtilization and PeakUtilization summarize the class's historical
	// behaviour; they feed the headroom definitions for medium and long jobs.
	AvgUtilization  float64
	PeakUtilization float64

	// Tenants and Servers list the class members.
	Tenants []tenant.ID
	Servers []tenant.ServerID

	// Centroid is the K-Means centroid in profile-feature space.
	Centroid []float64
}

// NumServers returns how many servers belong to the class.
func (c *UtilizationClass) NumServers() int { return len(c.Servers) }

// Clustering is the output of the clustering service: the utilization classes
// and the tenant/server membership maps the scheduler consults.
type Clustering struct {
	Classes []*UtilizationClass

	tenantClass map[tenant.ID]ClassID
	// serverClass maps every server to its class. An incremental generation
	// (Recluster) shares the previous generation's map unchanged and layers
	// serverDelta over it: the delta holds only the servers whose tenant was
	// reassigned (or dropped — classNone tombstones), so a refresh writes
	// O(moved tenants' servers) map entries instead of O(servers). Both maps
	// are immutable once the clustering is published.
	serverClass map[tenant.ServerID]ClassID
	serverDelta map[tenant.ServerID]ClassID
}

// classNone tombstones a server in serverDelta: its tenant dropped out of
// the incremental generation (e.g. an evicted telemetry ring), so lookups
// must fail even though the shared base map still holds an older assignment.
const classNone ClassID = -1

// ClassOfTenant returns the class a tenant belongs to.
func (c *Clustering) ClassOfTenant(id tenant.ID) (ClassID, bool) {
	cid, ok := c.tenantClass[id]
	return cid, ok
}

// ClassOfServer returns the class a server belongs to. The delta (servers
// reassigned since the shared base generation) shadows the base map.
func (c *Clustering) ClassOfServer(id tenant.ServerID) (ClassID, bool) {
	if cid, ok := c.serverDelta[id]; ok {
		return cid, cid != classNone
	}
	cid, ok := c.serverClass[id]
	return cid, ok
}

// SplicedServers reports how many server assignments this generation carries
// as a delta over a shared base map — zero for a from-scratch clustering or
// a fully-shared (no membership change) incremental one.
func (c *Clustering) SplicedServers() int { return len(c.serverDelta) }

// Class returns the class with the given id, or nil.
func (c *Clustering) Class(id ClassID) *UtilizationClass {
	if int(id) < 0 || int(id) >= len(c.Classes) {
		return nil
	}
	return c.Classes[id]
}

// PatternCounts returns how many classes exist per pattern (the paper reports
// 23 classes for DC-9: 13 periodic, 5 constant, 5 unpredictable).
func (c *Clustering) PatternCounts() map[signalproc.Pattern]int {
	out := make(map[signalproc.Pattern]int, signalproc.NumPatterns)
	for _, cls := range c.Classes {
		out[cls.Pattern]++
	}
	return out
}

// ClusteringConfig tunes the clustering service.
type ClusteringConfig struct {
	// ClassesPerPattern fixes the number of K-Means classes for a pattern.
	// Patterns not present in the map use a heuristic of one class per
	// TenantsPerClass tenants (at least one, at most MaxClassesPerPattern).
	ClassesPerPattern map[signalproc.Pattern]int
	// TenantsPerClass is the target number of tenants per class when
	// ClassesPerPattern does not specify a pattern. Zero means 30.
	TenantsPerClass int
	// MaxClassesPerPattern caps the per-pattern class count. Zero means 16.
	MaxClassesPerPattern int
	// Classifier configures the FFT-based pattern classification. Its
	// periodic band is interpreted relative to ReferenceWindow and rescaled
	// per tenant to the actual history window being classified.
	Classifier signalproc.ClassifierConfig
	// ReferenceWindow is the analysis window the Classifier thresholds were
	// tuned for. Zero means the paper's one month.
	ReferenceWindow time.Duration
	// DriftThreshold is the absolute change in a tenant's window mean or CV
	// (twice that for the peak) past which Recluster re-runs the full FFT
	// classification for the tenant instead of keeping its cached profile.
	// Zero means DefaultDriftThreshold.
	DriftThreshold float64
	// Seed drives the K-Means seeding, keeping runs reproducible.
	Seed int64
}

// DefaultDriftThreshold is the Recluster drift cut-off: 2 percentage points
// of utilization (or 0.02 of CV) — well above sampling noise on a multi-day
// window, well below a behaviour change that would move a tenant between
// classes.
const DefaultDriftThreshold = 0.02

// defaultReferenceWindow is the paper's one-month characterization window.
const defaultReferenceWindow = 30 * 24 * time.Hour

// DefaultClusteringConfig returns the configuration used by the experiments.
func DefaultClusteringConfig() ClusteringConfig {
	return ClusteringConfig{
		TenantsPerClass:      30,
		MaxClassesPerPattern: 16,
		Classifier:           signalproc.DefaultClassifierConfig(),
		Seed:                 1,
	}
}

// ClusteringService periodically (e.g. once per day, §4.1) re-derives the
// utilization classes from the most recent telemetry.
type ClusteringService struct {
	cfg ClusteringConfig
}

// NewClusteringService creates a clustering service.
func NewClusteringService(cfg ClusteringConfig) *ClusteringService {
	if cfg.TenantsPerClass <= 0 {
		cfg.TenantsPerClass = 30
	}
	if cfg.MaxClassesPerPattern <= 0 {
		cfg.MaxClassesPerPattern = 16
	}
	return &ClusteringService{cfg: cfg}
}

// patternOrder is the deterministic order pattern groups are clustered in;
// class IDs are assigned in this order, so it is part of the output contract.
var patternOrder = []signalproc.Pattern{
	signalproc.PatternConstant, signalproc.PatternPeriodic, signalproc.PatternUnpredictable,
}

// Cluster runs the full pipeline of §4.1 against the tenants' own generated
// trace series — the behaviour every experiment harness and simulator
// depends on. It is ClusterFrom over the trace-backed history source.
func (s *ClusteringService) Cluster(pop *tenant.Population) (*Clustering, error) {
	return s.ClusterFrom(pop, tenant.TraceHistory{Pop: pop})
}

// ClusterFrom runs the full pipeline of §4.1 from an arbitrary history
// source: classify each tenant's history window with the FFT, group tenants
// by pattern, and run K-Means within each pattern to form utilization
// classes. The source decides what "the most recent telemetry" means —
// a cyclic synthetic trace (tenant.TraceHistory) or live ingestion rings
// (telemetry.Store). Each tenant's Profile is updated in place.
//
// Tenants the source holds no history for (e.g. live rings evicted after the
// tenant stopped reporting) are left out of every class: an uncharacterizable
// tenant must not skew a class's statistics, and excluding its servers from
// the serving set is the SLO-safe direction. Clustering fails only when no
// tenant has history at all.
func (s *ClusteringService) ClusterFrom(pop *tenant.Population, src tenant.HistorySource) (*Clustering, error) {
	if len(pop.Tenants) == 0 {
		return nil, fmt.Errorf("core: cannot cluster an empty population")
	}
	// (Re)classify tenants so the clustering reflects the latest telemetry.
	active := make([]*tenant.Tenant, 0, len(pop.Tenants))
	for _, t := range pop.Tenants {
		series := src.SeriesFor(t.ID)
		if series == nil || series.Len() < signalproc.MinClassifySamples {
			// Too little history to characterize (evicted ring, or one just
			// refilling): the tenant sits out this generation.
			continue
		}
		if err := s.classifySeries(t, series); err != nil {
			return nil, err
		}
		active = append(active, t)
	}
	if len(active) == 0 {
		return nil, fmt.Errorf("core: history source holds no series for any tenant")
	}
	clustering := newClustering(pop)
	rng := rand.New(rand.NewSource(s.cfg.Seed))
	byPattern := groupByPattern(active)
	for _, pattern := range patternOrder {
		tenants := byPattern[pattern]
		if len(tenants) == 0 {
			continue
		}
		k := s.classCount(pattern, len(tenants))
		result, err := kmeans.Cluster(rng, featureVectors(tenants), kmeans.Config{K: k})
		if err != nil {
			return nil, fmt.Errorf("core: clustering %v tenants: %w", pattern, err)
		}
		s.appendClasses(clustering, pop, pattern, tenants, result)
	}
	sortClasses(clustering)
	return clustering, nil
}

// classifyFrom re-derives one tenant's profile from the history source,
// rescaling the classifier's periodic band to the window the source holds.
func (s *ClusteringService) classifyFrom(t *tenant.Tenant, src tenant.HistorySource) error {
	return s.classifySeries(t, src.SeriesFor(t.ID))
}

// classifySeries classifies one tenant from an already-materialized history
// window (Recluster's drift check has usually fetched it anyway — ring
// sources copy the full window per call, so it is fetched exactly once).
func (s *ClusteringService) classifySeries(t *tenant.Tenant, series *timeseries.Series) error {
	if series == nil || series.Len() == 0 {
		return fmt.Errorf("core: tenant %v: history source holds no series", t.ID)
	}
	ref := s.cfg.ReferenceWindow
	if ref <= 0 {
		ref = defaultReferenceWindow
	}
	p, err := signalproc.Classify(series.Values, s.cfg.Classifier.ForWindow(series.Duration(), ref))
	if err != nil {
		return fmt.Errorf("core: tenant %v: %w", t.ID, err)
	}
	t.Profile = p
	return nil
}

func newClustering(pop *tenant.Population) *Clustering {
	return &Clustering{
		tenantClass: make(map[tenant.ID]ClassID, len(pop.Tenants)),
		serverClass: make(map[tenant.ServerID]ClassID, pop.NumServers()),
	}
}

func groupByPattern(tenants []*tenant.Tenant) map[signalproc.Pattern][]*tenant.Tenant {
	byPattern := make(map[signalproc.Pattern][]*tenant.Tenant, signalproc.NumPatterns)
	for _, t := range tenants {
		byPattern[t.Pattern()] = append(byPattern[t.Pattern()], t)
	}
	return byPattern
}

func featureVectors(tenants []*tenant.Tenant) [][]float64 {
	points := make([][]float64, len(tenants))
	for i, t := range tenants {
		points[i] = t.Profile.FeatureVector()
	}
	return points
}

// appendClasses turns one pattern group's K-Means result into utilization
// classes appended to the clustering. Empty clusters are dropped (possible
// when K exceeds the number of distinct profiles). Class utilization
// statistics are server-count-weighted over the members' profile windows:
// the peak is the weighted average of the members' peaks, so the class
// summarizes how high its typical server goes without a single outlier
// tenant making the whole class unusable for long jobs.
func (s *ClusteringService) appendClasses(clustering *Clustering, pop *tenant.Population,
	pattern signalproc.Pattern, tenants []*tenant.Tenant, result *kmeans.Result) {
	s.appendClassesLite(clustering, pop, pattern, tenants, result)
	for _, t := range tenants {
		cls := clustering.Classes[clustering.tenantClass[t.ID]]
		cls.Servers = append(cls.Servers, t.Servers...)
		for _, srv := range t.Servers {
			clustering.serverClass[srv] = cls.ID
		}
	}
}

// appendClassesLite is appendClasses without the per-server work: classes,
// tenant membership, and class statistics only. The incremental path
// (Recluster) uses it and then splices server lists and assignments from the
// previous generation instead of rebuilding them per server.
func (s *ClusteringService) appendClassesLite(clustering *Clustering, pop *tenant.Population,
	pattern signalproc.Pattern, tenants []*tenant.Tenant, result *kmeans.Result) {
	classIndex := make(map[int]*UtilizationClass, len(result.Centroids))
	for i, t := range tenants {
		ci := result.Assignments[i]
		cls, ok := classIndex[ci]
		if !ok {
			cls = &UtilizationClass{
				ID:       ClassID(len(clustering.Classes)),
				Pattern:  pattern,
				Centroid: result.Centroids[ci],
			}
			classIndex[ci] = cls
			clustering.Classes = append(clustering.Classes, cls)
		}
		cls.Tenants = append(cls.Tenants, t.ID)
		clustering.tenantClass[t.ID] = cls.ID
	}
	for _, cls := range classIndex {
		totalServers := 0.0
		avg := 0.0
		peak := 0.0
		for _, tid := range cls.Tenants {
			t := pop.ByID(tid)
			w := float64(t.NumServers())
			totalServers += w
			avg += t.Profile.Mean * w
			peak += t.Profile.Peak * w
		}
		if totalServers > 0 {
			avg /= totalServers
			peak /= totalServers
		}
		if peak < avg {
			peak = avg
		}
		cls.AvgUtilization = avg
		cls.PeakUtilization = peak
	}
}

// sortClasses keeps class ordering stable by ID.
func sortClasses(clustering *Clustering) {
	sort.Slice(clustering.Classes, func(i, j int) bool {
		return clustering.Classes[i].ID < clustering.Classes[j].ID
	})
}

// NewClusteringFromClasses reassembles a Clustering from its classes — the
// restore path for snapshots persisted to disk. Membership maps are rebuilt;
// duplicate tenant or server membership across classes is rejected.
func NewClusteringFromClasses(classes []*UtilizationClass) (*Clustering, error) {
	c := &Clustering{
		Classes:     classes,
		tenantClass: make(map[tenant.ID]ClassID),
		serverClass: make(map[tenant.ServerID]ClassID),
	}
	for _, cls := range classes {
		for _, tid := range cls.Tenants {
			if _, dup := c.tenantClass[tid]; dup {
				return nil, fmt.Errorf("core: tenant %v in two classes", tid)
			}
			c.tenantClass[tid] = cls.ID
		}
		for _, srv := range cls.Servers {
			if _, dup := c.serverClass[srv]; dup {
				return nil, fmt.Errorf("core: server %v in two classes", srv)
			}
			c.serverClass[srv] = cls.ID
		}
	}
	sortClasses(c)
	return c, nil
}

func (s *ClusteringService) classCount(pattern signalproc.Pattern, numTenants int) int {
	if k, ok := s.cfg.ClassesPerPattern[pattern]; ok && k > 0 {
		return k
	}
	k := numTenants / s.cfg.TenantsPerClass
	k = int(stats.Clamp(float64(k), 1, float64(s.cfg.MaxClassesPerPattern)))
	return k
}
