package core

import (
	"testing"

	"harvest/internal/signalproc"
	"harvest/internal/tenant"
	"harvest/internal/trace"
)

// testPopulation generates a small DC-9-like population for core tests.
func testPopulation(t *testing.T, seed int64, scale float64) *tenant.Population {
	t.Helper()
	profile, ok := trace.ProfileByName("DC-9")
	if !ok {
		t.Fatal("DC-9 profile missing")
	}
	pop, err := trace.NewGenerator(profile.Scaled(scale), seed).Generate()
	if err != nil {
		t.Fatal(err)
	}
	return pop
}

func TestClusterEmptyPopulation(t *testing.T) {
	svc := NewClusteringService(DefaultClusteringConfig())
	empty, err := tenant.NewPopulation("DC-X", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Cluster(empty); err == nil {
		t.Fatalf("clustering an empty population should error")
	}
}

func TestClusterCoversAllTenantsAndServers(t *testing.T) {
	pop := testPopulation(t, 1, 0.1)
	svc := NewClusteringService(DefaultClusteringConfig())
	clustering, err := svc.Cluster(pop)
	if err != nil {
		t.Fatal(err)
	}
	if len(clustering.Classes) == 0 {
		t.Fatalf("no classes produced")
	}
	// Every tenant and every server must be mapped to exactly one class.
	tenantCount := 0
	serverCount := 0
	for _, cls := range clustering.Classes {
		tenantCount += len(cls.Tenants)
		serverCount += len(cls.Servers)
		for _, tid := range cls.Tenants {
			cid, ok := clustering.ClassOfTenant(tid)
			if !ok || cid != cls.ID {
				t.Fatalf("tenant %v maps to class %v, expected %v", tid, cid, cls.ID)
			}
		}
		for _, sid := range cls.Servers {
			cid, ok := clustering.ClassOfServer(sid)
			if !ok || cid != cls.ID {
				t.Fatalf("server %v maps to class %v, expected %v", sid, cid, cls.ID)
			}
		}
	}
	if tenantCount != len(pop.Tenants) {
		t.Fatalf("classes cover %d tenants, want %d", tenantCount, len(pop.Tenants))
	}
	if serverCount != pop.NumServers() {
		t.Fatalf("classes cover %d servers, want %d", serverCount, pop.NumServers())
	}
}

func TestClusterClassTagsAreConsistent(t *testing.T) {
	pop := testPopulation(t, 2, 0.1)
	svc := NewClusteringService(DefaultClusteringConfig())
	clustering, err := svc.Cluster(pop)
	if err != nil {
		t.Fatal(err)
	}
	for _, cls := range clustering.Classes {
		if cls.NumServers() == 0 {
			t.Fatalf("class %d has no servers", cls.ID)
		}
		if cls.AvgUtilization < 0 || cls.AvgUtilization > 1 {
			t.Fatalf("class %d avg utilization %v out of range", cls.ID, cls.AvgUtilization)
		}
		if cls.PeakUtilization < cls.AvgUtilization-1e-9 {
			t.Fatalf("class %d peak %v below average %v", cls.ID, cls.PeakUtilization, cls.AvgUtilization)
		}
		// All member tenants must share the class pattern.
		for _, tid := range cls.Tenants {
			if pop.ByID(tid).Pattern() != cls.Pattern {
				t.Fatalf("tenant %v pattern %v does not match class pattern %v",
					tid, pop.ByID(tid).Pattern(), cls.Pattern)
			}
		}
	}
}

func TestClusterRespectsExplicitClassCounts(t *testing.T) {
	pop := testPopulation(t, 3, 0.2)
	cfg := DefaultClusteringConfig()
	cfg.ClassesPerPattern = map[signalproc.Pattern]int{
		signalproc.PatternConstant:      5,
		signalproc.PatternPeriodic:      3,
		signalproc.PatternUnpredictable: 2,
	}
	svc := NewClusteringService(cfg)
	clustering, err := svc.Cluster(pop)
	if err != nil {
		t.Fatal(err)
	}
	counts := clustering.PatternCounts()
	if counts[signalproc.PatternConstant] > 5 {
		t.Errorf("constant classes = %d, want <= 5", counts[signalproc.PatternConstant])
	}
	if counts[signalproc.PatternPeriodic] > 3 {
		t.Errorf("periodic classes = %d, want <= 3", counts[signalproc.PatternPeriodic])
	}
	if counts[signalproc.PatternUnpredictable] > 2 {
		t.Errorf("unpredictable classes = %d, want <= 2", counts[signalproc.PatternUnpredictable])
	}
}

func TestClusterDeterministicForSeed(t *testing.T) {
	popA := testPopulation(t, 4, 0.1)
	popB := testPopulation(t, 4, 0.1)
	svc := NewClusteringService(DefaultClusteringConfig())
	a, err := svc.Cluster(popA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := svc.Cluster(popB)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Classes) != len(b.Classes) {
		t.Fatalf("class counts differ: %d vs %d", len(a.Classes), len(b.Classes))
	}
	for _, ta := range popA.Tenants {
		ca, _ := a.ClassOfTenant(ta.ID)
		cb, _ := b.ClassOfTenant(ta.ID)
		if ca != cb {
			t.Fatalf("tenant %v assigned to different classes across identical runs", ta.ID)
		}
	}
}

func TestClassLookupOutOfRange(t *testing.T) {
	pop := testPopulation(t, 5, 0.05)
	svc := NewClusteringService(DefaultClusteringConfig())
	clustering, err := svc.Cluster(pop)
	if err != nil {
		t.Fatal(err)
	}
	if clustering.Class(ClassID(-1)) != nil {
		t.Errorf("negative class id should return nil")
	}
	if clustering.Class(ClassID(len(clustering.Classes))) != nil {
		t.Errorf("out-of-range class id should return nil")
	}
	if clustering.Class(clustering.Classes[0].ID) == nil {
		t.Errorf("valid class id should be found")
	}
	if _, ok := clustering.ClassOfTenant(tenant.ID(1 << 30)); ok {
		t.Errorf("unknown tenant should not resolve")
	}
	if _, ok := clustering.ClassOfServer(tenant.ServerID(1 << 30)); ok {
		t.Errorf("unknown server should not resolve")
	}
}

func TestClusterErrorsOnUnclassifiableTenant(t *testing.T) {
	bad := &tenant.Tenant{ID: 1} // no utilization series
	pop, err := tenant.NewPopulation("DC-X", []*tenant.Tenant{bad})
	if err != nil {
		t.Fatal(err)
	}
	svc := NewClusteringService(DefaultClusteringConfig())
	if _, err := svc.Cluster(pop); err == nil {
		t.Fatalf("expected classification failure to propagate")
	}
}
