package core

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"harvest/internal/signalproc"
	"harvest/internal/stats"
)

// JobType is the coarse length category of a batch job (§4.1): the scheduler
// only needs to know whether a job is short, medium, or long, not an accurate
// runtime estimate.
type JobType int

const (
	// JobShort is a job shorter than the short/medium threshold.
	JobShort JobType = iota
	// JobMedium is a job between the two thresholds (also the default for
	// jobs that have never run before).
	JobMedium
	// JobLong is a job longer than the medium/long threshold.
	JobLong

	// NumJobTypes is the number of job length categories.
	NumJobTypes = 3
)

// String implements fmt.Stringer.
func (t JobType) String() string {
	switch t {
	case JobShort:
		return "short"
	case JobMedium:
		return "medium"
	case JobLong:
		return "long"
	default:
		return fmt.Sprintf("JobType(%d)", int(t))
	}
}

// LengthThresholds are the two duration cut-offs separating short, medium and
// long jobs. The testbed experiments use 173 s and 433 s (§6.1).
type LengthThresholds struct {
	ShortMax time.Duration
	LongMin  time.Duration
}

// DefaultLengthThresholds mirrors the testbed configuration.
func DefaultLengthThresholds() LengthThresholds {
	return LengthThresholds{ShortMax: 173 * time.Second, LongMin: 433 * time.Second}
}

// ClassifyLength maps a job's previous execution time to a job type. Jobs
// that have never executed (zero duration) are treated as medium, matching
// the paper's first-guess rule.
func ClassifyLength(lastRun time.Duration, th LengthThresholds) JobType {
	if lastRun <= 0 {
		return JobMedium
	}
	if lastRun < th.ShortMax {
		return JobShort
	}
	if lastRun > th.LongMin {
		return JobLong
	}
	return JobMedium
}

// RankingWeights encode the per-job-type preference over utilization patterns
// (Algorithm 1 line 6). Higher weight means higher ranking.
type RankingWeights map[JobType]map[signalproc.Pattern]float64

// DefaultRankingWeights reproduces the paper's ranking:
//
//	long jobs:   constant > periodic > unpredictable
//	medium jobs: periodic > constant > unpredictable
//	short jobs:  unpredictable > periodic > constant
func DefaultRankingWeights() RankingWeights {
	return RankingWeights{
		JobLong: {
			signalproc.PatternConstant:      3,
			signalproc.PatternPeriodic:      2,
			signalproc.PatternUnpredictable: 1,
		},
		JobMedium: {
			signalproc.PatternPeriodic:      3,
			signalproc.PatternConstant:      2,
			signalproc.PatternUnpredictable: 1,
		},
		JobShort: {
			signalproc.PatternUnpredictable: 3,
			signalproc.PatternPeriodic:      2,
			signalproc.PatternConstant:      1,
		},
	}
}

// ClassUsage is the scheduler's current view of one utilization class: the
// live CPU utilization of its servers (reported through NM heartbeats) and
// the resources already allocated to secondary tenants there.
type ClassUsage struct {
	// CurrentUtilization is the current average primary CPU utilization of
	// the servers in the class, as a fraction of capacity.
	CurrentUtilization float64
	// AllocatedCores is the number of cores currently allocated to secondary
	// containers on the servers of this class.
	AllocatedCores float64
}

// SelectorConfig parameterizes the class selection algorithm.
type SelectorConfig struct {
	// CoresPerServer is the physical core count of each server.
	CoresPerServer int
	// ReserveFraction is the share of each server held back for primary
	// bursts (the testbed reserves 4 of 12 cores, i.e. 1/3).
	ReserveFraction float64
	// Weights are the per-job-type class rankings.
	Weights RankingWeights
	// Thresholds are the job length cut-offs.
	Thresholds LengthThresholds
}

// DefaultSelectorConfig mirrors the testbed configuration.
func DefaultSelectorConfig() SelectorConfig {
	return SelectorConfig{
		CoresPerServer:  12,
		ReserveFraction: 1.0 / 3.0,
		Weights:         DefaultRankingWeights(),
		Thresholds:      DefaultLengthThresholds(),
	}
}

// JobRequest describes a job asking for resources: its type (derived from its
// last run) and the maximum number of cores it will use concurrently (derived
// from a breadth-first traversal of its DAG, §4.1).
type JobRequest struct {
	Type JobType
	// MaxConcurrentCores is the peak concurrent core demand of the job.
	MaxConcurrentCores float64
}

// Selection is the outcome of class selection: the classes whose node labels
// the job manager should request, in selection order. An empty selection
// means no combination of classes currently has enough headroom.
type Selection struct {
	Classes []ClassID
	// Headrooms records, for reporting, the headroom (in cores) of each
	// selected class at selection time.
	Headrooms []float64
}

// Empty reports whether no class was selected.
func (s Selection) Empty() bool { return len(s.Classes) == 0 }

// Selector implements the class selection algorithm (Algorithm 1).
type Selector struct {
	cfg        SelectorConfig
	clustering *Clustering
	rng        *rand.Rand
}

// NewSelector creates a selector over a clustering.
func NewSelector(cfg SelectorConfig, clustering *Clustering, rng *rand.Rand) (*Selector, error) {
	if clustering == nil || len(clustering.Classes) == 0 {
		return nil, fmt.Errorf("core: selector needs a non-empty clustering")
	}
	if cfg.CoresPerServer <= 0 {
		return nil, fmt.Errorf("core: CoresPerServer must be positive, got %d", cfg.CoresPerServer)
	}
	if cfg.ReserveFraction < 0 || cfg.ReserveFraction >= 1 {
		return nil, fmt.Errorf("core: ReserveFraction %v out of [0,1)", cfg.ReserveFraction)
	}
	if cfg.Weights == nil {
		cfg.Weights = DefaultRankingWeights()
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	return &Selector{cfg: cfg, clustering: clustering, rng: rng}, nil
}

// Capacity returns the class's gross spare cores for a job of the given type
// (§4.1), before subtracting cores already allocated to secondary work: the
// utilization considered is the current one for short jobs, max(average,
// current) for medium jobs, and max(peak, current) for long jobs, and the
// primary reserve is held back. This is the admission bound a live
// allocation ledger CASes reservations against — total allocation in a class
// must never exceed it.
func (s *Selector) Capacity(jobType JobType, class *UtilizationClass, usage ClassUsage) float64 {
	var util float64
	switch jobType {
	case JobShort:
		util = usage.CurrentUtilization
	case JobMedium:
		util = maxFloat(class.AvgUtilization, usage.CurrentUtilization)
	default: // JobLong
		util = maxFloat(class.PeakUtilization, usage.CurrentUtilization)
	}
	frac := 1 - util - s.cfg.ReserveFraction
	if frac < 0 {
		frac = 0
	}
	return frac * float64(class.NumServers()) * float64(s.cfg.CoresPerServer)
}

// Headroom returns the class's available cores for a job of the given type:
// the Capacity bound minus the cores already allocated to secondary
// containers, clamped at zero.
func (s *Selector) Headroom(jobType JobType, class *UtilizationClass, usage ClassUsage) float64 {
	cores := s.Capacity(jobType, class, usage) - usage.AllocatedCores
	if cores < 0 {
		cores = 0
	}
	return cores
}

// Select implements Algorithm 1. usage maps every class to its current state;
// classes missing from the map are treated as having zero current utilization
// and zero allocations. It draws on the selector's own RNG and is therefore
// not safe for concurrent use; concurrent callers (the serving layer) use
// SelectWith with per-request RNGs instead.
func (s *Selector) Select(job JobRequest, usage map[ClassID]ClassUsage) Selection {
	return s.SelectWith(s.rng, job, usage)
}

// UsageSource provides the per-class live usage a selection runs against.
// The serving layer implements it as an overlay composing a cached
// utilization view with live atomic allocation counters, so selections read
// ledger-adjusted AllocatedCores without materializing a map per request.
// Implementations must be safe for concurrent readers.
type UsageSource interface {
	UsageOf(ClassID) ClassUsage
}

// mapUsage adapts the plain-map usage view (simulators, experiment
// harnesses) to UsageSource. The named map type keeps the interface
// conversion allocation-free — a map header is pointer-shaped.
type mapUsage map[ClassID]ClassUsage

// UsageOf implements UsageSource; classes missing from the map read as zero.
func (m mapUsage) UsageOf(id ClassID) ClassUsage { return m[id] }

// SelectWith is Select with a caller-supplied RNG. Apart from the RNG the
// selector is read-only, so any number of goroutines may call SelectWith on
// the same selector concurrently as long as each brings its own *rand.Rand
// (and treats the usage map as read-only). This is the hook the snapshot
// serving layer uses to run class selection lock-free against an immutable
// clustering.
func (s *Selector) SelectWith(rng *rand.Rand, job JobRequest, usage map[ClassID]ClassUsage) Selection {
	return s.SelectFrom(rng, job, mapUsage(usage))
}

// SelectFrom is SelectWith over a UsageSource instead of a map — the
// live-ledger serving path. Concurrency contract is the same as SelectWith's.
func (s *Selector) SelectFrom(rng *rand.Rand, job JobRequest, usage UsageSource) Selection {
	type candidate struct {
		id           ClassID
		headroom     float64
		weightedRoom float64
	}
	candidates := make([]candidate, 0, len(s.clustering.Classes))
	for _, cls := range s.clustering.Classes {
		u := usage.UsageOf(cls.ID)
		head := s.Headroom(job.Type, cls, u)
		weight := s.cfg.Weights[job.Type][cls.Pattern]
		candidates = append(candidates, candidate{
			id:           cls.ID,
			headroom:     head,
			weightedRoom: head * weight,
		})
	}

	// Line 8: classes that can host the whole job alone.
	fits := make([]candidate, 0, len(candidates))
	for _, c := range candidates {
		if c.headroom >= job.MaxConcurrentCores && c.weightedRoom > 0 {
			fits = append(fits, c)
		}
	}
	if len(fits) > 0 {
		weights := make([]float64, len(fits))
		for i, c := range fits {
			weights[i] = c.weightedRoom
		}
		idx := stats.WeightedChoice(rng, weights)
		if idx >= 0 {
			return Selection{
				Classes:   []ClassID{fits[idx].id},
				Headrooms: []float64{fits[idx].headroom},
			}
		}
	}

	// Lines 12-14: the job may fit across multiple classes combined.
	totalRoom := 0.0
	for _, c := range candidates {
		totalRoom += c.headroom
	}
	if totalRoom >= job.MaxConcurrentCores {
		weights := make([]float64, len(candidates))
		for i, c := range candidates {
			weights[i] = c.weightedRoom
		}
		var sel Selection
		remaining := job.MaxConcurrentCores
		for remaining > 0 {
			idx := stats.WeightedChoice(rng, weights)
			if idx < 0 {
				// Weighted room exhausted (e.g. remaining headroom only in
				// zero-weight classes); fall back to any class with headroom.
				idx = -1
				for i, c := range candidates {
					if weights[i] == 0 && c.headroom > 0 && !containsClass(sel.Classes, c.id) {
						idx = i
						break
					}
				}
				if idx < 0 {
					break
				}
			}
			c := candidates[idx]
			sel.Classes = append(sel.Classes, c.id)
			sel.Headrooms = append(sel.Headrooms, c.headroom)
			remaining -= c.headroom
			weights[idx] = 0 // without replacement
		}
		if remaining <= 0 {
			return sel
		}
	}

	// Line 16: not enough resources anywhere right now.
	return Selection{}
}

// AllocSource supplies the one per-class quantity that changes between
// snapshot refreshes: the cores currently allocated to secondary work. The
// serving layer implements it directly on the allocation ledger's atomic
// occupancy counters, so the indexed select path reads live headroom without
// composing a full ClassUsage per class. Implementations must be safe for
// concurrent readers.
type AllocSource interface {
	AllocatedCoresOf(ClassID) float64
}

// indexEntry is one class's precomputed select state for one job type: the
// gross capacity bound (fixed for a given utilization view — see Capacity)
// and the pattern ranking weight. Headroom at query time is capacity minus
// the live allocation, clamped at zero.
type indexEntry struct {
	id       ClassID
	capacity float64
	weight   float64
}

// SelectIndex is the headroom index behind SelectIndexed: per job type, the
// classes with positive capacity, stored once in descending-capacity order
// (the phase-1 scan order, enabling early exit) and once in ascending
// class-ID order (the phase-2 spread order). Capacities depend only on the
// utilization view the index was built from, so the index is immutable and
// shared by every query against that view; live allocation enters through
// the AllocSource at query time. Rebuilt whenever the view changes (snapshot
// refresh or ingest progress); reserve/release traffic needs no rebuild —
// those deltas flow through the ledger's occupancy counters.
type SelectIndex struct {
	byCap [NumJobTypes][]indexEntry
	byID  [NumJobTypes][]indexEntry
}

// BuildIndex precomputes the select index for a utilization view. Classes
// whose capacity bound is zero for a job type are dropped from that job
// type's lists: their headroom is pinned at zero, so the naive scan can
// never pick them either alone, in a spread, or through the zero-weight
// fallback — and stats.WeightedChoice ignores non-positive weights, so their
// absence changes neither the outcome nor the RNG stream.
func (s *Selector) BuildIndex(usage map[ClassID]ClassUsage) *SelectIndex {
	idx := &SelectIndex{}
	for t := JobShort; t < NumJobTypes; t++ {
		entries := make([]indexEntry, 0, len(s.clustering.Classes))
		for _, cls := range s.clustering.Classes {
			capacity := s.Capacity(t, cls, usage[cls.ID])
			if capacity <= 0 {
				continue
			}
			entries = append(entries, indexEntry{
				id:       cls.ID,
				capacity: capacity,
				weight:   s.cfg.Weights[t][cls.Pattern],
			})
		}
		byCap := make([]indexEntry, len(entries))
		copy(byCap, entries)
		sort.Slice(byCap, func(i, j int) bool {
			if byCap[i].capacity != byCap[j].capacity {
				return byCap[i].capacity > byCap[j].capacity
			}
			return byCap[i].id < byCap[j].id
		})
		idx.byID[t] = entries // clustering.Classes is ID-sorted
		idx.byCap[t] = byCap
	}
	return idx
}

// SelectIndexed is SelectFrom against a precomputed SelectIndex: picks are
// identical, draw for draw, to a naive scan over the same view (the property
// TestSelectIndexedMatchesNaive pins), but the single-class phase inspects
// only the classes whose capacity bound can possibly host the job — the scan
// runs down the capacity-sorted list and stops at the first class whose
// bound is below the demand, since live allocation only ever shrinks
// headroom below that bound. The multi-class spread phase (which only runs
// when no single class fits) still walks every positive-capacity class, as
// the algorithm's without-replacement weighted draw requires.
//
// job.Type must be a valid JobType; out-of-range types return an empty
// selection (the serving layer validates before calling).
func (s *Selector) SelectIndexed(rng *rand.Rand, job JobRequest, idx *SelectIndex, alloc AllocSource) Selection {
	if job.Type < 0 || job.Type >= NumJobTypes {
		return Selection{}
	}
	type candidate struct {
		id           ClassID
		headroom     float64
		weightedRoom float64
	}

	// Phase 1 (Algorithm 1 line 8): classes that can host the whole job
	// alone, collected from the capacity-descending list with early exit.
	byCap := idx.byCap[job.Type]
	fits := make([]candidate, 0, len(byCap))
	for i := range byCap {
		e := &byCap[i]
		if e.capacity < job.MaxConcurrentCores {
			break // headroom ≤ capacity: nothing further down can fit alone
		}
		head := e.capacity - alloc.AllocatedCoresOf(e.id)
		if head < 0 {
			head = 0
		}
		room := head * e.weight
		if head < job.MaxConcurrentCores || room <= 0 {
			continue
		}
		// Insert in class-ID order: WeightedChoice walks the weights array
		// in order, so draw-for-draw identity with the naive scan needs its
		// (class-ID) ordering, not the index's capacity ordering.
		at := len(fits)
		for at > 0 && fits[at-1].id > e.id {
			at--
		}
		fits = append(fits, candidate{})
		copy(fits[at+1:], fits[at:])
		fits[at] = candidate{id: e.id, headroom: head, weightedRoom: room}
	}
	if len(fits) > 0 {
		weights := make([]float64, len(fits))
		for i, c := range fits {
			weights[i] = c.weightedRoom
		}
		if k := stats.WeightedChoice(rng, weights); k >= 0 {
			return Selection{
				Classes:   []ClassID{fits[k].id},
				Headrooms: []float64{fits[k].headroom},
			}
		}
	}

	// Phase 2 (lines 12-14): the job may fit across multiple classes
	// combined. Same weighted draw without replacement as the naive scan,
	// over the positive-capacity classes in class-ID order.
	byID := idx.byID[job.Type]
	candidates := make([]candidate, 0, len(byID))
	totalRoom := 0.0
	for i := range byID {
		e := &byID[i]
		head := e.capacity - alloc.AllocatedCoresOf(e.id)
		if head < 0 {
			head = 0
		}
		candidates = append(candidates, candidate{id: e.id, headroom: head, weightedRoom: head * e.weight})
		totalRoom += head
	}
	if totalRoom >= job.MaxConcurrentCores {
		weights := make([]float64, len(candidates))
		for i, c := range candidates {
			weights[i] = c.weightedRoom
		}
		var sel Selection
		remaining := job.MaxConcurrentCores
		for remaining > 0 {
			idx := stats.WeightedChoice(rng, weights)
			if idx < 0 {
				idx = -1
				for i, c := range candidates {
					if weights[i] == 0 && c.headroom > 0 && !containsClass(sel.Classes, c.id) {
						idx = i
						break
					}
				}
				if idx < 0 {
					break
				}
			}
			c := candidates[idx]
			sel.Classes = append(sel.Classes, c.id)
			sel.Headrooms = append(sel.Headrooms, c.headroom)
			remaining -= c.headroom
			weights[idx] = 0 // without replacement
		}
		if remaining <= 0 {
			return sel
		}
	}

	return Selection{}
}

func containsClass(ids []ClassID, id ClassID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
