// Package httpjson holds the one copy of the serving tier's JSON response
// convention: every response is pre-serialized and goes out with an explicit
// Content-Length in a single write — never chunked — so pipelined clients
// (cmd/loadgen's raw HTTP/1.1 reader) can parse responses from any tier,
// harvestd or harvestrouter, identically. The shared bearer-token gate lives
// here too, so the ingest and registration surfaces authenticate the same
// way.
package httpjson

import (
	"bytes"
	"crypto/subtle"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync"
)

type errorResponse struct {
	Error string `json:"error"`
}

// scratch pools the encoder and its backing buffer so the hot query
// endpoints serialize without a per-response allocation of either.
type scratch struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var scratches = sync.Pool{New: func() any {
	s := &scratch{}
	s.enc = json.NewEncoder(&s.buf)
	return s
}}

// Write serializes v up front so the response carries an explicit
// Content-Length and goes out in one write.
func Write(w http.ResponseWriter, status int, v any) {
	s := scratches.Get().(*scratch)
	s.buf.Reset()
	if err := s.enc.Encode(v); err != nil {
		scratches.Put(s)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(s.buf.Len()))
	w.WriteHeader(status)
	w.Write(s.buf.Bytes())
	scratches.Put(s)
}

// WriteError writes the uniform {"error": msg} body.
func WriteError(w http.ResponseWriter, status int, msg string) {
	Write(w, status, errorResponse{Error: msg})
}

// BearerAuthorized reports whether the request presents the expected
// "Authorization: Bearer <want>" token. An empty want means the surface is
// open. subtle.ConstantTimeCompare is overkill for a shared cluster token,
// but the comparison is still written to not leak the prefix length.
func BearerAuthorized(r *http.Request, want string) bool {
	if want == "" {
		return true
	}
	got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
	return ok && subtle.ConstantTimeCompare([]byte(got), []byte(want)) == 1
}
