package wire

import "math"

// Typed message codecs: one struct per opcode with an append-style frame
// encoder and a strict decoder. The serving hot path encodes responses
// inline with the Append* primitives (no intermediate structs); these types
// are for everyone else — the load generator, the router's JSON-translation
// fallback, and the round-trip tests — so both dialect ends share one
// definition of each payload layout.

// SelectReq asks for classes to host a job, mirroring the JSON
// selectRequest. Job is one of the Job* codes; HoldMillis is the lease TTL
// (0 means the server default; the JSON API's hold_seconds cap applies).
type SelectReq struct {
	DC             []byte
	Job            uint8
	Flags          uint8 // SelectFlag* bits
	MaxCores       float64
	LastRunSeconds float64
	HoldMillis     uint32
}

// AppendSelectReq appends a complete select request frame.
func AppendSelectReq(dst []byte, id uint64, dc string, m SelectReq) []byte {
	mark := len(dst)
	dst = BeginFrame(dst, OpSelect, id)
	dst = AppendStr8(dst, dc)
	dst = AppendU8(dst, m.Job)
	dst = AppendU8(dst, m.Flags)
	dst = AppendF64(dst, m.MaxCores)
	dst = AppendF64(dst, m.LastRunSeconds)
	dst = AppendU32(dst, m.HoldMillis)
	return EndFrame(dst, mark)
}

// Decode parses a select request payload. DC aliases the payload.
func (m *SelectReq) Decode(payload []byte) error {
	r := NewReader(payload)
	m.DC = r.Str8()
	m.Job = r.U8()
	m.Flags = r.U8()
	m.MaxCores = r.F64()
	m.LastRunSeconds = r.F64()
	m.HoldMillis = r.U32()
	return r.Done()
}

// SelectGrant is one class entry of a select response: the class id, its
// headroom at selection time, and the cores actually reserved (0 on dry-run
// or unsatisfiable selects).
type SelectGrant struct {
	Class    uint32
	Headroom float64
	Granted  float64
}

// SelectResp mirrors the JSON selectResponse. Lease is 0 when nothing was
// reserved; ExpiresIn is seconds until lease expiry.
type SelectResp struct {
	Generation  uint64
	Lease       uint64
	ExpiresIn   float64
	Job         uint8
	Satisfiable bool
	Classes     []SelectGrant
}

// AppendSelectResp appends a complete select response frame.
func AppendSelectResp(dst []byte, id uint64, m *SelectResp) []byte {
	mark := len(dst)
	dst = BeginFrame(dst, OpSelectResp, id)
	dst = AppendU64(dst, m.Generation)
	dst = AppendU64(dst, m.Lease)
	dst = AppendF64(dst, m.ExpiresIn)
	dst = AppendU8(dst, m.Job)
	dst = AppendU8(dst, boolByte(m.Satisfiable))
	dst = AppendU16(dst, uint16(len(m.Classes)))
	for _, g := range m.Classes {
		dst = AppendU32(dst, g.Class)
		dst = AppendF64(dst, g.Headroom)
		dst = AppendF64(dst, g.Granted)
	}
	return EndFrame(dst, mark)
}

// Decode parses a select response payload, reusing m.Classes.
func (m *SelectResp) Decode(payload []byte) error {
	r := NewReader(payload)
	m.Generation = r.U64()
	m.Lease = r.U64()
	m.ExpiresIn = r.F64()
	m.Job = r.U8()
	switch r.U8() {
	case 0:
		m.Satisfiable = false
	case 1:
		m.Satisfiable = true
	default:
		// Strict: a bool byte other than 0/1 is a malformed frame, which
		// also keeps decode→encode a byte-identical fixed point.
		r.bad = true
	}
	n := int(r.U16())
	m.Classes = sized(m.Classes, n, selectGrantSize, &r)
	for i := range m.Classes {
		m.Classes[i] = SelectGrant{Class: r.U32(), Headroom: r.F64(), Granted: r.F64()}
	}
	return r.Done()
}

// ReleaseReq returns a lease's cores, mirroring the JSON releaseRequest.
type ReleaseReq struct {
	DC    []byte
	Lease uint64
}

// AppendReleaseReq appends a complete release request frame.
func AppendReleaseReq(dst []byte, id uint64, dc string, lease uint64) []byte {
	mark := len(dst)
	dst = BeginFrame(dst, OpRelease, id)
	dst = AppendStr8(dst, dc)
	dst = AppendU64(dst, lease)
	return EndFrame(dst, mark)
}

// Decode parses a release request payload. DC aliases the payload.
func (m *ReleaseReq) Decode(payload []byte) error {
	r := NewReader(payload)
	m.DC = r.Str8()
	m.Lease = r.U64()
	return r.Done()
}

// ReleaseGrant is one class's share of a released lease, in exact
// millicores (the ledger's unit — integral, so conservation checks need no
// float tolerance).
type ReleaseGrant struct {
	Class  uint32
	Millis int64
}

// ReleaseResp mirrors the JSON releaseResponse with cores in millicores.
type ReleaseResp struct {
	Lease       uint64
	TotalMillis int64
	Grants      []ReleaseGrant
}

// AppendReleaseResp appends a complete release response frame.
func AppendReleaseResp(dst []byte, id uint64, m *ReleaseResp) []byte {
	mark := len(dst)
	dst = BeginFrame(dst, OpReleaseResp, id)
	dst = AppendU64(dst, m.Lease)
	dst = AppendI64(dst, m.TotalMillis)
	dst = AppendU16(dst, uint16(len(m.Grants)))
	for _, g := range m.Grants {
		dst = AppendU32(dst, g.Class)
		dst = AppendI64(dst, g.Millis)
	}
	return EndFrame(dst, mark)
}

// Decode parses a release response payload, reusing m.Grants.
func (m *ReleaseResp) Decode(payload []byte) error {
	r := NewReader(payload)
	m.Lease = r.U64()
	m.TotalMillis = r.I64()
	n := int(r.U16())
	m.Grants = sized(m.Grants, n, releaseGrantSize, &r)
	for i := range m.Grants {
		m.Grants[i] = ReleaseGrant{Class: r.U32(), Millis: r.I64()}
	}
	return r.Done()
}

// RenewReq extends a lease's TTL without releasing it, mirroring the JSON
// renewRequest. HoldMillis is the new TTL (0 means the server default; the
// JSON API's hold_seconds cap applies).
type RenewReq struct {
	DC         []byte
	Lease      uint64
	HoldMillis uint32
}

// AppendRenewReq appends a complete renew request frame.
func AppendRenewReq(dst []byte, id uint64, dc string, m RenewReq) []byte {
	mark := len(dst)
	dst = BeginFrame(dst, OpRenew, id)
	dst = AppendStr8(dst, dc)
	dst = AppendU64(dst, m.Lease)
	dst = AppendU32(dst, m.HoldMillis)
	return EndFrame(dst, mark)
}

// Decode parses a renew request payload. DC aliases the payload.
func (m *RenewReq) Decode(payload []byte) error {
	r := NewReader(payload)
	m.DC = r.Str8()
	m.Lease = r.U64()
	m.HoldMillis = r.U32()
	return r.Done()
}

// RenewResp mirrors the JSON renewResponse. ExpiresIn is seconds until the
// renewed expiry (0 when the server holds leases forever).
type RenewResp struct {
	Lease       uint64
	TotalMillis int64
	ExpiresIn   float64
}

// AppendRenewResp appends a complete renew response frame.
func AppendRenewResp(dst []byte, id uint64, m *RenewResp) []byte {
	mark := len(dst)
	dst = BeginFrame(dst, OpRenewResp, id)
	dst = AppendU64(dst, m.Lease)
	dst = AppendI64(dst, m.TotalMillis)
	dst = AppendF64(dst, m.ExpiresIn)
	return EndFrame(dst, mark)
}

// Decode parses a renew response payload.
func (m *RenewResp) Decode(payload []byte) error {
	r := NewReader(payload)
	m.Lease = r.U64()
	m.TotalMillis = r.I64()
	m.ExpiresIn = r.F64()
	return r.Done()
}

// PlaceReq asks for replica targets, mirroring the JSON placeRequest.
// Writer is the creating server (-1 for an external writer).
type PlaceReq struct {
	DC          []byte
	Replication uint8
	Flags       uint8 // PlaceFlag* bits
	Writer      int64
}

// AppendPlaceReq appends a complete place request frame.
func AppendPlaceReq(dst []byte, id uint64, dc string, m PlaceReq) []byte {
	mark := len(dst)
	dst = BeginFrame(dst, OpPlace, id)
	dst = AppendStr8(dst, dc)
	dst = AppendU8(dst, m.Replication)
	dst = AppendU8(dst, m.Flags)
	dst = AppendI64(dst, m.Writer)
	return EndFrame(dst, mark)
}

// Decode parses a place request payload. DC aliases the payload.
func (m *PlaceReq) Decode(payload []byte) error {
	r := NewReader(payload)
	m.DC = r.Str8()
	m.Replication = r.U8()
	m.Flags = r.U8()
	m.Writer = r.I64()
	return r.Done()
}

// PlaceResp mirrors the JSON placeResponse.
type PlaceResp struct {
	Generation uint64
	Replicas   []int64
}

// AppendPlaceResp appends a complete place response frame.
func AppendPlaceResp(dst []byte, id uint64, m *PlaceResp) []byte {
	mark := len(dst)
	dst = BeginFrame(dst, OpPlaceResp, id)
	dst = AppendU64(dst, m.Generation)
	dst = AppendU16(dst, uint16(len(m.Replicas)))
	for _, s := range m.Replicas {
		dst = AppendI64(dst, s)
	}
	return EndFrame(dst, mark)
}

// Decode parses a place response payload, reusing m.Replicas.
func (m *PlaceResp) Decode(payload []byte) error {
	r := NewReader(payload)
	m.Generation = r.U64()
	n := int(r.U16())
	m.Replicas = sized(m.Replicas, n, 8, &r)
	for i := range m.Replicas {
		m.Replicas[i] = r.I64()
	}
	return r.Done()
}

// ClassesReq asks for a datacenter's utilization classes.
type ClassesReq struct {
	DC []byte
}

// AppendClassesReq appends a complete classes request frame.
func AppendClassesReq(dst []byte, id uint64, dc string) []byte {
	mark := len(dst)
	dst = BeginFrame(dst, OpClasses, id)
	dst = AppendStr8(dst, dc)
	return EndFrame(dst, mark)
}

// Decode parses a classes request payload. DC aliases the payload.
func (m *ClassesReq) Decode(payload []byte) error {
	r := NewReader(payload)
	m.DC = r.Str8()
	return r.Done()
}

// ClassRec is the binary form of the JSON classInfo: one utilization class
// with its live usage and ledger occupancy. Pattern is the
// signalproc.Pattern ordinal; AllocMillis is the ledger occupancy in exact
// millicores.
type ClassRec struct {
	ID            uint32
	Pattern       uint8
	NumTenants    uint32
	NumServers    uint32
	Avg           float64
	Peak          float64
	Current       float64
	AllocMillis   int64
	ExampleServer int64
}

// Fixed encoded sizes of the repeated payload elements, used to bound
// decode-slice allocation against lying count fields.
const (
	classRecSize     = 4 + 1 + 4 + 4 + 8 + 8 + 8 + 8 + 8
	selectGrantSize  = 4 + 8 + 8
	releaseGrantSize = 4 + 8
)

// AppendClassRec appends one encoded class record (payload-level, no frame).
func AppendClassRec(dst []byte, c *ClassRec) []byte {
	dst = AppendU32(dst, c.ID)
	dst = AppendU8(dst, c.Pattern)
	dst = AppendU32(dst, c.NumTenants)
	dst = AppendU32(dst, c.NumServers)
	dst = AppendF64(dst, c.Avg)
	dst = AppendF64(dst, c.Peak)
	dst = AppendF64(dst, c.Current)
	dst = AppendI64(dst, c.AllocMillis)
	return AppendI64(dst, c.ExampleServer)
}

func decodeClassRec(r *Reader, c *ClassRec) {
	c.ID = r.U32()
	c.Pattern = r.U8()
	c.NumTenants = r.U32()
	c.NumServers = r.U32()
	c.Avg = r.F64()
	c.Peak = r.F64()
	c.Current = r.F64()
	c.AllocMillis = r.I64()
	c.ExampleServer = r.I64()
}

// ClassesResp mirrors the JSON classesResponse.
type ClassesResp struct {
	Generation  uint64
	AsOfSeconds float64
	Classes     []ClassRec
}

// AppendClassesResp appends a complete classes response frame.
func AppendClassesResp(dst []byte, id uint64, m *ClassesResp) []byte {
	mark := len(dst)
	dst = BeginFrame(dst, OpClassesResp, id)
	dst = AppendU64(dst, m.Generation)
	dst = AppendF64(dst, m.AsOfSeconds)
	dst = AppendU16(dst, uint16(len(m.Classes)))
	for i := range m.Classes {
		dst = AppendClassRec(dst, &m.Classes[i])
	}
	return EndFrame(dst, mark)
}

// Decode parses a classes response payload, reusing m.Classes.
func (m *ClassesResp) Decode(payload []byte) error {
	r := NewReader(payload)
	m.Generation = r.U64()
	m.AsOfSeconds = r.F64()
	n := int(r.U16())
	m.Classes = sized(m.Classes, n, classRecSize, &r)
	for i := range m.Classes {
		decodeClassRec(&r, &m.Classes[i])
	}
	return r.Done()
}

// ServerClassReq resolves a server to its utilization class.
type ServerClassReq struct {
	DC     []byte
	Server int64
}

// AppendServerClassReq appends a complete server-class request frame.
func AppendServerClassReq(dst []byte, id uint64, dc string, server int64) []byte {
	mark := len(dst)
	dst = BeginFrame(dst, OpServerClass, id)
	dst = AppendStr8(dst, dc)
	dst = AppendI64(dst, server)
	return EndFrame(dst, mark)
}

// Decode parses a server-class request payload. DC aliases the payload.
func (m *ServerClassReq) Decode(payload []byte) error {
	r := NewReader(payload)
	m.DC = r.Str8()
	m.Server = r.I64()
	return r.Done()
}

// ServerClassResp mirrors the JSON serverClassResponse.
type ServerClassResp struct {
	Generation uint64
	Server     int64
	Class      ClassRec
}

// AppendServerClassResp appends a complete server-class response frame.
func AppendServerClassResp(dst []byte, id uint64, m *ServerClassResp) []byte {
	mark := len(dst)
	dst = BeginFrame(dst, OpServerClassResp, id)
	dst = AppendU64(dst, m.Generation)
	dst = AppendI64(dst, m.Server)
	dst = AppendClassRec(dst, &m.Class)
	return EndFrame(dst, mark)
}

// Decode parses a server-class response payload.
func (m *ServerClassResp) Decode(payload []byte) error {
	r := NewReader(payload)
	m.Generation = r.U64()
	m.Server = r.I64()
	decodeClassRec(&r, &m.Class)
	return r.Done()
}

// PlaceBlockReq mirrors the JSON blockRequest: place AND record a block's
// replicas in the block ledger (OpPlace computes a placement without
// recording it). Flags carries PlaceFlag* bits.
type PlaceBlockReq struct {
	DC          []byte
	Replication uint8
	Flags       uint8
	Writer      int64
}

// AppendPlaceBlockReq appends a complete place-block request frame.
func AppendPlaceBlockReq(dst []byte, id uint64, dc string, m PlaceBlockReq) []byte {
	mark := len(dst)
	dst = BeginFrame(dst, OpPlaceBlock, id)
	dst = AppendStr8(dst, dc)
	dst = AppendU8(dst, m.Replication)
	dst = AppendU8(dst, m.Flags)
	dst = AppendI64(dst, m.Writer)
	return EndFrame(dst, mark)
}

// Decode parses a place-block request payload. DC aliases the payload.
func (m *PlaceBlockReq) Decode(payload []byte) error {
	r := NewReader(payload)
	m.DC = r.Str8()
	m.Replication = r.U8()
	m.Flags = r.U8()
	m.Writer = r.I64()
	return r.Done()
}

// PlaceBlockResp mirrors the JSON blockResponse: the ledger-recorded block id
// plus the replica servers placed for it.
type PlaceBlockResp struct {
	Generation uint64
	Block      uint64
	Replicas   []int64
}

// AppendPlaceBlockResp appends a complete place-block response frame.
func AppendPlaceBlockResp(dst []byte, id uint64, m *PlaceBlockResp) []byte {
	mark := len(dst)
	dst = BeginFrame(dst, OpPlaceBlockResp, id)
	dst = AppendU64(dst, m.Generation)
	dst = AppendU64(dst, m.Block)
	dst = AppendU16(dst, uint16(len(m.Replicas)))
	for _, s := range m.Replicas {
		dst = AppendI64(dst, s)
	}
	return EndFrame(dst, mark)
}

// Decode parses a place-block response payload, reusing m.Replicas.
func (m *PlaceBlockResp) Decode(payload []byte) error {
	r := NewReader(payload)
	m.Generation = r.U64()
	m.Block = r.U64()
	n := int(r.U16())
	m.Replicas = sized(m.Replicas, n, 8, &r)
	for i := range m.Replicas {
		m.Replicas[i] = r.I64()
	}
	return r.Done()
}

// ReimageReq mirrors the JSON reimageRequest: the named server was reimaged;
// every block replica it held is lost and queued for re-replication.
type ReimageReq struct {
	DC     []byte
	Server int64
}

// AppendReimageReq appends a complete reimage request frame.
func AppendReimageReq(dst []byte, id uint64, dc string, server int64) []byte {
	mark := len(dst)
	dst = BeginFrame(dst, OpReimage, id)
	dst = AppendStr8(dst, dc)
	dst = AppendI64(dst, server)
	return EndFrame(dst, mark)
}

// Decode parses a reimage request payload. DC aliases the payload.
func (m *ReimageReq) Decode(payload []byte) error {
	r := NewReader(payload)
	m.DC = r.Str8()
	m.Server = r.I64()
	return r.Done()
}

// ReimageResp mirrors the JSON reimageResponse: how many replicas the event
// lost and how many block-ledger slots are pending repair afterwards.
type ReimageResp struct {
	Server  int64
	Lost    uint32
	Pending uint32
}

// AppendReimageResp appends a complete reimage response frame.
func AppendReimageResp(dst []byte, id uint64, m *ReimageResp) []byte {
	mark := len(dst)
	dst = BeginFrame(dst, OpReimageResp, id)
	dst = AppendI64(dst, m.Server)
	dst = AppendU32(dst, m.Lost)
	dst = AppendU32(dst, m.Pending)
	return EndFrame(dst, mark)
}

// Decode parses a reimage response payload.
func (m *ReimageResp) Decode(payload []byte) error {
	r := NewReader(payload)
	m.Server = r.I64()
	m.Lost = r.U32()
	m.Pending = r.U32()
	return r.Done()
}

// ErrorResp is the payload of an OpError frame: a status code (the HTTP
// status the JSON API would have returned for the same failure) and a
// human-readable message.
type ErrorResp struct {
	Code    uint16
	Message []byte
}

// AppendErrorResp appends a complete error response frame. Messages longer
// than the u16 length prefix allows are truncated — an error message is
// diagnostics, not data.
func AppendErrorResp(dst []byte, id uint64, code uint16, msg string) []byte {
	if len(msg) > math.MaxUint16 {
		msg = msg[:math.MaxUint16]
	}
	mark := len(dst)
	dst = BeginFrame(dst, OpError, id)
	dst = AppendU16(dst, code)
	dst = AppendU16(dst, uint16(len(msg)))
	dst = append(dst, msg...)
	return EndFrame(dst, mark)
}

// Decode parses an error response payload. Message aliases the payload.
func (m *ErrorResp) Decode(payload []byte) error {
	r := NewReader(payload)
	m.Code = r.U16()
	n := int(r.U16())
	m.Message = r.Bytes(n)
	return r.Done()
}

// sized resizes a reused decode slice to n elements of elemSize encoded
// bytes each, but never to more elements than the remaining payload could
// actually hold — a lying count field cannot force a huge allocation. When
// clamped, the strict Done check fails the decode anyway.
func sized[T any](s []T, n, elemSize int, r *Reader) []T {
	if most := r.Remaining() / elemSize; n > most {
		// The count lies about the payload: poison the reader so the decode
		// fails its Done check even if the truncated element loop happens to
		// land exactly on the payload end.
		n = most
		r.bad = true
	}
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}
