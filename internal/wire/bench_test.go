package wire

import "testing"

// The encode/decode paths are the per-frame cost the binary dialect pays
// where JSON pays encoding/json — they must stay allocation-free against
// reused buffers (appending into a capacity-retaining slice, decoding into
// a struct whose slices are reused via sized()).

var benchSelectResp = SelectResp{
	Generation:  42,
	Lease:       0xfeedface,
	ExpiresIn:   120,
	Job:         JobLong,
	Satisfiable: true,
	Classes: []SelectGrant{
		{Class: 0, Headroom: 512.5, Granted: 64},
		{Class: 1, Headroom: 120.25, Granted: 0},
		{Class: 2, Headroom: 33, Granted: 0},
	},
}

func BenchmarkAppendSelectReq(b *testing.B) {
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendSelectReq(buf[:0], uint64(i), "DC-9",
			SelectReq{Job: JobLong, MaxCores: 64, HoldMillis: 120000})
	}
}

func BenchmarkAppendSelectResp(b *testing.B) {
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendSelectResp(buf[:0], uint64(i), &benchSelectResp)
	}
}

func BenchmarkDecodeSelectResp(b *testing.B) {
	frame := AppendSelectResp(nil, 1, &benchSelectResp)
	payload := frame[HeaderSize:]
	var out SelectResp
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := out.Decode(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeReleaseResp(b *testing.B) {
	frame := AppendReleaseResp(nil, 1, &ReleaseResp{
		Lease: 7, TotalMillis: 64000,
		Grants: []ReleaseGrant{{Class: 0, Millis: 64000}},
	})
	payload := frame[HeaderSize:]
	var out ReleaseResp
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := out.Decode(payload); err != nil {
			b.Fatal(err)
		}
	}
}
