package wire

import (
	"reflect"
	"testing"
)

func parsePayload(t *testing.T, frame []byte, wantOp Op) []byte {
	t.Helper()
	h, err := ParseHeader(frame[:HeaderSize])
	if err != nil {
		t.Fatalf("ParseHeader: %v", err)
	}
	if h.Op != wantOp {
		t.Fatalf("op = %v, want %v", h.Op, wantOp)
	}
	if int(h.Len) != len(frame)-HeaderSize {
		t.Fatalf("length field %d, frame payload %d", h.Len, len(frame)-HeaderSize)
	}
	return frame[HeaderSize:]
}

func TestReplHelloRoundTrip(t *testing.T) {
	in := ReplHello{
		FollowerID: "follower-2",
		DCs:        []ReplDCGen{{DC: "DC-9", Generation: 17}, {DC: "DC-3", Generation: 1}},
	}
	frame := AppendReplHello(nil, 42, &in)
	var out ReplHello
	if err := out.Decode(parsePayload(t, frame, OpReplHello)); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", in, out)
	}

	resp := ReplHelloResp{PrimaryID: "primary-1"}
	frame = AppendReplHelloResp(nil, 42, &resp)
	var respOut ReplHelloResp
	if err := respOut.Decode(parsePayload(t, frame, OpReplHelloResp)); err != nil {
		t.Fatalf("Decode resp: %v", err)
	}
	if respOut != resp {
		t.Fatalf("resp round trip mismatch: %+v vs %+v", resp, respOut)
	}
}

func replSnapshotFixture() ReplSnapshot {
	return ReplSnapshot{
		DC:              "DC-9",
		Generation:      8,
		PrevGeneration:  7,
		SentUnixNano:    1_700_000_000_000_000_123,
		AsOfSeconds:     3600.5,
		BuiltAtUnixNano: 1_700_000_000_000_000_000,
		Classes: []ReplClass{
			{
				ID: 0, Pattern: 1, Avg: 0.31, Peak: 0.83, Current: 0.44,
				Centroid: []float64{0.1, 0.2, 0.3},
				Tenants:  []int64{5, 9},
				Servers:  []int64{100, 101, 102},
			},
			{
				ID: 1, Pattern: 0, Avg: 0.6, Peak: 0.9, Current: 0.61,
				Centroid: []float64{0.9},
				Ref:      true, PrevID: 2,
			},
		},
		Ledger: ReplLedger{
			Generation:     8,
			ReservedMillis: 5000, ReleasedMillis: 1500, ExpiredMillis: 500,
			Reserves: 4, Releases: 1, Renews: 2, Expiries: 1, Conflicts: 3,
			Leases: []ReplLease{
				{
					ID: 0x1234, ExpiresUnixNano: 1_700_000_060_000_000_000,
					JobID: "job-a", Owner: "alice",
					Grants: []ReplGrant{{Class: 0, Millis: 2000}, {Class: 1, Millis: 1000}},
				},
			},
		},
	}
}

func TestReplSnapshotRoundTrip(t *testing.T) {
	in := replSnapshotFixture()
	frame := AppendReplSnapshot(nil, OpReplDelta, 7, &in)
	var out ReplSnapshot
	if err := out.Decode(parsePayload(t, frame, OpReplDelta)); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", in, out)
	}
}

func TestReplBeatRoundTrip(t *testing.T) {
	in := ReplBeat{
		DC:           "DC-9",
		Generation:   8,
		SentUnixNano: 55,
		AsOfSeconds:  120,
		Usage:        []ReplClassUsage{{ID: 0, Current: 0.5}, {ID: 1, Current: 0.7}},
		Ledger: ReplLedger{
			Generation: 8, ReservedMillis: 100, ReleasedMillis: 100,
		},
	}
	frame := AppendReplBeat(nil, 9, &in)
	var out ReplBeat
	if err := out.Decode(parsePayload(t, frame, OpReplBeat)); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", in, out)
	}
}

// TestReplDecodeTruncated pins that truncating a replication frame at any
// byte yields ErrShortPayload, never a panic or a silent partial decode.
func TestReplDecodeTruncated(t *testing.T) {
	in := replSnapshotFixture()
	payload := AppendReplSnapshot(nil, OpReplSnap, 1, &in)[HeaderSize:]
	for n := 0; n < len(payload); n++ {
		var out ReplSnapshot
		if err := out.Decode(payload[:n]); err == nil {
			t.Fatalf("truncation at %d/%d bytes decoded cleanly", n, len(payload))
		}
	}
}

// TestReplPayloadCap pins that replication opcodes get the large payload cap
// while everything else keeps MaxPayload — and that a hostile length field
// on a non-replication opcode still fails fast.
func TestReplPayloadCap(t *testing.T) {
	frame := BeginFrame(nil, OpReplSnap, 1)
	// Forge a header claiming a payload between the two caps.
	frame[4] = 0
	frame[5] = 0
	frame[6] = 0x20 // 2 MiB: over MaxPayload, under MaxReplPayload
	if _, err := ParseHeader(frame); err != nil {
		t.Fatalf("repl frame under MaxReplPayload rejected: %v", err)
	}
	frame[2] = byte(OpSelect)
	if _, err := ParseHeader(frame); err == nil {
		t.Fatal("select frame over MaxPayload accepted")
	}
}

func TestOpIsRepl(t *testing.T) {
	for _, op := range []Op{OpReplHello, OpReplHelloResp, OpReplSnap, OpReplDelta, OpReplBeat} {
		if !op.IsRepl() {
			t.Errorf("%v: IsRepl() = false", op)
		}
		if op.IsRequest() {
			t.Errorf("%v: IsRequest() = true — repl frames must not relay through the public ports", op)
		}
	}
	for _, op := range []Op{OpSelect, OpRelease, OpClasses, OpError, OpSelectResp} {
		if op.IsRepl() {
			t.Errorf("%v: IsRepl() = true", op)
		}
	}
}

func TestPeekSelectFlags(t *testing.T) {
	frame := AppendSelectReq(nil, 1, "DC-9", SelectReq{Job: JobMedium, Flags: SelectFlagDryRun, MaxCores: 8})
	flags, ok := PeekSelectFlags(frame[HeaderSize:])
	if !ok || flags&SelectFlagDryRun == 0 {
		t.Fatalf("PeekSelectFlags = %#x, %v; want dry-run bit set", flags, ok)
	}
	frame = AppendSelectReq(nil, 1, "DC-9", SelectReq{Job: JobShort, MaxCores: 2})
	flags, ok = PeekSelectFlags(frame[HeaderSize:])
	if !ok || flags&SelectFlagDryRun != 0 {
		t.Fatalf("PeekSelectFlags = %#x, %v; want dry-run bit clear", flags, ok)
	}
	if _, ok := PeekSelectFlags([]byte{5, 'D'}); ok {
		t.Fatal("truncated payload peeked successfully")
	}
}
