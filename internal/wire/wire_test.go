package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"
)

// readOne frames-then-reads a single buffer, the common test path.
func readOne(t *testing.T, frame []byte) (Header, []byte) {
	t.Helper()
	var scratch []byte
	h, payload, err := ReadFrame(bytes.NewReader(frame), &scratch)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	return h, payload
}

func TestHeaderRoundTrip(t *testing.T) {
	frame := AppendFrame(nil, OpSelect, 0xdeadbeefcafe, []byte("payload"))
	if len(frame) != HeaderSize+7 {
		t.Fatalf("frame length %d, want %d", len(frame), HeaderSize+7)
	}
	h, payload := readOne(t, frame)
	if h.Op != OpSelect || h.ID != 0xdeadbeefcafe || h.Len != 7 {
		t.Fatalf("header %+v", h)
	}
	if string(payload) != "payload" {
		t.Fatalf("payload %q", payload)
	}
}

func TestReadFrameRejectsGarbage(t *testing.T) {
	var scratch []byte
	cases := map[string][]byte{
		"json accident": []byte("POST /v1/DC-9/select HTTP/1.1\r\n"),
		"bad magic":     {0x00, Version, byte(OpSelect), 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		"bad version":   {Magic, 99, byte(OpSelect), 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		// Length field claims 2 MiB — past MaxPayload.
		"oversized": {Magic, Version, byte(OpSelect), 0, 0, 0, 0x20, 0, 0, 0, 0, 0, 0, 0, 0, 0},
	}
	for name, b := range cases {
		_, _, err := ReadFrame(bytes.NewReader(b), &scratch)
		if !errors.Is(err, ErrBadFrame) && !errors.Is(err, ErrBadVersion) {
			t.Errorf("%s: err = %v, want framing error", name, err)
		}
	}
	// A truncated but well-formed header: payload shorter than Len.
	frame := AppendFrame(nil, OpSelect, 1, []byte("abcdef"))
	_, _, err := ReadFrame(bytes.NewReader(frame[:len(frame)-2]), &scratch)
	if !errors.Is(err, ErrBadFrame) {
		t.Errorf("truncated payload: err = %v, want ErrBadFrame", err)
	}
	// Clean EOF before any byte is io.EOF (idle connection closed).
	_, _, err = ReadFrame(bytes.NewReader(nil), &scratch)
	if err != io.EOF {
		t.Errorf("empty stream: err = %v, want io.EOF", err)
	}
	// EOF mid-header is a framing error, not a clean close.
	_, _, err = ReadFrame(bytes.NewReader(frame[:4]), &scratch)
	if !errors.Is(err, ErrBadFrame) {
		t.Errorf("mid-header EOF: err = %v, want ErrBadFrame", err)
	}
}

func TestReaderStickyError(t *testing.T) {
	r := NewReader([]byte{1, 2})
	if got := r.U16(); got != 0x0201 {
		t.Fatalf("U16 = %#x", got)
	}
	if r.U64() != 0 || r.Err() == nil {
		t.Fatal("over-read did not stick")
	}
	if r.U8() != 0 {
		t.Fatal("reads after error must return zero")
	}
	if r.Done() == nil {
		t.Fatal("Done must fail after over-read")
	}
	// Trailing bytes fail Done but not Err.
	r = NewReader([]byte{1, 2, 3})
	_ = r.U16()
	if r.Err() != nil {
		t.Fatal("no over-read happened")
	}
	if r.Done() == nil {
		t.Fatal("Done must fail on trailing bytes")
	}
}

func TestMessageRoundTrips(t *testing.T) {
	sel := SelectReq{Job: JobFromLastRun, Flags: SelectFlagDryRun, MaxCores: 3.5, LastRunSeconds: 42.25, HoldMillis: 9000}
	h, p := readOne(t, AppendSelectReq(nil, 7, "DC-9", sel))
	var selOut SelectReq
	if err := selOut.Decode(p); err != nil {
		t.Fatalf("SelectReq.Decode: %v", err)
	}
	sel.DC = []byte("DC-9")
	if h.Op != OpSelect || h.ID != 7 || !reflect.DeepEqual(sel, selOut) {
		t.Fatalf("select round trip: %+v vs %+v", sel, selOut)
	}

	sresp := SelectResp{
		Generation: 3, Lease: 0x1122334455667788, ExpiresIn: 59.5, Job: JobLong, Satisfiable: true,
		Classes: []SelectGrant{{Class: 4, Headroom: 12.5, Granted: 3.25}, {Class: 9, Headroom: 0.5, Granted: 0}},
	}
	_, p = readOne(t, AppendSelectResp(nil, 8, &sresp))
	var srespOut SelectResp
	if err := srespOut.Decode(p); err != nil {
		t.Fatalf("SelectResp.Decode: %v", err)
	}
	if !reflect.DeepEqual(sresp, srespOut) {
		t.Fatalf("select resp round trip: %+v vs %+v", sresp, srespOut)
	}

	_, p = readOne(t, AppendReleaseReq(nil, 9, "DC-10", 555))
	var rel ReleaseReq
	if err := rel.Decode(p); err != nil || string(rel.DC) != "DC-10" || rel.Lease != 555 {
		t.Fatalf("release req round trip: %+v err %v", rel, err)
	}

	rresp := ReleaseResp{Lease: 555, TotalMillis: 4500, Grants: []ReleaseGrant{{Class: 1, Millis: 4000}, {Class: 2, Millis: 500}}}
	_, p = readOne(t, AppendReleaseResp(nil, 10, &rresp))
	var rrespOut ReleaseResp
	if err := rrespOut.Decode(p); err != nil || !reflect.DeepEqual(rresp, rrespOut) {
		t.Fatalf("release resp round trip: %+v err %v", rrespOut, err)
	}

	preq := PlaceReq{Replication: 3, Flags: PlaceFlagRelaxed, Writer: -1}
	_, p = readOne(t, AppendPlaceReq(nil, 11, "DC-9", preq))
	var preqOut PlaceReq
	if err := preqOut.Decode(p); err != nil {
		t.Fatalf("PlaceReq.Decode: %v", err)
	}
	preq.DC = []byte("DC-9")
	if !reflect.DeepEqual(preq, preqOut) {
		t.Fatalf("place req round trip: %+v vs %+v", preq, preqOut)
	}

	presp := PlaceResp{Generation: 12, Replicas: []int64{5, -1, 900}}
	_, p = readOne(t, AppendPlaceResp(nil, 12, &presp))
	var prespOut PlaceResp
	if err := prespOut.Decode(p); err != nil || !reflect.DeepEqual(presp, prespOut) {
		t.Fatalf("place resp round trip: %+v err %v", prespOut, err)
	}

	cresp := ClassesResp{Generation: 2, AsOfSeconds: 1234.5, Classes: []ClassRec{
		{ID: 0, Pattern: 1, NumTenants: 30, NumServers: 120, Avg: 0.4, Peak: 0.9, Current: 0.5, AllocMillis: 2500, ExampleServer: 17},
		{ID: 1, Pattern: 0, ExampleServer: -1},
	}}
	_, p = readOne(t, AppendClassesResp(nil, 13, &cresp))
	var crespOut ClassesResp
	if err := crespOut.Decode(p); err != nil || !reflect.DeepEqual(cresp, crespOut) {
		t.Fatalf("classes resp round trip: %+v err %v", crespOut, err)
	}

	scresp := ServerClassResp{Generation: 2, Server: 17, Class: cresp.Classes[0]}
	_, p = readOne(t, AppendServerClassResp(nil, 14, &scresp))
	var screspOut ServerClassResp
	if err := screspOut.Decode(p); err != nil || !reflect.DeepEqual(scresp, screspOut) {
		t.Fatalf("server class resp round trip: %+v err %v", screspOut, err)
	}

	rnreq := RenewReq{Lease: 777, HoldMillis: 30000}
	h, p = readOne(t, AppendRenewReq(nil, 16, "DC-3", rnreq))
	var rnreqOut RenewReq
	if err := rnreqOut.Decode(p); err != nil {
		t.Fatalf("RenewReq.Decode: %v", err)
	}
	rnreq.DC = []byte("DC-3")
	if h.Op != OpRenew || h.ID != 16 || !reflect.DeepEqual(rnreq, rnreqOut) {
		t.Fatalf("renew req round trip: %+v vs %+v", rnreq, rnreqOut)
	}

	rnresp := RenewResp{Lease: 777, TotalMillis: 2500, ExpiresIn: 29.75}
	_, p = readOne(t, AppendRenewResp(nil, 17, &rnresp))
	var rnrespOut RenewResp
	if err := rnrespOut.Decode(p); err != nil || !reflect.DeepEqual(rnresp, rnrespOut) {
		t.Fatalf("renew resp round trip: %+v err %v", rnrespOut, err)
	}

	_, p = readOne(t, AppendErrorResp(nil, 15, 404, "unknown datacenter"))
	var eresp ErrorResp
	if err := eresp.Decode(p); err != nil || eresp.Code != 404 || string(eresp.Message) != "unknown datacenter" {
		t.Fatalf("error resp round trip: %+v err %v", eresp, err)
	}
}

func TestLyingCountRejected(t *testing.T) {
	// A select response whose count field claims 65535 grants over an empty
	// payload tail must fail decode without a giant allocation or panic.
	frame := AppendSelectResp(nil, 1, &SelectResp{Satisfiable: true})
	// Patch the count field (last two payload bytes).
	frame[len(frame)-2] = 0xff
	frame[len(frame)-1] = 0xff
	_, p := readOne(t, frame)
	var out SelectResp
	if err := out.Decode(p); err == nil {
		t.Fatal("decode accepted a lying count field")
	}
}

func TestPeekDC(t *testing.T) {
	frame := AppendClassesReq(nil, 1, "DC-9")
	_, p := readOne(t, frame)
	dc, ok := PeekDC(p)
	if !ok || string(dc) != "DC-9" {
		t.Fatalf("PeekDC = %q, %v", dc, ok)
	}
	if _, ok := PeekDC(nil); ok {
		t.Fatal("PeekDC accepted empty payload")
	}
	if _, ok := PeekDC([]byte{10, 'x'}); ok {
		t.Fatal("PeekDC accepted truncated name")
	}
}

func TestEndFrameNesting(t *testing.T) {
	// Multiple frames appended to one buffer (the pipelined response path)
	// must each get the right back-patched length.
	var buf []byte
	buf = AppendReleaseReq(buf, 1, "DC-1", 10)
	buf = AppendClassesReq(buf, 2, "DC-2")
	r := bytes.NewReader(buf)
	var scratch []byte
	h1, _, err := ReadFrame(r, &scratch)
	if err != nil || h1.ID != 1 || h1.Op != OpRelease {
		t.Fatalf("frame 1: %+v err %v", h1, err)
	}
	h2, p2, err := ReadFrame(r, &scratch)
	if err != nil || h2.ID != 2 || h2.Op != OpClasses {
		t.Fatalf("frame 2: %+v err %v", h2, err)
	}
	if dc, _ := PeekDC(p2); string(dc) != "DC-2" {
		t.Fatalf("frame 2 dc %q", dc)
	}
}

// FuzzWireFrameRoundTrip feeds arbitrary bytes through the frame reader and
// every message decoder: nothing may panic or over-read, a frame that reads
// back must round-trip byte-identically, and ReadFrame must consume exactly
// the frame it reports.
func FuzzWireFrameRoundTrip(f *testing.F) {
	f.Add(AppendSelectReq(nil, 1, "DC-9", SelectReq{Job: JobShort, MaxCores: 2, HoldMillis: 1000}))
	f.Add(AppendSelectResp(nil, 2, &SelectResp{Generation: 1, Lease: 99, Satisfiable: true,
		Classes: []SelectGrant{{Class: 1, Headroom: 2, Granted: 1}}}))
	f.Add(AppendReleaseReq(nil, 3, "DC-9", 42))
	f.Add(AppendReleaseResp(nil, 4, &ReleaseResp{Lease: 42, TotalMillis: 1000, Grants: []ReleaseGrant{{Class: 0, Millis: 1000}}}))
	f.Add(AppendPlaceReq(nil, 5, "DC-9", PlaceReq{Replication: 3, Writer: -1}))
	f.Add(AppendPlaceResp(nil, 6, &PlaceResp{Generation: 1, Replicas: []int64{1, 2, 3}}))
	f.Add(AppendClassesReq(nil, 7, "DC-9"))
	f.Add(AppendClassesResp(nil, 8, &ClassesResp{Generation: 1, Classes: []ClassRec{{ID: 1, ExampleServer: -1}}}))
	f.Add(AppendServerClassReq(nil, 9, "DC-9", 17))
	f.Add(AppendRenewReq(nil, 11, "DC-9", RenewReq{Lease: 42, HoldMillis: 60000}))
	f.Add(AppendRenewResp(nil, 12, &RenewResp{Lease: 42, TotalMillis: 1000, ExpiresIn: 60}))
	f.Add(AppendErrorResp(nil, 10, 500, "boom"))
	f.Add([]byte("GET /v1/datacenters HTTP/1.1\r\n\r\n"))
	f.Add([]byte{Magic, Version, 0x01, 0, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		var scratch []byte
		h, payload, err := ReadFrame(r, &scratch)
		if err != nil {
			return // rejected without panic: the property we are after
		}
		if int(h.Len) != len(payload) {
			t.Fatalf("header len %d != payload %d", h.Len, len(payload))
		}
		// ReadFrame must consume exactly header+payload, no over-read.
		consumed := len(data) - r.Len()
		if consumed != HeaderSize+len(payload) {
			t.Fatalf("consumed %d bytes, want %d", consumed, HeaderSize+len(payload))
		}
		// Re-encoding the parsed frame must reproduce the consumed bytes.
		again := AppendFrame(nil, h.Op, h.ID, payload)
		// The flags byte is carried through frames but not re-encoded by
		// AppendFrame (version 1 defines no flags); patch it for comparison.
		again[3] = h.Flags
		if !bytes.Equal(again, data[:consumed]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", again, data[:consumed])
		}
		// Every typed decoder must reject or cleanly parse arbitrary
		// payloads; a successful parse must re-encode to the identical
		// payload (encode→decode→encode fixed point).
		checkDecoders(t, h, payload)
	})
}

func checkDecoders(t *testing.T, h Header, payload []byte) {
	var sreq SelectReq
	if sreq.Decode(payload) == nil {
		if got := AppendSelectReq(nil, h.ID, string(sreq.DC), sreq); !bytes.Equal(got[HeaderSize:], payload) {
			t.Fatalf("SelectReq not a fixed point")
		}
	}
	var sresp SelectResp
	if sresp.Decode(payload) == nil {
		if got := AppendSelectResp(nil, h.ID, &sresp); !bytes.Equal(got[HeaderSize:], payload) {
			t.Fatalf("SelectResp not a fixed point")
		}
	}
	var rreq ReleaseReq
	if rreq.Decode(payload) == nil {
		if got := AppendReleaseReq(nil, h.ID, string(rreq.DC), rreq.Lease); !bytes.Equal(got[HeaderSize:], payload) {
			t.Fatalf("ReleaseReq not a fixed point")
		}
	}
	var rresp ReleaseResp
	if rresp.Decode(payload) == nil {
		if got := AppendReleaseResp(nil, h.ID, &rresp); !bytes.Equal(got[HeaderSize:], payload) {
			t.Fatalf("ReleaseResp not a fixed point")
		}
	}
	var rnreq RenewReq
	if rnreq.Decode(payload) == nil {
		if got := AppendRenewReq(nil, h.ID, string(rnreq.DC), rnreq); !bytes.Equal(got[HeaderSize:], payload) {
			t.Fatalf("RenewReq not a fixed point")
		}
	}
	var rnresp RenewResp
	if rnresp.Decode(payload) == nil {
		if got := AppendRenewResp(nil, h.ID, &rnresp); !bytes.Equal(got[HeaderSize:], payload) {
			t.Fatalf("RenewResp not a fixed point")
		}
	}
	var preq PlaceReq
	if preq.Decode(payload) == nil {
		if got := AppendPlaceReq(nil, h.ID, string(preq.DC), preq); !bytes.Equal(got[HeaderSize:], payload) {
			t.Fatalf("PlaceReq not a fixed point")
		}
	}
	var presp PlaceResp
	if presp.Decode(payload) == nil {
		if got := AppendPlaceResp(nil, h.ID, &presp); !bytes.Equal(got[HeaderSize:], payload) {
			t.Fatalf("PlaceResp not a fixed point")
		}
	}
	var creq ClassesReq
	if creq.Decode(payload) == nil {
		if got := AppendClassesReq(nil, h.ID, string(creq.DC)); !bytes.Equal(got[HeaderSize:], payload) {
			t.Fatalf("ClassesReq not a fixed point")
		}
	}
	var cresp ClassesResp
	if cresp.Decode(payload) == nil {
		if got := AppendClassesResp(nil, h.ID, &cresp); !bytes.Equal(got[HeaderSize:], payload) {
			t.Fatalf("ClassesResp not a fixed point")
		}
	}
	var screq ServerClassReq
	if screq.Decode(payload) == nil {
		if got := AppendServerClassReq(nil, h.ID, string(screq.DC), screq.Server); !bytes.Equal(got[HeaderSize:], payload) {
			t.Fatalf("ServerClassReq not a fixed point")
		}
	}
	var scresp ServerClassResp
	if scresp.Decode(payload) == nil {
		if got := AppendServerClassResp(nil, h.ID, &scresp); !bytes.Equal(got[HeaderSize:], payload) {
			t.Fatalf("ServerClassResp not a fixed point")
		}
	}
	var eresp ErrorResp
	if eresp.Decode(payload) == nil {
		if got := AppendErrorResp(nil, h.ID, eresp.Code, string(eresp.Message)); !bytes.Equal(got[HeaderSize:], payload) {
			t.Fatalf("ErrorResp not a fixed point")
		}
	}
}

func TestF64NaNRoundTrip(t *testing.T) {
	// NaN payloads must survive the float64 bit round trip — the decoders
	// pass bits through, and semantic validation is the server's job.
	nan := math.Float64frombits(0x7ff8000000000001)
	b := AppendF64(nil, nan)
	r := NewReader(b)
	if got := math.Float64bits(r.F64()); got != 0x7ff8000000000001 {
		t.Fatalf("NaN bits %#x", got)
	}
}
