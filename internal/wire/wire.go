// Package wire is the binary frame protocol for the serving hot path: the
// same select/release/place/classes semantics as the JSON API, reframed as
// length-prefixed binary messages so a pipelining client pays bytes and
// branch-light parsing instead of net/http and encoding/json. BENCH_PR4 put
// the in-process select at ~278 ns while the end-to-end JSON request costs
// ~20 µs — the difference is almost entirely transport, and this package is
// the transport that doesn't.
//
// Framing: every message is a fixed 16-byte header followed by a payload of
// Header.Len bytes.
//
//	offset  size  field
//	0       1     magic (0xA7)
//	1       1     protocol version (1)
//	2       1     opcode
//	3       1     flags (FlagTrace; other bits reserved, 0 in version 1)
//	4       4     payload length, uint32 little-endian (≤ MaxPayload)
//	8       8     request id, uint64 little-endian (echoed in the response)
//
// All multi-byte payload fields are fixed-width little-endian — no varints,
// so decoding is a bounds check and an unaligned load, never a loop.
// Strings (datacenter names) are a one-byte length followed by raw bytes.
// Request ids are opaque to the server: responses echo them verbatim, which
// is what lets a router interleave frames from many clients over one
// backend connection and still hand each response back correctly.
//
// Encoding is append-style into caller-owned buffers (BeginFrame /
// Append* / EndFrame back-patches the length), decoding is a sticky-error
// Reader over the payload slice — both sides run allocation-free against
// reused scratch buffers.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

const (
	// Magic is the first byte of every frame. A JSON client that accidentally
	// connects to the binary port fails the magic check on its first byte
	// ('P' of POST is 0x50) and the connection closes immediately.
	Magic = 0xA7
	// Version is the protocol version this package speaks.
	Version = 1
	// HeaderSize is the fixed frame header length.
	HeaderSize = 16
	// MaxPayload caps a frame payload, mirroring the JSON API's request body
	// cap. A length field past this is treated as a framing error (desynced
	// or hostile peer), not a large message.
	MaxPayload = 1 << 20
	// MaxReplPayload caps replication frames (opcode range 0x10-0x1F): a full
	// snapshot ships every class's tenant and server id list plus the whole
	// lease ledger, which outgrows the request cap at large scale factors.
	// Only the replication listener ever reads frames this large — the public
	// binary ports reject replication opcodes before reading their payload.
	MaxReplPayload = 64 << 20
	// MaxStr8 is the longest string a one-byte-length field can carry.
	MaxStr8 = 255
)

// Op identifies a frame's message type. Requests have the high bit clear;
// each response opcode is its request's opcode with RespBit set. OpError is
// the error response to any request.
type Op uint8

// RespBit distinguishes responses from requests.
const RespBit Op = 0x80

const (
	OpSelect      Op = 0x01
	OpRelease     Op = 0x02
	OpPlace       Op = 0x03
	OpClasses     Op = 0x04
	OpServerClass Op = 0x05
	OpRenew       Op = 0x06
	OpPlaceBlock  Op = 0x07
	OpReimage     Op = 0x08

	OpSelectResp      = OpSelect | RespBit
	OpReleaseResp     = OpRelease | RespBit
	OpPlaceResp       = OpPlace | RespBit
	OpClassesResp     = OpClasses | RespBit
	OpServerClassResp = OpServerClass | RespBit
	OpRenewResp       = OpRenew | RespBit
	OpPlaceBlockResp  = OpPlaceBlock | RespBit
	OpReimageResp     = OpReimage | RespBit

	// Replication opcodes (0x10-0x1F): the intra-DC primary→follower snapshot
	// stream (internal/service/replication.go). OpReplHello is the one
	// follower→primary frame (sent once per connection, answered with
	// OpReplHello|RespBit); the rest are unacknowledged pushes from the
	// primary. These never appear on the public binary ports — servers and
	// routers reject them at the framing layer — so their larger payload cap
	// (MaxReplPayload) is confined to the replication listener.
	OpReplHello Op = 0x10
	OpReplSnap  Op = 0x11
	OpReplDelta Op = 0x12
	OpReplBeat  Op = 0x13

	OpReplHelloResp = OpReplHello | RespBit

	// OpError carries a status code (the JSON API's HTTP status for the same
	// failure) and a message. Sent in place of any response frame.
	OpError Op = 0xFF
)

// String names an opcode for metrics and logs.
func (o Op) String() string {
	switch o {
	case OpSelect:
		return "select"
	case OpRelease:
		return "release"
	case OpPlace:
		return "place"
	case OpClasses:
		return "classes"
	case OpServerClass:
		return "server_class"
	case OpRenew:
		return "renew"
	case OpPlaceBlock:
		return "place_block"
	case OpReimage:
		return "reimage"
	case OpSelectResp:
		return "select_resp"
	case OpReleaseResp:
		return "release_resp"
	case OpPlaceResp:
		return "place_resp"
	case OpClassesResp:
		return "classes_resp"
	case OpServerClassResp:
		return "server_class_resp"
	case OpRenewResp:
		return "renew_resp"
	case OpPlaceBlockResp:
		return "place_block_resp"
	case OpReimageResp:
		return "reimage_resp"
	case OpReplHello:
		return "repl_hello"
	case OpReplHelloResp:
		return "repl_hello_resp"
	case OpReplSnap:
		return "repl_snap"
	case OpReplDelta:
		return "repl_delta"
	case OpReplBeat:
		return "repl_beat"
	case OpError:
		return "error"
	}
	return fmt.Sprintf("op(0x%02x)", uint8(o))
}

// IsRequest reports whether the opcode is a client-to-server request.
func (o Op) IsRequest() bool {
	switch o {
	case OpSelect, OpRelease, OpPlace, OpClasses, OpServerClass, OpRenew,
		OpPlaceBlock, OpReimage:
		return true
	}
	return false
}

// Resp returns the response opcode for a request opcode.
func (o Op) Resp() Op { return o | RespBit }

// IsRepl reports whether the opcode belongs to the replication stream.
// Replication frames are only legal on the dedicated replication listener;
// the public binary ports treat them as framing errors (before reading the
// payload, since replication frames may exceed MaxPayload).
func (o Op) IsRepl() bool {
	base := o &^ RespBit
	return base >= OpReplHello && base <= OpReplBeat
}

// Header flag bits (byte 3 of the frame header).
const (
	// FlagTrace marks a request frame whose payload is prefixed with an
	// 8-byte trace id (uint64 little-endian) that is not part of the message
	// payload. A relaying router multiplexing many clients over one backend
	// connection must substitute its own unique id in the header (see
	// SetFrameID), so the client's original id — the id both tiers trace the
	// request under — rides in this prefix instead. Responses never carry it.
	FlagTrace = 1 << 0
)

// Select request flag bits (payload-level, not the header flags byte).
const (
	// SelectFlagDryRun asks the advisory behaviour: run selection, reserve
	// nothing, return no lease.
	SelectFlagDryRun = 1 << 0
)

// Place request flag bits.
const (
	// PlaceFlagRelaxed drops the harvesting-environment constraint, the JSON
	// API's relaxed_environment.
	PlaceFlagRelaxed = 1 << 0
)

// Select job-type codes. 0-2 mirror core.JobType; JobFromLastRun asks the
// server to classify LastRunSeconds against the snapshot's thresholds (the
// JSON API's empty job_type).
const (
	JobShort       = 0
	JobMedium      = 1
	JobLong        = 2
	JobFromLastRun = 3
)

// Header is a parsed frame header.
type Header struct {
	Op    Op
	Flags uint8
	Len   uint32
	ID    uint64
}

// Framing errors. ErrBadFrame means the byte stream is not speaking this
// protocol (wrong magic or an absurd length): the connection is desynced and
// must be closed. ErrBadVersion is a well-formed frame from a future
// protocol revision.
var (
	ErrBadFrame   = errors.New("wire: bad frame")
	ErrBadVersion = errors.New("wire: unsupported protocol version")
	// ErrShortPayload is returned by message decoders when the payload ends
	// before the message does (or carries trailing bytes — both are framing
	// bugs, not semantic errors).
	ErrShortPayload = errors.New("wire: truncated or malformed payload")
)

// ParseHeader decodes a frame header from b[:HeaderSize].
func ParseHeader(b []byte) (Header, error) {
	if len(b) < HeaderSize {
		return Header{}, ErrBadFrame
	}
	if b[0] != Magic {
		return Header{}, ErrBadFrame
	}
	if b[1] != Version {
		return Header{}, ErrBadVersion
	}
	h := Header{
		Op:    Op(b[2]),
		Flags: b[3],
		Len:   binary.LittleEndian.Uint32(b[4:8]),
		ID:    binary.LittleEndian.Uint64(b[8:16]),
	}
	limit := uint32(MaxPayload)
	if h.Op.IsRepl() {
		limit = MaxReplPayload
	}
	if h.Len > limit {
		return Header{}, ErrBadFrame
	}
	return h, nil
}

// ReadFrame reads one full frame from r, growing *scratch as needed, and
// returns the header plus the payload slice (aliasing *scratch — valid until
// the next call with the same scratch). Errors are io errors, ErrBadFrame,
// or ErrBadVersion; a clean EOF before any header byte returns io.EOF.
func ReadFrame(r io.Reader, scratch *[]byte) (Header, []byte, error) {
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Header{}, nil, ErrBadFrame
		}
		return Header{}, nil, err
	}
	h, err := ParseHeader(hdr[:])
	if err != nil {
		return Header{}, nil, err
	}
	if cap(*scratch) < int(h.Len) {
		*scratch = make([]byte, h.Len)
	}
	payload := (*scratch)[:h.Len]
	if _, err := io.ReadFull(r, payload); err != nil {
		return Header{}, nil, ErrBadFrame
	}
	return h, payload, nil
}

// BeginFrame appends a frame header with a zero length field to dst and
// returns the extended buffer. The caller appends the payload and then calls
// EndFrame with the offset BeginFrame started at (len(dst) before the call)
// to back-patch the length.
func BeginFrame(dst []byte, op Op, id uint64) []byte {
	dst = append(dst, Magic, Version, byte(op), 0)
	dst = binary.LittleEndian.AppendUint32(dst, 0)
	return binary.LittleEndian.AppendUint64(dst, id)
}

// EndFrame back-patches the payload length of the frame that started at
// offset mark in buf. Panics if the payload exceeds the opcode's cap
// (MaxPayload, or MaxReplPayload for replication frames) — frames are built
// by this codebase, so an oversized one is a bug, not input.
func EndFrame(buf []byte, mark int) []byte {
	n := len(buf) - mark - HeaderSize
	limit := MaxPayload
	if Op(buf[mark+2]).IsRepl() {
		limit = MaxReplPayload
	}
	if n < 0 || n > limit {
		panic("wire: EndFrame on a frame exceeding MaxPayload")
	}
	binary.LittleEndian.PutUint32(buf[mark+4:mark+8], uint32(n))
	return buf
}

// SetFrameID overwrites a complete frame's request id in place. This is the
// relay hook: a router multiplexing many clients' frames over one backend
// connection substitutes its own unique id on the backend leg (client ids may
// collide across — or even within — connections) and restores the client's id
// on the response before relaying it back.
func SetFrameID(frame []byte, id uint64) {
	binary.LittleEndian.PutUint64(frame[8:16], id)
}

// AppendFrame appends a complete frame with the given payload.
func AppendFrame(dst []byte, op Op, id uint64, payload []byte) []byte {
	mark := len(dst)
	dst = BeginFrame(dst, op, id)
	dst = append(dst, payload...)
	return EndFrame(dst, mark)
}

// AppendRelayFrame re-frames a request for the backend leg of native
// forwarding: same opcode and payload, relayID in the header, and traceID
// carried as a FlagTrace prefix so the backend tier still traces the frame
// under the id the client knows.
func AppendRelayFrame(dst []byte, h Header, payload []byte, relayID, traceID uint64) []byte {
	dst = append(dst, Magic, Version, byte(h.Op), h.Flags|FlagTrace)
	dst = binary.LittleEndian.AppendUint32(dst, h.Len+8)
	dst = binary.LittleEndian.AppendUint64(dst, relayID)
	dst = binary.LittleEndian.AppendUint64(dst, traceID)
	return append(dst, payload...)
}

// SplitTrace strips a request payload's FlagTrace prefix, returning the
// carried trace id and the true message payload. Frames without the flag
// yield h.ID (the id IS the trace id when nobody rewrote it) and the payload
// unchanged. ok is false when the flag is set but the payload cannot carry
// the prefix — a framing bug.
func SplitTrace(h Header, payload []byte) (traceID uint64, rest []byte, ok bool) {
	if h.Flags&FlagTrace == 0 {
		return h.ID, payload, true
	}
	if len(payload) < 8 {
		return 0, nil, false
	}
	return binary.LittleEndian.Uint64(payload[:8]), payload[8:], true
}

// Append* primitives: fixed-width little-endian scalar encoders.

func AppendU8(dst []byte, v uint8) []byte   { return append(dst, v) }
func AppendU16(dst []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(dst, v) }
func AppendU32(dst []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(dst, v) }
func AppendU64(dst []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(dst, v) }
func AppendI64(dst []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(dst, uint64(v))
}
func AppendF64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

// AppendStr8 appends a one-byte-length string. Panics past MaxStr8: the only
// strings on the wire are datacenter names, which come from configuration —
// a longer one is an operator error surfaced at startup, not silently
// truncated onto the wire.
func AppendStr8(dst []byte, s string) []byte {
	if len(s) > MaxStr8 {
		panic("wire: string exceeds one-byte length prefix: " + s[:32] + "...")
	}
	dst = append(dst, byte(len(s)))
	return append(dst, s...)
}

func boolByte(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

// Reader decodes a payload with a sticky error: any read past the end sets
// the error flag and returns zero values, so a decode sequence needs exactly
// one error check at the end — branch-light, and garbage input can never
// over-read or panic.
type Reader struct {
	b   []byte
	off int
	bad bool
}

// NewReader returns a Reader over payload.
func NewReader(payload []byte) Reader { return Reader{b: payload} }

func (r *Reader) take(n int) []byte {
	if r.bad || len(r.b)-r.off < n {
		r.bad = true
		return nil
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b
}

func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *Reader) I64() int64 { return int64(r.U64()) }

func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Str8 reads a one-byte-length string, returning a subslice of the payload
// (no copy — valid as long as the payload is).
func (r *Reader) Str8() []byte {
	n := int(r.U8())
	return r.take(n)
}

// Bytes reads n raw bytes as a payload subslice.
func (r *Reader) Bytes(n int) []byte { return r.take(n) }

// Remaining reports unread payload bytes.
func (r *Reader) Remaining() int {
	if r.bad {
		return 0
	}
	return len(r.b) - r.off
}

// Err reports whether any read ran past the payload.
func (r *Reader) Err() error {
	if r.bad {
		return ErrShortPayload
	}
	return nil
}

// Done is the strict end-of-message check: an error if the payload was
// over-read or has trailing bytes. Message decoders end with it so a frame
// is either exactly one message or rejected.
func (r *Reader) Done() error {
	if r.bad || r.off != len(r.b) {
		return ErrShortPayload
	}
	return nil
}

// PeekDC extracts the leading datacenter name every request payload starts
// with — the router's routing key, readable without decoding the rest of the
// message.
func PeekDC(payload []byte) ([]byte, bool) {
	if len(payload) < 1 {
		return nil, false
	}
	n := int(payload[0])
	if len(payload) < 1+n {
		return nil, false
	}
	return payload[1 : 1+n], true
}

// PeekSelectFlags extracts the flags byte of a select request payload
// without a full decode: the payload is the datacenter Str8, one job byte,
// then the flags. The router classifies dry-run selects (SelectFlagDryRun)
// as read traffic eligible for follower fan-out; reserving selects stay
// pinned to the primary.
func PeekSelectFlags(payload []byte) (uint8, bool) {
	if len(payload) < 1 {
		return 0, false
	}
	n := int(payload[0])
	if len(payload) < 1+n+2 {
		return 0, false
	}
	return payload[1+n+1], true
}

// PeekLease extracts the lease id from a release or renew request payload
// without a full decode: both encode the datacenter Str8 followed by the
// 8-byte lease. The router keys these frames onto a backend pipe by lease so
// operations on the same lease keep their client-issued order through the
// relay.
func PeekLease(payload []byte) (uint64, bool) {
	if len(payload) < 1 {
		return 0, false
	}
	n := int(payload[0])
	if len(payload) < 1+n+8 {
		return 0, false
	}
	return binary.LittleEndian.Uint64(payload[1+n:]), true
}
