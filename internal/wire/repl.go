package wire

// Replication messages: the intra-DC primary→follower snapshot stream.
//
// A follower dials the primary's replication listener, sends one OpReplHello
// announcing the generations it already holds, and reads pushes from then
// on. The primary answers the hello with OpReplHello|RespBit (carrying its
// identity, which the follower re-announces to the router as primary_id) and
// then streams, per datacenter:
//
//   - OpReplSnap — a full snapshot: every class with its complete tenant and
//     server id lists, the live usage view, and the whole lease ledger. Sent
//     on follower join and whenever a delta chain breaks.
//   - OpReplDelta — an incremental snapshot against PrevGeneration: the
//     class list is complete, but classes whose membership did not change
//     ship as references to the previous generation's class (detected on the
//     primary by the PR 8 structural sharing — an unchanged class shares its
//     predecessor's Servers slice), so the steady-state frame is
//     O(classes + drifted tenants' membership), not O(servers).
//   - OpReplBeat — same generation, refreshed usage view + ledger state:
//     what changes between snapshot refreshes as selects and telemetry land.
//
// Pushes are unacknowledged: a follower that cannot keep up is dropped by
// the primary's write deadline and re-joins with a fresh hello (getting a
// full snapshot). Every push carries SentUnixNano so the follower can report
// ship+apply lag without a second clock channel.

// ReplDCGen names one datacenter generation in a hello.
type ReplDCGen struct {
	DC         string
	Generation uint64
}

// ReplHello is the follower's one request frame: who it is and which
// generations it already holds (informational — the primary currently ships
// a full snapshot on every join, but the hello pins the follower's view for
// logs and future resumption).
type ReplHello struct {
	FollowerID string
	DCs        []ReplDCGen
}

// AppendReplHello appends a complete hello request frame.
func AppendReplHello(dst []byte, id uint64, m *ReplHello) []byte {
	mark := len(dst)
	dst = BeginFrame(dst, OpReplHello, id)
	dst = AppendStr8(dst, m.FollowerID)
	dst = AppendU16(dst, uint16(len(m.DCs)))
	for _, d := range m.DCs {
		dst = AppendStr8(dst, d.DC)
		dst = AppendU64(dst, d.Generation)
	}
	return EndFrame(dst, mark)
}

// Decode parses a hello request payload.
func (m *ReplHello) Decode(payload []byte) error {
	r := NewReader(payload)
	m.FollowerID = string(r.Str8())
	n := int(r.U16())
	m.DCs = sized(m.DCs, n, 9, &r) // 1-byte name length + 8-byte generation
	for i := range m.DCs {
		m.DCs[i].DC = string(r.Str8())
		m.DCs[i].Generation = r.U64()
	}
	return r.Done()
}

// ReplHelloResp acknowledges a hello with the primary's identity.
type ReplHelloResp struct {
	PrimaryID string
}

// AppendReplHelloResp appends a complete hello response frame.
func AppendReplHelloResp(dst []byte, id uint64, m *ReplHelloResp) []byte {
	mark := len(dst)
	dst = BeginFrame(dst, OpReplHelloResp, id)
	dst = AppendStr8(dst, m.PrimaryID)
	return EndFrame(dst, mark)
}

// Decode parses a hello response payload.
func (m *ReplHelloResp) Decode(payload []byte) error {
	r := NewReader(payload)
	m.PrimaryID = string(r.Str8())
	return r.Done()
}

// ReplClass is one utilization class in a snapshot or delta frame. Ref
// classes (deltas only) carry their scalar fields and centroid — those move
// every warm recluster even when membership holds — but reference the
// previous generation's class for the tenant and server id lists, which is
// what keeps steady-state deltas small.
type ReplClass struct {
	ID      uint32
	Pattern uint8
	Avg     float64
	Peak    float64
	// Current is the class's live usage-view utilization on the primary —
	// shipped instead of recomputed because the follower's telemetry rings
	// never see the primary's ingested samples.
	Current  float64
	Centroid []float64
	// Ref marks a membership reference: Tenants/Servers are empty and PrevID
	// names the previous generation's class to copy them from.
	Ref     bool
	PrevID  uint32
	Tenants []int64
	Servers []int64
}

// ReplGrant is one class's share of a replicated lease, mirroring
// ledger.Grant in wire-native types.
type ReplGrant struct {
	Class  uint32
	Millis int64
}

// ReplLease is one live lease in a replicated ledger state.
type ReplLease struct {
	ID uint64
	// ExpiresUnixNano is the absolute expiry instant (0 = never expires).
	ExpiresUnixNano int64
	JobID           string
	Owner           string
	Grants          []ReplGrant
}

// ReplLedger is the full ledger state riding on every push: the cumulative
// conservation books plus every live lease, so a promoted follower's books
// balance exactly (reserved == released + expired + forfeited + outstanding)
// from the instant of handoff.
type ReplLedger struct {
	Generation      uint64
	ReservedMillis  int64
	ReleasedMillis  int64
	ExpiredMillis   int64
	ForfeitedMillis int64
	Reserves        uint64
	Releases        uint64
	Renews          uint64
	Expiries        uint64
	Conflicts       uint64
	Leases          []ReplLease
}

func appendReplLedger(dst []byte, m *ReplLedger) []byte {
	dst = AppendU64(dst, m.Generation)
	dst = AppendI64(dst, m.ReservedMillis)
	dst = AppendI64(dst, m.ReleasedMillis)
	dst = AppendI64(dst, m.ExpiredMillis)
	dst = AppendI64(dst, m.ForfeitedMillis)
	dst = AppendU64(dst, m.Reserves)
	dst = AppendU64(dst, m.Releases)
	dst = AppendU64(dst, m.Renews)
	dst = AppendU64(dst, m.Expiries)
	dst = AppendU64(dst, m.Conflicts)
	dst = AppendU32(dst, uint32(len(m.Leases)))
	for i := range m.Leases {
		ls := &m.Leases[i]
		dst = AppendU64(dst, ls.ID)
		dst = AppendI64(dst, ls.ExpiresUnixNano)
		dst = AppendStr8(dst, ls.JobID)
		dst = AppendStr8(dst, ls.Owner)
		dst = AppendU16(dst, uint16(len(ls.Grants)))
		for _, g := range ls.Grants {
			dst = AppendU32(dst, g.Class)
			dst = AppendI64(dst, g.Millis)
		}
	}
	return dst
}

// replLeaseMinSize is a lease's floor on the wire: id + expiry + two empty
// strings + grant count.
const replLeaseMinSize = 8 + 8 + 1 + 1 + 2

func decodeReplLedger(r *Reader, m *ReplLedger) {
	m.Generation = r.U64()
	m.ReservedMillis = r.I64()
	m.ReleasedMillis = r.I64()
	m.ExpiredMillis = r.I64()
	m.ForfeitedMillis = r.I64()
	m.Reserves = r.U64()
	m.Releases = r.U64()
	m.Renews = r.U64()
	m.Expiries = r.U64()
	m.Conflicts = r.U64()
	n := int(r.U32())
	m.Leases = sized(m.Leases, n, replLeaseMinSize, r)
	for i := range m.Leases {
		ls := &m.Leases[i]
		ls.ID = r.U64()
		ls.ExpiresUnixNano = r.I64()
		ls.JobID = string(r.Str8())
		ls.Owner = string(r.Str8())
		ng := int(r.U16())
		ls.Grants = sized(ls.Grants, ng, 12, r)
		for j := range ls.Grants {
			ls.Grants[j].Class = r.U32()
			ls.Grants[j].Millis = r.I64()
		}
	}
}

// ReplBlockReplica is one replica slot of a replicated block. Server is
// meaningless when Placed is false (the slot is awaiting repair).
type ReplBlockReplica struct {
	Server int64
	Placed bool
}

// ReplBlock is one block in a replicated block-ledger state.
type ReplBlock struct {
	ID        uint64
	EnvStrict bool
	Replicas  []ReplBlockReplica
}

// ReplBlocks is the full block-ledger state riding on every push, after the
// lease ledger: every block's replica slots plus the cumulative durability
// books, so a promoted follower's block conservation (placed + pending ==
// slots, lost == replaced + pending) holds from the instant of handoff and
// its rebuilt repair queue covers exactly the pending slots.
type ReplBlocks struct {
	Generation uint64
	Lost       int64
	Replaced   int64
	Creates    uint64
	Reimages   uint64
	Blocks     []ReplBlock
}

func appendReplBlocks(dst []byte, m *ReplBlocks) []byte {
	dst = AppendU64(dst, m.Generation)
	dst = AppendI64(dst, m.Lost)
	dst = AppendI64(dst, m.Replaced)
	dst = AppendU64(dst, m.Creates)
	dst = AppendU64(dst, m.Reimages)
	dst = AppendU32(dst, uint32(len(m.Blocks)))
	for i := range m.Blocks {
		b := &m.Blocks[i]
		dst = AppendU64(dst, b.ID)
		dst = AppendU8(dst, boolByte(b.EnvStrict))
		dst = AppendU8(dst, uint8(len(b.Replicas)))
		for _, rep := range b.Replicas {
			dst = AppendI64(dst, rep.Server)
			dst = AppendU8(dst, boolByte(rep.Placed))
		}
	}
	return dst
}

// replBlockMinSize is a block's floor on the wire: id + env byte + replica
// count.
const replBlockMinSize = 8 + 1 + 1

func decodeReplBlocks(r *Reader, m *ReplBlocks) {
	m.Generation = r.U64()
	m.Lost = r.I64()
	m.Replaced = r.I64()
	m.Creates = r.U64()
	m.Reimages = r.U64()
	n := int(r.U32())
	m.Blocks = sized(m.Blocks, n, replBlockMinSize, r)
	for i := range m.Blocks {
		b := &m.Blocks[i]
		b.ID = r.U64()
		b.EnvStrict = r.U8() != 0
		nr := int(r.U8())
		b.Replicas = sized(b.Replicas, nr, 9, r)
		for j := range b.Replicas {
			b.Replicas[j].Server = r.I64()
			b.Replicas[j].Placed = r.U8() != 0
		}
	}
}

// ReplSnapshot is the payload of both OpReplSnap and OpReplDelta frames —
// one datacenter's complete characterization state. Full snapshots carry
// every class in full and PrevGeneration 0; deltas set PrevGeneration to the
// exact generation they apply on top of (a follower holding anything else
// must drop the connection and re-join) and may use Ref classes.
type ReplSnapshot struct {
	DC              string
	Generation      uint64
	PrevGeneration  uint64
	SentUnixNano    int64
	AsOfSeconds     float64
	BuiltAtUnixNano int64
	Classes         []ReplClass
	Ledger          ReplLedger
	Blocks          ReplBlocks
}

// AppendReplSnapshot appends a complete snapshot or delta frame (op must be
// OpReplSnap or OpReplDelta).
func AppendReplSnapshot(dst []byte, op Op, id uint64, m *ReplSnapshot) []byte {
	mark := len(dst)
	dst = BeginFrame(dst, op, id)
	dst = AppendStr8(dst, m.DC)
	dst = AppendU64(dst, m.Generation)
	dst = AppendU64(dst, m.PrevGeneration)
	dst = AppendI64(dst, m.SentUnixNano)
	dst = AppendF64(dst, m.AsOfSeconds)
	dst = AppendI64(dst, m.BuiltAtUnixNano)
	dst = AppendU32(dst, uint32(len(m.Classes)))
	for i := range m.Classes {
		c := &m.Classes[i]
		dst = AppendU32(dst, c.ID)
		dst = AppendU8(dst, c.Pattern)
		dst = AppendU8(dst, boolByte(c.Ref))
		dst = AppendF64(dst, c.Avg)
		dst = AppendF64(dst, c.Peak)
		dst = AppendF64(dst, c.Current)
		dst = AppendU16(dst, uint16(len(c.Centroid)))
		for _, v := range c.Centroid {
			dst = AppendF64(dst, v)
		}
		if c.Ref {
			dst = AppendU32(dst, c.PrevID)
			continue
		}
		dst = AppendU32(dst, uint32(len(c.Tenants)))
		for _, t := range c.Tenants {
			dst = AppendI64(dst, t)
		}
		dst = AppendU32(dst, uint32(len(c.Servers)))
		for _, s := range c.Servers {
			dst = AppendI64(dst, s)
		}
	}
	dst = appendReplLedger(dst, &m.Ledger)
	dst = appendReplBlocks(dst, &m.Blocks)
	return EndFrame(dst, mark)
}

// replClassMinSize is a class record's floor on the wire: id + pattern +
// ref byte + three f64 scalars + centroid count + (ref id | two counts).
const replClassMinSize = 4 + 1 + 1 + 24 + 2 + 4

// Decode parses a snapshot or delta payload.
func (m *ReplSnapshot) Decode(payload []byte) error {
	r := NewReader(payload)
	m.DC = string(r.Str8())
	m.Generation = r.U64()
	m.PrevGeneration = r.U64()
	m.SentUnixNano = r.I64()
	m.AsOfSeconds = r.F64()
	m.BuiltAtUnixNano = r.I64()
	n := int(r.U32())
	m.Classes = sized(m.Classes, n, replClassMinSize, &r)
	for i := range m.Classes {
		c := &m.Classes[i]
		c.ID = r.U32()
		c.Pattern = r.U8()
		c.Ref = r.U8() != 0
		c.Avg = r.F64()
		c.Peak = r.F64()
		c.Current = r.F64()
		nc := int(r.U16())
		c.Centroid = sized(c.Centroid, nc, 8, &r)
		for j := range c.Centroid {
			c.Centroid[j] = r.F64()
		}
		if c.Ref {
			c.PrevID = r.U32()
			c.Tenants = c.Tenants[:0]
			c.Servers = c.Servers[:0]
			continue
		}
		c.PrevID = 0
		nt := int(r.U32())
		c.Tenants = sized(c.Tenants, nt, 8, &r)
		for j := range c.Tenants {
			c.Tenants[j] = r.I64()
		}
		ns := int(r.U32())
		c.Servers = sized(c.Servers, ns, 8, &r)
		for j := range c.Servers {
			c.Servers[j] = r.I64()
		}
	}
	decodeReplLedger(&r, &m.Ledger)
	decodeReplBlocks(&r, &m.Blocks)
	return r.Done()
}

// ReplClassUsage is one class's refreshed live utilization in a beat.
type ReplClassUsage struct {
	ID      uint32
	Current float64
}

// ReplBeat refreshes a follower's usage view and ledger state between
// snapshot generations: same clustering, new numbers. Generation must match
// the follower's current snapshot exactly.
type ReplBeat struct {
	DC           string
	Generation   uint64
	SentUnixNano int64
	AsOfSeconds  float64
	Usage        []ReplClassUsage
	Ledger       ReplLedger
	Blocks       ReplBlocks
}

// AppendReplBeat appends a complete beat frame.
func AppendReplBeat(dst []byte, id uint64, m *ReplBeat) []byte {
	mark := len(dst)
	dst = BeginFrame(dst, OpReplBeat, id)
	dst = AppendStr8(dst, m.DC)
	dst = AppendU64(dst, m.Generation)
	dst = AppendI64(dst, m.SentUnixNano)
	dst = AppendF64(dst, m.AsOfSeconds)
	dst = AppendU32(dst, uint32(len(m.Usage)))
	for _, u := range m.Usage {
		dst = AppendU32(dst, u.ID)
		dst = AppendF64(dst, u.Current)
	}
	dst = appendReplLedger(dst, &m.Ledger)
	dst = appendReplBlocks(dst, &m.Blocks)
	return EndFrame(dst, mark)
}

// Decode parses a beat payload.
func (m *ReplBeat) Decode(payload []byte) error {
	r := NewReader(payload)
	m.DC = string(r.Str8())
	m.Generation = r.U64()
	m.SentUnixNano = r.I64()
	m.AsOfSeconds = r.F64()
	n := int(r.U32())
	m.Usage = sized(m.Usage, n, 12, &r)
	for i := range m.Usage {
		m.Usage[i].ID = r.U32()
		m.Usage[i].Current = r.F64()
	}
	decodeReplLedger(&r, &m.Ledger)
	decodeReplBlocks(&r, &m.Blocks)
	return r.Done()
}
