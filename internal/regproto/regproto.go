// Package regproto defines the wire format of the router registration
// protocol — the heartbeat a harvestd backend POSTs to a harvestrouter's
// /v1/register. It lives in its own package so the serving layer's
// registration client (internal/service.Announcer) and the router's server
// side (internal/router) share one definition without the serving tier
// importing the proxy implementation.
package regproto

// RegisterDatacenter is one datacenter a backend announces, with the
// snapshot generation it currently serves (operator visibility: a shard
// whose generation stops advancing is stale even if the process is alive).
type RegisterDatacenter struct {
	Name       string `json:"name"`
	Generation uint64 `json:"generation"`
}

// RegisterRequest is the heartbeat body a backend POSTs to /v1/register.
// The same body re-registers: ID is the stable identity, URL and the
// datacenter set are updated on every beat.
type RegisterRequest struct {
	ID  string `json:"id"`
	URL string `json:"url"`
	// BinaryAddr is the backend's binary frame listener (host:port), empty
	// for a JSON-only backend. Its presence is the capability negotiation:
	// the router forwards data-plane frames natively to backends that
	// advertise it and translates to JSON for the rest, so mixed fleets
	// keep working mid-rollout.
	BinaryAddr string `json:"binary_addr,omitempty"`
	// Role announces the node's replication role: "primary" (or empty, for
	// compatibility with pre-replication backends) or "follower". The router
	// pins writes to primaries and spreads generation-fresh reads across
	// followers.
	Role string `json:"role,omitempty"`
	// PrimaryID names the primary a follower replicates from, so the router
	// only promotes followers of the backend that actually went missing.
	// Empty for primaries.
	PrimaryID string `json:"primary_id,omitempty"`
	// ReplicateAddr is the node's replication listener (host:port) — live on
	// a primary, armed-but-idle on a follower carrying -replicate-addr. The
	// router hands a primary's ReplicateAddr back to its followers (see
	// RegisterResponse.PrimaryReplicateAddr) so orphaned followers re-dial
	// whichever follower was promoted, without operator intervention.
	ReplicateAddr string `json:"replicate_addr,omitempty"`
	// Draining marks a planned shutdown: the backend is still up but asks the
	// router to stop routing to it immediately instead of waiting out the
	// staleness window. Sent on the final heartbeat before SIGTERM teardown.
	Draining    bool                 `json:"draining,omitempty"`
	Datacenters []RegisterDatacenter `json:"datacenters"`
}

// RegisterResponse acknowledges a heartbeat and tells the backend how long
// it may go silent before its datacenters start 503ing.
type RegisterResponse struct {
	Status            string  `json:"status"`
	Backends          int     `json:"backends"`
	StaleAfterSeconds float64 `json:"stale_after_seconds"`
	// PrimaryReplicateAddr, set on a follower's acknowledgement, is the
	// replication listener of the primary the router currently believes owns
	// this follower's datacenters. A follower whose primary died compares it
	// against the address it is dialing and re-points its replication stream
	// at the promoted node.
	PrimaryReplicateAddr string `json:"primary_replicate_addr,omitempty"`
}
