// Package regproto defines the wire format of the router registration
// protocol — the heartbeat a harvestd backend POSTs to a harvestrouter's
// /v1/register. It lives in its own package so the serving layer's
// registration client (internal/service.Announcer) and the router's server
// side (internal/router) share one definition without the serving tier
// importing the proxy implementation.
package regproto

// RegisterDatacenter is one datacenter a backend announces, with the
// snapshot generation it currently serves (operator visibility: a shard
// whose generation stops advancing is stale even if the process is alive).
type RegisterDatacenter struct {
	Name       string `json:"name"`
	Generation uint64 `json:"generation"`
}

// RegisterRequest is the heartbeat body a backend POSTs to /v1/register.
// The same body re-registers: ID is the stable identity, URL and the
// datacenter set are updated on every beat.
type RegisterRequest struct {
	ID  string `json:"id"`
	URL string `json:"url"`
	// BinaryAddr is the backend's binary frame listener (host:port), empty
	// for a JSON-only backend. Its presence is the capability negotiation:
	// the router forwards data-plane frames natively to backends that
	// advertise it and translates to JSON for the rest, so mixed fleets
	// keep working mid-rollout.
	BinaryAddr string `json:"binary_addr,omitempty"`
	// Role announces the node's replication role: "primary" (or empty, for
	// compatibility with pre-replication backends) or "follower". The router
	// pins writes to primaries and spreads generation-fresh reads across
	// followers.
	Role string `json:"role,omitempty"`
	// PrimaryID names the primary a follower replicates from, so the router
	// only promotes followers of the backend that actually went missing.
	// Empty for primaries.
	PrimaryID   string               `json:"primary_id,omitempty"`
	Datacenters []RegisterDatacenter `json:"datacenters"`
}

// RegisterResponse acknowledges a heartbeat and tells the backend how long
// it may go silent before its datacenters start 503ing.
type RegisterResponse struct {
	Status            string  `json:"status"`
	Backends          int     `json:"backends"`
	StaleAfterSeconds float64 `json:"stale_after_seconds"`
}
