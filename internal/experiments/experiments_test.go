package experiments

import (
	"testing"
	"time"

	"harvest/internal/hdfssim"
	"harvest/internal/signalproc"
	"harvest/internal/timeseries"
	"harvest/internal/yarnsim"
)

// tinyScale keeps experiment tests fast.
func tinyScale() Scale {
	return Scale{Datacenter: 0.03, Blocks: 0.002, Workload: 0.1, Seed: 3}
}

func TestScaleNormalization(t *testing.T) {
	s := Scale{}.normalized()
	if s.Datacenter <= 0 || s.Blocks <= 0 || s.Workload <= 0 {
		t.Fatalf("normalized scale should be positive: %+v", s)
	}
	if QuickScale().Datacenter <= 0 || PaperScale().Datacenter != 1 {
		t.Fatalf("built-in scales misconfigured")
	}
}

func TestDatacenterLists(t *testing.T) {
	if len(Datacenters()) != 10 {
		t.Fatalf("expected 10 datacenters")
	}
	if len(CharacterizationDatacenters()) != 5 {
		t.Fatalf("expected 5 representative datacenters")
	}
}

func TestFigure1(t *testing.T) {
	results, err := Figure1(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("expected a periodic and an unpredictable sample")
	}
	for _, r := range results {
		if len(r.TimeSeries) == 0 || len(r.Spectrum) == 0 {
			t.Fatalf("sample %v missing data", r.Pattern)
		}
	}
	// The periodic sample should peak near the daily frequency (~30 cycles
	// per month).
	if results[0].Pattern != signalproc.PatternPeriodic {
		t.Fatalf("first sample should be periodic")
	}
	if results[0].DominantFrequency < 25 || results[0].DominantFrequency > 35 {
		t.Errorf("periodic dominant frequency = %d, want near 30", results[0].DominantFrequency)
	}
}

func TestFigure2And3(t *testing.T) {
	rows, err := Figure2And3(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("expected one row per datacenter")
	}
	for _, row := range rows {
		tenantPeriodic := row.TenantShare[signalproc.PatternPeriodic]
		serverPeriodic := row.ServerShare[signalproc.PatternPeriodic]
		if tenantPeriodic > 0.5 {
			t.Errorf("%s: periodic tenants should be a minority, got %v", row.Datacenter, tenantPeriodic)
		}
		// The "periodic tenants own disproportionately many servers" property
		// (Fig 3) only shows once there are enough tenants for the size skew
		// to average out; tiny test populations are exempt.
		if row.TotalTenants >= 50 && serverPeriodic+0.05 < tenantPeriodic {
			t.Errorf("%s: periodic server share (%v) should not be far below tenant share (%v)",
				row.Datacenter, serverPeriodic, tenantPeriodic)
		}
		var tenantTotal float64
		for _, v := range row.TenantShare {
			tenantTotal += v
		}
		if tenantTotal < 0.999 || tenantTotal > 1.001 {
			t.Errorf("%s: tenant shares sum to %v", row.Datacenter, tenantTotal)
		}
	}
}

func TestFigure4And5And6(t *testing.T) {
	s := tinyScale()
	for name, fn := range map[string]func(Scale) ([]CDFRow, error){
		"Figure4": Figure4, "Figure5": Figure5, "Figure6": Figure6,
	} {
		rows, err := fn(s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(rows) != 5 {
			t.Fatalf("%s: expected 5 datacenters, got %d", name, len(rows))
		}
		for _, row := range rows {
			if len(row.Points) == 0 {
				t.Fatalf("%s: %s has an empty CDF", name, row.Datacenter)
			}
			last := row.Points[len(row.Points)-1]
			if last.Cumulative < 0.999 {
				t.Fatalf("%s: %s CDF does not reach 1", name, row.Datacenter)
			}
		}
	}
	rows, err := Figure4(s)
	if err != nil {
		t.Fatal(err)
	}
	if FormatCDFSummary(rows, 1.0) == "" {
		t.Errorf("summary should not be empty")
	}
}

func TestFigure7(t *testing.T) {
	res := Figure7()
	if res.MaxConcurrentTasks != 469 {
		t.Fatalf("max concurrent = %d, want 469", res.MaxConcurrentTasks)
	}
	if res.Query != "query19" || res.Stages != 11 {
		t.Fatalf("unexpected DAG summary: %+v", res)
	}
}

func TestFigure8(t *testing.T) {
	res, err := Figure8(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ExampleSelection) != 3 {
		t.Fatalf("example selection should have 3 replicas")
	}
	populated := 0
	for col := 0; col < 3; col++ {
		for row := 0; row < 3; row++ {
			if res.CellTenants[col][row] > 0 {
				populated++
			}
		}
	}
	if populated < 6 {
		t.Fatalf("expected most cells populated, got %d", populated)
	}
}

func TestFigure10And11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping testbed experiment in -short mode")
	}
	results, err := Figure10And11(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("expected 4 systems, got %d", len(results))
	}
	byName := map[string]TestbedResult{}
	for _, r := range results {
		byName[r.System] = r
		if len(r.TailLatencySeries) == 0 {
			t.Fatalf("%s has no latency series", r.System)
		}
	}
	noHarvest := byName["No Harvesting"]
	stock := byName[yarnsim.PolicyStock.String()]
	pt := byName[yarnsim.PolicyPT.String()]
	hist := byName[yarnsim.PolicyHistory.String()]
	// Figure 10's shape: Stock hurts the tail badly; PT and H stay close to
	// the no-harvesting baseline.
	if stock.AvgTailLatency <= noHarvest.AvgTailLatency {
		t.Errorf("stock should inflate the tail (stock %v vs baseline %v)",
			stock.AvgTailLatency, noHarvest.AvgTailLatency)
	}
	if hist.AvgTailLatency > noHarvest.AvgTailLatency*2 {
		t.Errorf("YARN-H tail (%v) should stay close to the baseline (%v)",
			hist.AvgTailLatency, noHarvest.AvgTailLatency)
	}
	// Figure 11's shape: Stock has the fastest batch jobs; PT is slower than H
	// is allowed to be; everyone completes work.
	if stock.CompletedJobs == 0 || pt.CompletedJobs == 0 || hist.CompletedJobs == 0 {
		t.Fatalf("all systems should complete jobs")
	}
	if stock.TasksKilled != 0 {
		t.Errorf("stock never kills tasks")
	}
	if hist.TasksKilled > pt.TasksKilled {
		t.Errorf("YARN-H (%d kills) should not kill more than YARN-PT (%d)", hist.TasksKilled, pt.TasksKilled)
	}
}

func TestFigure12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping storage testbed experiment in -short mode")
	}
	results, err := Figure12(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("expected 3 systems")
	}
	byName := map[string]TestbedResult{}
	for _, r := range results {
		byName[r.System] = r
	}
	stock := byName[hdfssim.PolicyStock.String()]
	pt := byName[hdfssim.PolicyPT.String()]
	hist := byName[hdfssim.PolicyHistory.String()]
	if stock.AvgTailLatency <= hist.AvgTailLatency {
		t.Errorf("HDFS-Stock should inflate the primary tail more than HDFS-H")
	}
	if hist.FailedAccesses > pt.FailedAccesses {
		t.Errorf("HDFS-H failed accesses (%d) should not exceed HDFS-PT's (%d)",
			hist.FailedAccesses, pt.FailedAccesses)
	}
}

func TestFigure13And14Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping datacenter-scale sweep in -short mode")
	}
	cfg := DefaultFigure13Config()
	cfg.Utilizations = []float64{0.45}
	cfg.Scalings = []timeseries.ScalingMethod{timeseries.ScaleLinear}
	cfg.Horizon = 8 * time.Hour
	points, err := Figure13(tinyScale(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 {
		t.Fatalf("expected one sweep point, got %d", len(points))
	}
	p := points[0]
	if p.PTAvgRuntime <= 0 || p.HistoryAvgRuntime <= 0 {
		t.Fatalf("both policies should complete jobs: %+v", p)
	}
	if p.HistoryKills > p.PTKills {
		t.Errorf("history kills (%d) should not exceed PT kills (%d)", p.HistoryKills, p.PTKills)
	}

	rows, err := Figure14(tinyScale(), cfg, []string{"DC-0"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("expected one Figure 14 row, got %d", len(rows))
	}
	if rows[0].MaxImprovement < rows[0].MinImprovement {
		t.Fatalf("improvement bounds inconsistent: %+v", rows[0])
	}
}

func TestMicrobench(t *testing.T) {
	res, err := Microbench(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if res.Classes == 0 {
		t.Fatalf("clustering should produce classes")
	}
	if res.ClusteringDuration <= 0 || res.ClassSelectionDuration <= 0 || res.PlacementDuration <= 0 {
		t.Fatalf("durations should be positive: %+v", res)
	}
	// §6.2: class selection takes well under a millisecond on average and
	// placement a few milliseconds; generous bounds keep the test stable on
	// slow machines.
	if res.ClassSelectionDuration > 10*time.Millisecond {
		t.Errorf("class selection too slow: %v", res.ClassSelectionDuration)
	}
	if res.PlacementDuration > 50*time.Millisecond {
		t.Errorf("placement too slow: %v", res.PlacementDuration)
	}
}

func TestFigure15Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping durability experiment in -short mode")
	}
	cfg := DefaultFigure15Config()
	cfg.Datacenters = []string{"DC-3"}
	cfg.Replications = []int{3}
	s := tinyScale()
	s.Blocks = 0.005 // 20k blocks
	s.Datacenter = 0.1
	rows, err := Figure15(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("expected stock and history rows, got %d", len(rows))
	}
	var stock, hist DurabilityRow
	for _, r := range rows {
		if r.Policy == hdfssim.PolicyStock {
			stock = r
		} else {
			hist = r
		}
	}
	if hist.LostBlocks > stock.LostBlocks {
		t.Fatalf("HDFS-H (%d lost) should not lose more than HDFS-Stock (%d lost)",
			hist.LostBlocks, stock.LostBlocks)
	}
}

func TestFigure16Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping availability experiment in -short mode")
	}
	cfg := DefaultFigure16Config()
	cfg.Utilizations = []float64{0.55}
	cfg.Replications = []int{3}
	rows, err := Figure16(tinyScale(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("expected stock and history rows, got %d", len(rows))
	}
	var stock, hist AvailabilityRow
	for _, r := range rows {
		if r.Policy == hdfssim.PolicyStock {
			stock = r
		} else {
			hist = r
		}
	}
	if hist.FailedFraction > stock.FailedFraction {
		t.Fatalf("HDFS-H (%v) should not fail more accesses than HDFS-Stock (%v)",
			hist.FailedFraction, stock.FailedFraction)
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping ablations in -short mode")
	}
	env, err := AblationEnvironmentConstraint(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if env.Default > env.Variant+1e-9 && env.Default != 0 {
		t.Errorf("strict environment constraint should not lose more than the relaxed variant: %+v", env)
	}
	res, err := AblationReserve(tinyScale(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Name == "" {
		t.Errorf("ablation should be named")
	}
}
