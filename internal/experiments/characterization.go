package experiments

import (
	"fmt"
	"time"

	"harvest/internal/signalproc"
	"harvest/internal/stats"
	"harvest/internal/tenant"
	"harvest/internal/trace"
)

// Figure1Result holds one sample trace in the time and frequency domains
// (Figure 1 shows a periodic and an unpredictable example).
type Figure1Result struct {
	Pattern           signalproc.Pattern
	TimeSeries        []float64
	Spectrum          []float64
	DominantFrequency int
}

// Figure1 generates a sample periodic and a sample unpredictable one-month
// trace and returns both domains, as in Figure 1.
func Figure1(s Scale) ([]Figure1Result, error) {
	s = s.normalized()
	_, gen, err := buildPopulation("DC-9", s)
	if err != nil {
		return nil, err
	}
	var out []Figure1Result
	for _, pattern := range []signalproc.Pattern{signalproc.PatternPeriodic, signalproc.PatternUnpredictable} {
		series := gen.GenerateUtilization(pattern)
		profile, err := signalproc.Classify(series.Values, signalproc.DefaultClassifierConfig())
		if err != nil {
			return nil, err
		}
		spectrum, err := signalproc.PowerSpectrum(series.Values)
		if err != nil {
			return nil, err
		}
		out = append(out, Figure1Result{
			Pattern:           pattern,
			TimeSeries:        series.Values,
			Spectrum:          spectrum[:200], // the figure only shows the low-frequency region
			DominantFrequency: profile.DominantFrequency,
		})
	}
	return out, nil
}

// ClassShareRow is one datacenter's class mix (Figures 2 and 3).
type ClassShareRow struct {
	Datacenter   string
	TenantShare  map[signalproc.Pattern]float64
	ServerShare  map[signalproc.Pattern]float64
	TotalTenants int
	TotalServers int
}

// Figure2And3 characterizes every datacenter: the percentage of primary
// tenants per class (Figure 2) and the percentage of servers per class
// (Figure 3).
func Figure2And3(s Scale) ([]ClassShareRow, error) {
	s = s.normalized()
	var rows []ClassShareRow
	for _, dc := range Datacenters() {
		pop, _, err := buildPopulation(dc, s)
		if err != nil {
			return nil, err
		}
		tenantShare, serverShare := pop.PatternShares()
		rows = append(rows, ClassShareRow{
			Datacenter:   dc,
			TenantShare:  tenantShare,
			ServerShare:  serverShare,
			TotalTenants: len(pop.Tenants),
			TotalServers: pop.NumServers(),
		})
	}
	return rows, nil
}

// CDFRow is one datacenter's empirical CDF (Figures 4, 5 and 6).
type CDFRow struct {
	Datacenter string
	Points     []stats.CDFPoint
}

// Figure4 returns, per representative datacenter, the CDF of the average
// number of reimages per month for each server over three years.
func Figure4(s Scale) ([]CDFRow, error) {
	return reimageCDF(s, func(pop *tenant.Population, events []trace.ReimageEvent, months float64) []float64 {
		perServer := trace.PerServerReimageRates(pop, events, months)
		out := make([]float64, 0, len(perServer))
		for _, rate := range perServer {
			out = append(out, rate)
		}
		return out
	})
}

// Figure5 returns, per representative datacenter, the CDF of the average
// number of reimages per server per month for each primary tenant.
func Figure5(s Scale) ([]CDFRow, error) {
	return reimageCDF(s, func(pop *tenant.Population, events []trace.ReimageEvent, months float64) []float64 {
		perTenant := trace.PerTenantReimageRates(pop, events, months)
		out := make([]float64, 0, len(perTenant))
		for _, rate := range perTenant {
			out = append(out, rate)
		}
		return out
	})
}

// reimageCDF runs the shared three-year reimage simulation behind Figures 4
// and 5.
func reimageCDF(s Scale, extract func(*tenant.Population, []trace.ReimageEvent, float64) []float64) ([]CDFRow, error) {
	s = s.normalized()
	const months = 36.0
	horizon := time.Duration(months * 30 * 24 * float64(time.Hour))
	var rows []CDFRow
	for _, dc := range CharacterizationDatacenters() {
		pop, gen, err := buildPopulation(dc, s)
		if err != nil {
			return nil, err
		}
		events := gen.GenerateReimageEvents(pop, horizon)
		values := extract(pop, events, months)
		rows = append(rows, CDFRow{Datacenter: dc, Points: stats.CDF(values)})
	}
	return rows, nil
}

// Figure6 returns, per representative datacenter, the CDF of how many times a
// tenant changed reimage-frequency groups month over month across three years.
func Figure6(s Scale) ([]CDFRow, error) {
	s = s.normalized()
	var rows []CDFRow
	for _, dc := range CharacterizationDatacenters() {
		pop, _, err := buildPopulation(dc, s)
		if err != nil {
			return nil, err
		}
		groups, err := trace.MonthlyGroups(pop)
		if err != nil {
			return nil, err
		}
		changes := trace.GroupChanges(groups)
		values := make([]float64, 0, len(changes))
		for _, c := range changes {
			values = append(values, float64(c))
		}
		rows = append(rows, CDFRow{Datacenter: dc, Points: stats.CDF(values)})
	}
	return rows, nil
}

// FormatCDFSummary renders the fraction of samples at or below the given
// threshold for each row, a compact way to compare against the paper's
// headline numbers (e.g. ">=90% of servers at <=1 reimage/month").
func FormatCDFSummary(rows []CDFRow, threshold float64) string {
	out := ""
	for _, row := range rows {
		frac := 0.0
		for _, p := range row.Points {
			if p.Value <= threshold {
				frac = p.Cumulative
			}
		}
		out += fmt.Sprintf("%s: %.1f%% at <= %g\n", row.Datacenter, frac*100, threshold)
	}
	return out
}
