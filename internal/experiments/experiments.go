// Package experiments contains one harness per table/figure of the paper's
// evaluation. Each harness builds its workload, runs the relevant simulation,
// and returns the same rows or series the paper reports, so the results can be
// compared shape-for-shape against the published figures (EXPERIMENTS.md keeps
// that comparison).
//
// Every harness accepts a Scale that shrinks the datacenter and workload so
// the full suite can run as ordinary `go test -bench` targets; Scale = 1
// approximates the paper's sizes.
package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"harvest/internal/cluster"
	"harvest/internal/core"
	"harvest/internal/tenant"
	"harvest/internal/trace"
	"harvest/internal/workload"
)

// Scale shrinks or grows an experiment relative to the paper's setup.
type Scale struct {
	// Datacenter multiplies the number of primary tenants per datacenter.
	Datacenter float64
	// Blocks multiplies the number of blocks in storage experiments.
	Blocks float64
	// Workload multiplies the batch workload horizon.
	Workload float64
	// Seed drives every randomized component.
	Seed int64
}

// QuickScale is small enough for unit tests and benchmarks.
func QuickScale() Scale {
	return Scale{Datacenter: 0.05, Blocks: 0.005, Workload: 0.15, Seed: 1}
}

// PaperScale approximates the paper's experiment sizes. Running the full
// suite at this scale takes considerably longer.
func PaperScale() Scale {
	return Scale{Datacenter: 1, Blocks: 1, Workload: 1, Seed: 1}
}

func (s Scale) normalized() Scale {
	if s.Datacenter <= 0 {
		s.Datacenter = 0.05
	}
	if s.Blocks <= 0 {
		s.Blocks = 0.005
	}
	if s.Workload <= 0 {
		s.Workload = 0.15
	}
	return s
}

// buildPopulation generates the tenant population of a datacenter at the
// requested scale.
func buildPopulation(dc string, s Scale) (*tenant.Population, *trace.Generator, error) {
	profile, ok := trace.ProfileByName(dc)
	if !ok {
		return nil, nil, fmt.Errorf("experiments: unknown datacenter %q", dc)
	}
	gen := trace.NewGenerator(profile.Scaled(s.Datacenter), s.Seed)
	pop, err := gen.Generate()
	if err != nil {
		return nil, nil, err
	}
	return pop, gen, nil
}

// BuildPopulation generates the tenant population of a datacenter at the
// requested scale. It is the bootstrap hook the serving layer (harvestd)
// shares with the experiment harnesses, so the daemon serves exactly the
// populations the figures are computed over.
func BuildPopulation(dc string, s Scale) (*tenant.Population, *trace.Generator, error) {
	return buildPopulation(dc, s.normalized())
}

// PlacementInfos extracts the per-tenant placement inputs (reimage rate, peak
// CPU, harvestable space, servers) from a population — the input Algorithm 2's
// 3x3 clustering works on. Shared by Figure 8 and the serving layer.
func PlacementInfos(pop *tenant.Population) []core.TenantPlacementInfo {
	infos := make([]core.TenantPlacementInfo, 0, len(pop.Tenants))
	for _, t := range pop.Tenants {
		infos = append(infos, core.TenantPlacementInfo{
			ID: t.ID, Environment: t.Environment, ReimageRate: t.ReimagesPerServerMonth,
			PeakCPU: t.PeakUtilization(), AvailableBytes: t.HarvestableBytes(), Servers: t.Servers,
		})
	}
	return infos
}

// buildCluster wraps buildPopulation with the testbed server shape.
func buildCluster(dc string, s Scale) (*cluster.Cluster, *trace.Generator, error) {
	pop, gen, err := buildPopulation(dc, s)
	if err != nil {
		return nil, nil, err
	}
	cl, err := cluster.New(pop, tenant.DefaultServerResources(), tenant.DefaultReserve())
	if err != nil {
		return nil, nil, err
	}
	return cl, gen, nil
}

// buildWorkload generates a TPC-DS-like job arrival sequence.
func buildWorkload(s Scale, horizon time.Duration, interArrival time.Duration, durationScale float64) ([]*workload.Job, error) {
	rng := rand.New(rand.NewSource(s.Seed + 1000))
	cat, err := workload.TPCDSLikeCatalogue(rng, workload.DefaultCatalogueConfig())
	if err != nil {
		return nil, err
	}
	cfg := workload.DefaultArrivalConfig(horizon)
	cfg.MeanInterArrival = interArrival
	cfg.DurationScale = durationScale
	return cat.GenerateArrivals(rng, cfg)
}

// historyScheduling builds the clustering, selector and calibrated thresholds
// for a population and workload — the full YARN-H/Tez-H configuration.
func historyScheduling(pop *tenant.Population, jobs []*workload.Job, seed int64) (*core.Clustering, *core.Selector, core.LengthThresholds, error) {
	svc := core.NewClusteringService(core.DefaultClusteringConfig())
	clustering, err := svc.Cluster(pop)
	if err != nil {
		return nil, nil, core.LengthThresholds{}, err
	}
	selector, err := core.NewSelector(core.DefaultSelectorConfig(), clustering, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, nil, core.LengthThresholds{}, err
	}
	var lastRuns []time.Duration
	for _, j := range jobs {
		lastRuns = append(lastRuns, j.LastRunDuration)
	}
	thresholds := core.CalibrateThresholds(lastRuns, core.CapacityByPattern(clustering, core.DefaultSelectorConfig()))
	return clustering, selector, thresholds, nil
}

// newRNG returns a deterministic random source for an experiment seed.
func newRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// cloneJobs deep-copies the job headers so independent simulations never share
// mutable job-manager state.
func cloneJobs(jobs []*workload.Job) []*workload.Job {
	out := make([]*workload.Job, len(jobs))
	for i, j := range jobs {
		cp := *j
		out[i] = &cp
	}
	return out
}

// Datacenters lists the datacenters used across experiments, in order.
func Datacenters() []string {
	profiles := trace.BuiltinProfiles()
	out := make([]string, len(profiles))
	for i, p := range profiles {
		out[i] = p.Name
	}
	return out
}

// CharacterizationDatacenters are the five representative datacenters the
// reimaging figures (4, 5 and 6) show.
func CharacterizationDatacenters() []string {
	return []string{"DC-0", "DC-7", "DC-9", "DC-3", "DC-1"}
}
