package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"time"

	"harvest/internal/cluster"
	"harvest/internal/core"
	"harvest/internal/latency"
	"harvest/internal/tenant"
	"harvest/internal/timeseries"
	"harvest/internal/workload"
	"harvest/internal/yarnsim"
)

// Figure7Result describes the example DAG of Figure 7.
type Figure7Result struct {
	Query              string
	Stages             int
	TotalTasks         int
	MaxConcurrentTasks int
	LevelWidths        []int
}

// Figure7 reports the breadth-first concurrency estimate for the TPC-DS
// query-19 DAG (the paper's example estimates 469 concurrent containers).
func Figure7() Figure7Result {
	dag := workload.Query19()
	levels := dag.Levels()
	widths := make([]int, len(levels))
	for i, level := range levels {
		for _, si := range level {
			widths[i] += dag.Stages[si].Tasks
		}
	}
	return Figure7Result{
		Query:              dag.Name,
		Stages:             len(dag.Stages),
		TotalTasks:         dag.TotalTasks(),
		MaxConcurrentTasks: dag.MaxConcurrentTasks(),
		LevelWidths:        widths,
	}
}

// TestbedResult is one system's outcome on the 102-server testbed experiments
// (Figures 10, 11 and 12).
type TestbedResult struct {
	System string
	// TailLatencySeries is the per-minute average of the servers'
	// 99th-percentile latencies.
	TailLatencySeries []time.Duration
	// AvgTailLatency and MaxTailLatency summarize the series.
	AvgTailLatency time.Duration
	MaxTailLatency time.Duration
	// AvgJobRuntime is the average batch job execution time.
	AvgJobRuntime time.Duration
	// CompletedJobs counts finished batch jobs.
	CompletedJobs int
	// TasksKilled counts killed task executions.
	TasksKilled int
	// AvgClusterUtilization is the average total CPU utilization.
	AvgClusterUtilization float64
	// FailedAccesses counts denied storage accesses (Figure 12 experiments).
	FailedAccesses int
}

// testbedCluster builds the 102-server testbed: 21 primary tenants from DC-9
// (13 periodic, 3 constant, 5 unpredictable) spread over 102 servers (§6.1).
func testbedCluster(seed int64) (*cluster.Cluster, *tenant.Population, error) {
	rng := rand.New(rand.NewSource(seed))
	gen := newTestbedTraceGenerator(seed)
	var tenants []*tenant.Tenant
	serverID := tenant.ServerID(0)
	addTenant := func(id int, pattern patternKind) {
		// 102 servers over 21 tenants: sizes of 4-6 servers.
		n := 4 + rng.Intn(3)
		if int(serverID)+n > 102 {
			n = 102 - int(serverID)
		}
		if n <= 0 {
			n = 1
		}
		servers := make([]tenant.ServerID, n)
		for i := range servers {
			servers[i] = serverID
			serverID++
		}
		tenants = append(tenants, &tenant.Tenant{
			ID:                        tenant.ID(id),
			Environment:               fmt.Sprintf("testbed-env-%02d", id),
			MachineFunction:           "lucene",
			Datacenter:                "DC-9-testbed",
			Servers:                   servers,
			Utilization:               gen.series(pattern),
			ReimagesPerServerMonth:    gen.reimageRate(pattern),
			HarvestableBytesPerServer: 2 << 40,
		})
	}
	id := 0
	for i := 0; i < 13; i++ {
		addTenant(id, patternPeriodic)
		id++
	}
	for i := 0; i < 3; i++ {
		addTenant(id, patternConstant)
		id++
	}
	for i := 0; i < 5; i++ {
		addTenant(id, patternUnpredictable)
		id++
	}
	pop, err := tenant.NewPopulation("DC-9-testbed", tenants)
	if err != nil {
		return nil, nil, err
	}
	if err := pop.ClassifyAll(core.DefaultClusteringConfig().Classifier); err != nil {
		return nil, nil, err
	}
	cl, err := cluster.New(pop, tenant.DefaultServerResources(), tenant.DefaultReserve())
	if err != nil {
		return nil, nil, err
	}
	return cl, pop, nil
}

// patternKind and the tiny generator below keep the testbed traces independent
// of the datacenter-scale generator so the 21-tenant mix matches §6.1 exactly.
type patternKind int

const (
	patternPeriodic patternKind = iota
	patternConstant
	patternUnpredictable
)

type testbedTraceGenerator struct {
	rng *rand.Rand
}

func newTestbedTraceGenerator(seed int64) *testbedTraceGenerator {
	return &testbedTraceGenerator{rng: rand.New(rand.NewSource(seed + 77))}
}

func (g *testbedTraceGenerator) series(kind patternKind) *timeseries.Series {
	n := timeseries.SlotsPerMonth
	values := make([]float64, n)
	base := 0.25 + g.rng.Float64()*0.15
	switch kind {
	case patternPeriodic:
		amp := 0.2 + g.rng.Float64()*0.2
		phase := g.rng.Float64() * 2 * math.Pi
		for i := range values {
			day := float64(i) / float64(timeseries.SlotsPerDay)
			values[i] = clamp01(base + amp*math.Sin(2*math.Pi*day+phase) + g.rng.NormFloat64()*0.02)
		}
	case patternConstant:
		for i := range values {
			values[i] = clamp01(base + g.rng.NormFloat64()*0.01)
		}
	default:
		level := base * 0.5
		target := level
		for i := range values {
			if g.rng.Float64() < 0.002 {
				target = clamp01(base + g.rng.Float64()*0.6)
			}
			if g.rng.Float64() < 0.004 {
				target = base * 0.4
			}
			level += (target - level) * 0.05
			values[i] = clamp01(level + g.rng.NormFloat64()*0.02)
		}
	}
	return timeseries.New(timeseries.SlotDuration, values)
}

func (g *testbedTraceGenerator) reimageRate(kind patternKind) float64 {
	switch kind {
	case patternPeriodic:
		return 0.1 + g.rng.Float64()*0.2
	case patternConstant:
		return 0.05 + g.rng.Float64()*0.1
	default:
		return 0.3 + g.rng.Float64()*0.7
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Figure10And11 runs the testbed scheduling experiment: the TPC-DS workload
// with Poisson(300 s) arrivals for five hours, under No-Harvesting,
// YARN-Stock, YARN-PT and YARN-H/Tez-H. It returns the primary tail-latency
// series (Figure 10) and the batch runtimes (Figure 11).
func Figure10And11(s Scale) ([]TestbedResult, error) {
	s = s.normalized()
	horizon := time.Duration(float64(5*time.Hour) * s.Workload)
	if horizon < 30*time.Minute {
		horizon = 30 * time.Minute
	}
	jobs, err := buildWorkload(s, horizon, 300*time.Second, 1)
	if err != nil {
		return nil, err
	}
	var results []TestbedResult

	// No-Harvesting baseline: only the primary runs.
	{
		cl, _, err := testbedCluster(s.Seed)
		if err != nil {
			return nil, err
		}
		model, err := latency.NewModel(latency.DefaultModelConfig(), s.Seed)
		if err != nil {
			return nil, err
		}
		rec := latency.NewRecorder(model)
		for now := time.Duration(0); now < horizon; now += time.Minute {
			for _, srv := range cl.ServerList() {
				rec.Observe(srv.PrimaryUtilization(now), 0, 0)
			}
			rec.Flush()
		}
		results = append(results, TestbedResult{
			System:            "No Harvesting",
			TailLatencySeries: rec.Series,
			AvgTailLatency:    rec.Average(),
			MaxTailLatency:    rec.Max(),
		})
	}

	for _, policy := range []yarnsim.Policy{yarnsim.PolicyStock, yarnsim.PolicyPT, yarnsim.PolicyHistory} {
		res, err := runTestbedScheduling(s, policy, jobs, horizon)
		if err != nil {
			return nil, err
		}
		results = append(results, res)
	}
	return results, nil
}

func runTestbedScheduling(s Scale, policy yarnsim.Policy, jobs []*workload.Job, horizon time.Duration) (TestbedResult, error) {
	cl, pop, err := testbedCluster(s.Seed)
	if err != nil {
		return TestbedResult{}, err
	}
	model, err := latency.NewModel(latency.DefaultModelConfig(), s.Seed)
	if err != nil {
		return TestbedResult{}, err
	}
	rec := latency.NewRecorder(model)

	cfg := yarnsim.DefaultConfig(policy)
	cfg.Seed = s.Seed
	cfg.HeartbeatInterval = time.Minute
	lastSample := time.Duration(-1)
	cfg.Observer = func(now time.Duration, srv *cluster.Server, secondaryCores int) {
		if now != lastSample && lastSample >= 0 {
			rec.Flush()
		}
		lastSample = now
		rec.Observe(srv.PrimaryUtilization(now), float64(secondaryCores)/float64(srv.Resources.Cores), 0)
	}
	if policy == yarnsim.PolicyHistory {
		clustering, selector, thresholds, err := historyScheduling(pop, jobs, s.Seed)
		if err != nil {
			return TestbedResult{}, err
		}
		cfg.Clustering = clustering
		cfg.Selector = selector
		cfg.Thresholds = thresholds
	}
	sim, err := yarnsim.NewSimulation(cl, cloneJobs(jobs), cfg)
	if err != nil {
		return TestbedResult{}, err
	}
	out := sim.Run(horizon)
	rec.Flush()
	return TestbedResult{
		System:                policy.String(),
		TailLatencySeries:     rec.Series,
		AvgTailLatency:        rec.Average(),
		MaxTailLatency:        rec.Max(),
		AvgJobRuntime:         out.AvgJobRuntime,
		CompletedJobs:         out.CompletedJobs,
		TasksKilled:           out.TasksKilled,
		AvgClusterUtilization: out.AvgClusterCPUUtilization,
	}, nil
}

// UtilizationSweepPoint is one point of Figures 13 and 16: a target average
// utilization and the metric measured there.
type UtilizationSweepPoint struct {
	TargetUtilization float64
	Scaling           timeseries.ScalingMethod
	// PTAvgRuntime and HistoryAvgRuntime are the average batch job runtimes
	// under YARN-PT and YARN-H/Tez-H.
	PTAvgRuntime      time.Duration
	HistoryAvgRuntime time.Duration
	// Improvement is 1 - History/PT (positive means YARN-H is faster).
	Improvement float64
	// PTKills and HistoryKills are the killed-task counts.
	PTKills      int
	HistoryKills int
}

// Figure13Config tunes the datacenter-scale scheduling sweep.
type Figure13Config struct {
	Datacenter string
	// Utilizations are the target average primary utilizations to sweep.
	Utilizations []float64
	// Scalings are the utilization scaling methods (linear and root).
	Scalings []timeseries.ScalingMethod
	// Horizon is the simulated duration (the paper simulates one month; the
	// default here is shorter and relies on the duration scaling to exercise
	// the same behaviour).
	Horizon time.Duration
	// InterArrival and DurationScale shape the batch workload.
	InterArrival  time.Duration
	DurationScale float64
	// HeartbeatInterval for the node managers.
	HeartbeatInterval time.Duration
}

// DefaultFigure13Config mirrors the DC-9 sweep with long-running scaled jobs.
func DefaultFigure13Config() Figure13Config {
	return Figure13Config{
		Datacenter:        "DC-9",
		Utilizations:      []float64{0.25, 0.35, 0.45, 0.55},
		Scalings:          []timeseries.ScalingMethod{timeseries.ScaleLinear, timeseries.ScaleRoot},
		Horizon:           24 * time.Hour,
		InterArrival:      4 * time.Minute,
		DurationScale:     20,
		HeartbeatInterval: 2 * time.Minute,
	}
}

// Figure13 sweeps the utilization spectrum on one datacenter and compares
// YARN-PT with YARN-H/Tez-H (the paper's Figure 13 shows DC-9).
func Figure13(s Scale, cfg Figure13Config) ([]UtilizationSweepPoint, error) {
	s = s.normalized()
	if cfg.Datacenter == "" {
		cfg = DefaultFigure13Config()
	}
	pop, _, err := buildPopulation(cfg.Datacenter, s)
	if err != nil {
		return nil, err
	}
	horizon := time.Duration(float64(cfg.Horizon) * s.Workload)
	if horizon < 2*time.Hour {
		horizon = 2 * time.Hour
	}
	jobs, err := buildWorkload(s, horizon, cfg.InterArrival, cfg.DurationScale)
	if err != nil {
		return nil, err
	}
	var points []UtilizationSweepPoint
	for _, scaling := range cfg.Scalings {
		for _, target := range cfg.Utilizations {
			point, err := runSweepPoint(s, pop, jobs, cfg, target, scaling, horizon)
			if err != nil {
				return nil, err
			}
			points = append(points, point)
		}
	}
	return points, nil
}

func runSweepPoint(s Scale, pop *tenant.Population, jobs []*workload.Job, cfg Figure13Config,
	target float64, scaling timeseries.ScalingMethod, horizon time.Duration) (UtilizationSweepPoint, error) {

	run := func(policy yarnsim.Policy) (*yarnsim.Result, error) {
		cl, err := cluster.New(pop, tenant.DefaultServerResources(), tenant.DefaultReserve())
		if err != nil {
			return nil, err
		}
		cl.ScaleUtilization(target, scaling)
		ycfg := yarnsim.DefaultConfig(policy)
		ycfg.Seed = s.Seed
		ycfg.HeartbeatInterval = cfg.HeartbeatInterval
		if policy == yarnsim.PolicyHistory {
			clustering, selector, thresholds, err := historyScheduling(pop, jobs, s.Seed)
			if err != nil {
				return nil, err
			}
			ycfg.Clustering = clustering
			ycfg.Selector = selector
			ycfg.Thresholds = thresholds
		}
		sim, err := yarnsim.NewSimulation(cl, cloneJobs(jobs), ycfg)
		if err != nil {
			return nil, err
		}
		return sim.Run(horizon + 2*time.Hour), nil
	}
	pt, err := run(yarnsim.PolicyPT)
	if err != nil {
		return UtilizationSweepPoint{}, err
	}
	hist, err := run(yarnsim.PolicyHistory)
	if err != nil {
		return UtilizationSweepPoint{}, err
	}
	point := UtilizationSweepPoint{
		TargetUtilization: target,
		Scaling:           scaling,
		PTAvgRuntime:      pt.AvgJobRuntime,
		HistoryAvgRuntime: hist.AvgJobRuntime,
		PTKills:           pt.TasksKilled,
		HistoryKills:      hist.TasksKilled,
	}
	if pt.AvgJobRuntime > 0 {
		point.Improvement = 1 - float64(hist.AvgJobRuntime)/float64(pt.AvgJobRuntime)
	}
	return point, nil
}

// Figure14Row summarizes one datacenter's runtime improvements across the
// utilization sweep (Figure 14 reports min, average and max per datacenter).
type Figure14Row struct {
	Datacenter     string
	Scaling        timeseries.ScalingMethod
	MinImprovement float64
	AvgImprovement float64
	MaxImprovement float64
}

// Figure14 runs the Figure 13 sweep for every datacenter and reduces each to
// min/avg/max improvement.
func Figure14(s Scale, cfg Figure13Config, datacenters []string) ([]Figure14Row, error) {
	if cfg.Datacenter == "" {
		cfg = DefaultFigure13Config()
	}
	if len(datacenters) == 0 {
		datacenters = Datacenters()
	}
	var rows []Figure14Row
	for _, dc := range datacenters {
		dcCfg := cfg
		dcCfg.Datacenter = dc
		points, err := Figure13(s, dcCfg)
		if err != nil {
			return nil, err
		}
		byScaling := map[timeseries.ScalingMethod][]float64{}
		for _, p := range points {
			byScaling[p.Scaling] = append(byScaling[p.Scaling], p.Improvement)
		}
		for scaling, improvements := range byScaling {
			row := Figure14Row{Datacenter: dc, Scaling: scaling}
			row.MinImprovement = improvements[0]
			for _, v := range improvements {
				if v < row.MinImprovement {
					row.MinImprovement = v
				}
				if v > row.MaxImprovement {
					row.MaxImprovement = v
				}
				row.AvgImprovement += v
			}
			row.AvgImprovement /= float64(len(improvements))
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// MicrobenchResult reports the §6.2 operation costs.
type MicrobenchResult struct {
	ClusteringDuration     time.Duration
	Classes                int
	ClassSelectionDuration time.Duration
	PlacementDuration      time.Duration
	// PlacementAllocsPerOp is the average number of heap allocations one
	// replica placement performs — the steady-state hot-path cost the
	// zero-allocation refactor (PR 1) drives to the single returned slice.
	PlacementAllocsPerOp float64
}

// Microbench measures the cost of the clustering service, a class selection,
// and a replica placement on the scaled DC-9 population.
func Microbench(s Scale) (*MicrobenchResult, error) {
	s = s.normalized()
	pop, _, err := buildPopulation("DC-9", s)
	if err != nil {
		return nil, err
	}
	svc := core.NewClusteringService(core.DefaultClusteringConfig())
	startCluster := time.Now()
	clustering, err := svc.Cluster(pop)
	if err != nil {
		return nil, err
	}
	clusteringTime := time.Since(startCluster)

	selector, err := core.NewSelector(core.DefaultSelectorConfig(), clustering, rand.New(rand.NewSource(s.Seed)))
	if err != nil {
		return nil, err
	}
	startSelect := time.Now()
	const selections = 1000
	for i := 0; i < selections; i++ {
		selector.Select(core.JobRequest{Type: core.JobMedium, MaxConcurrentCores: 100}, nil)
	}
	selectTime := time.Since(startSelect) / selections

	infos := make([]core.TenantPlacementInfo, 0, len(pop.Tenants))
	for _, t := range pop.Tenants {
		infos = append(infos, core.TenantPlacementInfo{
			ID: t.ID, Environment: t.Environment, ReimageRate: t.ReimagesPerServerMonth,
			PeakCPU: t.PeakUtilization(), AvailableBytes: t.HarvestableBytes(), Servers: t.Servers,
		})
	}
	scheme, err := core.BuildPlacementScheme(infos)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(s.Seed))
	var memBefore, memAfter runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	startPlace := time.Now()
	const placements = 1000
	for i := 0; i < placements; i++ {
		_, err := scheme.PlaceReplicas(rng, core.PlacementConstraints{
			Replication: 3, Writer: -1, EnforceEnvironment: true,
		})
		if err != nil {
			return nil, err
		}
	}
	placeTime := time.Since(startPlace) / placements
	runtime.ReadMemStats(&memAfter)

	return &MicrobenchResult{
		ClusteringDuration:     clusteringTime,
		Classes:                len(clustering.Classes),
		ClassSelectionDuration: selectTime,
		PlacementDuration:      placeTime,
		PlacementAllocsPerOp:   float64(memAfter.Mallocs-memBefore.Mallocs) / placements,
	}, nil
}
