package experiments

import (
	"time"

	"harvest/internal/cluster"
	"harvest/internal/core"
	"harvest/internal/hdfssim"
	"harvest/internal/latency"
	"harvest/internal/tenant"
	"harvest/internal/timeseries"
	"harvest/internal/yarnsim"
)

// Figure8Result summarizes the two-dimensional placement clustering for one
// datacenter (Figure 8 plots the tenants and an example selection).
type Figure8Result struct {
	Datacenter string
	// CellTenants[col][row] counts the tenants per cell (columns index the
	// reimage-frequency dimension, rows the peak-utilization dimension).
	CellTenants [core.PlacementGridSize][core.PlacementGridSize]int
	// CellBytes[col][row] is the harvestable space per cell.
	CellBytes [core.PlacementGridSize][core.PlacementGridSize]int64
	// SpaceImbalance is the max/min cell space ratio.
	SpaceImbalance float64
	// ExampleSelection is one three-way placement produced by Algorithm 2.
	ExampleSelection []tenant.ServerID
}

// Figure8 builds the 3x3 clustering scheme for DC-9 and reports the cell
// populations plus one example placement.
func Figure8(s Scale) (*Figure8Result, error) {
	s = s.normalized()
	pop, _, err := buildPopulation("DC-9", s)
	if err != nil {
		return nil, err
	}
	scheme, err := core.BuildPlacementScheme(PlacementInfos(pop))
	if err != nil {
		return nil, err
	}
	res := &Figure8Result{Datacenter: "DC-9", SpaceImbalance: scheme.SpaceImbalance()}
	for col := 0; col < core.PlacementGridSize; col++ {
		for row := 0; row < core.PlacementGridSize; row++ {
			res.CellTenants[col][row] = len(scheme.Cells[col][row].Tenants)
			res.CellBytes[col][row] = scheme.Cells[col][row].AvailableBytes
		}
	}
	rng := newRNG(s.Seed)
	sel, err := scheme.PlaceReplicas(rng, core.PlacementConstraints{
		Replication: 3, Writer: pop.Tenants[0].Servers[0], EnforceEnvironment: true,
	})
	if err != nil {
		return nil, err
	}
	res.ExampleSelection = sel
	return res, nil
}

// Figure12 runs the testbed storage experiment: the primary's tail latency and
// the number of failed accesses under HDFS-Stock, HDFS-PT and HDFS-H, while a
// stream of block creations and reads exercises the harvested storage.
func Figure12(s Scale) ([]TestbedResult, error) {
	s = s.normalized()
	horizon := time.Duration(float64(5*time.Hour) * s.Workload)
	if horizon < 30*time.Minute {
		horizon = 30 * time.Minute
	}
	numBlocks := int(2000 * s.Blocks * 10)
	if numBlocks < 200 {
		numBlocks = 200
	}
	accesses := numBlocks * 10

	var results []TestbedResult
	for _, policy := range []hdfssim.Policy{hdfssim.PolicyStock, hdfssim.PolicyPT, hdfssim.PolicyHistory} {
		cl, _, err := testbedCluster(s.Seed)
		if err != nil {
			return nil, err
		}
		cfg := hdfssim.DefaultConfig(policy)
		cfg.Seed = s.Seed
		fs, err := hdfssim.New(cl, cfg)
		if err != nil {
			return nil, err
		}
		model, err := latency.NewModel(latency.DefaultModelConfig(), s.Seed)
		if err != nil {
			return nil, err
		}
		rec := latency.NewRecorder(model)
		rng := newRNG(s.Seed + 5)

		// Create the blocks over the first part of the run, then read.
		failed := 0
		for i := 0; i < numBlocks; i++ {
			at := time.Duration(float64(horizon) * 0.2 * float64(i) / float64(numBlocks))
			writer := cl.ServerList()[rng.Intn(cl.NumServers())].ID
			if _, err := fs.CreateBlock(writer, at); err != nil {
				failed++
			}
		}
		for i := 0; i < accesses; i++ {
			at := time.Duration(float64(horizon) * (0.2 + 0.8*rng.Float64()))
			if !fs.Access(rng.Intn(fs.NumBlocks()), at) {
				failed++
			}
		}
		// Primary tail latency: storage pressure exists only where accesses
		// are allowed to hit busy servers (the Stock policy).
		for now := time.Duration(0); now < horizon; now += time.Minute {
			for _, srv := range cl.ServerList() {
				pressure := 0.0
				if policy == hdfssim.PolicyStock {
					// Stock keeps serving reads from busy servers, so disk and
					// CPU pressure from secondary I/O lands on the primary.
					pressure = 0.15
				} else if !srv.IsBusy(now) {
					pressure = 0.05
				}
				rec.Observe(srv.PrimaryUtilization(now), 0, pressure)
			}
			rec.Flush()
		}
		results = append(results, TestbedResult{
			System:            policy.String(),
			TailLatencySeries: rec.Series,
			AvgTailLatency:    rec.Average(),
			MaxTailLatency:    rec.Max(),
			FailedAccesses:    failed,
		})
	}
	return results, nil
}

// DurabilityRow is one bar of Figure 15: a datacenter, replication level and
// policy with its lost-block percentage.
type DurabilityRow struct {
	Datacenter   string
	Policy       hdfssim.Policy
	Replication  int
	Blocks       int
	LostBlocks   int
	LostFraction float64
}

// Figure15Config tunes the durability experiment.
type Figure15Config struct {
	Datacenters  []string
	Replications []int
	// Blocks is the number of blocks at Blocks scale 1 (the paper uses 4M).
	Blocks int
	// Horizon is the simulated period (one year in the paper).
	Horizon time.Duration
}

// DefaultFigure15Config mirrors the paper's setup.
func DefaultFigure15Config() Figure15Config {
	return Figure15Config{
		Datacenters:  CharacterizationDatacenters(),
		Replications: []int{3, 4},
		Blocks:       4_000_000,
		Horizon:      365 * 24 * time.Hour,
	}
}

// Figure15 simulates one year of reimages and reports lost blocks per
// datacenter, replication level, and policy (HDFS-Stock vs HDFS-H).
func Figure15(s Scale, cfg Figure15Config) ([]DurabilityRow, error) {
	s = s.normalized()
	if len(cfg.Datacenters) == 0 {
		cfg = DefaultFigure15Config()
	}
	numBlocks := int(float64(cfg.Blocks) * s.Blocks)
	if numBlocks < 1000 {
		numBlocks = 1000
	}
	var rows []DurabilityRow
	for _, dc := range cfg.Datacenters {
		for _, replication := range cfg.Replications {
			for _, policy := range []hdfssim.Policy{hdfssim.PolicyStock, hdfssim.PolicyHistory} {
				pop, gen, err := buildPopulation(dc, s)
				if err != nil {
					return nil, err
				}
				cl, err := cluster.New(pop, tenant.DefaultServerResources(), tenant.DefaultReserve())
				if err != nil {
					return nil, err
				}
				events := gen.GenerateReimageEvents(pop, cfg.Horizon)
				fcfg := hdfssim.DefaultConfig(policy)
				fcfg.Replication = replication
				fcfg.Seed = s.Seed
				fs, err := hdfssim.New(cl, fcfg)
				if err != nil {
					return nil, err
				}
				res, err := fs.SimulateDurability(numBlocks, events, cfg.Horizon)
				if err != nil {
					return nil, err
				}
				rows = append(rows, DurabilityRow{
					Datacenter:   dc,
					Policy:       policy,
					Replication:  replication,
					Blocks:       res.Blocks,
					LostBlocks:   res.LostBlocks,
					LostFraction: res.LostFraction,
				})
			}
		}
	}
	return rows, nil
}

// AvailabilityRow is one point of Figure 16: failed-access fraction at a
// target utilization for a policy and replication level.
type AvailabilityRow struct {
	Datacenter        string
	Policy            hdfssim.Policy
	Replication       int
	TargetUtilization float64
	FailedFraction    float64
}

// Figure16Config tunes the availability sweep.
type Figure16Config struct {
	Datacenter   string
	Utilizations []float64
	Replications []int
	Scaling      timeseries.ScalingMethod
	// Blocks and AccessesPerBlock size the experiment at scale 1.
	Blocks           int
	AccessesPerBlock int
	Horizon          time.Duration
}

// DefaultFigure16Config mirrors the paper's linear-scaling sweep on DC-9.
func DefaultFigure16Config() Figure16Config {
	return Figure16Config{
		Datacenter:       "DC-9",
		Utilizations:     []float64{0.3, 0.4, 0.5, 0.6, 0.7},
		Replications:     []int{3, 4},
		Scaling:          timeseries.ScaleLinear,
		Blocks:           200_000,
		AccessesPerBlock: 5,
		Horizon:          30 * 24 * time.Hour,
	}
}

// Figure16 sweeps the utilization spectrum and reports failed accesses for
// HDFS-Stock and HDFS-H at each replication level.
func Figure16(s Scale, cfg Figure16Config) ([]AvailabilityRow, error) {
	s = s.normalized()
	if cfg.Datacenter == "" {
		cfg = DefaultFigure16Config()
	}
	numBlocks := int(float64(cfg.Blocks) * s.Blocks)
	if numBlocks < 500 {
		numBlocks = 500
	}
	accesses := numBlocks * cfg.AccessesPerBlock
	var rows []AvailabilityRow
	for _, target := range cfg.Utilizations {
		for _, replication := range cfg.Replications {
			for _, policy := range []hdfssim.Policy{hdfssim.PolicyStock, hdfssim.PolicyHistory} {
				pop, _, err := buildPopulation(cfg.Datacenter, s)
				if err != nil {
					return nil, err
				}
				cl, err := cluster.New(pop, tenant.DefaultServerResources(), tenant.DefaultReserve())
				if err != nil {
					return nil, err
				}
				cl.ScaleUtilization(target, cfg.Scaling)
				fcfg := hdfssim.DefaultConfig(policy)
				fcfg.Replication = replication
				fcfg.Seed = s.Seed
				fs, err := hdfssim.New(cl, fcfg)
				if err != nil {
					return nil, err
				}
				res, err := fs.SimulateAvailability(numBlocks, accesses, cfg.Horizon)
				if err != nil {
					return nil, err
				}
				rows = append(rows, AvailabilityRow{
					Datacenter:        cfg.Datacenter,
					Policy:            policy,
					Replication:       replication,
					TargetUtilization: target,
					FailedFraction:    res.FailedFraction,
				})
			}
		}
	}
	return rows, nil
}

// AblationResult compares a design choice against the paper's default.
type AblationResult struct {
	Name    string
	Default float64
	Variant float64
}

// AblationEnvironmentConstraint quantifies the production "space versus
// diversity" tradeoff (§7): durability with and without the one-replica-per-
// environment constraint.
func AblationEnvironmentConstraint(s Scale) (*AblationResult, error) {
	s = s.normalized()
	horizon := 365 * 24 * time.Hour
	run := func(enforce bool) (float64, error) {
		pop, gen, err := buildPopulation("DC-3", s)
		if err != nil {
			return 0, err
		}
		cl, err := cluster.New(pop, tenant.DefaultServerResources(), tenant.DefaultReserve())
		if err != nil {
			return 0, err
		}
		events := gen.GenerateReimageEvents(pop, horizon)
		cfg := hdfssim.DefaultConfig(hdfssim.PolicyHistory)
		cfg.EnforceEnvironment = enforce
		cfg.Seed = s.Seed
		fs, err := hdfssim.New(cl, cfg)
		if err != nil {
			return 0, err
		}
		numBlocks := int(20000 * s.Blocks * 200)
		if numBlocks < 2000 {
			numBlocks = 2000
		}
		res, err := fs.SimulateDurability(numBlocks, events, horizon)
		if err != nil {
			return 0, err
		}
		return res.LostFraction, nil
	}
	strict, err := run(true)
	if err != nil {
		return nil, err
	}
	relaxed, err := run(false)
	if err != nil {
		return nil, err
	}
	return &AblationResult{Name: "environment constraint (strict vs relaxed)", Default: strict, Variant: relaxed}, nil
}

// AblationReserve quantifies the effect of the resource reserve size on kills
// under YARN-PT (larger reserves leave less to harvest but kill less).
func AblationReserve(s Scale, reserveCores int) (*AblationResult, error) {
	s = s.normalized()
	pop, _, err := buildPopulation("DC-9", s)
	if err != nil {
		return nil, err
	}
	horizon := 6 * time.Hour
	jobs, err := buildWorkload(s, horizon, 2*time.Minute, 8)
	if err != nil {
		return nil, err
	}
	run := func(reserve tenant.Reserve) (float64, error) {
		cl, err := cluster.New(pop, tenant.DefaultServerResources(), reserve)
		if err != nil {
			return 0, err
		}
		cl.ScaleUtilization(0.45, timeseries.ScaleLinear)
		cfg := yarnsim.DefaultConfig(yarnsim.PolicyPT)
		cfg.Seed = s.Seed
		cfg.HeartbeatInterval = 2 * time.Minute
		sim, err := yarnsim.NewSimulation(cl, cloneJobs(jobs), cfg)
		if err != nil {
			return 0, err
		}
		res := sim.Run(horizon + time.Hour)
		return float64(res.TasksKilled), nil
	}
	def, err := run(tenant.DefaultReserve())
	if err != nil {
		return nil, err
	}
	variant, err := run(tenant.Reserve{Cores: reserveCores, MemoryMB: 10 * 1024})
	if err != nil {
		return nil, err
	}
	return &AblationResult{Name: "reserve size (kills)", Default: def, Variant: variant}, nil
}
