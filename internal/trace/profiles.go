// Package trace synthesizes AutoPilot-like telemetry for ten datacenters:
// per-tenant CPU utilization traces and disk reimaging histories.
//
// The paper characterizes ten production datacenters (§3) but cannot publish
// the raw telemetry. This package substitutes a generator whose statistical
// structure follows the published characterization:
//
//   - most primary tenants are (roughly) constant, a small minority is
//     periodic, yet the periodic tenants own ~40% of servers (Figs 2 and 3);
//   - ~75% of servers run predictable (periodic or constant) tenants;
//   - reimage rates are low on average (>=90% of servers and >=80% of tenants
//     at or below one reimage/month) with a heavy tail, and diverse across
//     tenants (Figs 4 and 5);
//   - tenants keep their relative reimage-frequency rank month over month
//     (>=80% change groups at most 8 times out of 35, Fig 6);
//   - some datacenters (DC-0, DC-2) show little temporal utilization
//     variation while others (DC-1, DC-4) vary a lot (Fig 14's spread).
package trace

// DatacenterProfile describes the statistical shape of one datacenter's
// primary tenant population. The ten built-in profiles are calibrated so the
// characterization experiments reproduce the paper's figures qualitatively.
type DatacenterProfile struct {
	// Name is the datacenter identifier, e.g. "DC-9".
	Name string

	// NumTenants is the number of primary tenants to generate.
	NumTenants int

	// ServersPerTenantMean controls tenant size. Periodic (user-facing)
	// tenants are additionally inflated by PeriodicServerMultiplier so that a
	// small number of periodic tenants still owns a large share of servers.
	ServersPerTenantMean      float64
	PeriodicServerMultiplier  float64
	ServersPerTenantDispersal float64 // lognormal sigma for tenant sizes

	// TenantClassMix gives the fraction of tenants per pattern
	// (periodic, constant, unpredictable). Must sum to ~1.
	PeriodicTenantFraction      float64
	ConstantTenantFraction      float64
	UnpredictableTenantFraction float64

	// UtilizationVariation scales the amplitude of periodic swings and the
	// burstiness of unpredictable tenants. DC-0/DC-2 are low, DC-1/DC-4 high.
	UtilizationVariation float64

	// BaseUtilizationMean/Spread control average utilization levels.
	BaseUtilizationMean   float64
	BaseUtilizationSpread float64

	// Reimage behaviour. Rates are reimages per server per month drawn from a
	// lognormal-like distribution with the given median and tail factor, so a
	// small fraction of tenants reimages frequently.
	ReimageMedianPerServerMonth float64
	ReimageTailFactor           float64
	// ReimageCorrelation is the probability that a reimage event affects a
	// large batch of a tenant's servers at once (repurposing, §3.3).
	ReimageCorrelation float64
	// ReimageRankStability in [0,1] controls how strongly a tenant's monthly
	// reimage rate tracks its long-term rate (1 = perfectly stable ranks).
	ReimageRankStability float64

	// HarvestableBytesPerServer is the storage each server exposes.
	HarvestableBytesPerServer int64
}

// defaultHarvestableBytes is 2 TB per server.
const defaultHarvestableBytes = int64(2) << 40

// BuiltinProfiles returns the ten datacenter profiles DC-0 … DC-9. DC-9 is
// the datacenter the paper scales down for its testbed experiments.
func BuiltinProfiles() []DatacenterProfile {
	return []DatacenterProfile{
		{
			Name: "DC-0", NumTenants: 300,
			ServersPerTenantMean: 14, PeriodicServerMultiplier: 6, ServersPerTenantDispersal: 0.9,
			PeriodicTenantFraction: 0.10, ConstantTenantFraction: 0.72, UnpredictableTenantFraction: 0.18,
			UtilizationVariation: 0.35, BaseUtilizationMean: 0.30, BaseUtilizationSpread: 0.10,
			ReimageMedianPerServerMonth: 0.08, ReimageTailFactor: 2.2, ReimageCorrelation: 0.25,
			ReimageRankStability: 0.85, HarvestableBytesPerServer: defaultHarvestableBytes,
		},
		{
			Name: "DC-1", NumTenants: 450,
			ServersPerTenantMean: 12, PeriodicServerMultiplier: 7, ServersPerTenantDispersal: 1.0,
			PeriodicTenantFraction: 0.16, ConstantTenantFraction: 0.60, UnpredictableTenantFraction: 0.24,
			UtilizationVariation: 0.95, BaseUtilizationMean: 0.28, BaseUtilizationSpread: 0.12,
			ReimageMedianPerServerMonth: 0.20, ReimageTailFactor: 3.0, ReimageCorrelation: 0.35,
			ReimageRankStability: 0.80, HarvestableBytesPerServer: defaultHarvestableBytes,
		},
		{
			Name: "DC-2", NumTenants: 260,
			ServersPerTenantMean: 16, PeriodicServerMultiplier: 5, ServersPerTenantDispersal: 0.8,
			PeriodicTenantFraction: 0.09, ConstantTenantFraction: 0.76, UnpredictableTenantFraction: 0.15,
			UtilizationVariation: 0.30, BaseUtilizationMean: 0.34, BaseUtilizationSpread: 0.08,
			ReimageMedianPerServerMonth: 0.12, ReimageTailFactor: 2.4, ReimageCorrelation: 0.30,
			ReimageRankStability: 0.84, HarvestableBytesPerServer: defaultHarvestableBytes,
		},
		{
			Name: "DC-3", NumTenants: 520,
			ServersPerTenantMean: 11, PeriodicServerMultiplier: 6, ServersPerTenantDispersal: 1.1,
			PeriodicTenantFraction: 0.13, ConstantTenantFraction: 0.62, UnpredictableTenantFraction: 0.25,
			UtilizationVariation: 0.70, BaseUtilizationMean: 0.27, BaseUtilizationSpread: 0.12,
			ReimageMedianPerServerMonth: 0.30, ReimageTailFactor: 3.4, ReimageCorrelation: 0.40,
			ReimageRankStability: 0.78, HarvestableBytesPerServer: defaultHarvestableBytes,
		},
		{
			Name: "DC-4", NumTenants: 400,
			ServersPerTenantMean: 13, PeriodicServerMultiplier: 7, ServersPerTenantDispersal: 1.0,
			PeriodicTenantFraction: 0.15, ConstantTenantFraction: 0.58, UnpredictableTenantFraction: 0.27,
			UtilizationVariation: 0.90, BaseUtilizationMean: 0.29, BaseUtilizationSpread: 0.13,
			ReimageMedianPerServerMonth: 0.22, ReimageTailFactor: 2.8, ReimageCorrelation: 0.35,
			ReimageRankStability: 0.80, HarvestableBytesPerServer: defaultHarvestableBytes,
		},
		{
			Name: "DC-5", NumTenants: 340,
			ServersPerTenantMean: 12, PeriodicServerMultiplier: 6, ServersPerTenantDispersal: 0.9,
			PeriodicTenantFraction: 0.12, ConstantTenantFraction: 0.66, UnpredictableTenantFraction: 0.22,
			UtilizationVariation: 0.55, BaseUtilizationMean: 0.31, BaseUtilizationSpread: 0.10,
			ReimageMedianPerServerMonth: 0.18, ReimageTailFactor: 2.6, ReimageCorrelation: 0.30,
			ReimageRankStability: 0.82, HarvestableBytesPerServer: defaultHarvestableBytes,
		},
		{
			Name: "DC-6", NumTenants: 280,
			ServersPerTenantMean: 15, PeriodicServerMultiplier: 5, ServersPerTenantDispersal: 0.9,
			PeriodicTenantFraction: 0.11, ConstantTenantFraction: 0.70, UnpredictableTenantFraction: 0.19,
			UtilizationVariation: 0.50, BaseUtilizationMean: 0.33, BaseUtilizationSpread: 0.09,
			ReimageMedianPerServerMonth: 0.15, ReimageTailFactor: 2.5, ReimageCorrelation: 0.28,
			ReimageRankStability: 0.83, HarvestableBytesPerServer: defaultHarvestableBytes,
		},
		{
			Name: "DC-7", NumTenants: 480,
			ServersPerTenantMean: 10, PeriodicServerMultiplier: 7, ServersPerTenantDispersal: 1.1,
			PeriodicTenantFraction: 0.14, ConstantTenantFraction: 0.61, UnpredictableTenantFraction: 0.25,
			UtilizationVariation: 0.65, BaseUtilizationMean: 0.28, BaseUtilizationSpread: 0.12,
			ReimageMedianPerServerMonth: 0.10, ReimageTailFactor: 2.3, ReimageCorrelation: 0.26,
			ReimageRankStability: 0.86, HarvestableBytesPerServer: defaultHarvestableBytes,
		},
		{
			Name: "DC-8", NumTenants: 360,
			ServersPerTenantMean: 13, PeriodicServerMultiplier: 6, ServersPerTenantDispersal: 1.0,
			PeriodicTenantFraction: 0.12, ConstantTenantFraction: 0.64, UnpredictableTenantFraction: 0.24,
			UtilizationVariation: 0.60, BaseUtilizationMean: 0.30, BaseUtilizationSpread: 0.11,
			ReimageMedianPerServerMonth: 0.24, ReimageTailFactor: 2.9, ReimageCorrelation: 0.33,
			ReimageRankStability: 0.80, HarvestableBytesPerServer: defaultHarvestableBytes,
		},
		{
			Name: "DC-9", NumTenants: 420,
			ServersPerTenantMean: 12, PeriodicServerMultiplier: 7, ServersPerTenantDispersal: 1.0,
			PeriodicTenantFraction: 0.13, ConstantTenantFraction: 0.63, UnpredictableTenantFraction: 0.24,
			UtilizationVariation: 0.75, BaseUtilizationMean: 0.30, BaseUtilizationSpread: 0.11,
			ReimageMedianPerServerMonth: 0.16, ReimageTailFactor: 2.7, ReimageCorrelation: 0.30,
			ReimageRankStability: 0.82, HarvestableBytesPerServer: defaultHarvestableBytes,
		},
	}
}

// ProfileByName returns the built-in profile with the given name, or false.
func ProfileByName(name string) (DatacenterProfile, bool) {
	for _, p := range BuiltinProfiles() {
		if p.Name == name {
			return p, true
		}
	}
	return DatacenterProfile{}, false
}

// Scaled returns a copy of the profile with the tenant count multiplied by
// factor (at least 1 tenant). Used to shrink datacenters for fast tests and
// to scale them up for durability simulations.
func (p DatacenterProfile) Scaled(factor float64) DatacenterProfile {
	out := p
	out.NumTenants = int(float64(p.NumTenants) * factor)
	if out.NumTenants < 1 {
		out.NumTenants = 1
	}
	return out
}
