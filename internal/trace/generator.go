package trace

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"harvest/internal/signalproc"
	"harvest/internal/stats"
	"harvest/internal/tenant"
	"harvest/internal/timeseries"
)

// Generator synthesizes a primary tenant population from a datacenter profile.
type Generator struct {
	Profile DatacenterProfile
	rng     *rand.Rand
}

// NewGenerator creates a generator with a deterministic seed.
func NewGenerator(profile DatacenterProfile, seed int64) *Generator {
	return &Generator{Profile: profile, rng: rand.New(rand.NewSource(seed))}
}

// Generate produces the tenant population for the profile, with one-month
// utilization traces (2-minute slots), classified profiles, reimage rates,
// and a 36-month reimage-rate history.
func (g *Generator) Generate() (*tenant.Population, error) {
	p := g.Profile
	if p.NumTenants <= 0 {
		return nil, fmt.Errorf("trace: profile %q has no tenants", p.Name)
	}
	total := p.PeriodicTenantFraction + p.ConstantTenantFraction + p.UnpredictableTenantFraction
	if total <= 0 {
		return nil, fmt.Errorf("trace: profile %q has a zero tenant-class mix", p.Name)
	}

	tenants := make([]*tenant.Tenant, 0, p.NumTenants)
	nextServer := tenant.ServerID(0)
	for i := 0; i < p.NumTenants; i++ {
		pattern := g.samplePattern()
		numServers := g.sampleServerCount(pattern)
		servers := make([]tenant.ServerID, numServers)
		for s := range servers {
			servers[s] = nextServer
			nextServer++
		}
		series := g.GenerateUtilization(pattern)
		longTermRate := g.sampleReimageRate()
		t := &tenant.Tenant{
			ID:                        tenant.ID(i),
			Environment:               fmt.Sprintf("%s-env-%03d", p.Name, i),
			MachineFunction:           fmt.Sprintf("mf-%d", i%17),
			Datacenter:                p.Name,
			Servers:                   servers,
			Utilization:               series,
			ReimagesPerServerMonth:    longTermRate,
			MonthlyReimageRates:       g.monthlyRates(longTermRate, 36),
			HarvestableBytesPerServer: p.HarvestableBytesPerServer,
		}
		if err := t.Classify(signalproc.DefaultClassifierConfig()); err != nil {
			return nil, fmt.Errorf("trace: classifying generated tenant %d: %w", i, err)
		}
		tenants = append(tenants, t)
	}
	return tenant.NewPopulation(p.Name, tenants)
}

// samplePattern draws a tenant pattern according to the profile's mix.
func (g *Generator) samplePattern() signalproc.Pattern {
	p := g.Profile
	weights := []float64{p.ConstantTenantFraction, p.PeriodicTenantFraction, p.UnpredictableTenantFraction}
	idx := stats.WeightedChoice(g.rng, weights)
	switch idx {
	case 1:
		return signalproc.PatternPeriodic
	case 2:
		return signalproc.PatternUnpredictable
	default:
		return signalproc.PatternConstant
	}
}

// sampleServerCount draws a tenant size; periodic tenants are larger so a
// small fraction of periodic tenants owns ~40% of the servers (Figs 2 & 3).
func (g *Generator) sampleServerCount(pattern signalproc.Pattern) int {
	p := g.Profile
	mean := p.ServersPerTenantMean
	if pattern == signalproc.PatternPeriodic {
		mean *= p.PeriodicServerMultiplier
	}
	sigma := p.ServersPerTenantDispersal
	if sigma <= 0 {
		sigma = 0.8
	}
	// Lognormal with the requested mean: mu = ln(mean) - sigma^2/2.
	mu := math.Log(mean) - sigma*sigma/2
	n := int(math.Round(stats.LogNormal(g.rng, mu, sigma)))
	if n < 1 {
		n = 1
	}
	return n
}

// GenerateUtilization creates a one-month, 2-minute-slot utilization trace for
// the given pattern, shaped by the profile's base utilization and variation.
func (g *Generator) GenerateUtilization(pattern signalproc.Pattern) *timeseries.Series {
	n := timeseries.SlotsPerMonth
	base := stats.Clamp(g.Profile.BaseUtilizationMean+g.rng.NormFloat64()*g.Profile.BaseUtilizationSpread, 0.1, 0.9)
	variation := g.Profile.UtilizationVariation
	values := make([]float64, n)
	switch pattern {
	case signalproc.PatternPeriodic:
		g.fillPeriodic(values, base, variation)
	case signalproc.PatternUnpredictable:
		g.fillUnpredictable(values, base, variation)
	default:
		g.fillConstant(values, base)
	}
	s := timeseries.New(timeseries.SlotDuration, values)
	return s.ClampUnit()
}

// fillPeriodic writes a diurnal cycle with a weekly modulation, per-slot noise
// and a mild load trend — the shape of user-facing services (Fig 1a).
func (g *Generator) fillPeriodic(values []float64, base, variation float64) {
	n := len(values)
	amplitude := stats.Clamp(0.15+0.35*variation, 0.05, 0.45)
	weekly := 0.08 * variation
	phase := g.rng.Float64() * 2 * math.Pi
	noise := 0.02 + 0.02*variation
	slotsPerDay := float64(timeseries.SlotsPerDay)
	for i := range values {
		day := float64(i) / slotsPerDay
		diurnal := math.Sin(2*math.Pi*day + phase)
		weeklyMod := math.Sin(2 * math.Pi * day / 7)
		values[i] = base + amplitude*diurnal + weekly*weeklyMod + g.rng.NormFloat64()*noise
	}
	_ = n
}

// fillConstant writes a flat series with small noise and occasional tiny steps
// (deployments), the behaviour of crawlers and scrubbers. The noise and steps
// stay proportional to the base level so the coefficient of variation remains
// well below the classifier's constant threshold.
func (g *Generator) fillConstant(values []float64, base float64) {
	noise := 0.02 * base
	level := base
	for i := range values {
		if g.rng.Float64() < 0.0003 { // a couple of small level shifts per month
			level = stats.Clamp(base*(1+g.rng.NormFloat64()*0.05), 0.05, 0.95)
		}
		values[i] = level + g.rng.NormFloat64()*noise
	}
}

// fillUnpredictable writes rare large bursts over a low baseline with
// exponential decay — development/testing behaviour (Fig 1c). Burst arrivals
// are aperiodic and burst lengths vary widely, so the spectral energy is
// spread over many low-frequency bins instead of concentrating in one peak.
func (g *Generator) fillUnpredictable(values []float64, base, variation float64) {
	level := base * 0.4
	target := level
	burstProb := 0.0015 + 0.003*variation
	decay := 0.03 + 0.05*g.rng.Float64()
	for i := range values {
		if g.rng.Float64() < burstProb {
			target = stats.Clamp(base+g.rng.Float64()*(0.3+0.6*variation), 0, 0.98)
			decay = 0.02 + 0.08*g.rng.Float64() // each burst rises/falls at its own pace
		}
		if g.rng.Float64() < 0.004 {
			target = base * (0.2 + 0.4*g.rng.Float64())
		}
		level += (target - level) * decay
		values[i] = level + g.rng.NormFloat64()*0.02
	}
}

// sampleReimageRate draws a long-term reimage rate (reimages/server/month)
// from a heavy-tailed distribution around the profile median.
func (g *Generator) sampleReimageRate() float64 {
	p := g.Profile
	median := p.ReimageMedianPerServerMonth
	if median <= 0 {
		median = 0.1
	}
	tail := p.ReimageTailFactor
	if tail <= 1 {
		tail = 2
	}
	// Lognormal with the requested median; sigma grows with the tail factor.
	sigma := math.Log(tail)
	rate := stats.LogNormal(g.rng, math.Log(median), sigma)
	return math.Min(rate, 6) // clip absurd tails
}

// monthlyRates derives a per-month reimage-rate history that preserves the
// tenant's long-term rank with the profile's stability: each month is a small
// multiplicative perturbation of the long-term rate, with an occasional
// independent redraw (a re-deployment or robustness-testing campaign).
func (g *Generator) monthlyRates(longTerm float64, months int) []float64 {
	stability := stats.Clamp(g.Profile.ReimageRankStability, 0, 1)
	jitterSigma := 0.5 * (1 - stability)
	redrawProb := 0.25 * (1 - stability)
	out := make([]float64, months)
	for m := range out {
		if stats.Bernoulli(g.rng, redrawProb) {
			out[m] = g.sampleReimageRate()
			continue
		}
		out[m] = longTerm * math.Exp(g.rng.NormFloat64()*jitterSigma)
	}
	return out
}

// ReimageEvent is a single disk reimage of one server.
type ReimageEvent struct {
	Server tenant.ServerID
	Tenant tenant.ID
	// At is the offset from the start of the simulated period.
	At time.Duration
}

// GenerateReimageEvents produces the reimage events for the population over
// the given horizon, honouring each tenant's reimage rate and the profile's
// correlation (batch reimages that hit many of a tenant's servers at once,
// e.g. repurposing). Events are returned sorted by time.
func (g *Generator) GenerateReimageEvents(pop *tenant.Population, horizon time.Duration) []ReimageEvent {
	const month = 30 * 24 * time.Hour
	months := float64(horizon) / float64(month)
	var events []ReimageEvent
	for _, t := range pop.Tenants {
		if len(t.Servers) == 0 {
			continue
		}
		expectedTotal := t.ReimagesPerServerMonth * float64(len(t.Servers)) * months
		// Split the expected volume between correlated batches and independent
		// single-server reimages.
		correlatedShare := stats.Clamp(g.Profile.ReimageCorrelation, 0, 0.9)
		independent := expectedTotal * (1 - correlatedShare)
		correlated := expectedTotal * correlatedShare

		// Independent reimages: Poisson count, uniform times, random servers.
		for i := 0; i < stats.Poisson(g.rng, independent); i++ {
			s := t.Servers[g.rng.Intn(len(t.Servers))]
			events = append(events, ReimageEvent{
				Server: s,
				Tenant: t.ID,
				At:     time.Duration(g.rng.Float64() * float64(horizon)),
			})
		}
		// Correlated batches: each batch reimages a contiguous large fraction
		// of the tenant's servers within a short window.
		for correlated > 0.5 {
			batchSize := int(stats.Clamp(float64(len(t.Servers))*(0.3+0.6*g.rng.Float64()), 1, float64(len(t.Servers))))
			start := time.Duration(g.rng.Float64() * float64(horizon))
			window := time.Duration(30+g.rng.Intn(90)) * time.Minute
			offset := g.rng.Intn(len(t.Servers))
			for b := 0; b < batchSize; b++ {
				s := t.Servers[(offset+b)%len(t.Servers)]
				events = append(events, ReimageEvent{
					Server: s,
					Tenant: t.ID,
					At:     start + time.Duration(g.rng.Float64()*float64(window)),
				})
			}
			correlated -= float64(batchSize)
		}
	}
	sortEvents(events)
	return events
}

func sortEvents(events []ReimageEvent) {
	// Simple insertion-friendly sort via sort.Slice equivalent without extra
	// imports would be fine, but use the stdlib for clarity.
	for i := 1; i < len(events); i++ {
		j := i
		for j > 0 && events[j].At < events[j-1].At {
			events[j], events[j-1] = events[j-1], events[j]
			j--
		}
	}
}

// PerServerReimageRates returns, for every server in the population, its
// average reimages/month over the horizon implied by the events (the Fig 4
// sample). horizonMonths must be positive.
func PerServerReimageRates(pop *tenant.Population, events []ReimageEvent, horizonMonths float64) map[tenant.ServerID]float64 {
	out := make(map[tenant.ServerID]float64, pop.NumServers())
	for _, id := range pop.ServerIDs() {
		out[id] = 0
	}
	if horizonMonths <= 0 {
		return out
	}
	for _, e := range events {
		out[e.Server]++
	}
	for id := range out {
		out[id] /= horizonMonths
	}
	return out
}

// PerTenantReimageRates returns, for every tenant, its average reimages per
// server per month over the horizon implied by the events (the Fig 5 sample).
func PerTenantReimageRates(pop *tenant.Population, events []ReimageEvent, horizonMonths float64) map[tenant.ID]float64 {
	counts := make(map[tenant.ID]float64, len(pop.Tenants))
	for _, t := range pop.Tenants {
		counts[t.ID] = 0
	}
	if horizonMonths <= 0 {
		return counts
	}
	for _, e := range events {
		counts[e.Tenant]++
	}
	for _, t := range pop.Tenants {
		if len(t.Servers) == 0 {
			continue
		}
		counts[t.ID] /= float64(len(t.Servers)) * horizonMonths
	}
	return counts
}
