package trace

import (
	"math"
	"testing"
	"time"

	"harvest/internal/signalproc"
	"harvest/internal/stats"
	"harvest/internal/tenant"
)

// smallProfile shrinks DC-9 so tests run quickly.
func smallProfile(t *testing.T) DatacenterProfile {
	t.Helper()
	p, ok := ProfileByName("DC-9")
	if !ok {
		t.Fatal("DC-9 profile missing")
	}
	return p.Scaled(0.1) // ~42 tenants
}

func TestBuiltinProfiles(t *testing.T) {
	profiles := BuiltinProfiles()
	if len(profiles) != 10 {
		t.Fatalf("expected 10 built-in profiles, got %d", len(profiles))
	}
	names := map[string]bool{}
	for _, p := range profiles {
		if names[p.Name] {
			t.Errorf("duplicate profile name %q", p.Name)
		}
		names[p.Name] = true
		mix := p.PeriodicTenantFraction + p.ConstantTenantFraction + p.UnpredictableTenantFraction
		if math.Abs(mix-1) > 0.01 {
			t.Errorf("%s class mix sums to %v, want ~1", p.Name, mix)
		}
		if p.NumTenants <= 0 {
			t.Errorf("%s has no tenants", p.Name)
		}
		if p.ConstantTenantFraction <= p.PeriodicTenantFraction {
			t.Errorf("%s should have more constant than periodic tenants (Fig 2)", p.Name)
		}
	}
}

func TestProfileByName(t *testing.T) {
	if _, ok := ProfileByName("DC-3"); !ok {
		t.Errorf("DC-3 should exist")
	}
	if _, ok := ProfileByName("DC-99"); ok {
		t.Errorf("DC-99 should not exist")
	}
}

func TestScaled(t *testing.T) {
	p, _ := ProfileByName("DC-0")
	small := p.Scaled(0.01)
	if small.NumTenants < 1 {
		t.Fatalf("scaled profile must keep at least one tenant")
	}
	tiny := p.Scaled(0)
	if tiny.NumTenants != 1 {
		t.Fatalf("zero scaling should clamp to 1 tenant, got %d", tiny.NumTenants)
	}
}

func TestGenerateErrorsOnBadProfile(t *testing.T) {
	g := NewGenerator(DatacenterProfile{Name: "bad", NumTenants: 0}, 1)
	if _, err := g.Generate(); err == nil {
		t.Fatalf("zero tenants should error")
	}
	g = NewGenerator(DatacenterProfile{Name: "bad", NumTenants: 5}, 1)
	if _, err := g.Generate(); err == nil {
		t.Fatalf("zero class mix should error")
	}
}

func TestGeneratePopulationShape(t *testing.T) {
	g := NewGenerator(smallProfile(t), 42)
	pop, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(pop.Tenants) != g.Profile.NumTenants {
		t.Fatalf("generated %d tenants, want %d", len(pop.Tenants), g.Profile.NumTenants)
	}
	for _, tn := range pop.Tenants {
		if tn.NumServers() < 1 {
			t.Fatalf("tenant %v has no servers", tn.ID)
		}
		if tn.Utilization.Len() != 21600 {
			t.Fatalf("utilization length = %d, want 21600", tn.Utilization.Len())
		}
		if tn.Utilization.Peak() > 1 || tn.Utilization.Min() < 0 {
			t.Fatalf("utilization out of [0,1]")
		}
		if tn.ReimagesPerServerMonth < 0 {
			t.Fatalf("negative reimage rate")
		}
		if len(tn.MonthlyReimageRates) != 36 {
			t.Fatalf("monthly history length = %d, want 36", len(tn.MonthlyReimageRates))
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := smallProfile(t)
	a, err := NewGenerator(p, 7).Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewGenerator(p, 7).Generate()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Tenants {
		if a.Tenants[i].NumServers() != b.Tenants[i].NumServers() {
			t.Fatalf("server counts differ for the same seed")
		}
		if a.Tenants[i].ReimagesPerServerMonth != b.Tenants[i].ReimagesPerServerMonth {
			t.Fatalf("reimage rates differ for the same seed")
		}
		if a.Tenants[i].Utilization.Values[100] != b.Tenants[i].Utilization.Values[100] {
			t.Fatalf("utilization traces differ for the same seed")
		}
	}
}

func TestGenerateClassMixMatchesCharacterization(t *testing.T) {
	// Use a larger slice of DC-9 so the statistics are stable.
	p, _ := ProfileByName("DC-9")
	p = p.Scaled(0.5)
	g := NewGenerator(p, 11)
	pop, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	tenantShare, serverShare := pop.PatternShares()
	// Fig 2: periodic tenants are a small minority; constants dominate.
	if tenantShare[signalproc.PatternPeriodic] > 0.35 {
		t.Errorf("periodic tenant share = %v, expected a small minority", tenantShare[signalproc.PatternPeriodic])
	}
	if tenantShare[signalproc.PatternConstant] < 0.4 {
		t.Errorf("constant tenant share = %v, expected the majority", tenantShare[signalproc.PatternConstant])
	}
	// Fig 3: periodic tenants own a much larger share of servers than of tenants.
	if serverShare[signalproc.PatternPeriodic] < tenantShare[signalproc.PatternPeriodic] {
		t.Errorf("periodic server share (%v) should exceed tenant share (%v)",
			serverShare[signalproc.PatternPeriodic], tenantShare[signalproc.PatternPeriodic])
	}
	// ~75% of servers should be predictable (periodic + constant).
	predictable := serverShare[signalproc.PatternPeriodic] + serverShare[signalproc.PatternConstant]
	if predictable < 0.55 {
		t.Errorf("predictable server share = %v, expected a strong majority", predictable)
	}
}

func TestGenerateUtilizationPatternsClassifyCorrectly(t *testing.T) {
	g := NewGenerator(smallProfile(t), 3)
	correct := 0
	const trials = 30
	for i := 0; i < trials; i++ {
		for _, want := range []signalproc.Pattern{
			signalproc.PatternPeriodic, signalproc.PatternConstant, signalproc.PatternUnpredictable,
		} {
			s := g.GenerateUtilization(want)
			got, err := signalproc.Classify(s.Values, signalproc.DefaultClassifierConfig())
			if err != nil {
				t.Fatal(err)
			}
			if got.Pattern == want {
				correct++
			}
		}
	}
	// The generator and classifier should agree for the vast majority of
	// traces (a small overlap between classes is realistic and fine).
	if frac := float64(correct) / float64(trials*3); frac < 0.8 {
		t.Fatalf("generator/classifier agreement = %v, want >= 0.8", frac)
	}
}

func TestReimageEventsRatesRoughlyMatch(t *testing.T) {
	p := smallProfile(t)
	g := NewGenerator(p, 5)
	pop, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	horizon := 3 * 30 * 24 * time.Hour // three months
	events := g.GenerateReimageEvents(pop, horizon)
	if len(events) == 0 {
		t.Fatalf("expected some reimage events")
	}
	// Events must reference servers owned by the named tenant and be ordered.
	for i, e := range events {
		owner := pop.OwnerOf(e.Server)
		if owner == nil || owner.ID != e.Tenant {
			t.Fatalf("event %d references server %v not owned by tenant %v", i, e.Server, e.Tenant)
		}
		if e.At < 0 || e.At > horizon+2*time.Hour {
			t.Fatalf("event time %v outside horizon", e.At)
		}
		if i > 0 && events[i].At < events[i-1].At {
			t.Fatalf("events not sorted by time")
		}
	}
	// Aggregate rate should be in the same ballpark as the configured rates.
	expected := 0.0
	for _, tn := range pop.Tenants {
		expected += tn.ReimagesPerServerMonth * float64(tn.NumServers()) * 3
	}
	got := float64(len(events))
	if got < expected*0.3 || got > expected*3 {
		t.Fatalf("total reimages = %v, expected within 3x of %v", got, expected)
	}
}

func TestPerServerAndPerTenantRates(t *testing.T) {
	p := smallProfile(t)
	g := NewGenerator(p, 6)
	pop, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	horizonMonths := 2.0
	events := g.GenerateReimageEvents(pop, time.Duration(horizonMonths*30*24)*time.Hour)
	perServer := PerServerReimageRates(pop, events, horizonMonths)
	if len(perServer) != pop.NumServers() {
		t.Fatalf("per-server map has %d entries, want %d", len(perServer), pop.NumServers())
	}
	perTenant := PerTenantReimageRates(pop, events, horizonMonths)
	if len(perTenant) != len(pop.Tenants) {
		t.Fatalf("per-tenant map has %d entries, want %d", len(perTenant), len(pop.Tenants))
	}
	// The per-tenant aggregate must equal the per-server aggregate.
	serverTotal := 0.0
	for _, r := range perServer {
		serverTotal += r
	}
	tenantTotal := 0.0
	for _, tn := range pop.Tenants {
		tenantTotal += perTenant[tn.ID] * float64(tn.NumServers())
	}
	if math.Abs(serverTotal-tenantTotal) > 1e-6 {
		t.Fatalf("per-server total %v != per-tenant total %v", serverTotal, tenantTotal)
	}
	// Zero horizon returns zero-filled maps rather than dividing by zero.
	zero := PerServerReimageRates(pop, events, 0)
	for _, v := range zero {
		if v != 0 {
			t.Fatalf("zero horizon should produce zero rates")
		}
	}
	zeroT := PerTenantReimageRates(pop, events, 0)
	for _, v := range zeroT {
		if v != 0 {
			t.Fatalf("zero horizon should produce zero per-tenant rates")
		}
	}
}

func TestReimageRateCharacterization(t *testing.T) {
	// Fig 4/5: most servers and tenants see at most ~1 reimage/month; a tail
	// reimages more often. Check on DC-7, a low-rate datacenter.
	p, _ := ProfileByName("DC-7")
	p = p.Scaled(0.3)
	g := NewGenerator(p, 8)
	pop, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	rates := make([]float64, 0, len(pop.Tenants))
	for _, tn := range pop.Tenants {
		rates = append(rates, tn.ReimagesPerServerMonth)
	}
	atMostOne := stats.CDFAt(rates, 1.0)
	if atMostOne < 0.7 {
		t.Fatalf("fraction of tenants at <=1 reimage/month = %v, want >= 0.7", atMostOne)
	}
	// There must still be diversity (not all tenants identical).
	if stats.StdDev(rates) == 0 {
		t.Fatalf("reimage rates should be diverse")
	}
}

func TestMonthlyGroupsAndChanges(t *testing.T) {
	p := smallProfile(t)
	g := NewGenerator(p, 9)
	pop, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	groups, err := MonthlyGroups(pop)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != len(pop.Tenants) {
		t.Fatalf("groups for %d tenants, want %d", len(groups), len(pop.Tenants))
	}
	for id, seq := range groups {
		if len(seq) != 36 {
			t.Fatalf("tenant %v has %d monthly groups, want 36", id, len(seq))
		}
		for _, grp := range seq {
			if grp < 0 || grp >= NumReimageGroups {
				t.Fatalf("invalid group %v", grp)
			}
		}
	}
	changes := GroupChanges(groups)
	// Fig 6: at least ~80% of tenants change groups at most 8 times out of 35.
	counts := make([]float64, 0, len(changes))
	for _, c := range changes {
		counts = append(counts, float64(c))
	}
	stable := stats.CDFAt(counts, 8)
	if stable < 0.6 {
		t.Fatalf("fraction of tenants with <=8 group changes = %v, want >= 0.6", stable)
	}
}

func TestMonthlyGroupsEmptyAndMismatch(t *testing.T) {
	empty, err := tenant.NewPopulation("DC-X", nil)
	if err != nil {
		t.Fatal(err)
	}
	groups, err := MonthlyGroups(empty)
	if err != nil || len(groups) != 0 {
		t.Fatalf("empty population should give empty groups, err=%v", err)
	}
	a := &tenant.Tenant{ID: 1, MonthlyReimageRates: []float64{1, 2}}
	b := &tenant.Tenant{ID: 2, MonthlyReimageRates: []float64{1}}
	pop, err := tenant.NewPopulation("DC-X", []*tenant.Tenant{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MonthlyGroups(pop); err == nil {
		t.Fatalf("mismatched history lengths should error")
	}
}

func TestReimageGroupString(t *testing.T) {
	if ReimageInfrequent.String() != "infrequent" ||
		ReimageIntermediate.String() != "intermediate" ||
		ReimageFrequent.String() != "frequent" {
		t.Errorf("unexpected group strings")
	}
	if ReimageGroup(7).String() == "" {
		t.Errorf("unknown group should produce non-empty string")
	}
}

func TestGroupChangesCounting(t *testing.T) {
	groups := map[tenant.ID][]ReimageGroup{
		1: {ReimageInfrequent, ReimageInfrequent, ReimageFrequent, ReimageFrequent},
		2: {ReimageIntermediate},
	}
	changes := GroupChanges(groups)
	if changes[1] != 1 {
		t.Errorf("tenant 1 changes = %d, want 1", changes[1])
	}
	if changes[2] != 0 {
		t.Errorf("tenant 2 changes = %d, want 0", changes[2])
	}
}
