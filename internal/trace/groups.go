package trace

import (
	"fmt"

	"harvest/internal/kmeans"
	"harvest/internal/tenant"
)

// ReimageGroup is the coarse reimage-frequency group of a tenant in one month
// (§3.3): infrequent, intermediate, or frequent, split so each group holds the
// same number of tenants.
type ReimageGroup int

const (
	// ReimageInfrequent is the third of tenants with the lowest monthly rate.
	ReimageInfrequent ReimageGroup = iota
	// ReimageIntermediate is the middle third.
	ReimageIntermediate
	// ReimageFrequent is the third with the highest monthly rate.
	ReimageFrequent

	// NumReimageGroups is the number of reimage-frequency groups.
	NumReimageGroups = 3
)

// String implements fmt.Stringer.
func (g ReimageGroup) String() string {
	switch g {
	case ReimageInfrequent:
		return "infrequent"
	case ReimageIntermediate:
		return "intermediate"
	case ReimageFrequent:
		return "frequent"
	default:
		return fmt.Sprintf("ReimageGroup(%d)", int(g))
	}
}

// MonthlyGroups assigns every tenant to a reimage-frequency group for each
// month of its MonthlyReimageRates history. The result maps tenant ID to the
// sequence of groups, one per month.
func MonthlyGroups(pop *tenant.Population) (map[tenant.ID][]ReimageGroup, error) {
	if len(pop.Tenants) == 0 {
		return map[tenant.ID][]ReimageGroup{}, nil
	}
	months := len(pop.Tenants[0].MonthlyReimageRates)
	for _, t := range pop.Tenants {
		if len(t.MonthlyReimageRates) != months {
			return nil, fmt.Errorf("trace: tenant %v has %d monthly rates, want %d",
				t.ID, len(t.MonthlyReimageRates), months)
		}
	}
	out := make(map[tenant.ID][]ReimageGroup, len(pop.Tenants))
	for _, t := range pop.Tenants {
		out[t.ID] = make([]ReimageGroup, months)
	}
	for m := 0; m < months; m++ {
		rates := make([]float64, len(pop.Tenants))
		for i, t := range pop.Tenants {
			rates[i] = t.MonthlyReimageRates[m]
		}
		buckets, err := kmeans.QuantileBuckets(rates, NumReimageGroups)
		if err != nil {
			return nil, err
		}
		for i, t := range pop.Tenants {
			out[t.ID][m] = ReimageGroup(buckets[i])
		}
	}
	return out, nil
}

// GroupChanges counts, for each tenant, how many times it changed reimage
// groups from one month to the next — the quantity whose CDF Figure 6 plots.
func GroupChanges(groups map[tenant.ID][]ReimageGroup) map[tenant.ID]int {
	out := make(map[tenant.ID]int, len(groups))
	for id, seq := range groups {
		changes := 0
		for m := 1; m < len(seq); m++ {
			if seq[m] != seq[m-1] {
				changes++
			}
		}
		out[id] = changes
	}
	return out
}
