package tenant

import (
	"time"

	"harvest/internal/timeseries"
)

// HistorySource abstracts where a tenant's utilization history comes from.
// The clustering service and the serving layer's usage view depend only on
// this seam, so the same pipeline runs against the synthetic one-month trace
// (TraceHistory — simulators, experiment harnesses, daemon bootstrap) or
// against live telemetry rings (telemetry.Store — the daemon's steady
// state). Nothing downstream may assume the series is one month long or
// cyclic; window lengths are whatever the source holds.
type HistorySource interface {
	// SeriesFor returns the utilization history window for a tenant: the
	// classification (FFT) input, and the window its peak/average summary
	// statistics are computed over. Nil when the source has no history for
	// the tenant.
	SeriesFor(id ID) *timeseries.Series
	// UtilizationAt returns the tenant's utilization at the given offset on
	// the telemetry clock.
	UtilizationAt(id ID, at time.Duration) float64
	// Horizon returns the offset of the freshest data the source holds — the
	// natural AsOf for a characterization built from it.
	Horizon() time.Duration
}

// HistoryStats is an optional HistorySource extension: a source that can
// report a cheap per-tenant change mark lets the incremental re-clustering
// skip the O(window) copy and summary for tenants whose history provably
// did not move since their last drift evaluation. telemetry.Store implements
// it; the trace-backed source does not (its windows never change between
// explicit AsOf advances, which re-run the full pipeline anyway).
type HistoryStats interface {
	// HistoryStats returns how many samples the source currently retains for
	// the tenant and a monotonic mark that changes whenever the tenant's
	// window does (ingest, bootstrap, eviction, regrowth). ok is false for
	// unknown tenants.
	HistoryStats(id ID) (samples int, mark uint64, ok bool)
}

// TraceHistory is the trace-backed HistorySource: each tenant's generated
// one-month series replayed cyclically, with AsOf marking the current
// position. This is exactly the pre-refactor behaviour of the serving layer
// ("advance the trace by SimStep per refresh"), now one implementation of
// the seam instead of an assumption baked into core.
type TraceHistory struct {
	Pop *Population
	// AsOf is the position on the telemetry clock; UtilizationAt wraps
	// around the series, so any offset is valid.
	AsOf time.Duration
}

// SeriesFor returns the tenant's full generated series.
func (h TraceHistory) SeriesFor(id ID) *timeseries.Series {
	t := h.Pop.ByID(id)
	if t == nil {
		return nil
	}
	return t.Utilization
}

// UtilizationAt replays the trace cyclically, exactly as Tenant.UtilizationAt.
func (h TraceHistory) UtilizationAt(id ID, at time.Duration) float64 {
	t := h.Pop.ByID(id)
	if t == nil {
		return 0
	}
	return t.UtilizationAt(at)
}

// Horizon returns the configured trace position.
func (h TraceHistory) Horizon() time.Duration { return h.AsOf }
