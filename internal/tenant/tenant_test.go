package tenant

import (
	"math"
	"testing"
	"time"

	"harvest/internal/signalproc"
	"harvest/internal/timeseries"
)

func sineSeries(n, cycles int, base, amp float64) *timeseries.Series {
	values := make([]float64, n)
	for i := range values {
		values[i] = base + amp*math.Sin(2*math.Pi*float64(cycles)*float64(i)/float64(n))
	}
	return timeseries.New(timeseries.SlotDuration, values)
}

func flatSeries(n int, level float64) *timeseries.Series {
	values := make([]float64, n)
	for i := range values {
		values[i] = level
	}
	return timeseries.New(timeseries.SlotDuration, values)
}

func TestDefaults(t *testing.T) {
	r := DefaultServerResources()
	if r.Cores != 12 || r.MemoryMB != 32*1024 {
		t.Fatalf("unexpected default resources: %+v", r)
	}
	res := DefaultReserve()
	if res.Cores != 4 || res.MemoryMB != 10*1024 {
		t.Fatalf("unexpected default reserve: %+v", res)
	}
}

func TestTenantBasics(t *testing.T) {
	tn := &Tenant{
		ID:                        1,
		Environment:               "search-index",
		MachineFunction:           "ranking",
		Servers:                   []ServerID{1, 2, 3},
		Utilization:               sineSeries(1440, 2, 0.4, 0.2),
		HarvestableBytesPerServer: 1000,
	}
	if tn.NumServers() != 3 {
		t.Errorf("NumServers = %d", tn.NumServers())
	}
	if tn.HarvestableBytes() != 3000 {
		t.Errorf("HarvestableBytes = %d", tn.HarvestableBytes())
	}
	if got := tn.AverageUtilization(); math.Abs(got-0.4) > 0.01 {
		t.Errorf("AverageUtilization = %v", got)
	}
	if got := tn.PeakUtilization(); math.Abs(got-0.6) > 0.01 {
		t.Errorf("PeakUtilization = %v", got)
	}
	if tn.String() == "" {
		t.Errorf("String should not be empty")
	}
}

func TestTenantNilUtilization(t *testing.T) {
	tn := &Tenant{ID: 1}
	if tn.AverageUtilization() != 0 || tn.PeakUtilization() != 0 || tn.UtilizationAt(time.Hour) != 0 {
		t.Fatalf("nil utilization should report zeros")
	}
	if err := tn.Classify(signalproc.DefaultClassifierConfig()); err == nil {
		t.Fatalf("classify without a series should error")
	}
}

func TestTenantUtilizationAtWraps(t *testing.T) {
	tn := &Tenant{Utilization: timeseries.New(time.Minute, []float64{0.1, 0.9})}
	if tn.UtilizationAt(0) != 0.1 || tn.UtilizationAt(time.Minute) != 0.9 {
		t.Fatalf("unexpected values at offsets")
	}
	if tn.UtilizationAt(2*time.Minute) != 0.1 {
		t.Fatalf("should wrap around")
	}
}

func TestTenantClassify(t *testing.T) {
	tn := &Tenant{ID: 7, Utilization: sineSeries(21600, 30, 0.4, 0.25)}
	if err := tn.Classify(signalproc.DefaultClassifierConfig()); err != nil {
		t.Fatal(err)
	}
	if tn.Pattern() != signalproc.PatternPeriodic {
		t.Fatalf("pattern = %v, want periodic", tn.Pattern())
	}
}

func TestNewPopulationIndexes(t *testing.T) {
	a := &Tenant{ID: 1, Servers: []ServerID{1, 2}}
	b := &Tenant{ID: 2, Servers: []ServerID{3}}
	p, err := NewPopulation("DC-9", []*Tenant{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if p.ByID(1) != a || p.ByID(2) != b || p.ByID(99) != nil {
		t.Errorf("ByID lookups wrong")
	}
	if p.OwnerOf(3) != b || p.OwnerOf(99) != nil {
		t.Errorf("OwnerOf lookups wrong")
	}
	if p.NumServers() != 3 {
		t.Errorf("NumServers = %d", p.NumServers())
	}
	if got := p.ServerIDs(); len(got) != 3 {
		t.Errorf("ServerIDs = %v", got)
	}
}

func TestNewPopulationDuplicateTenant(t *testing.T) {
	a := &Tenant{ID: 1}
	b := &Tenant{ID: 1}
	if _, err := NewPopulation("DC-0", []*Tenant{a, b}); err == nil {
		t.Fatalf("duplicate tenant id should error")
	}
}

func TestNewPopulationOverlappingServers(t *testing.T) {
	a := &Tenant{ID: 1, Servers: []ServerID{5}}
	b := &Tenant{ID: 2, Servers: []ServerID{5}}
	if _, err := NewPopulation("DC-0", []*Tenant{a, b}); err == nil {
		t.Fatalf("overlapping server ownership should error")
	}
}

func TestPatternShares(t *testing.T) {
	periodic := &Tenant{ID: 1, Servers: []ServerID{1, 2, 3, 4}, Utilization: sineSeries(21600, 30, 0.4, 0.25)}
	constant := &Tenant{ID: 2, Servers: []ServerID{5}, Utilization: flatSeries(21600, 0.5)}
	p, err := NewPopulation("DC-9", []*Tenant{periodic, constant})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ClassifyAll(signalproc.DefaultClassifierConfig()); err != nil {
		t.Fatal(err)
	}
	tenantShare, serverShare := p.PatternShares()
	if math.Abs(tenantShare[signalproc.PatternPeriodic]-0.5) > 1e-9 {
		t.Errorf("tenant share periodic = %v", tenantShare[signalproc.PatternPeriodic])
	}
	if math.Abs(serverShare[signalproc.PatternPeriodic]-0.8) > 1e-9 {
		t.Errorf("server share periodic = %v", serverShare[signalproc.PatternPeriodic])
	}
}

func TestPatternSharesEmpty(t *testing.T) {
	p, err := NewPopulation("DC-0", nil)
	if err != nil {
		t.Fatal(err)
	}
	ts, ss := p.PatternShares()
	if len(ts) != 0 || len(ss) != 0 {
		t.Fatalf("empty population should report empty shares")
	}
}

func TestClassifyAllPropagatesError(t *testing.T) {
	bad := &Tenant{ID: 1} // no utilization
	p, err := NewPopulation("DC-0", []*Tenant{bad})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ClassifyAll(signalproc.DefaultClassifierConfig()); err == nil {
		t.Fatalf("expected classification error to propagate")
	}
}
