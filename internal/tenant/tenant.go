// Package tenant models primary tenants: the services that own datacenter
// servers and whose spare cycles and storage the harvesting systems use.
//
// In the paper's terminology (§3.1) a primary tenant is an
// <environment, machine function> pair managed by AutoPilot. Each tenant owns
// a set of servers; the harvesting systems never displace the tenant, they
// only use whatever the tenant leaves idle.
package tenant

import (
	"fmt"
	"time"

	"harvest/internal/signalproc"
	"harvest/internal/timeseries"
)

// ID uniquely identifies a primary tenant within a datacenter.
type ID int

// ServerID uniquely identifies a server within a datacenter.
type ServerID int

// Resources describes a server's capacity. The testbed servers in §6.1 have
// 12 cores and 32 GB of memory; 4 cores and 10 GB are reserved for primary
// tenant bursts.
type Resources struct {
	Cores    int
	MemoryMB int
	// DiskBytes is the harvestable storage the primary tenant grants HDFS-H
	// on this server (§5.4 goal G1: primaries declare how much space may be
	// used).
	DiskBytes int64
}

// DefaultServerResources mirrors the testbed configuration.
func DefaultServerResources() Resources {
	return Resources{Cores: 12, MemoryMB: 32 * 1024, DiskBytes: 2 << 40} // 2 TB harvestable
}

// Reserve describes the slice of each server held back for primary bursts.
type Reserve struct {
	Cores    int
	MemoryMB int
}

// DefaultReserve mirrors §6.1: 4 cores (33%) and 10 GB (31%).
func DefaultReserve() Reserve {
	return Reserve{Cores: 4, MemoryMB: 10 * 1024}
}

// Tenant is a primary tenant: a service (environment + machine function) that
// owns a group of servers and exhibits a historical utilization and reimaging
// behaviour.
type Tenant struct {
	ID              ID
	Environment     string
	MachineFunction string
	Datacenter      string

	// Servers lists the servers this tenant owns.
	Servers []ServerID

	// Utilization is the one-month "average server" CPU utilization series
	// (2-minute slots), the input to classification and scheduling.
	Utilization *timeseries.Series

	// Profile is the frequency-domain profile derived from Utilization.
	Profile signalproc.Profile

	// HistoryMark caches the history source's change mark (HistoryStats) at
	// the tenant's last drift evaluation. Like Profile it is re-clustering
	// state living on the tenant: when the source reports the same mark
	// again, the tenant's window is unchanged and the drift check can be
	// skipped. Written only under the owning shard's rebuild lock.
	HistoryMark uint64

	// ReimagesPerServerMonth is the historical average number of disk
	// reimages per server per month for this tenant.
	ReimagesPerServerMonth float64

	// MonthlyReimageRates optionally holds a per-month history of
	// reimages/server/month (e.g. 36 entries for three years), used by the
	// characterization experiments on rank stability (Fig 6).
	MonthlyReimageRates []float64

	// HarvestableBytesPerServer is the storage each of this tenant's servers
	// exposes to the harvesting file system.
	HarvestableBytesPerServer int64
}

// String implements fmt.Stringer.
func (t *Tenant) String() string {
	return fmt.Sprintf("%s/%s(%d servers)", t.Environment, t.MachineFunction, len(t.Servers))
}

// NumServers returns how many servers the tenant owns.
func (t *Tenant) NumServers() int { return len(t.Servers) }

// HarvestableBytes returns the total storage the tenant exposes for harvesting.
func (t *Tenant) HarvestableBytes() int64 {
	return t.HarvestableBytesPerServer * int64(len(t.Servers))
}

// AverageUtilization returns the mean of the tenant's utilization series.
func (t *Tenant) AverageUtilization() float64 {
	if t.Utilization == nil {
		return 0
	}
	return t.Utilization.Mean()
}

// PeakUtilization returns the peak of the tenant's utilization series.
func (t *Tenant) PeakUtilization() float64 {
	if t.Utilization == nil {
		return 0
	}
	return t.Utilization.Peak()
}

// UtilizationAt returns the tenant's utilization at elapsed time t, replaying
// the one-month trace cyclically.
func (t *Tenant) UtilizationAt(elapsed time.Duration) float64 {
	if t.Utilization == nil {
		return 0
	}
	return t.Utilization.At(elapsed)
}

// Classify (re)derives the tenant's profile from its utilization series.
func (t *Tenant) Classify(cfg signalproc.ClassifierConfig) error {
	if t.Utilization == nil || t.Utilization.Len() == 0 {
		return fmt.Errorf("tenant %v: no utilization series to classify", t.ID)
	}
	p, err := signalproc.Classify(t.Utilization.Values, cfg)
	if err != nil {
		return fmt.Errorf("tenant %v: %w", t.ID, err)
	}
	t.Profile = p
	return nil
}

// Pattern returns the tenant's utilization pattern.
func (t *Tenant) Pattern() signalproc.Pattern { return t.Profile.Pattern }

// Population is a collection of tenants belonging to one datacenter, with
// index structures used by the scheduling and placement code.
type Population struct {
	Datacenter string
	Tenants    []*Tenant

	byID     map[ID]*Tenant
	byServer map[ServerID]*Tenant
}

// NewPopulation builds a population and its indexes. Tenants with duplicate
// IDs or overlapping server sets are rejected.
func NewPopulation(datacenter string, tenants []*Tenant) (*Population, error) {
	p := &Population{
		Datacenter: datacenter,
		Tenants:    tenants,
		byID:       make(map[ID]*Tenant, len(tenants)),
		byServer:   make(map[ServerID]*Tenant),
	}
	for _, t := range tenants {
		if _, dup := p.byID[t.ID]; dup {
			return nil, fmt.Errorf("tenant: duplicate tenant id %v", t.ID)
		}
		p.byID[t.ID] = t
		for _, s := range t.Servers {
			if owner, taken := p.byServer[s]; taken {
				return nil, fmt.Errorf("tenant: server %v owned by both %v and %v", s, owner.ID, t.ID)
			}
			p.byServer[s] = t
		}
	}
	return p, nil
}

// ByID returns the tenant with the given id, or nil.
func (p *Population) ByID(id ID) *Tenant { return p.byID[id] }

// OwnerOf returns the tenant owning the given server, or nil.
func (p *Population) OwnerOf(server ServerID) *Tenant { return p.byServer[server] }

// NumServers returns the total number of servers across all tenants.
func (p *Population) NumServers() int { return len(p.byServer) }

// ServerIDs returns all server ids in the population in tenant order.
func (p *Population) ServerIDs() []ServerID {
	out := make([]ServerID, 0, len(p.byServer))
	for _, t := range p.Tenants {
		out = append(out, t.Servers...)
	}
	return out
}

// PatternShares returns, per pattern, the fraction of tenants and the fraction
// of servers exhibiting it — the quantities plotted in Figures 2 and 3.
func (p *Population) PatternShares() (tenantShare, serverShare map[signalproc.Pattern]float64) {
	tenantShare = make(map[signalproc.Pattern]float64, signalproc.NumPatterns)
	serverShare = make(map[signalproc.Pattern]float64, signalproc.NumPatterns)
	if len(p.Tenants) == 0 {
		return tenantShare, serverShare
	}
	totalServers := 0
	for _, t := range p.Tenants {
		tenantShare[t.Pattern()]++
		serverShare[t.Pattern()] += float64(t.NumServers())
		totalServers += t.NumServers()
	}
	for pat := range tenantShare {
		tenantShare[pat] /= float64(len(p.Tenants))
	}
	if totalServers > 0 {
		for pat := range serverShare {
			serverShare[pat] /= float64(totalServers)
		}
	}
	return tenantShare, serverShare
}

// ClassifyAll classifies every tenant in the population.
func (p *Population) ClassifyAll(cfg signalproc.ClassifierConfig) error {
	for _, t := range p.Tenants {
		if err := t.Classify(cfg); err != nil {
			return err
		}
	}
	return nil
}
