package tenant

import (
	"testing"
	"time"

	"harvest/internal/timeseries"
)

func TestTraceHistoryMirrorsTenantMethods(t *testing.T) {
	tn := &Tenant{
		ID:          7,
		Servers:     []ServerID{1, 2},
		Utilization: timeseries.New(time.Minute, []float64{0.1, 0.9}),
	}
	pop, err := NewPopulation("DC-X", []*Tenant{tn})
	if err != nil {
		t.Fatal(err)
	}
	src := TraceHistory{Pop: pop, AsOf: 5 * time.Minute}

	if got := src.SeriesFor(7); got != tn.Utilization {
		t.Errorf("SeriesFor returned %v, want the tenant's series", got)
	}
	if got := src.SeriesFor(99); got != nil {
		t.Errorf("unknown tenant SeriesFor = %v, want nil", got)
	}
	// UtilizationAt wraps cyclically, exactly like the tenant method.
	for _, at := range []time.Duration{0, time.Minute, 2 * time.Minute, 3 * time.Minute} {
		if got, want := src.UtilizationAt(7, at), tn.UtilizationAt(at); got != want {
			t.Errorf("UtilizationAt(%v) = %v, want %v", at, got, want)
		}
	}
	if got := src.UtilizationAt(99, 0); got != 0 {
		t.Errorf("unknown tenant UtilizationAt = %v, want 0", got)
	}
	if got := src.Horizon(); got != 5*time.Minute {
		t.Errorf("Horizon = %v, want 5m", got)
	}
}
