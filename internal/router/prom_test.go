package router_test

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"harvest/internal/obs"
	"harvest/internal/router"
	"harvest/internal/wire"
)

func TestRouterPrometheusExposition(t *testing.T) {
	rt, srv := newTestRouter(t, nil)
	binFront := startRouterBinary(t, rt)

	fb := newFakeBackend(t)
	mustRegister(t, srv.URL, router.RegisterRequest{
		ID: "node-a", URL: fb.srv.URL,
		Datacenters: []router.RegisterDatacenter{{Name: "DC-1", Generation: 1}},
	})

	// One proxied JSON request and one bridged binary request so the
	// counters and per-op histograms are live.
	if resp, _ := getBody(t, srv.URL+"/v1/DC-1/classes"); resp.StatusCode != http.StatusOK {
		t.Fatalf("proxy warmup: status %d", resp.StatusCode)
	}
	c := dialBin(t, binFront)
	if h, _ := c.roundTrip(wire.AppendClassesReq(nil, 5, "DC-1")); h.Op != wire.OpClassesResp {
		t.Fatalf("binary warmup: op %v", h.Op)
	}

	// The default /metrics stays JSON.
	resp, _ := getBody(t, srv.URL+"/metrics")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/metrics Content-Type = %q, want JSON", ct)
	}

	resp, body := getBody(t, srv.URL+"/metrics?format=prometheus")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prometheus metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("prometheus Content-Type = %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE harvestrouter_proxied_total counter",
		// Two: the JSON proxy leg and the bridged binary frame both count.
		"harvestrouter_proxied_total 2",
		`harvestrouter_backend_up{backend="node-a"} 1`,
		`harvestrouter_backend_proxied_total{backend="node-a"}`,
		"# TYPE harvestrouter_binary_op_latency_microseconds histogram",
		`harvestrouter_binary_op_latency_microseconds_bucket{op="classes",le="+Inf"} 1`,
		`harvestrouter_binary_op_requests_total{op="classes"} 1`,
		"harvestrouter_binary_translated_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("router exposition missing %q:\n%s", want, text)
		}
	}
}

// TestRouterBinaryOpStatsJSON pins the per-op rollup on the JSON /metrics
// shape: the binary front reports request/error counts and latency quantiles
// per opcode.
func TestRouterBinaryOpStatsJSON(t *testing.T) {
	rt, srv := newTestRouter(t, nil)
	binFront := startRouterBinary(t, rt)

	fb := newFakeBackend(t)
	mustRegister(t, srv.URL, router.RegisterRequest{
		ID: "node-a", URL: fb.srv.URL,
		Datacenters: []router.RegisterDatacenter{{Name: "DC-1", Generation: 1}},
	})
	c := dialBin(t, binFront)
	if h, _ := c.roundTrip(wire.AppendClassesReq(nil, 6, "DC-1")); h.Op != wire.OpClassesResp {
		t.Fatalf("classes: op %v", h.Op)
	}
	// A frame for an unowned datacenter is a per-op error, not a transport
	// failure.
	if h, _ := c.roundTrip(wire.AppendClassesReq(nil, 7, "DC-0")); h.Op != wire.OpError {
		t.Fatalf("unknown dc: op %v", h.Op)
	}

	resp, body := getBody(t, srv.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	text := string(body)
	if !strings.Contains(text, `"ops"`) {
		t.Fatalf("/metrics missing binary op rollup: %s", text)
	}
	var stats struct {
		Router struct {
			Binary struct {
				Ops map[string]struct {
					Requests uint64 `json:"requests"`
					Errors   uint64 `json:"errors"`
					P99Us    uint64 `json:"p99_us"`
				} `json:"ops"`
			} `json:"binary"`
		} `json:"router"`
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatalf("unmarshal /metrics: %v", err)
	}
	op := stats.Router.Binary.Ops["classes"]
	if op.Requests != 2 || op.Errors != 1 || op.P99Us == 0 {
		t.Fatalf("classes op stats = %+v, want 2 requests / 1 error / nonzero p99", op)
	}
}
