package router_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"harvest/internal/router"
)

// testClock is an injectable clock so staleness tests never sleep.
type testClock struct {
	mu  sync.Mutex
	now time.Time
}

func newTestClock() *testClock { return &testClock{now: time.Unix(1000, 0)} }

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// fakeBackend records the requests a router forwards to it and answers with a
// canned body.
type fakeBackend struct {
	srv      *httptest.Server
	mu       sync.Mutex
	requests []string // "METHOD path" of each proxied request
	bodies   [][]byte
	headers  []http.Header
	status   atomic.Int32
	reply    atomic.Pointer[string]
}

func newFakeBackend(t *testing.T) *fakeBackend {
	t.Helper()
	fb := &fakeBackend{}
	fb.status.Store(http.StatusOK)
	reply := `{"ok":true}`
	fb.reply.Store(&reply)
	fb.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var buf bytes.Buffer
		buf.ReadFrom(r.Body)
		fb.mu.Lock()
		fb.requests = append(fb.requests, r.Method+" "+r.URL.RequestURI())
		fb.bodies = append(fb.bodies, append([]byte(nil), buf.Bytes()...))
		fb.headers = append(fb.headers, r.Header.Clone())
		fb.mu.Unlock()
		body := *fb.reply.Load()
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Length", fmt.Sprint(len(body)))
		w.WriteHeader(int(fb.status.Load()))
		w.Write([]byte(body))
	}))
	t.Cleanup(fb.srv.Close)
	return fb
}

func (fb *fakeBackend) seen() []string {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	return append([]string(nil), fb.requests...)
}

func register(t *testing.T, routerURL string, req router.RegisterRequest) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(routerURL+"/v1/register", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	resp.Body.Close()
	return resp
}

func mustRegister(t *testing.T, routerURL string, req router.RegisterRequest) {
	t.Helper()
	if resp := register(t, routerURL, req); resp.StatusCode != http.StatusOK {
		t.Fatalf("register %s: status %d, want 200", req.ID, resp.StatusCode)
	}
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func datacentersOf(t *testing.T, routerURL string) []string {
	t.Helper()
	resp, body := getBody(t, routerURL+"/v1/datacenters")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/datacenters: status %d", resp.StatusCode)
	}
	var dcl struct {
		Datacenters []string `json:"datacenters"`
	}
	if err := json.Unmarshal(body, &dcl); err != nil {
		t.Fatalf("unmarshal %q: %v", body, err)
	}
	return dcl.Datacenters
}

func newTestRouter(t *testing.T, clock *testClock) (*router.Router, *httptest.Server) {
	t.Helper()
	cfg := router.Config{StaleAfter: time.Minute}
	if clock != nil {
		cfg.Now = clock.Now
	}
	rt := router.New(cfg)
	srv := httptest.NewServer(rt)
	t.Cleanup(srv.Close)
	return rt, srv
}

func TestProxyRoutesToOwningBackend(t *testing.T) {
	a, b := newFakeBackend(t), newFakeBackend(t)
	_, srv := newTestRouter(t, nil)
	mustRegister(t, srv.URL, router.RegisterRequest{
		ID: "node-a", URL: a.srv.URL,
		Datacenters: []router.RegisterDatacenter{{Name: "DC-A", Generation: 3}},
	})
	mustRegister(t, srv.URL, router.RegisterRequest{
		ID: "node-b", URL: b.srv.URL,
		Datacenters: []router.RegisterDatacenter{{Name: "DC-B", Generation: 7}},
	})

	resp, body := getBody(t, srv.URL+"/v1/DC-A/classes")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxied GET: status %d", resp.StatusCode)
	}
	if string(body) != `{"ok":true}` {
		t.Errorf("proxied body = %q, want the backend's reply", body)
	}
	if resp.Header.Get("Content-Type") != "application/json" {
		t.Errorf("Content-Type not relayed: %q", resp.Header.Get("Content-Type"))
	}
	if got := a.seen(); len(got) != 1 || got[0] != "GET /v1/DC-A/classes" {
		t.Errorf("backend A saw %v, want [GET /v1/DC-A/classes]", got)
	}
	if got := b.seen(); len(got) != 0 {
		t.Errorf("backend B saw %v, want nothing", got)
	}

	// POST bodies and headers travel through untouched.
	req, _ := http.NewRequest("POST", srv.URL+"/v1/DC-B/select", strings.NewReader(`{"max_concurrent_cores":4}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Authorization", "Bearer sekrit")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp2.Body.Close()
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.requests) != 1 || b.requests[0] != "POST /v1/DC-B/select" {
		t.Fatalf("backend B saw %v, want [POST /v1/DC-B/select]", b.requests)
	}
	if string(b.bodies[0]) != `{"max_concurrent_cores":4}` {
		t.Errorf("forwarded body = %q", b.bodies[0])
	}
	if b.headers[0].Get("Authorization") != "Bearer sekrit" {
		t.Errorf("Authorization header not forwarded: %q", b.headers[0].Get("Authorization"))
	}
	if b.headers[0].Get("X-Forwarded-For") == "" {
		t.Errorf("X-Forwarded-For not set")
	}
}

// TestProxyForwardsEscapedPathVerbatim pins that percent-encoded bytes in
// the client's path reach the backend still encoded: a decoded '?' or '#'
// would silently change which resource the backend sees.
func TestProxyForwardsEscapedPathVerbatim(t *testing.T) {
	a := newFakeBackend(t)
	_, srv := newTestRouter(t, nil)
	mustRegister(t, srv.URL, router.RegisterRequest{
		ID: "node-a", URL: a.srv.URL,
		Datacenters: []router.RegisterDatacenter{{Name: "DC-A"}},
	})
	resp, err := http.Post(srv.URL+"/v1/DC-A/select%3Fdebug=1", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	got := a.seen()
	if len(got) != 1 || got[0] != "POST /v1/DC-A/select%3Fdebug=1" {
		t.Errorf("backend saw %v, want the still-encoded path [POST /v1/DC-A/select%%3Fdebug=1]", got)
	}
}

func TestProxyRelaysBackendStatus(t *testing.T) {
	a := newFakeBackend(t)
	_, srv := newTestRouter(t, nil)
	mustRegister(t, srv.URL, router.RegisterRequest{
		ID: "node-a", URL: a.srv.URL,
		Datacenters: []router.RegisterDatacenter{{Name: "DC-A"}},
	})
	a.status.Store(http.StatusNotFound)
	notFound := `{"error":"unknown server"}`
	a.reply.Store(&notFound)
	resp, body := getBody(t, srv.URL+"/v1/DC-A/servers/999/class")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d, want backend's 404 relayed", resp.StatusCode)
	}
	if string(body) != notFound {
		t.Errorf("body = %q, want backend's error body", body)
	}
}

// TestProxyBreaksRoutingLoops pins the one-hop cycle breaker: a backend
// registered with the router's own URL must produce a single 508, not a
// self-proxying storm.
func TestProxyBreaksRoutingLoops(t *testing.T) {
	_, srv := newTestRouter(t, nil)
	mustRegister(t, srv.URL, router.RegisterRequest{
		ID: "confused", URL: srv.URL,
		Datacenters: []router.RegisterDatacenter{{Name: "DC-A"}},
	})
	resp, body := getBody(t, srv.URL+"/v1/DC-A/classes")
	if resp.StatusCode != http.StatusLoopDetected {
		t.Errorf("self-registered router: status %d, want 508 (%s)", resp.StatusCode, body)
	}
	// The /metrics fan-out must not recurse into the self-registered
	// "backend" either: the scrape carries the hop header, the nested router
	// answers 508, and the outer scrape completes with that DC absent.
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, body := getBody(t, srv.URL+"/metrics")
		if resp.StatusCode != http.StatusOK {
			t.Errorf("/metrics with loop backend: status %d (%s)", resp.StatusCode, body)
			return
		}
		var m struct {
			Datacenters map[string]json.RawMessage `json:"datacenters"`
		}
		if err := json.Unmarshal(body, &m); err != nil {
			t.Errorf("unmarshal metrics: %v", err)
			return
		}
		if _, ok := m.Datacenters["DC-A"]; ok {
			t.Errorf("loop backend's DC appeared in the aggregate: %v", m.Datacenters)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("/metrics hung — the fan-out recursed into itself")
	}
}

// TestProxyRelaysRedirectsVerbatim pins reverse-proxy redirect semantics:
// a backend 3xx reaches the client as-is — the router must never chase the
// Location itself (a registered-but-malicious backend could otherwise use
// it to make the router GET arbitrary internal URLs).
func TestProxyRelaysRedirectsVerbatim(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Location", "http://192.0.2.1/elsewhere")
		w.WriteHeader(http.StatusFound)
	}))
	defer backend.Close()
	_, srv := newTestRouter(t, nil)
	mustRegister(t, srv.URL, router.RegisterRequest{
		ID: "node-a", URL: backend.URL,
		Datacenters: []router.RegisterDatacenter{{Name: "DC-A"}},
	})
	client := &http.Client{CheckRedirect: func(req *http.Request, via []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := client.Get(srv.URL + "/v1/DC-A/classes")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusFound {
		t.Errorf("status = %d, want the backend's 302 relayed", resp.StatusCode)
	}
	if got := resp.Header.Get("Location"); got != "http://192.0.2.1/elsewhere" {
		t.Errorf("Location = %q, want the backend's target relayed", got)
	}
}

func TestRegisterUpdatesAndMovesDatacenters(t *testing.T) {
	clock := newTestClock()
	a, b := newFakeBackend(t), newFakeBackend(t)
	rt := router.New(router.Config{StaleAfter: 10 * time.Second, Now: clock.Now})
	srv := httptest.NewServer(rt)
	defer srv.Close()
	mustRegister(t, srv.URL, router.RegisterRequest{
		ID: "node-a", URL: a.srv.URL,
		Datacenters: []router.RegisterDatacenter{{Name: "DC-1"}, {Name: "DC-2"}},
	})
	if got := datacentersOf(t, srv.URL); len(got) != 2 || got[0] != "DC-1" || got[1] != "DC-2" {
		t.Fatalf("datacenters = %v, want [DC-1 DC-2]", got)
	}

	// Ownership is sticky: node-b announcing DC-2 while node-a is alive must
	// NOT take the route — a contested DC would otherwise ping-pong at
	// heartbeat cadence, stranding leases on the shard that issued them.
	mustRegister(t, srv.URL, router.RegisterRequest{
		ID: "node-b", URL: b.srv.URL,
		Datacenters: []router.RegisterDatacenter{{Name: "DC-2"}},
	})
	getBody(t, srv.URL+"/v1/DC-2/classes")
	if got := a.seen(); len(got) != 1 {
		t.Errorf("contested DC-2 left its live owner: backend A saw %v, want one request", got)
	}
	if got := b.seen(); len(got) != 0 {
		t.Errorf("contested DC-2 moved to the challenger: backend B saw %v, want nothing", got)
	}

	// Once node-a goes stale, node-b's next heartbeat takes DC-2 over.
	clock.Advance(11 * time.Second)
	mustRegister(t, srv.URL, router.RegisterRequest{
		ID: "node-b", URL: b.srv.URL,
		Datacenters: []router.RegisterDatacenter{{Name: "DC-2"}},
	})
	getBody(t, srv.URL+"/v1/DC-2/classes")
	if got := b.seen(); len(got) != 1 {
		t.Errorf("after the owner went stale, backend B saw %v, want one request", got)
	}

	// node-a re-registers without DC-1: its entry disappears from the table
	// (and the union), while DC-2 stays with node-b.
	mustRegister(t, srv.URL, router.RegisterRequest{
		ID: "node-a", URL: a.srv.URL,
		Datacenters: []router.RegisterDatacenter{{Name: "DC-3"}},
	})
	if got := datacentersOf(t, srv.URL); len(got) != 2 || got[0] != "DC-2" || got[1] != "DC-3" {
		t.Errorf("datacenters = %v, want [DC-2 DC-3]", got)
	}
	resp, _ := getBody(t, srv.URL+"/v1/DC-1/classes")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("dropped DC-1: status %d, want 404", resp.StatusCode)
	}
	// DC-2 stayed with node-b through node-a's re-registration: node-a no
	// longer announces it, and would not reclaim it from a live owner anyway.
	getBody(t, srv.URL+"/v1/DC-2/classes")
	if got := b.seen(); len(got) != 2 {
		t.Errorf("DC-2 after node-a re-registration: backend B saw %v, want two requests", got)
	}
}

// TestDeadBackendAgesOut pins the garbage collection of long-gone backends:
// past 10 staleness windows a dead node's datacenters fall back to 404
// (unknown) instead of 503ing forever, and the backend row leaves /metrics
// and /healthz.
func TestDeadBackendAgesOut(t *testing.T) {
	clock := newTestClock()
	a, b := newFakeBackend(t), newFakeBackend(t)
	rt := router.New(router.Config{StaleAfter: 10 * time.Second, Now: clock.Now})
	srv := httptest.NewServer(rt)
	defer srv.Close()
	mustRegister(t, srv.URL, router.RegisterRequest{
		ID: "node-a", URL: a.srv.URL,
		Datacenters: []router.RegisterDatacenter{{Name: "DC-A"}},
	})

	// Stale but not yet aged out: 503 (the outage might be transient).
	clock.Advance(50 * time.Second)
	resp, _ := getBody(t, srv.URL+"/v1/DC-A/classes")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("stale backend: status %d, want 503", resp.StatusCode)
	}

	// Past 10×StaleAfter the node is collected on demand by the very next
	// proxy request — no surviving backend needs to heartbeat for the 503s
	// to end.
	clock.Advance(60 * time.Second)
	resp, _ = getBody(t, srv.URL+"/v1/DC-A/classes")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("aged-out backend's DC: status %d, want 404", resp.StatusCode)
	}
	mustRegister(t, srv.URL, router.RegisterRequest{
		ID: "node-b", URL: b.srv.URL,
		Datacenters: []router.RegisterDatacenter{{Name: "DC-B"}},
	})
	var hz struct {
		Backends int `json:"backends"`
	}
	_, body := getBody(t, srv.URL+"/healthz")
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if hz.Backends != 1 {
		t.Errorf("healthz backends = %d after age-out, want 1", hz.Backends)
	}
}

// TestRegisterToken pins the registration-auth contract: with a token
// configured, unauthenticated (or wrongly authenticated) heartbeats cannot
// move routing.
func TestRegisterToken(t *testing.T) {
	a := newFakeBackend(t)
	rt := router.New(router.Config{StaleAfter: time.Minute, RegisterToken: "fleet-secret"})
	srv := httptest.NewServer(rt)
	defer srv.Close()

	body, _ := json.Marshal(router.RegisterRequest{
		ID: "node-a", URL: a.srv.URL,
		Datacenters: []router.RegisterDatacenter{{Name: "DC-A"}},
	})
	post := func(token string) int {
		req, err := http.NewRequest("POST", srv.URL+"/v1/register", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("new request: %v", err)
		}
		req.Header.Set("Content-Type", "application/json")
		if token != "" {
			req.Header.Set("Authorization", token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("register: %v", err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := post(""); got != http.StatusUnauthorized {
		t.Errorf("no token: status %d, want 401", got)
	}
	if got := post("Bearer wrong"); got != http.StatusUnauthorized {
		t.Errorf("wrong token: status %d, want 401", got)
	}
	if got := datacentersOf(t, srv.URL); len(got) != 0 {
		t.Fatalf("unauthenticated registration moved routing: %v", got)
	}
	if got := post("Bearer fleet-secret"); got != http.StatusOK {
		t.Errorf("correct token: status %d, want 200", got)
	}
	if got := datacentersOf(t, srv.URL); len(got) != 1 || got[0] != "DC-A" {
		t.Errorf("datacenters after authorized registration = %v, want [DC-A]", got)
	}
}

func TestStaleBackend503sWithRetryAfter(t *testing.T) {
	clock := newTestClock()
	a := newFakeBackend(t)
	rtCfg := router.Config{StaleAfter: 10 * time.Second, RetryAfter: 3 * time.Second, Now: clock.Now}
	rt := router.New(rtCfg)
	srv := httptest.NewServer(rt)
	defer srv.Close()
	mustRegister(t, srv.URL, router.RegisterRequest{
		ID: "node-a", URL: a.srv.URL,
		Datacenters: []router.RegisterDatacenter{{Name: "DC-A"}},
	})

	if resp, _ := getBody(t, srv.URL+"/v1/DC-A/classes"); resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh backend: status %d, want 200", resp.StatusCode)
	}
	clock.Advance(11 * time.Second)
	resp, body := getBody(t, srv.URL+"/v1/DC-A/classes")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("stale backend: status %d, want 503 (body %s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") != "3" {
		t.Errorf("Retry-After = %q, want %q", resp.Header.Get("Retry-After"), "3")
	}
	if got := datacentersOf(t, srv.URL); len(got) != 0 {
		t.Errorf("stale backend still in union: %v", got)
	}

	// One heartbeat recovers it.
	mustRegister(t, srv.URL, router.RegisterRequest{
		ID: "node-a", URL: a.srv.URL,
		Datacenters: []router.RegisterDatacenter{{Name: "DC-A"}},
	})
	if resp, _ := getBody(t, srv.URL+"/v1/DC-A/classes"); resp.StatusCode != http.StatusOK {
		t.Errorf("recovered backend: status %d, want 200", resp.StatusCode)
	}
}

func TestCircuitBreakerOpensAndReprobes(t *testing.T) {
	clock := newTestClock()
	a := newFakeBackend(t)
	rt := router.New(router.Config{
		StaleAfter:       time.Hour, // isolate the breaker from staleness
		BreakerThreshold: 2,
		BreakerCooldown:  5 * time.Second,
		ProxyTimeout:     2 * time.Second,
		Now:              clock.Now,
	})
	srv := httptest.NewServer(rt)
	defer srv.Close()
	mustRegister(t, srv.URL, router.RegisterRequest{
		ID: "node-a", URL: a.srv.URL,
		Datacenters: []router.RegisterDatacenter{{Name: "DC-A"}},
	})

	// Kill the backend: transport failures, 503 per attempt.
	a.srv.Close()
	for i := 0; i < 2; i++ {
		resp, _ := getBody(t, srv.URL+"/v1/DC-A/classes")
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("dead backend attempt %d: status %d, want 503", i, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("dead backend attempt %d: missing Retry-After", i)
		}
	}

	// The circuit is now open: requests are rejected without touching the
	// transport (observable via the metrics counters, which stop moving).
	var m struct {
		Router router.RouterStats `json:"router"`
	}
	_, body := getBody(t, srv.URL+"/metrics")
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("metrics: %v", err)
	}
	st := m.Router.Backends["node-a"]
	if !st.CircuitOpen {
		t.Fatalf("circuit not open after %d failures: %+v", 2, st)
	}
	errorsBefore := st.Errors
	resp, _ := getBody(t, srv.URL+"/v1/DC-A/classes")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open circuit: status %d, want 503", resp.StatusCode)
	}
	_, body = getBody(t, srv.URL+"/metrics")
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if got := m.Router.Backends["node-a"].Errors; got != errorsBefore {
		t.Errorf("open circuit still hit the transport: errors %d → %d", errorsBefore, got)
	}

	// Past the cooldown a probe goes through (and fails → transport error
	// counted again, circuit re-opens).
	clock.Advance(6 * time.Second)
	resp, _ = getBody(t, srv.URL+"/v1/DC-A/classes")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("probe: status %d, want 503", resp.StatusCode)
	}
	_, body = getBody(t, srv.URL+"/metrics")
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if got := m.Router.Backends["node-a"].Errors; got != errorsBefore+1 {
		t.Errorf("probe did not hit the transport: errors %d, want %d", got, errorsBefore+1)
	}

	// The node comes back (re-registers with a live URL). A heartbeat alone
	// must NOT close the circuit — beats only prove backend→router
	// reachability — so the route recovers via the next successful probe
	// after the cooldown.
	b := newFakeBackend(t)
	mustRegister(t, srv.URL, router.RegisterRequest{
		ID: "node-a", URL: b.srv.URL,
		Datacenters: []router.RegisterDatacenter{{Name: "DC-A"}},
	})
	if resp, _ := getBody(t, srv.URL+"/v1/DC-A/classes"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("heartbeat alone closed the circuit: status %d, want 503", resp.StatusCode)
	}
	clock.Advance(6 * time.Second)
	if resp, _ := getBody(t, srv.URL+"/v1/DC-A/classes"); resp.StatusCode != http.StatusOK {
		t.Errorf("successful probe after recovery: status %d, want 200", resp.StatusCode)
	}
	if resp, _ := getBody(t, srv.URL+"/v1/DC-A/classes"); resp.StatusCode != http.StatusOK {
		t.Errorf("circuit closed after successful probe: status %d, want 200", resp.StatusCode)
	}
}

// TestCircuitBreakerSingleProbe pins the half-open contract: once the
// cooldown elapses, exactly one request (the CAS winner) probes the backend;
// concurrent requests are rejected immediately instead of each paying the
// transport timeout.
func TestCircuitBreakerSingleProbe(t *testing.T) {
	clock := newTestClock()
	// A listener that accepts connections but never answers: every proxied
	// request burns the full ProxyTimeout and fails.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	var held []net.Conn
	var heldMu sync.Mutex
	defer func() {
		heldMu.Lock()
		for _, c := range held {
			c.Close()
		}
		heldMu.Unlock()
	}()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			heldMu.Lock()
			held = append(held, c)
			heldMu.Unlock()
		}
	}()

	rt := router.New(router.Config{
		StaleAfter:       time.Hour,
		BreakerThreshold: 1,
		BreakerCooldown:  5 * time.Second,
		ProxyTimeout:     500 * time.Millisecond,
		Now:              clock.Now,
	})
	srv := httptest.NewServer(rt)
	defer srv.Close()
	mustRegister(t, srv.URL, router.RegisterRequest{
		ID: "node-a", URL: "http://" + ln.Addr().String(),
		Datacenters: []router.RegisterDatacenter{{Name: "DC-A"}},
	})

	// The first request times out and opens the circuit.
	if resp, _ := getBody(t, srv.URL+"/v1/DC-A/classes"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("hung backend: status %d, want 503", resp.StatusCode)
	}

	// Half-open: a slow probe holds the slot; a concurrent request must be
	// rejected without touching the transport (i.e. near-instantly).
	clock.Advance(6 * time.Second)
	probeDone := make(chan int, 1)
	go func() {
		resp, err := http.Get(srv.URL + "/v1/DC-A/classes")
		if err != nil {
			probeDone <- -1
			return
		}
		resp.Body.Close()
		probeDone <- resp.StatusCode
	}()
	time.Sleep(100 * time.Millisecond) // probe is now stuck in its timeout
	start := time.Now()
	resp, body := getBody(t, srv.URL+"/v1/DC-A/classes")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("concurrent with probe: status %d, want 503 (%s)", resp.StatusCode, body)
	}
	if elapsed := time.Since(start); elapsed > 250*time.Millisecond {
		t.Errorf("non-probe request took %v — it waited on the transport instead of failing fast", elapsed)
	}
	if code := <-probeDone; code != http.StatusServiceUnavailable {
		t.Errorf("probe status = %d, want 503", code)
	}
}

func TestMetricsAggregatesAcrossBackends(t *testing.T) {
	_, srv := newTestRouter(t, nil)

	// Backends whose /metrics carry distinguishable per-DC payloads.
	mkBackend := func(dc string, gen uint64) *httptest.Server {
		s := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path != "/metrics" {
				http.NotFound(w, r)
				return
			}
			fmt.Fprintf(w, `{"datacenters":{%q:{"generation":%d,"classes":4}}}`, dc, gen)
		}))
		t.Cleanup(s.Close)
		return s
	}
	sa, sb := mkBackend("DC-A", 5), mkBackend("DC-B", 9)
	mustRegister(t, srv.URL, router.RegisterRequest{
		ID: "node-a", URL: sa.URL, Datacenters: []router.RegisterDatacenter{{Name: "DC-A", Generation: 5}},
	})
	mustRegister(t, srv.URL, router.RegisterRequest{
		ID: "node-b", URL: sb.URL, Datacenters: []router.RegisterDatacenter{{Name: "DC-B", Generation: 9}},
	})

	resp, body := getBody(t, srv.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	var m struct {
		Router      router.RouterStats `json:"router"`
		Datacenters map[string]struct {
			Generation uint64 `json:"generation"`
			Classes    int    `json:"classes"`
		} `json:"datacenters"`
	}
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(m.Datacenters) != 2 {
		t.Fatalf("merged datacenters = %v, want DC-A and DC-B", m.Datacenters)
	}
	if m.Datacenters["DC-A"].Generation != 5 || m.Datacenters["DC-B"].Generation != 9 {
		t.Errorf("merged generations = %v", m.Datacenters)
	}
	if m.Router.Registrations != 2 {
		t.Errorf("registrations = %d, want 2", m.Router.Registrations)
	}
	if got := m.Router.Backends["node-a"].Datacenters["DC-A"]; got != 5 {
		t.Errorf("announced generation for node-a/DC-A = %d, want 5", got)
	}
}

// TestRouterErrorPaths pins the router's own status codes (the satellite
// "error-path tests for every endpoint" — the proxied data-plane codes are
// pinned in internal/service's table).
func TestRouterErrorPaths(t *testing.T) {
	a := newFakeBackend(t)
	_, srv := newTestRouter(t, nil)
	mustRegister(t, srv.URL, router.RegisterRequest{
		ID: "node-a", URL: a.srv.URL,
		Datacenters: []router.RegisterDatacenter{{Name: "DC-A"}},
	})

	cases := []struct {
		name   string
		method string
		path   string
		body   string
		want   int
	}{
		{"unknown datacenter", "GET", "/v1/DC-X/classes", "", http.StatusNotFound},
		{"unknown datacenter post", "POST", "/v1/DC-X/select", `{"max_concurrent_cores":1}`, http.StatusNotFound},
		{"register malformed json", "POST", "/v1/register", `{"id":`, http.StatusBadRequest},
		{"register empty body", "POST", "/v1/register", ``, http.StatusBadRequest},
		{"register missing id", "POST", "/v1/register", `{"url":"http://x:1","datacenters":[{"name":"D"}]}`, http.StatusBadRequest},
		{"register missing url", "POST", "/v1/register", `{"id":"n","datacenters":[{"name":"D"}]}`, http.StatusBadRequest},
		{"register relative url", "POST", "/v1/register", `{"id":"n","url":"x:1","datacenters":[{"name":"D"}]}`, http.StatusBadRequest},
		{"register url with path", "POST", "/v1/register", `{"id":"n","url":"http://x:1/api","datacenters":[{"name":"D"}]}`, http.StatusBadRequest},
		{"register url with query", "POST", "/v1/register", `{"id":"n","url":"http://x:1?env=prod","datacenters":[{"name":"D"}]}`, http.StatusBadRequest},
		{"register no datacenters", "POST", "/v1/register", `{"id":"n","url":"http://x:1"}`, http.StatusBadRequest},
		{"register unnamed datacenter", "POST", "/v1/register", `{"id":"n","url":"http://x:1","datacenters":[{"name":""}]}`, http.StatusBadRequest},
		{"healthz wrong method", "POST", "/healthz", "", http.StatusMethodNotAllowed},
		{"metrics wrong method", "POST", "/metrics", "", http.StatusMethodNotAllowed},
		// Wrong-method requests under /v1/ fall through to the proxy wildcard
		// and resolve the segment as a datacenter name — pinned as 404, not
		// 405 (the method-specific routes only shadow their own methods).
		{"datacenters wrong method", "DELETE", "/v1/datacenters", "", http.StatusNotFound},
		{"register wrong method", "GET", "/v1/register", "", http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, srv.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatalf("new request: %v", err)
			}
			if tc.body != "" {
				req.Header.Set("Content-Type", "application/json")
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatalf("do: %v", err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
			}
		})
	}
}

func TestDrainingBackendStopsRouting(t *testing.T) {
	clock := newTestClock()
	a := newFakeBackend(t)
	rt := router.New(router.Config{StaleAfter: 10 * time.Second, RetryAfter: 2 * time.Second, Now: clock.Now})
	srv := httptest.NewServer(rt)
	defer srv.Close()
	beat := router.RegisterRequest{
		ID: "node-a", URL: a.srv.URL,
		Datacenters: []router.RegisterDatacenter{{Name: "DC-A"}},
	}
	mustRegister(t, srv.URL, beat)

	if resp, _ := getBody(t, srv.URL+"/v1/DC-A/classes"); resp.StatusCode != http.StatusOK {
		t.Fatalf("before drain: status %d, want 200", resp.StatusCode)
	}

	// The drain beat takes the node out of rotation immediately — no
	// staleness window — even though it keeps heartbeating.
	beat.Draining = true
	mustRegister(t, srv.URL, beat)
	served := len(a.seen())
	resp, body := getBody(t, srv.URL+"/v1/DC-A/classes")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining backend: status %d, want 503 (body %s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Errorf("draining 503 missing Retry-After")
	}
	if got := len(a.seen()); got != served {
		t.Errorf("draining backend still proxied to: %d requests, want %d", got, served)
	}
	if got := datacentersOf(t, srv.URL); len(got) != 0 {
		t.Errorf("draining backend still in datacenter union: %v", got)
	}

	// A post-restart beat without the flag puts it straight back.
	beat.Draining = false
	mustRegister(t, srv.URL, beat)
	if resp, _ := getBody(t, srv.URL+"/v1/DC-A/classes"); resp.StatusCode != http.StatusOK {
		t.Errorf("after restart beat: status %d, want 200", resp.StatusCode)
	}
}

func TestFollowerBeatLearnsPrimaryReplicateAddr(t *testing.T) {
	p := newFakeBackend(t)
	f := newFakeBackend(t)
	rt := router.New(router.Config{StaleAfter: time.Minute})
	srv := httptest.NewServer(rt)
	defer srv.Close()
	mustRegister(t, srv.URL, router.RegisterRequest{
		ID: "node-p", URL: p.srv.URL, Role: "primary", ReplicateAddr: "127.0.0.1:7079",
		Datacenters: []router.RegisterDatacenter{{Name: "DC-A", Generation: 5}},
	})

	body, err := json.Marshal(router.RegisterRequest{
		ID: "node-f", URL: f.srv.URL, Role: "follower", PrimaryID: "node-p",
		Datacenters: []router.RegisterDatacenter{{Name: "DC-A", Generation: 5}},
	})
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(srv.URL+"/v1/register", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("register follower: %v", err)
	}
	defer resp.Body.Close()
	var ack router.RegisterResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatalf("decode ack: %v", err)
	}
	if ack.PrimaryReplicateAddr != "127.0.0.1:7079" {
		t.Errorf("follower ack primary_replicate_addr = %q, want %q", ack.PrimaryReplicateAddr, "127.0.0.1:7079")
	}

	// The primary's own ack never carries it.
	respP := register(t, srv.URL, router.RegisterRequest{
		ID: "node-p", URL: p.srv.URL, Role: "primary", ReplicateAddr: "127.0.0.1:7079",
		Datacenters: []router.RegisterDatacenter{{Name: "DC-A", Generation: 6}},
	})
	if respP.StatusCode != http.StatusOK {
		t.Fatalf("primary re-register: status %d", respP.StatusCode)
	}
}
