package router_test

// The cross-node acceptance harness: a real router fronting two real
// harvestd backends (service.Service + its HTTP API), each serving a
// different datacenter, glued together by the real registration loop. It
// proves the sharding contract end to end:
//
//   - select → hold → release through the router lands on the owning shard's
//     allocation ledger (and only there), and the books balance afterwards;
//   - /v1/datacenters serves the union of the live backends;
//   - killing one backend 503s only its datacenters while the other keeps
//     serving.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"harvest/internal/experiments"
	"harvest/internal/router"
	"harvest/internal/service"
)

// newBackendService builds one single-DC service at test scale.
func newBackendService(t *testing.T, dc string) *service.Service {
	t.Helper()
	cfg := service.DefaultConfig()
	cfg.Datacenters = []string{dc}
	cfg.Scale = experiments.Scale{Datacenter: 0.05, Seed: 1}
	cfg.RefreshPeriod = 0
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatalf("New(%s): %v", dc, err)
	}
	t.Cleanup(svc.Close)
	return svc
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// waitUntil polls cond at announce cadence until it holds or the deadline
// passes.
func waitUntil(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func sameStrings(got, want []string) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

func TestCrossNodeShardingEndToEnd(t *testing.T) {
	svcA := newBackendService(t, "DC-9")
	svcB := newBackendService(t, "DC-8")
	srvA := httptest.NewServer(service.NewAPI(svcA))
	defer srvA.Close()
	srvB := httptest.NewServer(service.NewAPI(svcB))
	defer srvB.Close()

	rt := router.New(router.Config{
		StaleAfter:       500 * time.Millisecond,
		RetryAfter:       time.Second,
		BreakerThreshold: 1, // a killed backend 503s from the first failed proxy
		BreakerCooldown:  100 * time.Millisecond,
		RegisterToken:    "xnode-secret", // announcers must authenticate
	})
	rsrv := httptest.NewServer(rt)
	defer rsrv.Close()

	annA, err := service.StartAnnouncer(svcA, service.AnnouncerConfig{
		RouterURL: rsrv.URL, SelfURL: srvA.URL, ID: "node-a", Interval: 50 * time.Millisecond,
		Token: "xnode-secret",
	})
	if err != nil {
		t.Fatalf("StartAnnouncer(A): %v", err)
	}
	defer annA.Close()
	annB, err := service.StartAnnouncer(svcB, service.AnnouncerConfig{
		RouterURL: rsrv.URL, SelfURL: srvB.URL, ID: "node-b", Interval: 50 * time.Millisecond,
		Token: "xnode-secret",
	})
	if err != nil {
		t.Fatalf("StartAnnouncer(B): %v", err)
	}
	defer annB.Close()

	// Union: both nodes' datacenters behind one surface.
	waitUntil(t, 5*time.Second, "both backends in /v1/datacenters", func() bool {
		return sameStrings(datacentersOf(t, rsrv.URL), []string{"DC-8", "DC-9"})
	})

	// A reserving select through the router must land on the owning shard.
	resp, body := postJSON(t, rsrv.URL+"/v1/DC-9/select", `{"job_type":"medium","max_concurrent_cores":8}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("select via router: status %d (%s)", resp.StatusCode, body)
	}
	var sel struct {
		Datacenter  string    `json:"datacenter"`
		Satisfiable bool      `json:"satisfiable"`
		Lease       uint64    `json:"lease"`
		Granted     []float64 `json:"granted"`
	}
	if err := json.Unmarshal(body, &sel); err != nil {
		t.Fatalf("unmarshal select: %v (%s)", err, body)
	}
	if sel.Datacenter != "DC-9" || !sel.Satisfiable || sel.Lease == 0 {
		t.Fatalf("select via router = %+v, want a satisfiable DC-9 lease", sel)
	}
	stA, _ := svcA.LedgerStats("DC-9")
	if stA.ActiveLeases != 1 || stA.OutstandingMillis != 8000 {
		t.Fatalf("owning shard books = %+v, want 1 lease / 8000 millis outstanding", stA)
	}
	stB, _ := svcB.LedgerStats("DC-8")
	if stB.Reserves != 0 || stB.ActiveLeases != 0 {
		t.Fatalf("non-owning shard saw the reservation: %+v", stB)
	}

	// Release round-trips through the router to the same shard.
	resp, body = postJSON(t, rsrv.URL+"/v1/DC-9/release",
		`{"lease":`+strconv.FormatUint(sel.Lease, 10)+`}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("release via router: status %d (%s)", resp.StatusCode, body)
	}
	stA, _ = svcA.LedgerStats("DC-9")
	if stA.OutstandingMillis != 0 || stA.ActiveLeases != 0 {
		t.Fatalf("books after release = %+v, want nothing outstanding", stA)
	}
	if stA.ReservedMillis != stA.ReleasedMillis+stA.ExpiredMillis+stA.ForfeitedMillis+stA.OutstandingMillis {
		t.Fatalf("conservation violated on the owning shard: %+v", stA)
	}

	// The other shard serves queries through the router too.
	if resp, body := getBody(t, rsrv.URL+"/v1/DC-8/classes"); resp.StatusCode != http.StatusOK {
		t.Fatalf("DC-8 classes via router: status %d (%s)", resp.StatusCode, body)
	}

	// Kill node B: announcer stops beating, server stops answering. Its
	// datacenter must 503 with a Retry-After while DC-9 keeps serving, and it
	// must drop out of the union once stale.
	annB.Close()
	srvB.Close()
	waitUntil(t, 5*time.Second, "DC-8 to go unavailable", func() bool {
		resp, err := http.Get(rsrv.URL + "/v1/DC-8/classes")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusServiceUnavailable
	})
	resp, err = http.Get(rsrv.URL + "/v1/DC-8/classes")
	if err != nil {
		t.Fatalf("GET dead DC-8: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("dead backend: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Errorf("dead backend 503 is missing Retry-After")
	}
	// The surviving shard is unaffected — queries and reservations still work.
	resp2, body := postJSON(t, rsrv.URL+"/v1/DC-9/select", `{"job_type":"short","max_concurrent_cores":2,"hold_seconds":30}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("surviving shard select: status %d (%s)", resp2.StatusCode, body)
	}
	if err := json.Unmarshal(body, &sel); err != nil || sel.Datacenter != "DC-9" {
		t.Fatalf("surviving shard select = %s (err %v)", body, err)
	}
	waitUntil(t, 5*time.Second, "union to shrink to DC-9", func() bool {
		return sameStrings(datacentersOf(t, rsrv.URL), []string{"DC-9"})
	})
}
