package router

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"harvest/internal/ledger"
	"harvest/internal/obs"
	"harvest/internal/signalproc"
	"harvest/internal/wire"
)

// The router's binary data plane. The front end accepts the same
// length-prefixed frame dialect harvestd serves (internal/wire) and relays
// each data-plane request to the shard owning its datacenter:
//
//   - A backend that advertised binary_addr in its register heartbeat gets
//     the frame over a pipelined connection (binPipe): many frames — from
//     many client connections — are in flight on one backend conn at once,
//     each travelling under a router-minted relay id and completed by the
//     echoed id when its response frame arrives. No decode, no re-encode,
//     no HTTP, and no lock-step round trip per frame.
//   - A JSON-only backend gets the frame translated onto its HTTP API and
//     the JSON response translated back into a frame, so a binary client
//     works against a mixed fleet mid-rollout; the extra cost lands only on
//     backends that haven't upgraded.
//
// Client-facing ordering: responses on a client connection go back in
// request order even though relays complete out of order. The dialect's
// pipelining clients (loadgen) reuse one frame id per connection and match
// responses positionally, so per-connection FIFO is part of the contract.
//
// Registration, discovery, and metrics stay on the JSON control plane: the
// binary listener serves data-plane opcodes only.

const (
	// binFrontIdleTimeout mirrors harvestd's binary server: an idle client
	// conn is dropped after this long.
	binFrontIdleTimeout = 2 * time.Minute
	// binPipeIdleMax reaps backend pipes idle this long — well below the
	// backends' 2-minute server-side idle timeout, so the router drops a
	// pipe before the backend does (a send racing the backend's close would
	// read as a spurious transport failure, same reasoning as the HTTP
	// transport's IdleConnTimeout).
	binPipeIdleMax = 30 * time.Second
	// binPipeCount bounds pipelined conns per backend. The backend serves
	// each connection with one goroutine, so parallelism across its cores
	// needs several pipes; beyond a handful the per-conn syscall batching
	// wins flatten out.
	binPipeCount = 4
	// binRelayWindow bounds in-flight relays per client connection: the
	// reader stops pulling frames when this many responses are pending, the
	// writer releases a slot as each response drains.
	binRelayWindow = 64
)

var (
	errPipeClosed = errors.New("binary pipe closed")
	errPipeDesync = errors.New("backend sent a response frame nobody is waiting for")
)

// binCall is one in-flight relay on a pipe: the response frame (an owned
// copy) or the pipe's terminal error arrives via done.
type binCall struct {
	done  chan struct{}
	frame []byte
	err   error
}

// binPipe is one pipelined connection to a backend's binary listener.
// Senders — one per relayed frame, from any number of client connections —
// enqueue onto sendq; the single writer goroutine drains the queue into a
// buffered writer and flushes once per batch, so a burst of relays costs one
// write syscall, not one each. The single reader goroutine completes waiters
// by the echoed relay id. Any read error, timeout with frames in flight, or
// unknown id is terminal: the stream can no longer be trusted, so every
// waiter fails and the pipe is removed from its backend.
type binPipe struct {
	c       net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	timeout time.Duration

	sendq chan []byte // frames queued for the writer goroutine

	mu      sync.Mutex
	waiters map[uint64]*binCall

	// closed flips exactly once, in fail. It is read lock-free on the hot
	// paths (getPipe scans every pipe per relayed frame); the waiters map is
	// still guarded by mu, and fail orders the flip before the sweep.
	closed atomic.Bool

	kick chan struct{} // cap 1: wakes the parked reader when a frame is in flight
	stop chan struct{} // closed on failure: unparks the reader and writer for exit

	inFlight atomic.Int64
	lastUse  atomic.Int64 // unix nanos of the last send or response
}

func newBinPipe(c net.Conn, timeout time.Duration) *binPipe {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	p := &binPipe{
		c:       c,
		br:      bufio.NewReaderSize(c, 64<<10),
		bw:      bufio.NewWriterSize(c, 64<<10),
		timeout: timeout,
		sendq:   make(chan []byte, 4*binRelayWindow),
		waiters: make(map[uint64]*binCall, binRelayWindow),
		kick:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
	}
	p.lastUse.Store(time.Now().UnixNano())
	return p
}

func (p *binPipe) dead() bool { return p.closed.Load() }

// send registers call under relayID (which the caller already stamped into
// the frame header) and queues the frame for the writer. The response (or
// the pipe's failure) arrives via call.done; on a send error the pipe has
// already failed, which completed the call.
func (p *binPipe) send(relayID uint64, frame []byte, call *binCall) error {
	p.mu.Lock()
	if p.closed.Load() {
		p.mu.Unlock()
		return errPipeClosed
	}
	p.waiters[relayID] = call
	p.mu.Unlock()
	p.inFlight.Add(1)
	p.lastUse.Store(time.Now().UnixNano())
	select {
	case p.sendq <- frame:
	case <-p.stop:
		// fail already swept the waiters map — this call included.
		return errPipeClosed
	}
	select {
	case p.kick <- struct{}{}:
	default:
	}
	return nil
}

// writeLoop is the pipe's single writer: it drains every queued frame into
// the buffered writer and flushes once the queue runs dry, so relays arriving
// together share a syscall. Relay goroutines trickle onto the queue one
// scheduler slice at a time, so an empty queue right after a write usually
// means the batch is still forming, not that it is over — the loop yields
// once and re-drains before paying the flush syscall. A write or flush error
// is terminal: the stream may hold a partial frame and nothing sane can
// follow.
func (p *binPipe) writeLoop() {
	for {
		var frame []byte
		select {
		case frame = <-p.sendq:
		case <-p.stop:
			return
		}
		p.c.SetWriteDeadline(time.Now().Add(p.timeout))
		yielded := false
		for {
			if _, err := p.bw.Write(frame); err != nil {
				p.fail(err)
				return
			}
			select {
			case frame = <-p.sendq:
				continue
			default:
			}
			if !yielded {
				yielded = true
				runtime.Gosched()
				select {
				case frame = <-p.sendq:
					continue
				default:
				}
			}
			break
		}
		if err := p.bw.Flush(); err != nil {
			p.fail(err)
			return
		}
	}
}

// readLoop is the pipe's single reader. It parks while nothing is in flight
// (no read deadline ticking against an idle backend), then reads response
// frames under the relay timeout and completes waiters by echoed id.
func (p *binPipe) readLoop(b *backend) {
	defer b.removePipe(p)
	var scratch []byte
	for {
		if p.closed.Load() {
			return
		}
		p.mu.Lock()
		pending := len(p.waiters)
		p.mu.Unlock()
		if pending == 0 {
			select {
			case <-p.kick:
				continue
			case <-p.stop:
				return
			}
		}
		p.c.SetReadDeadline(time.Now().Add(p.timeout))
		h, frame, err := readRawFrame(p.br, &scratch)
		if err != nil {
			p.fail(err)
			return
		}
		p.mu.Lock()
		call, ok := p.waiters[h.ID]
		delete(p.waiters, h.ID)
		p.mu.Unlock()
		if !ok {
			p.fail(errPipeDesync)
			return
		}
		p.lastUse.Store(time.Now().UnixNano())
		// The scratch buffer is reused for the next frame; the waiter gets
		// an owned copy.
		call.frame = append([]byte(nil), frame...)
		close(call.done)
		p.inFlight.Add(-1)
	}
}

// fail completes every waiter with err and closes the pipe. Idempotent. The
// closed flip happens before the sweep takes mu, and send checks it under the
// same mu before registering, so no waiter can slip in after the sweep.
func (p *binPipe) fail(err error) {
	if !p.closed.CompareAndSwap(false, true) {
		return
	}
	p.mu.Lock()
	waiters := p.waiters
	p.waiters = nil
	p.mu.Unlock()
	close(p.stop)
	p.c.Close()
	for _, call := range waiters {
		call.err = err
		close(call.done)
		p.inFlight.Add(-1)
	}
}

// getPipe returns a live pipe to the backend, dialing one if needed. The
// pipe table is a fixed array of binPipeCount slots:
//
//   - Keyed frames (release/renew, keyed by lease id) always use slot
//     key%binPipeCount. Two frames for the same lease therefore share a pipe,
//     and since each pipe is strictly FIFO and the backend serves a conn
//     sequentially, operations on one lease reach the ledger in the order
//     the client issued them — a release can never overtake the renew it
//     was pipelined behind.
//   - Unkeyed frames take the least-loaded live slot, dialing an empty one
//     when every live pipe is busy.
//
// Idle pipes older than binPipeIdleMax are reaped on the way (their server
// side may be about to close them).
func (b *backend) getPipe(addr string, dialTimeout time.Duration, key uint64, keyed bool) (*binPipe, error) {
	now := time.Now().UnixNano()
	slot := -1
	b.binMu.Lock()
	for i, p := range b.binPipes {
		if p == nil {
			continue
		}
		if p.dead() {
			b.binPipes[i] = nil
			continue
		}
		if p.inFlight.Load() == 0 && now-p.lastUse.Load() > int64(binPipeIdleMax) {
			go p.fail(errPipeClosed)
			b.binPipes[i] = nil
		}
	}
	if keyed {
		slot = int(key % binPipeCount)
		if p := b.binPipes[slot]; p != nil {
			b.binMu.Unlock()
			return p, nil
		}
	} else {
		var best *binPipe
		empty := -1
		for i, p := range b.binPipes {
			if p == nil {
				if empty < 0 {
					empty = i
				}
				continue
			}
			if best == nil || p.inFlight.Load() < best.inFlight.Load() {
				best = p
			}
		}
		if best != nil && (best.inFlight.Load() == 0 || empty < 0) {
			b.binMu.Unlock()
			return best, nil
		}
		slot = empty
	}
	b.binMu.Unlock()
	// The slot needs a pipe. The dial runs unlocked, so a racing relay for
	// the same slot may dial too; the loser's conn is closed and the winner's
	// pipe is used, keeping the slot→pipe mapping single-valued.
	c, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, err
	}
	p := newBinPipe(c, dialTimeout)
	b.binMu.Lock()
	if q := b.binPipes[slot]; q != nil && !q.dead() {
		b.binMu.Unlock()
		p.fail(errPipeClosed) // no loops started yet: just closes the conn
		return q, nil
	}
	b.binPipes[slot] = p
	b.binMu.Unlock()
	go p.readLoop(b)
	go p.writeLoop()
	return p, nil
}

// removePipe clears a dead pipe's slot; called only by the pipe's own
// readLoop on exit.
func (b *backend) removePipe(p *binPipe) {
	b.binMu.Lock()
	for i, q := range b.binPipes {
		if q == p {
			b.binPipes[i] = nil
			break
		}
	}
	b.binMu.Unlock()
}

// closeBinPipes fails every pipe; called when the backend's binary address
// changes or the backend is collected.
func (b *backend) closeBinPipes() {
	b.binMu.Lock()
	pipes := b.binPipes
	b.binPipes = [binPipeCount]*binPipe{}
	b.binMu.Unlock()
	for _, p := range pipes {
		if p != nil {
			p.fail(errPipeClosed)
		}
	}
}

// SetBinaryAdvertise records the host:port published as binary_addr on
// /v1/datacenters and /metrics. Call before serving traffic.
func (rt *Router) SetBinaryAdvertise(addr string) { rt.binAdvertise = addr }

// ListenAndServeBinary binds addr and serves the binary dialect on it. The
// returned channel yields the accept loop's exit error (nil on Close).
func (rt *Router) ListenAndServeBinary(addr string) (net.Addr, <-chan error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	errc := make(chan error, 1)
	go func() { errc <- rt.ServeBinary(ln) }()
	return ln.Addr(), errc, nil
}

// ServeBinary accepts frame connections on ln until CloseBinary. Returns nil
// on a close-initiated exit, the accept error otherwise.
func (rt *Router) ServeBinary(ln net.Listener) error {
	rt.binMu.Lock()
	if rt.binClosed {
		rt.binMu.Unlock()
		ln.Close()
		return nil
	}
	rt.binLn = ln
	if rt.binConns == nil {
		rt.binConns = make(map[net.Conn]struct{})
	}
	rt.binMu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			rt.binMu.Lock()
			closed := rt.binClosed
			rt.binMu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		rt.binMu.Lock()
		if rt.binClosed {
			rt.binMu.Unlock()
			c.Close()
			return nil
		}
		rt.binConns[c] = struct{}{}
		rt.binWG.Add(1)
		rt.binMu.Unlock()
		rt.binAccepted.Add(1)
		rt.binOpenConns.Add(1)
		go rt.serveBinaryConn(c)
	}
}

// CloseBinary stops the binary listener and closes every client connection,
// then waits for their handlers. Safe to call with no listener serving.
func (rt *Router) CloseBinary() {
	rt.binMu.Lock()
	rt.binClosed = true
	ln := rt.binLn
	conns := make([]net.Conn, 0, len(rt.binConns))
	for c := range rt.binConns {
		conns = append(conns, c)
	}
	rt.binMu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	rt.binWG.Wait()
}

func (rt *Router) dropBinConn(c net.Conn) {
	c.Close()
	rt.binMu.Lock()
	delete(rt.binConns, c)
	rt.binMu.Unlock()
	rt.binOpenConns.Add(-1)
	rt.binWG.Done()
}

// readRawFrame reads one whole frame — header and payload — into *scratch and
// returns the parsed header plus the raw bytes, ready to forward verbatim.
func readRawFrame(br *bufio.Reader, scratch *[]byte) (wire.Header, []byte, error) {
	buf := *scratch
	if cap(buf) < wire.HeaderSize {
		buf = make([]byte, wire.HeaderSize, 4096)
	}
	buf = buf[:wire.HeaderSize]
	if _, err := io.ReadFull(br, buf); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = wire.ErrBadFrame
		}
		return wire.Header{}, nil, err
	}
	h, err := wire.ParseHeader(buf)
	if err != nil {
		return wire.Header{}, nil, err
	}
	if h.Op.IsRepl() {
		// Replication opcodes carry the 64 MiB replication payload cap through
		// ParseHeader; honoring one here — from a public client or a desynced
		// backend pipe — would let a peer balloon this buffer. They belong on
		// harvestd's dedicated replication listener only.
		return wire.Header{}, nil, wire.ErrBadFrame
	}
	total := wire.HeaderSize + int(h.Len)
	if cap(buf) < total {
		nb := make([]byte, total)
		copy(nb, buf[:wire.HeaderSize])
		buf = nb
	}
	buf = buf[:total]
	if _, err := io.ReadFull(br, buf[wire.HeaderSize:]); err != nil {
		return wire.Header{}, nil, wire.ErrBadFrame
	}
	*scratch = buf
	return h, buf, nil
}

// pendingBinResp is one client frame's slot in the connection's response
// order: relays complete out of order, responses go back in request order.
// Exactly one completion shape is set by relayStart:
//
//   - frame alone: the response is already built (a router reject);
//   - call + finish: a native relay is in flight on a pipe — the writer waits
//     on call.done, then finish turns the backend's frame into the client's
//     (id re-stamp, metrics, trace, breaker evidence);
//   - done: a translation bridge goroutine is filling frame.
type pendingBinResp struct {
	frame  []byte
	call   *binCall
	finish func() []byte
	done   chan struct{}
}

// serveBinaryConn is one client connection's loop. The reader parses frames
// and dispatches each relay synchronously — resolving the datacenter and
// queueing the frame onto a backend pipe costs no goroutine and no copy — so
// an entire pipelined burst is on its way to the backends before the reader
// parks and the pipes' writers flush it as one batch. The writer goroutine
// puts responses back in request order (per-connection FIFO is the dialect's
// contract), flushing whenever it would otherwise block — the write-behind
// discipline of the backends' own server. Up to binRelayWindow frames ride
// between reader and writer at once.
func (rt *Router) serveBinaryConn(c net.Conn) {
	defer rt.dropBinConn(c)
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	br := bufio.NewReaderSize(c, 64<<10)
	bw := bufio.NewWriterSize(c, 64<<10)

	order := make(chan *pendingBinResp, binRelayWindow)
	slots := make(chan struct{}, binRelayWindow)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		flush := func() {
			if bw.Flush() != nil {
				// The client is gone. Closing the conn unparks the reader;
				// the remaining relays drain into the sticky writer error.
				c.Close()
			}
		}
		for {
			var pr *pendingBinResp
			var ok bool
			select {
			case pr, ok = <-order:
			default:
				// Nothing queued: put buffered responses on the wire before
				// parking.
				flush()
				pr, ok = <-order
			}
			if !ok {
				return
			}
			wait := pr.done
			if pr.call != nil {
				wait = pr.call.done
			}
			if wait != nil {
				select {
				case <-wait:
				default:
					// The head relay is still out: flush what's complete,
					// then wait for it.
					flush()
					<-wait
				}
			}
			frame := pr.frame
			if pr.finish != nil {
				frame = pr.finish()
			}
			bw.Write(frame)
			<-slots
		}
	}()

	var raw []byte
	for {
		c.SetReadDeadline(time.Now().Add(binFrontIdleTimeout))
		h, frame, err := readRawFrame(br, &raw)
		if err != nil {
			if err != io.EOF {
				// Garbage framing: nothing on this conn can be trusted
				// anymore (we may be mid-stream). Close without answering.
				rt.binFramingErrors.Add(1)
			}
			break
		}
		slots <- struct{}{}
		order <- rt.relayStart(h, frame)
	}
	// Every queued entry self-completes (native relays via their pipe,
	// translations via their goroutine), so the writer drains the order and
	// exits; nothing else to wait for.
	close(order)
	<-writerDone
	bw.Flush()
}

// binReject builds a router-originated error frame (bad request, unknown
// datacenter, shard unavailable).
func (rt *Router) binReject(id uint64, code uint16, msg string) []byte {
	rt.binRejected.Add(1)
	return wire.AppendErrorResp(nil, id, code, msg)
}

// relayStart routes one request frame from the connection's reader: resolve
// the datacenter, apply the same staleness and breaker gates as the HTTP
// proxy, then dispatch — natively by queueing the frame onto a backend pipe
// (no goroutine, no blocking wait; the writer collects the response), or via
// the JSON translation bridge on its own goroutine (it blocks on HTTP).
// Everything here runs on the reader goroutine, so a pipelined burst is fully
// dispatched before the connection turns to its responses.
func (rt *Router) relayStart(h wire.Header, frame []byte) *pendingBinResp {
	payload := frame[wire.HeaderSize:]
	if !h.Op.IsRequest() {
		return &pendingBinResp{frame: rt.binReject(h.ID, 400, "unknown opcode "+strconv.Itoa(int(h.Op)))}
	}
	dcb, ok := wire.PeekDC(payload)
	if !ok {
		return &pendingBinResp{frame: rt.binReject(h.ID, 400, "bad request payload")}
	}
	dc := string(dcb)
	// Per-frame trace + per-opcode latency. The echoed request id doubles as
	// the trace id — a binary client can look its own frames up on
	// /debug/traces with no wire change (id 0 gets a router-assigned one).
	tr := rt.rec.Begin(h.ID, obs.DialectBinary, h.Op.String(), dc)
	opStart := time.Now()
	// fin records the per-opcode latency and closes the trace — called exactly
	// once per frame, on whichever goroutine learns the outcome.
	fin := func(status int) {
		if i := int(h.Op) - 1; i >= 0 && i < len(rt.binOps) {
			rt.binOps[i].Observe(time.Since(opStart), status)
		}
		tr.Finish(status)
	}
	reject := func(code uint16, msg string) *pendingBinResp {
		fin(int(code))
		return &pendingBinResp{frame: rt.binReject(h.ID, code, msg)}
	}
	// The same read/write split as the HTTP path: class queries, placement,
	// and dry-run selects spread across the primary and its generation-fresh
	// followers; everything that moves ledger state — including block
	// creation and reimaging, which move the durability books — pins to the
	// owner (the switch's default).
	read := false
	switch h.Op {
	case wire.OpClasses, wire.OpServerClass, wire.OpPlace:
		read = true
	case wire.OpSelect:
		if fl, ok := wire.PeekSelectFlags(payload); ok {
			read = fl&wire.SelectFlagDryRun != 0
		}
	}
	now := rt.now()
	b := rt.pickBackend(dc, read, now)
	if b == nil {
		return reject(404, "unknown datacenter "+strconv.Quote(dc))
	}
	rt.mu.RLock()
	// Copied under the lock, like the HTTP path: registration beats
	// rewrite these under the write lock.
	baseURL, binAddr := b.url, b.binAddr
	rt.mu.RUnlock()
	if !rt.alive(b, now) {
		if cutoff := now.Add(-10 * rt.cfg.StaleAfter).UnixNano(); b.lastBeat.Load() <= cutoff {
			rt.collectBackend(b, cutoff)
			return reject(404, "unknown datacenter "+strconv.Quote(dc))
		}
		rt.unavailable.Add(1)
		return reject(503, "datacenter "+strconv.Quote(dc)+" unavailable: backend "+b.id+" missed heartbeats")
	}
	if b.draining.Load() {
		// Same as the HTTP path: pickBackend already routed around the
		// draining node where it could; this one was the only candidate.
		rt.unavailable.Add(1)
		return reject(503, "datacenter "+strconv.Quote(dc)+" unavailable: backend "+b.id+" draining for planned shutdown")
	}
	// Breaker gate, same shape as the HTTP path: open → fast 503 frame;
	// half-open → exactly one CAS winner probes.
	gateStart := time.Now()
	probe := false
	if openUntil := b.openUntil.Load(); openUntil != 0 {
		if openUntil > now.UnixNano() {
			rt.unavailable.Add(1)
			return reject(503, "datacenter "+strconv.Quote(dc)+" unavailable: backend "+b.id+" circuit open")
		}
		if !b.probing.CompareAndSwap(false, true) {
			rt.unavailable.Add(1)
			return reject(503, "datacenter "+strconv.Quote(dc)+" unavailable: backend "+b.id+" probe in flight")
		}
		probe = true
	}
	tr.Span("breaker_wait", gateStart)
	// settle records the transport outcome (success closes the circuit,
	// failure feeds the breaker); cancel releases the probe slot without
	// recording evidence (client-side errors say nothing about the backend).
	settle := func(ok bool) {
		if ok {
			b.consecFails.Store(0)
			b.openUntil.Store(0)
		} else {
			rt.proxyFailed(b)
		}
		if probe {
			b.probing.Store(false)
		}
	}
	cancel := func() {
		if probe {
			b.probing.Store(false)
		}
	}
	if read {
		b.reads.Add(1)
	}
	// inflight brackets the backend leg — the power-of-two-choices load
	// signal the read picker compares; lat is the per-backend latency
	// histogram, fed on every outcome.
	b.inflight.Add(1)
	legStart := time.Now()

	if binAddr == "" {
		// Translation bridge: blocks on the backend's HTTP API, so it gets a
		// goroutine and an owned copy of the payload (the reader's scratch is
		// reused by the next frame).
		pl := append([]byte(nil), payload...)
		pr := &pendingBinResp{done: make(chan struct{})}
		go func() {
			defer close(pr.done)
			respFrame, status := rt.translateBinary(baseURL, dc, h, pl, settle, cancel)
			b.inflight.Add(-1)
			b.lat.Observe(time.Since(legStart), status)
			tr.Span("backend_leg", legStart)
			fin(status)
			pr.frame = respFrame
		}()
		return pr
	}

	// Native relay. The backend leg travels under a router-minted relay id
	// (unique across every client conn sharing the pipe — the dialect's
	// pipelining clients reuse one id per conn); the client's id — the trace
	// id on both tiers — rides as a FlagTrace payload prefix. Release and
	// renew frames are keyed onto a pipe by lease id so operations on the
	// same lease keep their client-issued order across the fan-out.
	var pipeKey uint64
	keyed := false
	if h.Op == wire.OpRelease || h.Op == wire.OpRenew {
		pipeKey, keyed = wire.PeekLease(payload)
	}
	p, err := b.getPipe(binAddr, rt.cfg.ProxyTimeout, pipeKey, keyed)
	if err != nil {
		b.inflight.Add(-1)
		b.lat.Observe(time.Since(legStart), 503)
		settle(false)
		return reject(503, "datacenter "+strconv.Quote(dc)+" unavailable: backend "+b.id+" unreachable")
	}
	relayID := rt.binRelayID.Add(1)
	relayed := wire.AppendRelayFrame(make([]byte, 0, len(frame)+8), h, payload, relayID, h.ID)
	call := &binCall{done: make(chan struct{})}
	if err := p.send(relayID, relayed, call); err != nil {
		b.inflight.Add(-1)
		b.lat.Observe(time.Since(legStart), 503)
		settle(false)
		return reject(503, "datacenter "+strconv.Quote(dc)+" unavailable: backend "+b.id+" unreachable")
	}
	pr := &pendingBinResp{call: call}
	pr.finish = func() []byte {
		b.inflight.Add(-1)
		tr.Span("backend_leg", legStart)
		if call.err != nil {
			// Read failure, relay timeout, or a response id nobody was
			// waiting for (a desynced backend): the pipe has already failed
			// and every waiter on it — including this one — got the error.
			b.lat.Observe(time.Since(legStart), 503)
			settle(false)
			fin(503)
			return rt.binReject(h.ID, 503, "datacenter "+strconv.Quote(dc)+" unavailable: backend "+b.id+" sent a bad response frame")
		}
		settle(true)
		b.proxied.Add(1)
		rt.proxiedTotal.Add(1)
		rt.binForwarded.Add(1)
		wire.SetFrameID(call.frame, h.ID)
		if wire.Op(call.frame[2]) == wire.OpError {
			// Relayed backend error frames count as errors in the op
			// metrics, matching how the shard's own dispatch counts them.
			b.lat.Observe(time.Since(legStart), 500)
			fin(500)
			return call.frame
		}
		b.lat.Observe(time.Since(legStart), http.StatusOK)
		fin(http.StatusOK)
		return call.frame
	}
	return pr
}

// patternOrdinals maps the JSON API's pattern names back to wire ordinals
// for the translation bridge.
var patternOrdinals = func() map[string]uint8 {
	m := make(map[string]uint8, signalproc.NumPatterns)
	for p := 0; p < signalproc.NumPatterns; p++ {
		m[signalproc.Pattern(p).String()] = uint8(p)
	}
	return m
}()

var jobNames = map[uint8]string{
	wire.JobShort:  "short",
	wire.JobMedium: "medium",
	wire.JobLong:   "long",
	// JobFromLastRun: empty job_type lets the backend classify from
	// last_run_seconds, same as the JSON dialect.
	wire.JobFromLastRun: "",
}

var jobOrdinals = map[string]uint8{
	"short":  wire.JobShort,
	"medium": wire.JobMedium,
	"long":   wire.JobLong,
}

// jsonClassInfo mirrors the backends' JSON class shape (internal/service
// classInfo) for the translation bridge.
type jsonClassInfo struct {
	ID                 int     `json:"id"`
	Pattern            string  `json:"pattern"`
	NumTenants         int     `json:"num_tenants"`
	NumServers         int     `json:"num_servers"`
	AvgUtilization     float64 `json:"avg_utilization"`
	PeakUtilization    float64 `json:"peak_utilization"`
	CurrentUtilization float64 `json:"current_utilization"`
	AllocatedCores     float64 `json:"allocated_cores"`
	ExampleServer      int64   `json:"example_server"`
}

func classRecOf(c jsonClassInfo) wire.ClassRec {
	return wire.ClassRec{
		ID:            uint32(c.ID),
		Pattern:       patternOrdinals[c.Pattern],
		NumTenants:    uint32(c.NumTenants),
		NumServers:    uint32(c.NumServers),
		Avg:           c.AvgUtilization,
		Peak:          c.PeakUtilization,
		Current:       c.CurrentUtilization,
		AllocMillis:   ledger.ToMillis(c.AllocatedCores),
		ExampleServer: c.ExampleServer,
	}
}

// translateBinary bridges one frame onto a JSON-only backend's HTTP API and
// encodes the JSON response back into a frame. This is the mixed-fleet
// compatibility path — correctness over speed; upgraded backends never pay
// it.
func (rt *Router) translateBinary(baseURL, dc string, h wire.Header, payload []byte, settle func(bool), cancel func()) ([]byte, int) {
	var (
		method = http.MethodPost
		path   string
		body   []byte
		selReq wire.SelectReq
		// ingestAuth marks bridged requests for the backends' bearer-gated
		// ingest surface (reimage shares the telemetry token, which the
		// router already holds as its promote token).
		ingestAuth bool
	)
	switch h.Op {
	case wire.OpSelect:
		if err := selReq.Decode(payload); err != nil {
			cancel()
			return rt.binReject(h.ID, 400, "bad select payload"), 400
		}
		name, ok := jobNames[selReq.Job]
		if !ok {
			cancel()
			return rt.binReject(h.ID, 400, "bad job type"), 400
		}
		body, _ = json.Marshal(map[string]any{
			"job_type":             name,
			"last_run_seconds":     selReq.LastRunSeconds,
			"max_concurrent_cores": selReq.MaxCores,
			"hold_seconds":         float64(selReq.HoldMillis) / 1000,
			"dry_run":              selReq.Flags&wire.SelectFlagDryRun != 0,
		})
		path = "/v1/" + dc + "/select"
	case wire.OpRelease:
		var m wire.ReleaseReq
		if err := m.Decode(payload); err != nil {
			cancel()
			return rt.binReject(h.ID, 400, "bad release payload"), 400
		}
		body, _ = json.Marshal(map[string]any{"lease": m.Lease})
		path = "/v1/" + dc + "/release"
	case wire.OpRenew:
		var m wire.RenewReq
		if err := m.Decode(payload); err != nil {
			cancel()
			return rt.binReject(h.ID, 400, "bad renew payload"), 400
		}
		body, _ = json.Marshal(map[string]any{
			"lease":        m.Lease,
			"hold_seconds": float64(m.HoldMillis) / 1000,
		})
		path = "/v1/" + dc + "/renew"
	case wire.OpPlace:
		var m wire.PlaceReq
		if err := m.Decode(payload); err != nil {
			cancel()
			return rt.binReject(h.ID, 400, "bad place payload"), 400
		}
		body, _ = json.Marshal(map[string]any{
			"replication":         m.Replication,
			"writer":              m.Writer,
			"relaxed_environment": m.Flags&wire.PlaceFlagRelaxed != 0,
		})
		path = "/v1/" + dc + "/place"
	case wire.OpPlaceBlock:
		var m wire.PlaceBlockReq
		if err := m.Decode(payload); err != nil {
			cancel()
			return rt.binReject(h.ID, 400, "bad place-block payload"), 400
		}
		body, _ = json.Marshal(map[string]any{
			"replication":         m.Replication,
			"writer":              m.Writer,
			"relaxed_environment": m.Flags&wire.PlaceFlagRelaxed != 0,
		})
		path = "/v1/" + dc + "/blocks"
	case wire.OpReimage:
		var m wire.ReimageReq
		if err := m.Decode(payload); err != nil {
			cancel()
			return rt.binReject(h.ID, 400, "bad reimage payload"), 400
		}
		body, _ = json.Marshal(map[string]any{"server": m.Server})
		path = "/v1/" + dc + "/reimage"
		ingestAuth = true
	case wire.OpClasses:
		method, path = http.MethodGet, "/v1/"+dc+"/classes"
	case wire.OpServerClass:
		var m wire.ServerClassReq
		if err := m.Decode(payload); err != nil {
			cancel()
			return rt.binReject(h.ID, 400, "bad server class payload"), 400
		}
		method, path = http.MethodGet, fmt.Sprintf("/v1/%s/servers/%d/class", dc, m.Server)
	default:
		cancel()
		return rt.binReject(h.ID, 400, "unknown opcode "+strconv.Itoa(int(h.Op))), 400
	}

	var outBody io.Reader = http.NoBody
	if len(body) > 0 {
		outBody = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, baseURL+path, outBody)
	if err != nil {
		cancel()
		return rt.binReject(h.ID, 500, "bad proxy request: "+err.Error()), 500
	}
	if len(body) > 0 {
		req.Header.Set("Content-Type", "application/json")
	}
	if ingestAuth && rt.cfg.PromoteToken != "" {
		req.Header.Set("Authorization", "Bearer "+rt.cfg.PromoteToken)
	}
	req.Header.Set(hopHeader, "1")
	// The bridged JSON request carries the frame id as its trace id so the
	// shard's trace joins the router's even across the translation path.
	req.Header.Set(obs.TraceHeader, obs.FormatTraceID(h.ID))
	res, err := rt.client.Do(req)
	if err != nil {
		settle(false)
		return rt.binReject(h.ID, 503, "datacenter "+strconv.Quote(dc)+" unavailable: backend unreachable"), 503
	}
	defer res.Body.Close()
	rb, err := io.ReadAll(io.LimitReader(res.Body, maxProxyResponse+1))
	if err != nil || len(rb) > maxProxyResponse {
		settle(false)
		return rt.binReject(h.ID, 503, "datacenter "+strconv.Quote(dc)+" unavailable: backend sent a truncated or oversized response"), 503
	}
	settle(true)
	rt.proxiedTotal.Add(1)
	rt.binTranslated.Add(1)

	if res.StatusCode != http.StatusOK {
		// Relay the backend's own error with its status, exactly as the HTTP
		// proxy relays status codes verbatim. Not counted as a router
		// rejection — the backend answered.
		var e struct {
			Error string `json:"error"`
		}
		json.Unmarshal(rb, &e)
		if e.Error == "" {
			e.Error = http.StatusText(res.StatusCode)
		}
		return wire.AppendErrorResp(nil, h.ID, uint16(res.StatusCode), e.Error), res.StatusCode
	}

	frame, err := encodeTranslated(h, rb, selReq)
	if err != nil {
		return rt.binReject(h.ID, 500, "bad backend response: "+err.Error()), 500
	}
	return frame, http.StatusOK
}

// encodeTranslated converts a 200 JSON response body into the equivalent
// response frame for the request's opcode.
func encodeTranslated(h wire.Header, body []byte, selReq wire.SelectReq) ([]byte, error) {
	switch h.Op {
	case wire.OpSelect:
		var r struct {
			Generation       uint64    `json:"generation"`
			JobType          string    `json:"job_type"`
			Satisfiable      bool      `json:"satisfiable"`
			Classes          []int     `json:"classes"`
			Headrooms        []float64 `json:"headrooms"`
			Lease            uint64    `json:"lease"`
			Granted          []float64 `json:"granted"`
			ExpiresInSeconds float64   `json:"expires_in_seconds"`
		}
		if err := json.Unmarshal(body, &r); err != nil {
			return nil, err
		}
		m := wire.SelectResp{
			Generation:  r.Generation,
			Lease:       r.Lease,
			ExpiresIn:   r.ExpiresInSeconds,
			Job:         jobOrdinals[r.JobType],
			Satisfiable: r.Satisfiable,
			Classes:     make([]wire.SelectGrant, len(r.Classes)),
		}
		for i, cls := range r.Classes {
			g := wire.SelectGrant{Class: uint32(cls)}
			if i < len(r.Headrooms) {
				g.Headroom = r.Headrooms[i]
			}
			if i < len(r.Granted) {
				g.Granted = r.Granted[i]
			}
			m.Classes[i] = g
		}
		return wire.AppendSelectResp(nil, h.ID, &m), nil
	case wire.OpRelease:
		var r struct {
			Lease         uint64    `json:"lease"`
			ReleasedCores float64   `json:"released_cores"`
			Classes       []int     `json:"classes"`
			Cores         []float64 `json:"cores"`
		}
		if err := json.Unmarshal(body, &r); err != nil {
			return nil, err
		}
		m := wire.ReleaseResp{
			Lease:       r.Lease,
			TotalMillis: ledger.ToMillis(r.ReleasedCores),
			Grants:      make([]wire.ReleaseGrant, len(r.Classes)),
		}
		for i, cls := range r.Classes {
			g := wire.ReleaseGrant{Class: uint32(cls)}
			if i < len(r.Cores) {
				g.Millis = ledger.ToMillis(r.Cores[i])
			}
			m.Grants[i] = g
		}
		return wire.AppendReleaseResp(nil, h.ID, &m), nil
	case wire.OpRenew:
		var r struct {
			Lease            uint64  `json:"lease"`
			TotalCores       float64 `json:"total_cores"`
			ExpiresInSeconds float64 `json:"expires_in_seconds"`
		}
		if err := json.Unmarshal(body, &r); err != nil {
			return nil, err
		}
		return wire.AppendRenewResp(nil, h.ID, &wire.RenewResp{
			Lease:       r.Lease,
			TotalMillis: ledger.ToMillis(r.TotalCores),
			ExpiresIn:   r.ExpiresInSeconds,
		}), nil
	case wire.OpPlace:
		var r struct {
			Generation uint64  `json:"generation"`
			Replicas   []int64 `json:"replicas"`
		}
		if err := json.Unmarshal(body, &r); err != nil {
			return nil, err
		}
		return wire.AppendPlaceResp(nil, h.ID, &wire.PlaceResp{Generation: r.Generation, Replicas: r.Replicas}), nil
	case wire.OpPlaceBlock:
		var r struct {
			Generation uint64  `json:"generation"`
			Block      uint64  `json:"block"`
			Replicas   []int64 `json:"replicas"`
		}
		if err := json.Unmarshal(body, &r); err != nil {
			return nil, err
		}
		return wire.AppendPlaceBlockResp(nil, h.ID, &wire.PlaceBlockResp{
			Generation: r.Generation,
			Block:      r.Block,
			Replicas:   r.Replicas,
		}), nil
	case wire.OpReimage:
		var r struct {
			Server  int64 `json:"server"`
			Lost    int64 `json:"lost"`
			Pending int64 `json:"pending"`
		}
		if err := json.Unmarshal(body, &r); err != nil {
			return nil, err
		}
		return wire.AppendReimageResp(nil, h.ID, &wire.ReimageResp{
			Server:  r.Server,
			Lost:    uint32(r.Lost),
			Pending: uint32(r.Pending),
		}), nil
	case wire.OpClasses:
		var r struct {
			Generation  uint64          `json:"generation"`
			AsOfSeconds float64         `json:"as_of_seconds"`
			Classes     []jsonClassInfo `json:"classes"`
		}
		if err := json.Unmarshal(body, &r); err != nil {
			return nil, err
		}
		m := wire.ClassesResp{
			Generation:  r.Generation,
			AsOfSeconds: r.AsOfSeconds,
			Classes:     make([]wire.ClassRec, len(r.Classes)),
		}
		for i, c := range r.Classes {
			m.Classes[i] = classRecOf(c)
		}
		return wire.AppendClassesResp(nil, h.ID, &m), nil
	case wire.OpServerClass:
		var r struct {
			Generation uint64        `json:"generation"`
			Server     int64         `json:"server"`
			Class      jsonClassInfo `json:"class"`
		}
		if err := json.Unmarshal(body, &r); err != nil {
			return nil, err
		}
		return wire.AppendServerClassResp(nil, h.ID, &wire.ServerClassResp{
			Generation: r.Generation,
			Server:     r.Server,
			Class:      classRecOf(r.Class),
		}), nil
	}
	return nil, fmt.Errorf("unreachable opcode %d", h.Op)
}
