package router

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"time"

	"harvest/internal/ledger"
	"harvest/internal/obs"
	"harvest/internal/signalproc"
	"harvest/internal/wire"
)

// The router's binary data plane. The front end accepts the same
// length-prefixed frame dialect harvestd serves (internal/wire) and relays
// each data-plane request to the shard owning its datacenter:
//
//   - A backend that advertised binary_addr in its register heartbeat gets
//     the frame verbatim over a pooled TCP connection — no decode, no
//     re-encode, no HTTP. The response frame is relayed back the same way
//     after its echoed request id is validated.
//   - A JSON-only backend gets the frame translated onto its HTTP API and
//     the JSON response translated back into a frame, so a binary client
//     works against a mixed fleet mid-rollout; the extra cost lands only on
//     backends that haven't upgraded.
//
// Registration, discovery, and metrics stay on the JSON control plane: the
// binary listener serves data-plane opcodes only.

const (
	// binFrontIdleTimeout mirrors harvestd's binary server: an idle client
	// conn is dropped after this long.
	binFrontIdleTimeout = 2 * time.Minute
	// binPoolIdleMax discards pooled backend conns idle this long — well
	// below the backends' 2-minute server-side idle timeout, so the router
	// drops a conn before the backend does (a reuse racing the backend's
	// close would read as a spurious transport failure, same reasoning as
	// the HTTP transport's IdleConnTimeout).
	binPoolIdleMax = 30 * time.Second
	// binPoolCap bounds pooled conns per backend; extras are closed on
	// return rather than kept.
	binPoolCap = 16
	// binFlushLimit force-flushes a response batch even while more pipelined
	// requests are buffered, bounding client-visible latency and router
	// memory under a pathological burst.
	binFlushLimit = 64 << 10
)

// pooledBin is one idle connection to a backend's binary listener, with its
// read buffer and response scratch kept alongside so reuse is allocation-free.
type pooledBin struct {
	c       net.Conn
	br      *bufio.Reader
	scratch []byte
	idleAt  time.Time
}

// getBin pops a pooled connection to addr or dials a fresh one. Conns idle
// past binPoolIdleMax are discarded on the way.
func (b *backend) getBin(addr string, dialTimeout time.Duration) (*pooledBin, error) {
	now := time.Now()
	b.binMu.Lock()
	for len(b.binIdle) > 0 {
		pc := b.binIdle[len(b.binIdle)-1]
		b.binIdle = b.binIdle[:len(b.binIdle)-1]
		if now.Sub(pc.idleAt) > binPoolIdleMax {
			pc.c.Close()
			continue
		}
		b.binMu.Unlock()
		return pc, nil
	}
	b.binMu.Unlock()
	c, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return &pooledBin{c: c, br: bufio.NewReaderSize(c, 64<<10)}, nil
}

// putBin returns a healthy connection to the pool (or closes it when the
// pool is full). Only conns whose last exchange fully completed may be
// returned — a half-read response would corrupt the next exchange.
func (b *backend) putBin(pc *pooledBin) {
	pc.idleAt = time.Now()
	b.binMu.Lock()
	if len(b.binIdle) < binPoolCap {
		b.binIdle = append(b.binIdle, pc)
		b.binMu.Unlock()
		return
	}
	b.binMu.Unlock()
	pc.c.Close()
}

// closeBinPool drops every pooled connection; called when the backend's
// binary address changes or the backend is collected.
func (b *backend) closeBinPool() {
	b.binMu.Lock()
	idle := b.binIdle
	b.binIdle = nil
	b.binMu.Unlock()
	for _, pc := range idle {
		pc.c.Close()
	}
}

// SetBinaryAdvertise records the host:port published as binary_addr on
// /v1/datacenters and /metrics. Call before serving traffic.
func (rt *Router) SetBinaryAdvertise(addr string) { rt.binAdvertise = addr }

// ListenAndServeBinary binds addr and serves the binary dialect on it. The
// returned channel yields the accept loop's exit error (nil on Close).
func (rt *Router) ListenAndServeBinary(addr string) (net.Addr, <-chan error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	errc := make(chan error, 1)
	go func() { errc <- rt.ServeBinary(ln) }()
	return ln.Addr(), errc, nil
}

// ServeBinary accepts frame connections on ln until CloseBinary. Returns nil
// on a close-initiated exit, the accept error otherwise.
func (rt *Router) ServeBinary(ln net.Listener) error {
	rt.binMu.Lock()
	if rt.binClosed {
		rt.binMu.Unlock()
		ln.Close()
		return nil
	}
	rt.binLn = ln
	if rt.binConns == nil {
		rt.binConns = make(map[net.Conn]struct{})
	}
	rt.binMu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			rt.binMu.Lock()
			closed := rt.binClosed
			rt.binMu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		rt.binMu.Lock()
		if rt.binClosed {
			rt.binMu.Unlock()
			c.Close()
			return nil
		}
		rt.binConns[c] = struct{}{}
		rt.binWG.Add(1)
		rt.binMu.Unlock()
		rt.binAccepted.Add(1)
		rt.binOpenConns.Add(1)
		go rt.serveBinaryConn(c)
	}
}

// CloseBinary stops the binary listener and closes every client connection,
// then waits for their handlers. Safe to call with no listener serving.
func (rt *Router) CloseBinary() {
	rt.binMu.Lock()
	rt.binClosed = true
	ln := rt.binLn
	conns := make([]net.Conn, 0, len(rt.binConns))
	for c := range rt.binConns {
		conns = append(conns, c)
	}
	rt.binMu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	rt.binWG.Wait()
}

func (rt *Router) dropBinConn(c net.Conn) {
	c.Close()
	rt.binMu.Lock()
	delete(rt.binConns, c)
	rt.binMu.Unlock()
	rt.binOpenConns.Add(-1)
	rt.binWG.Done()
}

// readRawFrame reads one whole frame — header and payload — into *scratch and
// returns the parsed header plus the raw bytes, ready to forward verbatim.
func readRawFrame(br *bufio.Reader, scratch *[]byte) (wire.Header, []byte, error) {
	buf := *scratch
	if cap(buf) < wire.HeaderSize {
		buf = make([]byte, wire.HeaderSize, 4096)
	}
	buf = buf[:wire.HeaderSize]
	if _, err := io.ReadFull(br, buf); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = wire.ErrBadFrame
		}
		return wire.Header{}, nil, err
	}
	h, err := wire.ParseHeader(buf)
	if err != nil {
		return wire.Header{}, nil, err
	}
	total := wire.HeaderSize + int(h.Len)
	if cap(buf) < total {
		nb := make([]byte, total)
		copy(nb, buf[:wire.HeaderSize])
		buf = nb
	}
	buf = buf[:total]
	if _, err := io.ReadFull(br, buf[wire.HeaderSize:]); err != nil {
		return wire.Header{}, nil, wire.ErrBadFrame
	}
	*scratch = buf
	return h, buf, nil
}

// serveBinaryConn is one client connection's loop: read a frame, relay it,
// flush responses whenever the input goes quiet (pipelined bursts get their
// responses in one write, same discipline as the backends' binary server).
func (rt *Router) serveBinaryConn(c net.Conn) {
	defer rt.dropBinConn(c)
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	br := bufio.NewReaderSize(c, 64<<10)
	bw := bufio.NewWriterSize(c, 64<<10)
	var raw []byte
	for {
		if br.Buffered() < wire.HeaderSize {
			if bw.Flush() != nil {
				return
			}
		}
		c.SetReadDeadline(time.Now().Add(binFrontIdleTimeout))
		h, frame, err := readRawFrame(br, &raw)
		if err != nil {
			if err != io.EOF {
				// Garbage framing: nothing on this conn can be trusted
				// anymore (we may be mid-stream). Close without answering.
				rt.binFramingErrors.Add(1)
			}
			bw.Flush()
			return
		}
		rt.relayBinary(bw, h, frame)
		if bw.Buffered() >= binFlushLimit {
			if bw.Flush() != nil {
				return
			}
		}
	}
}

// binReject appends a router-originated error frame (bad request, unknown
// datacenter, shard unavailable).
func (rt *Router) binReject(bw *bufio.Writer, id uint64, code uint16, msg string) {
	rt.binRejected.Add(1)
	bw.Write(wire.AppendErrorResp(nil, id, code, msg))
}

// relayBinary routes one request frame: resolve the datacenter, apply the
// same staleness and breaker gates as the HTTP proxy, then forward natively
// or translate to JSON depending on what the backend advertised.
func (rt *Router) relayBinary(bw *bufio.Writer, h wire.Header, frame []byte) {
	payload := frame[wire.HeaderSize:]
	if !h.Op.IsRequest() {
		rt.binReject(bw, h.ID, 400, "unknown opcode "+strconv.Itoa(int(h.Op)))
		return
	}
	dcb, ok := wire.PeekDC(payload)
	if !ok {
		rt.binReject(bw, h.ID, 400, "bad request payload")
		return
	}
	dc := string(dcb)
	// Per-frame trace + per-opcode latency. The echoed request id doubles as
	// the trace id — a binary client can look its own frames up on
	// /debug/traces with no wire change (id 0 gets a router-assigned one).
	tr := rt.rec.Begin(h.ID, obs.DialectBinary, h.Op.String(), dc)
	status := http.StatusOK
	opStart := time.Now()
	defer func() {
		if i := int(h.Op) - 1; i >= 0 && i < len(rt.binOps) {
			rt.binOps[i].Observe(time.Since(opStart), status)
		}
		tr.Finish(status)
	}()
	rt.mu.RLock()
	b := rt.table[dc]
	var baseURL, binAddr string
	if b != nil {
		// Copied under the lock, like the HTTP path: registration beats
		// rewrite these under the write lock.
		baseURL, binAddr = b.url, b.binAddr
	}
	rt.mu.RUnlock()
	if b == nil {
		status = 404
		rt.binReject(bw, h.ID, 404, "unknown datacenter "+strconv.Quote(dc))
		return
	}
	now := rt.now()
	if !rt.alive(b, now) {
		if cutoff := now.Add(-10 * rt.cfg.StaleAfter).UnixNano(); b.lastBeat.Load() <= cutoff {
			rt.collectBackend(b, cutoff)
			status = 404
			rt.binReject(bw, h.ID, 404, "unknown datacenter "+strconv.Quote(dc))
			return
		}
		rt.unavailable.Add(1)
		status = 503
		rt.binReject(bw, h.ID, 503, "datacenter "+strconv.Quote(dc)+" unavailable: backend "+b.id+" missed heartbeats")
		return
	}
	// Breaker gate, same shape as the HTTP path: open → fast 503 frame;
	// half-open → exactly one CAS winner probes.
	gateStart := time.Now()
	probe := false
	if openUntil := b.openUntil.Load(); openUntil != 0 {
		if openUntil > now.UnixNano() {
			rt.unavailable.Add(1)
			status = 503
			rt.binReject(bw, h.ID, 503, "datacenter "+strconv.Quote(dc)+" unavailable: backend "+b.id+" circuit open")
			return
		}
		if !b.probing.CompareAndSwap(false, true) {
			rt.unavailable.Add(1)
			status = 503
			rt.binReject(bw, h.ID, 503, "datacenter "+strconv.Quote(dc)+" unavailable: backend "+b.id+" probe in flight")
			return
		}
		probe = true
	}
	tr.Span("breaker_wait", gateStart)
	// settle records the transport outcome (success closes the circuit,
	// failure feeds the breaker); cancel releases the probe slot without
	// recording evidence (client-side errors say nothing about the backend).
	settle := func(ok bool) {
		if ok {
			b.consecFails.Store(0)
			b.openUntil.Store(0)
		} else {
			rt.proxyFailed(b)
		}
		if probe {
			b.probing.Store(false)
		}
	}
	cancel := func() {
		if probe {
			b.probing.Store(false)
		}
	}
	legStart := time.Now()
	if binAddr != "" {
		status = rt.forwardBinary(bw, b, binAddr, dc, h, frame, settle)
	} else {
		status = rt.translateBinary(bw, baseURL, dc, h, payload, settle, cancel)
	}
	tr.Span("backend_leg", legStart)
}

// forwardBinary relays the frame verbatim over a pooled connection to the
// backend's binary listener and relays the response frame back. Returns the
// HTTP-equivalent status for the op metrics and trace.
func (rt *Router) forwardBinary(bw *bufio.Writer, b *backend, addr, dc string, h wire.Header, frame []byte, settle func(bool)) int {
	pc, err := b.getBin(addr, rt.cfg.ProxyTimeout)
	if err != nil {
		settle(false)
		rt.binReject(bw, h.ID, 503, "datacenter "+strconv.Quote(dc)+" unavailable: backend "+b.id+" unreachable")
		return 503
	}
	healthy := false
	defer func() {
		if healthy {
			b.putBin(pc)
		} else {
			pc.c.Close()
		}
	}()
	pc.c.SetDeadline(time.Now().Add(rt.cfg.ProxyTimeout))
	if _, err := pc.c.Write(frame); err != nil {
		settle(false)
		rt.binReject(bw, h.ID, 503, "datacenter "+strconv.Quote(dc)+" unavailable: backend "+b.id+" unreachable")
		return 503
	}
	rh, resp, err := readRawFrame(pc.br, &pc.scratch)
	if err != nil || rh.ID != h.ID {
		// A wrong echoed id means the conn is desynchronized (a previous
		// exchange left bytes behind); it is closed either way via healthy.
		settle(false)
		rt.binReject(bw, h.ID, 503, "datacenter "+strconv.Quote(dc)+" unavailable: backend "+b.id+" sent a bad response frame")
		return 503
	}
	pc.c.SetDeadline(time.Time{})
	settle(true)
	healthy = true
	b.proxied.Add(1)
	rt.proxiedTotal.Add(1)
	rt.binForwarded.Add(1)
	bw.Write(resp)
	if rh.Op == wire.OpError {
		// Relayed backend error frames count as errors in the op metrics,
		// matching how the shard's own dispatch counts them.
		return 500
	}
	return http.StatusOK
}

// patternOrdinals maps the JSON API's pattern names back to wire ordinals
// for the translation bridge.
var patternOrdinals = func() map[string]uint8 {
	m := make(map[string]uint8, signalproc.NumPatterns)
	for p := 0; p < signalproc.NumPatterns; p++ {
		m[signalproc.Pattern(p).String()] = uint8(p)
	}
	return m
}()

var jobNames = map[uint8]string{
	wire.JobShort:  "short",
	wire.JobMedium: "medium",
	wire.JobLong:   "long",
	// JobFromLastRun: empty job_type lets the backend classify from
	// last_run_seconds, same as the JSON dialect.
	wire.JobFromLastRun: "",
}

var jobOrdinals = map[string]uint8{
	"short":  wire.JobShort,
	"medium": wire.JobMedium,
	"long":   wire.JobLong,
}

// jsonClassInfo mirrors the backends' JSON class shape (internal/service
// classInfo) for the translation bridge.
type jsonClassInfo struct {
	ID                 int     `json:"id"`
	Pattern            string  `json:"pattern"`
	NumTenants         int     `json:"num_tenants"`
	NumServers         int     `json:"num_servers"`
	AvgUtilization     float64 `json:"avg_utilization"`
	PeakUtilization    float64 `json:"peak_utilization"`
	CurrentUtilization float64 `json:"current_utilization"`
	AllocatedCores     float64 `json:"allocated_cores"`
	ExampleServer      int64   `json:"example_server"`
}

func classRecOf(c jsonClassInfo) wire.ClassRec {
	return wire.ClassRec{
		ID:            uint32(c.ID),
		Pattern:       patternOrdinals[c.Pattern],
		NumTenants:    uint32(c.NumTenants),
		NumServers:    uint32(c.NumServers),
		Avg:           c.AvgUtilization,
		Peak:          c.PeakUtilization,
		Current:       c.CurrentUtilization,
		AllocMillis:   ledger.ToMillis(c.AllocatedCores),
		ExampleServer: c.ExampleServer,
	}
}

// translateBinary bridges one frame onto a JSON-only backend's HTTP API and
// encodes the JSON response back into a frame. This is the mixed-fleet
// compatibility path — correctness over speed; upgraded backends never pay
// it.
func (rt *Router) translateBinary(bw *bufio.Writer, baseURL, dc string, h wire.Header, payload []byte, settle func(bool), cancel func()) int {
	var (
		method = http.MethodPost
		path   string
		body   []byte
		selReq wire.SelectReq
	)
	switch h.Op {
	case wire.OpSelect:
		if err := selReq.Decode(payload); err != nil {
			cancel()
			rt.binReject(bw, h.ID, 400, "bad select payload")
			return 400
		}
		name, ok := jobNames[selReq.Job]
		if !ok {
			cancel()
			rt.binReject(bw, h.ID, 400, "bad job type")
			return 400
		}
		body, _ = json.Marshal(map[string]any{
			"job_type":             name,
			"last_run_seconds":     selReq.LastRunSeconds,
			"max_concurrent_cores": selReq.MaxCores,
			"hold_seconds":         float64(selReq.HoldMillis) / 1000,
			"dry_run":              selReq.Flags&wire.SelectFlagDryRun != 0,
		})
		path = "/v1/" + dc + "/select"
	case wire.OpRelease:
		var m wire.ReleaseReq
		if err := m.Decode(payload); err != nil {
			cancel()
			rt.binReject(bw, h.ID, 400, "bad release payload")
			return 400
		}
		body, _ = json.Marshal(map[string]any{"lease": m.Lease})
		path = "/v1/" + dc + "/release"
	case wire.OpPlace:
		var m wire.PlaceReq
		if err := m.Decode(payload); err != nil {
			cancel()
			rt.binReject(bw, h.ID, 400, "bad place payload")
			return 400
		}
		body, _ = json.Marshal(map[string]any{
			"replication":         m.Replication,
			"writer":              m.Writer,
			"relaxed_environment": m.Flags&wire.PlaceFlagRelaxed != 0,
		})
		path = "/v1/" + dc + "/place"
	case wire.OpClasses:
		method, path = http.MethodGet, "/v1/"+dc+"/classes"
	case wire.OpServerClass:
		var m wire.ServerClassReq
		if err := m.Decode(payload); err != nil {
			cancel()
			rt.binReject(bw, h.ID, 400, "bad server class payload")
			return 400
		}
		method, path = http.MethodGet, fmt.Sprintf("/v1/%s/servers/%d/class", dc, m.Server)
	default:
		cancel()
		rt.binReject(bw, h.ID, 400, "unknown opcode "+strconv.Itoa(int(h.Op)))
		return 400
	}

	var outBody io.Reader = http.NoBody
	if len(body) > 0 {
		outBody = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, baseURL+path, outBody)
	if err != nil {
		cancel()
		rt.binReject(bw, h.ID, 500, "bad proxy request: "+err.Error())
		return 500
	}
	if len(body) > 0 {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set(hopHeader, "1")
	// The bridged JSON request carries the frame id as its trace id so the
	// shard's trace joins the router's even across the translation path.
	req.Header.Set(obs.TraceHeader, obs.FormatTraceID(h.ID))
	res, err := rt.client.Do(req)
	if err != nil {
		settle(false)
		rt.binReject(bw, h.ID, 503, "datacenter "+strconv.Quote(dc)+" unavailable: backend unreachable")
		return 503
	}
	defer res.Body.Close()
	rb, err := io.ReadAll(io.LimitReader(res.Body, maxProxyResponse+1))
	if err != nil || len(rb) > maxProxyResponse {
		settle(false)
		rt.binReject(bw, h.ID, 503, "datacenter "+strconv.Quote(dc)+" unavailable: backend sent a truncated or oversized response")
		return 503
	}
	settle(true)
	rt.proxiedTotal.Add(1)
	rt.binTranslated.Add(1)

	if res.StatusCode != http.StatusOK {
		// Relay the backend's own error with its status, exactly as the HTTP
		// proxy relays status codes verbatim. Not counted as a router
		// rejection — the backend answered.
		var e struct {
			Error string `json:"error"`
		}
		json.Unmarshal(rb, &e)
		if e.Error == "" {
			e.Error = http.StatusText(res.StatusCode)
		}
		bw.Write(wire.AppendErrorResp(nil, h.ID, uint16(res.StatusCode), e.Error))
		return res.StatusCode
	}

	frame, err := encodeTranslated(h, rb, selReq)
	if err != nil {
		rt.binReject(bw, h.ID, 500, "bad backend response: "+err.Error())
		return 500
	}
	bw.Write(frame)
	return http.StatusOK
}

// encodeTranslated converts a 200 JSON response body into the equivalent
// response frame for the request's opcode.
func encodeTranslated(h wire.Header, body []byte, selReq wire.SelectReq) ([]byte, error) {
	switch h.Op {
	case wire.OpSelect:
		var r struct {
			Generation       uint64    `json:"generation"`
			JobType          string    `json:"job_type"`
			Satisfiable      bool      `json:"satisfiable"`
			Classes          []int     `json:"classes"`
			Headrooms        []float64 `json:"headrooms"`
			Lease            uint64    `json:"lease"`
			Granted          []float64 `json:"granted"`
			ExpiresInSeconds float64   `json:"expires_in_seconds"`
		}
		if err := json.Unmarshal(body, &r); err != nil {
			return nil, err
		}
		m := wire.SelectResp{
			Generation:  r.Generation,
			Lease:       r.Lease,
			ExpiresIn:   r.ExpiresInSeconds,
			Job:         jobOrdinals[r.JobType],
			Satisfiable: r.Satisfiable,
			Classes:     make([]wire.SelectGrant, len(r.Classes)),
		}
		for i, cls := range r.Classes {
			g := wire.SelectGrant{Class: uint32(cls)}
			if i < len(r.Headrooms) {
				g.Headroom = r.Headrooms[i]
			}
			if i < len(r.Granted) {
				g.Granted = r.Granted[i]
			}
			m.Classes[i] = g
		}
		return wire.AppendSelectResp(nil, h.ID, &m), nil
	case wire.OpRelease:
		var r struct {
			Lease         uint64    `json:"lease"`
			ReleasedCores float64   `json:"released_cores"`
			Classes       []int     `json:"classes"`
			Cores         []float64 `json:"cores"`
		}
		if err := json.Unmarshal(body, &r); err != nil {
			return nil, err
		}
		m := wire.ReleaseResp{
			Lease:       r.Lease,
			TotalMillis: ledger.ToMillis(r.ReleasedCores),
			Grants:      make([]wire.ReleaseGrant, len(r.Classes)),
		}
		for i, cls := range r.Classes {
			g := wire.ReleaseGrant{Class: uint32(cls)}
			if i < len(r.Cores) {
				g.Millis = ledger.ToMillis(r.Cores[i])
			}
			m.Grants[i] = g
		}
		return wire.AppendReleaseResp(nil, h.ID, &m), nil
	case wire.OpPlace:
		var r struct {
			Generation uint64  `json:"generation"`
			Replicas   []int64 `json:"replicas"`
		}
		if err := json.Unmarshal(body, &r); err != nil {
			return nil, err
		}
		return wire.AppendPlaceResp(nil, h.ID, &wire.PlaceResp{Generation: r.Generation, Replicas: r.Replicas}), nil
	case wire.OpClasses:
		var r struct {
			Generation  uint64          `json:"generation"`
			AsOfSeconds float64         `json:"as_of_seconds"`
			Classes     []jsonClassInfo `json:"classes"`
		}
		if err := json.Unmarshal(body, &r); err != nil {
			return nil, err
		}
		m := wire.ClassesResp{
			Generation:  r.Generation,
			AsOfSeconds: r.AsOfSeconds,
			Classes:     make([]wire.ClassRec, len(r.Classes)),
		}
		for i, c := range r.Classes {
			m.Classes[i] = classRecOf(c)
		}
		return wire.AppendClassesResp(nil, h.ID, &m), nil
	case wire.OpServerClass:
		var r struct {
			Generation uint64        `json:"generation"`
			Server     int64         `json:"server"`
			Class      jsonClassInfo `json:"class"`
		}
		if err := json.Unmarshal(body, &r); err != nil {
			return nil, err
		}
		return wire.AppendServerClassResp(nil, h.ID, &wire.ServerClassResp{
			Generation: r.Generation,
			Server:     r.Server,
			Class:      classRecOf(r.Class),
		}), nil
	}
	return nil, fmt.Errorf("unreachable opcode %d", h.Op)
}
