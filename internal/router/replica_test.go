package router_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"harvest/internal/router"
)

func newServer(t *testing.T, rt *router.Router) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(rt)
	t.Cleanup(srv.Close)
	return srv
}

// countBy tallies a fakeBackend's proxied requests by "METHOD path".
func countBy(fb *fakeBackend, want string) int {
	n := 0
	for _, r := range fb.seen() {
		if r == want {
			n++
		}
	}
	return n
}

// TestReadSpreadAcrossFollowers pins the tentpole's read path: GETs and
// advisory dry-run selects spread across the primary and its
// generation-fresh followers, while state-moving requests stay pinned to the
// primary, and every proxied response names its serving replica.
func TestReadSpreadAcrossFollowers(t *testing.T) {
	p, f1, f2 := newFakeBackend(t), newFakeBackend(t), newFakeBackend(t)
	_, srv := newTestRouter(t, nil)
	mustRegister(t, srv.URL, router.RegisterRequest{
		ID: "node-p", URL: p.srv.URL, Role: "primary",
		Datacenters: []router.RegisterDatacenter{{Name: "DC-A", Generation: 10}},
	})
	mustRegister(t, srv.URL, router.RegisterRequest{
		ID: "node-f1", URL: f1.srv.URL, Role: "follower", PrimaryID: "node-p",
		Datacenters: []router.RegisterDatacenter{{Name: "DC-A", Generation: 10}},
	})
	mustRegister(t, srv.URL, router.RegisterRequest{
		ID: "node-f2", URL: f2.srv.URL, Role: "follower", PrimaryID: "node-p",
		Datacenters: []router.RegisterDatacenter{{Name: "DC-A", Generation: 9}},
	})

	const reads = 120
	served := map[string]int{}
	for i := 0; i < reads; i++ {
		resp, _ := getBody(t, srv.URL+"/v1/DC-A/classes")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("read %d: status %d", i, resp.StatusCode)
		}
		served[resp.Header.Get("X-Harvest-Backend")]++
	}
	for _, id := range []string{"node-p", "node-f1", "node-f2"} {
		if served[id] == 0 {
			t.Errorf("backend %s served no reads out of %d: %v", id, reads, served)
		}
	}
	if served["node-p"]+served["node-f1"]+served["node-f2"] != reads {
		t.Errorf("served map does not account for every read: %v", served)
	}

	// Reserving selects are writes: pinned to the primary, never a follower.
	for i := 0; i < 20; i++ {
		resp, err := http.Post(srv.URL+"/v1/DC-A/select", "application/json",
			strings.NewReader(`{"max_concurrent_cores":1}`))
		if err != nil {
			t.Fatalf("select %d: %v", i, err)
		}
		if got := resp.Header.Get("X-Harvest-Backend"); got != "node-p" {
			t.Fatalf("reserving select %d served by %q, want the primary", i, got)
		}
		resp.Body.Close()
	}
	if got := countBy(p, "POST /v1/DC-A/select"); got != 20 {
		t.Errorf("primary saw %d reserving selects, want 20", got)
	}
	if got := countBy(f1, "POST /v1/DC-A/select") + countBy(f2, "POST /v1/DC-A/select"); got != 0 {
		t.Errorf("followers saw %d reserving selects, want 0", got)
	}

	// Dry-run selects are advisory — classified as reads and spread.
	followerDry := 0
	for i := 0; i < 60; i++ {
		resp, err := http.Post(srv.URL+"/v1/DC-A/select", "application/json",
			strings.NewReader(`{"max_concurrent_cores":1,"dry_run":true}`))
		if err != nil {
			t.Fatalf("dry-run select %d: %v", i, err)
		}
		if id := resp.Header.Get("X-Harvest-Backend"); id == "node-f1" || id == "node-f2" {
			followerDry++
		}
		resp.Body.Close()
	}
	if followerDry == 0 {
		t.Errorf("no dry-run select reached a follower out of 60")
	}

	// Per-backend read accounting surfaces on /metrics.
	var m struct {
		Router router.RouterStats `json:"router"`
	}
	_, body := getBody(t, srv.URL+"/metrics")
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("metrics: %v", err)
	}
	for _, id := range []string{"node-f1", "node-f2"} {
		st := m.Router.Backends[id]
		if st.Role != "follower" || st.PrimaryID != "node-p" {
			t.Errorf("backend %s role/primary = %q/%q, want follower/node-p", id, st.Role, st.PrimaryID)
		}
		if st.Reads == 0 {
			t.Errorf("backend %s reads counter is zero", id)
		}
		if st.Latency.Requests == 0 {
			t.Errorf("backend %s latency histogram saw no requests", id)
		}
	}
}

// TestStaleFollowerSkipped pins the staleness gate: a follower trailing the
// primary's announced generation by more than MaxGenLag serves nothing.
func TestStaleFollowerSkipped(t *testing.T) {
	p, f := newFakeBackend(t), newFakeBackend(t)
	rt := router.New(router.Config{StaleAfter: time.Minute, MaxGenLag: 2})
	srv := newServer(t, rt)
	mustRegister(t, srv.URL, router.RegisterRequest{
		ID: "node-p", URL: p.srv.URL, Role: "primary",
		Datacenters: []router.RegisterDatacenter{{Name: "DC-A", Generation: 10}},
	})
	mustRegister(t, srv.URL, router.RegisterRequest{
		ID: "node-f", URL: f.srv.URL, Role: "follower", PrimaryID: "node-p",
		Datacenters: []router.RegisterDatacenter{{Name: "DC-A", Generation: 5}},
	})
	for i := 0; i < 40; i++ {
		resp, _ := getBody(t, srv.URL+"/v1/DC-A/classes")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("read %d: status %d", i, resp.StatusCode)
		}
		if got := resp.Header.Get("X-Harvest-Backend"); got != "node-p" {
			t.Fatalf("read %d served by %q — the gen-5 follower should be gated at gen 10", i, got)
		}
	}
	if got := len(f.seen()); got != 0 {
		t.Errorf("stale follower saw %d requests, want 0", got)
	}

	// Once the follower catches up (within the lag window), it serves.
	mustRegister(t, srv.URL, router.RegisterRequest{
		ID: "node-f", URL: f.srv.URL, Role: "follower", PrimaryID: "node-p",
		Datacenters: []router.RegisterDatacenter{{Name: "DC-A", Generation: 9}},
	})
	for i := 0; i < 60 && len(f.seen()) == 0; i++ {
		getBody(t, srv.URL+"/v1/DC-A/classes")
	}
	if len(f.seen()) == 0 {
		t.Errorf("caught-up follower served nothing out of 60 reads")
	}
}

// TestFollowerNeverClaimsOwnership pins registration semantics: a follower
// registering first — the common startup race — must not become the write
// target or trigger a promotion; it serves reads until its primary's first
// beat claims the route.
func TestFollowerNeverClaimsOwnership(t *testing.T) {
	p, f := newFakeBackend(t), newFakeBackend(t)
	_, srv := newTestRouter(t, nil)
	mustRegister(t, srv.URL, router.RegisterRequest{
		ID: "node-f", URL: f.srv.URL, Role: "follower", PrimaryID: "node-p",
		Datacenters: []router.RegisterDatacenter{{Name: "DC-A", Generation: 4}},
	})

	// Reads are served by the follower even with no primary known.
	resp, _ := getBody(t, srv.URL+"/v1/DC-A/classes")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read with follower only: status %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Harvest-Backend"); got != "node-f" {
		t.Errorf("read served by %q, want the lone follower", got)
	}

	// The datacenter stays discoverable with only the follower alive — a
	// client arriving mid-failover must still find the fleet.
	dresp, dbody := getBody(t, srv.URL+"/v1/datacenters")
	if dresp.StatusCode != http.StatusOK || !strings.Contains(string(dbody), "DC-A") {
		t.Errorf("datacenters with follower only: status %d body %q, want DC-A listed",
			dresp.StatusCode, dbody)
	}

	// Writes have no owner: 404, and crucially no promotion of the follower
	// (its primary is healthy, just not registered yet).
	wresp, err := http.Post(srv.URL+"/v1/DC-A/select", "application/json",
		strings.NewReader(`{"max_concurrent_cores":1}`))
	if err != nil {
		t.Fatalf("select: %v", err)
	}
	wresp.Body.Close()
	if wresp.StatusCode != http.StatusNotFound {
		t.Errorf("write with follower only: status %d, want 404", wresp.StatusCode)
	}
	if got := countBy(f, "POST /v1/promote"); got != 0 {
		t.Errorf("lone follower was promoted %d times — startup race split the brain", got)
	}

	// The primary's first beat takes the route; writes flow to it.
	mustRegister(t, srv.URL, router.RegisterRequest{
		ID: "node-p", URL: p.srv.URL, Role: "primary",
		Datacenters: []router.RegisterDatacenter{{Name: "DC-A", Generation: 5}},
	})
	wresp2, err := http.Post(srv.URL+"/v1/DC-A/select", "application/json",
		strings.NewReader(`{"max_concurrent_cores":1}`))
	if err != nil {
		t.Fatalf("select: %v", err)
	}
	wresp2.Body.Close()
	if got := wresp2.Header.Get("X-Harvest-Backend"); got != "node-p" {
		t.Errorf("write after primary registered served by %q, want node-p", got)
	}
}

// TestPromotionElectsFreshestFollower pins the failover contract: when the
// primary stops beating, the router POSTs /v1/promote — bearer-authenticated
// — to the follower with the highest announced generation, never a staler
// one, and flips the route to the winner immediately.
func TestPromotionElectsFreshestFollower(t *testing.T) {
	clock := newTestClock()
	p, f1, f2 := newFakeBackend(t), newFakeBackend(t), newFakeBackend(t)
	rt := router.New(router.Config{
		StaleAfter:   10 * time.Second,
		PromoteToken: "promote-secret",
		Now:          clock.Now,
	})
	srv := newServer(t, rt)
	mustRegister(t, srv.URL, router.RegisterRequest{
		ID: "node-p", URL: p.srv.URL, Role: "primary",
		Datacenters: []router.RegisterDatacenter{{Name: "DC-A", Generation: 10}},
	})
	mustRegister(t, srv.URL, router.RegisterRequest{
		ID: "node-f1", URL: f1.srv.URL, Role: "follower", PrimaryID: "node-p",
		Datacenters: []router.RegisterDatacenter{{Name: "DC-A", Generation: 9}},
	})
	mustRegister(t, srv.URL, router.RegisterRequest{
		ID: "node-f2", URL: f2.srv.URL, Role: "follower", PrimaryID: "node-p",
		Datacenters: []router.RegisterDatacenter{{Name: "DC-A", Generation: 7}},
	})

	// The primary dies; the followers keep beating.
	clock.Advance(11 * time.Second)
	mustRegister(t, srv.URL, router.RegisterRequest{
		ID: "node-f1", URL: f1.srv.URL, Role: "follower", PrimaryID: "node-p",
		Datacenters: []router.RegisterDatacenter{{Name: "DC-A", Generation: 9}},
	})
	mustRegister(t, srv.URL, router.RegisterRequest{
		ID: "node-f2", URL: f2.srv.URL, Role: "follower", PrimaryID: "node-p",
		Datacenters: []router.RegisterDatacenter{{Name: "DC-A", Generation: 7}},
	})

	// The next write both triggers the election and is served by the winner.
	resp, err := http.Post(srv.URL+"/v1/DC-A/select", "application/json",
		strings.NewReader(`{"max_concurrent_cores":1}`))
	if err != nil {
		t.Fatalf("select: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("write during failover: status %d, want 200 from the promoted follower", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Harvest-Backend"); got != "node-f1" {
		t.Errorf("failover write served by %q, want the freshest follower node-f1", got)
	}
	if got := countBy(f1, "POST /v1/promote"); got != 1 {
		t.Fatalf("freshest follower received %d promote calls, want 1 (saw %v)", got, f1.seen())
	}
	if got := countBy(f2, "POST /v1/promote"); got != 0 {
		t.Errorf("stale follower received %d promote calls, want 0 — gen 7 must never beat gen 9", got)
	}
	// The promote call carried the configured bearer token.
	f1.mu.Lock()
	var promoteAuth string
	for i, r := range f1.requests {
		if r == "POST /v1/promote" {
			promoteAuth = f1.headers[i].Get("Authorization")
		}
	}
	f1.mu.Unlock()
	if promoteAuth != "Bearer promote-secret" {
		t.Errorf("promote Authorization = %q, want the configured bearer token", promoteAuth)
	}

	// The route stays flipped: later writes go straight to the new primary
	// with no further election.
	resp2, err := http.Post(srv.URL+"/v1/DC-A/select", "application/json",
		strings.NewReader(`{"max_concurrent_cores":1}`))
	if err != nil {
		t.Fatalf("select: %v", err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Harvest-Backend"); got != "node-f1" {
		t.Errorf("post-failover write served by %q, want node-f1", got)
	}
	if got := countBy(f1, "POST /v1/promote"); got != 1 {
		t.Errorf("promotion re-fired: %d promote calls", got)
	}

	var m struct {
		Router router.RouterStats `json:"router"`
	}
	_, body := getBody(t, srv.URL+"/metrics")
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if m.Router.Promotions != 1 {
		t.Errorf("promotions counter = %d, want 1", m.Router.Promotions)
	}
	if got := m.Router.Backends["node-f1"].Role; got != "primary" {
		t.Errorf("promoted backend role = %q, want primary", got)
	}
}

// TestRegisterRejectsUnknownRole pins the registration validation added with
// replication roles.
func TestRegisterRejectsUnknownRole(t *testing.T) {
	a := newFakeBackend(t)
	_, srv := newTestRouter(t, nil)
	if resp := register(t, srv.URL, router.RegisterRequest{
		ID: "node-a", URL: a.srv.URL, Role: "coordinator",
		Datacenters: []router.RegisterDatacenter{{Name: "DC-A"}},
	}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown role: status %d, want 400", resp.StatusCode)
	}
}
