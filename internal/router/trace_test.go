package router_test

// End-to-end trace reconstruction across tiers: one request through the
// router must leave joinable trace records — same trace id — in both the
// router's recorder and the owning shard's, on the JSON dialect (header
// propagation) and the binary dialect (the echoed frame id, including across
// the translation bridge onto a JSON-only backend).

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"harvest/internal/obs"
	"harvest/internal/router"
	"harvest/internal/service"
	"harvest/internal/wire"
)

func spanSet(tr *obs.Trace) map[string]bool {
	out := map[string]bool{}
	for _, s := range tr.Spans() {
		out[s.Name] = true
	}
	return out
}

// mustTrace queries one recorder for exactly one trace with the id.
func mustTrace(t *testing.T, rec *obs.Recorder, id uint64, tier string) *obs.Trace {
	t.Helper()
	traces := rec.Query(obs.TraceFilter{ID: id})
	if len(traces) != 1 {
		t.Fatalf("%s recorder has %d traces for id %#x, want 1", tier, len(traces), id)
	}
	return traces[0]
}

func TestTraceReconstructionJSON(t *testing.T) {
	rt, srv := newTestRouter(t, nil)

	svc := newBackendService(t, "DC-9")
	api := service.NewAPI(svc)
	backend := httptest.NewServer(api)
	t.Cleanup(backend.Close)
	mustRegister(t, srv.URL, router.RegisterRequest{
		ID: "node-a", URL: backend.URL,
		Datacenters: []router.RegisterDatacenter{{Name: "DC-9", Generation: 1}},
	})

	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/DC-9/select",
		strings.NewReader(`{"job_type":"medium","max_concurrent_cores":8,"hold_seconds":60,"job_id":"etl","owner":"alice"}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, "00000000000000bb")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("select via router: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("select via router: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.TraceHeader); got != "00000000000000bb" {
		t.Fatalf("router trace echo = %q", got)
	}

	// Router hop: ingress trace with the breaker wait and the backend leg.
	rtr := mustTrace(t, rt.Recorder(), 0xbb, "router")
	if rtr.DC != "DC-9" || rtr.Dialect != obs.DialectJSON || rtr.Status != http.StatusOK {
		t.Fatalf("router trace = %+v", rtr)
	}
	spans := spanSet(rtr)
	if !spans["breaker_wait"] || !spans["backend_leg"] {
		t.Fatalf("router spans = %v, want breaker_wait and backend_leg", spans)
	}

	// Shard hop: same id, service-side spans, the lease metadata.
	str := mustTrace(t, api.Recorder(), 0xbb, "shard")
	if str.DC != "DC-9" || str.JobID != "etl" || str.Owner != "alice" {
		t.Fatalf("shard trace = %+v", str)
	}
	spans = spanSet(str)
	if !spans["snapshot_read"] || !spans["ledger_reserve"] {
		t.Fatalf("shard spans = %v, want snapshot_read and ledger_reserve", spans)
	}
}

func TestTraceReconstructionBinary(t *testing.T) {
	rt, srv := newTestRouter(t, nil)
	binFront := startRouterBinary(t, rt)

	// DC-9: binary-capable backend, recorder shared between the JSON API and
	// the binary server exactly as cmd/harvestd wires it.
	svcBin := newBackendService(t, "DC-9")
	apiBin := service.NewAPI(svcBin)
	apiSrvBin := httptest.NewServer(apiBin)
	t.Cleanup(apiSrvBin.Close)
	bs := service.NewBinaryServer(svcBin)
	bsAddr, _, err := bs.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatalf("backend binary listen: %v", err)
	}
	t.Cleanup(bs.Close)
	apiBin.AttachBinary(bs, bsAddr.String())
	mustRegister(t, srv.URL, router.RegisterRequest{
		ID: "node-bin", URL: apiSrvBin.URL, BinaryAddr: bsAddr.String(),
		Datacenters: []router.RegisterDatacenter{{Name: "DC-9", Generation: 1}},
	})

	// DC-8: JSON-only backend reached through the translation bridge.
	svcJSON := newBackendService(t, "DC-8")
	apiJSON := service.NewAPI(svcJSON)
	apiSrvJSON := httptest.NewServer(apiJSON)
	t.Cleanup(apiSrvJSON.Close)
	mustRegister(t, srv.URL, router.RegisterRequest{
		ID: "node-json", URL: apiSrvJSON.URL,
		Datacenters: []router.RegisterDatacenter{{Name: "DC-8", Generation: 1}},
	})

	c := dialBin(t, binFront)

	// Native forwarding: the frame id is the trace id on both tiers.
	h, _ := c.roundTrip(wire.AppendSelectReq(nil, 0xcafe, "DC-9",
		wire.SelectReq{Job: wire.JobShort, MaxCores: 2}))
	if h.Op != wire.OpSelectResp || h.ID != 0xcafe {
		t.Fatalf("native select: header %+v", h)
	}
	rtr := mustTrace(t, rt.Recorder(), 0xcafe, "router")
	if rtr.Dialect != obs.DialectBinary || rtr.DC != "DC-9" || rtr.Op != "select" {
		t.Fatalf("router binary trace = %+v", rtr)
	}
	if spans := spanSet(rtr); !spans["backend_leg"] {
		t.Fatalf("router binary spans = %v, want backend_leg", spans)
	}
	str := mustTrace(t, apiBin.Recorder(), 0xcafe, "shard")
	if str.Dialect != obs.DialectBinary || str.DC != "DC-9" {
		t.Fatalf("shard binary trace = %+v", str)
	}
	if spans := spanSet(str); !spans["snapshot_read"] || !spans["ledger_reserve"] {
		t.Fatalf("shard binary spans = %v", spans)
	}

	// Translation bridge: a binary frame for a JSON-only backend still joins —
	// the router maps the frame id onto X-Harvest-Trace for the bridged leg.
	h, _ = c.roundTrip(wire.AppendSelectReq(nil, 0xbeef, "DC-8",
		wire.SelectReq{Job: wire.JobShort, MaxCores: 2}))
	if h.Op != wire.OpSelectResp || h.ID != 0xbeef {
		t.Fatalf("bridged select: header %+v", h)
	}
	rtr = mustTrace(t, rt.Recorder(), 0xbeef, "router")
	if rtr.Dialect != obs.DialectBinary || rtr.DC != "DC-8" {
		t.Fatalf("router bridged trace = %+v", rtr)
	}
	str = mustTrace(t, apiJSON.Recorder(), 0xbeef, "shard")
	if str.Dialect != obs.DialectJSON || str.DC != "DC-8" || str.Op != "select" {
		t.Fatalf("bridged shard trace = %+v (want the JSON dialect on the shard)", str)
	}
	if spans := spanSet(str); !spans["snapshot_read"] || !spans["ledger_reserve"] {
		t.Fatalf("bridged shard spans = %v", spans)
	}
}
