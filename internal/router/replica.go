package router

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand/v2"
	"net/http"
	"time"
)

// Read fan-out across replicas. A primary harvestd ships its snapshots and
// ledger occupancy to read-only followers (internal/service replication);
// both register here, followers announcing role "follower" plus the primary
// they track. The router pins every state-moving request to the datacenter's
// owning primary and spreads the read-only ones — class queries, placement,
// advisory dry-run selects — across the primary and its generation-fresh
// followers, picking by power-of-two-choices on in-flight count. A follower
// whose announced generation trails the primary's by more than MaxGenLag is
// skipped until it catches up, so a stalled replica can never serve
// arbitrarily stale characterizations.
//
// When a primary stops beating, the router elects the freshest alive
// follower of that primary and POSTs its /v1/promote endpoint; the promoted
// node keeps the replicated ledger, so outstanding leases survive the
// handoff and release exactly once under their original ids.

// backendHeader names the replica that actually served a routed request. The
// router stamps it on every proxied JSON response so load generators and the
// CI smoke job can attribute read share per backend.
const backendHeader = "X-Harvest-Backend"

// promoteTimeout bounds the inline promotion POST: it runs on a request
// path, so it must fail fast rather than ride the full proxy timeout.
const promoteTimeout = 2 * time.Second

// isReadRequest classifies one proxied JSON request. Reads are safe on a
// generation-fresh follower: GETs (classes, server class, leases, metrics),
// placement (pure computation against the snapshot), and advisory dry-run
// selects. Everything that moves ledger or telemetry state — reserving
// selects, release, renew, ingest — stays pinned to the primary.
func isReadRequest(method, rest string, body []byte) bool {
	if method == http.MethodGet {
		return true
	}
	switch rest {
	case "place":
		return true
	case "select":
		var probe struct {
			DryRun bool `json:"dry_run"`
		}
		return json.Unmarshal(body, &probe) == nil && probe.DryRun
	}
	return false
}

// pickBackend resolves the backend for one request. Writes go to the table
// owner, with a promotion attempt when the owner stopped beating; reads
// spread across the owner and its eligible followers. Never returns a
// follower for a write. A nil return means the datacenter is unknown.
func (rt *Router) pickBackend(dc string, read bool, now time.Time) *backend {
	rt.mu.RLock()
	owner := rt.table[dc]
	rt.mu.RUnlock()
	if owner != nil && !rt.routable(owner, now) {
		// A known owner stopped beating — or announced a planned drain:
		// elect a replacement. On success the promoted node serves this very
		// request — writes recover without waiting a heartbeat. A nil owner
		// deliberately does NOT promote: at startup a follower often
		// registers before its primary's first beat, and promoting it then
		// would split the brain against a perfectly healthy primary.
		// Followers still serve reads below.
		if promoted := rt.maybePromote(dc, owner, now); promoted != nil {
			owner = promoted
		}
	}
	if !read || rt.cfg.MaxGenLag < 0 {
		return owner
	}
	if b := rt.pickReadReplica(dc, owner, now); b != nil {
		return b
	}
	return owner
}

// pickReadReplica picks a read target among the owner and the alive,
// circuit-closed followers within MaxGenLag generations of the primary's
// announced generation: two random candidates, fewer in-flight requests
// wins. Returns nil when nothing is eligible (caller falls back to the
// owner and its usual staleness/breaker handling).
func (rt *Router) pickReadReplica(dc string, owner *backend, now time.Time) *backend {
	nowNanos := now.UnixNano()
	lag := uint64(rt.cfg.MaxGenLag)
	usable := func(b *backend) bool {
		return rt.routable(b, now) && b.openUntil.Load() <= nowNanos
	}

	rt.mu.RLock()
	refGen, haveRef := uint64(0), false
	if owner != nil {
		refGen, haveRef = owner.dcs[dc], true
	}
	followers := make([]*backend, 0, len(rt.backends))
	for _, b := range rt.backends {
		if b.role != "follower" || b == owner {
			continue
		}
		// Followers of a *different* primary may announce the same DC during
		// a migration; their books are someone else's, so they never serve
		// this route.
		if owner != nil && b.primaryID != "" && b.primaryID != owner.id {
			continue
		}
		if _, serves := b.dcs[dc]; !serves {
			continue
		}
		if usable(b) {
			followers = append(followers, b)
		}
	}
	if !haveRef {
		// No primary to anchor staleness on: gate followers against the
		// freshest of themselves, so a replica that stalled before the
		// primary died still cannot serve arbitrarily old state.
		for _, b := range followers {
			if g := b.dcs[dc]; g > refGen {
				refGen = g
			}
		}
	}
	cands := followers[:0]
	for _, b := range followers {
		if b.dcs[dc]+lag >= refGen {
			cands = append(cands, b)
		}
	}
	if owner != nil && usable(owner) {
		cands = append(cands, owner)
	}
	rt.mu.RUnlock()

	switch len(cands) {
	case 0:
		return nil
	case 1:
		return cands[0]
	}
	i := rand.IntN(len(cands))
	j := rand.IntN(len(cands) - 1)
	if j >= i {
		j++
	}
	if cands[j].inflight.Load() < cands[i].inflight.Load() {
		return cands[j]
	}
	return cands[i]
}

// maybePromote elects a replacement when a datacenter's owner stopped
// beating: the freshest alive follower of the missing primary — highest
// announced generation, lexicographically smallest id on ties so concurrent
// routers converge on one winner — gets POST /v1/promote. On success the
// winner takes over every datacenter it announces that the dead owner
// stranded. Attempts are cooldown-limited per datacenter so a flapping
// primary cannot trigger a promotion storm.
func (rt *Router) maybePromote(dc string, dead *backend, now time.Time) *backend {
	rt.promoteMu.Lock()
	if last, ok := rt.lastPromote[dc]; ok && now.Sub(last) < rt.cfg.PromoteCooldown {
		rt.promoteMu.Unlock()
		return nil
	}
	rt.lastPromote[dc] = now
	rt.promoteMu.Unlock()

	var winner *backend
	var winURL string
	var winGen uint64
	rt.mu.RLock()
	for _, b := range rt.backends {
		if b.role != "follower" || !rt.routable(b, now) {
			continue
		}
		// Only followers of the backend that actually went missing: a
		// follower replicating some other primary holds the wrong books.
		if dead != nil && b.primaryID != "" && b.primaryID != dead.id {
			continue
		}
		gen, serves := b.dcs[dc]
		if !serves {
			continue
		}
		if winner == nil || gen > winGen || (gen == winGen && b.id < winner.id) {
			winner, winURL, winGen = b, b.url, gen
		}
	}
	rt.mu.RUnlock()
	if winner == nil {
		return nil
	}

	deadID := "(none)"
	if dead != nil {
		deadID = dead.id
	}
	ctx, cancel := context.WithTimeout(context.Background(), promoteTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, winURL+"/v1/promote", bytes.NewReader([]byte("{}")))
	if err != nil {
		return nil
	}
	req.Header.Set("Content-Type", "application/json")
	if rt.cfg.PromoteToken != "" {
		req.Header.Set("Authorization", "Bearer "+rt.cfg.PromoteToken)
	}
	req.Header.Set(hopHeader, "1")
	resp, err := rt.client.Do(req)
	if err != nil {
		rlog.Warn("promotion attempt failed", "dc", dc, "candidate", winner.id, "err", err)
		return nil
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		rlog.Warn("promotion rejected", "dc", dc, "candidate", winner.id, "status", resp.Status)
		return nil
	}

	// The winner is a primary now. Flip its role and the stranded routes
	// immediately rather than waiting for its next heartbeat to confirm —
	// writes recover on this very request. Its own beats (which read the
	// role live) say "primary" from here on.
	rt.mu.Lock()
	winner.role = "primary"
	winner.primaryID = ""
	for name := range winner.dcs {
		if prev := rt.table[name]; prev == nil || prev == dead || !rt.routable(prev, now) {
			rt.table[name] = winner
		}
	}
	rt.mu.Unlock()
	rt.promotions.Add(1)
	rlog.Info("promoted follower to primary", "dc", dc, "backend", winner.id,
		"generation", winGen, "dead_primary", deadID)
	return winner
}
