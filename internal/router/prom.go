package router

import (
	"net/http"
	"time"

	"harvest/internal/obs"
	"harvest/internal/wire"
)

// binOpStats snapshots the binary front's per-opcode counters for /metrics.
// Every request opcode gets a row even before its first frame, matching the
// shards' binary section.
func (rt *Router) binOpStats() map[string]OpStats {
	ops := make(map[string]OpStats, len(rt.binOps))
	for i := range rt.binOps {
		m := &rt.binOps[i]
		ops[wire.Op(i+1).String()] = OpStats{
			Requests: m.Requests.Load(),
			Errors:   m.Errors.Load(),
			MeanUs:   m.Latency.MeanMicros(),
			P50Us:    m.Latency.QuantileMicros(0.50),
			P99Us:    m.Latency.QuantileMicros(0.99),
			MaxUs:    m.Latency.MaxMicros(),
		}
	}
	return ops
}

// writeProm renders the router's own stats — never the backends' — in
// Prometheus text exposition. It is the same data as the JSON /metrics
// "router" section; the JSON shape stays the source of truth.
func (rt *Router) writeProm(w http.ResponseWriter) {
	now := rt.now()
	var p obs.Prom

	p.Metric("harvestrouter_uptime_seconds", "gauge", "Seconds since the router started.")
	p.Float("harvestrouter_uptime_seconds", "", time.Since(rt.start).Seconds())
	p.Metric("harvestrouter_registrations_total", "counter", "Register heartbeats accepted.")
	p.Uint("harvestrouter_registrations_total", "", rt.registrations.Load())
	p.Metric("harvestrouter_proxied_total", "counter", "Requests proxied to a backend (both dialects).")
	p.Uint("harvestrouter_proxied_total", "", rt.proxiedTotal.Load())
	p.Metric("harvestrouter_proxy_errors_total", "counter", "Backend transport failures.")
	p.Uint("harvestrouter_proxy_errors_total", "", rt.proxyErrors.Load())
	p.Metric("harvestrouter_unavailable_total", "counter", "503s from staleness or an open circuit.")
	p.Uint("harvestrouter_unavailable_total", "", rt.unavailable.Load())
	p.Metric("harvestrouter_promotions_total", "counter", "Follower-to-primary promotions initiated by this router.")
	p.Uint("harvestrouter_promotions_total", "", rt.promotions.Load())

	p.Metric("harvestrouter_backend_up", "gauge", "1 when the backend's heartbeats are fresh.")
	p.Metric("harvestrouter_backend_role", "gauge", "1 when the backend announces itself primary, 0 for a follower.")
	p.Metric("harvestrouter_backend_last_beat_age_seconds", "gauge", "Seconds since the backend's last register.")
	p.Metric("harvestrouter_backend_circuit_open", "gauge", "1 while the backend's breaker is open.")
	p.Metric("harvestrouter_backend_proxied_total", "counter", "Requests proxied to this backend.")
	p.Metric("harvestrouter_backend_reads_total", "counter", "Requests the read spreader picked this backend for.")
	p.Metric("harvestrouter_backend_in_flight", "gauge", "Requests currently in flight against this backend.")
	p.Metric("harvestrouter_backend_errors_total", "counter", "Transport failures against this backend.")
	rt.mu.RLock()
	for id, b := range rt.backends {
		ls := obs.Labels("backend", id)
		up := uint64(0)
		if rt.alive(b, now) {
			up = 1
		}
		p.Uint("harvestrouter_backend_up", ls, up)
		primary := uint64(0)
		if b.role != "follower" {
			primary = 1
		}
		p.Uint("harvestrouter_backend_role", ls, primary)
		p.Float("harvestrouter_backend_last_beat_age_seconds", ls,
			time.Duration(now.UnixNano()-b.lastBeat.Load()).Seconds())
		open := uint64(0)
		if b.openUntil.Load() > now.UnixNano() {
			open = 1
		}
		p.Uint("harvestrouter_backend_circuit_open", ls, open)
		p.Uint("harvestrouter_backend_proxied_total", ls, b.proxied.Load())
		p.Uint("harvestrouter_backend_reads_total", ls, b.reads.Load())
		p.Int("harvestrouter_backend_in_flight", ls, b.inflight.Load())
		p.Uint("harvestrouter_backend_errors_total", ls, b.errors.Load())
	}
	rt.mu.RUnlock()

	// Per-backend request latency as observed from the router — the
	// per-replica histograms behind the read-spreading p99 gate.
	p.Metric("harvestrouter_backend_latency_microseconds", "histogram", "Backend request latency as observed from the router, in microseconds.")
	rt.mu.RLock()
	for id, b := range rt.backends {
		p.Histogram("harvestrouter_backend_latency_microseconds",
			obs.Labels("backend", id), &b.lat.Latency)
	}
	rt.mu.RUnlock()

	rt.binMu.Lock()
	binServing := rt.binLn != nil && !rt.binClosed
	rt.binMu.Unlock()
	if binServing {
		p.Metric("harvestrouter_binary_accepted_conns_total", "counter", "Binary client connections accepted.")
		p.Uint("harvestrouter_binary_accepted_conns_total", "", rt.binAccepted.Load())
		p.Metric("harvestrouter_binary_open_conns", "gauge", "Binary client connections currently open.")
		p.Int("harvestrouter_binary_open_conns", "", rt.binOpenConns.Load())
		p.Metric("harvestrouter_binary_framing_errors_total", "counter", "Connections dropped for bad framing.")
		p.Uint("harvestrouter_binary_framing_errors_total", "", rt.binFramingErrors.Load())
		p.Metric("harvestrouter_binary_forwarded_total", "counter", "Frames relayed natively to a binary backend.")
		p.Uint("harvestrouter_binary_forwarded_total", "", rt.binForwarded.Load())
		p.Metric("harvestrouter_binary_translated_total", "counter", "Frames bridged to a JSON-only backend.")
		p.Uint("harvestrouter_binary_translated_total", "", rt.binTranslated.Load())
		p.Metric("harvestrouter_binary_rejected_total", "counter", "Error frames originated by the router.")
		p.Uint("harvestrouter_binary_rejected_total", "", rt.binRejected.Load())

		p.Metric("harvestrouter_binary_op_requests_total", "counter", "Frames dispatched, by opcode.")
		p.Metric("harvestrouter_binary_op_errors_total", "counter", "Non-2xx outcomes, by opcode.")
		for i := range rt.binOps {
			m := &rt.binOps[i]
			ls := obs.Labels("op", wire.Op(i+1).String())
			p.Uint("harvestrouter_binary_op_requests_total", ls, m.Requests.Load())
			p.Uint("harvestrouter_binary_op_errors_total", ls, m.Errors.Load())
		}
		p.Metric("harvestrouter_binary_op_latency_microseconds", "histogram", "Frame relay latency by opcode, in microseconds.")
		for i := range rt.binOps {
			p.Histogram("harvestrouter_binary_op_latency_microseconds",
				obs.Labels("op", wire.Op(i+1).String()), &rt.binOps[i].Latency)
		}
	}

	w.Header().Set("Content-Type", obs.PromContentType)
	w.Write(p.Bytes())
}
