package router_test

import (
	"bufio"
	"net"
	"net/http/httptest"
	"testing"
	"time"

	"harvest/internal/router"
	"harvest/internal/service"
	"harvest/internal/wire"
)

// binConn is a minimal sequential binary client for router tests.
type binConn struct {
	t       *testing.T
	c       net.Conn
	br      *bufio.Reader
	scratch []byte
}

func dialBin(t *testing.T, addr string) *binConn {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	t.Cleanup(func() { c.Close() })
	return &binConn{t: t, c: c, br: bufio.NewReader(c)}
}

func (b *binConn) roundTrip(frame []byte) (wire.Header, []byte) {
	b.t.Helper()
	if _, err := b.c.Write(frame); err != nil {
		b.t.Fatalf("write: %v", err)
	}
	h, payload, err := wire.ReadFrame(b.br, &b.scratch)
	if err != nil {
		b.t.Fatalf("read frame: %v", err)
	}
	return h, payload
}

// startRouterBinary attaches a binary front end to rt on a loopback port.
func startRouterBinary(t *testing.T, rt *router.Router) string {
	t.Helper()
	addr, _, err := rt.ListenAndServeBinary("127.0.0.1:0")
	if err != nil {
		t.Fatalf("binary listen: %v", err)
	}
	t.Cleanup(rt.CloseBinary)
	rt.SetBinaryAdvertise(addr.String())
	return addr.String()
}

// TestBinaryMixedFleet drives the binary dialect through the router against
// a mixed fleet: DC-9 on a backend with its own binary listener (native
// forwarding), DC-8 on a JSON-only backend (translation bridge). Both must
// behave identically from the client's side, and each shard's books must
// balance afterwards.
func TestBinaryMixedFleet(t *testing.T) {
	rt, srv := newTestRouter(t, nil)
	binFront := startRouterBinary(t, rt)

	// DC-9: binary-capable backend.
	svcBin := newBackendService(t, "DC-9")
	apiBin := httptest.NewServer(service.NewAPI(svcBin))
	t.Cleanup(apiBin.Close)
	bs := service.NewBinaryServer(svcBin)
	bsAddr, _, err := bs.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatalf("backend binary listen: %v", err)
	}
	t.Cleanup(bs.Close)
	mustRegister(t, srv.URL, router.RegisterRequest{
		ID: "node-bin", URL: apiBin.URL, BinaryAddr: bsAddr.String(),
		Datacenters: []router.RegisterDatacenter{{Name: "DC-9", Generation: 1}},
	})

	// DC-8: JSON-only backend.
	svcJSON := newBackendService(t, "DC-8")
	apiJSON := httptest.NewServer(service.NewAPI(svcJSON))
	t.Cleanup(apiJSON.Close)
	mustRegister(t, srv.URL, router.RegisterRequest{
		ID: "node-json", URL: apiJSON.URL,
		Datacenters: []router.RegisterDatacenter{{Name: "DC-8", Generation: 1}},
	})

	c := dialBin(t, binFront)
	for i, dc := range []string{"DC-9", "DC-8"} {
		id := uint64(100 + i)
		h, payload := c.roundTrip(wire.AppendSelectReq(nil, id, dc,
			wire.SelectReq{Job: wire.JobShort, MaxCores: 2}))
		if h.Op != wire.OpSelectResp || h.ID != id {
			t.Fatalf("%s select: header %+v payload %x", dc, h, payload)
		}
		var sel wire.SelectResp
		if err := sel.Decode(payload); err != nil {
			t.Fatalf("%s select decode: %v", dc, err)
		}
		if !sel.Satisfiable || sel.Lease == 0 {
			t.Fatalf("%s select unsatisfied: %+v", dc, sel)
		}

		h, payload = c.roundTrip(wire.AppendClassesReq(nil, id+10, dc))
		if h.Op != wire.OpClassesResp {
			t.Fatalf("%s classes: op %v", dc, h.Op)
		}
		var classes wire.ClassesResp
		if err := classes.Decode(payload); err != nil || len(classes.Classes) == 0 {
			t.Fatalf("%s classes: %+v err %v", dc, classes, err)
		}

		h, payload = c.roundTrip(wire.AppendReleaseReq(nil, id+20, dc, sel.Lease))
		if h.Op != wire.OpReleaseResp {
			t.Fatalf("%s release: op %v payload %x", dc, h.Op, payload)
		}
		var rel wire.ReleaseResp
		if err := rel.Decode(payload); err != nil || rel.TotalMillis <= 0 {
			t.Fatalf("%s release: %+v err %v", dc, rel, err)
		}
	}

	// A frame for a datacenter nobody serves answers 404 without closing.
	h, payload := c.roundTrip(wire.AppendClassesReq(nil, 999, "DC-0"))
	var e wire.ErrorResp
	if h.Op != wire.OpError || e.Decode(payload) != nil || e.Code != 404 {
		t.Fatalf("unknown dc: op %v code %d", h.Op, e.Code)
	}

	// Books balance on both shards: everything reserved came back.
	for dc, svc := range map[string]*service.Service{"DC-9": svcBin, "DC-8": svcJSON} {
		st, ok := svc.LedgerStats(dc)
		if !ok {
			t.Fatalf("%s: no ledger stats", dc)
		}
		if st.OutstandingMillis != 0 || st.ReservedMillis == 0 || st.ReservedMillis != st.ReleasedMillis {
			t.Fatalf("%s books unbalanced: %+v", dc, st)
		}
	}
}

// TestBinaryBackendDesyncDetected proves the router validates the echoed
// request id on natively forwarded frames: a backend answering with the
// wrong id gets its pooled conn dropped and the client sees an error frame,
// not a mismatched response.
func TestBinaryBackendDesyncDetected(t *testing.T) {
	rt, srv := newTestRouter(t, nil)
	binFront := startRouterBinary(t, rt)

	// A fake binary backend that echoes every frame with id+1.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				br := bufio.NewReader(c)
				var scratch []byte
				for {
					h, payload, err := wire.ReadFrame(br, &scratch)
					if err != nil {
						return
					}
					c.Write(wire.AppendFrame(nil, h.Op.Resp(), h.ID+1, payload))
				}
			}(c)
		}
	}()

	fb := newFakeBackend(t)
	mustRegister(t, srv.URL, router.RegisterRequest{
		ID: "node-desync", URL: fb.srv.URL, BinaryAddr: ln.Addr().String(),
		Datacenters: []router.RegisterDatacenter{{Name: "DC-1", Generation: 1}},
	})

	c := dialBin(t, binFront)
	h, payload := c.roundTrip(wire.AppendClassesReq(nil, 7, "DC-1"))
	var e wire.ErrorResp
	if h.Op != wire.OpError || h.ID != 7 || e.Decode(payload) != nil || e.Code != 503 {
		t.Fatalf("desync response: op %v id %d code %d", h.Op, h.ID, e.Code)
	}
}

// TestBinaryFrontClosesOnGarbage mirrors the backend server's framing
// discipline: a non-frame byte stream is dropped without a response.
func TestBinaryFrontClosesOnGarbage(t *testing.T) {
	rt, _ := newTestRouter(t, nil)
	binFront := startRouterBinary(t, rt)

	c := dialBin(t, binFront)
	if _, err := c.c.Write([]byte("GET / HTTP/1.1\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	c.c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if b, err := c.br.ReadByte(); err == nil {
		t.Fatalf("router answered %#x to garbage instead of closing", b)
	}
}
