package router_test

import (
	"bufio"
	"net"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"harvest/internal/router"
	"harvest/internal/service"
	"harvest/internal/wire"
)

// binConn is a minimal sequential binary client for router tests.
type binConn struct {
	t       *testing.T
	c       net.Conn
	br      *bufio.Reader
	scratch []byte
}

func dialBin(t *testing.T, addr string) *binConn {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	t.Cleanup(func() { c.Close() })
	return &binConn{t: t, c: c, br: bufio.NewReader(c)}
}

func (b *binConn) roundTrip(frame []byte) (wire.Header, []byte) {
	b.t.Helper()
	if _, err := b.c.Write(frame); err != nil {
		b.t.Fatalf("write: %v", err)
	}
	h, payload, err := wire.ReadFrame(b.br, &b.scratch)
	if err != nil {
		b.t.Fatalf("read frame: %v", err)
	}
	return h, payload
}

// startRouterBinary attaches a binary front end to rt on a loopback port.
func startRouterBinary(t *testing.T, rt *router.Router) string {
	t.Helper()
	addr, _, err := rt.ListenAndServeBinary("127.0.0.1:0")
	if err != nil {
		t.Fatalf("binary listen: %v", err)
	}
	t.Cleanup(rt.CloseBinary)
	rt.SetBinaryAdvertise(addr.String())
	return addr.String()
}

// TestBinaryMixedFleet drives the binary dialect through the router against
// a mixed fleet: DC-9 on a backend with its own binary listener (native
// forwarding), DC-8 on a JSON-only backend (translation bridge). Both must
// behave identically from the client's side, and each shard's books must
// balance afterwards.
func TestBinaryMixedFleet(t *testing.T) {
	rt, srv := newTestRouter(t, nil)
	binFront := startRouterBinary(t, rt)

	// DC-9: binary-capable backend.
	svcBin := newBackendService(t, "DC-9")
	apiBin := httptest.NewServer(service.NewAPI(svcBin))
	t.Cleanup(apiBin.Close)
	bs := service.NewBinaryServer(svcBin)
	bsAddr, _, err := bs.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatalf("backend binary listen: %v", err)
	}
	t.Cleanup(bs.Close)
	mustRegister(t, srv.URL, router.RegisterRequest{
		ID: "node-bin", URL: apiBin.URL, BinaryAddr: bsAddr.String(),
		Datacenters: []router.RegisterDatacenter{{Name: "DC-9", Generation: 1}},
	})

	// DC-8: JSON-only backend.
	svcJSON := newBackendService(t, "DC-8")
	apiJSON := httptest.NewServer(service.NewAPI(svcJSON))
	t.Cleanup(apiJSON.Close)
	mustRegister(t, srv.URL, router.RegisterRequest{
		ID: "node-json", URL: apiJSON.URL,
		Datacenters: []router.RegisterDatacenter{{Name: "DC-8", Generation: 1}},
	})

	c := dialBin(t, binFront)
	for i, dc := range []string{"DC-9", "DC-8"} {
		id := uint64(100 + i)
		h, payload := c.roundTrip(wire.AppendSelectReq(nil, id, dc,
			wire.SelectReq{Job: wire.JobShort, MaxCores: 2}))
		if h.Op != wire.OpSelectResp || h.ID != id {
			t.Fatalf("%s select: header %+v payload %x", dc, h, payload)
		}
		var sel wire.SelectResp
		if err := sel.Decode(payload); err != nil {
			t.Fatalf("%s select decode: %v", dc, err)
		}
		if !sel.Satisfiable || sel.Lease == 0 {
			t.Fatalf("%s select unsatisfied: %+v", dc, sel)
		}

		h, payload = c.roundTrip(wire.AppendClassesReq(nil, id+10, dc))
		if h.Op != wire.OpClassesResp {
			t.Fatalf("%s classes: op %v", dc, h.Op)
		}
		var classes wire.ClassesResp
		if err := classes.Decode(payload); err != nil || len(classes.Classes) == 0 {
			t.Fatalf("%s classes: %+v err %v", dc, classes, err)
		}

		h, payload = c.roundTrip(wire.AppendReleaseReq(nil, id+20, dc, sel.Lease))
		if h.Op != wire.OpReleaseResp {
			t.Fatalf("%s release: op %v payload %x", dc, h.Op, payload)
		}
		var rel wire.ReleaseResp
		if err := rel.Decode(payload); err != nil || rel.TotalMillis <= 0 {
			t.Fatalf("%s release: %+v err %v", dc, rel, err)
		}
	}

	// A frame for a datacenter nobody serves answers 404 without closing.
	h, payload := c.roundTrip(wire.AppendClassesReq(nil, 999, "DC-0"))
	var e wire.ErrorResp
	if h.Op != wire.OpError || e.Decode(payload) != nil || e.Code != 404 {
		t.Fatalf("unknown dc: op %v code %d", h.Op, e.Code)
	}

	// Books balance on both shards: everything reserved came back.
	for dc, svc := range map[string]*service.Service{"DC-9": svcBin, "DC-8": svcJSON} {
		st, ok := svc.LedgerStats(dc)
		if !ok {
			t.Fatalf("%s: no ledger stats", dc)
		}
		if st.OutstandingMillis != 0 || st.ReservedMillis == 0 || st.ReservedMillis != st.ReleasedMillis {
			t.Fatalf("%s books unbalanced: %+v", dc, st)
		}
	}
}

// TestBinaryPipelinedRelay proves the native relay is no longer lock-step: a
// client pipelining N frames on one connection has them in flight against
// the backend concurrently, and the responses come back in request order
// even though the backend completes them out of order. The fake backend also
// asserts the relay discipline itself: every forwarded frame must carry a
// router-minted unique id plus the client's original id as a FlagTrace
// payload prefix (client ids may collide across the frames sharing a pipe,
// so the header id cannot be the client's).
func TestBinaryPipelinedRelay(t *testing.T) {
	const (
		frames = 8
		delay  = 300 * time.Millisecond
	)
	rt, srv := newTestRouter(t, nil)
	binFront := startRouterBinary(t, rt)

	// A slow binary backend: each frame is answered after delay, on its own
	// goroutine, so responses complete concurrently and out of order.
	var (
		mu       sync.Mutex
		relayIDs = map[uint64]int{}
		traceIDs = map[uint64]int{}
	)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				br := bufio.NewReader(c)
				var wmu sync.Mutex
				var scratch []byte
				for {
					h, payload, err := wire.ReadFrame(br, &scratch)
					if err != nil {
						return
					}
					traceID, rest, ok := wire.SplitTrace(h, payload)
					mu.Lock()
					if !ok || h.Flags&wire.FlagTrace == 0 {
						t.Errorf("forwarded frame id %d missing the trace prefix", h.ID)
					}
					relayIDs[h.ID]++
					traceIDs[traceID]++
					mu.Unlock()
					resp := wire.AppendFrame(nil, h.Op.Resp(), h.ID, rest)
					go func() {
						time.Sleep(delay)
						wmu.Lock()
						defer wmu.Unlock()
						c.Write(resp)
					}()
				}
			}(c)
		}
	}()

	fb := newFakeBackend(t)
	mustRegister(t, srv.URL, router.RegisterRequest{
		ID: "node-slow", URL: fb.srv.URL, BinaryAddr: ln.Addr().String(),
		Datacenters: []router.RegisterDatacenter{{Name: "DC-1", Generation: 1}},
	})

	c := dialBin(t, binFront)
	var batch []byte
	for i := 0; i < frames; i++ {
		batch = wire.AppendClassesReq(batch, uint64(100+i), "DC-1")
	}
	start := time.Now()
	if _, err := c.c.Write(batch); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < frames; i++ {
		h, _, err := wire.ReadFrame(c.br, &c.scratch)
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if h.Op != wire.OpClassesResp {
			t.Fatalf("response %d: op %v", i, h.Op)
		}
		if h.ID != uint64(100+i) {
			t.Fatalf("response %d carries id %d, want %d: client-facing responses must keep request order", i, h.ID, 100+i)
		}
	}
	elapsed := time.Since(start)
	// Lock-step relay would take frames×delay (2.4 s); concurrent in-flight
	// frames overlap the waits. The generous bound keeps slow CI hosts green
	// while still being impossible for a serial relay to meet.
	if limit := frames * delay / 2; elapsed >= limit {
		t.Fatalf("%d pipelined frames of %v backend latency took %v (≥ %v): relay is lock-step", frames, delay, elapsed, limit)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(relayIDs) != frames {
		t.Fatalf("backend saw %d distinct relay ids for %d frames: %v", len(relayIDs), frames, relayIDs)
	}
	for i := 0; i < frames; i++ {
		if traceIDs[uint64(100+i)] != 1 {
			t.Fatalf("client id %d not carried as a trace prefix exactly once: %v", 100+i, traceIDs)
		}
	}
}

// TestBinaryPerLeaseOrdering pins the relay's ordering contract: release and
// renew frames are keyed onto a backend pipe by lease id, so two operations
// on the same lease arrive at the backend in the order the client issued
// them even though unrelated frames fan out across pipes. A client that
// pipelines renew(L) then release(L) must never have the backend observe the
// release first (the race that made renews 404 against an already-released
// lease).
func TestBinaryPerLeaseOrdering(t *testing.T) {
	const leases = 200
	rt, srv := newTestRouter(t, nil)
	binFront := startRouterBinary(t, rt)

	// A recording binary backend: frames on each conn are handled
	// sequentially (like the real shard server), and every renew/release is
	// appended to one global arrival log.
	type arrival struct {
		op    wire.Op
		lease uint64
	}
	var (
		mu  sync.Mutex
		log []arrival
	)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				br := bufio.NewReader(c)
				var scratch []byte
				for {
					h, payload, err := wire.ReadFrame(br, &scratch)
					if err != nil {
						return
					}
					_, rest, _ := wire.SplitTrace(h, payload)
					if lease, ok := wire.PeekLease(rest); ok {
						mu.Lock()
						log = append(log, arrival{h.Op, lease})
						mu.Unlock()
					}
					c.Write(wire.AppendFrame(nil, h.Op.Resp(), h.ID, rest))
				}
			}(c)
		}
	}()

	fb := newFakeBackend(t)
	mustRegister(t, srv.URL, router.RegisterRequest{
		ID: "node-order", URL: fb.srv.URL, BinaryAddr: ln.Addr().String(),
		Datacenters: []router.RegisterDatacenter{{Name: "DC-1", Generation: 1}},
	})

	c := dialBin(t, binFront)
	var batch []byte
	for l := uint64(1); l <= leases; l++ {
		batch = wire.AppendRenewReq(batch, 2*l, "DC-1", wire.RenewReq{Lease: l, HoldMillis: 1000})
		batch = wire.AppendReleaseReq(batch, 2*l+1, "DC-1", l)
	}
	if _, err := c.c.Write(batch); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2*leases; i++ {
		h, _, err := wire.ReadFrame(c.br, &c.scratch)
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if h.Op == wire.OpError {
			t.Fatalf("response %d: unexpected error frame", i)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	if len(log) != 2*leases {
		t.Fatalf("backend recorded %d frames, want %d", len(log), 2*leases)
	}
	renewSeen := map[uint64]bool{}
	for i, a := range log {
		switch a.op {
		case wire.OpRenew:
			renewSeen[a.lease] = true
		case wire.OpRelease:
			if !renewSeen[a.lease] {
				t.Fatalf("arrival %d: release of lease %d overtook its renew — per-lease order violated", i, a.lease)
			}
		}
	}
}

// TestBinaryBackendDesyncDetected proves the router validates the echoed
// request id on natively forwarded frames: a backend answering with the
// wrong id gets its pooled conn dropped and the client sees an error frame,
// not a mismatched response.
func TestBinaryBackendDesyncDetected(t *testing.T) {
	rt, srv := newTestRouter(t, nil)
	binFront := startRouterBinary(t, rt)

	// A fake binary backend that echoes every frame with id+1.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				br := bufio.NewReader(c)
				var scratch []byte
				for {
					h, payload, err := wire.ReadFrame(br, &scratch)
					if err != nil {
						return
					}
					c.Write(wire.AppendFrame(nil, h.Op.Resp(), h.ID+1, payload))
				}
			}(c)
		}
	}()

	fb := newFakeBackend(t)
	mustRegister(t, srv.URL, router.RegisterRequest{
		ID: "node-desync", URL: fb.srv.URL, BinaryAddr: ln.Addr().String(),
		Datacenters: []router.RegisterDatacenter{{Name: "DC-1", Generation: 1}},
	})

	c := dialBin(t, binFront)
	h, payload := c.roundTrip(wire.AppendClassesReq(nil, 7, "DC-1"))
	var e wire.ErrorResp
	if h.Op != wire.OpError || h.ID != 7 || e.Decode(payload) != nil || e.Code != 503 {
		t.Fatalf("desync response: op %v id %d code %d", h.Op, h.ID, e.Code)
	}
}

// TestBinaryFrontClosesOnGarbage mirrors the backend server's framing
// discipline: a non-frame byte stream is dropped without a response.
func TestBinaryFrontClosesOnGarbage(t *testing.T) {
	rt, _ := newTestRouter(t, nil)
	binFront := startRouterBinary(t, rt)

	c := dialBin(t, binFront)
	if _, err := c.c.Write([]byte("GET / HTTP/1.1\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	c.c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if b, err := c.br.ReadByte(); err == nil {
		t.Fatalf("router answered %#x to garbage instead of closing", b)
	}
}
