// Package router is the multi-node sharding front end: a stateless HTTP
// proxy that owns a datacenter → backend routing table and forwards
// /v1/{dc}/... requests to the harvestd instance serving that datacenter.
// Shards (datacenters) are independent by construction — the paper's
// harvesting control plane is per-datacenter — so splitting them across
// processes needs no coordination beyond "who serves what": backends announce
// themselves with POST /v1/register heartbeats carrying their datacenter set
// and per-DC snapshot generations, and the router serves /v1/datacenters as
// the union across live backends.
//
// Failure semantics are deliberately simple and observable:
//
//   - A backend that stops heartbeating is marked stale after StaleAfter;
//     requests for its datacenters get 503 with a Retry-After hint until it
//     re-registers (registration is idempotent, so recovery is one beat).
//   - A backend whose transport fails (connection refused, timeout) trips a
//     per-backend circuit breaker after BreakerThreshold consecutive
//     failures: requests 503 immediately for BreakerCooldown instead of
//     each paying a connect timeout, then one probe request is let through.
//   - Ownership is sticky per datacenter: while a DC's current owner keeps
//     heartbeating, another backend announcing the same DC does not take it
//     over (the route must not ping-pong mid-lease). The DC moves once the
//     owner drops it or goes stale, so a migration is "start the new owner,
//     stop the old one".
//
// The router holds no per-request state — leases, ledgers, and telemetry all
// live on the owning backend — so any number of router replicas can front
// the same backend set, provided each replica receives the backends'
// heartbeats (harvestd -announce takes the full comma-separated replica
// list).
package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"harvest/internal/httpjson"
	"harvest/internal/obs"
	"harvest/internal/regproto"
)

// rlog is the router's structured logger: component=router on every line.
var rlog = obs.NewLogger("router")

// The registration wire types live in internal/regproto so the backends'
// registration client (internal/service.Announcer) shares them without the
// serving tier importing the proxy; the aliases keep this package's API
// self-contained.
type (
	RegisterDatacenter = regproto.RegisterDatacenter
	RegisterRequest    = regproto.RegisterRequest
	RegisterResponse   = regproto.RegisterResponse
)

// Config parameterizes the router.
type Config struct {
	// StaleAfter marks a backend stale this long after its last heartbeat;
	// its datacenters then 503 until it re-registers. Zero means 10 seconds
	// (five beats at the announcer's 2-second default).
	StaleAfter time.Duration
	// RetryAfter is the Retry-After hint on 503 responses for stale backends.
	// Zero means 2 seconds — one announce interval, the soonest a recovered
	// backend could have re-registered.
	RetryAfter time.Duration
	// BreakerThreshold is how many consecutive transport failures open a
	// backend's circuit. Zero means 3; negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit rejects requests before
	// letting a probe through. Zero means 2 seconds.
	BreakerCooldown time.Duration
	// ProxyTimeout bounds one proxied round-trip. Zero means 15 seconds.
	ProxyTimeout time.Duration
	// RegisterToken, when non-empty, requires POST /v1/register callers to
	// present "Authorization: Bearer <token>"; everything else is 401. The
	// registration surface moves routing — without the token anyone who can
	// reach the router could hijack a datacenter's traffic.
	RegisterToken string
	// MaxGenLag is the read-spreading staleness gate: a follower whose
	// announced generation trails the primary's by more than this many
	// generations is skipped for reads until it catches up. Zero means 2;
	// negative pins all reads to the primary (spreading off).
	MaxGenLag int
	// PromoteToken is the bearer token sent on POST /v1/promote to a
	// follower when its primary stops beating — the backends' ingest token,
	// which guards their promotion endpoint.
	PromoteToken string
	// PromoteCooldown is the minimum interval between promotion attempts per
	// datacenter. Zero means 5 seconds.
	PromoteCooldown time.Duration
	// Now overrides the clock (tests drive staleness without sleeping). Nil
	// means time.Now.
	Now func() time.Time
}

// backend is one registered harvestd node. Identity, URL, and the datacenter
// map are guarded by the router's mutex (they only change on register);
// heartbeat and breaker state are atomics read on every proxied request.
type backend struct {
	id  string
	url string            // base URL, no trailing slash
	dcs map[string]uint64 // datacenter → announced generation (guarded by Router.mu)

	// binAddr is the backend's advertised binary frame listener (host:port),
	// empty for a JSON-only backend. Guarded by Router.mu like url; it decides
	// per-backend whether data-plane frames are forwarded natively or
	// translated to the JSON API.
	binAddr string

	// replicateAddr is the backend's announced replication listener (guarded
	// by Router.mu): live on a primary, armed on a follower. The register
	// acknowledgement hands the current owner's address back to its followers
	// so orphans re-dial the promoted node.
	replicateAddr string

	// draining is set by a backend's final heartbeat before a planned
	// shutdown: still alive, but asking not to be routed to. Atomic because
	// the proxy path reads it outside Router.mu.
	draining atomic.Bool

	// role and primaryID mirror the backend's announced replication role
	// (guarded by Router.mu like url): "primary" for a write-capable owner
	// ("" from pre-replication backends normalizes to it), "follower" for a
	// read-only replica of the backend named primaryID. Followers never claim
	// sticky datacenter ownership; they serve spread reads (replica.go).
	role      string
	primaryID string

	// Read fan-out accounting: inflight is the power-of-two-choices load
	// signal, reads counts requests this backend was picked for by read
	// classification, lat is the per-backend request latency across both
	// dialects (satellite of the replica work: per-replica histograms on
	// /metrics).
	inflight atomic.Int64
	reads    atomic.Uint64
	lat      obs.EndpointMetrics

	// The pipelined binary connections feeding native forwarding: each pipe
	// carries many in-flight frames keyed by relay id (binary.go). The table
	// is a fixed array of slots so that frames keyed by lease id always map
	// to the same pipe — the per-lease ordering guarantee (binary.go).
	// Guarded by binMu, never Router.mu — the pipes are touched on every
	// forwarded frame and must not contend with the routing table. Lock
	// order: Router.mu may be held when binMu is taken (register closes the
	// pipes), never the reverse.
	binMu    sync.Mutex
	binPipes [binPipeCount]*binPipe

	lastBeat    atomic.Int64 // unix nanos of the last register
	consecFails atomic.Int32 // consecutive proxy transport failures
	openUntil   atomic.Int64 // unix nanos; breaker open while now < openUntil, half-open once past it
	probing     atomic.Bool  // a half-open probe request is in flight

	proxied atomic.Uint64 // requests forwarded (any status)
	errors  atomic.Uint64 // transport-level proxy failures
}

// Router is the front end. It implements http.Handler.
type Router struct {
	cfg    Config
	mux    *http.ServeMux
	client *http.Client
	start  time.Time
	now    func() time.Time

	mu       sync.RWMutex
	backends map[string]*backend // by id
	table    map[string]*backend // datacenter → owning backend

	registrations atomic.Uint64
	proxiedTotal  atomic.Uint64
	proxyErrors   atomic.Uint64
	unavailable   atomic.Uint64 // 503s rejected without touching a backend (stale / circuit open / probe held)

	// Promotion state (replica.go): per-DC cooldown on election attempts.
	promoteMu   sync.Mutex
	lastPromote map[string]time.Time
	promotions  atomic.Uint64

	// Binary front-end state (see binary.go). binAdvertise is set once before
	// serving and published on /v1/datacenters so binary-capable clients can
	// discover the frame listener from the JSON control plane.
	binAdvertise string
	binMu        sync.Mutex
	binLn        net.Listener
	binClosed    bool
	binConns     map[net.Conn]struct{}
	binWG        sync.WaitGroup

	binAccepted      atomic.Uint64
	binOpenConns     atomic.Int64
	binFramingErrors atomic.Uint64
	binForwarded     atomic.Uint64 // frames relayed natively to a binary backend
	binTranslated    atomic.Uint64 // frames bridged to a JSON-only backend
	binRejected      atomic.Uint64 // error frames originated by the router itself

	// binOps is the per-opcode request/error/latency breakdown of the binary
	// front end (the counters above say how much; these say how fast),
	// indexed like service.opIndex: op byte - 1.
	binOps [8]obs.EndpointMetrics

	// binRelayID mints the unique ids frames travel under on the backend leg
	// of native forwarding; responses are matched back to their waiters by
	// this id and re-stamped with the client's own before relay.
	binRelayID atomic.Uint64

	// rec is the per-process trace recorder behind GET /debug/traces: every
	// proxied request and relayed frame records its ingress/breaker/backend
	// spans here under the trace id it carried (or was assigned).
	rec *obs.Recorder
}

// Recorder exposes the router's trace recorder for the debug listener and
// tests.
func (rt *Router) Recorder() *obs.Recorder { return rt.rec }

// New builds a router with no backends; they arrive via /v1/register.
func New(cfg Config) *Router {
	if cfg.StaleAfter <= 0 {
		cfg.StaleAfter = 10 * time.Second
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 2 * time.Second
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 2 * time.Second
	}
	if cfg.ProxyTimeout <= 0 {
		cfg.ProxyTimeout = 15 * time.Second
	}
	if cfg.MaxGenLag == 0 {
		cfg.MaxGenLag = 2
	}
	if cfg.PromoteCooldown <= 0 {
		cfg.PromoteCooldown = 5 * time.Second
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	r := &Router{
		cfg:   cfg,
		mux:   http.NewServeMux(),
		start: time.Now(),
		now:   now,
		client: &http.Client{
			Timeout: cfg.ProxyTimeout,
			// A reverse proxy relays 3xx verbatim; following them would
			// re-issue proxied POSTs as GETs of arbitrary Location targets.
			CheckRedirect: func(req *http.Request, via []*http.Request) error {
				return http.ErrUseLastResponse
			},
			// Keep-alive connection reuse per backend is where the proxy's
			// throughput comes from: idle conns stay pooled well past the
			// announce cadence.
			// IdleConnTimeout stays well below harvestd's server-side
			// IdleTimeout (2 minutes): the router must drop an idle conn
			// before the backend does, or a reuse racing the backend's close
			// shows up as a spurious transport failure.
			Transport: &http.Transport{
				MaxIdleConns:        512,
				MaxIdleConnsPerHost: 128,
				IdleConnTimeout:     30 * time.Second,
			},
		},
		backends:    make(map[string]*backend),
		table:       make(map[string]*backend),
		lastPromote: make(map[string]time.Time),
		rec:         obs.NewRecorder(obs.DefaultRingTraces),
	}
	r.mux.HandleFunc("POST /v1/register", r.handleRegister)
	r.mux.HandleFunc("GET /v1/datacenters", r.handleDatacenters)
	r.mux.HandleFunc("GET /healthz", r.handleHealthz)
	r.mux.HandleFunc("GET /metrics", r.handleMetrics)
	r.mux.HandleFunc("/v1/{dc}/{rest...}", r.handleProxy)
	return r
}

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

// writeJSON and writeError are the serving tier's shared response
// convention (internal/httpjson): explicit Content-Length, never chunked,
// identical shape to the backends' responses for pipelined clients.
func writeJSON(w http.ResponseWriter, status int, v any) { httpjson.Write(w, status, v) }

func writeError(w http.ResponseWriter, status int, msg string) {
	httpjson.WriteError(w, status, msg)
}

// writeUnavailable is the single shape of every "shard exists but cannot be
// served right now" response: 503 plus the Retry-After clients should honor.
// Callers rejecting without a backend attempt count rt.unavailable
// themselves; transport-failure paths are already counted as proxy errors.
func (rt *Router) writeUnavailable(w http.ResponseWriter, retryAfter time.Duration, msg string) {
	secs := int(retryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeError(w, http.StatusServiceUnavailable, msg)
}

// maxRegisterBody bounds a heartbeat body; a registration is a few hundred
// bytes even with every datacenter on one node.
const maxRegisterBody = 1 << 20

// maxProxyBody bounds a proxied request body: the backends cap their own
// POST bodies at 1 MiB, so anything larger is rejected here without ever
// reaching a shard.
const maxProxyBody = 2 << 20

// maxProxyResponse bounds the response re-buffer. Real backend responses
// top out in the tens of kilobytes (/metrics with every DC); the cap exists
// so a misbehaving — or maliciously registered — backend streaming an
// unbounded body cannot balloon the router's memory per in-flight request.
const maxProxyResponse = 8 << 20

func (rt *Router) handleRegister(w http.ResponseWriter, r *http.Request) {
	if !httpjson.BearerAuthorized(r, rt.cfg.RegisterToken) {
		writeError(w, http.StatusUnauthorized, "missing or invalid register token")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRegisterBody))
	if err == nil && len(bytes.TrimSpace(body)) == 0 {
		err = fmt.Errorf("empty body")
	}
	var req RegisterRequest
	if err == nil {
		err = json.Unmarshal(body, &req)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad register body: "+err.Error())
		return
	}
	if req.ID == "" {
		writeError(w, http.StatusBadRequest, "register requires a backend id")
		return
	}
	u, err := url.Parse(req.URL)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		writeError(w, http.StatusBadRequest, "register url must be an absolute http(s) URL")
		return
	}
	// The URL is a base the proxy appends "/v1/..." to: a path, query, or
	// fragment would corrupt every proxied target while the backend looked
	// perfectly healthy in /metrics — reject it at the source.
	if (u.Path != "" && u.Path != "/") || u.RawQuery != "" || u.Fragment != "" {
		writeError(w, http.StatusBadRequest, "register url must be a bare base URL (no path, query, or fragment)")
		return
	}
	if req.BinaryAddr != "" {
		if _, _, err := net.SplitHostPort(req.BinaryAddr); err != nil {
			writeError(w, http.StatusBadRequest, "register binary_addr must be host:port: "+err.Error())
			return
		}
	}
	if req.ReplicateAddr != "" {
		if _, _, err := net.SplitHostPort(req.ReplicateAddr); err != nil {
			writeError(w, http.StatusBadRequest, "register replicate_addr must be host:port: "+err.Error())
			return
		}
	}
	if len(req.Datacenters) == 0 {
		writeError(w, http.StatusBadRequest, "register requires at least one datacenter")
		return
	}
	for _, dc := range req.Datacenters {
		if dc.Name == "" {
			writeError(w, http.StatusBadRequest, "register datacenter with empty name")
			return
		}
	}
	role := req.Role
	switch role {
	case "":
		// Pre-replication backends announce no role; they are write-capable.
		role = "primary"
	case "primary", "follower":
	default:
		writeError(w, http.StatusBadRequest, "register role must be primary or follower")
		return
	}
	baseURL := strings.TrimRight(req.URL, "/")

	rt.mu.Lock()
	now := rt.now()
	// Age out backends gone for many staleness windows: a permanently dead
	// node's datacenters fall back to 404 (unknown) rather than 503ing
	// forever, and the backend set cannot grow without bound when node IDs
	// change across restarts. 10× the staleness window is far past any
	// transient outage the 503+Retry-After path is meant to bridge.
	cutoff := now.Add(-10 * rt.cfg.StaleAfter).UnixNano()
	for id, old := range rt.backends {
		if old.lastBeat.Load() > cutoff {
			continue
		}
		for name, owner := range rt.table {
			if owner == old {
				delete(rt.table, name)
			}
		}
		delete(rt.backends, id)
		old.closeBinPipes()
		rlog.Info("backend aged out without a heartbeat", "backend", id, "after", 10*rt.cfg.StaleAfter)
	}
	b := rt.backends[req.ID]
	if b == nil {
		b = &backend{id: req.ID}
		rt.backends[req.ID] = b
		rlog.Info("backend registered", "backend", req.ID, "url", baseURL, "datacenters", len(req.Datacenters))
	} else if b.url != baseURL {
		// A URL change under an existing ID is either a legitimate restart on
		// a new address or two nodes sharing one -node-id — the latter flaps
		// the route at heartbeat cadence and strands leases, so make every
		// flip visible.
		rlog.Warn("backend changed URL (two nodes sharing one -node-id would flap here every beat)",
			"backend", req.ID, "from", b.url, "to", baseURL)
	}
	b.url = baseURL
	b.role = role
	b.primaryID = req.PrimaryID
	b.replicateAddr = req.ReplicateAddr
	if req.Draining && !b.draining.Load() {
		rlog.Info("backend draining (planned shutdown)", "backend", b.id)
	}
	b.draining.Store(req.Draining)
	if b.binAddr != req.BinaryAddr {
		if b.binAddr != "" {
			// The old listener's pooled conns point at an address the backend
			// no longer serves (restart on a new port, or the capability was
			// turned off); reusing them would forward frames into the void.
			rlog.Info("backend binary listener changed, dropping pooled conns",
				"backend", b.id, "from", b.binAddr, "to", req.BinaryAddr)
		}
		b.binAddr = req.BinaryAddr
		b.closeBinPipes()
	}
	next := make(map[string]uint64, len(req.Datacenters))
	for _, dc := range req.Datacenters {
		next[dc.Name] = dc.Generation
	}
	// Drop routing entries for datacenters this backend no longer announces.
	for name := range b.dcs {
		if _, still := next[name]; !still {
			if rt.table[name] == b {
				delete(rt.table, name)
				rlog.Info("backend dropped datacenter", "backend", b.id, "dc", name)
			}
		}
	}
	// Ownership is sticky while the owner is alive: two nodes announcing the
	// same datacenter must not ping-pong the route at heartbeat cadence —
	// that would strand leases on the shard that issued them. A datacenter
	// moves only when its current owner dropped it, went stale, or demoted
	// itself to follower, so a migration is "start the new owner, stop the
	// old one" and the handover happens at the staleness deadline.
	//
	// Followers never claim: their books replicate someone else's, so routing
	// a write to one gets a retryable 503, not a lease. They also do not
	// *drop* entries they may hold — a just-promoted node's stale "follower"
	// beat, composed before the promotion landed, must not yank the route the
	// router just flipped to it.
	if role != "follower" {
		for name := range next {
			if prev := rt.table[name]; prev != nil && prev != b {
				if rt.alive(prev, now) && prev.role != "follower" && !prev.draining.Load() {
					continue
				}
				rlog.Info("datacenter moved to announcing primary", "dc", name, "from", prev.id, "to", b.id)
			}
			rt.table[name] = b
		}
	}
	b.dcs = next
	backends := len(rt.backends)
	// Tell a follower where its datacenters' current primary listens for
	// replication: after a promotion this is the *promoted* node's listener,
	// and orphaned followers re-dial it on their next beat. Computed under
	// the same lock that guards the table.
	primaryReplAddr := ""
	if role == "follower" {
		for _, dc := range req.Datacenters {
			owner := rt.table[dc.Name]
			if owner != nil && owner != b && owner.replicateAddr != "" &&
				rt.alive(owner, now) && !owner.draining.Load() {
				primaryReplAddr = owner.replicateAddr
				break
			}
		}
	}
	// The beat is stored before the lock is released: the table entry must
	// never be observable with a zero lastBeat, or a proxy request racing
	// the very first registration would 503 it as stale. The breaker is
	// deliberately NOT reset by a heartbeat — beats prove the backend can
	// reach the router, not that the router can reach the backend (think a
	// typo'd -advertise URL or an asymmetric firewall), so only a successful
	// data-plane probe closes an open circuit.
	b.lastBeat.Store(now.UnixNano())
	rt.mu.Unlock()

	rt.registrations.Add(1)
	writeJSON(w, http.StatusOK, RegisterResponse{
		Status:               "ok",
		Backends:             backends,
		StaleAfterSeconds:    rt.cfg.StaleAfter.Seconds(),
		PrimaryReplicateAddr: primaryReplAddr,
	})
}

// alive reports whether the backend has heartbeated within StaleAfter.
func (rt *Router) alive(b *backend, now time.Time) bool {
	return now.UnixNano()-b.lastBeat.Load() <= int64(rt.cfg.StaleAfter)
}

// routable reports whether requests may be sent to the backend: alive and not
// draining. A draining backend is still beating — its shutdown is planned —
// but asked to be taken out of rotation immediately rather than waiting out
// the staleness window.
func (rt *Router) routable(b *backend, now time.Time) bool {
	return rt.alive(b, now) && !b.draining.Load()
}

// collectBackend removes a long-dead backend and its routing entries — the
// on-demand twin of handleRegister's age-out sweep. Re-checked under the
// write lock so a racing re-registration wins.
func (rt *Router) collectBackend(b *backend, cutoff int64) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if b.lastBeat.Load() > cutoff || rt.backends[b.id] != b {
		return
	}
	for name, owner := range rt.table {
		if owner == b {
			delete(rt.table, name)
		}
	}
	delete(rt.backends, b.id)
	b.closeBinPipes()
	rlog.Info("backend aged out without a heartbeat", "backend", b.id, "after", 10*rt.cfg.StaleAfter)
}

// hopByHopHeaders are stripped when forwarding in either direction (RFC 9110
// §7.6.1); everything else — Content-Type, Authorization for the ingest
// token, etc. — passes through untouched.
var hopByHopHeaders = []string{
	"Connection", "Keep-Alive", "Proxy-Authenticate", "Proxy-Authorization",
	"Te", "Trailer", "Transfer-Encoding", "Upgrade",
}

// hopHeader marks a request as already router-forwarded. The topology is a
// single routing tier by design, so any proxied request arriving back at a
// router is a cycle — a backend registered with a router's own URL
// (copy-pasted -advertise, or a malicious open registration) — and must be
// broken at one hop instead of amplifying into a self-proxying storm.
const hopHeader = "X-Harvest-Router-Hop"

func (rt *Router) handleProxy(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get(hopHeader) != "" {
		// Not counted in unavailable_503s: that metric means stale/breaker
		// rejections, and a loop is a misconfiguration with its own status.
		writeError(w, http.StatusLoopDetected,
			"routing loop: this backend resolves to a router (check its advertised URL)")
		return
	}
	dc := r.PathValue("dc")
	// Trace ingress: adopt the client's trace id (header) or assign one, echo
	// it to the client up front (headers set before WriteHeader apply to every
	// response path below), and publish the trace whichever way the request
	// resolves. The status is captured by a thin writer wrapper.
	upstreamID, _ := obs.ParseTraceID(r.Header.Get(obs.TraceHeader))
	tr := rt.rec.Begin(upstreamID, obs.DialectJSON, r.PathValue("rest"), dc)
	sc := &statusCapture{ResponseWriter: w, status: http.StatusOK}
	w = sc
	if tr != nil {
		w.Header().Set(obs.TraceHeader, obs.FormatTraceID(tr.ID))
		defer func() { tr.Finish(sc.status) }()
	}
	// The inbound body is buffered before backend resolution: read/write
	// classification needs it (an advisory select is only a read when its
	// body says dry_run), and a client that stalls mid-body must never sit on
	// the half-open probe slot claimed below. Handing NewRequest a
	// *bytes.Reader bounds memory, pins an explicit outbound Content-Length,
	// and lets the transport silently replay *idempotent* requests that race
	// a backend's idle-connection close. POSTs are not replayable in net/http
	// regardless of GetBody — deliberately left that way here, since
	// re-sending a select the backend may have processed could
	// double-reserve; the idle-close race is instead minimized by the
	// transport's IdleConnTimeout sitting well below the backends' server
	// IdleTimeout. Bodies here are small JSON (the backend caps its own at
	// 1 MiB).
	var bodyBytes []byte
	if r.Body != nil && r.ContentLength != 0 {
		var rerr error
		bodyBytes, rerr = io.ReadAll(http.MaxBytesReader(w, r.Body, maxProxyBody))
		if rerr != nil {
			// The client's fault (or the client went away) — not backend
			// evidence.
			writeError(w, http.StatusBadRequest, "unreadable request body: "+rerr.Error())
			return
		}
	}

	now := rt.now()
	read := isReadRequest(r.Method, r.PathValue("rest"), bodyBytes)
	b := rt.pickBackend(dc, read, now)
	if b == nil {
		writeError(w, http.StatusNotFound, "unknown datacenter "+strconv.Quote(dc))
		return
	}
	rt.mu.RLock()
	// Copied under the lock: registration beats rewrite b.url under the
	// write lock, so it must not be read after the RUnlock.
	baseURL := b.url
	rt.mu.RUnlock()
	// Name the replica that serves this request: load generators and the CI
	// smoke job attribute per-backend read share from this header.
	w.Header().Set(backendHeader, b.id)
	if !rt.alive(b, now) {
		// Past many staleness windows the node is gone, not hiccuping:
		// collect it on demand — registration-time sweeps never run when no
		// backend is left to heartbeat — so its datacenters fall back to 404
		// instead of 503ing (with a Retry-After clients honor) forever.
		if cutoff := now.Add(-10 * rt.cfg.StaleAfter).UnixNano(); b.lastBeat.Load() <= cutoff {
			rt.collectBackend(b, cutoff)
			writeError(w, http.StatusNotFound, "unknown datacenter "+strconv.Quote(dc))
			return
		}
		rt.unavailable.Add(1)
		rt.writeUnavailable(w, rt.cfg.RetryAfter,
			"datacenter "+strconv.Quote(dc)+" unavailable: backend "+b.id+" missed heartbeats")
		return
	}
	if b.draining.Load() {
		// pickBackend already tried to route around a draining node (spread
		// reads, promotion for writes); reaching here means it was the only
		// candidate. Its listeners are about to close, so reject with the
		// usual retry hint instead of racing the teardown.
		rt.unavailable.Add(1)
		rt.writeUnavailable(w, rt.cfg.RetryAfter,
			"datacenter "+strconv.Quote(dc)+" unavailable: backend "+b.id+" draining for planned shutdown")
		return
	}

	// Breaker gate. A nonzero openUntil in the past means the cooldown just
	// elapsed: the circuit is half-open, and exactly one request — the CAS
	// winner — may probe the backend; everyone else keeps getting 503 until
	// the probe's outcome decides the state. The slot is held only across
	// the outbound call, which ProxyTimeout bounds.
	var gateStart time.Time
	if tr != nil {
		gateStart = time.Now()
	}
	probe := false
	if openUntil := b.openUntil.Load(); openUntil != 0 {
		if openUntil > now.UnixNano() {
			rt.unavailable.Add(1)
			rt.writeUnavailable(w, time.Duration(openUntil-now.UnixNano()),
				"datacenter "+strconv.Quote(dc)+" unavailable: backend "+b.id+" circuit open")
			return
		}
		if !b.probing.CompareAndSwap(false, true) {
			rt.unavailable.Add(1)
			rt.writeUnavailable(w, rt.cfg.BreakerCooldown,
				"datacenter "+strconv.Quote(dc)+" unavailable: backend "+b.id+" probe in flight")
			return
		}
		probe = true
	}
	tr.Span("breaker_wait", gateStart)

	// The outbound path is the *escaped* original, verbatim: PathValue
	// returns percent-decoded segments, and re-joining those would let an
	// encoded '?', '#', or '/' inside a segment change which resource the
	// backend sees.
	target := baseURL + r.URL.EscapedPath()
	if r.URL.RawQuery != "" {
		target += "?" + r.URL.RawQuery
	}
	// settle records the transport outcome and releases the probe slot. Any
	// success — probe or a request that was already in flight when the
	// circuit opened — fully closes the circuit (fresh evidence the data
	// plane works); keying the close on the probe alone could strand the
	// breaker half-open when a racing success reset consecFails just before
	// a probe failed. A failure feeds proxyFailed, which re-opens at the
	// threshold.
	settle := func(ok bool) {
		if ok {
			b.consecFails.Store(0)
			b.openUntil.Store(0)
		} else {
			rt.proxyFailed(b)
		}
		if probe {
			b.probing.Store(false)
		}
	}
	// clientGone recognizes transport errors caused by the *client* aborting
	// mid-request (the outbound context is the inbound request's): those say
	// nothing about the backend and must not feed the breaker.
	clientGone := func() bool {
		if r.Context().Err() == nil {
			return false
		}
		if probe {
			b.probing.Store(false)
		}
		return true
	}

	var outBody io.Reader = http.NoBody
	if len(bodyBytes) > 0 {
		outBody = bytes.NewReader(bodyBytes)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, target, outBody)
	if err != nil {
		if probe {
			b.probing.Store(false)
		}
		writeError(w, http.StatusBadRequest, "bad proxy request: "+err.Error())
		return
	}
	req.Header = r.Header.Clone()
	for _, h := range hopByHopHeaders {
		req.Header.Del(h)
	}
	req.Header.Set("X-Forwarded-For", r.RemoteAddr)
	req.Header.Set(hopHeader, "1")
	var legStart time.Time
	if tr != nil {
		// The backend sees the router's trace id so the two tiers' /debug/traces
		// entries join on one value end to end.
		req.Header.Set(obs.TraceHeader, obs.FormatTraceID(tr.ID))
		legStart = time.Now()
	}

	if read {
		b.reads.Add(1)
	}
	// backendStart is unconditional (legStart above is trace-gated): it feeds
	// the per-backend latency histogram on every outcome except a vanished
	// client. inflight brackets the whole backend leg — it is the
	// power-of-two-choices load signal the read picker compares.
	backendStart := time.Now()
	b.inflight.Add(1)
	resp, err := rt.client.Do(req)
	if err != nil {
		b.inflight.Add(-1)
		if clientGone() {
			return // nobody is listening for this response
		}
		b.lat.Observe(time.Since(backendStart), http.StatusServiceUnavailable)
		settle(false)
		rt.writeUnavailable(w, rt.cfg.BreakerCooldown,
			"datacenter "+strconv.Quote(dc)+" unavailable: backend "+b.id+" unreachable")
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxProxyResponse+1))
	b.inflight.Add(-1)
	if err != nil || len(body) > maxProxyResponse {
		if err != nil && clientGone() {
			return
		}
		b.lat.Observe(time.Since(backendStart), http.StatusServiceUnavailable)
		settle(false)
		rt.writeUnavailable(w, rt.cfg.BreakerCooldown,
			"datacenter "+strconv.Quote(dc)+" unavailable: backend "+b.id+" sent a truncated or oversized response")
		return
	}
	b.lat.Observe(time.Since(backendStart), resp.StatusCode)
	settle(true)
	tr.Span("backend_leg", legStart)
	b.proxied.Add(1)
	rt.proxiedTotal.Add(1)

	hdr := w.Header()
	for k, vs := range resp.Header {
		if k == "Content-Length" || isHopByHop(k) {
			continue
		}
		hdr[k] = vs
	}
	// Re-buffered with an explicit length: the response reaches the client in
	// one write, never chunked, keeping pipelined clients trivial to parse
	// against — same contract as the backends themselves.
	hdr.Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(resp.StatusCode)
	w.Write(body)
}

// statusCapture remembers the status code a handler wrote so the deferred
// trace Finish can publish it. Write without WriteHeader keeps the 200
// default, matching net/http.
type statusCapture struct {
	http.ResponseWriter
	status int
}

func (s *statusCapture) WriteHeader(code int) {
	s.status = code
	s.ResponseWriter.WriteHeader(code)
}

func isHopByHop(k string) bool {
	for _, h := range hopByHopHeaders {
		if strings.EqualFold(k, h) {
			return true
		}
	}
	return false
}

// proxyFailed records a transport failure and opens the breaker at the
// threshold. Application-level statuses (4xx/5xx from a healthy backend) are
// not failures — only an unreachable or misbehaving transport is. The
// cooldown is anchored at the failure's observation time (a fresh now), not
// at the request's start — a timeout failure must still buy a full closed
// window, or the circuit would be born already half-open.
func (rt *Router) proxyFailed(b *backend) {
	b.errors.Add(1)
	rt.proxyErrors.Add(1)
	if rt.cfg.BreakerThreshold < 0 {
		return
	}
	if int(b.consecFails.Add(1)) >= rt.cfg.BreakerThreshold {
		b.openUntil.Store(rt.now().Add(rt.cfg.BreakerCooldown).UnixNano())
		// Leave consecFails at the threshold: the post-cooldown probe either
		// resets it on success or immediately re-opens on failure.
		rlog.Warn("backend circuit opened", "backend", b.id, "cooldown", rt.cfg.BreakerCooldown)
	}
}

type datacentersResponse struct {
	Datacenters []string `json:"datacenters"`
	// BinaryAddr is the router's own binary frame listener, present when one
	// is serving: clients that speak the binary dialect discover it here and
	// keep using JSON for everything else.
	BinaryAddr string `json:"binary_addr,omitempty"`
}

// liveDatacenters returns the sorted union of datacenters across backends
// that are currently heartbeating. Followers count: while a primary is down
// its alive followers still serve the read surface (and the first write
// triggers promotion), so the datacenter must stay discoverable — a client
// arriving mid-failover would otherwise see an empty fleet.
func (rt *Router) liveDatacenters(now time.Time) []string {
	rt.mu.RLock()
	seen := make(map[string]struct{}, len(rt.table))
	for name, b := range rt.table {
		if rt.routable(b, now) {
			seen[name] = struct{}{}
		}
	}
	for _, b := range rt.backends {
		if b.role != "follower" || !rt.routable(b, now) {
			continue
		}
		for name := range b.dcs {
			seen[name] = struct{}{}
		}
	}
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	rt.mu.RUnlock()
	sort.Strings(names)
	return names
}

func (rt *Router) handleDatacenters(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, datacentersResponse{
		Datacenters: rt.liveDatacenters(rt.now()),
		BinaryAddr:  rt.binAdvertise,
	})
}

type healthzResponse struct {
	Status      string `json:"status"`
	Backends    int    `json:"backends"`
	Alive       int    `json:"alive"`
	Datacenters int    `json:"datacenters"`
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	now := rt.now()
	rt.mu.RLock()
	backends := len(rt.backends)
	alive := 0
	for _, b := range rt.backends {
		if rt.alive(b, now) {
			alive++
		}
	}
	rt.mu.RUnlock()
	writeJSON(w, http.StatusOK, healthzResponse{
		Status:      "ok",
		Backends:    backends,
		Alive:       alive,
		Datacenters: len(rt.liveDatacenters(now)),
	})
}

// BackendStats is one backend's row in /metrics.
type BackendStats struct {
	URL                 string            `json:"url"`
	BinaryAddr          string            `json:"binary_addr,omitempty"`
	ReplicateAddr       string            `json:"replicate_addr,omitempty"`
	Role                string            `json:"role"`
	PrimaryID           string            `json:"primary_id,omitempty"`
	Alive               bool              `json:"alive"`
	Draining            bool              `json:"draining,omitempty"`
	LastBeatAgeSeconds  float64           `json:"last_beat_age_seconds"`
	Datacenters         map[string]uint64 `json:"datacenters"` // name → announced generation
	Proxied             uint64            `json:"proxied"`
	Reads               uint64            `json:"reads"` // requests the read spreader picked this backend for
	InFlight            int64             `json:"in_flight"`
	Errors              uint64            `json:"errors"`
	CircuitOpen         bool              `json:"circuit_open"`
	ConsecutiveFailures int               `json:"consecutive_failures"`
	// Latency is this backend's request latency as observed from the router,
	// across both dialects — per-replica histograms for spotting a slow
	// follower dragging the spread read path.
	Latency OpStats `json:"latency"`
}

// RouterStats is the router's own section of /metrics.
type RouterStats struct {
	Registrations uint64                  `json:"registrations"`
	Proxied       uint64                  `json:"proxied"`
	ProxyErrors   uint64                  `json:"proxy_errors"`
	Unavailable   uint64                  `json:"unavailable_503s"`
	Promotions    uint64                  `json:"promotions"`
	Binary        *BinaryFrontStats       `json:"binary,omitempty"`
	Backends      map[string]BackendStats `json:"backends"`
}

// BinaryFrontStats is the binary listener's section of /metrics, present only
// when the router serves the binary dialect.
type BinaryFrontStats struct {
	Addr          string `json:"addr,omitempty"`
	AcceptedConns uint64 `json:"accepted_conns"`
	OpenConns     int64  `json:"open_conns"`
	FramingErrors uint64 `json:"framing_errors"`
	Forwarded     uint64 `json:"forwarded"`  // frames relayed natively
	Translated    uint64 `json:"translated"` // frames bridged to JSON-only backends
	Rejected      uint64 `json:"rejected"`   // error frames originated by the router
	// Ops is the per-opcode latency and error breakdown at the router's frame
	// dispatch — the same row shape as the shards' binary endpoints, so a
	// dashboard can subtract the two and see the relay's own cost.
	Ops map[string]OpStats `json:"ops"`
}

// OpStats is one opcode's row in the binary front's /metrics section,
// mirroring the shards' per-endpoint counters.
type OpStats struct {
	Requests uint64  `json:"requests"`
	Errors   uint64  `json:"errors"`
	MeanUs   float64 `json:"mean_us"`
	P50Us    uint64  `json:"p50_us"`
	P99Us    uint64  `json:"p99_us"`
	MaxUs    uint64  `json:"max_us"`
}

type metricsResponse struct {
	UptimeSeconds float64     `json:"uptime_seconds"`
	Router        RouterStats `json:"router"`
	// Datacenters is the aggregate across backends: each live backend's
	// /metrics "datacenters" entries for the DCs it owns, merged into one
	// map, so one scrape of the router sees every shard's books.
	Datacenters map[string]json.RawMessage `json:"datacenters"`
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// The same one-hop cycle breaker as the proxy path: a router scraping a
	// "backend" that is really a router must get a non-200 and move on, not
	// recurse the fan-out.
	if r.Header.Get(hopHeader) != "" {
		writeError(w, http.StatusLoopDetected,
			"routing loop: this backend resolves to a router (check its advertised URL)")
		return
	}
	if r.URL.Query().Get("format") == "prometheus" {
		// Prometheus scrapes are router-local by design: no backend fan-out,
		// so a scrape never blocks on a slow shard. Scrapers that want shard
		// books hit each shard's own /metrics?format=prometheus directly.
		rt.writeProm(w)
		return
	}
	now := rt.now()
	resp := metricsResponse{
		UptimeSeconds: time.Since(rt.start).Seconds(),
		Router: RouterStats{
			Registrations: rt.registrations.Load(),
			Proxied:       rt.proxiedTotal.Load(),
			ProxyErrors:   rt.proxyErrors.Load(),
			Unavailable:   rt.unavailable.Load(),
			Promotions:    rt.promotions.Load(),
			Backends:      make(map[string]BackendStats),
		},
		Datacenters: make(map[string]json.RawMessage),
	}
	rt.binMu.Lock()
	binServing := rt.binLn != nil && !rt.binClosed
	rt.binMu.Unlock()
	if binServing {
		resp.Router.Binary = &BinaryFrontStats{
			Addr:          rt.binAdvertise,
			AcceptedConns: rt.binAccepted.Load(),
			OpenConns:     rt.binOpenConns.Load(),
			FramingErrors: rt.binFramingErrors.Load(),
			Forwarded:     rt.binForwarded.Load(),
			Translated:    rt.binTranslated.Load(),
			Rejected:      rt.binRejected.Load(),
			Ops:           rt.binOpStats(),
		}
	}

	type fetchTarget struct {
		url  string
		owns []string
	}
	var targets []fetchTarget
	rt.mu.RLock()
	for id, b := range rt.backends {
		st := BackendStats{
			URL:                 b.url,
			BinaryAddr:          b.binAddr,
			ReplicateAddr:       b.replicateAddr,
			Role:                b.role,
			PrimaryID:           b.primaryID,
			Alive:               rt.alive(b, now),
			Draining:            b.draining.Load(),
			LastBeatAgeSeconds:  time.Duration(now.UnixNano() - b.lastBeat.Load()).Seconds(),
			Datacenters:         make(map[string]uint64, len(b.dcs)),
			Proxied:             b.proxied.Load(),
			Reads:               b.reads.Load(),
			InFlight:            b.inflight.Load(),
			Errors:              b.errors.Load(),
			CircuitOpen:         b.openUntil.Load() > now.UnixNano(),
			ConsecutiveFailures: int(b.consecFails.Load()),
			Latency: OpStats{
				Requests: b.lat.Requests.Load(),
				Errors:   b.lat.Errors.Load(),
				MeanUs:   b.lat.Latency.MeanMicros(),
				P50Us:    b.lat.Latency.QuantileMicros(0.50),
				P99Us:    b.lat.Latency.QuantileMicros(0.99),
				MaxUs:    b.lat.Latency.MaxMicros(),
			},
		}
		var owns []string
		for name, gen := range b.dcs {
			st.Datacenters[name] = gen
			if rt.table[name] == b {
				owns = append(owns, name)
			}
		}
		resp.Router.Backends[id] = st
		if st.Alive && !st.CircuitOpen && len(owns) > 0 {
			targets = append(targets, fetchTarget{url: b.url + "/metrics", owns: owns})
		}
	}
	rt.mu.RUnlock()

	// Fan the backend scrapes out concurrently; a slow or dead backend costs
	// one ProxyTimeout, not one per backend, and contributes nothing.
	type fetched struct {
		owns []string
		dcs  map[string]json.RawMessage
	}
	results := make([]fetched, len(targets))
	var wg sync.WaitGroup
	for i, tgt := range targets {
		wg.Add(1)
		go func(i int, tgt fetchTarget) {
			defer wg.Done()
			var payload struct {
				Datacenters map[string]json.RawMessage `json:"datacenters"`
			}
			req, err := http.NewRequest("GET", tgt.url, nil)
			if err != nil {
				return
			}
			req.Header.Set(hopHeader, "1")
			res, err := rt.client.Do(req)
			if err != nil {
				return
			}
			defer res.Body.Close()
			if res.StatusCode != http.StatusOK {
				return
			}
			// Same cap as the proxy path: a maliciously registered backend
			// must not balloon router memory through the scrape either.
			if json.NewDecoder(io.LimitReader(res.Body, maxProxyResponse)).Decode(&payload) != nil {
				return
			}
			results[i] = fetched{owns: tgt.owns, dcs: payload.Datacenters}
		}(i, tgt)
	}
	wg.Wait()
	for _, res := range results {
		for _, name := range res.owns {
			if raw, ok := res.dcs[name]; ok {
				resp.Datacenters[name] = raw
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
