package obs

import (
	"bytes"
	"strconv"
	"strings"
)

// PromContentType is the exposition-format content type (text format 0.0.4).
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// Prom accumulates Prometheus text exposition. It is a formatting helper,
// not a registry: callers walk their own stats structures and emit series in
// whatever order they like, writing each metric's HELP/TYPE header once via
// Metric and then any number of series. The JSON /metrics shape is the
// source of truth; this is the same data re-rendered for a scraper.
type Prom struct {
	buf bytes.Buffer
}

// Metric writes the # HELP and # TYPE header for a metric family.
// typ is "counter", "gauge", or "histogram".
func (p *Prom) Metric(name, typ, help string) {
	p.buf.WriteString("# HELP ")
	p.buf.WriteString(name)
	p.buf.WriteByte(' ')
	p.buf.WriteString(help)
	p.buf.WriteString("\n# TYPE ")
	p.buf.WriteString(name)
	p.buf.WriteByte(' ')
	p.buf.WriteString(typ)
	p.buf.WriteByte('\n')
}

// Labels renders a label set from key/value pairs, escaping values. The
// result (e.g. `dc="DC-9",op="select"`) is passed to the series writers; an
// empty string means no labels.
func Labels(kv ...string) string {
	if len(kv) == 0 {
		return ""
	}
	var b strings.Builder
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		escapeLabel(&b, kv[i+1])
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(b *strings.Builder, v string) {
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
}

func (p *Prom) series(name, labels string) {
	p.buf.WriteString(name)
	if labels != "" {
		p.buf.WriteByte('{')
		p.buf.WriteString(labels)
		p.buf.WriteByte('}')
	}
	p.buf.WriteByte(' ')
}

// Uint writes one series with an unsigned integer value.
func (p *Prom) Uint(name, labels string, v uint64) {
	p.series(name, labels)
	p.buf.Write(strconv.AppendUint(p.scratch(), v, 10))
	p.buf.WriteByte('\n')
}

// Int writes one series with a signed integer value.
func (p *Prom) Int(name, labels string, v int64) {
	p.series(name, labels)
	p.buf.Write(strconv.AppendInt(p.scratch(), v, 10))
	p.buf.WriteByte('\n')
}

// Float writes one series with a float value.
func (p *Prom) Float(name, labels string, v float64) {
	p.series(name, labels)
	p.buf.Write(strconv.AppendFloat(p.scratch(), v, 'g', -1, 64))
	p.buf.WriteByte('\n')
}

// Histogram writes the full cumulative `le` bucket series plus _sum and
// _count for one power-of-two latency histogram. Units are microseconds
// (the histogram's native resolution): bucket i's inclusive upper bound is
// 2^i - 1 µs, so the `le` bounds are exact for whole-microsecond samples —
// every sample in buckets 0..i is ≤ le_i and every sample above is > le_i.
// extraLabels is appended after the le label's comma handling (may be "").
func (p *Prom) Histogram(name, extraLabels string, h *Histogram) {
	var counts [HistBuckets]uint64
	h.BucketCounts(counts[:0])
	var cum uint64
	for i := 0; i < HistBuckets; i++ {
		cum += counts[i]
		le := strconv.FormatUint(BucketUpperMicros(i), 10)
		p.bucket(name, extraLabels, le, cum)
	}
	p.bucket(name, extraLabels, "+Inf", cum)
	p.Uint(name+"_sum", extraLabels, h.SumMicros())
	p.Uint(name+"_count", extraLabels, h.Count())
}

func (p *Prom) bucket(name, extraLabels, le string, cum uint64) {
	labels := `le="` + le + `"`
	if extraLabels != "" {
		labels = extraLabels + "," + labels
	}
	p.Uint(name+"_bucket", labels, cum)
}

func (p *Prom) scratch() []byte { return make([]byte, 0, 24) }

// Bytes returns the accumulated exposition.
func (p *Prom) Bytes() []byte { return p.buf.Bytes() }
