package obs

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"strconv"
	"time"
)

// DebugMux builds the off-data-plane debug surface: pprof, expvar, build
// info, and the trace viewer. Daemons serve it on a dedicated -debug-addr
// listener so profiling and trace dumps never contend with (or get proxied
// like) data-plane requests.
func DebugMux(component string, rec *Recorder) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/build", func(w http.ResponseWriter, r *http.Request) {
		writeBuildInfo(w, component)
	})
	mux.Handle("/debug/traces", TracesHandler(rec))
	mux.HandleFunc("/{$}", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte(component + " debug plane:\n" +
			"  /debug/traces   last-N + slowest-since-boot request traces (?trace=, ?dc=, ?min_us=, ?limit=)\n" +
			"  /debug/pprof/   live profiling\n" +
			"  /debug/vars     expvar\n" +
			"  /debug/build    build info\n"))
	})
	return mux
}

// ServeDebug binds addr and serves the debug mux in the background,
// returning the bound address (useful with ":0").
func ServeDebug(addr, component string, rec *Recorder) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go http.Serve(ln, DebugMux(component, rec)) //nolint — debug plane lives for the process
	return ln.Addr().String(), nil
}

func writeBuildInfo(w http.ResponseWriter, component string) {
	type buildJSON struct {
		Component string            `json:"component"`
		GoVersion string            `json:"go_version"`
		Path      string            `json:"path,omitempty"`
		Version   string            `json:"version,omitempty"`
		Settings  map[string]string `json:"settings,omitempty"`
	}
	out := buildJSON{Component: component}
	if bi, ok := debug.ReadBuildInfo(); ok {
		out.GoVersion = bi.GoVersion
		out.Path = bi.Path
		out.Version = bi.Main.Version
		out.Settings = make(map[string]string, len(bi.Settings))
		for _, s := range bi.Settings {
			out.Settings[s.Key] = s.Value
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// spanJSON / traceJSON are the /debug/traces wire shapes.
type spanJSON struct {
	Name    string `json:"name"`
	StartUs int64  `json:"start_us"`
	DurUs   int64  `json:"duration_us"`
}

type traceJSON struct {
	ID      string     `json:"id"`
	Dialect string     `json:"dialect"`
	Op      string     `json:"op"`
	DC      string     `json:"dc,omitempty"`
	JobID   string     `json:"job_id,omitempty"`
	Owner   string     `json:"owner,omitempty"`
	Status  int        `json:"status"`
	Start   time.Time  `json:"start"`
	DurUs   int64      `json:"duration_us"`
	Spans   []spanJSON `json:"spans"`
}

// TracesHandler serves GET /debug/traces: the ring plus the slow reservoir,
// newest first, filterable by ?trace= (16-hex-digit wire form, or a decimal
// u64 for binary-dialect clients that picked their own request ids), ?dc=,
// ?min_us= / ?min_ms= (minimum total latency), and ?limit=.
func TracesHandler(rec *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		q := r.URL.Query()
		f := TraceFilter{DC: q.Get("dc")}
		if v := q.Get("limit"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n > 0 {
				f.Limit = n
			}
		}
		if v := q.Get("min_us"); v != "" {
			if n, err := strconv.ParseInt(v, 10, 64); err == nil && n > 0 {
				f.MinDur = time.Duration(n) * time.Microsecond
			}
		}
		if v := q.Get("min_ms"); v != "" {
			if n, err := strconv.ParseInt(v, 10, 64); err == nil && n > 0 {
				f.MinDur = time.Duration(n) * time.Millisecond
			}
		}
		var traces []*Trace
		if s := q.Get("trace"); s != "" {
			// A trace id printed from the JSON dialect is hex; a binary
			// client may know its id as the decimal u64 it sent. Accept both
			// readings and merge (ids are random, collisions don't matter).
			seen := map[uint64]bool{}
			if id, ok := ParseTraceID(s); ok {
				seen[id] = true
				f.ID = id
				traces = append(traces, rec.Query(f)...)
			}
			if id, err := strconv.ParseUint(s, 10, 64); err == nil && id != 0 && !seen[id] {
				f.ID = id
				traces = append(traces, rec.Query(f)...)
			}
		} else {
			traces = rec.Query(f)
		}
		out := struct {
			Traces []traceJSON `json:"traces"`
		}{Traces: make([]traceJSON, 0, len(traces))}
		for _, t := range traces {
			tj := traceJSON{
				ID:      FormatTraceID(t.ID),
				Dialect: t.Dialect,
				Op:      t.Op,
				DC:      t.DC,
				JobID:   t.JobID,
				Owner:   t.Owner,
				Status:  t.Status,
				Start:   t.Start,
				DurUs:   t.DurUs,
				Spans:   make([]spanJSON, 0, len(t.Spans())),
			}
			for _, s := range t.Spans() {
				tj.Spans = append(tj.Spans, spanJSON{Name: s.Name, StartUs: s.StartUs, DurUs: s.DurUs})
			}
			out.Traces = append(out.Traces, tj)
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(out)
	})
}
